package mempod

import (
	"fmt"
	"os"

	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ResultCache memoizes simulation results across runs and processes. Every
// cell — one (workload trace, mechanism config, memory specs, layout) point
// — is keyed by its complete causal identity, so a cached result is
// field-identical to what a fresh simulation would produce; the cache only
// removes work, never changes numbers. Share one cache across Run, RunTrace
// and RunExperimentOpts calls (it is safe for concurrent use) to dedupe
// overlapping cells; give it a directory to persist results across
// processes as MPR1 files.
//
// Entries are invalidated automatically whenever any keyed input changes:
// the engine-semantics version (sim.Version), the mechanism's design-space
// parameters, either memory spec's timing fingerprint, the layout geometry,
// or the trace identity. Corrupt, truncated or stale store files are
// recomputed and overwritten, never surfaced as errors.
type ResultCache struct {
	c *resultcache.Cache
}

// NewResultCache returns a result cache. dir, when non-empty, is the
// persistent store directory (created if missing); empty keeps the cache
// in-memory only, still deduping within the process.
func NewResultCache(dir string) (*ResultCache, error) {
	rc := &ResultCache{c: resultcache.New()}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("mempod: result cache dir: %w", err)
		}
		rc.c.SetDir(dir)
	}
	return rc, nil
}

// ResultCacheStats counts a cache's activity.
type ResultCacheStats struct {
	Hits      int // runs served without simulating
	Misses    int // runs that simulated
	DiskLoads int // store files read and verified
	Stale     int // store files rejected (corrupt, stale version, wrong key)
	Persisted int // store files written

	BytesRead    int64
	BytesWritten int64
}

// Stats returns a snapshot of the cache counters.
func (rc *ResultCache) Stats() ResultCacheStats {
	s := rc.c.Stats()
	return ResultCacheStats{
		Hits: s.Hits, Misses: s.Misses, DiskLoads: s.DiskLoads,
		Stale: s.Stale, Persisted: s.Persisted,
		BytesRead: s.BytesRead, BytesWritten: s.BytesWritten,
	}
}

// String renders the counters in the one-line greppable form the commands
// print: "hits=H misses=M stale=S read=RB written=WB".
func (s ResultCacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d stale=%d read=%dB written=%dB",
		s.Hits, s.Misses, s.Stale, s.BytesRead, s.BytesWritten)
}

// cellIdentity is the trace half of a run's cache key: how the request
// sequence is pinned. Generated runs use the symbolic recipe (workload
// name, length, seed); snapshot replays use the content fingerprint.
// cacheable is false when no exact identity exists (custom workload
// definitions, whose names don't pin their content).
type cellIdentity struct {
	workload  string
	requests  int
	seed      int64
	traceFP   uint64
	cacheable bool
}

// cellKey assembles the run's complete cache key from the options and the
// trace identity. It resolves the same specs and mechanism config the run
// itself will use, so key construction fails exactly when the run would.
func (o Options) cellKey(id cellIdentity) (resultcache.CellKey, error) {
	fast, slow, err := o.specs()
	if err != nil {
		return resultcache.CellKey{}, err
	}
	tag, cfg, err := o.mechConfig()
	if err != nil {
		return resultcache.CellKey{}, err
	}
	mechID := tag
	if cfg != nil {
		mechID = fmt.Sprintf("%s:%+v", tag, cfg)
	}
	return resultcache.CellKey{
		SimVersion: sim.Version,
		Kind:       resultcache.KindResult,
		Mech:       mechID,
		FastFP:     fast.Fingerprint(),
		SlowFP:     slow.Fingerprint(),
		Layout:     fmt.Sprintf("%+v", o.layout()),
		Workload:   id.workload,
		Requests:   id.requests,
		Seed:       id.seed,
		TraceFP:    id.traceFP,
		Window:     o.Window,
	}, nil
}

// cachedRun consults o.Results around simulate when the run is cacheable,
// and calls simulate directly otherwise.
func cachedRun(o Options, id cellIdentity, simulate func() (stats.Result, error)) (Result, error) {
	if o.Results == nil || !id.cacheable {
		return simulate()
	}
	key, err := o.cellKey(id)
	if err != nil {
		return Result{}, err
	}
	return o.Results.c.ResultCell(key, simulate)
}

// traceIdentity pins a recorded trace for the cache: by content
// fingerprint, since a replayed snapshot's generating recipe is unknown
// (it may have come from a file). Fingerprinting costs one pass over the
// packed columns, so it is computed only when a cache is configured.
func traceIdentity(t *Trace, o Options) cellIdentity {
	if o.Results == nil {
		return cellIdentity{}
	}
	return cellIdentity{
		workload:  t.name,
		requests:  t.snap.Len(),
		traceFP:   t.snap.Fingerprint(),
		cacheable: true,
	}
}
