package main

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/exp
cpu: AMD EPYC 7B13
BenchmarkMatrix/j=1-8         	      21	  51700042 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatrix/j=4-8         	      80	  14210000 ns/op
PASS
ok  	repro/internal/exp	3.211s
pkg: repro/internal/trace
BenchmarkSnapshotReplay       	138000000	         8.612 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerbose
BenchmarkVerbose-8            	     100	    123456 ns/op	        42.50 custom/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	m := rep.Benchmarks[0]
	if m.Pkg != "repro/internal/exp" || m.Name != "BenchmarkMatrix/j=1" || m.Procs != 8 {
		t.Errorf("first benchmark identity wrong: %+v", m)
	}
	if m.Iterations != 21 || m.Metrics["ns/op"] != 51700042 || m.Metrics["allocs/op"] != 0 {
		t.Errorf("first benchmark numbers wrong: %+v", m)
	}
	if len(m.Metrics) != 3 {
		t.Errorf("first benchmark has %d metrics, want 3", len(m.Metrics))
	}

	if j4 := rep.Benchmarks[1]; j4.Name != "BenchmarkMatrix/j=4" || len(j4.Metrics) != 1 {
		t.Errorf("second benchmark wrong: %+v", j4)
	}

	// An un-suffixed name (GOMAXPROCS=1 runs print none) keeps Procs=1 and
	// picks up the later pkg header.
	r := rep.Benchmarks[2]
	if r.Pkg != "repro/internal/trace" || r.Name != "BenchmarkSnapshotReplay" || r.Procs != 1 {
		t.Errorf("replay benchmark wrong: %+v", r)
	}
	if r.Metrics["ns/op"] != 8.612 {
		t.Errorf("fractional ns/op lost: %+v", r.Metrics)
	}

	// -v mode echoes the bare name before the result line; only the result
	// counts, and custom ReportMetric units survive.
	v := rep.Benchmarks[3]
	if v.Name != "BenchmarkVerbose" || v.Metrics["custom/op"] != 42.5 {
		t.Errorf("verbose benchmark wrong: %+v", v)
	}
}

func TestParseRejectsMangledValues(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-8 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("mangled value accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("random chatter\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks from chatter: %+v", rep.Benchmarks)
	}
}

// report builds a one-metric report for diff tests.
func report(ns map[string]float64) *Report {
	rep := &Report{}
	for _, name := range []string{"BenchmarkMatrix/j=1", "BenchmarkMatrix/j=4", "BenchmarkReplay"} {
		if v, ok := ns[name]; ok {
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{
				Pkg: "repro/internal/exp", Name: name, Procs: 8,
				Metrics: map[string]float64{"ns/op": v},
			})
		}
	}
	return rep
}

func TestDiff(t *testing.T) {
	oldRep := report(map[string]float64{
		"BenchmarkMatrix/j=1": 33_100_000,
		"BenchmarkMatrix/j=4": 10_000_000,
		"BenchmarkReplay":     100,
	})
	newRep := report(map[string]float64{
		"BenchmarkMatrix/j=1": 25_300_000, // improved
		"BenchmarkMatrix/j=4": 11_000_000, // +10.0%: at threshold, not over
		"BenchmarkReplay":     120,        // +20%: regression
	})
	deltas, onlyOld, onlyNew := Diff(oldRep, newRep, 10)
	if len(deltas) != 3 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("deltas=%d onlyOld=%v onlyNew=%v", len(deltas), onlyOld, onlyNew)
	}
	if deltas[0].Regressed || deltas[0].Pct >= 0 {
		t.Errorf("improvement flagged: %+v", deltas[0])
	}
	if deltas[1].Regressed {
		t.Errorf("exactly-at-threshold flagged as regression: %+v", deltas[1])
	}
	if !deltas[2].Regressed || deltas[2].Pct != 20 {
		t.Errorf("regression missed: %+v", deltas[2])
	}
}

func TestDiffUnpairedBenchmarks(t *testing.T) {
	oldRep := report(map[string]float64{"BenchmarkMatrix/j=1": 100, "BenchmarkReplay": 50})
	newRep := report(map[string]float64{"BenchmarkMatrix/j=1": 90, "BenchmarkMatrix/j=4": 10})
	deltas, onlyOld, onlyNew := Diff(oldRep, newRep, 10)
	if len(deltas) != 1 {
		t.Fatalf("deltas: %+v", deltas)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkReplay" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkMatrix/j=4" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

// writeReport marshals a report to a temp file for the CLI-level test.
func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(map[string]float64{"BenchmarkMatrix/j=1": 100}))
	slower := writeReport(t, dir, "slow.json", report(map[string]float64{"BenchmarkMatrix/j=1": 150}))
	faster := writeReport(t, dir, "fast.json", report(map[string]float64{"BenchmarkMatrix/j=1": 80}))

	var out strings.Builder
	// The issue's documented shape: files first, threshold after.
	if code := runDiff([]string{oldPath, slower, "-threshold", "10"}, &out); code != 1 {
		t.Errorf("regression exit code %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("regression not marked FAIL:\n%s", out.String())
	}
	out.Reset()
	if code := runDiff([]string{oldPath, faster, "-threshold", "10"}, &out); code != 0 {
		t.Errorf("improvement exit code %d, want 0\n%s", code, out.String())
	}
	// A generous threshold tolerates the slowdown.
	out.Reset()
	if code := runDiff([]string{oldPath, slower, "-threshold=60"}, &out); code != 0 {
		t.Errorf("within-threshold exit code %d, want 0\n%s", code, out.String())
	}
	// Usage and file errors are distinct from regressions.
	if code := runDiff([]string{oldPath}, io.Discard); code != 2 {
		t.Errorf("missing file arg exit code %d, want 2", code)
	}
	if code := runDiff([]string{oldPath, filepath.Join(dir, "absent.json")}, io.Discard); code != 2 {
		t.Errorf("unreadable report exit code %d, want 2", code)
	}
	if code := runDiff([]string{oldPath, slower, "-threshold", "bogus"}, io.Discard); code != 2 {
		t.Errorf("bad threshold exit code %d, want 2", code)
	}
}

// TestRunDiffHardGate pins the -hard semantics: only regressions whose
// name matches the regexp fail the diff; the rest are reported as "warn"
// and keep exit code 0. This is the CI shape — BenchmarkMatrix/j=1 is the
// hard gate, the forced-shard parallel variants stay warn-only.
func TestRunDiffHardGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(map[string]float64{
		"BenchmarkMatrix/j=1": 100,
		"BenchmarkMatrix/j=4": 100,
	}))
	parallelSlower := writeReport(t, dir, "pslow.json", report(map[string]float64{
		"BenchmarkMatrix/j=1": 100,
		"BenchmarkMatrix/j=4": 200, // noise cell regressed
	}))
	serialSlower := writeReport(t, dir, "sslow.json", report(map[string]float64{
		"BenchmarkMatrix/j=1": 200, // gated cell regressed
		"BenchmarkMatrix/j=4": 200,
	}))

	var out strings.Builder
	// Non-matching regression: warn, exit 0.
	if code := runDiff([]string{oldPath, parallelSlower, "-hard", `^BenchmarkMatrix/j=1$`}, &out); code != 0 {
		t.Errorf("warn-only regression exit code %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "warn") || strings.Contains(out.String(), "FAIL") {
		t.Errorf("non-matching regression not downgraded to warn:\n%s", out.String())
	}
	// Matching regression: FAIL, exit 1 (the = form must parse too).
	out.Reset()
	if code := runDiff([]string{oldPath, serialSlower, `-hard=^BenchmarkMatrix/j=1$`}, &out); code != 1 {
		t.Errorf("gated regression exit code %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("gated regression not marked FAIL:\n%s", out.String())
	}
	// Without -hard every regression still fails — the flag must not
	// weaken the default.
	if code := runDiff([]string{oldPath, parallelSlower}, io.Discard); code != 1 {
		t.Errorf("default regression exit code %d, want 1", code)
	}
	// Flag errors are usage errors.
	if code := runDiff([]string{oldPath, serialSlower, "-hard", "("}, io.Discard); code != 2 {
		t.Errorf("bad regexp exit code %d, want 2", code)
	}
	if code := runDiff([]string{oldPath, serialSlower, "-hard"}, io.Discard); code != 2 {
		t.Errorf("missing regexp exit code %d, want 2", code)
	}
}

// TestDiffEdgeCases pins down the comparisons that used to pass silently:
// zero-ns/op baselines and entries missing the ns/op metric entirely.
func TestDiffEdgeCases(t *testing.T) {
	bench := func(name string, metrics map[string]float64) Benchmark {
		return Benchmark{Pkg: "repro/internal/exp", Name: name, Procs: 8, Metrics: metrics}
	}
	cases := []struct {
		name          string
		oldB, newB    []Benchmark
		wantDeltas    int
		wantRegressed bool
		wantInf       bool
		wantOnlyOld   []string
		wantOnlyNew   []string
	}{
		{
			name:          "zero baseline nonzero new is a regression",
			oldB:          []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 0})},
			newB:          []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 5})},
			wantDeltas:    1,
			wantRegressed: true,
			wantInf:       true,
		},
		{
			name:       "zero baseline zero new is fine",
			oldB:       []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 0})},
			newB:       []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 0})},
			wantDeltas: 1,
		},
		{
			name:        "old entry without ns/op is incomparable, not a zero baseline",
			oldB:        []Benchmark{bench("BenchmarkX", map[string]float64{"cells/s": 900})},
			newB:        []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 5})},
			wantOnlyOld: []string{"BenchmarkX"},
			wantOnlyNew: []string{"BenchmarkX"},
		},
		{
			name:        "new entry without ns/op is incomparable, not an improvement",
			oldB:        []Benchmark{bench("BenchmarkX", map[string]float64{"ns/op": 100})},
			newB:        []Benchmark{bench("BenchmarkX", map[string]float64{"cells/s": 900})},
			wantOnlyOld: []string{"BenchmarkX"},
			wantOnlyNew: []string{"BenchmarkX"},
		},
		{
			name:        "missing benchmark stays informational",
			oldB:        []Benchmark{bench("BenchmarkGone", map[string]float64{"ns/op": 100})},
			newB:        []Benchmark{bench("BenchmarkNew", map[string]float64{"ns/op": 100})},
			wantOnlyOld: []string{"BenchmarkGone"},
			wantOnlyNew: []string{"BenchmarkNew"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltas, onlyOld, onlyNew := Diff(&Report{Benchmarks: tc.oldB}, &Report{Benchmarks: tc.newB}, 10)
			if len(deltas) != tc.wantDeltas {
				t.Fatalf("deltas = %+v, want %d", deltas, tc.wantDeltas)
			}
			if tc.wantDeltas == 1 {
				if deltas[0].Regressed != tc.wantRegressed {
					t.Errorf("Regressed = %v, want %v (%+v)", deltas[0].Regressed, tc.wantRegressed, deltas[0])
				}
				if tc.wantInf && !math.IsInf(deltas[0].Pct, 1) {
					t.Errorf("Pct = %v, want +Inf", deltas[0].Pct)
				}
			}
			if !slices.Equal(onlyOld, tc.wantOnlyOld) {
				t.Errorf("onlyOld = %v, want %v", onlyOld, tc.wantOnlyOld)
			}
			if !slices.Equal(onlyNew, tc.wantOnlyNew) {
				t.Errorf("onlyNew = %v, want %v", onlyNew, tc.wantOnlyNew)
			}
		})
	}
}

// TestRunDiffZeroBaselineExitCode checks the +Inf regression reaches the
// CLI exit code, whatever the threshold.
func TestRunDiffZeroBaselineExitCode(t *testing.T) {
	dir := t.TempDir()
	zero := writeReport(t, dir, "zero.json", report(map[string]float64{"BenchmarkMatrix/j=1": 0}))
	some := writeReport(t, dir, "some.json", report(map[string]float64{"BenchmarkMatrix/j=1": 5}))
	var out strings.Builder
	if code := runDiff([]string{zero, some, "-threshold", "1000"}, &out); code != 1 {
		t.Errorf("zero-baseline regression exit code %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("zero-baseline regression not marked FAIL:\n%s", out.String())
	}
}
