package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/exp
cpu: AMD EPYC 7B13
BenchmarkMatrix/j=1-8         	      21	  51700042 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatrix/j=4-8         	      80	  14210000 ns/op
PASS
ok  	repro/internal/exp	3.211s
pkg: repro/internal/trace
BenchmarkSnapshotReplay       	138000000	         8.612 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerbose
BenchmarkVerbose-8            	     100	    123456 ns/op	        42.50 custom/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	m := rep.Benchmarks[0]
	if m.Pkg != "repro/internal/exp" || m.Name != "BenchmarkMatrix/j=1" || m.Procs != 8 {
		t.Errorf("first benchmark identity wrong: %+v", m)
	}
	if m.Iterations != 21 || m.Metrics["ns/op"] != 51700042 || m.Metrics["allocs/op"] != 0 {
		t.Errorf("first benchmark numbers wrong: %+v", m)
	}
	if len(m.Metrics) != 3 {
		t.Errorf("first benchmark has %d metrics, want 3", len(m.Metrics))
	}

	if j4 := rep.Benchmarks[1]; j4.Name != "BenchmarkMatrix/j=4" || len(j4.Metrics) != 1 {
		t.Errorf("second benchmark wrong: %+v", j4)
	}

	// An un-suffixed name (GOMAXPROCS=1 runs print none) keeps Procs=1 and
	// picks up the later pkg header.
	r := rep.Benchmarks[2]
	if r.Pkg != "repro/internal/trace" || r.Name != "BenchmarkSnapshotReplay" || r.Procs != 1 {
		t.Errorf("replay benchmark wrong: %+v", r)
	}
	if r.Metrics["ns/op"] != 8.612 {
		t.Errorf("fractional ns/op lost: %+v", r.Metrics)
	}

	// -v mode echoes the bare name before the result line; only the result
	// counts, and custom ReportMetric units survive.
	v := rep.Benchmarks[3]
	if v.Name != "BenchmarkVerbose" || v.Metrics["custom/op"] != 42.5 {
		t.Errorf("verbose benchmark wrong: %+v", v)
	}
}

func TestParseRejectsMangledValues(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-8 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("mangled value accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("random chatter\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks from chatter: %+v", rep.Benchmarks)
	}
}
