// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark numbers can be archived per commit and diffed
// across runs (CI uploads results/bench.json as a workflow artifact).
//
// Usage:
//
//	go test -run='^$' -bench=. ./... | benchjson -o results/bench.json
//	benchjson -i bench.txt -o results/bench.json
//
// Non-benchmark lines (test framework chatter, PASS/ok trailers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one measured benchmark result line.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (from the preceding
	// "pkg:" header line; empty if the stream had none).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with the -<procs> GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkMatrix/j=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the raw name (1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measurement.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		in  = flag.String("i", "", "input file (default stdin)")
		out = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Parse reads a `go test -bench` text stream and extracts every
// benchmark result line, carrying the goos/goarch/cpu/pkg headers along.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   20   51700000 ns/op   1234 B/op   56 allocs/op
//
// ok=false (without error) means the line is not a result — e.g. the bare
// "BenchmarkFoo" name echo that precedes output when -v is set.
func parseLine(line string) (Benchmark, bool, error) {
	f := strings.Fields(line)
	// A result line has the name, b.N, and at least one value-unit pair.
	if len(f) < 4 || (len(f)-2)%2 != 0 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: make(map[string]float64, (len(f)-2)/2)}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // name-like line, not a result
	}
	b.Iterations = n
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q in line %q", f[i], line)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true, nil
}
