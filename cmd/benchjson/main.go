// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark numbers can be archived per commit and diffed
// across runs (CI uploads results/bench.json as a workflow artifact).
//
// Usage:
//
//	go test -run='^$' -bench=. ./... | benchjson -o results/bench.json
//	benchjson -i bench.txt -o results/bench.json
//	benchjson -diff old.json new.json -threshold 10
//
// Non-benchmark lines (test framework chatter, PASS/ok trailers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
//
// The -diff mode compares two archived reports: for every benchmark
// present in both, it prints the ns/op delta and exits non-zero when any
// regressed by more than -threshold percent (default 10). Benchmarks
// present on only one side are reported informationally and never fail
// the comparison — renames must not masquerade as regressions.
//
// With -hard name-regexp, only regressions whose benchmark name matches
// the regexp fail the diff; the rest print as "warn" and keep exit code
// 0. CI uses this to hard-gate the stable serial matrix cell while the
// parallel variants — pure scheduler noise on a 1-CPU runner — stay
// warn-only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one measured benchmark result line.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (from the preceding
	// "pkg:" header line; empty if the stream had none).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with the -<procs> GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkMatrix/j=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the raw name (1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measurement.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	// The diff mode's natural argument shape — files between flags — is
	// not stdlib-flag-parseable, so it is dispatched before flag.Parse.
	if len(os.Args) > 1 && os.Args[1] == "-diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout))
	}
	var (
		in  = flag.String("i", "", "input file (default stdin)")
		out = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Parse reads a `go test -bench` text stream and extracts every
// benchmark result line, carrying the goos/goarch/cpu/pkg headers along.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   20   51700000 ns/op   1234 B/op   56 allocs/op
//
// ok=false (without error) means the line is not a result — e.g. the bare
// "BenchmarkFoo" name echo that precedes output when -v is set.
func parseLine(line string) (Benchmark, bool, error) {
	f := strings.Fields(line)
	// A result line has the name, b.N, and at least one value-unit pair.
	if len(f) < 4 || (len(f)-2)%2 != 0 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: make(map[string]float64, (len(f)-2)/2)}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // name-like line, not a result
	}
	b.Iterations = n
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q in line %q", f[i], line)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true, nil
}

// benchKey identifies a benchmark across reports.
type benchKey struct {
	Pkg   string
	Name  string
	Procs int
}

// Delta is one benchmark's ns/op movement between two reports.
type Delta struct {
	Key benchKey
	// Old and New are ns/op in the respective reports.
	Old, New float64
	// Pct is the relative change in percent: positive means slower.
	Pct float64
	// Regressed means Pct exceeds the caller's threshold.
	Regressed bool
}

// Diff compares ns/op for every benchmark present in both reports.
// A benchmark regressed when its ns/op grew by strictly more than
// thresholdPct percent; a zero-ns/op baseline against a nonzero new value
// is always a regression (Pct +Inf) — a comparison with no defined
// relative change must not pass silently. Deltas keep newRep's benchmark
// order; onlyOld and onlyNew list benchmarks without a comparable
// counterpart — missing on the other side, or missing the ns/op metric
// entirely — and never fail the diff.
func Diff(oldRep, newRep *Report, thresholdPct float64) (deltas []Delta, onlyOld, onlyNew []string) {
	oldNs := make(map[benchKey]float64, len(oldRep.Benchmarks))
	seen := make(map[benchKey]bool, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		k := benchKey{b.Pkg, b.Name, b.Procs}
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			// No ns/op recorded (custom-metric-only entry): incomparable,
			// report informationally below via the unpaired path.
			continue
		}
		oldNs[k] = ns
		seen[k] = false
	}
	for _, b := range newRep.Benchmarks {
		k := benchKey{b.Pkg, b.Name, b.Procs}
		ns, hasNs := b.Metrics["ns/op"]
		old, ok := oldNs[k]
		if !ok || !hasNs {
			onlyNew = append(onlyNew, k.Name)
			continue
		}
		seen[k] = true
		d := Delta{Key: k, Old: old, New: ns}
		switch {
		case old > 0:
			d.Pct = (d.New - d.Old) / d.Old * 100
		case d.New > 0:
			d.Pct = math.Inf(1)
		}
		d.Regressed = d.Pct > thresholdPct
		deltas = append(deltas, d)
	}
	for _, b := range oldRep.Benchmarks {
		k := benchKey{b.Pkg, b.Name, b.Procs}
		if paired, comparable := seen[k]; !comparable || !paired {
			onlyOld = append(onlyOld, k.Name)
		}
	}
	return deltas, onlyOld, onlyNew
}

// runDiff implements the -diff CLI mode and returns the process exit code:
// 0 when no benchmark regressed past the threshold, 1 otherwise, 2 on
// usage or file errors. Arguments are the two report paths in old, new
// order, with -threshold <pct> and -hard <name-regexp> accepted anywhere
// among them. Without -hard, every regression fails the diff; with it,
// only regressions whose name matches the regexp do — the rest are
// reported as warnings so a gate can pin its one stable benchmark while
// still surfacing movement elsewhere.
func runDiff(args []string, w io.Writer) int {
	threshold := 10.0
	var hard *regexp.Regexp
	var files []string
	compileHard := func(expr string) bool {
		re, err := regexp.Compile(expr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -hard regexp %q: %v\n", expr, err)
			return false
		}
		hard = re
		return true
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			i++
			if i >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -threshold needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad threshold %q\n", args[i])
				return 2
			}
			threshold = v
		case strings.HasPrefix(a, "-threshold="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(a, "-threshold="), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad threshold %q\n", a)
				return 2
			}
			threshold = v
		case a == "-hard" || a == "--hard":
			i++
			if i >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -hard needs a name regexp")
				return 2
			}
			if !compileHard(args[i]) {
				return 2
			}
		case strings.HasPrefix(a, "-hard="):
			if !compileHard(strings.TrimPrefix(a, "-hard=")) {
				return 2
			}
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json [-threshold pct] [-hard name-regexp]")
		return 2
	}
	oldRep, err := loadReport(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	deltas, onlyOld, onlyNew := Diff(oldRep, newRep, threshold)
	failed := false
	for _, d := range deltas {
		mark := "ok  "
		if d.Regressed {
			if hard == nil || hard.MatchString(d.Key.Name) {
				mark = "FAIL"
				failed = true
			} else {
				mark = "warn"
			}
		}
		fmt.Fprintf(w, "%s %-40s %14.0f -> %14.0f ns/op  %+6.1f%%\n",
			mark, d.Key.Name, d.Old, d.New, d.Pct)
	}
	for _, n := range onlyOld {
		fmt.Fprintf(w, "gone %s (only in %s)\n", n, files[0])
	}
	for _, n := range onlyNew {
		fmt.Fprintf(w, "new  %s (only in %s)\n", n, files[1])
	}
	if failed {
		fmt.Fprintf(w, "regression: at least one benchmark slowed >%g%%\n", threshold)
		return 1
	}
	return 0
}

// loadReport reads a JSON report written by this tool.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
