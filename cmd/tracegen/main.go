// Command tracegen generates a workload's synthetic memory trace and
// writes it in the binary trace format, inspects an existing trace file,
// or characterizes a workload without writing anything.
//
// Usage:
//
//	tracegen -workload mix5 -requests 1000000 -out mix5.trace
//	tracegen -inspect mix5.trace
//	tracegen -workload lbm -analyze
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/tracestat"
	"repro/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "mix1", "workload name")
		requests = flag.Int("requests", 1_000_000, "trace length")
		seed     = flag.Int64("seed", 42, "trace seed")
		out      = flag.String("out", "", "output file (default <workload>.trace)")
		inspect  = flag.String("inspect", "", "inspect an existing trace file and exit")
		analyze  = flag.Bool("analyze", false, "characterize the workload's trace and exit")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *analyze {
		if err := analyzeWorkload(*wl, *requests, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	if err := generate(*wl, *requests, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func lookup(name string) (workload.Workload, error) {
	for _, cand := range workload.All() {
		if cand.Name == name {
			return cand, nil
		}
	}
	return workload.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func analyzeWorkload(name string, requests int, seed int64) error {
	w, err := lookup(name)
	if err != nil {
		return err
	}
	s, err := w.Stream(requests, seed)
	if err != nil {
		return err
	}
	sum, err := tracestat.Analyze(s, 0)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s\n%s", name, sum)
	return nil
}

func generate(name string, requests int, seed int64, out string) error {
	w, err := lookup(name)
	if err != nil {
		return err
	}
	s, err := w.Stream(requests, seed)
	if err != nil {
		return err
	}
	if out == "" {
		out = name + ".trace"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := trace.Write(f, s)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d requests to %s\n", n, out)
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Read(f)
	if err != nil {
		return err
	}
	sum, err := tracestat.Analyze(s, 0)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n%s", path, sum)
	return nil
}
