// Command meastudy runs the §3 offline oracle study comparing MEA and
// Full Counters activity tracking, regenerating Figures 1–3.
//
// Usage:
//
//	meastudy                       # quick subset
//	meastudy -full                 # all 27 workloads, full-length traces
//	meastudy -workloads mcf,mix9   # explicit selection
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		full      = flag.Bool("full", false, "run the full 27-workload study")
		requests  = flag.Int("requests", 0, "override trace length")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		csv       = flag.Bool("csv", false, "emit CSV instead of tables")
	)
	flag.Parse()

	cfg := exp.QuickConfig()
	if *full {
		cfg = exp.DefaultConfig()
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *workloads != "" {
		cfg = cfg.WithWorkloads(strings.Split(*workloads, ",")...)
	}

	for _, f := range []func() (fmt.Stringer, error){
		func() (fmt.Stringer, error) { return cfg.Fig1() },
		func() (fmt.Stringer, error) { return cfg.Fig2() },
		func() (fmt.Stringer, error) { return cfg.Fig3() },
	} {
		t, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "meastudy:", err)
			os.Exit(1)
		}
		if *csv {
			type csver interface{ CSV() string }
			fmt.Println(t.(csver).CSV())
		} else {
			fmt.Println(t)
		}
	}
}
