// Command sweep runs the §6.3.1 design-space sweeps: Figure 6 (epoch
// length × MEA counter count) and Figure 7 (counter width), locally or
// sharded across worker processes.
//
// Usage:
//
//	sweep                 # quick subset
//	sweep -full           # sweep-workload subset at full trace length
//	sweep -fig 6          # only Figure 6
//	sweep -j 4            # bound the worker pool (0 = GOMAXPROCS)
//	sweep -result-cache d # persist cell results, skip them next run
//
// Distributed mode shards the same sweep across processes:
//
//	sweep -serve :7077 -checkpoint sweep.mpc1   # coordinator (+local worker)
//	sweep -join host:7077 -result-cache d       # one worker per machine
//
// The coordinator enumerates the cell plan, hands out leased index
// batches (expired leases re-queue automatically), checkpoints completed
// cells to -checkpoint on an interval and on SIGTERM (restarting with the
// same flags resumes), and renders the tables once every cell is in.
// Workers verify they built the identical plan before serving, survive
// coordinator restarts, and exit when the sweep is done. Output is
// byte-identical to a serial run regardless of worker count or crashes:
// cells are content-addressed, so the merged cache holds exactly what a
// serial run would compute. Progress and per-worker throughput go to
// stderr and to GET /statusz on the serve address.
//
// Each sweep fans its (design point × workload) grid out to a worker
// pool; results are deterministic for a fixed seed regardless of -j.
// Cell results are memoized in-process by default — the sweeps overlap
// (Fig7's 16-bit points are Fig6 points) — and -result-cache DIR makes
// the memo persistent; -no-result-cache turns it off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/exp"
	"repro/internal/resultcache"
)

func main() {
	var (
		full      = flag.Bool("full", false, "1M-request traces over the sweep subset")
		fig       = flag.Int("fig", 0, "run only figure 6 or 7 (0 = both)")
		requests  = flag.Int("requests", 0, "override trace length")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		ablate    = flag.Bool("ablate", false, "also run the pod-count and tracker ablations")
		parallel  = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = flag.String("result-cache", "", "persist cell results in this directory (reused across runs)")
		noCache   = flag.Bool("no-result-cache", false, "disable result memoization entirely")

		serve      = flag.String("serve", "", "coordinate a distributed sweep on this address (host:port)")
		join       = flag.String("join", "", "work for the coordinator at this address")
		workerName = flag.String("worker-name", "", "name reported to the coordinator (default host:pid)")
		leaseBatch = flag.Int("lease-batch", 0, "cells per lease (default 16 worker-side, 64 coordinator cap)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "lease expiry without renewal (coordinator)")
		ckptPath   = flag.String("checkpoint", "", "coordinator checkpoint file (resumed if it exists)")
		ckptEvery  = flag.Duration("checkpoint-every", 10*time.Second, "checkpoint write interval")
		noLocal    = flag.Bool("no-local-worker", false, "serve only; don't compute cells in this process")
	)
	flag.Parse()
	if *serve != "" && *join != "" {
		fail(errors.New("-serve and -join are mutually exclusive"))
	}

	cfg := exp.QuickConfig().WithWorkloads(exp.SweepWorkloadNames...)
	cfg.Requests = 150_000
	cfg.Parallelism = *parallel
	if !*noCache {
		cfg.Results = resultcache.New()
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				fail(err)
			}
			cfg.Results.SetDir(*cacheDir)
		}
	} else if *cacheDir != "" {
		fail(errors.New("-result-cache and -no-result-cache are mutually exclusive"))
	}
	if *full {
		cfg.Requests = 1_000_000
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *workloads != "" {
		cfg = cfg.WithWorkloads(strings.Split(*workloads, ",")...)
	}

	var figures []string
	if *fig == 0 || *fig == 6 {
		figures = append(figures, "fig6")
	}
	if *fig == 0 || *fig == 7 {
		figures = append(figures, "fig7")
	}
	if *ablate {
		figures = append(figures, "ablation-pods", "ablation-tracker", "energy")
	}
	if len(figures) == 0 {
		fail(fmt.Errorf("-fig %d selects nothing (want 6 or 7)", *fig))
	}

	switch {
	case *join != "":
		runWorker(cfg, *join, *workerName, *leaseBatch)
	case *serve != "":
		runCoordinator(cfg, figures, coordinatorOptions{
			addr: *serve, leaseTTL: *leaseTTL, maxBatch: *leaseBatch,
			checkpoint: *ckptPath, checkpointEvery: *ckptEvery, localWorker: !*noLocal,
		})
	default:
		if err := renderFigures(cfg, figures); err != nil {
			fail(err)
		}
	}
	if cfg.Results != nil {
		fmt.Fprintf(os.Stderr, "sweep: result cache %s\n", cfg.Results.Stats())
	}
}

// renderFigures regenerates each figure against cfg (and its shared
// result cache) in order, printing tables to stdout and per-figure wall
// time plus cache activity to stderr, matching cmd/experiments' format.
func renderFigures(cfg exp.Config, figures []string) error {
	var prev resultcache.Stats
	for _, id := range figures {
		start := time.Now()
		t, err := cfg.Experiment(id)
		if err != nil {
			return err
		}
		fmt.Println(t)
		line := fmt.Sprintf("%s: finished in %s", id, time.Since(start).Round(time.Millisecond))
		if cfg.Results != nil {
			cur := cfg.Results.Stats()
			line += " cache " + cur.Sub(prev).String()
			prev = cur
		}
		fmt.Fprintln(os.Stderr, line)
	}
	return nil
}

type coordinatorOptions struct {
	addr            string
	leaseTTL        time.Duration
	maxBatch        int
	checkpoint      string
	checkpointEvery time.Duration
	localWorker     bool
}

// runCoordinator shards the figures' cell plan across workers, waits for
// completion (or SIGTERM, checkpointing either way), then renders every
// figure locally from the merged results.
func runCoordinator(cfg exp.Config, figures []string, o coordinatorOptions) {
	if cfg.Results == nil {
		// Distributed results merge into a cache and render from it.
		cfg.Results = resultcache.New()
	}
	jobs := make([]exp.Job, 0, len(figures))
	for _, id := range figures {
		jobs = append(jobs, exp.Job{Experiment: id, Params: cfg.Params()})
	}
	co, err := distrib.New(distrib.Config{
		Jobs: jobs, LeaseTTL: o.leaseTTL, MaxBatch: o.maxBatch,
		CheckpointPath: o.checkpoint, CheckpointEvery: o.checkpointEvery,
		Results: cfg.Results,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: distrib.Handler(co)}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "sweep: coordinating %d cells on %s\n", co.Plan().Len(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.localWorker {
		w := &distrib.Worker{
			Name:        "local",
			Transport:   distrib.Loopback{Co: co},
			Batch:       o.maxBatch,
			Parallelism: cfg.Parallelism,
			Results:     cfg.Results,
		}
		go w.Run(ctx)
	}

	// Periodic progress with per-worker throughput, mirroring /statusz.
	progress := time.NewTicker(5 * time.Second)
	defer progress.Stop()
	go func() {
		last := -1
		for range progress.C {
			s := co.Status()
			if s.Done != last {
				last = s.Done
				fmt.Fprintln(os.Stderr, s.ProgressLine())
			}
		}
	}()

	if err := co.Wait(ctx); err != nil {
		srv.Close()
		fail(fmt.Errorf("interrupted (%v); checkpoint %s holds %d done cells",
			err, o.checkpoint, co.Status().Done))
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, co.Status().ProgressLine())

	co.MergeInto(cfg.Results)
	if err := renderFigures(cfg, figures); err != nil {
		fail(err)
	}
}

// runWorker serves a coordinator until the sweep completes. The local
// figure-selection flags are ignored: the plan comes from the spec.
func runWorker(cfg exp.Config, addr, name string, batch int) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &distrib.Worker{
		Name:        name,
		Transport:   distrib.Dial(addr),
		Batch:       batch,
		Parallelism: cfg.Parallelism,
		Results:     cfg.Results,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if err := w.Run(ctx); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
