// Command sweep runs the §6.3.1 design-space sweeps: Figure 6 (epoch
// length × MEA counter count) and Figure 7 (counter width).
//
// Usage:
//
//	sweep                 # quick subset
//	sweep -full           # sweep-workload subset at full trace length
//	sweep -fig 6          # only Figure 6
//	sweep -j 4            # bound the worker pool (0 = GOMAXPROCS)
//	sweep -result-cache d # persist cell results, skip them next run
//
// Each sweep fans its (design point × workload) grid out to a worker
// pool; results are deterministic for a fixed seed regardless of -j.
// Cell results are memoized in-process by default — the sweeps overlap
// (Fig7's 16-bit points are Fig6 points) — and -result-cache DIR makes
// the memo persistent; -no-result-cache turns it off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/resultcache"
)

// sweepSubset mirrors mempod.SweepWorkloads (one workload per behaviour
// class) without importing the facade from a command.
var sweepSubset = []string{"cactus", "xalanc", "mcf", "bwaves", "lbm", "mix5"}

func main() {
	var (
		full      = flag.Bool("full", false, "1M-request traces over the sweep subset")
		fig       = flag.Int("fig", 0, "run only figure 6 or 7 (0 = both)")
		requests  = flag.Int("requests", 0, "override trace length")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		ablate    = flag.Bool("ablate", false, "also run the pod-count and tracker ablations")
		parallel  = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = flag.String("result-cache", "", "persist cell results in this directory (reused across runs)")
		noCache   = flag.Bool("no-result-cache", false, "disable result memoization entirely")
	)
	flag.Parse()

	cfg := exp.QuickConfig().WithWorkloads(sweepSubset...)
	cfg.Requests = 150_000
	cfg.Parallelism = *parallel
	if !*noCache {
		cfg.Results = resultcache.New()
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				fail(err)
			}
			cfg.Results.SetDir(*cacheDir)
		}
	} else if *cacheDir != "" {
		fail(fmt.Errorf("-result-cache and -no-result-cache are mutually exclusive"))
	}
	if *full {
		cfg.Requests = 1_000_000
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *workloads != "" {
		cfg = cfg.WithWorkloads(strings.Split(*workloads, ",")...)
	}

	if *fig == 0 || *fig == 6 {
		t, err := cfg.Fig6()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if *fig == 0 || *fig == 7 {
		t, err := cfg.Fig7()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if *ablate {
		t, err := cfg.PodSweep()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		t, err = cfg.TrackerSweep()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		t, err = cfg.EnergyTable()
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}
	if cfg.Results != nil {
		s := cfg.Results.Stats()
		fmt.Fprintf(os.Stderr, "sweep: result cache hits=%d misses=%d stale=%d read=%dB written=%dB\n",
			s.Hits, s.Misses, s.Stale, s.BytesRead, s.BytesWritten)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
