// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them, optionally writing per-experiment CSV files.
//
// Usage:
//
//	experiments                  # quick scale (~1 min)
//	experiments -full            # full scale (tens of minutes on one core)
//	experiments -only fig8,fig9  # a subset
//	experiments -csvdir out/     # also write CSVs
//	experiments -j 4 -progress   # bound worker count, show cell progress
//	experiments -result-cache d/ # persist cell results, skip them next run
//
// Simulation cells fan out to GOMAXPROCS workers by default (-j bounds
// them; -j 1 forces serial execution). Results are deterministic for a
// fixed seed regardless of -j.
//
// Cell results are memoized in-process by default, so experiments sharing
// design points (Fig6/Fig7, the three oracle figures) simulate each
// distinct cell once; -result-cache DIR persists them across runs and
// -no-result-cache disables memoization entirely. Cached results are
// field-identical to fresh simulation — only the wall time changes.
// Tables go to stdout; per-experiment wall time and cache activity go to
// stderr ("fig8: finished in 1.2s cache hits=162 misses=0 ...").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/profiling"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run at full scale")
		only     = flag.String("only", "", "comma-separated experiment ids (e.g. fig8,table1)")
		csvdir   = flag.String("csvdir", "", "directory to write per-experiment CSV files")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		fastSpec = flag.String("fast-spec", "", "fast-tier memory spec preset (default HBM; see mempod.Specs)")
		slowSpec = flag.String("slow-spec", "", "slow-tier memory spec preset (default DDR4-1600)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		cacheDir = flag.String("result-cache", "", "persist cell results in this directory (reused across runs)")
		noCache  = flag.Bool("no-result-cache", false, "disable result memoization entirely")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		serve      = flag.String("serve", "", "coordinate a distributed run on this address (host:port)")
		join       = flag.String("join", "", "work for the coordinator at this address")
		workerName = flag.String("worker-name", "", "name reported to the coordinator (default host:pid)")
		leaseBatch = flag.Int("lease-batch", 0, "cells per lease (default 16 worker-side, 64 coordinator cap)")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "lease expiry without renewal (coordinator)")
		ckptPath   = flag.String("checkpoint", "", "coordinator checkpoint file (resumed if it exists)")
		ckptEvery  = flag.Duration("checkpoint-every", 10*time.Second, "checkpoint write interval")
		noLocal    = flag.Bool("no-local-worker", false, "serve only; don't compute cells in this process")
	)
	flag.Parse()
	if *serve != "" && *join != "" {
		fmt.Fprintln(os.Stderr, "experiments: -serve and -join are mutually exclusive")
		os.Exit(1)
	}
	if *join != "" {
		if err := joinSweep(*join, *workerName, *leaseBatch, *parallel, *cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	var rcache *mempod.ResultCache
	if !*noCache {
		var err error
		if rcache, err = mempod.NewResultCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else if *cacheDir != "" {
		fmt.Fprintln(os.Stderr, "experiments: -result-cache and -no-result-cache are mutually exclusive")
		os.Exit(1)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	scale := mempod.Quick
	if *full {
		scale = mempod.Full
	}

	selected := mempod.Experiments()
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var filtered []mempod.Experiment
		for _, e := range selected {
			if want[string(e)] {
				filtered = append(filtered, e)
			}
		}
		selected = filtered
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(1)
	}

	if *serve != "" {
		ids := make([]string, len(selected))
		for i, e := range selected {
			ids[i] = string(e)
		}
		err := serveSweep(ids, serveOptions{
			addr: *serve, full: *full, fastSpec: *fastSpec, slowSpec: *slowSpec,
			parallelism: *parallel, cacheDir: *cacheDir, csvdir: *csvdir,
			leaseTTL: *leaseTTL, maxBatch: *leaseBatch,
			checkpoint: *ckptPath, checkpointEvery: *ckptEvery, localWorker: !*noLocal,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	var prev mempod.ResultCacheStats
	for _, e := range selected {
		start := time.Now()
		opts := mempod.RunOptions{Scale: scale, Parallelism: *parallel,
			FastSpec: *fastSpec, SlowSpec: *slowSpec, Results: rcache}
		if *progress {
			e := e
			opts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "%s: %d/%d cells\n", e, done, total)
			}
		}
		tab, err := mempod.RunExperimentOpts(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Println(tab.Text)
		// Wall time and cache activity go to stderr so stdout is purely
		// tables (diffable across runs; CI compares cold vs warm output).
		line := fmt.Sprintf("%s: finished in %s", e, time.Since(start).Round(time.Millisecond))
		if rcache != nil {
			cur := rcache.Stats()
			line += " cache " + statsDelta(prev, cur).String()
			prev = cur
		}
		fmt.Fprintln(os.Stderr, line)
		if *csvdir != "" {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvdir, string(e)+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	if rcache != nil {
		fmt.Fprintf(os.Stderr, "experiments: result cache total %s\n", rcache.Stats())
	}
}

// statsDelta returns the cache activity between two snapshots — one
// experiment's share of the shared cache's counters.
func statsDelta(prev, cur mempod.ResultCacheStats) mempod.ResultCacheStats {
	return mempod.ResultCacheStats{
		Hits:      cur.Hits - prev.Hits,
		Misses:    cur.Misses - prev.Misses,
		DiskLoads: cur.DiskLoads - prev.DiskLoads,
		Stale:     cur.Stale - prev.Stale,
		Persisted: cur.Persisted - prev.Persisted,
		BytesRead: cur.BytesRead - prev.BytesRead, BytesWritten: cur.BytesWritten - prev.BytesWritten,
	}
}
