// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them, optionally writing per-experiment CSV files.
//
// Usage:
//
//	experiments                  # quick scale (~1 min)
//	experiments -full            # full scale (tens of minutes on one core)
//	experiments -only fig8,fig9  # a subset
//	experiments -csvdir out/     # also write CSVs
//	experiments -j 4 -progress   # bound worker count, show cell progress
//
// Simulation cells fan out to GOMAXPROCS workers by default (-j bounds
// them; -j 1 forces serial execution). Results are deterministic for a
// fixed seed regardless of -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/profiling"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run at full scale")
		only     = flag.String("only", "", "comma-separated experiment ids (e.g. fig8,table1)")
		csvdir   = flag.String("csvdir", "", "directory to write per-experiment CSV files")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		fastSpec = flag.String("fast-spec", "", "fast-tier memory spec preset (default HBM; see mempod.Specs)")
		slowSpec = flag.String("slow-spec", "", "slow-tier memory spec preset (default DDR4-1600)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	scale := mempod.Quick
	if *full {
		scale = mempod.Full
	}

	selected := mempod.Experiments()
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var filtered []mempod.Experiment
		for _, e := range selected {
			if want[string(e)] {
				filtered = append(filtered, e)
			}
		}
		selected = filtered
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(1)
	}

	for _, e := range selected {
		start := time.Now()
		opts := mempod.RunOptions{Scale: scale, Parallelism: *parallel,
			FastSpec: *fastSpec, SlowSpec: *slowSpec}
		if *progress {
			e := e
			opts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "%s: %d/%d cells\n", e, done, total)
			}
		}
		tab, err := mempod.RunExperimentOpts(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Println(tab.Text)
		fmt.Printf("(%s finished in %s)\n\n", e, time.Since(start).Round(time.Millisecond))
		if *csvdir != "" {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvdir, string(e)+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
