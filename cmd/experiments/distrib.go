// Distributed mode: -serve shards the selected experiments' cell plan
// across -join workers (the same protocol cmd/sweep speaks; the binaries
// interoperate), then renders every table locally from the merged
// results — byte-identical stdout to a serial run.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/exp"
	"repro/internal/resultcache"
)

type serveOptions struct {
	addr            string
	full            bool
	fastSpec        string
	slowSpec        string
	parallelism     int
	cacheDir        string
	csvdir          string
	leaseTTL        time.Duration
	maxBatch        int
	checkpoint      string
	checkpointEvery time.Duration
	localWorker     bool
}

// expCfg is the configuration experiment id runs at in distributed mode:
// the standard per-experiment config plus the command-line overrides that
// affect cell identity.
func expCfg(id string, o serveOptions) exp.Config {
	cfg := exp.ConfigFor(id, o.full)
	cfg.FastSpec, cfg.SlowSpec = o.fastSpec, o.slowSpec
	return cfg
}

// serveSweep coordinates the experiments' cells across workers, then
// renders the tables from the merged results in selection order.
func serveSweep(ids []string, o serveOptions) error {
	results := resultcache.New()
	if o.cacheDir != "" {
		if err := os.MkdirAll(o.cacheDir, 0o755); err != nil {
			return err
		}
		results.SetDir(o.cacheDir)
	}
	jobs := make([]exp.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, exp.Job{Experiment: id, Params: expCfg(id, o).Params()})
	}
	co, err := distrib.New(distrib.Config{
		Jobs: jobs, LeaseTTL: o.leaseTTL, MaxBatch: o.maxBatch,
		CheckpointPath: o.checkpoint, CheckpointEvery: o.checkpointEvery,
		Results: results,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: distrib.Handler(co)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "experiments: coordinating %d cells on %s\n", co.Plan().Len(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.localWorker {
		w := &distrib.Worker{
			Name:        "local",
			Transport:   distrib.Loopback{Co: co},
			Batch:       o.maxBatch,
			Parallelism: o.parallelism,
			Results:     results,
		}
		go w.Run(ctx)
	}

	if err := co.Wait(ctx); err != nil {
		return fmt.Errorf("interrupted (%v); checkpoint %s holds %d done cells",
			err, o.checkpoint, co.Status().Done)
	}
	fmt.Fprintln(os.Stderr, co.Status().ProgressLine())
	co.MergeInto(results)

	var prev resultcache.Stats
	for _, id := range ids {
		cfg := expCfg(id, o)
		cfg.Results = results
		cfg.Parallelism = o.parallelism
		start := time.Now()
		t, err := cfg.Experiment(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(t)
		cur := results.Stats()
		fmt.Fprintf(os.Stderr, "%s: finished in %s cache %s\n",
			id, time.Since(start).Round(time.Millisecond), cur.Sub(prev))
		prev = cur
		if o.csvdir != "" {
			if err := os.MkdirAll(o.csvdir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(o.csvdir, id+".csv"), []byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: result cache total %s\n", results.Stats())
	return nil
}

// joinSweep serves whatever coordinator is at addr until its sweep is
// done. The local experiment-selection flags are ignored: the plan comes
// from the coordinator's spec.
func joinSweep(addr, name string, batch, parallelism int, cacheDir string) error {
	results := resultcache.New()
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return err
		}
		results.SetDir(cacheDir)
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &distrib.Worker{
		Name:        name,
		Transport:   distrib.Dial(addr),
		Batch:       batch,
		Parallelism: parallelism,
		Results:     results,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	return w.Run(ctx)
}
