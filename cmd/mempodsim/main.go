// Command mempodsim runs one workload under one memory-management
// mechanism and prints the run's metrics.
//
// Usage:
//
//	mempodsim -workload mix5 -mech MemPod -requests 1000000
//	mempodsim -workload mix5 -trace-out mix5.snap   # record the trace too
//	mempodsim -trace-in mix5.snap -mech HMA         # replay a saved trace
//	mempodsim -list
//
// -compare records the workload's trace once and replays the packed
// snapshot under every mechanism, so the trace front-end cost is paid a
// single time instead of once per mechanism. With -result-cache DIR the
// per-mechanism results are also persisted, so re-running the same
// comparison (same trace, specs and seed) replays nothing; the cache
// summary is printed to stderr. -no-result-cache disables memoization.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/profiling"
	"repro/internal/runner"
)

// compareOrder derives the -compare mechanism set from the facade's
// registry: the no-migration TLM baseline first (the normalization base),
// then every migration mechanism in registry order, then HBM-only.
// DDR-only is omitted — it is Figure 10's normalization base, not a
// Figure 8 column.
func compareOrder() []mempod.Mechanism {
	order := []mempod.Mechanism{mempod.MechTLM}
	for _, m := range mempod.Mechanisms() {
		switch m {
		case mempod.MechTLM, mempod.MechHBMOnly, mempod.MechDDROnly:
			continue
		}
		order = append(order, m)
	}
	return append(order, mempod.MechHBMOnly)
}

// validMechanism checks -mech against the registry so an unknown name
// fails here with the full list instead of deep inside the run.
func validMechanism(name string) error {
	for _, m := range mempod.Mechanisms() {
		if string(m) == name {
			return nil
		}
	}
	names := make([]string, len(mempod.Mechanisms()))
	for i, m := range mempod.Mechanisms() {
		names[i] = string(m)
	}
	return fmt.Errorf("unknown mechanism %q (valid: %s)", name, strings.Join(names, ", "))
}

// parseSpecPair splits a -spec value "FAST+SLOW" (either side may be
// empty to keep its default) and validates both names against the dram
// preset registry, so typos fail before any simulation runs.
func parseSpecPair(v string) (fast, slow string, err error) {
	if v == "" {
		return "", "", nil
	}
	parts := strings.Split(v, "+")
	if len(parts) != 2 {
		return "", "", fmt.Errorf("-spec must be FAST+SLOW (e.g. HBM2+DDR5-4800; presets: %s)",
			strings.Join(mempod.Specs(), ", "))
	}
	fast, slow = parts[0], parts[1]
	for _, name := range []string{fast, slow} {
		if name == "" {
			continue
		}
		if err := mempod.CheckSpec(name); err != nil {
			return "", "", err
		}
	}
	return fast, slow, nil
}

func main() {
	var (
		wl       = flag.String("workload", "mix1", "workload name (see -list)")
		mechName = flag.String("mech", "MemPod", "mechanism: MemPod, HMA, THM, CAMEO, Migrant, TLM, HBM-only, DDR-only")
		requests = flag.Int("requests", 1_000_000, "trace length")
		seed     = flag.Int64("seed", 42, "trace seed")
		future   = flag.Bool("future", false, "use 4GHz HBM + DDR4-2400 (§6.3.4)")
		specPair = flag.String("spec", "", "memory specs as FAST+SLOW presets, e.g. HBM2+DDR5-4800 or HBM+NVM (see -list)")
		interval = flag.Int("mempod-interval-us", 0, "MemPod epoch in µs (0 = paper default 50)")
		counters = flag.Int("mempod-counters", 0, "MEA counters per pod (0 = paper default 64)")
		bits     = flag.Int("mempod-bits", 0, "MEA counter width (0 = paper default 2)")
		cache    = flag.Int("cache-bytes", 0, "bookkeeping cache capacity (0 = disabled)")
		list     = flag.Bool("list", false, "list workloads and exit")
		compare  = flag.Bool("compare", false, "run all mechanisms on the workload and tabulate")
		custom   = flag.String("custom", "", "JSON file defining a custom workload (overrides -workload)")
		traceIn  = flag.String("trace-in", "", "replay a recorded trace snapshot (overrides -workload/-requests/-seed)")
		traceOut = flag.String("trace-out", "", "record the generated trace to this snapshot file")
		parallel = flag.Int("j", 0, "-compare: max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("result-cache", "", "persist cell results in this directory (reused across runs)")
		noCache  = flag.Bool("no-result-cache", false, "disable result memoization entirely")
		podsPar  = flag.String("pods-parallel", "auto", "intra-run pod-parallel mode: auto, off, or a worker count >= 2 (bit-identical results)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mempodsim:", err)
		}
	}()

	if *list {
		fmt.Println("workloads:")
		fmt.Println("  " + strings.Join(mempod.Workloads(), "\n  "))
		names := make([]string, len(mempod.Mechanisms()))
		for i, m := range mempod.Mechanisms() {
			names[i] = string(m)
		}
		fmt.Println("mechanisms:")
		fmt.Println("  " + strings.Join(names, "\n  "))
		fmt.Println("memory specs (use -spec FAST+SLOW):")
		fmt.Println("  " + strings.Join(mempod.Specs(), "\n  "))
		return
	}

	if err := validMechanism(*mechName); err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}
	fastSpec, slowSpec, err := parseSpecPair(*specPair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}

	// Resolve a recorded trace when one is loaded, saved, or shared across
	// a -compare run; tr == nil keeps the plain generate-and-run path.
	tr, err := resolveTrace(*traceIn, *traceOut, *compare, *wl, *custom, *requests, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}

	podShards, err := parsePodsParallel(*podsPar)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}

	var rcache *mempod.ResultCache
	if !*noCache {
		if rcache, err = mempod.NewResultCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "mempodsim:", err)
			os.Exit(1)
		}
	} else if *cacheDir != "" {
		fmt.Fprintln(os.Stderr, "mempodsim: -result-cache and -no-result-cache are mutually exclusive")
		os.Exit(1)
	}

	if *compare {
		if err := runCompare(tr, *requests, *seed, *future, fastSpec, slowSpec, *parallel, podShards, rcache); err != nil {
			fmt.Fprintln(os.Stderr, "mempodsim:", err)
			os.Exit(1)
		}
		return
	}

	opts := mempod.Options{
		Mechanism:      mempod.Mechanism(*mechName),
		Requests:       *requests,
		Seed:           *seed,
		FutureMemories: *future,
		FastSpec:       fastSpec,
		SlowSpec:       slowSpec,
		MemPod: mempod.MemPodOptions{
			Interval:    mempod.Duration(*interval) * mempod.Microsecond,
			Counters:    *counters,
			CounterBits: *bits,
			CacheBytes:  *cache,
		},
		HMA:       mempod.HMAOptions{CacheBytes: *cache},
		PodShards: podShards,
		Results:   rcache,
	}
	var res mempod.Result
	if tr != nil {
		res, err = mempod.RunTrace(tr, opts)
	} else {
		res, err = runOne(*wl, *custom, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mempodsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("mechanism           %s\n", res.Mechanism)
	fmt.Printf("requests            %d\n", res.Requests)
	fmt.Printf("AMMAT               %.3f ns\n", res.AMMAT())
	fmt.Printf("simulated time      %s\n", res.Span)
	fmt.Printf("fast service        %.1f%% (incl. migration traffic)\n", 100*res.FastServiceFraction())
	fmt.Printf("row-buffer hit rate %.1f%% (fast %.1f%%, slow %.1f%%)\n",
		100*res.RowHitRate, 100*res.FastRowHitRate, 100*res.SlowRowHitRate)
	fmt.Printf("intervals           %d\n", res.Mig.Intervals)
	fmt.Printf("page migrations     %d (%.1f MB moved)\n",
		res.Mig.PageMigrations, float64(res.Mig.BytesMoved)/(1<<20))
	if res.Mig.CacheHits+res.Mig.CacheMisses > 0 {
		fmt.Printf("bookkeeping cache   %.1f%% hit (%d misses)\n",
			100*float64(res.Mig.CacheHits)/float64(res.Mig.CacheHits+res.Mig.CacheMisses),
			res.Mig.CacheMisses)
	}
	fmt.Printf("lock stalls         %d\n", res.Mig.LockStalls)
}

// runOne dispatches between a built-in and a custom workload.
func runOne(wl, customPath string, o mempod.Options) (mempod.Result, error) {
	if customPath == "" {
		return mempod.Run(wl, o)
	}
	f, err := os.Open(customPath)
	if err != nil {
		return mempod.Result{}, err
	}
	defer f.Close()
	return mempod.RunCustom(f, o)
}

// resolveTrace loads, records and/or saves the run's trace snapshot.
// A trace materializes when -trace-in names a file to replay, when
// -trace-out asks for the generation to be captured, or for -compare,
// which records once and replays the snapshot under every mechanism.
func resolveTrace(traceIn, traceOut string, compare bool, wl, customPath string, requests int, seed int64) (*mempod.Trace, error) {
	var tr *mempod.Trace
	switch {
	case traceIn != "":
		var err error
		if tr, err = mempod.OpenTrace(traceIn); err != nil {
			return nil, err
		}
		how := "read"
		if tr.Mapped() {
			how = "mapped"
		}
		fmt.Fprintf(os.Stderr, "mempodsim: replaying %s (%d requests, %.1f MB packed, %s) from %s\n",
			tr.Name(), tr.Requests(), float64(tr.Size())/(1<<20), how, traceIn)
	case traceOut != "" || compare:
		var err error
		if customPath != "" {
			f, oerr := os.Open(customPath)
			if oerr != nil {
				return nil, oerr
			}
			tr, err = mempod.RecordCustomTrace(f, requests, seed)
			f.Close()
		} else {
			tr, err = mempod.RecordTrace(wl, requests, seed)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, nil
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		if err := tr.Save(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "mempodsim: wrote %s (%d requests, %.1f MB packed) to %s\n",
			tr.Name(), tr.Requests(), float64(tr.Size())/(1<<20), traceOut)
	}
	return tr, nil
}

// parsePodsParallel maps the -pods-parallel flag onto Options.PodShards:
// "auto" resolves to 0 (let each layer pick), "off" to -1 (force serial),
// and an integer >= 2 forces that worker count.
func parsePodsParallel(v string) (int, error) {
	switch v {
	case "auto", "":
		return 0, nil
	case "off":
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 2 {
		return 0, fmt.Errorf("-pods-parallel must be auto, off, or a worker count >= 2 (got %q)", v)
	}
	return n, nil
}

// runCompare tabulates every mechanism on one recorded trace, replaying
// the shared packed snapshot concurrently (each run still builds its own
// simulator state; only the immutable snapshot is shared). In auto mode,
// CPUs left over by the mechanism pool go to each run's pod-parallel
// engine, so -j 1 on a big machine still uses the whole machine.
func runCompare(tr *mempod.Trace, requests int, seed int64, future bool, fastSpec, slowSpec string, parallelism, podShards int, rcache *mempod.ResultCache) error {
	order := compareOrder()
	if podShards == 0 {
		podShards = runner.PerTaskParallelism(parallelism, len(order))
	}
	tasks := make([]runner.Task[mempod.Result], len(order))
	for i, m := range order {
		m := m
		o := mempod.Options{Mechanism: m, Requests: requests, Seed: seed,
			FutureMemories: future, FastSpec: fastSpec, SlowSpec: slowSpec,
			PodShards: podShards, Results: rcache}
		if m == mempod.MechHMA {
			// Scale HMA to the trace length (see EXPERIMENTS.md).
			o.HMA = mempod.HMAOptions{
				Interval:      10 * mempod.Millisecond,
				SortStall:     700 * mempod.Microsecond,
				MaxMigrations: 4096,
			}
		}
		tasks[i] = runner.Task[mempod.Result]{
			Key: string(m),
			Run: func() (mempod.Result, error) { return mempod.RunTrace(tr, o) },
		}
	}
	results, err := runner.Run(tasks, runner.Options{Parallelism: parallelism})
	if err != nil {
		return err
	}
	var base mempod.Result
	for i, m := range order {
		if m == mempod.MechTLM {
			base = results[i].Value
		}
	}
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"mechanism", "AMMAT (ns)", "normalized", "fast %", "moved MB")
	for i, m := range order {
		res := results[i].Value
		fmt.Printf("%-10s %12.2f %12.3f %11.1f%% %12.1f\n",
			m, res.AMMAT(), res.Normalized(base), 100*res.FastServiceFraction(),
			float64(res.Mig.BytesMoved)/(1<<20))
	}
	if rcache != nil {
		fmt.Fprintf(os.Stderr, "mempodsim: result cache %s\n", rcache.Stats())
	}
	return nil
}
