package main

import (
	"strings"
	"testing"

	"repro"
)

// TestCompareOrder pins the registry-derived -compare column set: the TLM
// normalization base leads, every migration mechanism (including Migrant)
// follows in registry order, HBM-only closes, and DDR-only stays out.
func TestCompareOrder(t *testing.T) {
	order := compareOrder()
	if len(order) == 0 || order[0] != mempod.MechTLM {
		t.Fatalf("compare order %v does not start with TLM", order)
	}
	if order[len(order)-1] != mempod.MechHBMOnly {
		t.Errorf("compare order %v does not end with HBM-only", order)
	}
	seen := map[mempod.Mechanism]int{}
	for _, m := range order {
		seen[m]++
		if seen[m] > 1 {
			t.Errorf("mechanism %s repeated in %v", m, order)
		}
	}
	for _, want := range []mempod.Mechanism{mempod.MechMemPod, mempod.MechHMA,
		mempod.MechTHM, mempod.MechCAMEO, mempod.MechMigrant} {
		if seen[want] == 0 {
			t.Errorf("mechanism %s missing from compare order %v", want, order)
		}
	}
	if seen[mempod.MechDDROnly] != 0 {
		t.Errorf("DDR-only must not appear in compare order %v", order)
	}
	// Registry-driven: every mechanism but DDR-only appears.
	if len(order) != len(mempod.Mechanisms())-1 {
		t.Errorf("compare order has %d mechanisms, registry has %d (expect registry-1)",
			len(order), len(mempod.Mechanisms()))
	}
}

// TestValidMechanism checks the pre-flight -mech validation: registry names
// pass, and an unknown name's error names both the typo and the valid set.
func TestValidMechanism(t *testing.T) {
	for _, m := range mempod.Mechanisms() {
		if err := validMechanism(string(m)); err != nil {
			t.Errorf("registry mechanism %s rejected: %v", m, err)
		}
	}
	err := validMechanism("MemPodd")
	if err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "MemPodd") {
		t.Errorf("error %q does not name the bad mechanism", msg)
	}
	for _, m := range mempod.Mechanisms() {
		if !strings.Contains(msg, string(m)) {
			t.Errorf("error %q does not list valid mechanism %s", msg, m)
		}
	}
}

// TestParseSpecPair covers the -spec FAST+SLOW syntax: empty keeps the
// defaults, either side may be blank, malformed values and unknown preset
// names fail with errors that list the registry.
func TestParseSpecPair(t *testing.T) {
	fast, slow, err := parseSpecPair("")
	if err != nil || fast != "" || slow != "" {
		t.Errorf("empty -spec: got (%q, %q, %v)", fast, slow, err)
	}

	fast, slow, err = parseSpecPair("HBM2+DDR5-4800")
	if err != nil || fast != "HBM2" || slow != "DDR5-4800" {
		t.Errorf("HBM2+DDR5-4800: got (%q, %q, %v)", fast, slow, err)
	}

	fast, slow, err = parseSpecPair("+NVM")
	if err != nil || fast != "" || slow != "NVM" {
		t.Errorf("+NVM: got (%q, %q, %v)", fast, slow, err)
	}

	if _, _, err = parseSpecPair("HBM2"); err == nil {
		t.Error("missing '+' accepted")
	} else if !strings.Contains(err.Error(), "FAST+SLOW") {
		t.Errorf("format error %q does not describe the syntax", err)
	}

	_, _, err = parseSpecPair("HBM+GDDR7")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "GDDR7") {
		t.Errorf("error %q does not name the bad preset", msg)
	}
	for _, name := range mempod.Specs() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid preset %s", msg, name)
		}
	}
}

// TestParsePodsParallel covers the -pods-parallel flag mapping.
func TestParsePodsParallel(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"auto", 0, true}, {"", 0, true}, {"off", -1, true},
		{"2", 2, true}, {"8", 8, true},
		{"1", 0, false}, {"0", 0, false}, {"-3", 0, false}, {"many", 0, false},
	}
	for _, c := range cases {
		got, err := parsePodsParallel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parsePodsParallel(%q) = (%d, %v), want (%d, nil)", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parsePodsParallel(%q) accepted", c.in)
		}
	}
}
