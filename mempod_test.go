package mempod

import (
	"strings"
	"testing"
)

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 27 {
		t.Fatalf("Workloads() = %d names, want 27", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w] {
			t.Fatalf("duplicate workload %q", w)
		}
		seen[w] = true
	}
	for _, want := range []string{"mcf", "libquantum", "mix1", "mix12"} {
		if !seen[want] {
			t.Errorf("missing workload %q", want)
		}
	}
}

func TestRunDefaultsToMemPod(t *testing.T) {
	res, err := Run("gcc", Options{Requests: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanism != "MemPod" {
		t.Errorf("default mechanism %q", res.Mechanism)
	}
	if res.Requests != 30_000 || res.AMMAT() <= 0 {
		t.Errorf("bad result: %+v", res)
	}
}

func TestRunEveryMechanism(t *testing.T) {
	for _, m := range Mechanisms() {
		o := Options{Mechanism: m, Requests: 20_000}
		if m == MechHMA {
			o.HMA = HMAOptions{Interval: Millisecond, SortStall: 70 * Microsecond, MaxMigrations: 256}
		}
		res, err := Run("mix2", o)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if res.AMMAT() <= 0 {
			t.Errorf("%s: non-positive AMMAT", m)
		}
	}
}

func TestRunFutureMemoriesFaster(t *testing.T) {
	base, err := Run("cactus", Options{Mechanism: MechTLM, Requests: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := Run("cactus", Options{Mechanism: MechTLM, Requests: 40_000, FutureMemories: true})
	if err != nil {
		t.Fatal(err)
	}
	if fut.AMMAT() >= base.AMMAT() {
		t.Errorf("future memories (%.2f ns) not faster than baseline (%.2f ns)",
			fut.AMMAT(), base.AMMAT())
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if _, err := Run("nonesuch", Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run("gcc", Options{Mechanism: "bogus"}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run("mix7", Options{Requests: 25_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("mix7", Options{Requests: 25_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs differ")
	}
}

func TestRunMemPodOptionsApplied(t *testing.T) {
	// A MemPod with one counter migrates far less than the default 64.
	small, err := Run("cactus", Options{Requests: 60_000, MemPod: MemPodOptions{Counters: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run("cactus", Options{Requests: 60_000, MemPod: MemPodOptions{Counters: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Mig.PageMigrations >= big.Mig.PageMigrations {
		t.Errorf("1-counter MemPod migrated %d >= 256-counter %d",
			small.Mig.PageMigrations, big.Mig.PageMigrations)
	}
}

func TestExperimentsEnumeration(t *testing.T) {
	es := Experiments()
	if len(es) != 12 {
		t.Fatalf("Experiments() = %d entries, want 12", len(es))
	}
}

func TestRunExperimentStaticTables(t *testing.T) {
	for _, e := range []Experiment{Table1, Table2, Table3} {
		tab, err := RunExperiment(e, Quick)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if tab.Text == "" || tab.CSV == "" || len(tab.Rows) == 0 {
			t.Errorf("%s: empty rendering", e)
		}
	}
}

func TestRunExperimentQuickOracle(t *testing.T) {
	tab, err := RunExperiment(Fig2, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Text, "MEA") || !strings.Contains(tab.Text, "FC") {
		t.Errorf("fig2 text missing schemes:\n%s", tab.Text)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCustomWorkload(t *testing.T) {
	def := `{
	  "name": "kv-store",
	  "profiles": [{
	    "name": "kv",
	    "footprint_pages": 65536,
	    "hot_pages": 4096, "hot_frac": 0.85, "zipf_s": 1.2,
	    "lines_per_touch": 2, "write_frac": 0.4, "gap_mean_ns": 70
	  }],
	  "cores": ["kv"]
	}`
	res, err := RunCustom(strings.NewReader(def), Options{Requests: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "kv-store" || res.AMMAT() <= 0 {
		t.Fatalf("custom run result %+v", res)
	}
	if _, err := RunCustom(strings.NewReader("not json"), Options{}); err == nil {
		t.Error("garbage definition accepted")
	}
}
