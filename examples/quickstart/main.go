// Quickstart: simulate one multi-programmed workload under MemPod and
// under a no-migration two-level memory, and compare the paper's headline
// metric (AMMAT — average main memory access time).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const workloadName = "mix5"
	const requests = 1_000_000

	// A two-level memory (1 GB HBM + 8 GB DDR4) with no migration: the
	// baseline every figure of the paper normalizes against.
	tlm, err := mempod.Run(workloadName, mempod.Options{
		Mechanism: mempod.MechTLM,
		Requests:  requests,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same memory managed by MemPod: four pods, each tracking its
	// pages with 64 two-bit MEA counters and migrating up to 64 hot pages
	// into its fast channels every 50 µs.
	mp, err := mempod.Run(workloadName, mempod.Options{
		Mechanism: mempod.MechMemPod,
		Requests:  requests,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, %d requests\n\n", workloadName, requests)
	fmt.Printf("%-22s %10s %12s %14s\n", "mechanism", "AMMAT", "fast share", "moved")
	for _, r := range []mempod.Result{tlm, mp} {
		fmt.Printf("%-22s %8.2fns %11.1f%% %12.1fMB\n",
			r.Mechanism, r.AMMAT(), 100*r.FastServiceFraction(),
			float64(r.Mig.BytesMoved)/(1<<20))
	}
	fmt.Printf("\nMemPod improves AMMAT by %.1f%% over the no-migration baseline.\n",
		100*(1-mp.AMMAT()/tlm.AMMAT()))
}
