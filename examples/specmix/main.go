// specmix reproduces a slice of the paper's Figure 8: one mixed SPEC-like
// workload run under every mechanism, with AMMAT normalized to the
// no-migration two-level memory. It prints the same ranking the paper
// reports on average: MemPod ahead of THM, HMA and CAMEO, with HBM-only as
// the (unbuildable at 9 GB) lower bound.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	workloadName := "mix5"
	if len(os.Args) > 1 {
		workloadName = os.Args[1]
	}
	const requests = 2_000_000

	mechanisms := []mempod.Mechanism{
		mempod.MechTLM, mempod.MechMemPod, mempod.MechHMA,
		mempod.MechTHM, mempod.MechCAMEO, mempod.MechHBMOnly,
	}

	results := make(map[mempod.Mechanism]mempod.Result, len(mechanisms))
	for _, m := range mechanisms {
		o := mempod.Options{Mechanism: m, Requests: requests}
		if m == mempod.MechHMA {
			// Scale HMA's 100 ms epoch to the trace length, keeping the
			// paper's 7% sort duty cycle (see EXPERIMENTS.md).
			o.HMA = mempod.HMAOptions{
				Interval:      10 * mempod.Millisecond,
				SortStall:     700 * mempod.Microsecond,
				MaxMigrations: 4096,
			}
		}
		r, err := mempod.Run(workloadName, o)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		results[m] = r
	}

	base := results[mempod.MechTLM]
	fmt.Printf("workload %s, %d requests — AMMAT normalized to TLM (%.2f ns)\n\n",
		workloadName, requests, base.AMMAT())
	fmt.Printf("%-10s %12s %12s %14s %12s\n", "mechanism", "AMMAT (ns)", "normalized", "row-buffer", "moved (MB)")
	for _, m := range mechanisms {
		r := results[m]
		fmt.Printf("%-10s %12.2f %12.3f %13.1f%% %12.1f\n",
			m, r.AMMAT(), r.Normalized(base), 100*r.RowHitRate,
			float64(r.Mig.BytesMoved)/(1<<20))
	}
}
