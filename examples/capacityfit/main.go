// capacityfit demonstrates the paper's libquantum observation (§6.3.2):
// when a workload's entire working set fits inside the 1 GB of fast
// memory, a migrating system converges to serving everything from HBM —
// matching (and through row-buffer co-location, potentially beating) an
// HBM-only machine — while capacity-limited workloads cannot.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const requests = 1_000_000
	cases := []struct {
		workload string
		note     string
	}{
		{"libquantum", "96 MiB working set: fits in 1 GB HBM"},
		{"mcf", "3.4 GiB footprint: cannot fit"},
	}

	for _, c := range cases {
		fmt.Printf("%s (%s)\n", c.workload, c.note)
		for _, m := range []mempod.Mechanism{mempod.MechHBMOnly, mempod.MechTLM, mempod.MechMemPod} {
			r, err := mempod.Run(c.workload, mempod.Options{Mechanism: m, Requests: requests})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s AMMAT %7.2f ns   fast %5.1f%%   row-buffer hits %5.1f%%\n",
				m, r.AMMAT(), 100*r.FastServiceFraction(), 100*r.RowHitRate)
		}
		fmt.Println()
	}
	fmt.Println("For the fitting workload the three configurations converge; for the")
	fmt.Println("capacity-limited one, MemPod recovers part of the HBM-only gap that")
	fmt.Println("the no-migration TLM leaves on the table.")
}
