// oracle reproduces the §3 offline study at quick scale: slice traces into
// 5500-request intervals, let a 128-entry MEA unit and exact Full Counters
// observe each interval, and grade both against the next interval's true
// hottest pages. The streaming rows show the paper's signature result —
// exact counting predicts the future at almost zero accuracy while MEA's
// recency bias still lands hits.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, e := range []mempod.Experiment{mempod.Fig1, mempod.Fig2, mempod.Fig3} {
		tab, err := mempod.RunExperiment(e, mempod.Quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Text)
	}
	fmt.Println("Full-scale versions: go run ./cmd/meastudy -full")
}
