// futurescaling reproduces a slice of the paper's Figure 10: as the speed
// differential between stacked and off-chip memory widens (4 GHz HBM vs
// DDR4-2400), migration mechanisms gain value, and MemPod scales best.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(w string, m mempod.Mechanism, future bool) mempod.Result {
	o := mempod.Options{Mechanism: m, Requests: 2_000_000, FutureMemories: future}
	if m == mempod.MechHMA {
		o.HMA = mempod.HMAOptions{
			Interval:      10 * mempod.Millisecond,
			SortStall:     700 * mempod.Microsecond,
			MaxMigrations: 4096,
		}
		if future {
			// The paper reduces HMA's sort penalty 40% for the faster
			// future processor.
			o.HMA.SortStall = 420 * mempod.Microsecond
		}
	}
	r, err := mempod.Run(w, o)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	const workload = "mix5"
	mechanisms := []mempod.Mechanism{mempod.MechTLM, mempod.MechMemPod, mempod.MechTHM, mempod.MechHMA}

	fmt.Printf("workload %s — AMMAT improvement of migration over no-migration TLM\n\n", workload)
	fmt.Printf("%-10s %18s %18s\n", "mechanism", "today (HBM+DDR4-1600)", "future (4GHz HBM+DDR4-2400)")

	baseNow := run(workload, mempod.MechTLM, false)
	baseFut := run(workload, mempod.MechTLM, true)
	for _, m := range mechanisms[1:] {
		now := run(workload, m, false)
		fut := run(workload, m, true)
		fmt.Printf("%-10s %20.1f%% %21.1f%%\n", m,
			100*(1-now.AMMAT()/baseNow.AMMAT()),
			100*(1-fut.AMMAT()/baseFut.AMMAT()))
	}
	fmt.Println("\nThe wider the fast:slow differential, the more each migrated page is")
	fmt.Println("worth — the scalability argument of §6.3.4.")
}
