// customworkload shows how to evaluate MemPod on your own workload: a JSON
// definition describes per-core synthetic profiles (here, a key-value
// store's frontend plus background compaction) and the library runs it
// under any mechanism. The same file works with
// `mempodsim -custom workload.json -compare`.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"repro"
)

func main() {
	_, self, _, _ := runtime.Caller(0)
	path := filepath.Join(filepath.Dir(self), "workload.json")

	run := func(m mempod.Mechanism) mempod.Result {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		res, err := mempod.RunCustom(f, mempod.Options{Mechanism: m, Requests: 400_000})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	tlm := run(mempod.MechTLM)
	mp := run(mempod.MechMemPod)
	fmt.Printf("custom workload %q (6 frontend + 2 compaction cores)\n\n", tlm.Workload)
	fmt.Printf("no migration: AMMAT %.2f ns\n", tlm.AMMAT())
	fmt.Printf("MemPod:       AMMAT %.2f ns (%.1f%% better, %0.1f MB migrated)\n",
		mp.AMMAT(), 100*(1-mp.AMMAT()/tlm.AMMAT()),
		float64(mp.Mig.BytesMoved)/(1<<20))
}
