package mempod

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResultCacheRunDifferential is the facade-level correctness check:
// for every registered mechanism over two spec pairs, Run through a cache
// (cold, then warm from a fresh instance over the same store — a second
// process) must equal an uncached Run field by field.
func TestResultCacheRunDifferential(t *testing.T) {
	pairs := [][2]string{{"", ""}, {"HBM2", "DDR5-4800"}}
	for _, pair := range pairs {
		for _, m := range Mechanisms() {
			m := m
			name := string(m)
			if pair[0] != "" {
				name = pair[0] + "+" + pair[1] + "/" + name
			}
			t.Run(name, func(t *testing.T) {
				o := Options{Mechanism: m, Requests: 20_000,
					FastSpec: pair[0], SlowSpec: pair[1]}
				want, err := Run("mix5", o)
				if err != nil {
					t.Fatal(err)
				}

				dir := t.TempDir()
				cold, err := NewResultCache(dir)
				if err != nil {
					t.Fatal(err)
				}
				o.Results = cold
				got, err := Run("mix5", o)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("cold cached Run differs:\nfresh:  %+v\ncached: %+v", want, got)
				}
				if s := cold.Stats(); s.Misses != 1 || s.Hits != 0 {
					t.Fatalf("cold stats: %+v", s)
				}

				warm, err := NewResultCache(dir)
				if err != nil {
					t.Fatal(err)
				}
				o.Results = warm
				got, err = Run("mix5", o)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("warm cached Run differs:\nfresh:  %+v\ncached: %+v", want, got)
				}
				if s := warm.Stats(); s.Hits != 1 || s.Misses != 0 || s.DiskLoads != 1 {
					t.Fatalf("warm stats: %+v", s)
				}
			})
		}
	}
}

// TestResultCacheTraceReplayHits pins the trace half of the key: a replay
// is keyed by snapshot content, so the same trace — even saved to a file
// and reloaded, where the generating recipe is gone — hits the cells a
// previous replay cached.
func TestResultCacheTraceReplayHits(t *testing.T) {
	tr, err := RecordTrace("mix5", 20_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewResultCache("")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Requests: 20_000, Seed: 42, Results: rc}
	want, err := RunTrace(tr, o)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "mix5.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTrace(loaded, o)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reloaded replay differs:\nfirst:  %+v\nsecond: %+v", want, got)
	}
	if s := rc.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats after reloaded replay: %+v", s)
	}
}

// TestResultCacheRunCustomBypassed: custom workload definitions have no
// exact identity (the JSON's name doesn't pin its content), so RunCustom
// must never consult the cache.
func TestResultCacheRunCustomBypassed(t *testing.T) {
	rc, err := NewResultCache("")
	if err != nil {
		t.Fatal(err)
	}
	def := `{
	  "name": "custom1",
	  "profiles": [{
	    "name": "p",
	    "footprint_pages": 4096,
	    "hot_pages": 256, "hot_frac": 0.85, "zipf_s": 1.2,
	    "lines_per_touch": 2, "write_frac": 0.4, "gap_mean_ns": 70
	  }],
	  "cores": ["p"]
	}`
	o := Options{Requests: 10_000, Results: rc}
	if _, err := RunCustom(strings.NewReader(def), o); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCustom(strings.NewReader(def), o); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("RunCustom touched the cache: %+v", s)
	}
}

// TestResultCacheKeysSeparateOptions: any option that changes what is
// simulated must miss, not alias — seed, length, specs, mechanism
// parameters and the interval window all participate in the key.
func TestResultCacheKeysSeparateOptions(t *testing.T) {
	rc, err := NewResultCache("")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Requests: 10_000, Seed: 1, Results: rc}
	variants := []Options{
		base,
		{Requests: 10_000, Seed: 2, Results: rc},
		{Requests: 12_000, Seed: 1, Results: rc},
		{Requests: 10_000, Seed: 1, FastSpec: "HBM2", Results: rc},
		{Requests: 10_000, Seed: 1, SlowSpec: "DDR5-4800", Results: rc},
		{Requests: 10_000, Seed: 1, MemPod: MemPodOptions{Counters: 32}, Results: rc},
		{Requests: 10_000, Seed: 1, Window: 2048, Results: rc},
		{Requests: 10_000, Seed: 1, FutureMemories: true, Results: rc},
	}
	for i, o := range variants {
		if _, err := Run("mcf", o); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	if s := rc.Stats(); s.Misses != len(variants) || s.Hits != 0 {
		t.Fatalf("option variants aliased: %+v", s)
	}
	// And the exact same options do alias.
	if _, err := Run("mcf", base); err != nil {
		t.Fatal(err)
	}
	if s := rc.Stats(); s.Hits != 1 {
		t.Fatalf("identical rerun missed: %+v", s)
	}
}
