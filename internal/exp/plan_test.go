package exp

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/resultcache"
)

// planConfig is the small sweep configuration the plan tests run at.
func planConfig() Config {
	c := QuickConfig()
	c.Requests = 30_000 // enough for at least one oracle interval
	c.Workloads = selectWorkloads("cactus", "mix5")
	return c
}

func TestParamsRoundTrip(t *testing.T) {
	c := planConfig()
	c.FastSpec, c.SlowSpec = "HBM", "DDR4-1600"
	p := c.Params()
	b, err := json.Marshal(Job{Experiment: "fig6", Params: p})
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.Unmarshal(b, &job); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job.Params, p) {
		t.Fatalf("params round-trip mismatch:\n got %+v\nwant %+v", job.Params, p)
	}
	back, err := job.Params.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Params(), p) {
		t.Fatalf("config round-trip mismatch:\n got %+v\nwant %+v", back.Params(), p)
	}
	if _, err := (Params{Workloads: []string{"nonesuch"}}).Config(); err == nil {
		t.Fatal("bad workload name accepted")
	}
}

// TestPlanCoversExperimentCells runs an experiment against a fresh cache
// and asserts the plan enumerates exactly the cells it simulated: same
// count (Misses) and every key resident (all Hits on lookup).
func TestPlanCoversExperimentCells(t *testing.T) {
	for _, id := range []string{"fig6", "fig1", "ablation-pods", "specgrid"} {
		id := id
		t.Run(id, func(t *testing.T) {
			c := planConfig()
			c.Results = resultcache.New()
			if _, err := c.Experiment(id); err != nil {
				t.Fatal(err)
			}
			plan, err := BuildPlan([]Job{{Experiment: id, Params: c.Params()}})
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Results.Stats().Misses; got != plan.Len() {
				t.Fatalf("experiment simulated %d cells, plan enumerates %d", got, plan.Len())
			}
			for i := 0; i < plan.Len(); i++ {
				if _, ok := c.Results.Lookup(plan.Key(i)); !ok {
					t.Fatalf("plan cell %d (%s) not in cache after the run", i, plan.Key(i).Canonical())
				}
			}
		})
	}
}

// TestPlanStaticTablesEmpty pins that the static tables contribute no
// cells and unknown experiments fail to plan.
func TestPlanStaticTablesEmpty(t *testing.T) {
	plan, err := BuildPlan([]Job{
		{Experiment: "table1", Params: planConfig().Params()},
		{Experiment: "table2", Params: planConfig().Params()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 0 {
		t.Fatalf("static tables planned %d cells", plan.Len())
	}
	if _, err := BuildPlan([]Job{{Experiment: "nonesuch", Params: planConfig().Params()}}); err == nil {
		t.Fatal("unknown experiment planned")
	}
}

// TestPlanDeterministic pins that equal jobs build equal plans (the
// distributed protocol's core assumption) and that overlapping jobs
// dedupe shared cells.
func TestPlanDeterministic(t *testing.T) {
	jobs := []Job{
		{Experiment: "fig6", Params: planConfig().Params()},
		{Experiment: "fig7", Params: planConfig().Params()},
	}
	a, err := BuildPlan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() || a.Len() != b.Len() {
		t.Fatalf("same jobs, different plans: %016x/%d vs %016x/%d",
			a.Fingerprint(), a.Len(), b.Fingerprint(), b.Len())
	}
	solo6, _ := BuildPlan(jobs[:1])
	solo7, _ := BuildPlan(jobs[1:])
	if a.Len() >= solo6.Len()+solo7.Len() {
		t.Fatalf("fig6+fig7 plan (%d cells) does not dedupe the shared design point (%d + %d)",
			a.Len(), solo6.Len(), solo7.Len())
	}
	if solo6.Fingerprint() == a.Fingerprint() {
		t.Fatal("different job sets share a fingerprint")
	}
}

// TestRunCellsFrames pins the RunCells contract: one frame per requested
// index in request order, each a valid MPR1 file carrying that cell's
// key; out-of-range indices fail their own slot only.
func TestRunCellsFrames(t *testing.T) {
	c := planConfig()
	plan, err := BuildPlan([]Job{{Experiment: "fig1", Params: c.Params()}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != len(c.Workloads) {
		t.Fatalf("oracle plan has %d cells, want one per workload (%d)", plan.Len(), len(c.Workloads))
	}
	cache := resultcache.New()
	indices := []int{1, 0, plan.Len()}
	runs := plan.RunCells(indices, RunCellsOptions{Results: cache})
	if len(runs) != len(indices) {
		t.Fatalf("got %d results for %d indices", len(runs), len(indices))
	}
	for oi, i := range indices[:2] {
		if runs[oi].Err != nil {
			t.Fatalf("cell %d: %v", i, runs[oi].Err)
		}
		key, payload, err := resultcache.DecodeFile(runs[oi].Frame)
		if err != nil {
			t.Fatalf("cell %d frame: %v", i, err)
		}
		if key != plan.Key(i) {
			t.Fatalf("cell %d frame keyed %q, want %q", i, key.Canonical(), plan.Key(i).Canonical())
		}
		if len(payload) == 0 {
			t.Fatalf("cell %d frame has empty payload", i)
		}
	}
	if runs[2].Err == nil {
		t.Fatal("out-of-range index did not error")
	}
	// A second pass answers entirely from the cache: same frames, no new
	// misses.
	before := cache.Stats().Misses
	again := plan.RunCells(indices[:2], RunCellsOptions{Results: cache})
	if cache.Stats().Misses != before {
		t.Fatal("warm RunCells recomputed")
	}
	for oi := range again {
		if string(again[oi].Frame) != string(runs[oi].Frame) {
			t.Fatalf("warm frame %d differs from cold frame", oi)
		}
	}
}
