package exp

import (
	"fmt"

	"repro/internal/report"
)

// SweepWorkloadNames is the representative workload subset the
// design-space sweeps run on (one per behaviour class: stable hot set,
// drifting hot set, pointer chasing, streaming, work front, mixed). The
// facade's SweepWorkloads and cmd/sweep's default subset both alias this
// slice, so the three can never drift.
var SweepWorkloadNames = []string{"cactus", "xalanc", "mcf", "bwaves", "lbm", "mix5"}

// ExperimentIDs lists every experiment id Experiment dispatches, in paper
// order followed by this repository's ablations.
func ExperimentIDs() []string {
	return []string{
		"fig1", "fig2", "fig3", "table1", "table2", "table3",
		"fig6", "fig7", "fig8", "fig9", "fig10", "specgrid",
		"ablation-pods", "ablation-tracker", "energy",
	}
}

// Experiment regenerates the named table or figure under this config. It
// is the single dispatch point shared by the facade, cmd/sweep and the
// distributed-sweep render pass, so an experiment renders identically
// whichever path reached it.
func (c Config) Experiment(id string) (*report.Table, error) {
	switch id {
	case "fig1":
		return c.Fig1()
	case "fig2":
		return c.Fig2()
	case "fig3":
		return c.Fig3()
	case "fig6":
		return c.Fig6()
	case "fig7":
		return c.Fig7()
	case "fig8":
		return c.Fig8()
	case "fig9":
		return c.Fig9()
	case "fig10":
		return c.Fig10()
	case "specgrid":
		return c.SpecGrid()
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "ablation-pods":
		return c.PodSweep()
	case "ablation-tracker":
		return c.TrackerSweep()
	case "energy":
		return c.EnergyTable()
	default:
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
}

// ConfigFor returns the standard configuration experiment id runs at:
// Quick or Full scale, with the design-space sweeps bounded to the
// representative workload subset (they multiply run counts by 30+) as
// documented in EXPERIMENTS.md.
func ConfigFor(id string, full bool) Config {
	var cfg Config
	if full {
		cfg = DefaultConfig()
	} else {
		cfg = QuickConfig()
	}
	switch id {
	case "fig6", "fig7", "fig9", "specgrid":
		cfg = cfg.WithWorkloads(SweepWorkloadNames...)
		if full {
			cfg.Requests = 1_000_000
		}
	}
	return cfg
}
