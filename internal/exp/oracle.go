package exp

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mea"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// The §3 oracle study compares MEA against Full Counters offline, with no
// timing model: the trace is sliced into intervals of OracleIntervalReqs
// requests (the paper's 5500, the average per 50 µs window), both trackers
// observe each interval, and an oracle (the next interval's exact counts)
// grades their predictions on the top three page tiers: ranks 1–10, 11–20
// and 21–30.
const (
	OracleIntervalReqs = 5500
	OracleMEACounters  = 128
	// OracleCounterBits sizes the study's MEA counters. The paper's §3
	// study predates the 2-bit design point; 4 bits keeps a partial
	// internal ranking while exhibiting the saturation-plus-decrement
	// distortion the paper blames for MEA's weak counting accuracy.
	OracleCounterBits = 4
	tiers             = 3
)

// OracleResult holds one workload's tier metrics.
type OracleResult struct {
	Workload    string
	Homogeneous bool
	Intervals   int
	// CountAcc is Figure 1: the fraction of the past interval's true
	// tier-k pages that MEA's own top tiers identified (FC is exact by
	// construction).
	CountAcc [tiers]float64
	// MEAHits and FCHits are Figure 2/3: average hits per interval on the
	// next interval's true tier-k pages, out of 10.
	MEAHits [tiers]float64
	FCHits  [tiers]float64
}

// OracleStudy runs the §3 offline comparison over the config's workloads,
// fanning the per-workload passes (each with its own trackers and replay
// cursor) out to c.Parallelism workers. Traces come from the config's
// snapshot cache — each is recorded once, replayed here, and freed at its
// last declared use. Results keep workload order.
func (c Config) OracleStudy() ([]OracleResult, error) {
	traces := c.traceCache()
	rcache := c.resultCache()
	// Like matrix: probe the result cache first so trace use counts cover
	// exactly the workloads whose oracle pass will actually replay.
	uses := make(map[tracecache.Key]int, len(c.Workloads))
	for _, w := range c.Workloads {
		if rcache != nil && rcache.Probe(c.oracleKey(w)) {
			continue
		}
		uses[c.traceKey(w)]++
	}
	tasks := make([]runner.Task[OracleResult], len(c.Workloads))
	for i, w := range c.Workloads {
		w := w
		tasks[i] = runner.Task[OracleResult]{
			Key:    "oracle/" + w.Name,
			Labels: []string{"mechanism", "oracle", "workload", w.Name},
			Run: func() (OracleResult, error) {
				return c.oracleCell(w, traces, uses[c.traceKey(w)], rcache)
			},
		}
	}
	results, err := runner.Run(tasks, runner.Options{
		Parallelism: c.Parallelism,
		OnProgress:  c.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return runner.Values(results), nil
}

func (c Config) oracleOne(w workload.Workload, traces *tracecache.Cache, traceUses int) (OracleResult, error) {
	res := OracleResult{Workload: w.Name, Homogeneous: w.Homogeneous}
	snap, release, err := c.acquireTrace(traces, w, traceUses)
	if err != nil {
		return res, err
	}
	defer release()
	s := snap.Stream()
	m := mea.NewMEA(OracleMEACounters, OracleCounterBits)
	fc := mea.NewFullCounters()

	var predMEA, predFC map[uint64]bool // predictions from the previous interval
	var countSum [tiers]float64
	var meaSum, fcSum [tiers]float64
	graded := 0

	var r trace.Request
	n := 0
	flush := func() {
		truth := fc.Hot() // exact ranking of the interval just ended

		// Figure 1: MEA's ranked tiers vs the true tiers. The returned
		// slice aliases the tracker's reusable buffer; it is fully
		// consumed below, before the next Hot call.
		meaRank := m.Hot()
		for t := 0; t < tiers; t++ {
			truthTier := tierSet(truth, t)
			if len(truthTier) == 0 {
				continue
			}
			got := 0
			for _, e := range tierSlice(meaRank, t) {
				if truthTier[e.Page] {
					got++
				}
			}
			countSum[t] += float64(got) / float64(len(truthTier))
		}

		// Figure 2: grade the previous interval's predictions against
		// this interval's truth.
		if predMEA != nil {
			for t := 0; t < tiers; t++ {
				for page := range tierSet(truth, t) {
					if predMEA[page] {
						meaSum[t]++
					}
					if predFC[page] {
						fcSum[t]++
					}
				}
			}
			graded++
		}

		// Form this interval's predictions: MEA offers its (≤K) entries;
		// FC offers its top N, N matched to MEA's count for a fair
		// comparison (§3).
		predMEA = make(map[uint64]bool, len(meaRank))
		for _, e := range meaRank {
			predMEA[e.Page] = true
		}
		predFC = make(map[uint64]bool, len(meaRank))
		for _, e := range fc.Top(len(meaRank)) {
			predFC[e.Page] = true
		}

		res.Intervals++
		m.Reset()
		fc.Reset()
	}
	for s.Next(&r) {
		p := uint64(addr.PageOf(addr.Addr(r.Addr)))
		m.Observe(p)
		fc.Observe(p)
		n++
		if n%OracleIntervalReqs == 0 {
			flush()
		}
	}
	if res.Intervals == 0 {
		return res, fmt.Errorf("exp: workload %s too short for one oracle interval", w.Name)
	}
	for t := 0; t < tiers; t++ {
		res.CountAcc[t] = countSum[t] / float64(res.Intervals)
		if graded > 0 {
			res.MEAHits[t] = meaSum[t] / float64(graded)
			res.FCHits[t] = fcSum[t] / float64(graded)
		}
	}
	return res, nil
}

// tierSet returns the page set of true tier t (ranks 10t+1..10t+10).
func tierSet(ranked []mea.Entry, t int) map[uint64]bool {
	out := make(map[uint64]bool, 10)
	for _, e := range tierSlice(ranked, t) {
		out[e.Page] = true
	}
	return out
}

func tierSlice(ranked []mea.Entry, t int) []mea.Entry {
	lo := 10 * t
	hi := lo + 10
	if lo >= len(ranked) {
		return nil
	}
	if hi > len(ranked) {
		hi = len(ranked)
	}
	return ranked[lo:hi]
}

// Fig1 regenerates Figure 1: MEA counting accuracy against Full Counters
// on the top three tiers, per workload plus HG/MIX/ALL averages.
func (c Config) Fig1() (*report.Table, error) {
	study, err := c.OracleStudy()
	if err != nil {
		return nil, err
	}
	t := report.New("fig1", "MEA counting accuracy vs Full Counters (fraction of true tier identified)",
		"workload", "ranks 1-10", "ranks 11-20", "ranks 21-30")
	add := func(name string, acc [tiers]float64) {
		t.Addf(name, acc[0], acc[1], acc[2])
	}
	var hg, mix, all [tiers]float64
	var hgN, mixN int
	for _, r := range study {
		add(r.Workload, r.CountAcc)
		for i := 0; i < tiers; i++ {
			all[i] += r.CountAcc[i]
			if r.Homogeneous {
				hg[i] += r.CountAcc[i]
			} else {
				mix[i] += r.CountAcc[i]
			}
		}
		if r.Homogeneous {
			hgN++
		} else {
			mixN++
		}
	}
	for i := 0; i < tiers; i++ {
		if hgN > 0 {
			hg[i] /= float64(hgN)
		}
		if mixN > 0 {
			mix[i] /= float64(mixN)
		}
		all[i] /= float64(len(study))
	}
	add("AVG HG", hg)
	add("AVG MIX", mix)
	add("AVG ALL", all)
	return t, nil
}

// Fig2 regenerates Figure 2: future-prediction hits (out of 10 per tier)
// for MEA and FC, averaged over homogeneous, mixed and all workloads.
func (c Config) Fig2() (*report.Table, error) {
	study, err := c.OracleStudy()
	if err != nil {
		return nil, err
	}
	t := report.New("fig2", "MEA vs FC future-prediction hits per tier (of 10)",
		"group", "scheme", "ranks 1-10", "ranks 11-20", "ranks 21-30")
	groups := []struct {
		name string
		keep func(OracleResult) bool
	}{
		{"WL-HG", func(r OracleResult) bool { return r.Homogeneous }},
		{"WL-MIX", func(r OracleResult) bool { return !r.Homogeneous }},
		{"WL-ALL", func(OracleResult) bool { return true }},
	}
	for _, g := range groups {
		var meaAvg, fcAvg [tiers]float64
		n := 0
		for _, r := range study {
			if !g.keep(r) {
				continue
			}
			for i := 0; i < tiers; i++ {
				meaAvg[i] += r.MEAHits[i]
				fcAvg[i] += r.FCHits[i]
			}
			n++
		}
		if n == 0 {
			continue
		}
		for i := 0; i < tiers; i++ {
			meaAvg[i] /= float64(n)
			fcAvg[i] /= float64(n)
		}
		t.Addf(g.name, "MEA", meaAvg[0], meaAvg[1], meaAvg[2])
		t.Addf(g.name, "FC", fcAvg[0], fcAvg[1], fcAvg[2])
	}
	return t, nil
}

// Fig3Workloads are the individual workloads Figure 3 calls out.
var Fig3Workloads = []string{"cactus", "xalanc", "mix9", "bwaves", "lbm", "libquantum"}

// Fig3 regenerates Figure 3: per-workload prediction hits for the paper's
// most interesting cases. Workloads absent from the config are skipped.
func (c Config) Fig3() (*report.Table, error) {
	study, err := c.OracleStudy()
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(Fig3Workloads))
	for _, n := range Fig3Workloads {
		wanted[n] = true
	}
	t := report.New("fig3", "MEA vs FC prediction hits, selected workloads (of 10 per tier)",
		"workload", "scheme", "ranks 1-10", "ranks 11-20", "ranks 21-30")
	for _, r := range study {
		if !wanted[r.Workload] {
			continue
		}
		t.Addf(r.Workload, "MEA", r.MEAHits[0], r.MEAHits[1], r.MEAHits[2])
		t.Addf(r.Workload, "FC", r.FCHits[0], r.FCHits[1], r.FCHits[2])
	}
	return t, nil
}
