package exp

import (
	"fmt"

	"repro/internal/cameo"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/migrant"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/thm"
)

// SpecPairs are the (fast, slow) preset combinations of the spec-grid
// study: the paper pair as the anchor, a next-generation stacked+DDR5
// system, a far-memory system (fast stacked tier over CXL-attached
// expansion), and the DRAM+NVM system MigrantStore-style OS migration was
// designed for.
var SpecPairs = [][2]string{
	{"HBM", "DDR4-1600"},
	{"HBM2", "DDR5-4800"},
	{"HBM3", "CXL-DDR5"},
	{"HBM", "NVM-PCM"},
}

// specGridOrder is the mechanism column order of the spec grid: the four
// hardware mechanisms plus the OS-assisted Migrant policy, all normalized
// to the pair's own no-migration TLM.
var specGridOrder = []string{"MemPod", "HMA", "THM", "CAMEO", "Migrant"}

// specGridBuilders enumerates the (mechanism × spec-pair) grid.
func (c Config) specGridBuilders() ([]builder, error) {
	var builders []builder
	for _, pair := range SpecPairs {
		fast, err := dram.Preset(pair[0])
		if err != nil {
			return nil, fmt.Errorf("exp: specgrid: fast spec: %w", err)
		}
		slow, err := dram.Preset(pair[1])
		if err != nil {
			return nil, fmt.Errorf("exp: specgrid: slow spec: %w", err)
		}
		prefix := pair[0] + "+" + pair[1]
		add := func(mechName, ckey string, mk func(b *mech.Backend) mech.Mechanism) {
			builders = append(builders, builder{
				name: prefix + "/" + mechName, ckey: ckey, layout: stdLayout(),
				fast: fast, slow: slow, make: mk,
			})
		}
		add("TLM", mechKey("static", nil), func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) })
		add("MemPod", mechKey("mempod", core.DefaultConfig()), func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) })
		add("HMA", mechKey("hma", c.hmaConfig()), func(b *mech.Backend) mech.Mechanism { return hma.MustNew(c.hmaConfig(), b) })
		add("THM", mechKey("thm", thm.DefaultConfig()), func(b *mech.Backend) mech.Mechanism { return thm.MustNew(thm.DefaultConfig(), b) })
		add("CAMEO", mechKey("cameo", cameo.DefaultConfig()), func(b *mech.Backend) mech.Mechanism { return cameo.MustNew(cameo.DefaultConfig(), b) })
		add("Migrant", mechKey("migrant", migrant.DefaultConfig()), func(b *mech.Backend) mech.Mechanism { return migrant.MustNew(migrant.DefaultConfig(), b) })
	}
	return builders, nil
}

// SpecGrid runs the (mechanism × spec-pair) matrix: for every spec pair,
// every mechanism (including Migrant), with AMMAT normalized to the same
// pair's TLM so columns are comparable across memory technologies. One
// row per (pair, workload), plus an ALL-average row per pair.
func (c Config) SpecGrid() (*report.Table, error) {
	builders, err := c.specGridBuilders()
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(builders)
	if err != nil {
		return nil, err
	}
	cols := append([]string{"specs", "workload", "TLM (ns)"}, specGridOrder...)
	t := report.New("specgrid", "Mechanism × memory-spec grid: AMMAT normalized to each pair's TLM", cols...)
	for _, pair := range SpecPairs {
		prefix := pair[0] + "+" + pair[1]
		for _, w := range c.Workloads {
			base := res[prefix+"/TLM"][w.Name]
			row := []string{prefix, w.Name, fmt.Sprintf("%.2f", base.AMMAT())}
			for _, m := range specGridOrder {
				row = append(row, fmt.Sprintf("%.3f", res[prefix+"/"+m][w.Name].Normalized(base)))
			}
			t.Add(row...)
		}
		row := []string{prefix, "AVG ALL", ""}
		for _, m := range specGridOrder {
			_, _, all := c.averages(res[prefix+"/"+m], func(r stats.Result) float64 {
				return r.Normalized(res[prefix+"/TLM"][r.Workload])
			})
			row = append(row, fmt.Sprintf("%.3f", all))
		}
		t.Add(row...)
	}
	return t, nil
}
