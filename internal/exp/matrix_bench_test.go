package exp

import (
	"fmt"
	"testing"

	"repro/internal/dram"
	"repro/internal/resultcache"
)

// BenchmarkMatrix measures the experiment matrix at increasing worker
// counts so the parallel runner's wall-clock win is a reported number,
// not an assertion. Compare the j=1 (serial baseline) timing against
// j=4/j=8; on a ≥4-core machine the grid of independent simulations
// scales near-linearly until workers exceed cores:
//
//	go test ./internal/exp -bench BenchmarkMatrix -run '^$'
func BenchmarkMatrix(b *testing.B) {
	c := tinyConfig()
	c.Requests = 30_000
	// All variants share one snapshot disk store, so each workload's trace
	// is generated exactly once and every iteration replays it from a
	// mapped MPS1 file — the steady state the matrix runs in for real
	// sweeps. The prewarm populates the store outside the timer: without
	// it, CI's -benchtime=1x smoke run would time cold generation and trip
	// the hard bench gate.
	c.TraceDir = b.TempDir()
	// TLM, MemPod, HMA, THM over three workloads: a 12-cell grid, the
	// same shape as the Fig8 sweep subset.
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:4]
	cells := len(builders) * len(c.Workloads)
	{
		warm := c
		warm.Parallelism = 1
		if _, err := warm.matrix(builders); err != nil {
			b.Fatal(err)
		}
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			cfg := c
			cfg.Parallelism = j
			for i := 0; i < b.N; i++ {
				if _, err := cfg.matrix(builders); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkMatrixWarm measures the same 12-cell matrix served entirely
// from a populated result cache — the steady state of a re-run with
// -result-cache. Compare against BenchmarkMatrix/j=1: the gap is the
// whole point of the cache (the warm path only probes keys, decodes a few
// hundred payload bytes per cell, and assembles the table). Each
// iteration uses a fresh in-memory Cache over the same store directory,
// so it times the cross-process path (read + checksum + decode), not
// resident-map lookups.
func BenchmarkMatrixWarm(b *testing.B) {
	c := tinyConfig()
	c.Requests = 30_000
	c.TraceDir = b.TempDir()
	store := b.TempDir()
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:4]
	cells := len(builders) * len(c.Workloads)
	{
		warm := c
		warm.Parallelism = 1
		warm.Results = resultcache.New()
		warm.Results.SetDir(store)
		if _, err := warm.matrix(builders); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := c
		cfg.Parallelism = 1
		cfg.Results = resultcache.New()
		cfg.Results.SetDir(store)
		if _, err := cfg.matrix(builders); err != nil {
			b.Fatal(err)
		}
		if s := cfg.Results.Stats(); s.Misses != 0 {
			b.Fatalf("warm pass simulated %d cells", s.Misses)
		}
	}
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
}
