package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/resultcache"
)

// cacheTestConfig is tinyConfig shrunk further: the differential suites
// below multiply it by mechanisms × spec pairs, so every request saved
// counts.
func cacheTestConfig() Config {
	c := QuickConfig()
	c.Requests = 20_000
	c.Workloads = selectWorkloads("cactus", "mix5")
	return c
}

// TestMatrixCachedEqualsFresh is the correctness argument for the result
// cache: for every mechanism over several spec presets, a matrix run
// through a cache — cold (populating) and warm (serving) — must be
// field-identical to an uncached run. The cache may only remove work.
func TestMatrixCachedEqualsFresh(t *testing.T) {
	pairs := [][2]string{{"HBM", "DDR4-1600"}, {"HBM2", "DDR5-4800"}}
	for _, pair := range pairs {
		pair := pair
		t.Run(pair[0]+"+"+pair[1], func(t *testing.T) {
			c := cacheTestConfig()
			fast, slow := dram.MustPreset(pair[0]), dram.MustPreset(pair[1])
			builders := c.baselineBuilders(fast, slow)

			fresh := c // Results nil: simulate every cell
			want, err := fresh.matrix(builders)
			if err != nil {
				t.Fatal(err)
			}

			cold := c
			cold.Results = resultcache.New()
			got, err := cold.matrix(builders)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("cold cached matrix differs from fresh:\nfresh: %+v\ncached: %+v", want, got)
			}
			if s := cold.Results.Stats(); s.Hits != 0 || s.Misses != len(builders)*len(c.Workloads) {
				t.Fatalf("cold pass stats: %+v", s)
			}

			warm := cold // same cache, now populated
			got, err = warm.matrix(builders)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("warm cached matrix differs from fresh")
			}
			if s := warm.Results.Stats(); s.Misses != len(builders)*len(c.Workloads) {
				t.Fatalf("warm pass simulated: %+v", s)
			}
		})
	}
}

// TestFig8CrossProcessCacheReuse simulates the CI two-pass run: a second
// process (modeled by a fresh Cache instance over the same directory)
// must serve every cell from the store — zero misses — and render a
// bit-identical table. Parallelism exercises the single-flight and probe
// paths under the race detector.
func TestFig8CrossProcessCacheReuse(t *testing.T) {
	dir := t.TempDir()

	first := cacheTestConfig()
	first.Parallelism = 4
	first.Results = resultcache.New()
	first.Results.SetDir(dir)
	want, err := first.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	fs := first.Results.Stats()
	if fs.Misses == 0 || fs.Hits != 0 || fs.Persisted != fs.Misses {
		t.Fatalf("first pass stats: %+v", fs)
	}

	second := cacheTestConfig()
	second.Parallelism = 4
	second.Results = resultcache.New()
	second.Results.SetDir(dir)
	got, err := second.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	ss := second.Results.Stats()
	if ss.Misses != 0 || ss.Stale != 0 {
		t.Fatalf("second pass simulated or rejected entries: %+v", ss)
	}
	if ss.Hits != fs.Misses {
		t.Fatalf("second pass hits = %d, want %d (one per first-pass cell)", ss.Hits, fs.Misses)
	}
	if got.String() != want.String() || got.CSV() != want.CSV() {
		t.Fatalf("warm table differs from cold:\ncold:\n%s\nwarm:\n%s", want, got)
	}
}

// TestMatrixStaleStoreRegenerates is the staleness contract end to end:
// corrupting every store file must never surface as an error or a changed
// number — the cells resimulate, match the originals, and heal the store.
func TestMatrixStaleStoreRegenerates(t *testing.T) {
	dir := t.TempDir()
	c := cacheTestConfig()
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:3]

	first := c
	first.Results = resultcache.New()
	first.Results.SetDir(dir)
	want, err := first.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.mpr1"))
	if err != nil || len(files) == 0 {
		t.Fatalf("store files: %v (err %v)", files, err)
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(f, info.Size()/2); err != nil {
			t.Fatal(err)
		}
	}

	second := c
	second.Results = resultcache.New()
	second.Results.SetDir(dir)
	got, err := second.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("regenerated matrix differs from original")
	}
	// Every cell resimulated; each truncated file was rejected at least
	// once (the probe pass and the run may both reject it).
	s := second.Results.Stats()
	if s.Stale < len(files) || s.Misses != len(files) || s.Hits != 0 {
		t.Fatalf("stale-store stats: %+v (files %d)", s, len(files))
	}

	// The regeneration must also have healed the store.
	third := c
	third.Results = resultcache.New()
	third.Results.SetDir(dir)
	if _, err := third.matrix(builders); err != nil {
		t.Fatal(err)
	}
	if s := third.Results.Stats(); s.Misses != 0 || s.Stale != 0 {
		t.Fatalf("store not healed: %+v", s)
	}
}

// TestFig6Fig7ShareCells pins the cross-experiment dedupe the cache
// exists for: Figure 7's 16-bit column is Figure 6's design points, so a
// shared cache must serve part of Fig7 without simulating.
func TestFig6Fig7ShareCells(t *testing.T) {
	c := cacheTestConfig()
	c.Results = resultcache.New()
	if _, err := c.Fig6(); err != nil {
		t.Fatal(err)
	}
	after6 := c.Results.Stats()
	if after6.Hits != 0 {
		t.Fatalf("fig6 alone hit: %+v", after6)
	}
	if _, err := c.Fig7(); err != nil {
		t.Fatal(err)
	}
	after7 := c.Results.Stats()
	if hits := after7.Hits - after6.Hits; hits == 0 {
		t.Fatalf("fig7 shared no cells with fig6: %+v", after7)
	}
}

// TestOracleStudyCachedEqualsFresh extends the differential guarantee to
// the §3 offline study, which caches its per-workload oracle rows under a
// separate payload kind.
func TestOracleStudyCachedEqualsFresh(t *testing.T) {
	dir := t.TempDir()
	c := cacheTestConfig()

	want, err := c.OracleStudy() // uncached
	if err != nil {
		t.Fatal(err)
	}

	cold := c
	cold.Results = resultcache.New()
	cold.Results.SetDir(dir)
	got, err := cold.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cold cached oracle study differs from fresh")
	}
	if s := cold.Results.Stats(); s.Misses != len(c.Workloads) || s.Hits != 0 {
		t.Fatalf("cold oracle stats: %+v", s)
	}

	warm := c
	warm.Results = resultcache.New()
	warm.Results.SetDir(dir)
	got, err = warm.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("warm cached oracle study differs from fresh")
	}
	if s := warm.Results.Stats(); s.Misses != 0 || s.Hits != len(c.Workloads) {
		t.Fatalf("warm oracle stats: %+v", s)
	}
}

// TestResultDirTransientCache checks the Config.ResultDir convenience
// path: a directory alone (no shared Cache) still persists and reuses
// cells across independently-built configs.
func TestResultDirTransientCache(t *testing.T) {
	dir := t.TempDir()
	c := cacheTestConfig()
	c.ResultDir = dir
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:2]

	want, err := c.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.mpr1"))
	if err != nil || len(files) != len(builders)*len(c.Workloads) {
		t.Fatalf("persisted %d files, want %d (err %v)", len(files), len(builders)*len(c.Workloads), err)
	}

	// A second pass over the same directory serves from the store: results
	// equal and no new files appear (a resimulated cell would rewrite one).
	got, err := c.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("ResultDir reuse differs from original")
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.mpr1"))
	if len(after) != len(files) {
		t.Fatalf("second pass changed the store: %d -> %d files", len(files), len(after))
	}
}
