package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// tinyConfig keeps experiment tests fast: three contrasting workloads and
// short traces.
func tinyConfig() Config {
	c := QuickConfig()
	c.Requests = 60_000
	c.Workloads = selectWorkloads("cactus", "bwaves", "mix5")
	return c
}

func TestSelectWorkloads(t *testing.T) {
	ws := selectWorkloads("cactus", "mix3", "lbm")
	if len(ws) != 3 || ws[0].Name != "cactus" || ws[1].Name != "mix3" || ws[2].Name != "lbm" {
		t.Fatalf("selectWorkloads wrong: %+v", ws)
	}
	if ws[1].Homogeneous {
		t.Fatal("mix3 flagged homogeneous")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload accepted")
		}
	}()
	selectWorkloads("nonesuch")
}

// TestSelectWorkloadsBadNames pins the panic messages for malformed
// names. "mixfoo" is the regression case: Sscanf-era parsing silently
// read it as mix 0 and panicked blaming the mix index instead of the
// name; the message must now carry the offending name verbatim.
func TestSelectWorkloadsBadNames(t *testing.T) {
	for _, name := range []string{"mixfoo", "mix0", "mix13", "mix", "mix5x", ""} {
		name := name
		t.Run("name="+name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("selectWorkloads(%q) did not panic", name)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, fmt.Sprintf("%q", name)) {
					t.Errorf("panic %q does not name the bad workload %q", msg, name)
				}
			}()
			selectWorkloads(name)
		})
	}
}

func TestOracleStudyShapes(t *testing.T) {
	c := tinyConfig()
	c.Requests = 120_000
	study, err := c.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(study) != 3 {
		t.Fatalf("%d study rows", len(study))
	}
	byName := map[string]OracleResult{}
	for _, r := range study {
		byName[r.Workload] = r
		if r.Intervals < 10 {
			t.Errorf("%s: only %d intervals", r.Workload, r.Intervals)
		}
		for tier := 0; tier < tiers; tier++ {
			if r.CountAcc[tier] < 0 || r.CountAcc[tier] > 1 {
				t.Errorf("%s: counting accuracy out of range: %v", r.Workload, r.CountAcc)
			}
			if r.MEAHits[tier] < 0 || r.MEAHits[tier] > 10 ||
				r.FCHits[tier] < 0 || r.FCHits[tier] > 10 {
				t.Errorf("%s: hits out of range", r.Workload)
			}
		}
	}
	// The paper's §3 headline shapes:
	// streaming (bwaves) defeats FC's future prediction almost entirely...
	bw := byName["bwaves"]
	if bw.FCHits[0] > 2 {
		t.Errorf("bwaves: FC tier-1 hits %.2f, expected near zero for streaming", bw.FCHits[0])
	}
	// ...while MEA's recency bias still catches some boundary pages.
	if bw.MEAHits[0]+bw.MEAHits[1]+bw.MEAHits[2] <= bw.FCHits[0]+bw.FCHits[1]+bw.FCHits[2] {
		t.Errorf("bwaves: MEA hits %v not above FC %v", bw.MEAHits, bw.FCHits)
	}
	// MEA's counting accuracy is imperfect (well below 1.0 on average).
	ca := byName["cactus"]
	if ca.CountAcc[0] > 0.9 {
		t.Errorf("cactus: MEA counting accuracy %.2f suspiciously perfect", ca.CountAcc[0])
	}
}

func TestFig123Render(t *testing.T) {
	c := tinyConfig()
	c.Workloads = selectWorkloads("cactus", "bwaves", "mix5", "libquantum")
	for _, f := range []func() (interface{ String() string }, error){
		func() (interface{ String() string }, error) { return c.Fig1() },
		func() (interface{ String() string }, error) { return c.Fig2() },
		func() (interface{ String() string }, error) { return c.Fig3() },
	} {
		tab, err := f()
		if err != nil {
			t.Fatal(err)
		}
		s := tab.String()
		if !strings.Contains(s, "ranks 1-10") {
			t.Errorf("table missing tier columns:\n%s", s)
		}
	}
}

func TestFig1IncludesAverages(t *testing.T) {
	c := tinyConfig()
	tab, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"AVG HG", "AVG MIX", "AVG ALL", "cactus"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig1 missing %q:\n%s", want, s)
		}
	}
}

func TestFig8QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mechanism matrix")
	}
	c := tinyConfig()
	c.Requests = 120_000
	tab, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"MemPod", "HMA", "THM", "CAMEO", "HBM-only", "AVG ALL", "moved MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("fig8 missing %q", want)
		}
	}
	if len(tab.Rows) != 3+3+1 { // workloads + averages + volume
		t.Errorf("fig8 rows = %d", len(tab.Rows))
	}
}

func TestFig7NormalizedToTwoBit(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	c := tinyConfig()
	c.Requests = 50_000
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// The 2-bit rows must be normalized to exactly 1.000.
	found := 0
	for _, row := range tab.Rows {
		if row[1] == "2" {
			if row[3] != "1.000" {
				t.Errorf("2-bit normalization %s != 1.000", row[3])
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("expected 2 two-bit rows (7a, 7b), found %d", found)
	}
}

func TestFig6Dimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	c := tinyConfig()
	c.Requests = 40_000
	c.Workloads = selectWorkloads("mix5")
	tab, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig6Epochs) {
		t.Errorf("fig6 rows %d, want %d", len(tab.Rows), len(Fig6Epochs))
	}
	if len(tab.Columns) != len(Fig6Counters)+1 {
		t.Errorf("fig6 cols %d, want %d", len(tab.Columns), len(Fig6Counters)+1)
	}
}

func TestFig9Dimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("cache matrix")
	}
	c := tinyConfig()
	c.Requests = 60_000
	c.Workloads = selectWorkloads("mix5")
	tab, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("fig9 rows %d, want 3 mechanisms", len(tab.Rows))
	}
	if len(tab.Columns) != 5 {
		t.Errorf("fig9 cols %d, want 5", len(tab.Columns))
	}
}

func TestFig10RunsFutureSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := tinyConfig()
	c.Requests = 60_000
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "HBMoc") {
		t.Error("fig10 missing HBMoc column")
	}
}

func TestStaticTables(t *testing.T) {
	t1, t2, t3 := Table1(), Table2(), Table3()
	if !strings.Contains(t1.String(), "MEA entries/pod") {
		t.Error("table1 missing MEA tracking cost")
	}
	// The paper's tracking-cost headline: MemPod's total MEA storage is
	// 736 B for 64 entries x 23 bits x 4 pods.
	if !strings.Contains(t1.String(), "736B") {
		t.Errorf("table1 MEA cost should be 736B:\n%s", t1.String())
	}
	if !strings.Contains(t2.String(), "7-7-7-17") || !strings.Contains(t2.String(), "11-11-11-28") {
		t.Error("table2 missing core timings")
	}
	if len(t3.Rows) != 12 {
		t.Errorf("table3 rows %d, want 12 mixes", len(t3.Rows))
	}
}

func TestRunMemPodMigrationCounting(t *testing.T) {
	c := tinyConfig()
	c.Requests = 60_000
	c.Workloads = selectWorkloads("cactus")
	_, migs, err := c.runMemPod(core.Config{Interval: 50 * clock.Microsecond, Counters: 64, CounterBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if migs <= 0 {
		t.Error("no migrations per pod per interval recorded")
	}
}

func TestPodSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix")
	}
	c := tinyConfig()
	c.Requests = 80_000
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.PodSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(PodCounts) {
		t.Fatalf("pod sweep rows %d", len(tab.Rows))
	}
	for _, pods := range PodCounts {
		if err := layoutForPods(pods).Validate(); err != nil {
			t.Errorf("pods=%d: %v", pods, err)
		}
	}
}

func TestTrackerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix")
	}
	c := tinyConfig()
	c.Requests = 80_000
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.TrackerSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("tracker sweep rows %d", len(tab.Rows))
	}
}

func TestEnergyTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := tinyConfig()
	c.Requests = 60_000
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.EnergyTable()
	if err != nil {
		t.Fatal(err)
	}
	// §5.3: MemPod must pay zero migration-interconnect energy; the
	// global-swap mechanisms must pay some.
	var memPodSwitch, thmSwitch string
	for _, row := range tab.Rows {
		switch row[0] {
		case "MemPod":
			memPodSwitch = row[2]
		case "THM":
			thmSwitch = row[2]
		}
	}
	if memPodSwitch != "0.000" {
		t.Errorf("MemPod migration switch energy %s, want 0.000", memPodSwitch)
	}
	if thmSwitch == "0.000" || thmSwitch == "" {
		t.Errorf("THM migration switch energy %s, want > 0", thmSwitch)
	}
}
