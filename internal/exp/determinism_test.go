package exp

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/workload"
)

// TestMatrixParallelDeterminism is the safety argument for the parallel
// runner: the same seed must yield bit-identical results whether cells run
// serially or on eight workers, because every cell builds its own
// simulator state and results are assembled in a fixed order.
func TestMatrixParallelDeterminism(t *testing.T) {
	c := tinyConfig()
	c.Requests = 30_000
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:3] // TLM, MemPod, HMA

	serial := c
	serial.Parallelism = 1
	want, err := serial.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}

	par := c
	par.Parallelism = 8
	got, err := par.matrix(builders)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel matrix differs from serial:\nserial: %+v\nparallel: %+v", want, got)
	}
}

// TestMatrixPartialResultsOnCellFailure pins the no-first-error-abort
// contract: a workload that fails under every builder must not discard the
// cells that completed, and the joined error must name every failed cell.
func TestMatrixPartialResultsOnCellFailure(t *testing.T) {
	c := tinyConfig()
	c.Requests = 20_000
	c.Parallelism = 4
	good := c.Workloads[0]
	broken := workload.Workload{Name: "broken"} // empty benchmark names fail in Stream
	c.Workloads = []workload.Workload{good, broken}

	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:2] // TLM, MemPod
	res, err := c.matrix(builders)
	if err == nil {
		t.Fatal("matrix succeeded despite a broken workload")
	}
	for _, b := range builders {
		if _, ok := res[b.name][good.Name]; !ok {
			t.Errorf("%s/%s: completed cell discarded", b.name, good.Name)
		}
		if _, ok := res[b.name]["broken"]; ok {
			t.Errorf("%s/broken: failed cell present in results", b.name)
		}
		if !strings.Contains(err.Error(), b.name+"/broken") {
			t.Errorf("joined error does not name cell %s/broken: %v", b.name, err)
		}
	}
}

// TestMatrixJoinsIndependentErrors checks errors.Join semantics end to
// end: two distinct cell failures both survive into the aggregate.
func TestMatrixJoinsIndependentErrors(t *testing.T) {
	c := tinyConfig()
	c.Requests = 10_000
	c.Parallelism = 2
	c.Workloads = []workload.Workload{
		{Name: "brokenA"},
		{Name: "brokenB"},
	}
	builders := []builder{{
		name: "TLM", layout: stdLayout(), fast: dram.HBM(), slow: dram.DDR4_1600(),
		make: func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) },
	}}
	res, err := c.matrix(builders)
	if err == nil {
		t.Fatal("matrix succeeded with only broken workloads")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error is not a join: %T %v", err, err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Errorf("joined %d errors, want 2: %v", n, err)
	}
	if len(res["TLM"]) != 0 {
		t.Errorf("unexpected successful cells: %v", res["TLM"])
	}
}

// TestOracleStudyParallelDeterminism extends the determinism guarantee to
// the §3 offline study, which fans out per workload.
func TestOracleStudyParallelDeterminism(t *testing.T) {
	c := tinyConfig()
	c.Requests = 60_000

	serial := c
	serial.Parallelism = 1
	want, err := serial.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	par := c
	par.Parallelism = 8
	got, err := par.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel oracle study differs from serial")
	}
}

// TestMatrixProgressCoversEveryCell checks the progress callback is wired
// through Config: one serialized call per cell, ending at the total.
func TestMatrixProgressCoversEveryCell(t *testing.T) {
	c := tinyConfig()
	c.Requests = 10_000
	c.Parallelism = 4
	var calls []int
	var total int
	c.Progress = func(done, tot int) {
		calls = append(calls, done) // serialized by the runner
		total = tot
	}
	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())[:1] // TLM only
	if _, err := c.matrix(builders); err != nil {
		t.Fatal(err)
	}
	wantTotal := len(c.Workloads)
	if total != wantTotal || len(calls) != wantTotal {
		t.Fatalf("progress: %d calls, total %d; want %d", len(calls), total, wantTotal)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}
