// Package exp implements the paper's evaluation: one function per table
// and figure of §3 and §6, each returning a report.Table that regenerates
// the published rows/series from this repository's simulator.
//
// Absolute numbers differ from the paper (the substrate is our simulator
// and synthetic traces, not the authors' Ramulator + SPEC setup); the
// shapes — who wins, by roughly what factor, where crossovers fall — are
// the reproduction target. EXPERIMENTS.md records paper-vs-measured for
// every experiment.
package exp

import (
	"fmt"
	"strconv"

	"repro/internal/addr"
	"repro/internal/cameo"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// Config scales the experiments. The zero value is not usable; start from
// DefaultConfig (full runs, ~minutes each on one core) or QuickConfig
// (seconds, for tests and benchmarks).
type Config struct {
	// Requests is the trace length per workload.
	Requests int
	// Seed makes every trace deterministic.
	Seed int64
	// Workloads is the evaluated set (default: the paper's 27).
	Workloads []workload.Workload

	// FastSpec/SlowSpec name the memory specs (dram.Preset names) the
	// baseline experiments run on; empty selects the paper pair
	// (HBM + DDR4-1600). Fig10 ignores them — it is defined as the
	// future-technology pair. Unknown names surface as an error from the
	// experiment that resolved them, tagged with the experiment's name.
	FastSpec string
	SlowSpec string

	// HMAInterval/HMASortStall/HMAMaxMigrations scale HMA to the trace
	// length. The paper's 100 ms / 7 ms cannot fire even once inside a
	// trace shorter than 100 ms of simulated time, so the default keeps
	// the paper's 2000:1 interval ratio directionally (200:1) and its 7%
	// sort duty cycle. See EXPERIMENTS.md ("HMA scaling").
	HMAInterval      clock.Duration
	HMASortStall     clock.Duration
	HMAMaxMigrations int

	// Parallelism bounds how many simulation cells run concurrently in
	// matrix experiments (Figures 6–10, the ablations, the oracle study).
	// Zero selects GOMAXPROCS; one forces serial execution. Results are
	// identical for any value: cells are fully independent (Config.run
	// builds a fresh memsys/backend/engine per cell) and are assembled in
	// a fixed order by internal/runner.
	Parallelism int
	// PodShards controls each cell's intra-cell pod-parallel mode
	// (sim.Engine.Shards): 0 is auto — the machine's parallelism left
	// over by the cell pool, runner.PerTaskParallelism, so Parallelism ×
	// pods never oversubscribes — 1 or negative forces serial cells, and
	// >= 2 forces that worker count per cell. Results are bit-identical
	// for every value (TestPodParallelBitIdentical).
	PodShards int
	// Progress, when non-nil, is invoked after each simulation cell of a
	// matrix completes, with the count done so far and the matrix total.
	// Invocations are serialized across workers.
	Progress func(done, total int)

	// Traces, when non-nil, is the snapshot cache matrix and oracle runs
	// acquire their generated traces from; nil makes each run create a
	// transient cache of its own. Sharing one cache across sequential runs
	// aggregates its statistics (tests use this to assert the residency
	// bound); it does not retain snapshots between runs — every batch
	// declares exact use counts and frees each snapshot at its last use.
	Traces *tracecache.Cache
	// TraceDir, when non-empty, enables the snapshot disk store
	// (tracecache.Cache.SetDir) for runs that create their own transient
	// cache: generated traces persist there as MPS1 files and reload —
	// memory-mapped where supported — on later runs instead of being
	// regenerated. Ignored when Traces is set (configure the shared cache
	// directly in that case).
	TraceDir string

	// Results, when non-nil, is the content-addressed result cache matrix
	// and oracle runs consult before simulating a cell (and publish fresh
	// cells to). Cells are keyed by their complete causal identity — see
	// resultcache.CellKey — so any cache state produces field-identical
	// results to a cache-less run; only the work changes. Sharing one cache
	// across sequential experiments dedupes their overlapping design points
	// (Fig6 and Fig7 share MemPod configurations, Fig8 and the energy table
	// share entire matrices). Nil with an empty ResultDir disables result
	// caching entirely.
	Results *resultcache.Cache
	// ResultDir, when non-empty, enables the result disk store
	// (resultcache.Cache.SetDir) for runs that create their own transient
	// cache: cell results persist there as MPR1 files and short-circuit
	// later processes' matching cells. Ignored when Results is set
	// (configure the shared cache directly in that case).
	ResultDir string
}

// DefaultConfig returns the full-evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Requests:         2_000_000,
		Seed:             42,
		Workloads:        workload.All(),
		HMAInterval:      10 * clock.Millisecond,
		HMASortStall:     700 * clock.Microsecond,
		HMAMaxMigrations: 4096,
	}
}

// QuickConfig returns a reduced configuration for tests and benchmarks:
// a handful of representative workloads and short traces. Shapes are
// noisier but the machinery is identical.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Requests = 150_000
	c.HMAInterval = clock.Millisecond
	c.HMASortStall = 70 * clock.Microsecond
	c.HMAMaxMigrations = 1024
	c.Workloads = selectWorkloads("cactus", "bwaves", "xalanc", "mix5")
	return c
}

// WithWorkloads returns a copy of the config restricted to the named
// workloads (benchmark names or "mixN"). It panics on unknown names.
func (c Config) WithWorkloads(names ...string) Config {
	c.Workloads = selectWorkloads(names...)
	return c
}

// selectWorkloads resolves workload names (benchmark names or "mixN").
// It panics on unknown names; resolveWorkloads is the error-returning form
// distributed workers use on untrusted specs.
func selectWorkloads(names ...string) []workload.Workload {
	out, err := resolveWorkloads(names)
	if err != nil {
		panic(err)
	}
	return out
}

func resolveWorkloads(names []string) ([]workload.Workload, error) {
	var out []workload.Workload
	for _, n := range names {
		var w workload.Workload
		var err error
		if len(n) > 3 && n[:3] == "mix" {
			i, perr := strconv.Atoi(n[3:])
			if perr != nil {
				return nil, fmt.Errorf("exp: bad workload name %q: %w", n, perr)
			}
			w, err = workload.Mix(i)
		} else {
			w, err = workload.Homogeneous(n)
		}
		if err != nil {
			return nil, fmt.Errorf("exp: workload %q: %w", n, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// specPair resolves the config's named memory specs through the dram
// preset registry, defaulting to the paper pair. experiment tags the
// error so a bad -fast/-slow name names the figure that tripped on it
// (the registry error itself lists the valid options).
func (c Config) specPair(experiment string) (fast, slow dram.Spec, err error) {
	fastName, slowName := c.FastSpec, c.SlowSpec
	if fastName == "" {
		fastName = "HBM"
	}
	if slowName == "" {
		slowName = "DDR4-1600"
	}
	if fast, err = dram.Preset(fastName); err != nil {
		return fast, slow, fmt.Errorf("exp: %s: fast spec: %w", experiment, err)
	}
	if slow, err = dram.Preset(slowName); err != nil {
		return fast, slow, fmt.Errorf("exp: %s: slow spec: %w", experiment, err)
	}
	return fast, slow, nil
}

// builder constructs a mechanism and the memory system it runs on.
//
// name is the display label results carry (and may differ between
// experiments for one mechanism — Fig6 numbers its grid points, Fig10
// renames HBM-only); ckey is the mechanism's canonical identity for the
// result cache, derived from the config struct that parameterizes it, so
// equal design points hit one another's cache entries whatever an
// experiment labels them.
type builder struct {
	name   string
	ckey   string
	layout addr.Layout
	fast   dram.Spec
	slow   dram.Spec
	make   func(b *mech.Backend) mech.Mechanism
}

// mechKey renders a mechanism tag plus its printed config struct as the
// builder's canonical cache identity. Config structs are flat value types
// whose %+v form lists every design-space parameter.
func mechKey(tag string, cfg any) string {
	if cfg == nil {
		return tag
	}
	return tag + ":" + fmt.Sprintf("%+v", cfg)
}

// Standard layouts and specs of the evaluation.
func stdLayout() addr.Layout { return addr.DefaultLayout() }

func hbmOnlyLayout() addr.Layout {
	return addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
}

func ddrOnlyLayout() addr.Layout {
	return addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4}
}

// baselineBuilders returns the Figure 8 configurations over the given
// memory specs: no-migration TLM, the four mechanisms, and HBM-only.
func (c Config) baselineBuilders(fast, slow dram.Spec) []builder {
	return []builder{
		{"TLM", mechKey("static", nil), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return mech.NewStatic("TLM", b)
		}},
		{"MemPod", mechKey("mempod", core.DefaultConfig()), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return core.MustNew(core.DefaultConfig(), b)
		}},
		{"HMA", mechKey("hma", c.hmaConfig()), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return hma.MustNew(c.hmaConfig(), b)
		}},
		{"THM", mechKey("thm", thm.DefaultConfig()), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return thm.MustNew(thm.DefaultConfig(), b)
		}},
		{"CAMEO", mechKey("cameo", cameo.DefaultConfig()), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return cameo.MustNew(cameo.DefaultConfig(), b)
		}},
		{"HBM-only", mechKey("static", nil), hbmOnlyLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return mech.NewStatic("HBM-only", b)
		}},
	}
}

func (c Config) hmaConfig() hma.Config {
	cfg := hma.DefaultConfig()
	cfg.Interval = c.HMAInterval
	cfg.SortStall = c.HMASortStall
	cfg.MaxMigrations = c.HMAMaxMigrations
	return cfg
}

// traceCache returns the config's shared snapshot cache, or a transient
// one for this run.
func (c Config) traceCache() *tracecache.Cache {
	if c.Traces != nil {
		return c.Traces
	}
	t := tracecache.New()
	if c.TraceDir != "" {
		t.SetDir(c.TraceDir)
	}
	return t
}

// resultCache returns the config's shared result cache, a transient
// disk-backed one when only ResultDir is set, or nil when result caching
// is disabled.
func (c Config) resultCache() *resultcache.Cache {
	if c.Results != nil {
		return c.Results
	}
	if c.ResultDir == "" {
		return nil
	}
	r := resultcache.New()
	r.SetDir(c.ResultDir)
	return r
}

// cellKey is the complete causal identity of the (workload, builder)
// simulation cell under this config: engine version, canonical mechanism
// config, both memory-spec fingerprints, layout geometry, and the exact
// generated trace (workload recipe name + length + seed). Anything that
// could change the cell's numbers is in here; execution shape
// (Parallelism, PodShards) deliberately is not — the differential suites
// prove those bit-identical.
func (c Config) cellKey(w workload.Workload, b builder) resultcache.CellKey {
	return resultcache.CellKey{
		SimVersion: sim.Version,
		Kind:       resultcache.KindResult,
		Mech:       b.ckey,
		FastFP:     b.fast.Fingerprint(),
		SlowFP:     b.slow.Fingerprint(),
		Layout:     fmt.Sprintf("%+v", b.layout),
		Workload:   w.Name,
		Requests:   c.Requests,
		Seed:       c.Seed,
	}
}

// traceKey identifies w's generated trace under this config. Workload
// names uniquely identify recipes in the evaluated set, so the name (with
// the length and seed) pins the exact request sequence.
func (c Config) traceKey(w workload.Workload) tracecache.Key {
	return tracecache.Key{Workload: w.Name, Requests: c.Requests, Seed: c.Seed}
}

// acquireTrace borrows w's packed trace snapshot from the cache,
// generating and recording it on first use. uses is the total acquisition
// count the batch declared for this key.
func (c Config) acquireTrace(traces *tracecache.Cache, w workload.Workload, uses int) (*trace.Snapshot, func(), error) {
	return traces.Acquire(c.traceKey(w), uses, func() (*trace.Snapshot, error) {
		s, err := w.Stream(c.Requests, c.Seed)
		if err != nil {
			return nil, err
		}
		return trace.Record(s, c.Requests), nil
	})
}

// run executes one (workload, builder) cell, consulting the result cache
// when one is configured. The cached path returns without touching the
// trace cache at all (cached cells are excluded from trace use counts by
// matrix's probe pass); the display name is applied after the cache
// consult, because one cached cell can serve under different labels
// (Fig6's "MemPod#7" and Fig7's "MemPod#3" may be the same design point).
func (c Config) run(w workload.Workload, b builder, traces *tracecache.Cache, uses, shards int, results *resultcache.Cache) (stats.Result, error) {
	simulate := func() (stats.Result, error) {
		return c.simulate(w, b, traces, uses, shards)
	}
	var res stats.Result
	var err error
	if results != nil {
		res, err = results.ResultCell(c.cellKey(w, b), simulate)
	} else {
		res, err = simulate()
	}
	if err != nil {
		return stats.Result{}, err
	}
	res.Mechanism = b.name
	return res, nil
}

// simulate computes one (workload, builder) cell. Every piece of mutable
// state — memory system, backend, mechanism, engine, replay cursor — is
// constructed here, inside the cell; cells share only the read-only Config
// and builder values plus the recorded trace snapshot, which is immutable
// after capture (each cell replays it through its own cursor). That
// isolation is what makes matrix safe to fan out across goroutines
// (asserted by TestMatrixParallelDeterminism and the race detector in CI).
func (c Config) simulate(w workload.Workload, b builder, traces *tracecache.Cache, uses, shards int) (stats.Result, error) {
	snap, release, err := c.acquireTrace(traces, w, uses)
	if err != nil {
		return stats.Result{}, err
	}
	defer release()
	sys, err := memsys.New(b.layout, b.fast, b.slow)
	if err != nil {
		return stats.Result{}, err
	}
	backend := mech.NewBackend(sys)
	m := b.make(backend)
	// Recycle the mechanism's large tables into the shared pools once the
	// run's stats are extracted; successive cells then reuse one another's
	// allocations instead of paying fresh multi-MB zeroing per cell.
	defer mech.Release(m)
	engine := sim.New(backend, m)
	engine.Shards = shards
	// Replay through the snapshot's predecode plane for this cell's layout:
	// the plane is computed once per (snapshot, layout) and shared by every
	// cell replaying it, so the matrix decodes each trace once, not once per
	// mechanism (see trace.Snapshot.Plane).
	return engine.Run(w.Name, snap.DecodedStream(&backend.Geom))
}

// matrix runs every workload under every builder on c.Parallelism workers
// and returns results[builderName][workloadName]. Cell failures never
// abort the grid: every cell is attempted, completed cells are always
// returned, and the error joins every cell failure (keyed
// "builder/workload") via errors.Join. Failed cells are absent from the
// returned maps. For a fixed Seed the result is bit-identical for any
// Parallelism; see Config.run for the per-cell isolation that guarantees
// it.
//
// Each workload's trace is generated once and replayed from a packed
// snapshot by every builder's cell. Tasks are submitted workload-major
// (all builders of workload 0, then workload 1, …) so the cells sharing a
// snapshot are adjacent in the queue: since the worker pool starts tasks
// in submission order and a snapshot stays resident only from its
// workload's first started cell to its last released one, at most
// Parallelism+1 snapshots are ever resident, however many workloads the
// matrix spans (asserted by TestMatrixSnapshotResidencyBounded).
func (c Config) matrix(builders []builder) (map[string]map[string]stats.Result, error) {
	traces := c.traceCache()
	results := c.resultCache()
	// Trace snapshots are use-counted exactly, so the count must cover the
	// cells that will actually simulate: probe the result cache for every
	// cell first (a successful probe pins the entry resident, guaranteeing
	// the later lookup hits without re-reading the store) and count one
	// trace use per distinct missing cell key. Duplicate keys inside one
	// matrix collapse to a single use — the cache runs them single-flight,
	// so only the first acquires the trace.
	uses := make(map[tracecache.Key]int, len(c.Workloads))
	probing := make(map[string]bool)
	for _, w := range c.Workloads {
		for _, b := range builders {
			if results == nil {
				uses[c.traceKey(w)]++
				continue
			}
			key := c.cellKey(w, b)
			canon := key.Canonical()
			if probing[canon] || results.Probe(key) {
				continue
			}
			probing[canon] = true
			uses[c.traceKey(w)]++
		}
	}
	// Split the machine between the cell pool and each cell's pod workers:
	// whatever parallelism the pool cannot use (few cells, small -j) goes
	// to the cells' pod-parallel engines, so `Parallelism × pods` never
	// oversubscribes GOMAXPROCS.
	shards := c.PodShards
	if shards == 0 {
		shards = runner.PerTaskParallelism(c.Parallelism, len(builders)*len(c.Workloads))
	}
	tasks := make([]runner.Task[stats.Result], 0, len(builders)*len(c.Workloads))
	for _, w := range c.Workloads {
		for _, b := range builders {
			b, w := b, w
			tasks = append(tasks, runner.Task[stats.Result]{
				Key: b.name + "/" + w.Name,
				// CPU profiles of a sweep attribute samples per cell:
				// `go tool pprof -tagfocus mechanism=MemPod` (or
				// workload=mix3) isolates one cell's share.
				Labels: []string{"mechanism", b.name, "workload", w.Name},
				Run: func() (stats.Result, error) {
					return c.run(w, b, traces, uses[c.traceKey(w)], shards, results)
				},
			})
		}
	}
	cells, err := runner.Run(tasks, runner.Options{
		Parallelism: c.Parallelism,
		OnProgress:  c.Progress,
	})
	out := make(map[string]map[string]stats.Result, len(builders))
	for bi, b := range builders {
		out[b.name] = make(map[string]stats.Result, len(c.Workloads))
		for wi, w := range c.Workloads {
			if cell := cells[wi*len(builders)+bi]; cell.Err == nil {
				out[b.name][w.Name] = cell.Value
			}
		}
	}
	if err != nil {
		return out, fmt.Errorf("exp: %w", err)
	}
	return out, nil
}

// averages splits results into homogeneous, mixed and overall means of a
// metric.
func (c Config) averages(rs map[string]stats.Result, f func(stats.Result) float64) (hg, mix, all float64) {
	var hgSum, mixSum float64
	var hgN, mixN int
	for _, w := range c.Workloads {
		v := f(rs[w.Name])
		if w.Homogeneous {
			hgSum += v
			hgN++
		} else {
			mixSum += v
			mixN++
		}
	}
	if hgN > 0 {
		hg = hgSum / float64(hgN)
	}
	if mixN > 0 {
		mix = mixSum / float64(mixN)
	}
	if hgN+mixN > 0 {
		all = (hgSum + mixSum) / float64(hgN+mixN)
	}
	return hg, mix, all
}
