package exp

import (
	"repro/internal/report"
	"repro/internal/stats"
)

// EnergyTable evaluates the §5.3 energy argument: migration traffic that
// crosses the global switch costs interconnect energy that MemPod's
// intra-pod datapath never pays. The table reports, per mechanism, total
// data-movement energy, the migration-interconnect component, and data
// moved, averaged over the config's workloads.
func (c Config) EnergyTable() (*report.Table, error) {
	fast, slow, err := c.specPair("energy")
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(c.baselineBuilders(fast, slow))
	if err != nil {
		return nil, err
	}
	t := report.New("energy", "Data-movement energy (§5.3): averages per workload",
		"mechanism", "total mJ", "migration switch mJ", "moved MB", "mJ per moved MB")
	for _, m := range append([]string{"TLM"}, fig8Order...) {
		if m == "HBM-only" {
			continue // different layout; not an energy-comparable point
		}
		_, _, total := c.averages(res[m], func(r stats.Result) float64 {
			return r.Energy().TotalMJ()
		})
		_, _, sw := c.averages(res[m], func(r stats.Result) float64 {
			return r.Energy().MigrationSwitchMJ()
		})
		_, _, moved := c.averages(res[m], func(r stats.Result) float64 {
			return float64(r.Mig.BytesMoved) / (1 << 20)
		})
		perMB := 0.0
		if moved > 0 {
			perMB = sw / moved
		}
		t.Addf(m, total, sw, moved, perMB)
	}
	return t, nil
}
