package exp

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/mech"
	"repro/internal/report"
	"repro/internal/stats"
)

// PodCounts are the clustering ablation points. With 8 fast and 4 slow
// channels, pods must divide both: 1 pod is the fully centralized
// controller the paper argues against (§5.3); 4 is the design point (one
// pod per slow MC, §5.1); 2 is the midpoint.
var PodCounts = []int{1, 2, 4}

// podSweepBuilders enumerates the clustering ablation grid: the TLM
// baseline plus the same MemPod configuration at each pod count.
func (c Config) podSweepBuilders() ([]builder, error) {
	fast, slow, err := c.specPair("ablation-pods")
	if err != nil {
		return nil, err
	}
	builders := []builder{{
		name: "TLM", ckey: mechKey("static", nil),
		layout: stdLayout(), fast: fast, slow: slow,
		make: func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) },
	}}
	for _, pods := range PodCounts {
		layout := stdLayout()
		layout.NumPods = pods
		builders = append(builders, builder{
			name:   fmt.Sprintf("MemPod/%dpod", pods),
			ckey:   mechKey("mempod", core.DefaultConfig()),
			layout: layout, fast: fast, slow: slow,
			make: func(b *mech.Backend) mech.Mechanism {
				return core.MustNew(core.DefaultConfig(), b)
			},
		})
	}
	return builders, nil
}

// PodSweep is the clustering ablation DESIGN.md calls out: the same MemPod
// configuration run with 1, 2 and 4 pods, against the no-migration TLM.
// More pods mean more parallel migration drivers and more total MEA
// entries (K per pod), at zero communication between pods.
func (c Config) PodSweep() (*report.Table, error) {
	builders, err := c.podSweepBuilders()
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(builders)
	if err != nil {
		return nil, err
	}
	t := report.New("ablation-pods", "Pod-count ablation: average AMMAT normalized to TLM",
		"configuration", "normalized AMMAT", "moved MB (avg)", "migs/interval (avg)")
	for _, b := range builders[1:] {
		_, _, norm := c.averages(res[b.name], func(r stats.Result) float64 {
			return r.Normalized(res["TLM"][r.Workload])
		})
		_, _, moved := c.averages(res[b.name], func(r stats.Result) float64 {
			return float64(r.Mig.BytesMoved) / (1 << 20)
		})
		_, _, migs := c.averages(res[b.name], func(r stats.Result) float64 {
			if r.Mig.Intervals == 0 {
				return 0
			}
			return float64(r.Mig.PageMigrations) / float64(r.Mig.Intervals)
		})
		t.Addf(b.name, norm, moved, migs)
	}
	return t, nil
}

// trackerSweepBuilders enumerates the tracking ablation grid.
func (c Config) trackerSweepBuilders() ([]builder, error) {
	mk := func(useFC bool) func(b *mech.Backend) mech.Mechanism {
		return func(b *mech.Backend) mech.Mechanism {
			cfg := core.DefaultConfig()
			cfg.UseFullCounters = useFC
			return core.MustNew(cfg, b)
		}
	}
	fast, slow, err := c.specPair("ablation-tracker")
	if err != nil {
		return nil, err
	}
	fcKey := func(useFC bool) string {
		cfg := core.DefaultConfig()
		cfg.UseFullCounters = useFC
		return mechKey("mempod", cfg)
	}
	return []builder{
		{"TLM", mechKey("static", nil), stdLayout(), fast, slow, func(b *mech.Backend) mech.Mechanism {
			return mech.NewStatic("TLM", b)
		}},
		{"MemPod", fcKey(false), stdLayout(), fast, slow, mk(false)},
		{"MemPod-FC", fcKey(true), stdLayout(), fast, slow, mk(true)},
	}, nil
}

// TrackerSweep is the tracking ablation: MemPod with its 736 B MEA units
// versus the same mechanism driven by exact Full Counters (9 MB-class
// storage), both migrating at most K pages per pod per epoch. The paper's
// claim is that MEA gives up little or nothing here.
func (c Config) TrackerSweep() (*report.Table, error) {
	builders, err := c.trackerSweepBuilders()
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(builders)
	if err != nil {
		return nil, err
	}
	t := report.New("ablation-tracker", "Tracker ablation: MEA (736 B) vs Full Counters (MB-class)",
		"tracker", "normalized AMMAT", "moved MB (avg)")
	for _, name := range []string{"MemPod", "MemPod-FC"} {
		_, _, norm := c.averages(res[name], func(r stats.Result) float64 {
			return r.Normalized(res["TLM"][r.Workload])
		})
		_, _, moved := c.averages(res[name], func(r stats.Result) float64 {
			return float64(r.Mig.BytesMoved) / (1 << 20)
		})
		t.Addf(name, norm, moved)
	}
	return t, nil
}

// layoutForPods is a helper for tests.
func layoutForPods(pods int) addr.Layout {
	l := stdLayout()
	l.NumPods = pods
	return l
}
