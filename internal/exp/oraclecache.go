package exp

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// kindOracle names (and versions) the OracleResult payload codec below.
// The oracle study has no timing model, so its cells carry no spec
// fingerprints or layout — the study parameters live in the Mech field.
const kindOracle = "oracle/v1"

// oracleKey is the causal identity of one workload's §3 oracle pass: the
// study constants, the exact generated trace, and the engine version
// (trace generation is engine-side, so a semantics bump conservatively
// invalidates oracle cells too).
func (c Config) oracleKey(w workload.Workload) resultcache.CellKey {
	return resultcache.CellKey{
		SimVersion: sim.Version,
		Kind:       kindOracle,
		Mech: fmt.Sprintf("oracle:{IntervalReqs:%d Counters:%d CounterBits:%d Tiers:%d}",
			OracleIntervalReqs, OracleMEACounters, OracleCounterBits, tiers),
		Workload: w.Name,
		Requests: c.Requests,
		Seed:     c.Seed,
	}
}

// encodeOracle serializes an OracleResult as a kindOracle payload: the
// workload name, a homogeneity byte, the interval count, then the three
// metric vectors as IEEE float64 bits, all little-endian.
func encodeOracle(r OracleResult) []byte {
	out := make([]byte, 0, 16+len(r.Workload)+8*(1+3*tiers))
	out = binary.AppendUvarint(out, uint64(len(r.Workload)))
	out = append(out, r.Workload...)
	if r.Homogeneous {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint64(out, uint64(r.Intervals))
	for _, vec := range [][tiers]float64{r.CountAcc, r.MEAHits, r.FCHits} {
		for _, v := range vec {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// decodeOracle parses a kindOracle payload. Like the result codec it is
// strict — exact lengths, no trailing bytes — and malformed payloads
// error, which the caller treats as a recompute.
func decodeOracle(b []byte) (OracleResult, error) {
	var r OracleResult
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return r, fmt.Errorf("exp: oracle payload: bad workload length")
	}
	r.Workload, b = string(b[w:w+int(n)]), b[w+int(n):]
	if want := 1 + 8*(1+3*tiers); len(b) != want {
		return r, fmt.Errorf("exp: oracle payload has %d metric bytes, want %d", len(b), want)
	}
	switch b[0] {
	case 0:
	case 1:
		r.Homogeneous = true
	default:
		return r, fmt.Errorf("exp: oracle payload: bad homogeneity byte %d", b[0])
	}
	b = b[1:]
	r.Intervals = int(binary.LittleEndian.Uint64(b))
	b = b[8:]
	for _, vec := range []*[tiers]float64{&r.CountAcc, &r.MEAHits, &r.FCHits} {
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
	}
	return r, nil
}

// oracleCell runs one workload's oracle pass through the result cache
// when one is configured, mirroring Config.run for simulation cells.
func (c Config) oracleCell(w workload.Workload, traces *tracecache.Cache, traceUses int, results *resultcache.Cache) (OracleResult, error) {
	if results == nil {
		return c.oracleOne(w, traces, traceUses)
	}
	payload, err := results.GetOrRun(c.oracleKey(w), func() ([]byte, error) {
		r, err := c.oracleOne(w, traces, traceUses)
		if err != nil {
			return nil, err
		}
		return encodeOracle(r), nil
	})
	if err != nil {
		return OracleResult{}, err
	}
	r, derr := decodeOracle(payload)
	if derr != nil {
		// An undecodable payload behind a valid key means a codec bug this
		// process cannot fix in the store; recompute so the run still
		// succeeds (the cache must never fail a run).
		return c.oracleOne(w, traces, traceUses)
	}
	return r, nil
}
