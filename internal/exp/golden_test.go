package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/exp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenConfig is the pinned regression configuration: small enough to run
// in CI, large enough that migration mechanisms separate. It must never
// change silently — the committed golden files encode its exact output,
// so any drift in the simulator, the workload generators, or the
// experiment plumbing (including the parallel runner) fails these tests.
func goldenConfig() Config {
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus", "bwaves", "mix5")
	c.Parallelism = 0 // GOMAXPROCS: golden output must not depend on scheduling
	return c
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with:\n\tgo test ./internal/exp -run TestGolden -update",
			name, got, want)
	}
}

// TestGoldenFig8 pins the Figure 8 mechanism comparison (the paper's
// headline result) for the golden config. Same Seed ⇒ identical table,
// regardless of Parallelism.
func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	tab, err := goldenConfig().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8", tab.String())
}

// TestGoldenSpecGrid pins the (mechanism × spec-pair) grid — every
// migration mechanism including the OS-assisted Migrant policy, over the
// paper pair, the DDR5 generation, the CXL far-memory pair and the
// DRAM+NVM pair. This is the registry's coverage gate: a change to any
// preset's parameters, to the spec-driven row geometry, or to any
// mechanism's behaviour on a non-paper spec shows up here.
func TestGoldenSpecGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := goldenConfig()
	c.Workloads = selectWorkloads("cactus", "mix5")
	tab, err := c.SpecGrid()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "specgrid", tab.String())
}

// TestGoldenFig6 pins the §6.3.1 epoch × counters design-space sweep for
// one workload of the golden config.
func TestGoldenFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	c := goldenConfig()
	c.Workloads = selectWorkloads("cactus")
	tab, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6", tab.String())
}
