package exp

import (
	"reflect"
	"strings"
	"testing"
)

// TestSpecGridShape checks the grid's structure on a tiny config: one row
// per (pair, workload) plus one average row per pair, every mechanism
// column present, and the paper pair's normalized values consistent with
// Fig8 (same cells, same substrate).
func TestSpecGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus", "mix5")
	tab, err := c.SpecGrid()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	wantRows := len(SpecPairs) * (len(c.Workloads) + 1)
	if got := strings.Count(s, "\n") - 3; got != wantRows { // header + title + rule
		t.Errorf("spec grid has %d rows, want %d:\n%s", got, wantRows, s)
	}
	for _, m := range specGridOrder {
		if !strings.Contains(s, m) {
			t.Errorf("mechanism column %s missing:\n%s", m, s)
		}
	}
	for _, pair := range SpecPairs {
		if !strings.Contains(s, pair[0]+"+"+pair[1]) {
			t.Errorf("spec pair %v missing:\n%s", pair, s)
		}
	}
}

// TestSpecPairSelection checks Config.FastSpec/SlowSpec reach the
// simulated memory: the NVM pair must produce a different Fig8 baseline
// than the paper pair, and unknown names must panic with the registry's
// error naming the valid options.
func TestSpecPairSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus")
	paper, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	c.SlowSpec = "NVM"
	nvm, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if paper.String() == nvm.String() {
		t.Fatal("SlowSpec=NVM produced the paper pair's exact table")
	}
	if !strings.Contains(nvm.String(), "NVM-PCM") {
		t.Errorf("table title does not name the resolved spec:\n%s", nvm.String())
	}

	c.SlowSpec = "GDDR7"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown SlowSpec did not panic")
		}
		msg := r.(error).Error()
		if !strings.Contains(msg, "GDDR7") || !strings.Contains(msg, "DDR5-4800") {
			t.Errorf("panic %q does not name the bad spec and the valid options", msg)
		}
	}()
	c.Fig8()
}

// TestOracleSpecInvariant pins the oracle study's spec coverage: the §3
// study observes page addresses only (no timing model), so its results
// are identical for every memory spec pair — the property that lets one
// oracle run stand for every (mechanism × spec) configuration.
func TestOracleSpecInvariant(t *testing.T) {
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus")
	paper, err := c.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	c.FastSpec, c.SlowSpec = "HBM3", "NVM-PCM"
	nvm, err := c.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paper, nvm) {
		t.Fatalf("oracle study depends on specs:\n%+v\nvs\n%+v", paper, nvm)
	}
}
