package exp

import (
	"reflect"
	"strings"
	"testing"
)

// TestSpecGridShape checks the grid's structure on a tiny config: one row
// per (pair, workload) plus one average row per pair, every mechanism
// column present, and the paper pair's normalized values consistent with
// Fig8 (same cells, same substrate).
func TestSpecGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus", "mix5")
	tab, err := c.SpecGrid()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	wantRows := len(SpecPairs) * (len(c.Workloads) + 1)
	if got := strings.Count(s, "\n") - 3; got != wantRows { // header + title + rule
		t.Errorf("spec grid has %d rows, want %d:\n%s", got, wantRows, s)
	}
	for _, m := range specGridOrder {
		if !strings.Contains(s, m) {
			t.Errorf("mechanism column %s missing:\n%s", m, s)
		}
	}
	for _, pair := range SpecPairs {
		if !strings.Contains(s, pair[0]+"+"+pair[1]) {
			t.Errorf("spec pair %v missing:\n%s", pair, s)
		}
	}
}

// TestSpecPairSelection checks Config.FastSpec/SlowSpec reach the
// simulated memory: the NVM pair must produce a different Fig8 baseline
// than the paper pair.
func TestSpecPairSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix")
	}
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus")
	paper, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	c.SlowSpec = "NVM"
	nvm, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if paper.String() == nvm.String() {
		t.Fatal("SlowSpec=NVM produced the paper pair's exact table")
	}
	if !strings.Contains(nvm.String(), "NVM-PCM") {
		t.Errorf("table title does not name the resolved spec:\n%s", nvm.String())
	}
}

// TestUnknownSpecErrors pins the unknown-spec-name contract: every
// experiment that resolves Config.FastSpec/SlowSpec returns an error —
// never panics — naming the experiment, the bad spec, and the registry's
// valid options. No simulation runs, so even DefaultConfig is instant.
func TestUnknownSpecErrors(t *testing.T) {
	experiments := []struct {
		name string
		run  func(Config) error
	}{
		{"fig6", func(c Config) error { _, err := c.Fig6(); return err }},
		{"fig7", func(c Config) error { _, err := c.Fig7(); return err }},
		{"fig8", func(c Config) error { _, err := c.Fig8(); return err }},
		{"fig9", func(c Config) error { _, err := c.Fig9(); return err }},
		{"energy", func(c Config) error { _, err := c.EnergyTable(); return err }},
		{"ablation-pods", func(c Config) error { _, err := c.PodSweep(); return err }},
		{"ablation-tracker", func(c Config) error { _, err := c.TrackerSweep(); return err }},
		{"best-config-check", func(c Config) error { _, _, err := c.BestConfigCheck(); return err }},
	}
	specs := []struct {
		name       string
		fast, slow string
		bad        string
	}{
		{"bad fast", "GDDR7", "", "GDDR7"},
		{"bad slow", "", "GDDR7", "GDDR7"},
		{"bad both reports fast first", "LPDDR6", "GDDR7", "LPDDR6"},
	}
	for _, e := range experiments {
		for _, s := range specs {
			t.Run(e.name+"/"+s.name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panicked instead of returning an error: %v", r)
					}
				}()
				c := QuickConfig()
				c.FastSpec, c.SlowSpec = s.fast, s.slow
				err := e.run(c)
				if err == nil {
					t.Fatal("unknown spec accepted")
				}
				msg := err.Error()
				if !strings.Contains(msg, "exp: "+e.name+":") {
					t.Errorf("error %q does not carry the experiment name %q", msg, e.name)
				}
				if !strings.Contains(msg, s.bad) {
					t.Errorf("error %q does not name the bad spec %q", msg, s.bad)
				}
				if !strings.Contains(msg, "DDR5-4800") {
					t.Errorf("error %q does not list the registry's valid options", msg)
				}
			})
		}
	}
}

// TestOracleSpecInvariant pins the oracle study's spec coverage: the §3
// study observes page addresses only (no timing model), so its results
// are identical for every memory spec pair — the property that lets one
// oracle run stand for every (mechanism × spec) configuration.
func TestOracleSpecInvariant(t *testing.T) {
	c := QuickConfig()
	c.Requests = 30_000
	c.Workloads = selectWorkloads("cactus")
	paper, err := c.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	c.FastSpec, c.SlowSpec = "HBM3", "NVM-PCM"
	nvm, err := c.OracleStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paper, nvm) {
		t.Fatalf("oracle study depends on specs:\n%+v\nvs\n%+v", paper, nvm)
	}
}
