package exp

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table1 regenerates Table 1, the building-block comparison, with the
// storage costs computed from this repository's implementation of each
// mechanism over the default layout. The MemPod, HMA and THM tracking
// costs land on the paper's quoted values (736 B, 9 MB, 512 KB); remap
// costs are computed from our encodings.
func Table1() *report.Table {
	l := addr.DefaultLayout()
	t := report.New("table1", "Building-block comparison (storage computed from this implementation)",
		"challenge", "THM", "HMA", "CAMEO", "MemPod")

	t.Add("Page relocation", "1 candidate/segment", "no restrictions", "1 candidate/group", "intra-pod, any frame")

	// Remap state.
	thmRemap := uint64(l.FastPages()) * 6 // 36-bit permutation + counter + challenger ≈ 6 B/segment
	cameoRemap := uint64(l.FastLines()) * 8
	mempodRemap := uint64(l.PagesPerPod()) * 4
	t.Add("Remap table",
		fmt.Sprintf("%s (segment state)", bytesStr(thmRemap)),
		"none (OS page tables)",
		fmt.Sprintf("%s (in memory)", bytesStr(cameoRemap)),
		fmt.Sprintf("%s/pod", bytesStr(mempodRemap)))

	// Activity tracking: the paper's quoted numbers.
	thmTrack := uint64(l.FastPages()) // 8 bits per fast page
	hmaTrack := uint64(l.TotalPages()) * 2
	mempodTrack := uint64(64) * 23 / 8 * uint64(l.NumPods) // 64 entries x (21b tag + 2b counter)
	t.Add("Activity tracking",
		bytesStr(thmTrack), bytesStr(hmaTrack), "none (event trigger)",
		fmt.Sprintf("%s total (64 MEA entries/pod)", bytesStr(mempodTrack)))

	t.Add("Migration trigger", "threshold", "interval", "event (every slow access)", "interval")
	t.Add("Tracking organization", "centralized", "distributed", "distributed", "semi-distributed (pods)")
	t.Add("Migration driver", "CPU", "CPU (OS)", "MCs", "pod")
	return t
}

func bytesStr(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Table2 regenerates Table 2, the experimental configuration.
func Table2() *report.Table {
	l := addr.DefaultLayout()
	hbm, ddr := dram.MustPreset("HBM"), dram.MustPreset("DDR4-1600")
	t := report.New("table2", "Experimental framework configuration", "component", "value")
	t.Add("Cores", "8 @ 3.2 GHz (trace timestamps), bounded outstanding window")
	t.Add("Page / line / row", fmt.Sprintf("%dB / %dB / %dB", addr.PageBytes, addr.LineBytes, addr.RowBytes))
	for _, s := range []dram.Spec{hbm, ddr} {
		cap := l.FastBytes
		if s.Name == ddr.Name {
			cap = l.SlowBytes
		}
		t.Add(s.Name+" capacity", fmt.Sprintf("%dGB", cap>>30))
		t.Add(s.Name+" bus", fmt.Sprintf("%d MHz x %d bits (DDR)", int64(s.BusFreq)/1_000_000, s.BusBits))
		t.Add(s.Name+" channels/banks", fmt.Sprintf("%d / %d", s.Channels, s.Banks))
		t.Add(s.Name+" tCAS-tRCD-tRP-tRAS", fmt.Sprintf("%d-%d-%d-%d", s.CAS, s.RCD, s.RP, s.RAS))
	}
	t.Add("Pods", fmt.Sprintf("%d (2 HBM + 1 DDR channel each)", l.NumPods))
	return t
}

// Table3 regenerates Table 3, the mixed-workload composition.
func Table3() *report.Table {
	mixTable := workload.MixTable()
	names := make([]string, 0, len(mixTable))
	for n := range mixTable {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return mixNum(names[i]) < mixNum(names[j])
	})
	t := report.New("table3", "Mixed workloads (8 cores each)",
		"mix", "core0", "core1", "core2", "core3", "core4", "core5", "core6", "core7")
	for _, n := range names {
		m := mixTable[n]
		t.Add(n, m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7])
	}
	return t
}

func mixNum(name string) int {
	var i int
	fmt.Sscanf(name, "mix%d", &i)
	return i
}
