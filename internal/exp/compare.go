package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/thm"
)

// fig8Order is the column order of the Figure 8 comparison.
var fig8Order = []string{"MemPod", "HMA", "THM", "CAMEO", "HBM-only"}

// Fig8 regenerates Figure 8: per-workload AMMAT of every mechanism
// normalized to the no-migration two-level memory (TLM), plus HG/MIX/ALL
// averages and the migration volumes the paper discusses alongside it.
func (c Config) Fig8() (*report.Table, error) {
	fast, slow, err := c.specPair("fig8")
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(c.baselineBuilders(fast, slow))
	if err != nil {
		return nil, err
	}
	return c.renderComparison("fig8",
		fmt.Sprintf("AMMAT normalized to no-migration TLM (1GB %s + 8GB %s)", fast.Name, slow.Name),
		res, "TLM"), nil
}

// fig10Builders returns the future-technology configurations and the
// derived config they were built under (the paper reduces HMA's sort
// penalty by 40% for the faster future processor).
func (c Config) fig10Builders() ([]builder, Config) {
	future := c
	future.HMASortStall = c.HMASortStall * 6 / 10
	fast, slow := dram.HBMOverclocked(), dram.DDR4_2400()

	builders := future.baselineBuilders(fast, slow)
	// Rename the HBM-only configuration as the paper does ("HBMoc") and
	// add the DDR-only normalization baseline.
	for i := range builders {
		if builders[i].name == "HBM-only" {
			builders[i].name = "HBMoc"
		}
	}
	builders = append(builders, builder{
		name: "DDR-only", ckey: mechKey("static", nil),
		layout: ddrOnlyLayout(), fast: fast, slow: slow,
		make: func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("DDR-only", b) },
	})
	return builders, future
}

// Fig10 regenerates Figure 10, the future-technology scalability study:
// 4 GHz HBM and DDR4-2400, results normalized to a DDR4-2400-only memory.
func (c Config) Fig10() (*report.Table, error) {
	builders, future := c.fig10Builders()
	res, err := future.matrix(builders)
	if err != nil {
		return nil, err
	}
	t := report.New("fig10", "Future memories (4GHz HBM + DDR4-2400): AMMAT normalized to DDR4-2400-only",
		"workload", "TLM", "MemPod", "HMA", "THM", "CAMEO", "HBMoc")
	order := []string{"TLM", "MemPod", "HMA", "THM", "CAMEO", "HBMoc"}
	addRow := func(name string, get func(mech string) float64) {
		row := []string{name}
		for _, m := range order {
			row = append(row, fmt.Sprintf("%.3f", get(m)))
		}
		t.Add(row...)
	}
	for _, w := range c.Workloads {
		base := res["DDR-only"][w.Name]
		addRow(w.Name, func(m string) float64 { return res[m][w.Name].Normalized(base) })
	}
	for _, avg := range []string{"AVG HG", "AVG MIX", "AVG ALL"} {
		addRow(avg, func(m string) float64 {
			hg, mix, all := c.averages(res[m], func(r stats.Result) float64 {
				return r.Normalized(res["DDR-only"][r.Workload])
			})
			switch avg {
			case "AVG HG":
				return hg
			case "AVG MIX":
				return mix
			default:
				return all
			}
		})
	}
	return t, nil
}

// renderComparison builds a normalized-AMMAT table against the named
// baseline configuration.
func (c Config) renderComparison(id, title string, res map[string]map[string]stats.Result, baseName string) *report.Table {
	cols := append([]string{"workload", baseName + " (ns)"}, fig8Order...)
	t := report.New(id, title, cols...)
	for _, w := range c.Workloads {
		base := res[baseName][w.Name]
		row := []string{w.Name, fmt.Sprintf("%.2f", base.AMMAT())}
		for _, m := range fig8Order {
			row = append(row, fmt.Sprintf("%.3f", res[m][w.Name].Normalized(base)))
		}
		t.Add(row...)
	}
	for _, avg := range []string{"AVG HG", "AVG MIX", "AVG ALL"} {
		row := []string{avg, ""}
		for _, m := range fig8Order {
			hg, mix, all := c.averages(res[m], func(r stats.Result) float64 {
				return r.Normalized(res[baseName][r.Workload])
			})
			v := all
			switch avg {
			case "AVG HG":
				v = hg
			case "AVG MIX":
				v = mix
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Add(row...)
	}
	// Migration volume summary (the paper quotes GB moved per experiment).
	volRow := []string{"moved MB (avg)", ""}
	for _, m := range fig8Order {
		_, _, all := c.averages(res[m], func(r stats.Result) float64 {
			return float64(r.Mig.BytesMoved) / (1 << 20)
		})
		volRow = append(volRow, fmt.Sprintf("%.1f", all))
	}
	t.Add(volRow...)
	return t
}

// Fig9Sizes are the bookkeeping-cache capacities of Figure 9.
var Fig9Sizes = []int{16 << 10, 32 << 10, 64 << 10}

// fig9MechNames are the cached-mechanism rows of Figure 9.
var fig9MechNames = []string{"MemPod", "THM", "HMA"}

// fig9Label names one (mechanism, cache size) configuration.
func fig9Label(mech string, size int) string {
	if size > 0 {
		return fmt.Sprintf("%s/%dKB", mech, size>>10)
	}
	return fmt.Sprintf("%s/no-cache", mech)
}

// fig9Builders enumerates the Figure 9 bookkeeping-cache sensitivity
// grid: the TLM baseline plus every (mechanism × cache size) pair.
func (c Config) fig9Builders() ([]builder, error) {
	fast, slow, err := c.specPair("fig9")
	if err != nil {
		return nil, err
	}
	builders := []builder{{
		name: "TLM", ckey: mechKey("static", nil),
		layout: stdLayout(), fast: fast, slow: slow,
		make: func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) },
	}}
	mechs := []struct {
		name string
		ckey func(cacheBytes int) string
		mk   func(cacheBytes int) func(b *mech.Backend) mech.Mechanism
	}{
		{"MemPod",
			func(cb int) string { cfg := core.DefaultConfig(); cfg.CacheBytes = cb; return mechKey("mempod", cfg) },
			func(cb int) func(b *mech.Backend) mech.Mechanism {
				return func(b *mech.Backend) mech.Mechanism {
					cfg := core.DefaultConfig()
					cfg.CacheBytes = cb
					return core.MustNew(cfg, b)
				}
			}},
		{"THM",
			func(cb int) string { cfg := thm.DefaultConfig(); cfg.CacheBytes = cb; return mechKey("thm", cfg) },
			func(cb int) func(b *mech.Backend) mech.Mechanism {
				return func(b *mech.Backend) mech.Mechanism {
					cfg := thm.DefaultConfig()
					cfg.CacheBytes = cb
					return thm.MustNew(cfg, b)
				}
			}},
		{"HMA",
			func(cb int) string { cfg := c.hmaConfig(); cfg.CacheBytes = cb; return mechKey("hma", cfg) },
			func(cb int) func(b *mech.Backend) mech.Mechanism {
				return func(b *mech.Backend) mech.Mechanism {
					cfg := c.hmaConfig()
					cfg.CacheBytes = cb
					return hma.MustNew(cfg, b)
				}
			}},
	}
	sizes := append([]int{0}, Fig9Sizes...)
	for _, m := range mechs {
		for _, size := range sizes {
			builders = append(builders, builder{
				name: fig9Label(m.name, size), ckey: m.ckey(size),
				layout: stdLayout(), fast: fast, slow: slow,
				make: m.mk(size),
			})
		}
	}
	return builders, nil
}

// Fig9 regenerates Figure 9: AMMAT of MemPod, THM and HMA with 16/32/64 KB
// bookkeeping caches, normalized to the no-migration TLM, plus each
// mechanism's cache-disabled reference.
func (c Config) Fig9() (*report.Table, error) {
	builders, err := c.fig9Builders()
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(builders)
	if err != nil {
		return nil, err
	}
	t := report.New("fig9", "Bookkeeping-cache sensitivity: average AMMAT normalized to TLM",
		"mechanism", "no cache", "16KB", "32KB", "64KB")
	for _, name := range fig9MechNames {
		row := []string{name}
		for _, size := range append([]int{0}, Fig9Sizes...) {
			_, _, all := c.averages(res[fig9Label(name, size)], func(r stats.Result) float64 {
				return r.Normalized(res["TLM"][r.Workload])
			})
			row = append(row, fmt.Sprintf("%.3f", all))
		}
		t.Add(row...)
	}
	return t, nil
}
