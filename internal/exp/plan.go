// Plan/run split for distributed sweeps: a Plan enumerates the simulation
// cells an experiment set would run — as resultcache.CellKeys plus the
// closures that compute their payloads — without executing any of them.
// A coordinator enumerates a Plan to hand out cell indices; workers build
// the identical Plan from the same serialized Jobs (the enumeration is
// deterministic, attested by Fingerprint) and execute leased index
// batches through the same runner pool and result cache the serial path
// uses. Because every cell is content-addressed, the distributed results
// merge into a cache from which the experiment tables render byte-
// identically to a serial run.
package exp

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/clock"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tracecache"
)

// Params is the serializable subset of Config that determines cell
// identity: everything a distributed worker needs to rebuild a plan
// bit-identically, and nothing about execution shape (parallelism, pod
// shards and caches stay per-process).
type Params struct {
	Requests  int      `json:"requests"`
	Seed      int64    `json:"seed"`
	Workloads []string `json:"workloads"`

	FastSpec string `json:"fast_spec,omitempty"`
	SlowSpec string `json:"slow_spec,omitempty"`

	// HMA scaling, in femtoseconds (clock.Duration's unit).
	HMAIntervalFs    int64 `json:"hma_interval_fs"`
	HMASortStallFs   int64 `json:"hma_sort_stall_fs"`
	HMAMaxMigrations int   `json:"hma_max_migrations"`
}

// Params extracts the config's cell-identity parameters.
func (c Config) Params() Params {
	names := make([]string, len(c.Workloads))
	for i, w := range c.Workloads {
		names[i] = w.Name
	}
	return Params{
		Requests:         c.Requests,
		Seed:             c.Seed,
		Workloads:        names,
		FastSpec:         c.FastSpec,
		SlowSpec:         c.SlowSpec,
		HMAIntervalFs:    int64(c.HMAInterval),
		HMASortStallFs:   int64(c.HMASortStall),
		HMAMaxMigrations: c.HMAMaxMigrations,
	}
}

// Config reconstructs the experiment configuration the parameters came
// from. Unknown workload names error (a distributed spec is untrusted
// input); execution-shape fields are left zero for the caller to set.
func (p Params) Config() (Config, error) {
	ws, err := resolveWorkloads(p.Workloads)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Requests:         p.Requests,
		Seed:             p.Seed,
		Workloads:        ws,
		FastSpec:         p.FastSpec,
		SlowSpec:         p.SlowSpec,
		HMAInterval:      clock.Duration(p.HMAIntervalFs),
		HMASortStall:     clock.Duration(p.HMASortStallFs),
		HMAMaxMigrations: p.HMAMaxMigrations,
	}, nil
}

// A Job names one experiment to run under a serializable parameter set.
// A sweep is a list of Jobs; cells shared between jobs (Fig6 and Fig7
// overlap on the paper's chosen design point) are enumerated once.
type Job struct {
	Experiment string `json:"experiment"`
	Params     Params `json:"params"`
}

// planCell is one enumerated simulation cell: its content-addressed
// identity, the trace it replays, and the closure computing its payload
// (the bytes GetOrRun would cache — EncodeResult or encodeOracle output).
type planCell struct {
	key     resultcache.CellKey
	tkey    tracecache.Key
	compute func(traces *tracecache.Cache, uses, shards int) ([]byte, error)
}

// Plan is the deduplicated, deterministically ordered cell list of a Job
// set. Equal Jobs always yield equal plans — same cells, same order, same
// Fingerprint — whatever process builds them.
type Plan struct {
	jobs  []Job
	cells []planCell
}

// BuildPlan enumerates the distinct cells of jobs, in job order and, per
// job, in the experiment's matrix submission order (workload-major).
// Cells whose canonical key already appeared are skipped, so overlapping
// experiments plan each design point once, exactly as a shared result
// cache would dedupe them at run time.
func BuildPlan(jobs []Job) (*Plan, error) {
	p := &Plan{jobs: jobs}
	seen := make(map[string]bool)
	for _, job := range jobs {
		cfg, err := job.Params.Config()
		if err != nil {
			return nil, fmt.Errorf("exp: plan %s: %w", job.Experiment, err)
		}
		cells, err := cfg.planCells(job.Experiment)
		if err != nil {
			return nil, fmt.Errorf("exp: plan %s: %w", job.Experiment, err)
		}
		for _, cell := range cells {
			canon := cell.key.Canonical()
			if seen[canon] {
				continue
			}
			seen[canon] = true
			p.cells = append(p.cells, cell)
		}
	}
	return p, nil
}

// Jobs returns the job list the plan was built from.
func (p *Plan) Jobs() []Job { return p.jobs }

// Len returns the number of distinct cells.
func (p *Plan) Len() int { return len(p.cells) }

// Key returns cell i's content-addressed identity.
func (p *Plan) Key(i int) resultcache.CellKey { return p.cells[i].key }

// Fingerprint hashes the ordered canonical keys (FNV-1a). Two processes
// agreeing on a fingerprint agree on every cell's identity and index, so
// a coordinator and a worker can exchange bare indices safely; the keys
// already embed sim.Version, so an engine-semantics skew between builds
// changes the fingerprint too.
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "plan1 sim=%d\n", sim.Version)
	for _, cell := range p.cells {
		io.WriteString(h, cell.key.Canonical())
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// planCells enumerates experiment id's cells under this config, in the
// exact submission order the experiment's run path uses. The static
// tables have no cells; the oracle experiments share one cell per
// workload (Fig1–3 render different columns of the same study).
func (c Config) planCells(id string) ([]planCell, error) {
	switch id {
	case "table1", "table2", "table3":
		return nil, nil
	case "fig1", "fig2", "fig3":
		cells := make([]planCell, 0, len(c.Workloads))
		for _, w := range c.Workloads {
			w := w
			cells = append(cells, planCell{
				key:  c.oracleKey(w),
				tkey: c.traceKey(w),
				compute: func(traces *tracecache.Cache, uses, shards int) ([]byte, error) {
					r, err := c.oracleOne(w, traces, uses)
					if err != nil {
						return nil, err
					}
					return encodeOracle(r), nil
				},
			})
		}
		return cells, nil
	}
	builders, err := c.buildersFor(id)
	if err != nil {
		return nil, err
	}
	cells := make([]planCell, 0, len(c.Workloads)*len(builders))
	for _, w := range c.Workloads {
		for _, b := range builders {
			w, b := w, b
			cells = append(cells, planCell{
				key:  c.cellKey(w, b),
				tkey: c.traceKey(w),
				compute: func(traces *tracecache.Cache, uses, shards int) ([]byte, error) {
					r, err := c.simulate(w, b, traces, uses, shards)
					if err != nil {
						return nil, err
					}
					return resultcache.EncodeResult(r), nil
				},
			})
		}
	}
	return cells, nil
}

// buildersFor enumerates the builder grid of a matrix experiment without
// running it — the same helpers the experiments' own render paths call,
// so plan and run cannot drift.
func (c Config) buildersFor(id string) ([]builder, error) {
	switch id {
	case "fig6":
		return c.memPodGridBuilders("fig6", fig6Configs())
	case "fig7":
		return c.memPodGridBuilders("fig7", fig7Configs())
	case "fig8":
		fast, slow, err := c.specPair("fig8")
		if err != nil {
			return nil, err
		}
		return c.baselineBuilders(fast, slow), nil
	case "fig9":
		return c.fig9Builders()
	case "fig10":
		builders, _ := c.fig10Builders()
		return builders, nil
	case "specgrid":
		return c.specGridBuilders()
	case "ablation-pods":
		return c.podSweepBuilders()
	case "ablation-tracker":
		return c.trackerSweepBuilders()
	case "energy":
		fast, slow, err := c.specPair("energy")
		if err != nil {
			return nil, err
		}
		return c.baselineBuilders(fast, slow), nil
	default:
		return nil, fmt.Errorf("exp: experiment %q has no enumerable cells", id)
	}
}

// RunCellsOptions tunes a RunCells batch. All fields are optional.
type RunCellsOptions struct {
	// Results, when non-nil, is consulted before computing each cell and
	// receives fresh payloads — a warm worker answers a whole lease in
	// O(1) disk-free lookups.
	Results *resultcache.Cache
	// Traces, when non-nil, supplies trace snapshots across batches;
	// nil builds a transient cache for this batch only.
	Traces *tracecache.Cache
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// PodShards forces each cell's intra-cell pod-parallel worker count
	// (0 = auto-budget against Parallelism, like the matrix).
	PodShards int
}

// CellRun is the outcome of one requested cell: a complete MPR1 frame
// (resultcache.EncodeFile of the cell's key and payload) or the error
// that prevented it.
type CellRun struct {
	Frame []byte
	Err   error
}

// RunCells executes the cells at the given plan indices on a bounded
// worker pool and returns one CellRun per index, in request order. Trace
// snapshots are use-counted exactly over the batch (cache-resident cells
// excluded, like the matrix's probe pass), so a snapshot is generated
// once per batch and freed at its last use. Cell failures never abort the
// batch; each failed slot carries its own error.
func (p *Plan) RunCells(indices []int, opts RunCellsOptions) []CellRun {
	out := make([]CellRun, len(indices))
	traces := opts.Traces
	if traces == nil {
		traces = tracecache.New()
	}
	results := opts.Results

	uses := make(map[tracecache.Key]int)
	probing := make(map[string]bool)
	for _, i := range indices {
		if i < 0 || i >= len(p.cells) {
			continue
		}
		cell := p.cells[i]
		if results != nil {
			canon := cell.key.Canonical()
			if probing[canon] || results.Probe(cell.key) {
				continue
			}
			probing[canon] = true
		}
		uses[cell.tkey]++
	}

	shards := opts.PodShards
	if shards == 0 {
		shards = runner.PerTaskParallelism(opts.Parallelism, len(indices))
	}
	tasks := make([]runner.Task[[]byte], len(indices))
	for oi, i := range indices {
		oi, i := oi, i
		if i < 0 || i >= len(p.cells) {
			tasks[oi] = runner.Task[[]byte]{Run: func() ([]byte, error) {
				return nil, fmt.Errorf("exp: cell index %d out of plan range [0,%d)", i, len(p.cells))
			}}
			continue
		}
		cell := p.cells[i]
		tasks[oi] = runner.Task[[]byte]{
			Key:    cell.key.Workload,
			Labels: []string{"mechanism", "distrib-cell", "workload", cell.key.Workload},
			Run: func() ([]byte, error) {
				compute := func() ([]byte, error) {
					return cell.compute(traces, uses[cell.tkey], shards)
				}
				if results != nil {
					return results.GetOrRun(cell.key, compute)
				}
				return compute()
			},
		}
	}
	runs, _ := runner.Run(tasks, runner.Options{Parallelism: opts.Parallelism})
	for oi, i := range indices {
		if runs[oi].Err != nil {
			out[oi] = CellRun{Err: runs[oi].Err}
			continue
		}
		out[oi] = CellRun{Frame: resultcache.EncodeFile(p.cells[i].key, runs[oi].Value)}
	}
	return out
}
