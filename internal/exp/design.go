package exp

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mech"
	"repro/internal/report"
)

// Fig6Epochs and Fig6Counters define the §6.3.1 design-space sweep.
var (
	Fig6Epochs   = []clock.Duration{25 * clock.Microsecond, 50 * clock.Microsecond, 100 * clock.Microsecond, 250 * clock.Microsecond, 500 * clock.Microsecond}
	Fig6Counters = []int{16, 32, 64, 128, 256, 512}
)

// designPoint aggregates one MemPod configuration over the config's
// workloads: average AMMAT (ns) and average migrations per pod per
// interval.
type designPoint struct {
	ammat float64
	migs  float64
}

// memPodGridBuilders names one builder per MemPod configuration of a
// design-space sweep. Grid points are labeled by index but cache-keyed by
// configuration, so the same design point appearing in two sweeps (Fig6's
// 50µs/64ctr/16bit is also Fig7's) simulates once per shared cache.
// experiment tags spec-resolution errors with the calling figure's name.
func (c Config) memPodGridBuilders(experiment string, cfgs []core.Config) ([]builder, error) {
	fast, slow, err := c.specPair(experiment)
	if err != nil {
		return nil, err
	}
	builders := make([]builder, len(cfgs))
	for i, mpCfg := range cfgs {
		mpCfg := mpCfg
		builders[i] = builder{
			name:   fmt.Sprintf("MemPod#%d", i),
			ckey:   mechKey("mempod", mpCfg),
			layout: stdLayout(), fast: fast, slow: slow,
			make: func(bk *mech.Backend) mech.Mechanism { return core.MustNew(mpCfg, bk) },
		}
	}
	return builders, nil
}

// runMemPodGrid evaluates several MemPod configurations as one flat
// (configuration × workload) matrix — so a whole design-space sweep fans
// out to c.Parallelism workers at once — and returns one aggregated point
// per configuration, in input order.
func (c Config) runMemPodGrid(experiment string, cfgs []core.Config) ([]designPoint, error) {
	builders, err := c.memPodGridBuilders(experiment, cfgs)
	if err != nil {
		return nil, err
	}
	res, err := c.matrix(builders)
	if err != nil {
		return nil, err
	}
	pts := make([]designPoint, len(cfgs))
	for i, b := range builders {
		var p designPoint
		for _, w := range c.Workloads {
			r := res[b.name][w.Name]
			p.ammat += r.AMMAT()
			if r.Mig.Intervals > 0 {
				p.migs += float64(r.Mig.PageMigrations) /
					float64(r.Mig.Intervals) / float64(stdLayout().NumPods)
			}
		}
		n := float64(len(c.Workloads))
		p.ammat /= n
		p.migs /= n
		pts[i] = p
	}
	return pts, nil
}

// runMemPod runs the config's workloads under one MemPod configuration
// and returns the average AMMAT (ns) and average migrations per pod per
// interval.
func (c Config) runMemPod(mpCfg core.Config) (ammat, migsPerPodInterval float64, err error) {
	pts, err := c.runMemPodGrid("mempod-run", []core.Config{mpCfg})
	if err != nil {
		return 0, 0, err
	}
	return pts[0].ammat, pts[0].migs, nil
}

// fig6Configs enumerates the Figure 6 design space (16-bit counters,
// caches disabled, as §6.3.1 specifies) in row-major epoch × counter
// order. BestConfigCheck and the distributed-sweep plan share it.
func fig6Configs() []core.Config {
	var cfgs []core.Config
	for _, epoch := range Fig6Epochs {
		for _, k := range Fig6Counters {
			cfgs = append(cfgs, core.Config{Interval: epoch, Counters: k, CounterBits: 16})
		}
	}
	return cfgs
}

// Fig6 regenerates Figure 6: average AMMAT over the epoch-length ×
// counter-count design space (16-bit counters, caches disabled, as §6.3.1
// specifies). Rows are epochs, columns are MEA counter counts.
func (c Config) Fig6() (*report.Table, error) {
	cols := []string{"epoch"}
	for _, k := range Fig6Counters {
		cols = append(cols, fmt.Sprintf("%d ctrs", k))
	}
	t := report.New("fig6", "Average AMMAT (ns) vs epoch length and MEA counters", cols...)
	pts, err := c.runMemPodGrid("fig6", fig6Configs())
	if err != nil {
		return nil, err
	}
	i := 0
	for _, epoch := range Fig6Epochs {
		row := []string{epoch.String()}
		for range Fig6Counters {
			row = append(row, fmt.Sprintf("%.2f", pts[i].ammat))
			i++
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig7Widths are the counter widths swept in Figure 7.
var Fig7Widths = []int{1, 2, 4, 8, 16}

// fig7Variants are the two design points of Figure 7's width sweep.
var fig7Variants = []struct {
	label    string
	interval clock.Duration
	counters int
}{
	{"7a: 50us/64", 50 * clock.Microsecond, 64},
	{"7b: 100us/128", 100 * clock.Microsecond, 128},
}

// fig7Configs enumerates the Figure 7 width sweep, variant-major.
func fig7Configs() []core.Config {
	var cfgs []core.Config
	for _, v := range fig7Variants {
		for _, bits := range Fig7Widths {
			cfgs = append(cfgs, core.Config{Interval: v.interval, Counters: v.counters, CounterBits: bits})
		}
	}
	return cfgs
}

// Fig7 regenerates Figure 7: AMMAT (normalized to the 2-bit configuration)
// and migrations per pod per interval versus counter width, for both the
// 50 µs/64-counter (7a) and 100 µs/128-counter (7b) design points.
func (c Config) Fig7() (*report.Table, error) {
	t := report.New("fig7", "Counter width vs normalized AMMAT and migrations/pod/interval",
		"config", "bits", "AMMAT (ns)", "normalized to 2-bit", "migs/pod/interval")
	variants := fig7Variants
	all, err := c.runMemPodGrid("fig7", fig7Configs())
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		pts := make(map[int]designPoint, len(Fig7Widths))
		for wi, bits := range Fig7Widths {
			pts[bits] = all[vi*len(Fig7Widths)+wi]
		}
		base := pts[2].ammat
		for _, bits := range Fig7Widths {
			p := pts[bits]
			norm := 0.0
			if base > 0 {
				norm = p.ammat / base
			}
			t.Addf(v.label, bits, p.ammat, norm, p.migs)
		}
	}
	return t, nil
}

// BestConfigCheck runs a reduced assertion of the §6.3.1 conclusion: the
// paper's chosen design point (50 µs, 64 counters) must be at or near the
// bottom of the sweep. It returns the chosen point's AMMAT and the sweep
// minimum, for tests.
func (c Config) BestConfigCheck() (chosen, best float64, err error) {
	cfgs := fig6Configs()
	pts, err := c.runMemPodGrid("best-config-check", cfgs)
	if err != nil {
		return 0, 0, err
	}
	best = -1
	for i, cfg := range cfgs {
		ammat := pts[i].ammat
		if best < 0 || ammat < best {
			best = ammat
		}
		if cfg.Interval == 50*clock.Microsecond && cfg.Counters == 64 {
			chosen = ammat
		}
	}
	return chosen, best, nil
}
