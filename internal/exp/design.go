package exp

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/report"
)

// Fig6Epochs and Fig6Counters define the §6.3.1 design-space sweep.
var (
	Fig6Epochs   = []clock.Duration{25 * clock.Microsecond, 50 * clock.Microsecond, 100 * clock.Microsecond, 250 * clock.Microsecond, 500 * clock.Microsecond}
	Fig6Counters = []int{16, 32, 64, 128, 256, 512}
)

// runMemPod runs the config's workloads under one MemPod configuration
// and returns the average AMMAT (ns) and average migrations per pod per
// interval.
func (c Config) runMemPod(mpCfg core.Config) (ammat, migsPerPodInterval float64, err error) {
	b := builder{
		name: "MemPod", layout: stdLayout(), fast: dram.HBM(), slow: dram.DDR4_1600(),
		make: func(bk *mech.Backend) mech.Mechanism { return core.MustNew(mpCfg, bk) },
	}
	var ammatSum, migSum float64
	for _, w := range c.Workloads {
		res, err := c.run(w, b)
		if err != nil {
			return 0, 0, err
		}
		ammatSum += res.AMMAT()
		if res.Mig.Intervals > 0 {
			migSum += float64(res.Mig.PageMigrations) /
				float64(res.Mig.Intervals) / float64(stdLayout().NumPods)
		}
	}
	n := float64(len(c.Workloads))
	return ammatSum / n, migSum / n, nil
}

// Fig6 regenerates Figure 6: average AMMAT over the epoch-length ×
// counter-count design space (16-bit counters, caches disabled, as §6.3.1
// specifies). Rows are epochs, columns are MEA counter counts.
func (c Config) Fig6() (*report.Table, error) {
	cols := []string{"epoch"}
	for _, k := range Fig6Counters {
		cols = append(cols, fmt.Sprintf("%d ctrs", k))
	}
	t := report.New("fig6", "Average AMMAT (ns) vs epoch length and MEA counters", cols...)
	for _, epoch := range Fig6Epochs {
		row := []string{epoch.String()}
		for _, k := range Fig6Counters {
			mpCfg := core.Config{Interval: epoch, Counters: k, CounterBits: 16}
			ammat, _, err := c.runMemPod(mpCfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", ammat))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig7Widths are the counter widths swept in Figure 7.
var Fig7Widths = []int{1, 2, 4, 8, 16}

// Fig7 regenerates Figure 7: AMMAT (normalized to the 2-bit configuration)
// and migrations per pod per interval versus counter width, for both the
// 50 µs/64-counter (7a) and 100 µs/128-counter (7b) design points.
func (c Config) Fig7() (*report.Table, error) {
	t := report.New("fig7", "Counter width vs normalized AMMAT and migrations/pod/interval",
		"config", "bits", "AMMAT (ns)", "normalized to 2-bit", "migs/pod/interval")
	variants := []struct {
		label    string
		interval clock.Duration
		counters int
	}{
		{"7a: 50us/64", 50 * clock.Microsecond, 64},
		{"7b: 100us/128", 100 * clock.Microsecond, 128},
	}
	for _, v := range variants {
		type point struct {
			ammat, migs float64
		}
		pts := make(map[int]point, len(Fig7Widths))
		for _, bits := range Fig7Widths {
			mpCfg := core.Config{Interval: v.interval, Counters: v.counters, CounterBits: bits}
			ammat, migs, err := c.runMemPod(mpCfg)
			if err != nil {
				return nil, err
			}
			pts[bits] = point{ammat, migs}
		}
		base := pts[2].ammat
		for _, bits := range Fig7Widths {
			p := pts[bits]
			norm := 0.0
			if base > 0 {
				norm = p.ammat / base
			}
			t.Addf(v.label, bits, p.ammat, norm, p.migs)
		}
	}
	return t, nil
}

// BestConfigCheck runs a reduced assertion of the §6.3.1 conclusion: the
// paper's chosen design point (50 µs, 64 counters) must be at or near the
// bottom of the sweep. It returns the chosen point's AMMAT and the sweep
// minimum, for tests.
func (c Config) BestConfigCheck() (chosen, best float64, err error) {
	best = -1
	for _, epoch := range Fig6Epochs {
		for _, k := range Fig6Counters {
			ammat, _, err := c.runMemPod(core.Config{Interval: epoch, Counters: k, CounterBits: 16})
			if err != nil {
				return 0, 0, err
			}
			if best < 0 || ammat < best {
				best = ammat
			}
			if epoch == 50*clock.Microsecond && k == 64 {
				chosen = ammat
			}
		}
	}
	return chosen, best, nil
}
