package exp

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/tracecache"
)

// TestMatrixSnapshotResidencyBounded runs the full 27-workload × 6-builder
// matrix and asserts the trace cache's two scaling contracts at once:
// every workload's trace is generated exactly once (single-flight,
// generate-once), and peak snapshot residency is bounded by the worker
// count, not the workload count — the point of workload-major task
// ordering. Without that ordering (or with lifetime bugs), 27 snapshots
// would sit resident at once; the bound here is Parallelism+1 (the
// workloads in flight, plus at most one straddling the dispatch frontier).
func TestMatrixSnapshotResidencyBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	c := QuickConfig()
	c.Workloads = DefaultConfig().Workloads // all 27
	c.Requests = 2_000
	c.Parallelism = 3
	c.Traces = tracecache.New()

	builders := c.baselineBuilders(dram.HBM(), dram.DDR4_1600())
	if _, err := c.matrix(builders); err != nil {
		t.Fatal(err)
	}

	st := c.Traces.Stats()
	if want := len(c.Workloads); st.Generated != want {
		t.Errorf("generated %d traces, want exactly %d (one per workload)", st.Generated, want)
	}
	if want := len(c.Workloads) * (len(builders) - 1); st.Hits != want {
		t.Errorf("cache hits %d, want %d", st.Hits, want)
	}
	if bound := c.Parallelism + 1; st.Peak > bound {
		t.Errorf("peak residency %d snapshots, want <= Parallelism+1 = %d", st.Peak, bound)
	}
	if st.Live != 0 {
		t.Errorf("%d snapshots still resident after the matrix completed", st.Live)
	}
}

// TestOracleStudyResidencyBounded extends the residency bound to the §3
// study, whose per-workload tasks each use their trace exactly once.
func TestOracleStudyResidencyBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle study")
	}
	c := QuickConfig()
	c.Requests = OracleIntervalReqs * 3
	c.Parallelism = 2
	c.Traces = tracecache.New()
	if _, err := c.OracleStudy(); err != nil {
		t.Fatal(err)
	}
	st := c.Traces.Stats()
	if st.Generated != len(c.Workloads) || st.Hits != 0 {
		t.Errorf("stats %+v, want %d generated / 0 hits", st, len(c.Workloads))
	}
	if bound := c.Parallelism + 1; st.Peak > bound {
		t.Errorf("peak residency %d, want <= %d", st.Peak, bound)
	}
	if st.Live != 0 {
		t.Errorf("%d snapshots leaked", st.Live)
	}
}
