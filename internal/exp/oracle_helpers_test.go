package exp

import (
	"testing"

	"repro/internal/mea"
)

func TestTierSlice(t *testing.T) {
	var ranked []mea.Entry
	for i := 0; i < 25; i++ {
		ranked = append(ranked, mea.Entry{Page: uint64(i), Count: uint64(100 - i)})
	}
	if got := tierSlice(ranked, 0); len(got) != 10 || got[0].Page != 0 || got[9].Page != 9 {
		t.Errorf("tier 0 wrong: %+v", got)
	}
	if got := tierSlice(ranked, 1); len(got) != 10 || got[0].Page != 10 {
		t.Errorf("tier 1 wrong")
	}
	if got := tierSlice(ranked, 2); len(got) != 5 {
		t.Errorf("partial tier 2 length %d, want 5", len(got))
	}
	if got := tierSlice(ranked, 3); got != nil {
		t.Errorf("tier beyond data should be nil")
	}
}

func TestTierSet(t *testing.T) {
	ranked := []mea.Entry{{Page: 3}, {Page: 7}, {Page: 9}}
	set := tierSet(ranked, 0)
	if len(set) != 3 || !set[3] || !set[7] || !set[9] {
		t.Errorf("tierSet wrong: %v", set)
	}
	if len(tierSet(ranked, 1)) != 0 {
		t.Error("empty tier should give empty set")
	}
}
