//go:build (linux || darwin) && !nomap

package trace

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/clock"
)

// planeWant computes the reference plane for a request slice.
func planeWant(reqs []Request, g *addr.Geom) []Decoded {
	want := make([]Decoded, len(reqs))
	for i, r := range reqs {
		want[i] = decodePlaneEntry(r.Addr, g)
	}
	return want
}

func timesWant(reqs []Request) []clock.Time {
	want := make([]clock.Time, len(reqs))
	for i, r := range reqs {
		want[i] = r.Time
	}
	return want
}

// TestSidecarRoundTrip pins the store-backed derived-column lifecycle: the
// first mapped open computes the plane and time column and persists them
// as sidecars next to the snapshot file; the second open serves both from
// mapped sidecar memory, bit-identical to the computed versions.
func TestSidecarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	l := addr.DefaultLayout()
	g := l.Geom()
	reqs := boundedReqs(rng, 500, l)
	path := writeSnapFile(t, t.TempDir(), "wl", reqs)

	s1, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	wantPlane := planeWant(reqs, &g)
	gotPlane := s1.Plane(&g)
	for i := range wantPlane {
		if gotPlane[i] != wantPlane[i] {
			t.Fatalf("first open: plane[%d] = %+v, want %+v", i, gotPlane[i], wantPlane[i])
		}
	}
	wantTimes := timesWant(reqs)
	gotTimes := s1.TimeColumn()
	for i := range wantTimes {
		if gotTimes[i] != wantTimes[i] {
			t.Fatalf("first open: times[%d] = %v, want %v", i, gotTimes[i], wantTimes[i])
		}
	}
	s1.Release()

	for _, p := range []string{planeSidecarPath(path, &g), timesSidecarPath(path)} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sidecar %s not persisted: %v", p, err)
		}
	}

	s2, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()
	// The open itself adopts the times sidecar (it attests the varint
	// column, replacing the O(n) validation).
	if !s2.timeValid || s2.timeMapped == nil {
		t.Error("second open did not adopt the times sidecar")
	}
	gotPlane = s2.Plane(&g)
	if s2.planes[0].mapped == nil {
		t.Error("second open did not serve the plane from its sidecar")
	}
	for i := range wantPlane {
		if gotPlane[i] != wantPlane[i] {
			t.Fatalf("sidecar plane[%d] = %+v, want %+v", i, gotPlane[i], wantPlane[i])
		}
	}
	gotTimes = s2.TimeColumn()
	for i := range wantTimes {
		if gotTimes[i] != wantTimes[i] {
			t.Fatalf("sidecar times[%d] = %v, want %v", i, gotTimes[i], wantTimes[i])
		}
	}
}

// TestSidecarStaleParentRejected regenerates the snapshot file under a
// sidecar written for its previous content: the sidecar header's parent
// size/mtime stamp must fail closed, and the derived columns must reflect
// the new content.
func TestSidecarStaleParentRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	l := addr.DefaultLayout()
	g := l.Geom()
	dir := t.TempDir()
	oldReqs := boundedReqs(rng, 300, l)
	path := writeSnapFile(t, dir, "wl", oldReqs)

	s1, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.Plane(&g)
	s1.TimeColumn()
	s1.Release()

	// Regenerate the parent with different requests (same count, so a
	// naive element-count check would still match) and force a distinct
	// mtime even on coarse-granularity filesystems.
	newReqs := boundedReqs(rng, 300, l)
	tmp := writeSnapFile(t, dir, "wl2", newReqs)
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(3*time.Second)); err != nil {
		t.Fatal(err)
	}

	s2, name, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()
	if name != "wl2" {
		t.Fatalf("reopened name %q", name)
	}
	wantPlane := planeWant(newReqs, &g)
	gotPlane := s2.Plane(&g)
	for i := range wantPlane {
		if gotPlane[i] != wantPlane[i] {
			t.Fatalf("stale sidecar served: plane[%d] = %+v, want %+v", i, gotPlane[i], wantPlane[i])
		}
	}
	wantTimes := timesWant(newReqs)
	gotTimes := s2.TimeColumn()
	for i := range wantTimes {
		if gotTimes[i] != wantTimes[i] {
			t.Fatalf("stale sidecar served: times[%d] = %v, want %v", i, gotTimes[i], wantTimes[i])
		}
	}
}

// TestSidecarCorruptionRejected corrupts sidecar files in ways the header
// alone would survive; the open-time checks (header fields, sample
// re-decode) must reject each and recompute correct columns.
func TestSidecarCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	l := addr.DefaultLayout()
	g := l.Geom()

	corruptions := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"element count", func(b []byte) []byte { b[24] ^= 0x01; return b }},
		{"parent stamp", func(b []byte) []byte { b[40] ^= 0x01; return b }},
		{"sampled body entry", func(b []byte) []byte { b[sidecarHdrSize] ^= 0xff; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-8] }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			reqs := boundedReqs(rng, 200, l)
			path := writeSnapFile(t, t.TempDir(), "wl", reqs)
			s1, _, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			s1.Plane(&g)
			s1.TimeColumn()
			s1.Release()

			for _, sc := range []string{planeSidecarPath(path, &g), timesSidecarPath(path)} {
				b, err := os.ReadFile(sc)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(sc, tc.mutate(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Mutating the sidecars must not disturb the parent stamp the
			// rewritten sidecars will be validated against.
			s2, _, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Release()
			wantPlane := planeWant(reqs, &g)
			gotPlane := s2.Plane(&g)
			for i := range wantPlane {
				if gotPlane[i] != wantPlane[i] {
					t.Fatalf("plane[%d] = %+v, want %+v", i, gotPlane[i], wantPlane[i])
				}
			}
			wantTimes := timesWant(reqs)
			gotTimes := s2.TimeColumn()
			for i := range wantTimes {
				if gotTimes[i] != wantTimes[i] {
					t.Fatalf("times[%d] = %v, want %v", i, gotTimes[i], wantTimes[i])
				}
			}
		})
	}
}

// TestSidecarNotSharedAcrossSpecGeometry writes a plane sidecar under the
// default layout, then opens the same snapshot under a layout whose slow
// row size differs (what memsys.LayoutFor produces for the NVM preset's
// 4 KB rows). The second geometry must get its own sidecar with its own
// decode — never the first geometry's bytes — and both must stay
// bit-correct for their layout.
func TestSidecarNotSharedAcrossSpecGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	lDefault := addr.DefaultLayout()
	lNVM := lDefault
	lNVM.SlowRowBytes = 4096
	gDefault, gNVM := lDefault.Geom(), lNVM.Geom()
	// The requests must be valid under both layouts (same capacities).
	reqs := boundedReqs(rng, 400, lDefault)
	path := writeSnapFile(t, t.TempDir(), "wl", reqs)

	pDefault, pNVM := planeSidecarPath(path, &gDefault), planeSidecarPath(path, &gNVM)
	if pDefault == pNVM {
		t.Fatalf("spec geometries share sidecar path %s", pDefault)
	}

	s1, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.Plane(&gDefault)
	s1.Release()
	if _, err := os.Stat(pDefault); err != nil {
		t.Fatalf("default-geometry sidecar not persisted: %v", err)
	}

	s2, _, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()
	got := s2.Plane(&gNVM)
	want := planeWant(reqs, &gNVM)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NVM-geometry plane[%d] = %+v, want %+v (default-geometry sidecar reused?)",
				i, got[i], want[i])
		}
	}
	if _, err := os.Stat(pNVM); err != nil {
		t.Fatalf("NVM-geometry sidecar not persisted: %v", err)
	}
}

// TestGeomFingerprintDistinguishesLayouts guards the plane sidecar's
// content key: distinct layouts must not share a fingerprint, or a plane
// decoded under one geometry could serve another.
func TestGeomFingerprintDistinguishesLayouts(t *testing.T) {
	layouts := []addr.Layout{
		addr.DefaultLayout(),
		{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},
		{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4},
		func() addr.Layout {
			l := addr.DefaultLayout()
			l.SlowRowBytes = 4096
			return l
		}(),
		func() addr.Layout {
			l := addr.DefaultLayout()
			l.FastRowBytes = 2048
			return l
		}(),
	}
	seen := map[uint64]int{}
	for i, l := range layouts {
		g := l.Geom()
		fp := geomFingerprint(&g)
		if j, dup := seen[fp]; dup {
			t.Fatalf("layouts %d and %d share fingerprint %#x", j, i, fp)
		}
		seen[fp] = i
	}
}
