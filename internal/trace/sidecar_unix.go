//go:build (linux || darwin) && !nomap

package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/addr"
	"repro/internal/clock"
)

// Decode sidecars extend zero-copy replay to the derived columns a
// store-backed snapshot would otherwise recompute on every open: the
// predecode plane ([]Decoded, per address layout) and the absolute time
// column ([]clock.Time) persist next to the MPS1 file and map straight
// back in, so a steady-state matrix run decodes each column exactly once
// per store lifetime instead of once per batch.
//
// The format is a raw memory image, which is what makes the open free —
// and what the header guards against. A sidecar is only served when its
// header's architecture marker (endianness via a native-order stamp),
// element size, count, content key, and the parent snapshot file's exact
// size and mtime all match; anything else — a different architecture, a
// regenerated parent, a different geometry — fails closed and the column
// is recomputed (and the sidecar rewritten). Beyond the header, each open
// cross-checks a sample of entries against fresh decodes of the mapped
// snapshot, so drift that happens to preserve the header regenerates
// instead of silently replaying wrong data.
//
//	header (56 bytes): magic (8), arch marker (native-order uint64
//	                   0x0102030405060708), element size, element count,
//	                   content key (geometry fingerprint; 0 for times),
//	                   parent file size, parent mtime (ns)
//	body:              count * element-size bytes, the raw column
const (
	planeMagic      = "MPDP1\x00\x00\x00"
	timesMagic      = "MPTM1\x00\x00\x00"
	sidecarHdrSize  = 56
	sidecarArchMark = uint64(0x0102030405060708)
)

// parentStamp identifies the exact on-disk parent snapshot a sidecar was
// derived from: its byte size and modification time. tracecache persists
// snapshots by rename, so a regenerated parent always changes the stamp
// and orphans the old sidecars.
type parentStamp struct {
	size  int64
	mtime int64
}

func stampOf(path string) (parentStamp, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return parentStamp{}, false
	}
	return parentStamp{size: fi.Size(), mtime: fi.ModTime().UnixNano()}, true
}

// geomFingerprint condenses the layout that defines a plane's decode into
// a comparable token. Layout is a plain value struct, so its printed form
// pins every field; FNV-1a keeps the token stable across runs.
func geomFingerprint(g *addr.Geom) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", g.Layout)
	return h.Sum64()
}

// openSidecar maps the sidecar at path and validates its header against
// the expected identity, returning the whole mapping and the body bytes.
func openSidecar(path, magic string, elem, n int, key uint64, parent parentStamp) (mapping, body []byte, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, false
	}
	want := int64(sidecarHdrSize) + int64(elem)*int64(n)
	if fi.Size() != want {
		return nil, nil, false
	}
	m, err := mmapFile(f, int(want))
	if err != nil {
		return nil, nil, false
	}
	hdr := m[:sidecarHdrSize]
	valid := string(hdr[:8]) == magic &&
		*(*uint64)(unsafe.Pointer(&hdr[8])) == sidecarArchMark &&
		binary.LittleEndian.Uint64(hdr[16:]) == uint64(elem) &&
		binary.LittleEndian.Uint64(hdr[24:]) == uint64(n) &&
		binary.LittleEndian.Uint64(hdr[32:]) == key &&
		binary.LittleEndian.Uint64(hdr[40:]) == uint64(parent.size) &&
		binary.LittleEndian.Uint64(hdr[48:]) == uint64(parent.mtime)
	if !valid {
		munmapBytes(m)
		return nil, nil, false
	}
	return m, m[sidecarHdrSize:], true
}

// writeSidecar persists a derived column next to its snapshot file,
// atomically (temp + rename) so concurrent opens see a complete file or
// none. Best-effort: failures leave no sidecar and no error — sidecars
// are caches, and the computed column in hand is always correct.
func writeSidecar(path, magic string, elem, n int, key uint64, parent parentStamp, body []byte) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sidecar-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	var hdr [sidecarHdrSize]byte
	copy(hdr[:8], magic)
	*(*uint64)(unsafe.Pointer(&hdr[8])) = sidecarArchMark
	binary.LittleEndian.PutUint64(hdr[16:], uint64(elem))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[32:], key)
	binary.LittleEndian.PutUint64(hdr[40:], uint64(parent.size))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(parent.mtime))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return
	}
	if tmp.Close() != nil {
		return
	}
	os.Rename(tmp.Name(), path)
}

// planeSidecarPath names the plane sidecar for a snapshot file and
// geometry; timesSidecarPath the (layout-independent) time column's.
func planeSidecarPath(base string, g *addr.Geom) string {
	return fmt.Sprintf("%s.g%016x.plane", base, geomFingerprint(g))
}

func timesSidecarPath(base string) string { return base + ".times" }

// openPlaneSidecar maps the plane sidecar for (base, g) if a valid one
// exists, returning the plane, its backing mapping (for Release to unmap)
// and whether it was usable. addrs is the snapshot's address column, used
// to cross-check a sample of entries against fresh decodes.
func openPlaneSidecar(base string, g *addr.Geom, addrs []byte, n int) ([]Decoded, []byte, bool) {
	if n == 0 {
		return nil, nil, false
	}
	parent, ok := stampOf(base)
	if !ok {
		return nil, nil, false
	}
	elem := int(unsafe.Sizeof(Decoded{}))
	m, body, ok := openSidecar(planeSidecarPath(base, g), planeMagic, elem, n, geomFingerprint(g), parent)
	if !ok {
		return nil, nil, false
	}
	dec := unsafe.Slice((*Decoded)(unsafe.Pointer(&body[0])), n)
	check := func(i int) bool {
		a := binary.LittleEndian.Uint64(addrs[8*i:])
		return dec[i] == decodePlaneEntry(a, g)
	}
	lo := 32
	if lo > n {
		lo = n
	}
	for i := 0; i < lo; i++ {
		if !check(i) {
			munmapBytes(m)
			return nil, nil, false
		}
	}
	for i := n - 32; i < n; i++ {
		if i < lo {
			continue
		}
		if !check(i) {
			munmapBytes(m)
			return nil, nil, false
		}
	}
	return dec, m, true
}

// writePlaneSidecar persists a computed plane for the snapshot at base.
func writePlaneSidecar(base string, g *addr.Geom, dec []Decoded) {
	if len(dec) == 0 {
		return
	}
	parent, ok := stampOf(base)
	if !ok {
		return
	}
	elem := int(unsafe.Sizeof(Decoded{}))
	body := unsafe.Slice((*byte)(unsafe.Pointer(&dec[0])), len(dec)*elem)
	writeSidecar(planeSidecarPath(base, g), planeMagic, elem, len(dec), geomFingerprint(g), parent, body)
}

// openTimesSidecar maps the decoded time column sidecar for base if a
// valid one exists. times is the snapshot's packed varint column; the
// sample check re-decodes the first entries from it.
func openTimesSidecar(base string, times []byte, n int) ([]clock.Time, []byte, bool) {
	if n == 0 {
		return nil, nil, false
	}
	parent, ok := stampOf(base)
	if !ok {
		return nil, nil, false
	}
	m, body, ok := openSidecar(timesSidecarPath(base), timesMagic, 8, n, 0, parent)
	if !ok {
		return nil, nil, false
	}
	col := unsafe.Slice((*clock.Time)(unsafe.Pointer(&body[0])), n)
	sample := 32
	if sample > n {
		sample = n
	}
	off := 0
	var now clock.Time
	for i := 0; i < sample; i++ {
		delta, vn := binary.Uvarint(times[off:])
		if vn <= 0 {
			munmapBytes(m)
			return nil, nil, false
		}
		off += vn
		now += clock.Time(delta)
		if col[i] != now {
			munmapBytes(m)
			return nil, nil, false
		}
	}
	return col, m, true
}

// writeTimesSidecar persists a decoded time column for the snapshot at
// base.
func writeTimesSidecar(base string, col []clock.Time) {
	if len(col) == 0 {
		return
	}
	parent, ok := stampOf(base)
	if !ok {
		return
	}
	body := unsafe.Slice((*byte)(unsafe.Pointer(&col[0])), len(col)*8)
	writeSidecar(timesSidecarPath(base), timesMagic, 8, len(col), 0, parent, body)
}
