package trace

import (
	"encoding/binary"
	"fmt"
	"os"
)

// MapSupported reports whether OpenMapped can memory-map snapshot files
// on this platform/build. When false (unsupported OS, or the `nomap`
// build tag), OpenMapped still works but falls back to the copying
// ReadSnapshot path.
func MapSupported() bool { return mapSupported }

// OpenMapped opens an MPS1 snapshot file with its columns aliasing a
// read-only memory mapping of the file: replay touches the address,
// timestamp, write and core columns without ever copying them onto the
// heap. The returned snapshot owns the mapping — Release unmaps it — and
// must not be used after Release. Predecode planes for a mapped snapshot
// are store-backed too: Plane serves them from (and persists them as)
// sidecar files next to the snapshot; decoded time columns still live on
// the heap as usual.
//
// On platforms or builds without mmap (see MapSupported) the file is
// read through ReadSnapshot instead, yielding an identical heap-backed
// snapshot.
func OpenMapped(path string) (*Snapshot, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	if !mapSupported {
		return ReadSnapshot(f)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, "", err
	}
	size := fi.Size()
	if size == 0 {
		return nil, "", fmt.Errorf("%w: empty snapshot file %s", ErrBadTrace, path)
	}
	if size != int64(int(size)) {
		return nil, "", fmt.Errorf("%w: snapshot file %s too large to map", ErrBadTrace, path)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		// Mapping can fail on exotic filesystems; the copying reader is
		// always available.
		return ReadSnapshot(f)
	}
	s, name, err := parseSnapshotBytes(data)
	if err != nil {
		munmapBytes(data)
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	// A valid times sidecar attests a prior complete decode of this exact
	// file's varint column (its header pins the parent's size and mtime),
	// so adopt it as the decoded time column and skip the O(n) varint
	// re-validation this open would otherwise pay. Without one, validate
	// up front exactly as the copying reader does.
	if col, m, ok := openTimesSidecar(path, s.times, s.n); ok {
		s.timeCol, s.timeValid, s.timeMapped = col, true, m
	} else if err := validateTimes(s.times, uint64(s.n)); err != nil {
		munmapBytes(data)
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	s.mapped = data
	s.path = path
	return s, name, nil
}

// parseSnapshotBytes decodes the MPS1 layout in place: the returned
// snapshot's columns are subslices of data, no copies. Errors name the
// byte offset where decoding failed so a truncated or corrupt file is
// diagnosable without a hex dump. Structural only — the caller decides
// how to establish the times column's varint integrity (validateTimes,
// or a sidecar attesting a prior full decode).
func parseSnapshotBytes(data []byte) (*Snapshot, string, error) {
	off := 0
	take := func(n int, what string) ([]byte, error) {
		if len(data)-off < n {
			return nil, fmt.Errorf("%w: truncated %s at offset %d (need %d bytes, have %d)",
				ErrBadTrace, what, off, n, len(data)-off)
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	magic, err := take(4, "snapshot magic")
	if err != nil {
		return nil, "", err
	}
	if string(magic) != snapMagic {
		return nil, "", fmt.Errorf("%w: bad snapshot magic %q", ErrBadTrace, magic)
	}
	nl, err := take(2, "name length")
	if err != nil {
		return nil, "", err
	}
	name, err := take(int(binary.LittleEndian.Uint16(nl)), "snapshot name")
	if err != nil {
		return nil, "", err
	}
	counts, err := take(16, "snapshot counts")
	if err != nil {
		return nil, "", err
	}
	n := binary.LittleEndian.Uint64(counts[:8])
	timesLen := binary.LittleEndian.Uint64(counts[8:])
	const maxReasonable = 1 << 32
	if n > maxReasonable || timesLen > 10*n+16 {
		return nil, "", fmt.Errorf("%w: implausible snapshot sizes (n=%d, times=%d)", ErrBadTrace, n, timesLen)
	}
	if timesLen < n {
		// Every request costs at least one varint byte.
		return nil, "", fmt.Errorf("%w: times column shorter than request count", ErrBadTrace)
	}
	s := &Snapshot{n: int(n), shared: true}
	words := int(n+63) / 64
	if s.times, err = take(int(timesLen), "times column"); err != nil {
		return nil, "", err
	}
	if s.addrs, err = take(8*int(n), "address column"); err != nil {
		return nil, "", err
	}
	if s.writes, err = take(8*words, "writes column"); err != nil {
		return nil, "", err
	}
	if s.cores, err = take(int(n), "cores column"); err != nil {
		return nil, "", err
	}
	if off != len(data) {
		return nil, "", fmt.Errorf("%w: %d trailing bytes at offset %d", ErrBadTrace, len(data)-off, off)
	}
	return s, string(name), nil
}
