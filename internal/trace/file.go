package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/clock"
)

// Binary trace format:
//
//	header:  magic "MPT1" (4 bytes), request count (uint64 LE)
//	records: addr (uint64 LE), time fs (int64 LE), flags (uint8: bit0 =
//	         write), core (uint8)
//
// The format is deliberately trivial: fixed 18-byte records, no
// compression, so traces can be generated once with cmd/tracegen and
// replayed byte-identically by every experiment.

const magic = "MPT1"

const recordBytes = 8 + 8 + 1 + 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Write persists all requests from s to w in the binary trace format and
// returns the number written.
func Write(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	reqs := Collect(s)
	if _, err := bw.WriteString(magic); err != nil {
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(reqs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	for i := range reqs {
		r := &reqs[i]
		binary.LittleEndian.PutUint64(rec[0:], r.Addr)
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Time))
		var flags byte
		if r.Write {
			flags = 1
		}
		rec[16] = flags
		rec[17] = r.Core
		if _, err := bw.Write(rec[:]); err != nil {
			return i, err
		}
	}
	return len(reqs), bw.Flush()
}

// Read loads a binary trace from r into memory and returns it as a
// resettable stream.
func Read(r io.Reader) (*SliceStream, error) {
	br := bufio.NewReader(r)
	var hdr [4 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxReasonable = 1 << 32
	if n > maxReasonable {
		return nil, fmt.Errorf("%w: request count %d too large", ErrBadTrace, n)
	}
	// Allocate incrementally: a corrupt header must not be able to demand
	// an enormous up-front allocation — capacity grows only as record
	// bytes actually arrive.
	const initialCap = 1 << 16
	capHint := int(n)
	if capHint > initialCap {
		capHint = initialCap
	}
	reqs := make([]Request, 0, capHint)
	var rec [recordBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		reqs = append(reqs, Request{
			Addr:  binary.LittleEndian.Uint64(rec[0:]),
			Time:  clock.Time(binary.LittleEndian.Uint64(rec[8:])),
			Write: rec[16]&1 != 0,
			Core:  rec[17],
		})
	}
	return NewSliceStream(reqs), nil
}
