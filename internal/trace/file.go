package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/clock"
)

// Binary trace format:
//
//	header:  magic "MPT1" (4 bytes), request count (uint64 LE)
//	records: addr (uint64 LE), time fs (int64 LE), flags (uint8: bit0 =
//	         write), core (uint8)
//
// The format is deliberately trivial: fixed 18-byte records, no
// compression, so traces can be generated once with cmd/tracegen and
// replayed byte-identically by every experiment.

const magic = "MPT1"

const recordBytes = 8 + 8 + 1 + 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Write persists all requests from s to w in the binary trace format and
// returns the number written.
func Write(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	reqs := Collect(s)
	if _, err := bw.WriteString(magic); err != nil {
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(reqs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	for i := range reqs {
		r := &reqs[i]
		binary.LittleEndian.PutUint64(rec[0:], r.Addr)
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Time))
		var flags byte
		if r.Write {
			flags = 1
		}
		rec[16] = flags
		rec[17] = r.Core
		if _, err := bw.Write(rec[:]); err != nil {
			return i, err
		}
	}
	return len(reqs), bw.Flush()
}

// headerBytes is the fixed MPT1 header size: magic plus request count.
const headerBytes = 4 + 8

// Read loads a binary trace from r into memory and returns it as a
// resettable stream. Malformed input fails with an error wrapping
// ErrBadTrace that names the exact record index and byte offset where
// decoding stopped, so a truncated or corrupt file is diagnosable
// without a hex dump; underlying I/O errors stay inspectable through
// errors.Is/As.
func Read(r io.Reader) (*SliceStream, error) {
	br := bufio.NewReader(r)
	var hdr [headerBytes]byte
	if got, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header at byte offset %d (want %d header bytes, have %d): %w",
			ErrBadTrace, got, headerBytes, got, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q at byte offset 0 (want %q)", ErrBadTrace, hdr[:4], magic)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxReasonable = 1 << 32
	if n > maxReasonable {
		return nil, fmt.Errorf("%w: request count %d at byte offset 4 too large (max %d)", ErrBadTrace, n, uint64(maxReasonable))
	}
	// Allocate incrementally: a corrupt header must not be able to demand
	// an enormous up-front allocation — capacity grows only as record
	// bytes actually arrive.
	const initialCap = 1 << 16
	capHint := int(n)
	if capHint > initialCap {
		capHint = initialCap
	}
	reqs := make([]Request, 0, capHint)
	var rec [recordBytes]byte
	for i := uint64(0); i < n; i++ {
		off := headerBytes + i*recordBytes
		if got, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated record %d of %d at byte offset %d (want %d record bytes, have %d): %w",
				ErrBadTrace, i, n, off, recordBytes, got, err)
		}
		if flags := rec[16]; flags&^1 != 0 {
			return nil, fmt.Errorf("%w: record %d at byte offset %d: unknown flag bits %#02x (only bit0=write is defined)",
				ErrBadTrace, i, off+16, flags)
		}
		reqs = append(reqs, Request{
			Addr:  binary.LittleEndian.Uint64(rec[0:]),
			Time:  clock.Time(binary.LittleEndian.Uint64(rec[8:])),
			Write: rec[16]&1 != 0,
			Core:  rec[17],
		})
	}
	// The count header is authoritative: bytes past the last record mean
	// the file does not match its own header, so refuse it rather than
	// silently dropping data.
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: trailing data after record %d at byte offset %d", ErrBadTrace, n, headerBytes+n*recordBytes)
	} else if err != io.EOF {
		return nil, fmt.Errorf("trace: reading past last record: %w", err)
	}
	return NewSliceStream(reqs), nil
}
