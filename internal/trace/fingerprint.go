package trace

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns the FNV-1a hash of the snapshot's content: the
// request count and all four packed columns (times, addrs, writes,
// cores). Two snapshots fingerprint equally iff they replay the same
// request sequence, whatever their backing (recorded buffers, a read
// file, or a memory mapping) — the columns are defined to be in MPS1
// file layout in every case. Replay-result caches use this to identify
// a trace whose generating recipe is unknown.
func (s *Snapshot) Fingerprint() uint64 {
	h := fnv.New64a()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(s.n))
	h.Write(n[:])
	h.Write(s.times)
	h.Write(s.addrs)
	h.Write(s.writes)
	h.Write(s.cores)
	return h.Sum64()
}
