package trace

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// boundedReqs builds a time-ordered request slice whose addresses stay
// inside the layout's flat address space, so predecoded fields are
// meaningful.
func boundedReqs(rng *rand.Rand, n int, l addr.Layout) []Request {
	reqs := randomOrderedReqs(rng, n)
	total := l.TotalBytes()
	for i := range reqs {
		reqs[i].Addr %= total
	}
	return reqs
}

// TestPlaneMatchesGeom asserts every plane entry equals a fresh per-request
// decode through the same geometry.
func TestPlaneMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layouts := []addr.Layout{
		addr.DefaultLayout(),
		{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},
		{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4},
	}
	for _, l := range layouts {
		g := l.Geom()
		reqs := boundedReqs(rng, 1000, l)
		snap := Record(NewSliceStream(reqs), len(reqs))
		dec := snap.Plane(&g)
		if len(dec) != len(reqs) {
			t.Fatalf("plane length %d, want %d", len(dec), len(reqs))
		}
		for i, r := range reqs {
			p := addr.PageOf(addr.Addr(r.Addr))
			pod, f := g.HomeFrame(p)
			loc := g.FrameLocation(pod, f, 0)
			want := Decoded{
				Page:  uint64(p),
				Frame: uint32(f),
				Row:   uint32(loc.Row),
				Chan:  uint16(loc.Channel),
				Pod:   uint16(pod),
				Line:  uint8(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage),
			}
			if dec[i] != want {
				t.Fatalf("layout %+v request %d: plane %+v, want %+v", l, i, dec[i], want)
			}
		}
		snap.Release()
	}
}

// TestPlaneCachedPerLayout asserts one decode pass per layout: same layout
// returns the identical slice, a different layout gets its own plane, and
// Record invalidates cached planes on a pooled snapshot.
func TestPlaneCachedPerLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	std := addr.DefaultLayout().Geom()
	// Two pods decompose pages differently than four (the Fig10 pod
	// sweep's shape), so its plane cannot be shared with std's.
	twoPods := addr.Layout{
		FastBytes: 1 << 30, SlowBytes: 8 << 30,
		FastChannels: 8, SlowChannels: 4, NumPods: 2,
	}.Geom()

	reqs := boundedReqs(rng, 500, addr.DefaultLayout())
	snap := Record(NewSliceStream(reqs), len(reqs))
	a, b := snap.Plane(&std), snap.Plane(&std)
	if &a[0] != &b[0] {
		t.Error("same layout did not reuse the cached plane")
	}
	c := snap.Plane(&twoPods)
	if &a[0] == &c[0] {
		t.Error("different layout shared a plane")
	}
	differ := false
	for i := range a {
		if a[i] != c[i] {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("distinct layouts decoded every entry identically")
	}
	snap.Release()

	// A re-recorded (pooled) snapshot must not serve a stale plane.
	reqs2 := boundedReqs(rng, 500, addr.DefaultLayout())
	snap2 := Record(NewSliceStream(reqs2), len(reqs2))
	defer snap2.Release()
	d := snap2.Plane(&std)
	for i, r := range reqs2 {
		if want := uint64(addr.PageOf(addr.Addr(r.Addr))); d[i].Page != want {
			t.Fatalf("stale plane after pool reuse: entry %d page %d, want %d", i, d[i].Page, want)
		}
	}
}

// TestNextBatchMatchesNext asserts NextBatch yields exactly the Next
// sequence — including across batch boundaries that do not divide the
// snapshot length — and fills plane entries positionally.
func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := addr.DefaultLayout()
	g := l.Geom()
	reqs := boundedReqs(rng, 1003, l)
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	plane := snap.Plane(&g)

	for _, batch := range []int{1, 7, 64, 256, 2048} {
		ss := snap.DecodedStream(&g)
		if !ss.HasPlane() {
			t.Fatal("DecodedStream cursor has no plane")
		}
		dst := make([]Request, batch)
		dec := make([]Decoded, batch)
		pos := 0
		for {
			n := ss.NextBatch(dst, dec)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if dst[i] != reqs[pos] {
					t.Fatalf("batch=%d request %d: got %+v, want %+v", batch, pos, dst[i], reqs[pos])
				}
				if dec[i] != plane[pos] {
					t.Fatalf("batch=%d decoded %d: got %+v, want %+v", batch, pos, dec[i], plane[pos])
				}
				pos++
			}
		}
		if pos != len(reqs) {
			t.Fatalf("batch=%d replayed %d requests, want %d", batch, pos, len(reqs))
		}
	}

	// Mixing Next and NextBatch on one cursor preserves the sequence.
	ss := snap.Stream()
	var r Request
	for i := 0; i < 10; i++ {
		ss.Next(&r)
	}
	var buf [16]Request
	n := ss.NextBatch(buf[:], nil)
	for i := 0; i < n; i++ {
		if buf[i] != reqs[10+i] {
			t.Fatalf("mixed cursor request %d: got %+v, want %+v", 10+i, buf[i], reqs[10+i])
		}
	}
	if !ss.Next(&r) || r != reqs[10+n] {
		t.Fatalf("Next after NextBatch: got %+v, want %+v", r, reqs[10+n])
	}
}

// BenchmarkSnapshotBatchReplay measures the batched replay path per
// request, the decode-amortized counterpart of BenchmarkSnapshotReplay.
func BenchmarkSnapshotBatchReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	l := addr.DefaultLayout()
	g := l.Geom()
	reqs := boundedReqs(rng, 1<<16, l)
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	ss := snap.DecodedStream(&g)
	var dst [256]Request
	var dec [256]Decoded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		if n := ss.NextBatch(dst[:], dec[:]); n == 0 {
			ss.Reset()
		}
	}
}
