package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapFile persists reqs as an MPS1 file under dir and returns its
// path.
func writeSnapFile(t testing.TB, dir, name string, reqs []Request) string {
	t.Helper()
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, name, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".mps1")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenMappedMatchesReadSnapshot differential-tests the mapped open
// against the copying reader over the same file: identical name, length
// and record sequence. On platforms (or builds) without mmap support
// OpenMapped falls back to the copying reader, so the test is meaningful
// everywhere.
func TestOpenMappedMatchesReadSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 64, 65, 1000} {
		reqs := randomOrderedReqs(rng, n)
		path := writeSnapFile(t, t.TempDir(), "wl", reqs)

		ms, mname, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("n=%d: OpenMapped: %v", n, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rs, rname, err := ReadSnapshot(f)
		f.Close()
		if err != nil {
			t.Fatalf("n=%d: ReadSnapshot: %v", n, err)
		}
		if mname != rname || mname != "wl" {
			t.Errorf("n=%d: names %q vs %q", n, mname, rname)
		}
		if ms.Mapped() != MapSupported() {
			t.Errorf("n=%d: Mapped()=%v, MapSupported()=%v", n, ms.Mapped(), MapSupported())
		}
		want, have := Collect(rs.Stream()), Collect(ms.Stream())
		if len(want) != len(have) {
			t.Fatalf("n=%d: %d requests, want %d", n, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("n=%d: request %d differs: %+v vs %+v", n, i, have[i], want[i])
			}
		}
		ms.Release()
		rs.Release()
	}
}

// TestParseSnapshotBytesOffsetErrors drives the structural error paths of
// the in-place MPS1 parser through a corruption table, checking that each
// failure wraps ErrBadTrace and names where parsing stopped.
func TestParseSnapshotBytesOffsetErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	snap := Record(NewSliceStream(randomOrderedReqs(rng, 100)), 100)
	defer snap.Release()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, "wl", snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   []string
	}{
		{"empty", func(b []byte) []byte { return nil }, []string{"truncated snapshot magic", "offset 0"}},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, []string{"bad snapshot magic"}},
		{"cut name", func(b []byte) []byte { return b[:6] }, []string{"truncated snapshot name", "offset 6"}},
		{"cut counts", func(b []byte) []byte { return b[:10] }, []string{"truncated snapshot counts", "offset 8"}},
		{
			"implausible count",
			func(b []byte) []byte {
				for i := 8; i < 16; i++ {
					b[i] = 0xff
				}
				return b
			},
			[]string{"implausible snapshot sizes"},
		},
		{"cut times column", func(b []byte) []byte { return b[:30] }, []string{"truncated times column", "offset 24"}},
		{"cut address column", func(b []byte) []byte { return b[:len(b)/2] }, []string{"truncated address column"}},
		{"cut cores column", func(b []byte) []byte { return b[:len(b)-2] }, []string{"truncated cores column"}},
		{"trailing bytes", func(b []byte) []byte { return append(b, 1, 2, 3) }, []string{"3 trailing bytes"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mutate(bytes.Clone(full))
			_, _, err := parseSnapshotBytes(in)
			if err == nil {
				t.Fatal("parse accepted corrupt input")
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("error %v does not wrap ErrBadTrace", err)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}
}

// TestOpenMappedRejectsCorruptTimes pins down that a mapped open without
// a sidecar still validates the varint times column end to end, exactly
// like the copying reader (the fast open path must not trade away the
// fail-fast diagnosis).
func TestOpenMappedRejectsCorruptTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	path := writeSnapFile(t, t.TempDir(), "wl", randomOrderedReqs(rng, 200))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force the last byte of the times column into a varint continuation:
	// columns follow the 4+2+2+16 header, times first.
	snap := Record(NewSliceStream(randomOrderedReqs(rand.New(rand.NewSource(47)), 200)), 200)
	timesLen := len(snap.times)
	snap.Release()
	data[4+2+2+16+timesLen-1] |= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if s, _, err := OpenMapped(path); err == nil {
		s.Release()
		t.Fatal("OpenMapped accepted corrupt times column")
	}
}

// TestReleasedSharedSnapshotDoesNotPoisonPool pins the fix for a pool
// corruption: ReadSnapshot slices all four columns out of one shared read
// buffer (addrs, then writes, then cores, back to back), so releasing
// such a snapshot into the recording pool hands a later Record column
// slices that all alias that buffer. The overlap window is a recording
// slightly *larger* than the pooled one — the whole buffer's capacity
// still satisfies the addrs check, but the address column now extends
// past its old region into the writes and cores regions while those
// columns are appended in place. Release must drop shared snapshots
// instead of pooling them; the Record right after the release (the
// sync.Pool per-P slot makes reuse of a poisoned struct near-certain
// without the fix) has to round-trip exactly.
func TestReleasedSharedSnapshotDoesNotPoisonPool(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	small := randomOrderedReqs(rng, 120)
	bigger := randomOrderedReqs(rng, 130)
	path := writeSnapFile(t, t.TempDir(), "wl", small)

	// held keeps every pool struct this test pulls out alive and
	// unreleased, so the pool's per-P private slot is empty when the
	// shared snapshot is released — the next Record then reuses exactly
	// that struct (or would, without the fix).
	var held []*Snapshot
	for trial := 0; trial < 8; trial++ {
		held = append(held, Record(NewSliceStream(nil), 0))

		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := ReadSnapshot(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !rs.shared {
			t.Fatal("ReadSnapshot result not marked shared")
		}
		rs.Release()

		snap := Record(NewSliceStream(bigger), len(bigger))
		got := Collect(snap.Stream())
		for i := range bigger {
			if got[i] != bigger[i] {
				t.Fatalf("trial %d: request %d replayed %+v, want %+v (pool poisoned by shared snapshot)",
					trial, i, got[i], bigger[i])
			}
		}
		held = append(held, snap)
	}
	_ = held
}

// BenchmarkSnapshotReplayMapped measures the zero-copy replay loop over a
// store-mapped snapshot — the steady-state per-request cost of a cached
// matrix cell with a disk store. The acceptance bar is 0 allocs/op.
func BenchmarkSnapshotReplayMapped(b *testing.B) {
	reqs := benchReqs(1 << 16)
	path := writeSnapFile(b, b.TempDir(), "wl", reqs)
	snap, _, err := OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer snap.Release()
	ss := snap.Stream()
	b.ReportAllocs()
	b.ResetTimer()
	var r Request
	for i := 0; i < b.N; i++ {
		if !ss.Next(&r) {
			ss.Reset()
		}
	}
}
