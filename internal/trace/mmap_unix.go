//go:build (linux || darwin) && !nomap

package trace

import (
	"os"
	"syscall"
)

const mapSupported = true

// mmapFile maps size bytes of f read-only. The mapping is private to the
// process and survives the file descriptor being closed.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping created by mmapFile. Unmap errors are
// unrecoverable bookkeeping bugs (a bad address), so they panic rather
// than silently leak address space.
func munmapBytes(b []byte) {
	if err := syscall.Munmap(b); err != nil {
		panic("trace: munmap failed: " + err.Error())
	}
}
