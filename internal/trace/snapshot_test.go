package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/clock"
)

// randomOrderedReqs builds a random time-ordered request slice exercising
// every column: duplicate timestamps, large deltas, full-range addresses,
// writes, and core ids beyond the paper's 8.
func randomOrderedReqs(rng *rand.Rand, n int) []Request {
	reqs := make([]Request, n)
	var t clock.Time
	for i := range reqs {
		switch rng.Intn(4) {
		case 0: // duplicate timestamp
		case 1:
			t += clock.Time(rng.Int63n(100))
		case 2:
			t += clock.Time(rng.Int63n(1 << 20))
		default:
			t += clock.Time(rng.Int63n(1 << 40)) // multi-byte varint deltas
		}
		reqs[i] = Request{
			Addr:  rng.Uint64(),
			Time:  t,
			Write: rng.Intn(3) == 0,
			Core:  uint8(rng.Intn(256)),
		}
	}
	return reqs
}

// checkReplay asserts that recording then replaying reqs reproduces them
// field-for-field.
func checkReplay(t *testing.T, reqs []Request) {
	t.Helper()
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	if snap.Len() != len(reqs) {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), len(reqs))
	}
	ss := snap.Stream()
	var r Request
	for i := range reqs {
		if !ss.Next(&r) {
			t.Fatalf("replay ended at request %d of %d", i, len(reqs))
		}
		if r != reqs[i] {
			t.Fatalf("request %d: replayed %+v, recorded %+v", i, r, reqs[i])
		}
	}
	if ss.Next(&r) {
		t.Fatal("replay yielded requests past the recorded count")
	}
}

// TestSnapshotRoundtripProperty is the encode/replay property test: random
// time-ordered request slices must roundtrip exactly, across many sizes
// and seeds.
func TestSnapshotRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		checkReplay(t, randomOrderedReqs(rng, rng.Intn(700)))
	}
}

// TestSnapshotBoundaries pins the edge cases individually: empty stream,
// a single request, and a run of identical timestamps.
func TestSnapshotBoundaries(t *testing.T) {
	checkReplay(t, nil)
	checkReplay(t, []Request{{Addr: 0xdead, Time: 12345, Write: true, Core: 3}})
	dup := make([]Request, 130) // crosses two write-bitset words
	for i := range dup {
		dup[i] = Request{Addr: uint64(i), Time: 42, Write: i%2 == 0, Core: uint8(i % 8)}
	}
	checkReplay(t, dup)
}

// TestSnapshotRecordLimit checks Record's cap: it must stop at n even on a
// longer stream, and tolerate streams shorter than n.
func TestSnapshotRecordLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reqs := randomOrderedReqs(rng, 100)
	snap := Record(NewSliceStream(reqs), 60)
	if snap.Len() != 60 {
		t.Errorf("capped record Len = %d, want 60", snap.Len())
	}
	snap.Release()
	snap = Record(NewSliceStream(reqs), 1000)
	if snap.Len() != 100 {
		t.Errorf("short-stream record Len = %d, want 100", snap.Len())
	}
	snap.Release()
}

// TestSnapshotStreamReset checks that a reset cursor replays identically.
func TestSnapshotStreamReset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reqs := randomOrderedReqs(rng, 200)
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	ss := snap.Stream()
	first := Collect(ss)
	ss.Reset()
	second := Collect(ss)
	if len(first) != len(second) {
		t.Fatalf("reset replay length %d != %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset replay diverged at %d", i)
		}
	}
}

// TestSnapshotPoolReuse checks that a released snapshot's buffers can be
// re-recorded without contaminating the new contents.
func TestSnapshotPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	big := randomOrderedReqs(rng, 500)
	snap := Record(NewSliceStream(big), len(big))
	snap.Release()
	small := randomOrderedReqs(rng, 40)
	checkReplay(t, small)
}

// TestSnapshotSize pins the packing target: at generator-like deltas the
// packed form must stay at or under 16 bytes per request.
func TestSnapshotSize(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	reqs := make([]Request, 10_000)
	var tm clock.Time
	for i := range reqs {
		tm += clock.Duration(2+rng.Int63n(400)) * clock.Nanosecond
		reqs[i] = Request{Addr: rng.Uint64(), Time: tm, Write: rng.Intn(4) == 0, Core: uint8(i % 8)}
	}
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	if perReq := float64(snap.Size()) / float64(len(reqs)); perReq > 16 {
		t.Errorf("packed size %.1f B/request, want <= 16", perReq)
	}
}

// TestSnapshotFileRoundtrip checks WriteSnapshot/ReadSnapshot persistence,
// including the workload-name label.
func TestSnapshotFileRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 64, 65, 333} {
		reqs := randomOrderedReqs(rng, n)
		snap := Record(NewSliceStream(reqs), n)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, "mix5", snap); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, name, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if name != "mix5" {
			t.Errorf("n=%d: name %q, want mix5", n, name)
		}
		want, have := Collect(snap.Stream()), Collect(got.Stream())
		if len(want) != len(have) {
			t.Fatalf("n=%d: loaded %d requests, want %d", n, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("n=%d: request %d differs after file roundtrip", n, i)
			}
		}
		snap.Release()
	}
}

// TestReadSnapshotRejectsCorruption feeds truncated and corrupted inputs;
// every case must error rather than panic or return garbage.
func TestReadSnapshotRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	snap := Record(NewSliceStream(randomOrderedReqs(rng, 100)), 100)
	defer snap.Release()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, "wl", snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte("XXXX"), full[4:]...)
		if _, _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 3, 5, 8, 20, len(full) / 2, len(full) - 1} {
			if cut >= len(full) {
				continue
			}
			if _, _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("continuation byte at end of times", func(t *testing.T) {
		b := bytes.Clone(full)
		// Find the times column start: 4 magic + 2 name-len + 2 name +
		// 16 counts; force its final byte to a varint continuation.
		timesStart := 4 + 2 + 2 + 16
		snapTimes := snap.times
		b[timesStart+len(snapTimes)-1] |= 0x80
		if _, _, err := ReadSnapshot(bytes.NewReader(b)); err == nil {
			t.Error("corrupt varint column accepted")
		}
	})
}

// TestSnapshotMatchesSliceStream differential-tests the packed replay
// against the reference SliceStream over the same requests.
func TestSnapshotMatchesSliceStream(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	reqs := randomOrderedReqs(rng, 5000)
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	ref, got := NewSliceStream(reqs), snap.Stream()
	var a, b Request
	for i := 0; ; i++ {
		okA, okB := ref.Next(&a), got.Next(&b)
		if okA != okB {
			t.Fatalf("streams diverge in length at %d", i)
		}
		if !okA {
			break
		}
		if a != b {
			t.Fatalf("request %d: snapshot %+v, reference %+v", i, b, a)
		}
	}
}
