// Package trace defines the memory-request records consumed by the
// simulator and streams for producing them.
//
// A trace is the sequence of last-level-cache misses of an 8-core
// multi-programmed workload, in non-decreasing timestamp order. The paper
// captures such traces from SPEC CPU2006 with Sniper; this repository
// generates equivalent synthetic traces (package workload) and can persist
// them in a compact binary format (package trace, file.go).
package trace

import "repro/internal/clock"

// Request is one main-memory request: a 64-byte line access issued at a
// point in simulated time by one of the cores.
type Request struct {
	Addr  uint64     // byte address in the flat physical address space
	Time  clock.Time // issue time (LLC-miss time) in femtoseconds
	Write bool       // true for writeback, false for demand read
	Core  uint8      // issuing core, [0, 8) in the paper's setup
}

// Stream produces requests one at a time. Next reports false when the
// stream is exhausted. Implementations are single-use unless they document
// otherwise.
type Stream interface {
	// Next fills *r with the next request and reports whether one existed.
	Next(r *Request) bool
}

// SliceStream adapts an in-memory request slice to a Stream.
type SliceStream struct {
	reqs []Request
	pos  int
}

// NewSliceStream returns a Stream over reqs. The slice is not copied.
func NewSliceStream(reqs []Request) *SliceStream {
	return &SliceStream{reqs: reqs}
}

// Next implements Stream.
func (s *SliceStream) Next(r *Request) bool {
	if s.pos >= len(s.reqs) {
		return false
	}
	*r = s.reqs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning, making it reusable.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of requests in the stream.
func (s *SliceStream) Len() int { return len(s.reqs) }

// Collect drains a stream into a slice. It is intended for tests and for
// experiments that replay the same trace under several mechanisms.
func Collect(s Stream) []Request {
	var out []Request
	var r Request
	for s.Next(&r) {
		out = append(out, r)
	}
	return out
}

// LimitStream caps an underlying stream at n requests.
type LimitStream struct {
	src  Stream
	left int
}

// NewLimitStream returns a Stream yielding at most n requests from src.
func NewLimitStream(src Stream, n int) *LimitStream {
	return &LimitStream{src: src, left: n}
}

// Next implements Stream.
func (l *LimitStream) Next(r *Request) bool {
	if l.left <= 0 {
		return false
	}
	if !l.src.Next(r) {
		l.left = 0
		return false
	}
	l.left--
	return true
}

// MergeStream merges several timestamp-ordered streams into one
// timestamp-ordered stream. It is how per-core generators compose into an
// 8-core multi-programmed trace.
type MergeStream struct {
	srcs    []Stream
	heads   []Request
	present []bool
}

// NewMergeStream returns a merged Stream over srcs. Each source must be
// individually ordered by Time.
func NewMergeStream(srcs ...Stream) *MergeStream {
	m := &MergeStream{
		srcs:    srcs,
		heads:   make([]Request, len(srcs)),
		present: make([]bool, len(srcs)),
	}
	for i, s := range srcs {
		m.present[i] = s.Next(&m.heads[i])
	}
	return m
}

// Next implements Stream.
func (m *MergeStream) Next(r *Request) bool {
	best := -1
	for i, ok := range m.present {
		if !ok {
			continue
		}
		if best < 0 || m.heads[i].Time < m.heads[best].Time {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	*r = m.heads[best]
	m.present[best] = m.srcs[best].Next(&m.heads[best])
	return true
}
