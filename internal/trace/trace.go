// Package trace defines the memory-request records consumed by the
// simulator and streams for producing them.
//
// A trace is the sequence of last-level-cache misses of an 8-core
// multi-programmed workload, in non-decreasing timestamp order. The paper
// captures such traces from SPEC CPU2006 with Sniper; this repository
// generates equivalent synthetic traces (package workload) and can persist
// them in a compact binary format (package trace, file.go).
package trace

import "repro/internal/clock"

// Request is one main-memory request: a 64-byte line access issued at a
// point in simulated time by one of the cores.
type Request struct {
	Addr  uint64     // byte address in the flat physical address space
	Time  clock.Time // issue time (LLC-miss time) in femtoseconds
	Write bool       // true for writeback, false for demand read
	Core  uint8      // issuing core, [0, 8) in the paper's setup
}

// Stream produces requests one at a time. Next reports false when the
// stream is exhausted. Implementations are single-use unless they document
// otherwise.
type Stream interface {
	// Next fills *r with the next request and reports whether one existed.
	Next(r *Request) bool
}

// BatchStream is a Stream that can additionally deliver requests in
// batches, optionally accompanied by their predecoded address
// decompositions. The simulation engine takes this path when offered
// (SnapshotStream implements it); plain streams fall back to Next.
type BatchStream interface {
	Stream
	// NextBatch fills dst with up to len(dst) requests — the same
	// sequence Next would produce — and returns the count (0 when
	// exhausted). If HasPlane reports true and plane is non-nil, plane[i]
	// is filled with the decoded form of dst[i].
	NextBatch(dst []Request, plane []Decoded) int
	// HasPlane reports whether a predecode plane is bound.
	HasPlane() bool
}

// SharedBatchStream is a BatchStream whose decoded entries can be borrowed
// without copying: NextBatchShared returns the batch's Decoded entries as a
// read-only subslice of the stream's own plane (nil when none is bound),
// valid until the next cursor advance.
type SharedBatchStream interface {
	BatchStream
	NextBatchShared(dst []Request) (int, []Decoded)
}

// SliceStream adapts an in-memory request slice to a Stream.
type SliceStream struct {
	reqs []Request
	pos  int
}

// NewSliceStream returns a Stream over reqs. The slice is not copied.
func NewSliceStream(reqs []Request) *SliceStream {
	return &SliceStream{reqs: reqs}
}

// Next implements Stream.
func (s *SliceStream) Next(r *Request) bool {
	if s.pos >= len(s.reqs) {
		return false
	}
	*r = s.reqs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning, making it reusable.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of requests in the stream.
func (s *SliceStream) Len() int { return len(s.reqs) }

// Collect drains a stream into a slice. It is intended for tests and for
// experiments that replay the same trace under several mechanisms.
func Collect(s Stream) []Request {
	var out []Request
	var r Request
	for s.Next(&r) {
		out = append(out, r)
	}
	return out
}

// LimitStream caps an underlying stream at n requests.
type LimitStream struct {
	src  Stream
	left int
}

// NewLimitStream returns a Stream yielding at most n requests from src.
func NewLimitStream(src Stream, n int) *LimitStream {
	return &LimitStream{src: src, left: n}
}

// Next implements Stream.
func (l *LimitStream) Next(r *Request) bool {
	if l.left <= 0 {
		return false
	}
	if !l.src.Next(r) {
		l.left = 0
		return false
	}
	l.left--
	return true
}

// MergeStream merges several timestamp-ordered streams into one
// timestamp-ordered stream. It is how per-core generators compose into an
// 8-core multi-programmed trace.
//
// Live sources are kept dense: an exhausted source is removed by an
// order-preserving compaction, so Next scans exactly the live heads with
// no per-source liveness check. Ties break toward the earliest-registered
// source, same as scanning all sources in registration order — compaction
// preserves the live sources' relative order, so the tie-break is
// unchanged by removals.
type MergeStream struct {
	srcs  []Stream
	heads []Request
	// times shadows heads[i].Time densely: the per-Next minimum scan runs
	// over 8-byte entries (all 8 cores' heads share one cache line)
	// instead of striding across whole Request structs.
	times []clock.Time
}

// NewMergeStream returns a merged Stream over srcs. Each source must be
// individually ordered by Time.
func NewMergeStream(srcs ...Stream) *MergeStream {
	m := &MergeStream{
		srcs:  make([]Stream, 0, len(srcs)),
		heads: make([]Request, len(srcs)),
		times: make([]clock.Time, 0, len(srcs)),
	}
	for _, s := range srcs {
		if s.Next(&m.heads[len(m.srcs)]) {
			m.srcs = append(m.srcs, s)
			m.times = append(m.times, m.heads[len(m.times)].Time)
		}
	}
	m.heads = m.heads[:len(m.srcs)]
	return m
}

// Next implements Stream.
func (m *MergeStream) Next(r *Request) bool {
	times := m.times
	var best int
	if len(times) == 8 {
		// The full 8-core head set, the common case until sources start
		// exhausting: an unrolled tournament whose compare chains are
		// independent (instruction-level parallelism, branchless
		// selects) instead of one serial scan. Every node keeps the left
		// operand on ties and left operands always carry the smaller
		// indices, so the winner is the first minimal index — exactly
		// the scan's answer.
		b0, i0 := times[0], 0
		if times[1] < b0 {
			b0, i0 = times[1], 1
		}
		b1, i1 := times[2], 2
		if times[3] < b1 {
			b1, i1 = times[3], 3
		}
		b2, i2 := times[4], 4
		if times[5] < b2 {
			b2, i2 = times[5], 5
		}
		b3, i3 := times[6], 6
		if times[7] < b3 {
			b3, i3 = times[7], 7
		}
		if b1 < b0 {
			b0, i0 = b1, i1
		}
		if b3 < b2 {
			b2, i2 = b3, i3
		}
		if b2 < b0 {
			i0 = i2
		}
		best = i0
	} else {
		if len(times) == 0 {
			return false
		}
		bt := times[0]
		for i := 1; i < len(times); i++ {
			if times[i] < bt {
				best, bt = i, times[i]
			}
		}
	}
	*r = m.heads[best]
	if m.srcs[best].Next(&m.heads[best]) {
		times[best] = m.heads[best].Time
	} else {
		copy(m.heads[best:], m.heads[best+1:])
		copy(m.srcs[best:], m.srcs[best+1:])
		copy(times[best:], times[best+1:])
		m.heads = m.heads[:len(m.heads)-1]
		m.srcs = m.srcs[:len(m.srcs)-1]
		m.times = times[:len(times)-1]
	}
	return true
}
