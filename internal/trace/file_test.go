package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/clock"
)

// goodTrace builds a valid n-record MPT1 file.
func goodTrace(t *testing.T, n int) []byte {
	t.Helper()
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Addr: uint64(64 * (i + 1)), Time: clock.Time(100 * i), Write: i%2 == 0, Core: uint8(i % 4)}
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, NewSliceStream(reqs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadErrorPaths drives every malformed-input branch of Read through
// a corruption table, checking that each failure wraps ErrBadTrace and
// that its message names the record index / byte offset where decoding
// stopped (the whole point of the hardened errors: diagnosable without a
// hex dump).
func TestReadErrorPaths(t *testing.T) {
	good := goodTrace(t, 3)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		want    []string // substrings the error must contain
		ioCause error    // non-nil: the underlying I/O error must be wrapped too
	}{
		{
			name:    "empty input",
			mutate:  func(b []byte) []byte { return nil },
			want:    []string{"truncated header", "offset 0"},
			ioCause: io.EOF,
		},
		{
			name:    "short header",
			mutate:  func(b []byte) []byte { return b[:7] },
			want:    []string{"truncated header", "offset 7", "want 12"},
			ioCause: io.ErrUnexpectedEOF,
		},
		{
			name:   "bad magic",
			mutate: func(b []byte) []byte { b[0] = 'X'; return b },
			want:   []string{"bad magic", `"XPT1"`, `want "MPT1"`},
		},
		{
			name: "huge count",
			mutate: func(b []byte) []byte {
				for i := 4; i < 12; i++ {
					b[i] = 0xff
				}
				return b[:12]
			},
			want: []string{"request count", "offset 4", "too large"},
		},
		{
			name:    "no records after header",
			mutate:  func(b []byte) []byte { return b[:headerBytes] },
			want:    []string{"truncated record 0 of 3", "offset 12", "have 0"},
			ioCause: io.EOF,
		},
		{
			name:    "mid-record cut",
			mutate:  func(b []byte) []byte { return b[:headerBytes+recordBytes+5] },
			want:    []string{"truncated record 1 of 3", "offset 30", "have 5"},
			ioCause: io.ErrUnexpectedEOF,
		},
		{
			name: "unknown flag bits",
			mutate: func(b []byte) []byte {
				b[headerBytes+recordBytes+16] |= 0x80
				return b
			},
			want: []string{"record 1", "offset 46", "flag bits 0x80"},
		},
		{
			name:   "trailing data",
			mutate: func(b []byte) []byte { return append(b, 0xaa) },
			want:   []string{"trailing data after record 3", "offset 66"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.mutate(append([]byte(nil), good...))
			_, err := Read(bytes.NewReader(in))
			if err == nil {
				t.Fatal("Read accepted malformed input")
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("error %v does not wrap ErrBadTrace", err)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
			if tc.ioCause != nil && !errors.Is(err, tc.ioCause) {
				t.Errorf("error %v does not wrap %v", err, tc.ioCause)
			}
		})
	}
}

// TestReadAcceptsCleanBoundaries pins the accept side of the hardened
// parser: a zero-record file and an exact-length file both parse.
func TestReadAcceptsCleanBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 3} {
		s, err := Read(bytes.NewReader(goodTrace(t, n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.Len() != n {
			t.Fatalf("n=%d: parsed %d records", n, s.Len())
		}
	}
}
