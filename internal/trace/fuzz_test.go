package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary trace parser: arbitrary input must either
// parse into a well-formed stream or return an error — never panic, and
// never allocate absurd amounts for a corrupt header.
func FuzzRead(f *testing.F) {
	// Seed with a valid two-record trace and a few corruptions.
	var good bytes.Buffer
	if _, err := Write(&good, NewSliceStream([]Request{
		{Addr: 64, Time: 10, Write: true, Core: 1},
		{Addr: 128, Time: 20},
	})); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MPT1"))
	f.Add([]byte("MPT1\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add(good.Bytes()[:len(good.Bytes())-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must yield exactly Len() well-formed records.
		n := 0
		var r Request
		for s.Next(&r) {
			n++
		}
		if n != s.Len() {
			t.Fatalf("stream yielded %d records, Len() says %d", n, s.Len())
		}
	})
}
