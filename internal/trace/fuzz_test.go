package trace

import (
	"bytes"

	"repro/internal/clock"
	"testing"
)

// FuzzRead hardens the binary trace parser: arbitrary input must either
// parse into a well-formed stream or return an error — never panic, and
// never allocate absurd amounts for a corrupt header.
func FuzzRead(f *testing.F) {
	// Seed with a valid two-record trace and a few corruptions.
	var good bytes.Buffer
	if _, err := Write(&good, NewSliceStream([]Request{
		{Addr: 64, Time: 10, Write: true, Core: 1},
		{Addr: 128, Time: 20},
	})); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MPT1"))
	f.Add([]byte("MPT1\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add(good.Bytes()[:len(good.Bytes())-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must yield exactly Len() well-formed records.
		n := 0
		var r Request
		for s.Next(&r) {
			n++
		}
		if n != s.Len() {
			t.Fatalf("stream yielded %d records, Len() says %d", n, s.Len())
		}
	})
}

// FuzzSnapshotDecode hardens the packed snapshot reader (the
// -trace-in/-trace-out persistence format): arbitrary input must either
// decode into a well-formed snapshot or return an error — never panic,
// never index past a column, and never allocate absurd amounts for a
// corrupt header.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a valid three-record snapshot and targeted corruptions of
	// each header field and column boundary.
	snap := Record(NewSliceStream([]Request{
		{Addr: 64, Time: 10, Write: true, Core: 1},
		{Addr: 128, Time: 10, Core: 7},
		{Addr: 4096, Time: 300},
	}), 3)
	defer snap.Release()
	var good bytes.Buffer
	if err := WriteSnapshot(&good, "mix5", snap); err != nil {
		f.Fatal(err)
	}
	gb := good.Bytes()
	f.Add(gb)
	f.Add([]byte{})
	f.Add([]byte("MPS1"))
	f.Add([]byte("MPT1 wrong magic"))
	f.Add(gb[:len(gb)-1])                 // truncated last column
	f.Add(gb[:4+2+4+16])                  // header only, no columns
	f.Add(append([]byte(nil), gb[:4]...)) // magic, no name length
	// Huge request count with no data behind it.
	f.Add([]byte("MPS1\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	// Valid header, times column of continuation bytes only (no varint
	// ever terminates).
	bad := append([]byte(nil), gb...)
	for i := 4 + 2 + 4 + 16; i < len(bad); i++ {
		bad[i] = 0x80
	}
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, name, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = name
		// A successful decode must replay to exactly Len() records with
		// non-decreasing times (deltas are unsigned).
		n := 0
		var last clock.Time
		var r Request
		st := s.Stream()
		for st.Next(&r) {
			if r.Time < last {
				t.Fatalf("replayed time went backwards at record %d (%v < %v)", n, r.Time, last)
			}
			last = r.Time
			n++
		}
		if n != s.Len() {
			t.Fatalf("snapshot replayed %d records, Len() says %d", n, s.Len())
		}
		s.Release()
	})
}
