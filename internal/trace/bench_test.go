package trace

import (
	"testing"

	"repro/internal/clock"
)

// BenchmarkMergeStreamNext measures the 8-way merge that feeds every
// simulation: one Next per simulated request.
func BenchmarkMergeStreamNext(b *testing.B) {
	const cores = 8
	mk := func(core int) []Request {
		reqs := make([]Request, 4096)
		t := clock.Time(core)
		for i := range reqs {
			t += clock.Time(7 + (i*core)%23)
			reqs[i] = Request{Addr: uint64(i), Time: t, Core: uint8(core)}
		}
		return reqs
	}
	slices := make([]*SliceStream, cores)
	for c := range slices {
		slices[c] = NewSliceStream(mk(c))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r Request
	var m *MergeStream
	for i := 0; i < b.N; i++ {
		if m == nil || !m.Next(&r) {
			srcs := make([]Stream, cores)
			for c, s := range slices {
				s.Reset()
				srcs[c] = s
			}
			m = NewMergeStream(srcs...)
		}
	}
}
