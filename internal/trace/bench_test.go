package trace

import (
	"testing"

	"repro/internal/clock"
)

// BenchmarkMergeStreamNext measures the 8-way merge that feeds every
// simulation: one Next per simulated request.
func BenchmarkMergeStreamNext(b *testing.B) {
	const cores = 8
	mk := func(core int) []Request {
		reqs := make([]Request, 4096)
		t := clock.Time(core)
		for i := range reqs {
			t += clock.Time(7 + (i*core)%23)
			reqs[i] = Request{Addr: uint64(i), Time: t, Core: uint8(core)}
		}
		return reqs
	}
	slices := make([]*SliceStream, cores)
	for c := range slices {
		slices[c] = NewSliceStream(mk(c))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r Request
	var m *MergeStream
	for i := 0; i < b.N; i++ {
		if m == nil || !m.Next(&r) {
			srcs := make([]Stream, cores)
			for c, s := range slices {
				s.Reset()
				srcs[c] = s
			}
			m = NewMergeStream(srcs...)
		}
	}
}

// benchReqs builds a generator-shaped request slice for the snapshot
// benchmarks: nanosecond-scale deltas, 8 cores, occasional writes.
func benchReqs(n int) []Request {
	reqs := make([]Request, n)
	t := clock.Time(0)
	for i := range reqs {
		t += clock.Duration(2+(i*7)%400) * clock.Nanosecond
		reqs[i] = Request{
			Addr:  uint64(i) * 64,
			Time:  t,
			Write: i%4 == 0,
			Core:  uint8(i % 8),
		}
	}
	return reqs
}

// BenchmarkSnapshotReplay measures the packed replay loop — the per-request
// cost every cached matrix cell pays instead of regenerating its trace.
// The acceptance bar is 0 allocs/op in steady state.
func BenchmarkSnapshotReplay(b *testing.B) {
	reqs := benchReqs(1 << 16)
	snap := Record(NewSliceStream(reqs), len(reqs))
	defer snap.Release()
	ss := snap.Stream()
	b.ReportAllocs()
	b.ResetTimer()
	var r Request
	for i := 0; i < b.N; i++ {
		if !ss.Next(&r) {
			ss.Reset()
		}
	}
}

// BenchmarkSnapshotRecord measures the capture side: packing one request
// into the columnar snapshot (amortized over a pooled recording).
func BenchmarkSnapshotRecord(b *testing.B) {
	reqs := benchReqs(1 << 16)
	src := NewSliceStream(reqs)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += len(reqs) {
		src.Reset()
		snap := Record(src, len(reqs))
		snap.Release()
	}
}
