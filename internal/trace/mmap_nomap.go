//go:build (!linux && !darwin) || nomap

package trace

import (
	"errors"
	"os"
)

const mapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("trace: mmap not supported in this build")
}

// munmapBytes is unreachable when mapSupported is false (no snapshot ever
// carries a mapping), but Release still links against it.
func munmapBytes(b []byte) {}
