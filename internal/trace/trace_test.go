package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func sample(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := clock.Time(0)
	for i := range reqs {
		t += clock.Time(rng.Intn(10000))
		reqs[i] = Request{
			Addr:  rng.Uint64() % (9 << 30),
			Time:  t,
			Write: rng.Intn(4) == 0,
			Core:  uint8(rng.Intn(8)),
		}
	}
	return reqs
}

func TestSliceStream(t *testing.T) {
	reqs := sample(100, 1)
	s := NewSliceStream(reqs)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s)
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("Collect differs from input")
	}
	var r Request
	if s.Next(&r) {
		t.Fatal("exhausted stream yielded a request")
	}
	s.Reset()
	if !s.Next(&r) || r != reqs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimitStream(t *testing.T) {
	reqs := sample(50, 2)
	got := Collect(NewLimitStream(NewSliceStream(reqs), 10))
	if len(got) != 10 || !reflect.DeepEqual(got, reqs[:10]) {
		t.Fatalf("limit 10: got %d requests", len(got))
	}
	got = Collect(NewLimitStream(NewSliceStream(reqs), 500))
	if len(got) != 50 {
		t.Fatalf("limit beyond length: got %d, want 50", len(got))
	}
	got = Collect(NewLimitStream(NewSliceStream(reqs), 0))
	if len(got) != 0 {
		t.Fatalf("limit 0: got %d", len(got))
	}
}

func TestMergeStreamOrdersByTime(t *testing.T) {
	a := sample(200, 3)
	b := sample(150, 4)
	c := sample(0, 5)
	m := NewMergeStream(NewSliceStream(a), NewSliceStream(b), NewSliceStream(c))
	got := Collect(m)
	if len(got) != 350 {
		t.Fatalf("merged %d requests, want 350", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("merge out of order at %d: %v < %v", i, got[i].Time, got[i-1].Time)
		}
	}
	// Merging must be a permutation of the inputs.
	counts := map[Request]int{}
	for _, r := range append(append([]Request{}, a...), b...) {
		counts[r]++
	}
	for _, r := range got {
		counts[r]--
	}
	for r, n := range counts {
		if n != 0 {
			t.Fatalf("request %+v count off by %d after merge", r, n)
		}
	}
}

func TestMergeStreamEmpty(t *testing.T) {
	m := NewMergeStream()
	var r Request
	if m.Next(&r) {
		t.Fatal("empty merge yielded a request")
	}
}

func TestFileRoundTrip(t *testing.T) {
	reqs := sample(1000, 6)
	var buf bytes.Buffer
	n, err := Write(&buf, NewSliceStream(reqs))
	if err != nil || n != 1000 {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
	if want := 12 + 18*1000; buf.Len() != want {
		t.Fatalf("file size %d, want %d", buf.Len(), want)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Collect(back), reqs) {
		t.Fatal("round trip altered requests")
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	prop := func(addrs []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, len(addrs))
		for i, a := range addrs {
			reqs[i] = Request{Addr: a, Time: clock.Time(i * 100), Write: rng.Intn(2) == 0, Core: uint8(i % 8)}
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, NewSliceStream(reqs)); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		got := Collect(back)
		if len(got) == 0 && len(reqs) == 0 {
			return true
		}
		return reflect.DeepEqual(got, reqs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XYZ",
		"MPT9\x00\x00\x00\x00\x00\x00\x00\x00",
		"MPT1\x05\x00\x00\x00\x00\x00\x00\x00trunc",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestReadRejectsHugeCount(t *testing.T) {
	hdr := []byte("MPT1\xff\xff\xff\xff\xff\xff\xff\xff")
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Error("Read accepted absurd request count")
	}
}
