//go:build (!linux && !darwin) || nomap

package trace

import (
	"repro/internal/addr"
	"repro/internal/clock"
)

// Without mmap support there is no zero-copy way to serve a sidecar, and
// the raw-memory-image format is pointless through a copying read — the
// derived columns are just recomputed (the nomap differential tests
// exercise exactly this path).

func openPlaneSidecar(base string, g *addr.Geom, addrs []byte, n int) ([]Decoded, []byte, bool) {
	return nil, nil, false
}

func writePlaneSidecar(base string, g *addr.Geom, dec []Decoded) {}

func openTimesSidecar(base string, times []byte, n int) ([]clock.Time, []byte, bool) {
	return nil, nil, false
}

func writeTimesSidecar(base string, col []clock.Time) {}
