package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/clock"
)

// Snapshot is a packed, immutable recording of a trace: the generate-once
// form that every experiment cell replays instead of re-running the
// workload generators. The encoding is columnar so each field packs to its
// entropy rather than its struct size:
//
//   - times: unsigned-varint deltas between consecutive timestamps (the
//     stream is time-ordered, so deltas are small — a few bytes each
//     instead of 8). Deltas are computed with wrapping uint64 arithmetic,
//     so decoding reproduces any int64 sequence exactly, ordered or not.
//   - addrs: raw 64-bit addresses (high-entropy, left uncompressed).
//   - writes: one bit per request.
//   - cores: one byte per request.
//
// At the generators' timestamp distribution this is ~12 B/request versus
// the 24 B in-memory Request (and the 18 B file record), and replaying it
// costs a few ns/request with zero allocations — an order of magnitude
// cheaper than regenerating the trace.
//
// A Snapshot is read-only after Record: any number of Stream cursors may
// replay it concurrently. Release returns its buffers to a pool for the
// next Record; the caller must guarantee no cursor is still in use
// (internal/tracecache's refcounting does exactly that).
type Snapshot struct {
	n      int
	times  []byte   // uvarint deltas, first entry delta from time 0
	addrs  []uint64 // one per request
	writes []uint64 // bitset, one bit per request
	cores  []byte   // one per request
}

// snapPool recycles snapshot buffers across recordings, the same idiom as
// internal/tab: a matrix run records one snapshot per workload, and the
// next workload's Record appends into the previous one's released
// capacity instead of growing fresh multi-MB slices.
var snapPool = sync.Pool{New: func() any { return new(Snapshot) }}

// Record drains up to n requests from s into a packed Snapshot. It is the
// capture half of the record/replay pair; Snapshot.Stream is the replay
// half, and replaying yields the recorded requests bit-for-bit.
func Record(s Stream, n int) *Snapshot {
	snap := snapPool.Get().(*Snapshot)
	if cap(snap.addrs) < n {
		snap.addrs = make([]uint64, 0, n)
		snap.writes = make([]uint64, 0, (n+63)/64)
		snap.cores = make([]byte, 0, n)
	}
	snap.times = snap.times[:0]
	snap.addrs = snap.addrs[:0]
	snap.writes = snap.writes[:0]
	snap.cores = snap.cores[:0]
	snap.n = 0

	var r Request
	var prev clock.Time
	var wword uint64
	for snap.n < n && s.Next(&r) {
		snap.times = binary.AppendUvarint(snap.times, uint64(r.Time)-uint64(prev))
		prev = r.Time
		snap.addrs = append(snap.addrs, r.Addr)
		snap.cores = append(snap.cores, r.Core)
		if r.Write {
			wword |= 1 << (uint(snap.n) & 63)
		}
		snap.n++
		if snap.n&63 == 0 {
			snap.writes = append(snap.writes, wword)
			wword = 0
		}
	}
	if snap.n&63 != 0 {
		snap.writes = append(snap.writes, wword)
	}
	return snap
}

// Len returns the number of recorded requests.
func (s *Snapshot) Len() int { return s.n }

// Size returns the packed size in bytes, the resident cost of keeping the
// snapshot cached.
func (s *Snapshot) Size() int {
	return len(s.times) + 8*len(s.addrs) + 8*len(s.writes) + len(s.cores)
}

// Release returns the snapshot's buffers to the recording pool. The caller
// must not use the snapshot — or any Stream cursor over it — afterwards.
func (s *Snapshot) Release() {
	snapPool.Put(s)
}

// Stream returns a fresh replay cursor over the snapshot. Cursors are
// independent: concurrent cells replaying one snapshot each take their own.
func (s *Snapshot) Stream() *SnapshotStream {
	return &SnapshotStream{snap: s}
}

// SnapshotStream replays a Snapshot as a trace.Stream. Next performs no
// allocation: it decodes one varint delta and indexes the columnar arrays.
type SnapshotStream struct {
	snap *Snapshot
	pos  int        // next request index
	off  int        // byte offset into snap.times
	now  clock.Time // running timestamp
}

// Next implements Stream.
func (ss *SnapshotStream) Next(r *Request) bool {
	s := ss.snap
	if ss.pos >= s.n {
		return false
	}
	// Inline uvarint decode over the times column. The loop always
	// terminates within the recorded bytes: Record wrote one complete
	// varint per request.
	var delta uint64
	var shift uint
	for {
		b := s.times[ss.off]
		ss.off++
		delta |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	ss.now += clock.Time(delta)
	r.Time = ss.now
	r.Addr = s.addrs[ss.pos]
	r.Core = s.cores[ss.pos]
	r.Write = s.writes[ss.pos>>6]&(1<<(uint(ss.pos)&63)) != 0
	ss.pos++
	return true
}

// Reset rewinds the cursor to the beginning of the snapshot.
func (ss *SnapshotStream) Reset() {
	ss.pos, ss.off, ss.now = 0, 0, 0
}

// Snapshot file format (the -trace-in/-trace-out persistence of
// cmd/mempodsim):
//
//	header:  magic "MPS1" (4 bytes), name length (uint16 LE), name bytes,
//	         request count (uint64 LE), times length (uint64 LE)
//	columns: times (raw varint bytes), addrs (uint64 LE each),
//	         writes bitset (uint64 LE words), cores (raw bytes)
const snapMagic = "MPS1"

// WriteSnapshot persists a snapshot, labelled with the workload name that
// produced it, in the packed columnar format.
func WriteSnapshot(w io.Writer, name string, s *Snapshot) error {
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: snapshot name %q too long", name)
	}
	hdr := make([]byte, 0, 4+2+len(name)+8+8)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.n))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(s.times)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(s.times); err != nil {
		return err
	}
	buf := make([]byte, 0, 8*len(s.addrs))
	for _, a := range s.addrs {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	for _, ww := range s.writes {
		buf = binary.LittleEndian.AppendUint64(buf, ww)
	}
	buf = append(buf, s.cores...)
	_, err := w.Write(buf)
	return err
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and returns it
// with its recorded workload name.
func ReadSnapshot(r io.Reader) (*Snapshot, string, error) {
	var fixed [4 + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, "", fmt.Errorf("trace: reading snapshot header: %w", err)
	}
	if string(fixed[:4]) != snapMagic {
		return nil, "", fmt.Errorf("%w: bad snapshot magic %q", ErrBadTrace, fixed[:4])
	}
	nameBuf := make([]byte, binary.LittleEndian.Uint16(fixed[4:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot name: %v", ErrBadTrace, err)
	}
	var counts [16]byte
	if _, err := io.ReadFull(r, counts[:]); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot header: %v", ErrBadTrace, err)
	}
	n := binary.LittleEndian.Uint64(counts[:8])
	timesLen := binary.LittleEndian.Uint64(counts[8:])
	const maxReasonable = 1 << 32
	if n > maxReasonable || timesLen > 10*n+16 {
		return nil, "", fmt.Errorf("%w: implausible snapshot sizes (n=%d, times=%d)", ErrBadTrace, n, timesLen)
	}
	if timesLen < n {
		// Every request costs at least one varint byte.
		return nil, "", fmt.Errorf("%w: times column shorter than request count", ErrBadTrace)
	}
	s := &Snapshot{n: int(n)}
	// Column bytes are buffered incrementally (bytes.Buffer grows as data
	// arrives), so a corrupt header cannot demand an enormous up-front
	// allocation — the same defense as the MPT1 reader.
	var err error
	if s.times, err = readColumn(r, int64(timesLen)); err != nil {
		return nil, "", fmt.Errorf("%w: truncated times column: %v", ErrBadTrace, err)
	}
	words := int(n+63) / 64
	buf, err := readColumn(r, 8*int64(n)+8*int64(words)+int64(n))
	if err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot columns: %v", ErrBadTrace, err)
	}
	s.addrs = make([]uint64, n)
	for i := range s.addrs {
		s.addrs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	buf = buf[8*n:]
	s.writes = make([]uint64, words)
	for i := range s.writes {
		s.writes[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	s.cores = buf[8*words:]
	// Validate the times column: exactly n complete varints, no trailing
	// bytes, so a replay cursor can never index past the slice.
	off := 0
	for i := uint64(0); i < n; i++ {
		_, vn := binary.Uvarint(s.times[off:])
		if vn <= 0 {
			return nil, "", fmt.Errorf("%w: corrupt times column at request %d", ErrBadTrace, i)
		}
		off += vn
	}
	if off != len(s.times) {
		return nil, "", fmt.Errorf("%w: %d trailing bytes in times column", ErrBadTrace, len(s.times)-off)
	}
	return s, string(nameBuf), nil
}

// readColumn reads exactly n bytes, growing the buffer only as bytes
// actually arrive.
func readColumn(r io.Reader, n int64) ([]byte, error) {
	var b bytes.Buffer
	if _, err := io.CopyN(&b, r, n); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
