package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/addr"
	"repro/internal/clock"
)

// Snapshot is a packed, immutable recording of a trace: the generate-once
// form that every experiment cell replays instead of re-running the
// workload generators. The encoding is columnar so each field packs to its
// entropy rather than its struct size:
//
//   - times: unsigned-varint deltas between consecutive timestamps (the
//     stream is time-ordered, so deltas are small — a few bytes each
//     instead of 8). Deltas are computed with wrapping uint64 arithmetic,
//     so decoding reproduces any int64 sequence exactly, ordered or not.
//   - addrs: raw 64-bit addresses (high-entropy, left uncompressed).
//   - writes: one bit per request.
//   - cores: one byte per request.
//
// At the generators' timestamp distribution this is ~12 B/request versus
// the 24 B in-memory Request (and the 18 B file record), and replaying it
// costs a few ns/request with zero allocations — an order of magnitude
// cheaper than regenerating the trace.
//
// A Snapshot is read-only after Record: any number of Stream cursors may
// replay it concurrently. Release returns its buffers to a pool for the
// next Record; the caller must guarantee no cursor is still in use
// (internal/tracecache's refcounting does exactly that).
type Snapshot struct {
	n int
	// All four columns are byte slices in exactly the MPS1 file layout
	// (addrs as little-endian uint64s, writes as little-endian uint64
	// bitset words), so a snapshot can be backed either by buffers Record
	// owns or — zero-copy — by an OpenMapped file mapping. In the LE word
	// layout, request i's write bit is bit i&7 of byte i>>3.
	times  []byte // uvarint deltas, first entry delta from time 0
	addrs  []byte // 8 bytes per request
	writes []byte // bitset, 8*ceil(n/64) bytes
	cores  []byte // one per request

	// mapped is the whole file mapping when the snapshot came from
	// OpenMapped; the columns alias it, Release unmaps it, and the
	// snapshot never enters the recording pool. path is the mapped file's
	// location, the anchor for plane sidecars ("" for heap snapshots).
	mapped []byte
	path   string

	// shared marks columns that alias one shared backing buffer
	// (ReadSnapshot slices all of them out of a single read buffer;
	// parseSnapshotBytes out of the caller's byte slice). Such a snapshot
	// must never enter the recording pool: Record reuses pooled column
	// slices in place, and overlapping columns would overwrite each
	// other. Release lets the GC reclaim these instead.
	shared bool

	// Predecode planes, one per address layout that asked (see Plane).
	// Guarded by planeMu; the plane buffers recycle with the snapshot.
	planeMu sync.Mutex
	planes  []plane

	// Decoded absolute timestamps (see TimeColumn), built lazily like the
	// planes and likewise recycled — or served from a mapped sidecar
	// (timeMapped non-nil), in which case the buffer aliases read-only
	// file memory and Release unmaps it. Guarded by timeMu.
	timeMu     sync.Mutex
	timeCol    []clock.Time
	timeValid  bool
	timeMapped []byte
}

// Decoded is one entry of a snapshot's predecode plane: the page/pod/
// home-frame/line decomposition of the request's address under one
// addr.Layout — including the home frame's channel/row placement, so an
// unmigrated access needs no address math at all — computed once per
// snapshot instead of once per simulation cell. 24 bytes, so a 256-entry
// batch (6 KB) stays L1-resident.
type Decoded struct {
	Page  uint64 // global page index (addr.PageOf)
	Frame uint32 // home frame within the owning pod (addr.Layout.HomeFrame)
	Row   uint32 // row within Chan holding the home frame (FrameLocation)
	Chan  uint16 // channel servicing the home frame (FrameLocation)
	Pod   uint16 // owning pod
	Line  uint8  // line index within the page, [0, addr.LinesPerPage)
}

// plane is one cached predecode plane and the layout it was decoded under.
// Record invalidates planes but keeps their buffers, so a pooled snapshot's
// next recording reuses the capacity. A plane served from a mapped sidecar
// (mapped non-nil) aliases read-only file memory: its buffer is never
// reused for computation, and Release unmaps it with the snapshot.
type plane struct {
	layout addr.Layout
	valid  bool
	dec    []Decoded
	mapped []byte
}

// snapPool recycles snapshot buffers across recordings, the same idiom as
// internal/tab: a matrix run records one snapshot per workload, and the
// next workload's Record appends into the previous one's released
// capacity instead of growing fresh multi-MB slices.
var snapPool = sync.Pool{New: func() any { return new(Snapshot) }}

// Record drains up to n requests from s into a packed Snapshot. It is the
// capture half of the record/replay pair; Snapshot.Stream is the replay
// half, and replaying yields the recorded requests bit-for-bit.
func Record(s Stream, n int) *Snapshot {
	snap := snapPool.Get().(*Snapshot)
	if cap(snap.addrs) < 8*n {
		snap.addrs = make([]byte, 0, 8*n)
		snap.writes = make([]byte, 0, 8*((n+63)/64))
		snap.cores = make([]byte, 0, n)
	}
	snap.times = snap.times[:0]
	snap.addrs = snap.addrs[:0]
	snap.writes = snap.writes[:0]
	snap.cores = snap.cores[:0]
	snap.n = 0
	for i := range snap.planes {
		snap.planes[i].valid = false
	}
	snap.timeValid = false

	var r Request
	var prev clock.Time
	var wword uint64
	for snap.n < n && s.Next(&r) {
		snap.times = binary.AppendUvarint(snap.times, uint64(r.Time)-uint64(prev))
		prev = r.Time
		snap.addrs = binary.LittleEndian.AppendUint64(snap.addrs, r.Addr)
		snap.cores = append(snap.cores, r.Core)
		if r.Write {
			wword |= 1 << (uint(snap.n) & 63)
		}
		snap.n++
		if snap.n&63 == 0 {
			snap.writes = binary.LittleEndian.AppendUint64(snap.writes, wword)
			wword = 0
		}
	}
	if snap.n&63 != 0 {
		snap.writes = binary.LittleEndian.AppendUint64(snap.writes, wword)
	}
	return snap
}

// Len returns the number of recorded requests.
func (s *Snapshot) Len() int { return s.n }

// Size returns the packed size in bytes, the resident cost of keeping the
// snapshot cached.
func (s *Snapshot) Size() int {
	return len(s.times) + len(s.addrs) + len(s.writes) + len(s.cores)
}

// Mapped reports whether the snapshot's columns alias a file mapping
// (OpenMapped) rather than heap buffers.
func (s *Snapshot) Mapped() bool { return s.mapped != nil }

// Release returns the snapshot's buffers to the recording pool — or, for
// a mapped snapshot, unmaps the file and discards the struct (mapped
// column memory belongs to the kernel, never to the pool). The caller
// must not use the snapshot — or any Stream cursor over it — afterwards.
func (s *Snapshot) Release() {
	for i := range s.planes {
		if m := s.planes[i].mapped; m != nil {
			s.planes[i] = plane{}
			munmapBytes(m)
		}
	}
	if m := s.timeMapped; m != nil {
		s.timeMapped, s.timeCol, s.timeValid = nil, nil, false
		munmapBytes(m)
	}
	if s.mapped != nil {
		m := s.mapped
		s.mapped, s.path, s.times, s.addrs, s.writes, s.cores, s.n = nil, "", nil, nil, nil, nil, 0
		munmapBytes(m)
		return
	}
	if s.shared {
		// Aliased columns (ReadSnapshot's single read buffer) would
		// corrupt the next Record if pooled; drop them to the GC.
		return
	}
	snapPool.Put(s)
}

// Stream returns a fresh replay cursor over the snapshot. Cursors are
// independent: concurrent cells replaying one snapshot each take their own.
func (s *Snapshot) Stream() *SnapshotStream {
	return &SnapshotStream{snap: s}
}

// decodePlaneEntry is the per-address decode a plane is made of, shared
// by Plane and the sidecar open's sample validation.
func decodePlaneEntry(a uint64, g *addr.Geom) Decoded {
	p := addr.PageOf(addr.Addr(a))
	pod, f := g.HomeFrame(p)
	loc := g.FrameLocation(pod, f, 0)
	return Decoded{
		Page:  uint64(p),
		Frame: uint32(f),
		Row:   uint32(loc.Row),
		Chan:  uint16(loc.Channel),
		Pod:   uint16(pod),
		Line:  uint8(uint64(addr.LineOf(addr.Addr(a))) % addr.LinesPerPage),
	}
}

// Plane returns the snapshot's predecode plane for g's layout, computing
// it on first request: one Decoded entry per recorded request. Planes are
// cached per layout (the experiment matrix mixes the standard two-level
// layout with single-level reference layouts), so all cells sharing a
// layout share one decode pass; computation is single-flight under the
// snapshot's lock. The returned slice is read-only and lives exactly as
// long as the snapshot: Release recycles the plane buffers with it.
//
// For a snapshot mapped from a store file (OpenMapped), the plane itself
// is store-backed: a valid sidecar next to the file maps in zero-copy,
// and a computed plane persists as one for the next open — so steady-
// state replay decodes each (workload, layout) pair once per store
// lifetime, not once per batch.
func (s *Snapshot) Plane(g *addr.Geom) []Decoded {
	s.planeMu.Lock()
	defer s.planeMu.Unlock()
	slot := -1
	for i := range s.planes {
		if s.planes[i].valid {
			if s.planes[i].layout == g.Layout {
				return s.planes[i].dec
			}
		} else if slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		s.planes = append(s.planes, plane{})
		slot = len(s.planes) - 1
	}
	pl := &s.planes[slot]
	if s.path != "" {
		if dec, m, ok := openPlaneSidecar(s.path, g, s.addrs, s.n); ok {
			*pl = plane{layout: g.Layout, valid: true, dec: dec, mapped: m}
			return dec
		}
	}
	dec := pl.dec
	if cap(dec) < s.n || pl.mapped != nil {
		dec = make([]Decoded, s.n)
	} else {
		dec = dec[:s.n]
	}
	for i := 0; i < s.n; i++ {
		a := binary.LittleEndian.Uint64(s.addrs[8*i:])
		dec[i] = decodePlaneEntry(a, g)
	}
	*pl = plane{layout: g.Layout, valid: true, dec: dec}
	if s.path != "" {
		writePlaneSidecar(s.path, g, dec)
	}
	return dec
}

// TimeColumn returns the snapshot's absolute timestamps as a dense column,
// decoding the varint deltas once on first request. Like Plane, the column
// is shared by every cursor over the snapshot (single-flight under a lock)
// and its buffer recycles with the snapshot, so the six mechanism cells
// replaying one workload pay one decode pass instead of six — and for a
// store-mapped snapshot the column is itself store-backed via a mapped
// sidecar, so steady-state opens pay none at all.
func (s *Snapshot) TimeColumn() []clock.Time {
	s.timeMu.Lock()
	defer s.timeMu.Unlock()
	if s.timeValid {
		return s.timeCol
	}
	if s.path != "" {
		if col, m, ok := openTimesSidecar(s.path, s.times, s.n); ok {
			s.timeCol, s.timeValid, s.timeMapped = col, true, m
			return col
		}
	}
	col := s.timeCol
	if cap(col) < s.n || s.timeMapped != nil {
		col = make([]clock.Time, s.n)
	} else {
		col = col[:s.n]
	}
	times := s.times
	off := 0
	var now clock.Time
	for i := range col {
		var delta uint64
		var shift uint
		for {
			b := times[off]
			off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		now += clock.Time(delta)
		col[i] = now
	}
	s.timeCol, s.timeValid = col, true
	if s.path != "" {
		writeTimesSidecar(s.path, col)
	}
	return col
}

// DecodedStream returns a replay cursor with the plane for g's layout and
// the decoded time column bound, so batch replay is pure column reads with
// no per-cell varint or address decoding.
func (s *Snapshot) DecodedStream(g *addr.Geom) *SnapshotStream {
	return &SnapshotStream{snap: s, dec: s.Plane(g), times: s.TimeColumn()}
}

// SnapshotStream replays a Snapshot as a trace.Stream. Next performs no
// allocation: it decodes one varint delta and indexes the columnar arrays.
// NextBatch amortizes the cursor bookkeeping over whole batches and, when a
// predecode plane is bound (DecodedStream/BindPlane), delivers each
// request's Decoded entry alongside it.
type SnapshotStream struct {
	snap  *Snapshot
	dec   []Decoded    // bound predecode plane, nil if none
	times []clock.Time // bound decoded time column, nil if none
	pos   int          // next request index
	off   int          // byte offset into snap.times (varint path only)
	now   clock.Time   // running timestamp (varint path only)
}

// Next implements Stream.
func (ss *SnapshotStream) Next(r *Request) bool {
	s := ss.snap
	if ss.pos >= s.n {
		return false
	}
	if ss.times != nil {
		r.Time = ss.times[ss.pos]
	} else {
		// Inline uvarint decode over the times column. The loop always
		// terminates within the recorded bytes: Record wrote one complete
		// varint per request.
		var delta uint64
		var shift uint
		for {
			b := s.times[ss.off]
			ss.off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		ss.now += clock.Time(delta)
		r.Time = ss.now
	}
	r.Addr = binary.LittleEndian.Uint64(s.addrs[8*ss.pos:])
	r.Core = s.cores[ss.pos]
	r.Write = s.writes[ss.pos>>3]>>(uint(ss.pos)&7)&1 != 0
	ss.pos++
	return true
}

// Reset rewinds the cursor to the beginning of the snapshot.
func (ss *SnapshotStream) Reset() {
	ss.pos, ss.off, ss.now = 0, 0, 0
}

// Snapshot returns the snapshot the cursor replays.
func (ss *SnapshotStream) Snapshot() *Snapshot { return ss.snap }

// BindPlane attaches a predecode plane to the cursor. The plane must be
// the cursor's snapshot's own (Snapshot.Plane), decoded under the same
// geometry the consumer services requests with; it panics on a
// length mismatch. Pass nil to unbind.
func (ss *SnapshotStream) BindPlane(dec []Decoded) {
	if dec != nil && len(dec) != ss.snap.n {
		panic(fmt.Sprintf("trace: plane length %d != snapshot length %d", len(dec), ss.snap.n))
	}
	ss.dec = dec
}

// HasPlane implements BatchStream: it reports whether NextBatch fills
// Decoded entries.
func (ss *SnapshotStream) HasPlane() bool { return ss.dec != nil }

// NextBatch implements BatchStream: it fills dst with up to len(dst)
// requests and returns how many were produced (0 at end of stream). When a
// plane is bound and `plane` is non-nil, plane[i] receives the predecoded
// form of dst[i]; plane must then be at least len(dst) long. The request
// sequence is identical to repeated Next calls, and the two may be mixed
// on one cursor.
func (ss *SnapshotStream) NextBatch(dst []Request, plane []Decoded) int {
	base := ss.pos
	n := ss.fillBatch(dst)
	if n > 0 && ss.dec != nil && plane != nil {
		copy(plane[:n], ss.dec[base:base+n])
	}
	return n
}

// NextBatchShared is NextBatch without the plane copy: the batch's decoded
// entries come back as a read-only subslice of the bound plane (nil when no
// plane is bound). The engine's batched loop uses this form.
func (ss *SnapshotStream) NextBatchShared(dst []Request) (int, []Decoded) {
	base := ss.pos
	n := ss.fillBatch(dst)
	if n == 0 || ss.dec == nil {
		return n, nil
	}
	return n, ss.dec[base : base+n]
}

// SpanColumns is a zero-copy columnar view of a contiguous run of
// requests: the decoded arrival times and predecode plane sliced to the
// span, plus accessors over the snapshot's packed write-bit and address
// columns. It is what the engine's column path consumes instead of
// materialized Request structs — every field a mechanism needs is already
// a decoded column, so building 24-byte Requests per access is pure
// overhead there.
type SpanColumns struct {
	Times []clock.Time // arrival times, len = span
	Dec   []Decoded    // predecode plane entries, len = span
	Cores []byte       // issuing cores, len = span

	writes []byte // whole write bitset (LE word layout)
	addrs  []byte // whole address column (LE u64s)
	base   int    // global index of Times[0]
}

// Len returns the number of requests in the span.
func (sc *SpanColumns) Len() int { return len(sc.Times) }

// Write reports whether request i of the span is a write.
func (sc *SpanColumns) Write(i int) bool {
	p := sc.base + i
	return sc.writes[p>>3]>>(uint(p)&7)&1 != 0
}

// Addr returns the address of request i of the span.
func (sc *SpanColumns) Addr(i int) uint64 {
	return binary.LittleEndian.Uint64(sc.addrs[8*(sc.base+i):])
}

// Request materializes request i of the span, for per-request fallback
// paths inside column accessors (bookkeeping-cache configurations).
func (sc *SpanColumns) Request(i int) Request {
	return Request{
		Time:  sc.Times[i],
		Addr:  sc.Addr(i),
		Write: sc.Write(i),
		Core:  sc.Cores[i],
	}
}

// ColumnStream is implemented by streams that can serve their requests as
// zero-copy spans of decoded columns (SpanColumns). HasColumns reports
// whether NextSpan can produce spans at all; NextSpan returns the next at
// most max requests (max <= 0 for no cap) as a span, empty at end of
// stream, advancing the same cursor Next and NextBatch use.
type ColumnStream interface {
	HasColumns() bool
	NextSpan(max int) SpanColumns
}

// HasColumns implements ColumnStream: spans require both the predecode
// plane and the decoded time column (DecodedStream binds both).
func (ss *SnapshotStream) HasColumns() bool { return ss.dec != nil && ss.times != nil }

// NextSpan implements ColumnStream.
func (ss *SnapshotStream) NextSpan(max int) SpanColumns {
	s := ss.snap
	n := s.n - ss.pos
	if n <= 0 || !ss.HasColumns() {
		return SpanColumns{}
	}
	if max > 0 && n > max {
		n = max
	}
	base := ss.pos
	ss.pos = base + n
	return SpanColumns{
		Times:  ss.times[base : base+n],
		Dec:    ss.dec[base : base+n],
		Cores:  s.cores[base : base+n],
		writes: s.writes,
		addrs:  s.addrs,
		base:   base,
	}
}

// fillBatch advances the cursor by up to len(dst) requests, writing them
// into dst, and returns the count.
func (ss *SnapshotStream) fillBatch(dst []Request) int {
	s := ss.snap
	n := s.n - ss.pos
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	base := ss.pos
	// Hoist the column slices so the per-request body indexes with
	// compiler-visible bounds. Addr reads go through the little-endian
	// byte column: byte-aligned loads, safe on mapped memory under the
	// race detector's checkptr.
	addrs := s.addrs[8*base : 8*(base+n)]
	cores := s.cores[base : base+n]
	writes := s.writes
	if ss.times != nil {
		// Decoded time column bound: the batch is pure column reads.
		ts := ss.times[base : base+n]
		for i := 0; i < n; i++ {
			p := base + i
			dst[i] = Request{
				Addr:  binary.LittleEndian.Uint64(addrs[8*i:]),
				Time:  ts[i],
				Write: writes[p>>3]>>(uint(p)&7)&1 != 0,
				Core:  cores[i],
			}
		}
		ss.pos = base + n
		return n
	}
	// Varint path: the same inlined delta decode Next uses.
	times := s.times
	off, now := ss.off, ss.now
	for i := 0; i < n; i++ {
		var delta uint64
		var shift uint
		for {
			b := times[off]
			off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		now += clock.Time(delta)
		p := base + i
		dst[i] = Request{
			Addr:  binary.LittleEndian.Uint64(addrs[8*i:]),
			Time:  now,
			Write: writes[p>>3]>>(uint(p)&7)&1 != 0,
			Core:  cores[i],
		}
	}
	ss.pos, ss.off, ss.now = base+n, off, now
	return n
}

// Snapshot file format (the -trace-in/-trace-out persistence of
// cmd/mempodsim):
//
//	header:  magic "MPS1" (4 bytes), name length (uint16 LE), name bytes,
//	         request count (uint64 LE), times length (uint64 LE)
//	columns: times (raw varint bytes), addrs (uint64 LE each),
//	         writes bitset (uint64 LE words), cores (raw bytes)
const snapMagic = "MPS1"

// WriteSnapshot persists a snapshot, labelled with the workload name that
// produced it, in the packed columnar format.
func WriteSnapshot(w io.Writer, name string, s *Snapshot) error {
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: snapshot name %q too long", name)
	}
	hdr := make([]byte, 0, 4+2+len(name)+8+8)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.n))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(s.times)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	// The columns are already in file layout; write them through directly.
	for _, col := range [][]byte{s.times, s.addrs, s.writes, s.cores} {
		if _, err := w.Write(col); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and returns it
// with its recorded workload name.
func ReadSnapshot(r io.Reader) (*Snapshot, string, error) {
	var fixed [4 + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, "", fmt.Errorf("trace: reading snapshot header: %w", err)
	}
	if string(fixed[:4]) != snapMagic {
		return nil, "", fmt.Errorf("%w: bad snapshot magic %q", ErrBadTrace, fixed[:4])
	}
	nameBuf := make([]byte, binary.LittleEndian.Uint16(fixed[4:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot name: %v", ErrBadTrace, err)
	}
	var counts [16]byte
	if _, err := io.ReadFull(r, counts[:]); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot header: %v", ErrBadTrace, err)
	}
	n := binary.LittleEndian.Uint64(counts[:8])
	timesLen := binary.LittleEndian.Uint64(counts[8:])
	const maxReasonable = 1 << 32
	if n > maxReasonable || timesLen > 10*n+16 {
		return nil, "", fmt.Errorf("%w: implausible snapshot sizes (n=%d, times=%d)", ErrBadTrace, n, timesLen)
	}
	if timesLen < n {
		// Every request costs at least one varint byte.
		return nil, "", fmt.Errorf("%w: times column shorter than request count", ErrBadTrace)
	}
	s := &Snapshot{n: int(n), shared: true}
	// Column bytes are buffered incrementally (bytes.Buffer grows as data
	// arrives), so a corrupt header cannot demand an enormous up-front
	// allocation — the same defense as the MPT1 reader.
	var err error
	if s.times, err = readColumn(r, int64(timesLen)); err != nil {
		return nil, "", fmt.Errorf("%w: truncated times column: %v", ErrBadTrace, err)
	}
	words := int(n+63) / 64
	buf, err := readColumn(r, 8*int64(n)+8*int64(words)+int64(n))
	if err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot columns: %v", ErrBadTrace, err)
	}
	// The columns are stored in file layout, so they slice straight out of
	// the read buffer with no re-encoding.
	s.addrs = buf[:8*int(n)]
	s.writes = buf[8*int(n) : 8*int(n)+8*words]
	s.cores = buf[8*int(n)+8*words:]
	if err := validateTimes(s.times, n); err != nil {
		return nil, "", err
	}
	return s, string(nameBuf), nil
}

// validateTimes checks that a times column holds exactly n complete
// varints with no trailing bytes, so a replay cursor can never index past
// the slice.
func validateTimes(times []byte, n uint64) error {
	off := 0
	for i := uint64(0); i < n; i++ {
		_, vn := binary.Uvarint(times[off:])
		if vn <= 0 {
			return fmt.Errorf("%w: corrupt times column at request %d", ErrBadTrace, i)
		}
		off += vn
	}
	if off != len(times) {
		return fmt.Errorf("%w: %d trailing bytes in times column", ErrBadTrace, len(times)-off)
	}
	return nil
}

// readColumn reads exactly n bytes, growing the buffer only as bytes
// actually arrive.
func readColumn(r io.Reader, n int64) ([]byte, error) {
	var b bytes.Buffer
	if _, err := io.CopyN(&b, r, n); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
