package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/addr"
	"repro/internal/clock"
)

// Snapshot is a packed, immutable recording of a trace: the generate-once
// form that every experiment cell replays instead of re-running the
// workload generators. The encoding is columnar so each field packs to its
// entropy rather than its struct size:
//
//   - times: unsigned-varint deltas between consecutive timestamps (the
//     stream is time-ordered, so deltas are small — a few bytes each
//     instead of 8). Deltas are computed with wrapping uint64 arithmetic,
//     so decoding reproduces any int64 sequence exactly, ordered or not.
//   - addrs: raw 64-bit addresses (high-entropy, left uncompressed).
//   - writes: one bit per request.
//   - cores: one byte per request.
//
// At the generators' timestamp distribution this is ~12 B/request versus
// the 24 B in-memory Request (and the 18 B file record), and replaying it
// costs a few ns/request with zero allocations — an order of magnitude
// cheaper than regenerating the trace.
//
// A Snapshot is read-only after Record: any number of Stream cursors may
// replay it concurrently. Release returns its buffers to a pool for the
// next Record; the caller must guarantee no cursor is still in use
// (internal/tracecache's refcounting does exactly that).
type Snapshot struct {
	n      int
	times  []byte   // uvarint deltas, first entry delta from time 0
	addrs  []uint64 // one per request
	writes []uint64 // bitset, one bit per request
	cores  []byte   // one per request

	// Predecode planes, one per address layout that asked (see Plane).
	// Guarded by planeMu; the plane buffers recycle with the snapshot.
	planeMu sync.Mutex
	planes  []plane

	// Decoded absolute timestamps (see TimeColumn), built lazily like the
	// planes and likewise recycled. Guarded by timeMu.
	timeMu    sync.Mutex
	timeCol   []clock.Time
	timeValid bool
}

// Decoded is one entry of a snapshot's predecode plane: the page/pod/
// home-frame/line decomposition of the request's address under one
// addr.Layout — including the home frame's channel/row placement, so an
// unmigrated access needs no address math at all — computed once per
// snapshot instead of once per simulation cell. 24 bytes, so a 256-entry
// batch (6 KB) stays L1-resident.
type Decoded struct {
	Page  uint64 // global page index (addr.PageOf)
	Frame uint32 // home frame within the owning pod (addr.Layout.HomeFrame)
	Row   uint32 // row within Chan holding the home frame (FrameLocation)
	Chan  uint16 // channel servicing the home frame (FrameLocation)
	Pod   uint16 // owning pod
	Line  uint8  // line index within the page, [0, addr.LinesPerPage)
}

// plane is one cached predecode plane and the layout it was decoded under.
// Record invalidates planes but keeps their buffers, so a pooled snapshot's
// next recording reuses the capacity.
type plane struct {
	layout addr.Layout
	valid  bool
	dec    []Decoded
}

// snapPool recycles snapshot buffers across recordings, the same idiom as
// internal/tab: a matrix run records one snapshot per workload, and the
// next workload's Record appends into the previous one's released
// capacity instead of growing fresh multi-MB slices.
var snapPool = sync.Pool{New: func() any { return new(Snapshot) }}

// Record drains up to n requests from s into a packed Snapshot. It is the
// capture half of the record/replay pair; Snapshot.Stream is the replay
// half, and replaying yields the recorded requests bit-for-bit.
func Record(s Stream, n int) *Snapshot {
	snap := snapPool.Get().(*Snapshot)
	if cap(snap.addrs) < n {
		snap.addrs = make([]uint64, 0, n)
		snap.writes = make([]uint64, 0, (n+63)/64)
		snap.cores = make([]byte, 0, n)
	}
	snap.times = snap.times[:0]
	snap.addrs = snap.addrs[:0]
	snap.writes = snap.writes[:0]
	snap.cores = snap.cores[:0]
	snap.n = 0
	for i := range snap.planes {
		snap.planes[i].valid = false
	}
	snap.timeValid = false

	var r Request
	var prev clock.Time
	var wword uint64
	for snap.n < n && s.Next(&r) {
		snap.times = binary.AppendUvarint(snap.times, uint64(r.Time)-uint64(prev))
		prev = r.Time
		snap.addrs = append(snap.addrs, r.Addr)
		snap.cores = append(snap.cores, r.Core)
		if r.Write {
			wword |= 1 << (uint(snap.n) & 63)
		}
		snap.n++
		if snap.n&63 == 0 {
			snap.writes = append(snap.writes, wword)
			wword = 0
		}
	}
	if snap.n&63 != 0 {
		snap.writes = append(snap.writes, wword)
	}
	return snap
}

// Len returns the number of recorded requests.
func (s *Snapshot) Len() int { return s.n }

// Size returns the packed size in bytes, the resident cost of keeping the
// snapshot cached.
func (s *Snapshot) Size() int {
	return len(s.times) + 8*len(s.addrs) + 8*len(s.writes) + len(s.cores)
}

// Release returns the snapshot's buffers to the recording pool. The caller
// must not use the snapshot — or any Stream cursor over it — afterwards.
func (s *Snapshot) Release() {
	snapPool.Put(s)
}

// Stream returns a fresh replay cursor over the snapshot. Cursors are
// independent: concurrent cells replaying one snapshot each take their own.
func (s *Snapshot) Stream() *SnapshotStream {
	return &SnapshotStream{snap: s}
}

// Plane returns the snapshot's predecode plane for g's layout, computing
// it on first request: one Decoded entry per recorded request. Planes are
// cached per layout (the experiment matrix mixes the standard two-level
// layout with single-level reference layouts), so all cells sharing a
// layout share one decode pass; computation is single-flight under the
// snapshot's lock. The returned slice is read-only and lives exactly as
// long as the snapshot: Release recycles the plane buffers with it.
func (s *Snapshot) Plane(g *addr.Geom) []Decoded {
	s.planeMu.Lock()
	defer s.planeMu.Unlock()
	slot := -1
	for i := range s.planes {
		if s.planes[i].valid {
			if s.planes[i].layout == g.Layout {
				return s.planes[i].dec
			}
		} else if slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		s.planes = append(s.planes, plane{})
		slot = len(s.planes) - 1
	}
	pl := &s.planes[slot]
	dec := pl.dec
	if cap(dec) < s.n {
		dec = make([]Decoded, s.n)
	} else {
		dec = dec[:s.n]
	}
	for i, a := range s.addrs {
		p := addr.PageOf(addr.Addr(a))
		pod, f := g.HomeFrame(p)
		loc := g.FrameLocation(pod, f, 0)
		dec[i] = Decoded{
			Page:  uint64(p),
			Frame: uint32(f),
			Row:   uint32(loc.Row),
			Chan:  uint16(loc.Channel),
			Pod:   uint16(pod),
			Line:  uint8(uint64(addr.LineOf(addr.Addr(a))) % addr.LinesPerPage),
		}
	}
	pl.dec, pl.layout, pl.valid = dec, g.Layout, true
	return dec
}

// TimeColumn returns the snapshot's absolute timestamps as a dense column,
// decoding the varint deltas once on first request. Like Plane, the column
// is shared by every cursor over the snapshot (single-flight under a lock)
// and its buffer recycles with the snapshot, so the six mechanism cells
// replaying one workload pay one decode pass instead of six.
func (s *Snapshot) TimeColumn() []clock.Time {
	s.timeMu.Lock()
	defer s.timeMu.Unlock()
	if s.timeValid {
		return s.timeCol
	}
	col := s.timeCol
	if cap(col) < s.n {
		col = make([]clock.Time, s.n)
	} else {
		col = col[:s.n]
	}
	times := s.times
	off := 0
	var now clock.Time
	for i := range col {
		var delta uint64
		var shift uint
		for {
			b := times[off]
			off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		now += clock.Time(delta)
		col[i] = now
	}
	s.timeCol, s.timeValid = col, true
	return col
}

// DecodedStream returns a replay cursor with the plane for g's layout and
// the decoded time column bound, so batch replay is pure column reads with
// no per-cell varint or address decoding.
func (s *Snapshot) DecodedStream(g *addr.Geom) *SnapshotStream {
	return &SnapshotStream{snap: s, dec: s.Plane(g), times: s.TimeColumn()}
}

// SnapshotStream replays a Snapshot as a trace.Stream. Next performs no
// allocation: it decodes one varint delta and indexes the columnar arrays.
// NextBatch amortizes the cursor bookkeeping over whole batches and, when a
// predecode plane is bound (DecodedStream/BindPlane), delivers each
// request's Decoded entry alongside it.
type SnapshotStream struct {
	snap  *Snapshot
	dec   []Decoded    // bound predecode plane, nil if none
	times []clock.Time // bound decoded time column, nil if none
	pos   int          // next request index
	off   int          // byte offset into snap.times (varint path only)
	now   clock.Time   // running timestamp (varint path only)
}

// Next implements Stream.
func (ss *SnapshotStream) Next(r *Request) bool {
	s := ss.snap
	if ss.pos >= s.n {
		return false
	}
	if ss.times != nil {
		r.Time = ss.times[ss.pos]
	} else {
		// Inline uvarint decode over the times column. The loop always
		// terminates within the recorded bytes: Record wrote one complete
		// varint per request.
		var delta uint64
		var shift uint
		for {
			b := s.times[ss.off]
			ss.off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		ss.now += clock.Time(delta)
		r.Time = ss.now
	}
	r.Addr = s.addrs[ss.pos]
	r.Core = s.cores[ss.pos]
	r.Write = s.writes[ss.pos>>6]&(1<<(uint(ss.pos)&63)) != 0
	ss.pos++
	return true
}

// Reset rewinds the cursor to the beginning of the snapshot.
func (ss *SnapshotStream) Reset() {
	ss.pos, ss.off, ss.now = 0, 0, 0
}

// Snapshot returns the snapshot the cursor replays.
func (ss *SnapshotStream) Snapshot() *Snapshot { return ss.snap }

// BindPlane attaches a predecode plane to the cursor. The plane must be
// the cursor's snapshot's own (Snapshot.Plane), decoded under the same
// geometry the consumer services requests with; it panics on a
// length mismatch. Pass nil to unbind.
func (ss *SnapshotStream) BindPlane(dec []Decoded) {
	if dec != nil && len(dec) != ss.snap.n {
		panic(fmt.Sprintf("trace: plane length %d != snapshot length %d", len(dec), ss.snap.n))
	}
	ss.dec = dec
}

// HasPlane implements BatchStream: it reports whether NextBatch fills
// Decoded entries.
func (ss *SnapshotStream) HasPlane() bool { return ss.dec != nil }

// NextBatch implements BatchStream: it fills dst with up to len(dst)
// requests and returns how many were produced (0 at end of stream). When a
// plane is bound and `plane` is non-nil, plane[i] receives the predecoded
// form of dst[i]; plane must then be at least len(dst) long. The request
// sequence is identical to repeated Next calls, and the two may be mixed
// on one cursor.
func (ss *SnapshotStream) NextBatch(dst []Request, plane []Decoded) int {
	base := ss.pos
	n := ss.fillBatch(dst)
	if n > 0 && ss.dec != nil && plane != nil {
		copy(plane[:n], ss.dec[base:base+n])
	}
	return n
}

// NextBatchShared is NextBatch without the plane copy: the batch's decoded
// entries come back as a read-only subslice of the bound plane (nil when no
// plane is bound). The engine's batched loop uses this form.
func (ss *SnapshotStream) NextBatchShared(dst []Request) (int, []Decoded) {
	base := ss.pos
	n := ss.fillBatch(dst)
	if n == 0 || ss.dec == nil {
		return n, nil
	}
	return n, ss.dec[base : base+n]
}

// fillBatch advances the cursor by up to len(dst) requests, writing them
// into dst, and returns the count.
func (ss *SnapshotStream) fillBatch(dst []Request) int {
	s := ss.snap
	n := s.n - ss.pos
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	base := ss.pos
	// Hoist the column slices so the per-request body indexes with
	// compiler-visible bounds.
	addrs := s.addrs[base : base+n]
	cores := s.cores[base : base+n]
	writes := s.writes
	if ss.times != nil {
		// Decoded time column bound: the batch is pure column reads.
		ts := ss.times[base : base+n]
		for i := 0; i < n; i++ {
			p := base + i
			dst[i] = Request{
				Addr:  addrs[i],
				Time:  ts[i],
				Write: writes[p>>6]&(1<<(uint(p)&63)) != 0,
				Core:  cores[i],
			}
		}
		ss.pos = base + n
		return n
	}
	// Varint path: the same inlined delta decode Next uses.
	times := s.times
	off, now := ss.off, ss.now
	for i := 0; i < n; i++ {
		var delta uint64
		var shift uint
		for {
			b := times[off]
			off++
			delta |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		now += clock.Time(delta)
		p := base + i
		dst[i] = Request{
			Addr:  addrs[i],
			Time:  now,
			Write: writes[p>>6]&(1<<(uint(p)&63)) != 0,
			Core:  cores[i],
		}
	}
	ss.pos, ss.off, ss.now = base+n, off, now
	return n
}

// Snapshot file format (the -trace-in/-trace-out persistence of
// cmd/mempodsim):
//
//	header:  magic "MPS1" (4 bytes), name length (uint16 LE), name bytes,
//	         request count (uint64 LE), times length (uint64 LE)
//	columns: times (raw varint bytes), addrs (uint64 LE each),
//	         writes bitset (uint64 LE words), cores (raw bytes)
const snapMagic = "MPS1"

// WriteSnapshot persists a snapshot, labelled with the workload name that
// produced it, in the packed columnar format.
func WriteSnapshot(w io.Writer, name string, s *Snapshot) error {
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: snapshot name %q too long", name)
	}
	hdr := make([]byte, 0, 4+2+len(name)+8+8)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.n))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(s.times)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(s.times); err != nil {
		return err
	}
	buf := make([]byte, 0, 8*len(s.addrs))
	for _, a := range s.addrs {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	for _, ww := range s.writes {
		buf = binary.LittleEndian.AppendUint64(buf, ww)
	}
	buf = append(buf, s.cores...)
	_, err := w.Write(buf)
	return err
}

// ReadSnapshot loads a snapshot written by WriteSnapshot and returns it
// with its recorded workload name.
func ReadSnapshot(r io.Reader) (*Snapshot, string, error) {
	var fixed [4 + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, "", fmt.Errorf("trace: reading snapshot header: %w", err)
	}
	if string(fixed[:4]) != snapMagic {
		return nil, "", fmt.Errorf("%w: bad snapshot magic %q", ErrBadTrace, fixed[:4])
	}
	nameBuf := make([]byte, binary.LittleEndian.Uint16(fixed[4:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot name: %v", ErrBadTrace, err)
	}
	var counts [16]byte
	if _, err := io.ReadFull(r, counts[:]); err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot header: %v", ErrBadTrace, err)
	}
	n := binary.LittleEndian.Uint64(counts[:8])
	timesLen := binary.LittleEndian.Uint64(counts[8:])
	const maxReasonable = 1 << 32
	if n > maxReasonable || timesLen > 10*n+16 {
		return nil, "", fmt.Errorf("%w: implausible snapshot sizes (n=%d, times=%d)", ErrBadTrace, n, timesLen)
	}
	if timesLen < n {
		// Every request costs at least one varint byte.
		return nil, "", fmt.Errorf("%w: times column shorter than request count", ErrBadTrace)
	}
	s := &Snapshot{n: int(n)}
	// Column bytes are buffered incrementally (bytes.Buffer grows as data
	// arrives), so a corrupt header cannot demand an enormous up-front
	// allocation — the same defense as the MPT1 reader.
	var err error
	if s.times, err = readColumn(r, int64(timesLen)); err != nil {
		return nil, "", fmt.Errorf("%w: truncated times column: %v", ErrBadTrace, err)
	}
	words := int(n+63) / 64
	buf, err := readColumn(r, 8*int64(n)+8*int64(words)+int64(n))
	if err != nil {
		return nil, "", fmt.Errorf("%w: truncated snapshot columns: %v", ErrBadTrace, err)
	}
	s.addrs = make([]uint64, n)
	for i := range s.addrs {
		s.addrs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	buf = buf[8*n:]
	s.writes = make([]uint64, words)
	for i := range s.writes {
		s.writes[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	s.cores = buf[8*words:]
	// Validate the times column: exactly n complete varints, no trailing
	// bytes, so a replay cursor can never index past the slice.
	off := 0
	for i := uint64(0); i < n; i++ {
		_, vn := binary.Uvarint(s.times[off:])
		if vn <= 0 {
			return nil, "", fmt.Errorf("%w: corrupt times column at request %d", ErrBadTrace, i)
		}
		off += vn
	}
	if off != len(s.times) {
		return nil, "", fmt.Errorf("%w: %d trailing bytes in times column", ErrBadTrace, len(s.times)-off)
	}
	return s, string(nameBuf), nil
}

// readColumn reads exactly n bytes, growing the buffer only as bytes
// actually arrive.
func readColumn(r io.Reader, n int64) ([]byte, error) {
	var b bytes.Buffer
	if _, err := io.CopyN(&b, r, n); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
