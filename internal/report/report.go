// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats cmd/experiments and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	ID      string // stable identifier, e.g. "fig8"
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns an empty table.
func New(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// Add appends one row. Short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends one row of formatted values: each value is rendered with
// %v, except float64 which uses %.3f.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Add(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
