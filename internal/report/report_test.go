package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("fig0", "demo table", "name", "value", "note")
	t.Add("alpha", "1.5", "first")
	t.Add("beta", "2")
	t.Addf("gamma", 3.14159, 42)
	return t
}

func TestString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "== fig0: demo table ==") {
		t.Errorf("missing header:\n%s", s)
	}
	for _, want := range []string{"alpha", "beta", "gamma", "3.142", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	// Columns align: every data line has the same prefix width for col 2.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 1+1+1+3 {
		t.Errorf("line count %d", len(lines))
	}
}

func TestShortRowsPadded(t *testing.T) {
	tab := sample()
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Errorf("row %v not padded to %d cells", row, len(tab.Columns))
		}
	}
}

func TestCSV(t *testing.T) {
	tab := New("x", "t", "a", "b")
	tab.Add("plain", `has "quotes", commas`)
	csv := tab.CSV()
	want := "a,b\nplain,\"has \"\"quotes\"\", commas\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "| name | value | note |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|---|") {
		t.Errorf("markdown separator wrong:\n%s", md)
	}
	if !strings.Contains(md, "| alpha | 1.5 | first |") {
		t.Errorf("markdown row wrong:\n%s", md)
	}
}

func TestAddfFormats(t *testing.T) {
	tab := New("x", "t", "a", "b", "c")
	tab.Addf("s", 1.0, uint64(7))
	row := tab.Rows[0]
	if row[0] != "s" || row[1] != "1.000" || row[2] != "7" {
		t.Errorf("Addf row = %v", row)
	}
}
