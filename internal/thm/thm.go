// Package thm models the Transparent Hardware Management baseline (Sim et
// al., MICRO 2014) as the MemPod paper evaluates it (§2, §4, §6).
//
// Memory is divided into segments of one fast page plus R slow pages
// (R = 8 at the paper's 1:8 capacity ratio). Migration is allowed only
// within a segment: any slow member may be swapped into the segment's
// single fast slot. One 8-bit competing counter per segment arbitrates: a
// challenger slow page gains the counter on its own accesses and loses it
// to accesses of other pages; when the counter crosses the threshold the
// challenger swaps into the fast slot. Swaps are threshold-triggered
// events, not interval work.
package thm

import (
	"container/heap"
	"fmt"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/trace"
)

// Config holds THM's parameters.
type Config struct {
	// Threshold is the competing-counter value that triggers a swap.
	Threshold uint8
	// CounterBits bounds the competing counter (paper: 8 bits/segment).
	CounterBits int
	// CacheBytes/CacheWays model the on-chip SRT cache holding segment
	// state (counters + remap); 0 disables the cache model.
	CacheBytes int
	CacheWays  int
}

// DefaultConfig returns the THM parameters used in the comparison.
func DefaultConfig() Config {
	return Config{Threshold: 4, CounterBits: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CounterBits <= 0 || c.CounterBits > 8:
		return fmt.Errorf("thm: counter width %d", c.CounterBits)
	case c.Threshold == 0 || uint64(c.Threshold) > (1<<c.CounterBits)-1:
		return fmt.Errorf("thm: threshold %d does not fit %d-bit counter", c.Threshold, c.CounterBits)
	case c.CacheBytes < 0:
		return fmt.Errorf("thm: cache %d bytes", c.CacheBytes)
	}
	return nil
}

// segment packs one segment's state: a 9-slot permutation (4 bits per
// slot: which member occupies it), the challenger member, and the
// competing counter.
//
// Members: 0 is the segment's fast page; 1..R are its slow pages. Slots
// use the same numbering for positions. The permutation is the identity
// until a swap occurs.
type segment struct {
	slots      uint64 // 4 bits per slot, slot 0 = fast slot
	counter    uint8
	challenger uint8 // member index; 0 = none
}

const noChallenger = 0

func identitySlots(members int) uint64 {
	var s uint64
	for i := 0; i < members; i++ {
		s |= uint64(i) << (4 * i)
	}
	return s
}

func (s *segment) memberAt(slot int) int {
	return int(s.slots >> (4 * slot) & 0xF)
}

func (s *segment) slotOf(member, members int) int {
	for slot := 0; slot < members; slot++ {
		if s.memberAt(slot) == member {
			return slot
		}
	}
	panic("thm: corrupt segment permutation")
}

func (s *segment) swapSlots(a, b int) {
	ma, mb := uint64(s.memberAt(a)), uint64(s.memberAt(b))
	s.slots &^= 0xF<<(4*a) | 0xF<<(4*b)
	s.slots |= mb<<(4*a) | ma<<(4*b)
}

// segmentStateBytes models the SRT entry size for the cache: 8-bit
// counter + 4-bit challenger + 36-bit permutation ≈ 6 bytes, so ten
// segments share one 64 B block.
const segmentsPerBlock = 10

// Swap copies are issued in paced chunks so they interleave with demand
// traffic at the memory controllers (see mech.SwapGlobalChunk).
const (
	swapChunks    = 8
	linesPerChunk = addr.LinesPerPage / swapChunks
	chunkGap      = 100 * clock.Nanosecond
)

// swapChunk is one queued unit of copy work between two physical slots.
// Swaps overlap freely (THM has no central migration engine); chunks issue
// at their paced start times, ordered globally by a min-heap so channel
// traffic stays in time order.
type swapChunk struct {
	start        clock.Time
	slotA, slotB addr.Page // physical page slots being exchanged
	lockA, lockB addr.Page // data pages locked for the copy's duration
	chunk        uint8
}

// chunkHeap orders swap chunks by start time.
type chunkHeap []swapChunk

func (h chunkHeap) Len() int           { return len(h) }
func (h chunkHeap) Less(i, j int) bool { return h[i].start < h[j].start }
func (h chunkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *chunkHeap) Push(x any)        { *h = append(*h, x.(swapChunk)) }
func (h *chunkHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// THM implements mech.Mechanism.
type THM struct {
	cfg      Config
	backend  *mech.Backend
	layout   addr.Layout
	segments []segment
	members  int                   // 1 + slow:fast ratio
	locks    map[uint64]clock.Time // flat page -> swap completion
	cache    *mech.Cache
	touch    mech.TouchFilter
	stats    mech.MigStats
	maxCount uint8

	queue chunkHeap
}

// New builds a THM over the backend's two-level memory. The slow capacity
// must be a multiple of the fast capacity (the paper's ratio is 8).
func New(cfg Config, b *mech.Backend) (*THM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("thm: layout is not two-level")
	}
	if l.SlowBytes%l.FastBytes != 0 {
		return nil, fmt.Errorf("thm: slow capacity not a multiple of fast capacity")
	}
	ratio := int(l.SlowBytes / l.FastBytes)
	if ratio+1 > 16 {
		return nil, fmt.Errorf("thm: ratio %d exceeds 4-bit member encoding", ratio)
	}
	t := &THM{
		cfg:      cfg,
		backend:  b,
		layout:   l,
		segments: make([]segment, l.FastPages()),
		members:  ratio + 1,
		locks:    make(map[uint64]clock.Time),
		maxCount: uint8(1)<<cfg.CounterBits - 1,
	}
	id := identitySlots(t.members)
	for i := range t.segments {
		t.segments[i].slots = id
	}
	if cfg.CacheBytes > 0 {
		if cfg.CacheWays <= 0 {
			cfg.CacheWays = 8
		}
		t.cache = mech.NewCache(cfg.CacheBytes, cfg.CacheWays)
	}
	return t, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *THM {
	t, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements mech.Mechanism.
func (t *THM) Name() string { return "THM" }

// Stats implements mech.Mechanism.
func (t *THM) Stats() mech.MigStats { return t.stats }

// segmentOf decomposes a flat page into (segment, member).
func (t *THM) segmentOf(p addr.Page) (seg uint64, member int) {
	fast := uint64(t.layout.FastPages())
	if uint64(p) < fast {
		return uint64(p), 0
	}
	s := uint64(p) - fast
	return s % fast, 1 + int(s/fast)
}

// pageOf is the inverse of segmentOf.
func (t *THM) pageOf(seg uint64, member int) addr.Page {
	if member == 0 {
		return addr.Page(seg)
	}
	fast := uint64(t.layout.FastPages())
	return addr.Page(fast + seg + uint64(member-1)*fast)
}

// Access implements mech.Mechanism.
func (t *THM) Access(r *trace.Request, at clock.Time) clock.Time {
	t.drain(at)
	page := addr.PageOf(addr.Addr(r.Addr))
	seg, member := t.segmentOf(page)
	s := &t.segments[seg]

	start := at
	if t.cache != nil {
		block := seg / segmentsPerBlock
		if t.cache.Access(block) {
			t.stats.CacheHits++
		} else {
			t.stats.CacheMisses++
			start = t.backend.BookkeepingRead(int(seg%uint64(t.layout.NumPods)), block, start)
		}
	}
	var lockEnd clock.Time
	if end, locked := t.locks[uint64(page)]; locked {
		if end > start {
			lockEnd = end
			t.stats.LockStalls++
		} else {
			delete(t.locks, uint64(page))
		}
	}

	slot := s.slotOf(member, t.members)
	// Competing-counter update, once per page touch; may trigger a swap
	// *after* this access.
	trigger := false
	if t.touch.Touch(r.Core, uint64(page)) {
		trigger = t.updateCounter(s, member, slot)
	}

	// Service the request at the member's current slot.
	slotPage := t.pageOf(seg, slot)
	pod, f := t.layout.HomeFrame(slotPage)
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	done := clock.Max(t.backend.Line(pod, f, li, r.Write, start), lockEnd)

	if trigger {
		t.swap(seg, s, slot, start)
	}
	return done
}

// updateCounter applies THM's competing-counter policy for an access by
// `member` currently residing in `slot`, and reports whether the member
// just won the fast slot.
func (t *THM) updateCounter(s *segment, member, slot int) bool {
	if slot == 0 {
		// The fast resident defends: its accesses wear the challenger down.
		if s.counter > 0 {
			s.counter--
			if s.counter == 0 {
				s.challenger = noChallenger
			}
		}
		return false
	}
	switch {
	case int(s.challenger) == member:
		if s.counter < t.maxCount {
			s.counter++
		}
		if s.counter >= t.cfg.Threshold {
			s.counter = 0
			s.challenger = noChallenger
			return true
		}
	case s.counter == 0:
		s.challenger = uint8(member)
		s.counter = 1
	default:
		s.counter--
		if s.counter == 0 {
			s.challenger = noChallenger
		}
	}
	return false
}

// swap exchanges the fast slot with the winner's slot: the permutation
// updates immediately, the copy traffic is queued as paced chunks, and
// both data pages stay locked until the last chunk completes.
func (t *THM) swap(seg uint64, s *segment, winnerSlot int, at clock.Time) {
	fastSlotPage := t.pageOf(seg, 0)
	winnerSlotPage := t.pageOf(seg, winnerSlot)
	// The data pages being moved are the members occupying those slots.
	evicted := t.pageOf(seg, s.memberAt(0))
	winner := t.pageOf(seg, s.memberAt(winnerSlot))
	s.swapSlots(0, winnerSlot)
	for ch := 0; ch < swapChunks; ch++ {
		heap.Push(&t.queue, swapChunk{
			start: at + clock.Duration(ch)*chunkGap,
			slotA: fastSlotPage, slotB: winnerSlotPage,
			lockA: evicted, lockB: winner,
			chunk: uint8(ch),
		})
	}
	t.stats.PageMigrations++
	t.drain(at)
}

// drain executes queued copy chunks whose start time has arrived, in
// start order.
func (t *THM) drain(now clock.Time) {
	for len(t.queue) > 0 && t.queue[0].start <= now {
		c := heap.Pop(&t.queue).(swapChunk)
		lo := int(c.chunk) * linesPerChunk
		end := t.backend.SwapGlobalChunk(c.slotA, c.slotB, lo, lo+linesPerChunk, c.start)
		t.stats.LineMigrations += 2 * linesPerChunk
		t.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
		t.stats.GlobalMoveLines += 2 * linesPerChunk
		if end > t.locks[uint64(c.lockA)] {
			t.locks[uint64(c.lockA)] = end
		}
		if end > t.locks[uint64(c.lockB)] {
			t.locks[uint64(c.lockB)] = end
		}
	}
}

// CheckInvariants verifies that every segment's slot assignment is a
// permutation of its members. O(memory); intended for tests.
func (t *THM) CheckInvariants() error {
	for i := range t.segments {
		var seen uint16
		for slot := 0; slot < t.members; slot++ {
			m := t.segments[i].memberAt(slot)
			if m >= t.members {
				return fmt.Errorf("thm: segment %d slot %d holds invalid member %d", i, slot, m)
			}
			if seen&(1<<m) != 0 {
				return fmt.Errorf("thm: segment %d member %d appears twice", i, m)
			}
			seen |= 1 << m
		}
	}
	return nil
}

// SlotOfPage reports which slot (0 = fast) a flat page currently occupies
// within its segment, for tests.
func (t *THM) SlotOfPage(p addr.Page) int {
	seg, member := t.segmentOf(p)
	return t.segments[seg].slotOf(member, t.members)
}

var _ mech.Mechanism = (*THM)(nil)
