// Package thm models the Transparent Hardware Management baseline (Sim et
// al., MICRO 2014) as the MemPod paper evaluates it (§2, §4, §6).
//
// Memory is divided into segments of one fast page plus R slow pages
// (R = 8 at the paper's 1:8 capacity ratio). Migration is allowed only
// within a segment: any slow member may be swapped into the segment's
// single fast slot. One 8-bit competing counter per segment arbitrates: a
// challenger slow page gains the counter on its own accesses and loses it
// to accesses of other pages; when the counter crosses the threshold the
// challenger swaps into the fast slot. Swaps are threshold-triggered
// events, not interval work.
package thm

import (
	"fmt"
	"sync"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/trace"
)

// Config holds THM's parameters.
type Config struct {
	// Threshold is the competing-counter value that triggers a swap.
	Threshold uint8
	// CounterBits bounds the competing counter (paper: 8 bits/segment).
	CounterBits int
	// CacheBytes/CacheWays model the on-chip SRT cache holding segment
	// state (counters + remap); 0 disables the cache model.
	CacheBytes int
	CacheWays  int
}

// DefaultConfig returns the THM parameters used in the comparison.
func DefaultConfig() Config {
	return Config{Threshold: 4, CounterBits: 8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CounterBits <= 0 || c.CounterBits > 8:
		return fmt.Errorf("thm: counter width %d", c.CounterBits)
	case c.Threshold == 0 || uint64(c.Threshold) > (1<<c.CounterBits)-1:
		return fmt.Errorf("thm: threshold %d does not fit %d-bit counter", c.Threshold, c.CounterBits)
	case c.CacheBytes < 0:
		return fmt.Errorf("thm: cache %d bytes", c.CacheBytes)
	}
	return nil
}

// segment packs one segment's state: a 9-slot permutation (4 bits per
// slot: which member occupies it), the challenger member, and the
// competing counter.
//
// Members: 0 is the segment's fast page; 1..R are its slow pages. Slots
// use the same numbering for positions. Two encodings keep a freshly
// acquired segment array free of any initialization pass: a slots word of
// 0 denotes the identity permutation (an all-zero word is never a valid
// permutation for >= 2 members), and a segment whose gen differs from the
// mechanism's is in its zero state regardless of the array's old contents
// (see segArena).
type segment struct {
	slots      uint64 // 4 bits per slot, slot 0 = fast slot; 0 = identity
	gen        uint32 // matches THM.gen once the segment is live this run
	counter    uint8
	challenger uint8 // member index; 0 = none
}

const noChallenger = 0

func identitySlots(members int) uint64 {
	var s uint64
	for i := 0; i < members; i++ {
		s |= uint64(i) << (4 * i)
	}
	return s
}

func memberAt(slots uint64, slot int) int {
	return int(slots >> (4 * slot) & 0xF)
}

func slotOfMember(slots uint64, member, members int) int {
	for slot := 0; slot < members; slot++ {
		if memberAt(slots, slot) == member {
			return slot
		}
	}
	panic("thm: corrupt segment permutation")
}

func swapSlotsVal(slots uint64, a, b int) uint64 {
	ma, mb := uint64(memberAt(slots, a)), uint64(memberAt(slots, b))
	slots &^= 0xF<<(4*a) | 0xF<<(4*b)
	return slots | mb<<(4*a) | ma<<(4*b)
}

// segArena is a pooled segment array. Rather than zeroing megabytes per
// simulation cell, each acquisition bumps the arena's generation; segments
// stamped with an older generation read as zero and are lazily
// materialized on first touch. Pool reuse is indistinguishable from a
// fresh allocation.
type segArena struct {
	segs []segment
	gen  uint32
}

var segPool struct {
	mu   sync.Mutex
	free map[int][]*segArena
}

const maxPooledArenas = 16

func acquireSegs(n int) *segArena {
	segPool.mu.Lock()
	var a *segArena
	if l := segPool.free[n]; len(l) > 0 {
		a = l[len(l)-1]
		segPool.free[n] = l[:len(l)-1]
	}
	segPool.mu.Unlock()
	if a == nil {
		a = &segArena{segs: make([]segment, n)}
	}
	a.gen++
	if a.gen == 0 { // uint32 wraparound: stale stamps could read current
		clear(a.segs)
		a.gen = 1
	}
	return a
}

func releaseSegs(a *segArena) {
	n := len(a.segs)
	segPool.mu.Lock()
	if segPool.free == nil {
		segPool.free = make(map[int][]*segArena)
	}
	if len(segPool.free[n]) < maxPooledArenas {
		segPool.free[n] = append(segPool.free[n], a)
	}
	segPool.mu.Unlock()
}

// segmentStateBytes models the SRT entry size for the cache: 8-bit
// counter + 4-bit challenger + 36-bit permutation ≈ 6 bytes, so ten
// segments share one 64 B block.
const segmentsPerBlock = 10

// Swap copies are issued in paced chunks so they interleave with demand
// traffic at the memory controllers (see mech.SwapGlobalChunk).
const (
	swapChunks    = 8
	linesPerChunk = addr.LinesPerPage / swapChunks
	chunkGap      = 100 * clock.Nanosecond
)

// swapChunk is one queued unit of copy work between two physical slots.
// Swaps overlap freely (THM has no central migration engine); chunks issue
// at their paced start times, ordered globally by a min-heap so channel
// traffic stays in time order.
type swapChunk struct {
	start        clock.Time
	slotA, slotB addr.Page // physical page slots being exchanged
	lockA, lockB addr.Page // data pages locked for the copy's duration
	chunk        uint8
}

// chunkQueue is a min-heap of swap chunks by start time. It transcribes
// container/heap's sift algorithms onto the concrete type: start times
// tie (chunks of concurrent swaps share paced offsets), so the pop order
// among equal keys is a property of the exact heap algorithm and is
// observable through lock and channel state. A different — even valid —
// heap would reorder tied chunks and change simulated timings.
type chunkQueue []swapChunk

func (q *chunkQueue) push(c swapChunk) {
	*q = append(*q, c)
	// container/heap.Push: up(len-1).
	h := *q
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].start < h[i].start) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *chunkQueue) pop() swapChunk {
	// container/heap.Pop: Swap(0, n-1), down(0, n-1), strip the tail.
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].start < h[j1].start {
			j = j2
		}
		if !(h[j].start < h[i].start) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	c := h[n]
	*q = h[:n]
	return c
}

// THM implements mech.Mechanism.
type THM struct {
	cfg      Config
	backend  *mech.Backend
	layout   addr.Layout
	geom     *addr.Geom
	arena    *segArena
	segments []segment
	gen      uint32
	members  int // 1 + slow:fast ratio
	idSlots  uint64
	fast     uint64 // fast page count
	dFast    addr.Divisor
	locks    mech.LockTable // flat page -> swap completion
	cache    *mech.Cache
	touch    mech.TouchFilter
	stats    mech.MigStats
	maxCount uint8

	queue chunkQueue

	// plan is non-nil only while AccessColumn is mid-span: drain flushes
	// the affected channels through it before injecting copy traffic.
	plan *mech.ColumnPlan
}

// New builds a THM over the backend's two-level memory. The slow capacity
// must be a multiple of the fast capacity (the paper's ratio is 8).
func New(cfg Config, b *mech.Backend) (*THM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("thm: layout is not two-level")
	}
	if l.SlowBytes%l.FastBytes != 0 {
		return nil, fmt.Errorf("thm: slow capacity not a multiple of fast capacity")
	}
	ratio := int(l.SlowBytes / l.FastBytes)
	if ratio+1 > 16 {
		return nil, fmt.Errorf("thm: ratio %d exceeds 4-bit member encoding", ratio)
	}
	arena := acquireSegs(int(l.FastPages()))
	t := &THM{
		cfg:      cfg,
		backend:  b,
		layout:   l,
		geom:     &b.Geom,
		arena:    arena,
		segments: arena.segs,
		gen:      arena.gen,
		members:  ratio + 1,
		idSlots:  identitySlots(ratio + 1),
		fast:     uint64(l.FastPages()),
		dFast:    addr.NewDivisor(uint64(l.FastPages())),
		maxCount: uint8(1)<<cfg.CounterBits - 1,
	}
	if cfg.CacheBytes > 0 {
		if cfg.CacheWays <= 0 {
			cfg.CacheWays = 8
		}
		t.cache = mech.NewCache(cfg.CacheBytes, cfg.CacheWays)
	}
	return t, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *THM {
	t, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements mech.Mechanism.
func (t *THM) Name() string { return "THM" }

// Stats implements mech.Mechanism.
func (t *THM) Stats() mech.MigStats { return t.stats }

// SharedTouch implements mech.TouchSharer. THM is still not pod-sharded —
// its segment swaps remap across the whole address space — so the engine
// only uses this for differential state checks, never concurrently.
func (t *THM) SharedTouch() *mech.TouchFilter { return &t.touch }

// Release implements mech.Releaser; the mechanism must not be used after.
func (t *THM) Release() {
	releaseSegs(t.arena)
	t.arena, t.segments = nil, nil
}

// effSlots returns the segment's permutation word, decoding the zero
// sentinel. The segment must already be materialized (gen checked).
func (t *THM) effSlots(s *segment) uint64 {
	if s.slots == 0 {
		return t.idSlots
	}
	return s.slots
}

// segmentOf decomposes a flat page into (segment, member).
func (t *THM) segmentOf(p addr.Page) (seg uint64, member int) {
	if uint64(p) < t.fast {
		return uint64(p), 0
	}
	s := uint64(p) - t.fast
	return t.dFast.Mod(s), 1 + int(t.dFast.Div(s))
}

// pageOf is the inverse of segmentOf.
func (t *THM) pageOf(seg uint64, member int) addr.Page {
	if member == 0 {
		return addr.Page(seg)
	}
	return addr.Page(t.fast + seg + uint64(member-1)*t.fast)
}

// Access implements mech.Mechanism.
func (t *THM) Access(r *trace.Request, at clock.Time) clock.Time {
	page := addr.PageOf(addr.Addr(r.Addr))
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	return t.access(r, page, li, at, nil)
}

// AccessDecoded implements mech.DecodedAccessor. THM segments the flat
// page space its own way, so the segment decomposition and the serviced
// slot stay on the access path; but when the member still holds its home
// slot (most of the trace), the plane's precomputed home channel/row
// services the access without re-deriving HomeFrame.
func (t *THM) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return t.access(r, addr.Page(d.Page), int(d.Line), at, d)
}

func (t *THM) access(r *trace.Request, page addr.Page, li int, at clock.Time, d *trace.Decoded) clock.Time {
	if len(t.queue) > 0 && t.queue[0].start <= at {
		t.drain(at)
	}
	// Locks only shed entries when their page is re-accessed; compact the
	// table occasionally using the trace clock as the expiry floor (no
	// future request can query a lock before its own, later, trace time).
	t.locks.MaybeCompact(r.Time)
	seg, member := t.segmentOf(page)
	s := &t.segments[seg]
	if s.gen != t.gen {
		*s = segment{gen: t.gen} // lazily materialize the zero state
	}

	start := at
	if t.cache != nil {
		block := seg / segmentsPerBlock
		if t.cache.Access(block) {
			t.stats.CacheHits++
		} else {
			t.stats.CacheMisses++
			start = t.backend.BookkeepingRead(int(seg%uint64(t.layout.NumPods)), block, start)
		}
	}
	var lockEnd clock.Time
	if end := t.locks.GetActive(uint64(page), start); end != 0 {
		lockEnd = end
		t.stats.LockStalls++
	}

	slot := slotOfMember(t.effSlots(s), member, t.members)
	// Competing-counter update, once per page touch; may trigger a swap
	// *after* this access.
	trigger := false
	if t.touch.Touch(r.Core, uint64(page)) {
		trigger = t.updateCounter(s, member, slot)
	}

	// Service the request at the member's current slot.
	slotPage := t.pageOf(seg, slot)
	var done clock.Time
	if d != nil && slotPage == page {
		// The member sits in its home slot: the plane already resolved
		// the home location.
		done = clock.Max(t.backend.LineAt(d.Chan, d.Row, r.Write, start), lockEnd)
	} else {
		pod, f := t.geom.HomeFrame(slotPage)
		done = clock.Max(t.backend.Line(pod, f, li, r.Write, start), lockEnd)
	}

	if trigger {
		t.swap(seg, s, slot, start)
	}
	return done
}

// AccessColumn implements mech.ColumnAccessor: the access path with
// demand accesses gathered into per-channel columns. THM's immediate
// channel traffic comes from queue drains and threshold-triggered swaps
// (which drain inline); each drained chunk flushes just the two channels
// it touches (see drain), so pending demand there — including a
// triggering request's own access when it shares a channel — is serviced
// first, matching the per-request order exactly, while other channels
// keep building columns across drains. The SRT-cache configuration
// chains bookkeeping reads into issue times and keeps the per-request
// path.
func (t *THM) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	dec := sc.Dec
	if t.cache != nil {
		for i := range dec {
			r := sc.Request(i)
			done[i] = t.AccessDecoded(&r, &dec[i], at[i])
		}
		return
	}
	plan := t.backend.Plan()
	plan.Begin(done)
	t.plan = plan
	for i := range dec {
		d := &dec[i]
		ti := at[i]
		if len(t.queue) > 0 && t.queue[0].start <= ti {
			t.drain(ti)
		}
		t.locks.MaybeCompact(sc.Times[i])
		page := addr.Page(d.Page)
		seg, member := t.segmentOf(page)
		s := &t.segments[seg]
		if s.gen != t.gen {
			*s = segment{gen: t.gen}
		}
		var lockEnd clock.Time
		if end := t.locks.GetActive(uint64(page), ti); end != 0 {
			lockEnd = end
			t.stats.LockStalls++
		}
		slot := slotOfMember(t.effSlots(s), member, t.members)
		trigger := false
		if t.touch.Touch(sc.Cores[i], uint64(page)) {
			trigger = t.updateCounter(s, member, slot)
		}
		done[i] = lockEnd
		if slotPage := t.pageOf(seg, slot); slotPage == page {
			plan.Route(int(d.Chan), uint64(d.Row), sc.Write(i), ti, int32(i))
		} else {
			pod, f := t.geom.HomeFrame(slotPage)
			ch, row := t.backend.LineLoc(pod, f)
			plan.Route(ch, row, sc.Write(i), ti, int32(i))
		}
		if trigger {
			t.swap(seg, s, slot, ti)
		}
	}
	t.plan = nil
	plan.Flush()
}

// updateCounter applies THM's competing-counter policy for an access by
// `member` currently residing in `slot`, and reports whether the member
// just won the fast slot.
func (t *THM) updateCounter(s *segment, member, slot int) bool {
	if slot == 0 {
		// The fast resident defends: its accesses wear the challenger down.
		if s.counter > 0 {
			s.counter--
			if s.counter == 0 {
				s.challenger = noChallenger
			}
		}
		return false
	}
	switch {
	case int(s.challenger) == member:
		if s.counter < t.maxCount {
			s.counter++
		}
		if s.counter >= t.cfg.Threshold {
			s.counter = 0
			s.challenger = noChallenger
			return true
		}
	case s.counter == 0:
		s.challenger = uint8(member)
		s.counter = 1
	default:
		s.counter--
		if s.counter == 0 {
			s.challenger = noChallenger
		}
	}
	return false
}

// swap exchanges the fast slot with the winner's slot: the permutation
// updates immediately, the copy traffic is queued as paced chunks, and
// both data pages stay locked until the last chunk completes.
func (t *THM) swap(seg uint64, s *segment, winnerSlot int, at clock.Time) {
	fastSlotPage := t.pageOf(seg, 0)
	winnerSlotPage := t.pageOf(seg, winnerSlot)
	// The data pages being moved are the members occupying those slots.
	slots := t.effSlots(s)
	evicted := t.pageOf(seg, memberAt(slots, 0))
	winner := t.pageOf(seg, memberAt(slots, winnerSlot))
	s.slots = swapSlotsVal(slots, 0, winnerSlot)
	for ch := 0; ch < swapChunks; ch++ {
		t.queue.push(swapChunk{
			start: at + clock.Duration(ch)*chunkGap,
			slotA: fastSlotPage, slotB: winnerSlotPage,
			lockA: evicted, lockB: winner,
			chunk: uint8(ch),
		})
	}
	t.stats.PageMigrations++
	t.drain(at)
}

// drain executes queued copy chunks whose start time has arrived, in
// start order. Mid-span on the column path (t.plan non-nil) each chunk
// flushes the two channels it is about to touch first, so its copy
// traffic observes exactly the per-request channel state; every other
// channel's demand column keeps accumulating.
func (t *THM) drain(now clock.Time) {
	for len(t.queue) > 0 && t.queue[0].start <= now {
		c := t.queue.pop()
		lo := int(c.chunk) * linesPerChunk
		end := t.backend.SwapGlobalChunkPlanned(t.plan, c.slotA, c.slotB, lo, lo+linesPerChunk, c.start)
		t.stats.LineMigrations += 2 * linesPerChunk
		t.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
		t.stats.GlobalMoveLines += 2 * linesPerChunk
		t.locks.Raise(uint64(c.lockA), end)
		t.locks.Raise(uint64(c.lockB), end)
	}
}

// CheckInvariants verifies that every segment's slot assignment is a
// permutation of its members. O(memory); intended for tests.
func (t *THM) CheckInvariants() error {
	for i := range t.segments {
		slots := t.idSlots
		if s := &t.segments[i]; s.gen == t.gen && s.slots != 0 {
			slots = s.slots
		}
		var seen uint16
		for slot := 0; slot < t.members; slot++ {
			m := memberAt(slots, slot)
			if m >= t.members {
				return fmt.Errorf("thm: segment %d slot %d holds invalid member %d", i, slot, m)
			}
			if seen&(1<<m) != 0 {
				return fmt.Errorf("thm: segment %d member %d appears twice", i, m)
			}
			seen |= 1 << m
		}
	}
	return nil
}

// SlotOfPage reports which slot (0 = fast) a flat page currently occupies
// within its segment, for tests.
func (t *THM) SlotOfPage(p addr.Page) int {
	seg, member := t.segmentOf(p)
	slots := t.idSlots
	if s := &t.segments[seg]; s.gen == t.gen && s.slots != 0 {
		slots = s.slots
	}
	return slotOfMember(slots, member, t.members)
}

var (
	_ mech.Mechanism       = (*THM)(nil)
	_ mech.DecodedAccessor = (*THM)(nil)
	_ mech.Releaser        = (*THM)(nil)
	_ mech.ColumnAccessor  = (*THM)(nil)
)
