package thm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
)

func newTHM(t *testing.T, cfg Config) *THM {
	t.Helper()
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	m, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Threshold: 0, CounterBits: 8},
		{Threshold: 4, CounterBits: 0},
		{Threshold: 4, CounterBits: 9},
		{Threshold: 200, CounterBits: 4},
		{Threshold: 4, CounterBits: 8, CacheBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSegmentDecomposition(t *testing.T) {
	m := newTHM(t, DefaultConfig())
	fast := uint64(m.layout.FastPages())
	// Fast page p is member 0 of segment p.
	seg, member := m.segmentOf(addr.Page(7))
	if seg != 7 || member != 0 {
		t.Fatalf("fast page: seg %d member %d", seg, member)
	}
	// Slow pages map to members 1..8 of their segment.
	for j := 0; j < 8; j++ {
		p := addr.Page(fast + 7 + uint64(j)*fast)
		seg, member = m.segmentOf(p)
		if seg != 7 || member != j+1 {
			t.Fatalf("slow page %d: seg %d member %d, want 7/%d", p, seg, member, j+1)
		}
		if m.pageOf(seg, member) != p {
			t.Fatalf("pageOf not inverse for %d", p)
		}
	}
}

func TestCompetingCounterTriggersSwap(t *testing.T) {
	m := newTHM(t, Config{Threshold: 4, CounterBits: 8})
	fast := uint64(m.layout.FastPages())
	slow := addr.Page(fast + 3) // member 1 of segment 3
	req := trace.Request{Addr: uint64(slow.Base())}
	other := trace.Request{Addr: uint64(addr.Page(fast + 40000).Base())}
	at := clock.Time(0)
	// Threshold 4: the counter advances once per page touch; alternating
	// with an unrelated segment makes each access a fresh touch.
	for i := 0; i < 3; i++ {
		at += clock.Microsecond
		m.Access(&req, at)
		if m.SlotOfPage(slow) == 0 {
			t.Fatalf("swap fired early at touch %d", i+1)
		}
		at += clock.Microsecond
		m.Access(&other, at)
	}
	at += clock.Microsecond
	m.Access(&req, at)
	if m.SlotOfPage(slow) != 0 {
		t.Fatal("swap did not fire at threshold")
	}
	// The evicted fast page now occupies the winner's slow slot.
	if m.SlotOfPage(addr.Page(3)) != 1 {
		t.Fatalf("evicted fast page in slot %d, want 1", m.SlotOfPage(addr.Page(3)))
	}
	if st := m.Stats(); st.PageMigrations != 1 || st.BytesMoved == 0 ||
		st.BytesMoved > 2*addr.PageBytes {
		t.Fatalf("stats %+v", st)
	}
}

func TestDefenderWearsChallengerDown(t *testing.T) {
	m := newTHM(t, DefaultConfig())
	fast := uint64(m.layout.FastPages())
	slowReq := trace.Request{Addr: uint64(addr.Page(fast + 5).Base())}
	fastReq := trace.Request{Addr: uint64(addr.Page(5).Base())}
	at := clock.Time(0)
	// Alternate challenger and defender: counter oscillates below the
	// threshold, no swap (the anti-ping-pong property the paper credits
	// competing counters with).
	for i := 0; i < 50; i++ {
		at += clock.Microsecond
		m.Access(&slowReq, at)
		at += clock.Microsecond
		m.Access(&fastReq, at)
	}
	if m.Stats().PageMigrations != 0 {
		t.Fatal("alternating accesses triggered a swap")
	}
}

func TestCompetingChallengersBlockEachOther(t *testing.T) {
	m := newTHM(t, DefaultConfig())
	fast := uint64(m.layout.FastPages())
	// Two slow pages of the same segment alternate: each access decrements
	// the other's progress, so neither reaches the threshold.
	a := trace.Request{Addr: uint64(addr.Page(fast + 9).Base())}
	b := trace.Request{Addr: uint64(addr.Page(fast + 9 + fast).Base())}
	at := clock.Time(0)
	for i := 0; i < 100; i++ {
		at += clock.Microsecond
		m.Access(&a, at)
		at += clock.Microsecond
		m.Access(&b, at)
	}
	if m.Stats().PageMigrations != 0 {
		t.Fatal("competing challengers triggered a swap")
	}
}

func TestSwappedPageServedFromFast(t *testing.T) {
	m := newTHM(t, Config{Threshold: 4, CounterBits: 8})
	fast := uint64(m.layout.FastPages())
	slow := addr.Page(fast + 11)
	req := trace.Request{Addr: uint64(slow.Base())}
	other := trace.Request{Addr: uint64(addr.Page(fast + 50000).Base())}
	at := clock.Time(0)
	for i := 0; i < 4; i++ {
		at += 10 * clock.Microsecond
		m.Access(&req, at)
		at += 10 * clock.Microsecond
		m.Access(&other, at)
	}
	if m.SlotOfPage(slow) != 0 {
		t.Fatal("setup: page not swapped")
	}
	// Well after the swap completes, accesses must be fast-memory fast.
	// The first late access drains the remaining copy chunks; snapshot
	// after it so only the demand access is counted.
	m.Access(&other, 5*clock.Millisecond)
	before := m.backend.Sys.FastStats().Accesses()
	m.Access(&req, 10*clock.Millisecond)
	if m.backend.Sys.FastStats().Accesses() != before+1 {
		t.Fatal("access to swapped-in page did not hit fast memory")
	}
}

func TestLockStallsDuringSwap(t *testing.T) {
	m := newTHM(t, Config{Threshold: 4, CounterBits: 8})
	fast := uint64(m.layout.FastPages())
	slow := addr.Page(fast + 21)
	req := trace.Request{Addr: uint64(slow.Base())}
	other := trace.Request{Addr: uint64(addr.Page(fast + 60000).Base())}
	at := clock.Time(0)
	for i := 0; i < 3; i++ {
		at += clock.Microsecond
		m.Access(&req, at)
		at += clock.Microsecond
		m.Access(&other, at)
	}
	at += clock.Microsecond
	m.Access(&req, at) // fourth touch: triggers the swap
	// Immediately after the triggering access the page is locked by the
	// in-flight copy chunks: the next access must record a lock stall and
	// complete no earlier than the executed chunks.
	done := m.Access(&req, at+clock.Nanosecond)
	if done <= at+clock.Nanosecond {
		t.Fatalf("access during swap completed instantly: %v", done)
	}
	if m.Stats().LockStalls == 0 {
		t.Fatal("no lock stall recorded")
	}
}

func TestCacheModelCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 16 << 10
	m := newTHM(t, cfg)
	fast := uint64(m.layout.FastPages())
	at := clock.Time(0)
	for i := 0; i < 5000; i++ {
		at += 100 * clock.Nanosecond
		p := addr.Page(fast + uint64(i%3000))
		m.Access(&trace.Request{Addr: uint64(p.Base())}, at)
	}
	st := m.Stats()
	if st.CacheMisses == 0 || st.CacheHits+st.CacheMisses < 5000 {
		t.Fatalf("cache stats %+v", st)
	}
}

func TestRejectsSingleLevel(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(
		addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if _, err := New(DefaultConfig(), b); err == nil {
		t.Fatal("THM accepted single-level layout")
	}
}

func TestSegmentPermutationHelpers(t *testing.T) {
	slots := identitySlots(9)
	for i := 0; i < 9; i++ {
		if memberAt(slots, i) != i || slotOfMember(slots, i, 9) != i {
			t.Fatalf("identity broken at %d", i)
		}
	}
	slots = swapSlotsVal(slots, 0, 4)
	if memberAt(slots, 0) != 4 || memberAt(slots, 4) != 0 {
		t.Fatal("swapSlotsVal wrong")
	}
	slots = swapSlotsVal(slots, 0, 4)
	if slots != identitySlots(9) {
		t.Fatal("double swap is not identity")
	}
}
