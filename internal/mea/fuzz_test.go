package mea

import "testing"

// FuzzMEA drives Algorithm 1 with arbitrary page streams and checks its
// structural invariants: entry count never exceeds K, counts never exceed
// the saturation bound, and counts never exceed the page's true frequency.
func FuzzMEA(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 1, 9}, uint8(4), uint8(2))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0, 0, 0, 0}, uint8(2), uint8(8))

	f.Fuzz(func(t *testing.T, stream []byte, kRaw, bitsRaw uint8) {
		k := int(kRaw%64) + 1
		bits := int(bitsRaw%16) + 1
		m := NewMEA(k, bits)
		truth := map[uint64]uint64{}
		for _, b := range stream {
			p := uint64(b)
			truth[p]++
			m.Observe(p)
			if m.Len() > k {
				t.Fatalf("entries %d exceed K=%d", m.Len(), k)
			}
		}
		max := uint64(1)<<bits - 1
		for _, e := range m.Hot() {
			if e.Count > max {
				t.Fatalf("count %d exceeds %d-bit saturation", e.Count, bits)
			}
			if e.Count > truth[e.Page] {
				t.Fatalf("page %d counted %d > true %d", e.Page, e.Count, truth[e.Page])
			}
			if !m.Contains(e.Page) {
				t.Fatalf("Hot() reported untracked page %d", e.Page)
			}
		}
	})
}
