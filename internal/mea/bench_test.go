package mea

import (
	"math/rand"
	"testing"
)

// benchStream is a Zipf-flavored page stream: a hot head with a long tail,
// the shape the tracker sees in practice (hits on tracked pages mixed with
// decrement-all churn from the tail).
func benchStream(n, pageSpace int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.2, 1, uint64(pageSpace-1))
	s := make([]uint64, n)
	for i := range s {
		s[i] = z.Uint64()
	}
	return s
}

func BenchmarkMEAObserve(b *testing.B) {
	stream := benchStream(1<<16, 1<<20)
	m := NewMEA(64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(stream[i&(1<<16-1)])
	}
}

func BenchmarkMEAHot(b *testing.B) {
	stream := benchStream(1<<14, 1<<20)
	m := NewMEA(64, 2)
	for _, p := range stream {
		m.Observe(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Hot()
	}
}
