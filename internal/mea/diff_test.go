package mea

import (
	"math/rand"
	"testing"
)

// refMEA is the original map-backed implementation of Algorithm 1, kept
// verbatim as the differential-testing reference for the array-backed MEA.
// Both are deterministic functions of the observation stream (map
// iteration order only feeds the order-independent decrement-all), so the
// production tracker must match it exactly — including Hot() tie order.
type refMEA struct {
	k        int
	maxCount uint64
	counts   map[uint64]uint64
}

func newRefMEA(k, counterBits int) *refMEA {
	var max uint64
	if counterBits >= 64 {
		max = ^uint64(0)
	} else {
		max = (uint64(1) << counterBits) - 1
	}
	return &refMEA{k: k, maxCount: max, counts: make(map[uint64]uint64, k)}
}

func (m *refMEA) Observe(p uint64) {
	if c, ok := m.counts[p]; ok {
		if c < m.maxCount {
			m.counts[p] = c + 1
		}
		return
	}
	if len(m.counts) < m.k {
		m.counts[p] = 1
		return
	}
	for q, c := range m.counts {
		if c <= 1 {
			delete(m.counts, q)
		} else {
			m.counts[q] = c - 1
		}
	}
}

func (m *refMEA) Contains(p uint64) bool {
	_, ok := m.counts[p]
	return ok
}

func (m *refMEA) Hot() []Entry {
	out := make([]Entry, 0, len(m.counts))
	for p, c := range m.counts {
		out = append(out, Entry{Page: p, Count: c})
	}
	sortEntries(out)
	return out
}

func (m *refMEA) Reset() { clear(m.counts) }

// TestMEADifferential drives the array-backed MEA and the map-backed
// reference through identical randomized observe/reset streams and
// requires exact agreement on Len, Contains, and Hot (order included) at
// every checkpoint.
func TestMEADifferential(t *testing.T) {
	cases := []struct {
		k, bits, pageSpace int
	}{
		{1, 1, 4},    // degenerate: single slot, counters saturate at 1
		{2, 2, 8},    // constant decrement-all churn
		{64, 2, 256}, // the paper's design point under heavy conflict
		{64, 2, 40},  // fewer pages than slots: no evictions after warmup
		{128, 64, 4096},
		{7, 5, 100}, // non-power-of-two capacity
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.k*1000 + tc.bits)))
		m := NewMEA(tc.k, tc.bits)
		ref := newRefMEA(tc.k, tc.bits)
		for step := 0; step < 30000; step++ {
			switch rng.Intn(100) {
			case 0: // interval boundary
				ref.Reset()
				m.Reset()
			case 1, 2: // checkpoint: full Hot comparison
				want, got := ref.Hot(), m.Hot()
				if len(want) != len(got) {
					t.Fatalf("k=%d bits=%d step %d: Hot len %d, want %d",
						tc.k, tc.bits, step, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("k=%d bits=%d step %d: Hot[%d] = %+v, want %+v",
							tc.k, tc.bits, step, i, got[i], want[i])
					}
				}
			default:
				p := uint64(rng.Intn(tc.pageSpace))
				ref.Observe(p)
				m.Observe(p)
				if m.Contains(p) != ref.Contains(p) {
					t.Fatalf("k=%d bits=%d step %d: Contains(%d) diverged", tc.k, tc.bits, step, p)
				}
			}
			if m.Len() != len(ref.counts) {
				t.Fatalf("k=%d bits=%d step %d: Len = %d, want %d",
					tc.k, tc.bits, step, m.Len(), len(ref.counts))
			}
		}
	}
}

// TestMEAHotBufferReuse pins the documented aliasing contract: Hot's
// result is valid until the next Hot call, and the tracker's internal
// state is immune to caller writes through the returned slice.
func TestMEAHotBufferReuse(t *testing.T) {
	m := NewMEA(4, 64)
	m.Observe(1)
	m.Observe(1)
	m.Observe(2)
	h := m.Hot()
	h[0].Count = 999 // caller scribbles on the buffer
	if got := m.Hot(); got[0] != (Entry{Page: 1, Count: 2}) {
		t.Fatalf("internal state corrupted through Hot buffer: %+v", got)
	}
}
