// Package mea implements the activity-tracking schemes compared in §3 of
// the paper: the Majority Element Algorithm tracker (Algorithm 1) that
// MemPod uses, and the Full Counters scheme used by HMA-style designs.
//
// Both observe a stream of page IDs and, at interval boundaries, report
// which pages they believe are hot. MEA keeps at most K entries with
// saturating counters of configurable width; Full Counters keeps one
// counter per page ever touched.
package mea

import "sort"

// Entry is one (page, count) pair reported by a tracker.
type Entry struct {
	Page  uint64
	Count uint64
}

// Tracker is the common interface of activity-tracking schemes. A tracker
// observes one interval's accesses; Reset starts the next interval.
type Tracker interface {
	// Observe records one access to page p.
	Observe(p uint64)
	// Hot returns the tracker's current hot set, most-counted first, ties
	// broken by ascending page ID for determinism. The length is bounded
	// by the tracker's capacity (K for MEA, unbounded for Full Counters).
	// The returned slice is valid until the tracker's next Hot call;
	// callers that need it longer must copy it.
	Hot() []Entry
	// Reset clears all state for the next interval.
	Reset()
}

// MEA is the Majority Element Algorithm tracker of Algorithm 1: at most K
// page entries. On an access to a tracked page its counter increments
// (saturating at the configured width); an access to an untracked page
// inserts it if a slot is free, otherwise every counter is decremented by
// one and zero-count entries are evicted.
//
// The representation mirrors the hardware structure rather than using a
// Go map: the K entries live in a dense array (the "K counters"), indexed
// by a small open-addressed table for the associative page lookup. The
// table's occupancy is epoch-stamped, so the decrement-all rebuild and
// Reset invalidate every slot by bumping the epoch instead of zeroing
// memory. Steady-state Observe and Hot allocate nothing.
//
// Note: the paper's pseudocode inserts while |T| < K-1, which strands one
// of the K hardware slots; we insert while |T| < K so all K counters are
// usable, matching the prose ("a map structure of K entries" and "up to K
// migrations per interval").
type MEA struct {
	k        int
	maxCount uint64
	entries  []Entry // live entries, unordered; len <= k
	slots    []slot  // open-addressed page -> entry index, len power of two
	mask     uint32
	epoch    uint32  // slots with a different stamp are empty
	hotBuf   []Entry // reused by Hot
	sorter   entrySorter
}

// slot is one cell of the lookup table. A slot is occupied iff its stamp
// equals the tracker's current epoch.
type slot struct {
	page  uint64
	idx   int32
	stamp uint32
}

// NewMEA returns an MEA tracker with k entries and counterBits-wide
// saturating counters. The paper's design point is k=64, counterBits=2;
// the §3 oracle study uses k=128. counterBits of 64 is effectively
// unsaturated.
func NewMEA(k, counterBits int) *MEA {
	if k <= 0 {
		panic("mea: k must be positive")
	}
	if counterBits <= 0 || counterBits > 64 {
		panic("mea: counterBits must be in [1,64]")
	}
	var max uint64
	if counterBits >= 64 {
		max = ^uint64(0)
	} else {
		max = (uint64(1) << counterBits) - 1
	}
	// Keep the probe table at most half full: power of two >= 2k.
	cap := 16
	for cap < 2*k {
		cap *= 2
	}
	return &MEA{
		k:        k,
		maxCount: max,
		entries:  make([]Entry, 0, k),
		slots:    make([]slot, cap),
		mask:     uint32(cap - 1),
		epoch:    1,
	}
}

// K returns the tracker's entry capacity.
func (m *MEA) K() int { return m.k }

// hashPage spreads page IDs over the probe table (Fibonacci hashing).
func hashPage(p uint64) uint32 {
	return uint32((p * 0x9E3779B97F4A7C15) >> 32)
}

// lookup returns the entry index for page p, or -1 and the probe position
// where p would be inserted.
func (m *MEA) lookup(p uint64) (int32, uint32) {
	i := hashPage(p) & m.mask
	for m.slots[i].stamp == m.epoch {
		if m.slots[i].page == p {
			return m.slots[i].idx, i
		}
		i = (i + 1) & m.mask
	}
	return -1, i
}

// insertSlot records page p at entry index idx in the probe table.
func (m *MEA) insertSlot(p uint64, idx int32) {
	i := hashPage(p) & m.mask
	for m.slots[i].stamp == m.epoch {
		i = (i + 1) & m.mask
	}
	m.slots[i] = slot{page: p, idx: idx, stamp: m.epoch}
}

// bumpEpoch empties the probe table in O(1) (O(n) only when the 32-bit
// epoch wraps, which requires ~4 billion boundary events).
func (m *MEA) bumpEpoch() {
	m.epoch++
	if m.epoch == 0 {
		clear(m.slots)
		m.epoch = 1
	}
}

// Observe implements Tracker, performing one step of Algorithm 1.
func (m *MEA) Observe(p uint64) {
	idx, at := m.lookup(p)
	if idx >= 0 {
		if e := &m.entries[idx]; e.Count < m.maxCount {
			e.Count++
		}
		return
	}
	if len(m.entries) < m.k {
		m.slots[at] = slot{page: p, idx: int32(len(m.entries)), stamp: m.epoch}
		m.entries = append(m.entries, Entry{Page: p, Count: 1})
		return
	}
	// Decrement-all: subtract one from every counter and evict zeros. The
	// incoming page is not inserted; in hardware this is the single-cycle
	// parallel subtract/compare the paper describes. Survivors compact in
	// place and the probe table is rebuilt under a fresh epoch.
	kept := m.entries[:0]
	for _, e := range m.entries {
		if e.Count > 1 {
			e.Count--
			kept = append(kept, e)
		}
	}
	m.entries = kept
	m.bumpEpoch()
	for j := range m.entries {
		m.insertSlot(m.entries[j].Page, int32(j))
	}
}

// Len returns the number of live entries.
func (m *MEA) Len() int { return len(m.entries) }

// Contains reports whether page p is currently tracked. MemPod's victim
// selection uses this to skip fast frames that already hold hot pages.
func (m *MEA) Contains(p uint64) bool {
	idx, _ := m.lookup(p)
	return idx >= 0
}

// Hot implements Tracker. The returned slice is reused by the next Hot
// call on this tracker.
func (m *MEA) Hot() []Entry {
	m.hotBuf = append(m.hotBuf[:0], m.entries...)
	m.sorter.es = m.hotBuf
	sort.Sort(&m.sorter)
	return m.hotBuf
}

// Reset implements Tracker.
func (m *MEA) Reset() {
	m.entries = m.entries[:0]
	m.bumpEpoch()
}

// FullCounters is the reference scheme: one unbounded counter per page
// ever observed in the interval. Its storage grows with the footprint —
// the cost the paper's ~12800x comparison is about.
type FullCounters struct {
	counts map[uint64]uint64
	hotBuf []Entry // reused by Hot, like MEA.hotBuf
	sorter entrySorter
}

// NewFullCounters returns an empty Full Counters tracker.
func NewFullCounters() *FullCounters {
	return &FullCounters{counts: make(map[uint64]uint64)}
}

// Observe implements Tracker.
func (f *FullCounters) Observe(p uint64) { f.counts[p]++ }

// Len returns the number of pages with nonzero counts.
func (f *FullCounters) Len() int { return len(f.counts) }

// Hot implements Tracker. For Full Counters this ranks every observed
// page. The returned slice is reused by the next Hot call on this tracker.
func (f *FullCounters) Hot() []Entry {
	out := f.hotBuf[:0]
	for p, c := range f.counts {
		out = append(out, Entry{Page: p, Count: c})
	}
	f.hotBuf = out
	f.sorter.es = out
	sort.Sort(&f.sorter)
	return out
}

// Contains reports whether page p has been observed this interval.
func (f *FullCounters) Contains(p uint64) bool {
	_, ok := f.counts[p]
	return ok
}

// Top returns the n most-accessed pages (fewer if fewer were observed).
func (f *FullCounters) Top(n int) []Entry {
	h := f.Hot()
	if len(h) > n {
		h = h[:n]
	}
	return h
}

// Reset implements Tracker.
func (f *FullCounters) Reset() { clear(f.counts) }

// entrySorter orders entries by count descending, page ascending — a
// strict total order (pages are unique), so the result is independent of
// the sorting algorithm. It exists as a named type so MEA.Hot can sort
// through a pre-allocated interface value instead of sort.Slice's
// per-call closure allocation.
type entrySorter struct{ es []Entry }

func (s *entrySorter) Len() int { return len(s.es) }
func (s *entrySorter) Less(i, j int) bool {
	if s.es[i].Count != s.es[j].Count {
		return s.es[i].Count > s.es[j].Count
	}
	return s.es[i].Page < s.es[j].Page
}
func (s *entrySorter) Swap(i, j int) { s.es[i], s.es[j] = s.es[j], s.es[i] }

func sortEntries(es []Entry) {
	s := entrySorter{es: es}
	sort.Sort(&s)
}

// Compile-time interface checks.
var (
	_ Tracker = (*MEA)(nil)
	_ Tracker = (*FullCounters)(nil)
)
