// Package mea implements the activity-tracking schemes compared in §3 of
// the paper: the Majority Element Algorithm tracker (Algorithm 1) that
// MemPod uses, and the Full Counters scheme used by HMA-style designs.
//
// Both observe a stream of page IDs and, at interval boundaries, report
// which pages they believe are hot. MEA keeps at most K entries with
// saturating counters of configurable width; Full Counters keeps one
// counter per page ever touched.
package mea

import "sort"

// Entry is one (page, count) pair reported by a tracker.
type Entry struct {
	Page  uint64
	Count uint64
}

// Tracker is the common interface of activity-tracking schemes. A tracker
// observes one interval's accesses; Reset starts the next interval.
type Tracker interface {
	// Observe records one access to page p.
	Observe(p uint64)
	// Hot returns the tracker's current hot set, most-counted first, ties
	// broken by ascending page ID for determinism. The length is bounded
	// by the tracker's capacity (K for MEA, unbounded for Full Counters).
	Hot() []Entry
	// Reset clears all state for the next interval.
	Reset()
}

// MEA is the Majority Element Algorithm tracker of Algorithm 1: a map of at
// most K page entries. On an access to a tracked page its counter
// increments (saturating at the configured width); an access to an
// untracked page inserts it if a slot is free, otherwise every counter is
// decremented by one and zero-count entries are evicted.
//
// Note: the paper's pseudocode inserts while |T| < K-1, which strands one
// of the K hardware slots; we insert while |T| < K so all K counters are
// usable, matching the prose ("a map structure of K entries" and "up to K
// migrations per interval").
type MEA struct {
	k        int
	maxCount uint64
	counts   map[uint64]uint64
}

// NewMEA returns an MEA tracker with k entries and counterBits-wide
// saturating counters. The paper's design point is k=64, counterBits=2;
// the §3 oracle study uses k=128. counterBits of 64 is effectively
// unsaturated.
func NewMEA(k, counterBits int) *MEA {
	if k <= 0 {
		panic("mea: k must be positive")
	}
	if counterBits <= 0 || counterBits > 64 {
		panic("mea: counterBits must be in [1,64]")
	}
	var max uint64
	if counterBits >= 64 {
		max = ^uint64(0)
	} else {
		max = (uint64(1) << counterBits) - 1
	}
	return &MEA{k: k, maxCount: max, counts: make(map[uint64]uint64, k)}
}

// K returns the tracker's entry capacity.
func (m *MEA) K() int { return m.k }

// Observe implements Tracker, performing one step of Algorithm 1.
func (m *MEA) Observe(p uint64) {
	if c, ok := m.counts[p]; ok {
		if c < m.maxCount {
			m.counts[p] = c + 1
		}
		return
	}
	if len(m.counts) < m.k {
		m.counts[p] = 1
		return
	}
	// Decrement-all: subtract one from every counter and evict zeros. The
	// incoming page is not inserted; in hardware this is the single-cycle
	// parallel subtract/compare the paper describes.
	for q, c := range m.counts {
		if c <= 1 {
			delete(m.counts, q)
		} else {
			m.counts[q] = c - 1
		}
	}
}

// Len returns the number of live entries.
func (m *MEA) Len() int { return len(m.counts) }

// Contains reports whether page p is currently tracked. MemPod's victim
// selection uses this to skip fast frames that already hold hot pages.
func (m *MEA) Contains(p uint64) bool {
	_, ok := m.counts[p]
	return ok
}

// Hot implements Tracker.
func (m *MEA) Hot() []Entry {
	out := make([]Entry, 0, len(m.counts))
	for p, c := range m.counts {
		out = append(out, Entry{Page: p, Count: c})
	}
	sortEntries(out)
	return out
}

// Reset implements Tracker.
func (m *MEA) Reset() {
	clear(m.counts)
}

// FullCounters is the reference scheme: one unbounded counter per page
// ever observed in the interval. Its storage grows with the footprint —
// the cost the paper's ~12800x comparison is about.
type FullCounters struct {
	counts map[uint64]uint64
}

// NewFullCounters returns an empty Full Counters tracker.
func NewFullCounters() *FullCounters {
	return &FullCounters{counts: make(map[uint64]uint64)}
}

// Observe implements Tracker.
func (f *FullCounters) Observe(p uint64) { f.counts[p]++ }

// Len returns the number of pages with nonzero counts.
func (f *FullCounters) Len() int { return len(f.counts) }

// Hot implements Tracker. For Full Counters this ranks every observed page.
func (f *FullCounters) Hot() []Entry {
	out := make([]Entry, 0, len(f.counts))
	for p, c := range f.counts {
		out = append(out, Entry{Page: p, Count: c})
	}
	sortEntries(out)
	return out
}

// Contains reports whether page p has been observed this interval.
func (f *FullCounters) Contains(p uint64) bool {
	_, ok := f.counts[p]
	return ok
}

// Top returns the n most-accessed pages (fewer if fewer were observed).
func (f *FullCounters) Top(n int) []Entry {
	h := f.Hot()
	if len(h) > n {
		h = h[:n]
	}
	return h
}

// Reset implements Tracker.
func (f *FullCounters) Reset() { clear(f.counts) }

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Page < es[j].Page
	})
}

// Compile-time interface checks.
var (
	_ Tracker = (*MEA)(nil)
	_ Tracker = (*FullCounters)(nil)
)
