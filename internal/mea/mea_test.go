package mea

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMEABasicCounting(t *testing.T) {
	m := NewMEA(4, 64)
	for i := 0; i < 5; i++ {
		m.Observe(7)
	}
	m.Observe(9)
	hot := m.Hot()
	if len(hot) != 2 {
		t.Fatalf("hot len %d, want 2", len(hot))
	}
	if hot[0] != (Entry{Page: 7, Count: 5}) || hot[1] != (Entry{Page: 9, Count: 1}) {
		t.Fatalf("hot = %+v", hot)
	}
}

func TestMEACapacityBound(t *testing.T) {
	m := NewMEA(8, 64)
	for p := uint64(0); p < 1000; p++ {
		m.Observe(p)
		if m.Len() > 8 {
			t.Fatalf("MEA exceeded capacity: %d entries", m.Len())
		}
	}
}

func TestMEADecrementAllEvictsZeros(t *testing.T) {
	m := NewMEA(2, 64)
	m.Observe(1) // count 1
	m.Observe(2) // count 1; map full
	m.Observe(3) // decrement-all: both drop to 0 and are evicted; 3 not added
	if m.Len() != 0 {
		t.Fatalf("len %d after decrement-all, want 0", m.Len())
	}
	if m.Contains(3) {
		t.Fatal("incoming page must not be inserted during decrement-all")
	}
}

func TestMEADecrementPreservesLargeCounts(t *testing.T) {
	m := NewMEA(2, 64)
	for i := 0; i < 10; i++ {
		m.Observe(1)
	}
	m.Observe(2)
	m.Observe(3) // decrement-all: 1 -> 9, 2 evicted
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("wrong survivors")
	}
	if got := m.Hot()[0].Count; got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
}

func TestMEASaturatingCounter(t *testing.T) {
	m := NewMEA(4, 2) // 2-bit counters saturate at 3, the paper's design point
	for i := 0; i < 100; i++ {
		m.Observe(5)
	}
	if got := m.Hot()[0].Count; got != 3 {
		t.Fatalf("saturated count = %d, want 3", got)
	}
	// Saturation favors recency: three decrement-alls evict even a
	// heavily accessed page.
	m2 := NewMEA(1, 2)
	for i := 0; i < 100; i++ {
		m2.Observe(5)
	}
	for i := uint64(10); i < 13; i++ {
		m2.Observe(i) // all decrement-alls, map stays full with page 5
	}
	if m2.Contains(5) {
		t.Fatal("2-bit counter should have been worn down after 3 misses")
	}
}

func TestMEAReset(t *testing.T) {
	m := NewMEA(4, 64)
	m.Observe(1)
	m.Observe(2)
	m.Reset()
	if m.Len() != 0 || len(m.Hot()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNewMEAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMEA(0, 2) },
		func() { NewMEA(4, 0) },
		func() { NewMEA(4, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid arguments")
				}
			}()
			f()
		}()
	}
}

// The Misra-Gries guarantee (Karp et al., Charikar et al.): with K
// unbounded counters, any element occurring more than N/(K+1) times in the
// stream must survive in the map.
func TestMEAMajorityGuarantee(t *testing.T) {
	prop := func(seed int64) bool {
		const k = 8
		const n = 2000
		rng := rand.New(rand.NewSource(seed))
		// One heavy element with > N/(K+1) occurrences, noise elsewhere.
		heavy := uint64(1_000_000)
		heavyCount := n/(k+1) + 1 + rng.Intn(200)
		stream := make([]uint64, 0, n)
		for i := 0; i < heavyCount; i++ {
			stream = append(stream, heavy)
		}
		for len(stream) < n {
			stream = append(stream, rng.Uint64()%5000)
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		m := NewMEA(k, 64)
		for _, p := range stream {
			m.Observe(p)
		}
		return m.Contains(heavy)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// MEA's count for any page never exceeds its true occurrence count
// (undercounting only), with unbounded counters.
func TestMEAUndercounts(t *testing.T) {
	prop := func(seed int64, raw []uint8) bool {
		m := NewMEA(6, 64)
		truth := map[uint64]uint64{}
		for _, b := range raw {
			p := uint64(b % 32)
			truth[p]++
			m.Observe(p)
		}
		for _, e := range m.Hot() {
			if e.Count > truth[e.Page] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// MEA favors recency: a burst of accesses to new pages at the end of an
// interval displaces pages accessed long before.
func TestMEARecencyBias(t *testing.T) {
	m := NewMEA(4, 64)
	// Early phase: pages 1..4 accessed 10 times each.
	for i := 0; i < 10; i++ {
		for p := uint64(1); p <= 4; p++ {
			m.Observe(p)
		}
	}
	// Late phase: pages 101..104 accessed 11 times each, interleaved so
	// decrements wear the old entries down and slots open up.
	for i := 0; i < 11; i++ {
		for p := uint64(101); p <= 104; p++ {
			m.Observe(p)
		}
	}
	hot := m.Hot()
	recent := 0
	for _, e := range hot {
		if e.Page > 100 {
			recent++
		}
	}
	if recent < 3 {
		t.Errorf("only %d recent pages survived, want >= 3 (got %+v)", recent, hot)
	}
}

func TestFullCountersExact(t *testing.T) {
	f := NewFullCounters()
	counts := map[uint64]int{3: 5, 9: 2, 12: 8}
	for p, n := range counts {
		for i := 0; i < n; i++ {
			f.Observe(p)
		}
	}
	hot := f.Hot()
	if len(hot) != 3 {
		t.Fatalf("len %d", len(hot))
	}
	if hot[0].Page != 12 || hot[1].Page != 3 || hot[2].Page != 9 {
		t.Fatalf("order wrong: %+v", hot)
	}
	if hot[0].Count != 8 {
		t.Fatal("count wrong")
	}
	if top := f.Top(2); len(top) != 2 || top[0].Page != 12 {
		t.Fatalf("Top(2) = %+v", top)
	}
	if top := f.Top(10); len(top) != 3 {
		t.Fatalf("Top(10) = %+v", top)
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHotDeterministicTieBreak(t *testing.T) {
	f := NewFullCounters()
	for _, p := range []uint64{5, 3, 9, 1} {
		f.Observe(p)
	}
	hot := f.Hot()
	want := []uint64{1, 3, 5, 9}
	for i, e := range hot {
		if e.Page != want[i] {
			t.Fatalf("tie-break order %+v, want pages %v", hot, want)
		}
	}
}

// FC counts exactly; MEA's survivors are a subset of observed pages.
func TestTrackersAgreeOnSingleHotPage(t *testing.T) {
	trackers := []Tracker{NewMEA(16, 64), NewFullCounters()}
	for _, tr := range trackers {
		for i := 0; i < 100; i++ {
			tr.Observe(42)
			tr.Observe(uint64(i + 1000)) // unique noise
		}
		hot := tr.Hot()
		if len(hot) == 0 || hot[0].Page != 42 {
			t.Errorf("%T: top page %+v, want 42", tr, hot)
		}
	}
}
