package mea_test

import (
	"fmt"

	"repro/internal/mea"
)

// Algorithm 1 on a small stream: the majority element survives.
func ExampleMEA() {
	m := mea.NewMEA(2, 8)
	for _, page := range []uint64{7, 7, 3, 7, 9, 7, 4, 7} {
		m.Observe(page)
	}
	hot := m.Hot()
	fmt.Println("top page:", hot[0].Page)
	// Output:
	// top page: 7
}

// Full Counters ranks every observed page exactly.
func ExampleFullCounters() {
	fc := mea.NewFullCounters()
	for _, page := range []uint64{1, 2, 2, 3, 3, 3} {
		fc.Observe(page)
	}
	for _, e := range fc.Top(2) {
		fmt.Println(e.Page, e.Count)
	}
	// Output:
	// 3 3
	// 2 2
}
