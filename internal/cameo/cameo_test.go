package cameo

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
)

func newCAMEO(t *testing.T) *CAMEO {
	t.Helper()
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	c, err := New(DefaultConfig(), b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGroupDecomposition(t *testing.T) {
	c := newCAMEO(t)
	fast := uint64(c.layout.FastLines())
	seg, member := c.groupOf(addr.Line(42))
	if seg != 42 || member != 0 {
		t.Fatalf("fast line: %d/%d", seg, member)
	}
	for j := 0; j < 8; j++ {
		ln := addr.Line(fast + 42 + uint64(j)*fast)
		seg, member = c.groupOf(ln)
		if seg != 42 || member != j+1 {
			t.Fatalf("slow line %d: %d/%d", ln, seg, member)
		}
		if c.lineOf(seg, member) != ln {
			t.Fatal("lineOf not inverse")
		}
	}
}

func TestEverySlowAccessSwaps(t *testing.T) {
	c := newCAMEO(t)
	fast := uint64(c.layout.FastLines())
	slow := addr.Line(fast + 100)
	req := trace.Request{Addr: uint64(slow) * addr.LineBytes}
	c.Access(&req, 0)
	if c.SlotOfLine(slow) != 0 {
		t.Fatal("slow line not promoted on first access")
	}
	if st := c.Stats(); st.PageMigrations != 1 || st.BytesMoved != 2*addr.LineBytes {
		t.Fatalf("stats %+v", st)
	}
	// Accessing the evicted fast line swaps it straight back: thrash.
	evicted := addr.Line(100)
	if c.SlotOfLine(evicted) == 0 {
		t.Fatal("fast line should have been evicted")
	}
	req2 := trace.Request{Addr: uint64(c.lineOf(100, 0)) * addr.LineBytes}
	_ = req2
	reqEv := trace.Request{Addr: uint64(evicted) * addr.LineBytes}
	c.Access(&reqEv, clock.Millisecond)
	if c.SlotOfLine(evicted) != 0 {
		t.Fatal("evicted line not swapped back on access")
	}
	if c.Stats().PageMigrations != 2 {
		t.Fatal("second swap not counted")
	}
}

func TestFastAccessDoesNotSwap(t *testing.T) {
	c := newCAMEO(t)
	req := trace.Request{Addr: 64 * 7}
	c.Access(&req, 0)
	if c.Stats().PageMigrations != 0 {
		t.Fatal("fast-resident access triggered a swap")
	}
}

func TestThrashingTwoLinesOneGroup(t *testing.T) {
	// Two slow lines of the same group alternating: every access causes a
	// swap — the paper's intra-segment conflict pathology.
	c := newCAMEO(t)
	fast := uint64(c.layout.FastLines())
	a := trace.Request{Addr: (fast + 5) * addr.LineBytes}
	b := trace.Request{Addr: (fast + 5 + fast) * addr.LineBytes}
	at := clock.Time(0)
	for i := 0; i < 10; i++ {
		at += 10 * clock.Microsecond
		c.Access(&a, at)
		at += 10 * clock.Microsecond
		c.Access(&b, at)
	}
	if got := c.Stats().PageMigrations; got != 20 {
		t.Fatalf("swaps = %d, want 20 (every access migrates)", got)
	}
}

func TestPermutationRoundTrip(t *testing.T) {
	c := newCAMEO(t)
	fast := uint64(c.layout.FastLines())
	ln := addr.Line(fast + 33)
	req := trace.Request{Addr: uint64(ln) * addr.LineBytes}
	// Swap in, then access the evicted fast line to swap back.
	c.Access(&req, 0)
	evictedReq := trace.Request{Addr: 33 * addr.LineBytes}
	c.Access(&evictedReq, clock.Millisecond)
	if c.SlotOfLine(addr.Line(33)) != 0 {
		t.Fatal("round trip did not restore fast line")
	}
	if c.SlotOfLine(ln) == 0 {
		t.Fatal("slow line still in fast slot after round trip")
	}
}

func TestLockStallDuringLineSwap(t *testing.T) {
	c := newCAMEO(t)
	fast := uint64(c.layout.FastLines())
	ln := addr.Line(fast + 9)
	req := trace.Request{Addr: uint64(ln) * addr.LineBytes}
	c.Access(&req, 0)
	// Immediately re-access: the line is locked by its own swap.
	done := c.Access(&req, clock.Nanosecond)
	if done <= clock.Time(10*clock.Nanosecond) {
		t.Fatalf("access during swap completed at %v", done)
	}
	if c.Stats().LockStalls == 0 {
		t.Fatal("no lock stall recorded")
	}
}

func TestRejectsSingleLevel(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(
		addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if _, err := New(DefaultConfig(), b); err == nil {
		t.Fatal("CAMEO accepted single-level layout")
	}
}

func TestLLPPredictsStableGroups(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	cfg := DefaultConfig()
	cfg.UseLLP = true
	c, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated access to one fast line: after the first access the LLP
	// knows the slot and mispredictions stop.
	req := trace.Request{Addr: 64 * 9}
	at := clock.Time(0)
	for i := 0; i < 20; i++ {
		at += clock.Microsecond
		c.Access(&req, at)
	}
	if got := c.Mispredictions(); got > 1 {
		t.Errorf("stable line mispredicted %d times", got)
	}
}

func TestLLPMispredictsAfterSwap(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	cfg := DefaultConfig()
	cfg.UseLLP = true
	c, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	fast := uint64(c.layout.FastLines())
	slow := trace.Request{Addr: (fast + 77) * addr.LineBytes}
	evicted := trace.Request{Addr: 77 * addr.LineBytes}
	at := clock.Time(0)
	// Train on the fast line, swap it out via the slow member, then
	// re-access: its slot changed, so the predictor must miss once.
	at += clock.Microsecond
	c.Access(&evicted, at)
	before := c.Mispredictions()
	at += clock.Microsecond
	c.Access(&slow, at) // triggers swap: line 77 evicted to slow slot
	at += clock.Millisecond
	c.Access(&evicted, at)
	if c.Mispredictions() <= before {
		t.Error("no misprediction after the group's permutation changed")
	}
}

func TestLLPDisabledCountsNothing(t *testing.T) {
	c := newCAMEO(t)
	req := trace.Request{Addr: 64}
	c.Access(&req, 0)
	if c.Mispredictions() != 0 {
		t.Error("mispredictions counted with LLP disabled")
	}
}
