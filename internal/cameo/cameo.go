// Package cameo models the CAMEO baseline (Chou et al., MICRO 2014) as the
// MemPod paper evaluates it (§2, §4, §6).
//
// CAMEO manages the flat address space at 64 B line granularity.
// Congruence groups pair one fast line with R slow lines (R = 8 at the 1:8
// capacity ratio); *every* access to a slow-resident line triggers an
// immediate swap with the group's fast slot. No activity tracking exists;
// the migration trigger is the access event itself. At a high slow:fast
// ratio this floods the system with movement — the effect behind CAMEO's
// AMMAT degradation in Figure 8.
package cameo

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/tab"
	"repro/internal/trace"
)

// Config holds CAMEO's parameters.
type Config struct {
	// SwapOnWrite controls whether writeback accesses also trigger swaps
	// (CAMEO swaps on every slow access; kept as a knob for ablations).
	SwapOnWrite bool
	// UseLLP enables the Line Location Predictor model: a misprediction
	// costs one wasted access at the predicted-but-wrong location before
	// the replay. Disabled in the paper's Figure 8 comparison (all
	// mechanisms run with free bookkeeping there), available for
	// ablations.
	UseLLP bool
	// LLPLogEntries sizes the predictor table (default 14: 16K entries).
	LLPLogEntries int
}

// DefaultConfig returns the paper's CAMEO behaviour.
func DefaultConfig() Config { return Config{SwapOnWrite: true} }

// group state: a 9-slot permutation, 4 bits per slot, slot 0 = fast slot.
// Members: 0 is the group's fast line, 1..R its slow lines.

// CAMEO implements mech.Mechanism.
type CAMEO struct {
	cfg      Config
	backend  *mech.Backend
	layout   addr.Layout
	geom     *addr.Geom
	groups   *tab.U64Zero // permutation per congruence group; 0 = identity
	members  int
	identity uint64
	fast     uint64 // fast line count
	dFast    addr.Divisor
	locks    mech.LockTable // flat line -> swap completion
	pred     *llp
	mispred  uint64
	stats    mech.MigStats
}

// New builds a CAMEO over the backend's two-level memory.
func New(cfg Config, b *mech.Backend) (*CAMEO, error) {
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("cameo: layout is not two-level")
	}
	if l.SlowBytes%l.FastBytes != 0 {
		return nil, fmt.Errorf("cameo: slow capacity not a multiple of fast capacity")
	}
	ratio := int(l.SlowBytes / l.FastBytes)
	if ratio+1 > 16 {
		return nil, fmt.Errorf("cameo: ratio %d exceeds 4-bit member encoding", ratio)
	}
	c := &CAMEO{
		cfg:     cfg,
		backend: b,
		layout:  l,
		geom:    &b.Geom,
		groups:  tab.NewU64Zero(int(l.FastLines())),
		members: ratio + 1,
		fast:    uint64(l.FastLines()),
		dFast:   addr.NewDivisor(uint64(l.FastLines())),
	}
	for i := 0; i < c.members; i++ {
		c.identity |= uint64(i) << (4 * i)
	}
	if cfg.UseLLP {
		logN := cfg.LLPLogEntries
		if logN <= 0 {
			logN = 14
		}
		c.pred = newLLP(logN)
	}
	// Groups start as the identity permutation; the table is all-zero and
	// zero reads as the identity (member 0 in every slot would be an
	// invalid permutation, so the encoding is unambiguous).
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *CAMEO {
	c, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements mech.Mechanism.
func (c *CAMEO) Name() string { return "CAMEO" }

// Stats implements mech.Mechanism.
func (c *CAMEO) Stats() mech.MigStats { return c.stats }

// Release implements mech.Releaser; the mechanism must not be used after.
func (c *CAMEO) Release() {
	c.groups.Release()
	c.groups = nil
}

// groupOf decomposes a flat line into (group, member).
func (c *CAMEO) groupOf(ln addr.Line) (grp uint64, member int) {
	if uint64(ln) < c.fast {
		return uint64(ln), 0
	}
	s := uint64(ln) - c.fast
	return c.dFast.Mod(s), 1 + int(c.dFast.Div(s))
}

// lineOf is the inverse of groupOf.
func (c *CAMEO) lineOf(grp uint64, member int) addr.Line {
	if member == 0 {
		return addr.Line(grp)
	}
	return addr.Line(c.fast + grp + uint64(member-1)*c.fast)
}

func (c *CAMEO) perm(grp uint64) uint64 {
	if p := c.groups.A[grp]; p != 0 {
		return p
	}
	return c.identity
}

func memberAt(perm uint64, slot int) int { return int(perm >> (4 * slot) & 0xF) }

func slotOf(perm uint64, member, members int) int {
	for s := 0; s < members; s++ {
		if memberAt(perm, s) == member {
			return s
		}
	}
	panic("cameo: corrupt group permutation")
}

// Access implements mech.Mechanism: serve the line from its current slot;
// if that slot is slow, swap the line into the group's fast slot.
func (c *CAMEO) Access(r *trace.Request, at clock.Time) clock.Time {
	return c.access(r, addr.LineOf(addr.Addr(r.Addr)), at)
}

// AccessDecoded implements mech.DecodedAccessor. CAMEO manages lines, not
// frames: the global line index reassembles exactly from the plane's page
// and line-in-page (addresses are line-aligned by construction).
func (c *CAMEO) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return c.access(r, addr.Line(d.Page*addr.LinesPerPage+uint64(d.Line)), at)
}

func (c *CAMEO) access(r *trace.Request, ln addr.Line, at clock.Time) clock.Time {
	// CAMEO's locks only shed entries when their line is re-accessed;
	// compact occasionally with the trace clock as the expiry floor.
	c.locks.MaybeCompact(r.Time)
	grp, member := c.groupOf(ln)
	perm := c.perm(grp)
	slot := slotOf(perm, member, c.members)

	start := at
	var lockEnd clock.Time
	if end := c.locks.GetActive(uint64(ln), start); end != 0 {
		lockEnd = end
		c.stats.LockStalls++
	}

	if c.pred != nil {
		// Mispredictions pay a wasted probe at the predicted location
		// before the request replays at the correct slot.
		if predicted := c.pred.Predict(grp); predicted != slot {
			c.mispred++
			wrong := c.lineOf(grp, predicted%c.members)
			start = c.backend.Sys.Access(c.geom.HomeLocation(wrong), false, start)
		}
		c.pred.Update(grp, slot)
	}
	slotLine := c.lineOf(grp, slot)
	done := c.backend.Sys.Access(c.geom.HomeLocation(slotLine), r.Write, start)
	if lockEnd > done {
		done = lockEnd
	}

	if slot != 0 && (c.cfg.SwapOnWrite || !r.Write) {
		c.swapIntoFast(grp, perm, slot, ln, slotLine, start)
	}
	return done
}

// swapIntoFast performs CAMEO's event-triggered swap of the accessed
// line (currently in `slot` of its group) with the group's fast slot:
// the copy traffic, the permutation update, the locks on both moving
// lines, and the counters. Shared by the per-request and column paths.
func (c *CAMEO) swapIntoFast(grp, perm uint64, slot int, ln, slotLine addr.Line, start clock.Time) {
	fastLine := c.lineOf(grp, 0)
	end := c.backend.SwapLines(
		c.geom.HomeLocation(fastLine),
		c.geom.HomeLocation(slotLine),
		start,
	)
	evicted := c.lineOf(grp, memberAt(perm, 0))
	newPerm := perm
	ma, mb := uint64(memberAt(perm, 0)), uint64(memberAt(perm, slot))
	newPerm &^= 0xF | 0xF<<(4*slot)
	newPerm |= mb | ma<<(4*slot)
	c.groups.Set(uint32(grp), c.groups.A[grp], newPerm)
	c.locks.Put(uint64(ln), end)
	c.locks.Put(uint64(evicted), end)
	c.stats.PageMigrations++ // one line promoted per event
	c.stats.LineMigrations += 2
	c.stats.GlobalMoveLines += 2 // MC-to-MC swaps cross the switch (§4.4)
	c.stats.BytesMoved += 2 * addr.LineBytes
}

// AccessColumn implements mech.ColumnAccessor. CAMEO has no queues or
// intervals; its only immediate channel traffic is the event-triggered
// swap, which flushes the plan right after routing the triggering demand
// access — preserving the per-request order (demand, then copy traffic,
// both issued at the same request time). The LLP configuration chains a
// misprediction probe into the demand's issue time and keeps the
// per-request path.
func (c *CAMEO) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	dec := sc.Dec
	if c.pred != nil {
		for i := range dec {
			r := sc.Request(i)
			done[i] = c.AccessDecoded(&r, &dec[i], at[i])
		}
		return
	}
	plan := c.backend.Plan()
	plan.Begin(done)
	for i := range dec {
		write := sc.Write(i)
		ti := at[i]
		c.locks.MaybeCompact(sc.Times[i])
		ln := addr.Line(dec[i].Page*addr.LinesPerPage + uint64(dec[i].Line))
		grp, member := c.groupOf(ln)
		perm := c.perm(grp)
		slot := slotOf(perm, member, c.members)
		var lockEnd clock.Time
		if end := c.locks.GetActive(uint64(ln), ti); end != 0 {
			lockEnd = end
			c.stats.LockStalls++
		}
		done[i] = lockEnd
		slotLine := c.lineOf(grp, slot)
		loc := c.geom.HomeLocation(slotLine)
		plan.Route(loc.Channel, loc.Row, write, ti, int32(i))
		if slot != 0 && (c.cfg.SwapOnWrite || !write) {
			plan.Flush()
			c.swapIntoFast(grp, perm, slot, ln, slotLine, ti)
		}
	}
	plan.Flush()
}

// CheckInvariants verifies that every touched group's slot assignment is a
// permutation of its members. O(memory); intended for tests.
func (c *CAMEO) CheckInvariants() error {
	for g, perm := range c.groups.A {
		if perm == 0 {
			continue // untouched: identity
		}
		var seen uint16
		for slot := 0; slot < c.members; slot++ {
			m := memberAt(perm, slot)
			if m >= c.members {
				return fmt.Errorf("cameo: group %d slot %d holds invalid member %d", g, slot, m)
			}
			if seen&(1<<m) != 0 {
				return fmt.Errorf("cameo: group %d member %d appears twice", g, m)
			}
			seen |= 1 << m
		}
	}
	return nil
}

// Mispredictions reports LLP misses (0 when the predictor is disabled).
func (c *CAMEO) Mispredictions() uint64 { return c.mispred }

// SlotOfLine reports which slot (0 = fast) a flat line currently occupies,
// for tests.
func (c *CAMEO) SlotOfLine(ln addr.Line) int {
	grp, member := c.groupOf(ln)
	return slotOf(c.perm(grp), member, c.members)
}

var (
	_ mech.Mechanism       = (*CAMEO)(nil)
	_ mech.DecodedAccessor = (*CAMEO)(nil)
	_ mech.Releaser        = (*CAMEO)(nil)
	_ mech.ColumnAccessor  = (*CAMEO)(nil)
)
