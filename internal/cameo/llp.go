package cameo

// The Line Location Predictor (LLP) of Chou et al.: CAMEO keeps its
// congruence-group permutations in memory, so a naive implementation would
// read remap state before every access. The LLP is a small on-chip table
// predicting which slot a line currently occupies; the access is issued to
// the predicted location immediately, and the in-memory metadata (fetched
// in parallel or piggybacked) confirms it. A correct prediction hides the
// metadata latency entirely; a misprediction costs one wasted access
// before the request is replayed at the right location.
//
// The predictor is last-outcome per group, over a direct-mapped table:
// the common case (a group whose fast slot is stable between touches)
// predicts correctly, and thrashing groups mispredict — exactly the
// behaviour the paper describes degrading CAMEO under contention.

// llp is a direct-mapped last-outcome slot predictor.
type llp struct {
	slots []uint8
	mask  uint64
}

// newLLP builds a predictor with 2^logEntries entries.
func newLLP(logEntries int) *llp {
	n := 1 << logEntries
	return &llp{slots: make([]uint8, n), mask: uint64(n - 1)}
}

func (l *llp) index(grp uint64) uint64 {
	// splitmix-style scramble so adjacent groups spread over the table.
	x := grp
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & l.mask
}

// Predict returns the predicted slot for a group.
func (l *llp) Predict(grp uint64) int { return int(l.slots[l.index(grp)]) }

// Update records the observed slot.
func (l *llp) Update(grp uint64, slot int) { l.slots[l.index(grp)] = uint8(slot) }
