package tracestat

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestAnalyzeSynthetic(t *testing.T) {
	// Hand-built trace: 4 requests on 2 pages, one write.
	reqs := []trace.Request{
		{Addr: 0, Time: 0},
		{Addr: 64, Time: 100 * clock.Nanosecond},
		{Addr: 4096, Time: 200 * clock.Nanosecond, Write: true, Core: 1},
		{Addr: 0, Time: 50 * clock.Microsecond},
	}
	s, err := Analyze(trace.NewSliceStream(reqs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != 4 || s.Writes != 1 || s.Footprint != 2 || s.Cores != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Span != 50*clock.Microsecond {
		t.Errorf("span %v", s.Span)
	}
	if s.Intervals != 2 {
		t.Errorf("intervals %d, want 2", s.Intervals)
	}
	// Interval 1: pages {0, 0}, wait: reqs 1-2 -> pages {0}; interval 2:
	// {page1, page0}. Overlap of interval 2 with 1: page0 in both -> 1/2.
	if s.MeanOverlap != 0.5 {
		t.Errorf("overlap %v, want 0.5", s.MeanOverlap)
	}
	if s.HomeFastShare != 1.0 {
		t.Errorf("home fast share %v (all pages < 1GB)", s.HomeFastShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(trace.NewSliceStream(nil), 0); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAnalyzeWorkloadShapes(t *testing.T) {
	// A streaming workload has near-zero interval overlap; a hot-set
	// workload has substantial overlap and high concentration.
	stream, _ := workload.Homogeneous("bwaves")
	hot, _ := workload.Homogeneous("cactus")

	ss, err := Analyze(stream.MustStream(60_000, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Analyze(hot.MustStream(60_000, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.MeanOverlap >= hs.MeanOverlap {
		t.Errorf("streaming overlap %.2f not below hot-set overlap %.2f",
			ss.MeanOverlap, hs.MeanOverlap)
	}
	if hs.Top10PctShare < 0.4 {
		t.Errorf("hot-set top-10%% share %.2f suspiciously low", hs.Top10PctShare)
	}
	if hs.RatePer50us() < 1000 {
		t.Errorf("rate %.0f per 50us too low", hs.RatePer50us())
	}
}

func TestSummaryString(t *testing.T) {
	w, _ := workload.Mix(1)
	s, err := Analyze(w.MustStream(20_000, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"requests", "footprint", "interval overlap", "top 1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
