// Package tracestat computes the workload-characterization statistics used
// to tune and sanity-check traces: footprint, write share, request rate,
// per-interval uniqueness (the quantity §3's interval arguments hinge on),
// and page-touch concentration.
package tracestat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
)

// Summary characterizes one trace.
type Summary struct {
	Requests  int
	Writes    int
	Span      clock.Duration // last arrival - first arrival
	Footprint int            // distinct pages touched
	Cores     int            // distinct cores seen

	// HomeFastShare is the fraction of accesses whose page's home is in
	// fast memory under the default layout (what a no-migration system
	// would serve from HBM).
	HomeFastShare float64

	// Interval statistics over fixed windows of IntervalReqs requests:
	// how much of one interval's page set recurs in the next. Low overlap
	// is what defeats count-based prediction (§3).
	IntervalReqs    int
	Intervals       int
	MeanUniquePages float64 // distinct pages per interval
	MeanOverlap     float64 // |pages_i ∩ pages_{i+1}| / |pages_{i+1}|

	// Touch concentration: share of accesses landing on the most-touched
	// 1% and 10% of pages.
	Top1PctShare  float64
	Top10PctShare float64
}

// Analyze consumes the stream and computes its summary, slicing intervals
// at intervalReqs requests (pass 0 for the paper's 5500).
func Analyze(s trace.Stream, intervalReqs int) (Summary, error) {
	if intervalReqs <= 0 {
		intervalReqs = 5500
	}
	sum := Summary{IntervalReqs: intervalReqs}
	layout := addr.DefaultLayout()

	counts := make(map[addr.Page]int)
	cores := make(map[uint8]bool)
	var first, last clock.Time
	firstSet := false

	cur := make(map[addr.Page]bool)
	var prev map[addr.Page]bool
	var uniqueSum, overlapSum float64
	overlapN := 0

	flush := func() {
		sum.Intervals++
		uniqueSum += float64(len(cur))
		if prev != nil && len(cur) > 0 {
			inter := 0
			for p := range cur {
				if prev[p] {
					inter++
				}
			}
			overlapSum += float64(inter) / float64(len(cur))
			overlapN++
		}
		prev = cur
		cur = make(map[addr.Page]bool)
	}

	var r trace.Request
	n := 0
	for s.Next(&r) {
		p := addr.PageOf(addr.Addr(r.Addr))
		counts[p]++
		cur[p] = true
		cores[r.Core] = true
		if r.Write {
			sum.Writes++
		}
		if layout.IsFast(p) {
			sum.HomeFastShare++
		}
		if !firstSet {
			first, firstSet = r.Time, true
		}
		last = r.Time
		n++
		if n%intervalReqs == 0 {
			flush()
		}
	}
	if n == 0 {
		return sum, fmt.Errorf("tracestat: empty trace")
	}
	sum.Requests = n
	sum.Span = last - first
	sum.Footprint = len(counts)
	sum.Cores = len(cores)
	sum.HomeFastShare /= float64(n)
	if sum.Intervals > 0 {
		sum.MeanUniquePages = uniqueSum / float64(sum.Intervals)
	}
	if overlapN > 0 {
		sum.MeanOverlap = overlapSum / float64(overlapN)
	}

	// Concentration.
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	cum := 0
	top1 := (len(all) + 99) / 100
	top10 := (len(all) + 9) / 10
	for i, c := range all {
		cum += c
		if i+1 == top1 {
			sum.Top1PctShare = float64(cum) / float64(n)
		}
		if i+1 == top10 {
			sum.Top10PctShare = float64(cum) / float64(n)
			break
		}
	}
	return sum, nil
}

// RatePer50us returns the average requests per 50 µs window — the paper's
// calibration quantity (~5500).
func (s Summary) RatePer50us() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.Requests) / (float64(s.Span) / float64(50*clock.Microsecond))
}

// String renders the summary as an aligned block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests            %d (%.1f%% writes)\n",
		s.Requests, 100*float64(s.Writes)/float64(s.Requests))
	fmt.Fprintf(&b, "span                %v (%.0f requests per 50us)\n", s.Span, s.RatePer50us())
	fmt.Fprintf(&b, "footprint           %d pages (%.1f MB), %d cores\n",
		s.Footprint, float64(s.Footprint)*addr.PageBytes/(1<<20), s.Cores)
	fmt.Fprintf(&b, "home-fast share     %.1f%%\n", 100*s.HomeFastShare)
	fmt.Fprintf(&b, "intervals           %d x %d requests\n", s.Intervals, s.IntervalReqs)
	fmt.Fprintf(&b, "unique pages/intvl  %.0f\n", s.MeanUniquePages)
	fmt.Fprintf(&b, "interval overlap    %.1f%%\n", 100*s.MeanOverlap)
	fmt.Fprintf(&b, "top 1%% / 10%% share  %.1f%% / %.1f%%\n",
		100*s.Top1PctShare, 100*s.Top10PctShare)
	return b.String()
}
