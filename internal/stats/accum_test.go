package stats

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
)

// randPairs builds n random (arrival, done) pairs with done >= arrival,
// the only shape the engine ever produces.
func randPairs(rng *rand.Rand, n int) (arrivals, done []clock.Time) {
	arrivals = make([]clock.Time, n)
	done = make([]clock.Time, n)
	for i := range arrivals {
		a := clock.Time(rng.Int63n(1 << 40))
		arrivals[i] = a
		done[i] = a + clock.Time(rng.Int63n(1<<20))
	}
	return arrivals, done
}

// noteAll is the per-request reference accumulation.
func noteAll(arrivals, done []clock.Time) Accum {
	var a Accum
	for i := range arrivals {
		a.Note(arrivals[i], done[i])
	}
	return a
}

// TestNoteColumnChunkInvariance pins the property the batched engine
// paths rely on: splitting a request sequence into arbitrary NoteColumn
// chunks (including empty ones) and interleaving per-request Note calls
// yields tallies identical to noting every pair individually. Requests
// and TotalStall are exact integer sums and Span a running max, so no
// grouping can perturb them.
func TestNoteColumnChunkInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		arrivals, done := randPairs(rng, n)
		want := noteAll(arrivals, done)

		var got Accum
		for lo := 0; lo < n; {
			switch rng.Intn(3) {
			case 0: // per-request
				got.Note(arrivals[lo], done[lo])
				lo++
			case 1: // empty column, then a chunk
				got.NoteColumn(nil, nil)
				fallthrough
			default:
				hi := lo + 1 + rng.Intn(n-lo)
				got.NoteColumn(arrivals[lo:hi], done[lo:hi])
				lo = hi
			}
		}
		if got != want {
			t.Fatalf("trial %d (n=%d): chunked %+v, want %+v", trial, n, got, want)
		}
	}
}

// TestMergePartitionInvariance pins the pod-parallel contract: scatter
// the sequence across k shard Accums in any assignment, merge the shards
// in any order, and the totals match serial accumulation bit for bit.
func TestMergePartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(8)
		arrivals, done := randPairs(rng, n)
		want := noteAll(arrivals, done)

		shards := make([]Accum, k)
		for i := range arrivals {
			s := &shards[rng.Intn(k)]
			s.Note(arrivals[i], done[i])
		}
		var got Accum
		for _, i := range rng.Perm(k) {
			got.Merge(shards[i])
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, k=%d): merged %+v, want %+v", trial, n, k, got, want)
		}
	}
}

// TestFlushToWritesWithoutReset checks that FlushTo copies the tallies
// into the Result without consuming the Accum: accumulation can continue
// and a later flush reflects the extra requests.
func TestFlushToWritesWithoutReset(t *testing.T) {
	var a Accum
	a.Note(100, 700)
	a.Note(200, 500)

	var r Result
	a.FlushTo(&r)
	if r.Requests != 2 || r.TotalStall != 600+300 || r.Span != 700 {
		t.Fatalf("flushed %+v", r)
	}
	if (a != Accum{Requests: 2, TotalStall: 900, Span: 700}) {
		t.Fatalf("FlushTo mutated the accumulator: %+v", a)
	}

	a.Note(300, 1300)
	a.FlushTo(&r)
	if r.Requests != 3 || r.TotalStall != 900+1000 || r.Span != 1300 {
		t.Fatalf("reflushed %+v", r)
	}
}

// TestNoteColumnLengthMismatchPanics pins the guard: ragged columns are
// an engine bug, not data, and must fail loudly.
func TestNoteColumnLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NoteColumn accepted mismatched column lengths")
		}
	}()
	var a Accum
	a.NoteColumn(make([]clock.Time, 3), make([]clock.Time, 2))
}
