// Package stats defines the metrics the evaluation reports, chiefly AMMAT
// (Average Main Memory Access Time), computed exactly as §6.2 of the paper
// prescribes: total memory stall time over the number of original trace
// requests. Migration and bookkeeping traffic inflate the numerator
// (through contention and locking) but never the denominator.
package stats

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/energy"
	"repro/internal/mech"
)

// Result summarizes one simulation run.
type Result struct {
	Workload  string
	Mechanism string

	Requests   uint64         // original trace requests (AMMAT denominator)
	TotalStall clock.Duration // Σ (completion − trace arrival)
	Span       clock.Duration // last completion time

	// Per-level service counts and row-buffer behaviour, including
	// migration and bookkeeping traffic.
	FastAccesses    uint64
	SlowAccesses    uint64
	FastActivations uint64 // row activations in fast memory
	SlowActivations uint64 // row activations in slow memory
	FastRowHitRate  float64
	SlowRowHitRate  float64
	RowHitRate      float64 // combined

	Mig mech.MigStats
}

// Accum is one shard's share of the engine-side per-request tallies: the
// request count, the stall sum and the completion-time high-water mark.
// The pod-parallel engine gives each worker its own Accum and merges them
// in fixed worker order at the end of the run; sums and maxima are
// order-independent, so the merged totals are bit-identical to serial
// accumulation whatever the interleaving was.
type Accum struct {
	Requests   uint64
	TotalStall clock.Duration
	Span       clock.Duration
}

// Note records one serviced request: its trace arrival and completion.
func (a *Accum) Note(arrival clock.Time, done clock.Time) {
	a.Requests++
	a.TotalStall += done - arrival
	if done > a.Span {
		a.Span = done
	}
}

// NoteColumn records a dense column of serviced requests — arrivals[i]
// paired with done[i] — in one pass, accumulating into locals so the
// engine's batched paths pay the struct write once per column instead of
// once per request. Equivalent to calling Note for each pair in order.
func (a *Accum) NoteColumn(arrivals, done []clock.Time) {
	if len(arrivals) != len(done) {
		panic("stats: NoteColumn column length mismatch")
	}
	stall, span := a.TotalStall, a.Span
	for i, d := range done {
		stall += d - arrivals[i]
		if d > span {
			span = d
		}
	}
	a.Requests += uint64(len(done))
	a.TotalStall, a.Span = stall, span
}

// Merge folds another shard's tallies into a.
func (a *Accum) Merge(b Accum) {
	a.Requests += b.Requests
	a.TotalStall += b.TotalStall
	if b.Span > a.Span {
		a.Span = b.Span
	}
}

// FlushTo writes the accumulated tallies into a run result.
func (a Accum) FlushTo(r *Result) {
	r.Requests = a.Requests
	r.TotalStall = a.TotalStall
	r.Span = a.Span
}

// AMMAT returns the average main-memory access time in nanoseconds.
func (r Result) AMMAT() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalStall) / float64(r.Requests) / float64(clock.Nanosecond)
}

// FastServiceFraction returns the fraction of all serviced accesses that
// hit fast memory.
func (r Result) FastServiceFraction() float64 {
	total := r.FastAccesses + r.SlowAccesses
	if total == 0 {
		return 0
	}
	return float64(r.FastAccesses) / float64(total)
}

// Energy evaluates the data-movement energy model (§5.3) over the run.
func (r Result) Energy() energy.Breakdown {
	return energy.Compute(energy.Counts{
		FastAccesses:    r.FastAccesses,
		SlowAccesses:    r.SlowAccesses,
		FastActivations: r.FastActivations,
		SlowActivations: r.SlowActivations,
		DemandLines:     r.Requests,
		GlobalMigLines:  r.Mig.GlobalMoveLines,
	})
}

// Normalized returns this result's AMMAT relative to a baseline run
// (typically the no-migration TLM configuration, as in Figures 8–10).
func (r Result) Normalized(baseline Result) float64 {
	b := baseline.AMMAT()
	if b == 0 {
		return 0
	}
	return r.AMMAT() / b
}

// String gives a one-line summary for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: AMMAT %.2fns, %d reqs, fast %.0f%%, moved %dMB",
		r.Workload, r.Mechanism, r.AMMAT(), r.Requests,
		100*r.FastServiceFraction(), r.Mig.BytesMoved>>20)
}

// Mean averages a metric over results.
func Mean(rs []Result, f func(Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += f(r)
	}
	return sum / float64(len(rs))
}

// GeoMeanNormalized returns the geometric mean of rs[i].Normalized(bs[i]).
// The slices must be parallel. Geometric means are the standard way to
// average normalized performance across workloads.
func GeoMeanNormalized(rs, bs []Result) (float64, error) {
	if len(rs) != len(bs) || len(rs) == 0 {
		return 0, fmt.Errorf("stats: mismatched result sets (%d vs %d)", len(rs), len(bs))
	}
	logSum := 0.0
	for i := range rs {
		n := rs[i].Normalized(bs[i])
		if n <= 0 {
			return 0, fmt.Errorf("stats: non-positive normalized AMMAT for %s", rs[i].Workload)
		}
		logSum += math.Log(n)
	}
	return math.Exp(logSum / float64(len(rs))), nil
}
