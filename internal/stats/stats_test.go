package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/mech"
)

func TestAMMAT(t *testing.T) {
	r := Result{Requests: 4, TotalStall: 100 * clock.Nanosecond}
	if got := r.AMMAT(); got != 25 {
		t.Errorf("AMMAT = %v, want 25", got)
	}
	if (Result{}).AMMAT() != 0 {
		t.Error("empty result AMMAT should be 0")
	}
}

func TestFastServiceFraction(t *testing.T) {
	r := Result{FastAccesses: 30, SlowAccesses: 10}
	if got := r.FastServiceFraction(); got != 0.75 {
		t.Errorf("fraction = %v", got)
	}
	if (Result{}).FastServiceFraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestNormalized(t *testing.T) {
	base := Result{Requests: 10, TotalStall: 1000}
	r := Result{Requests: 10, TotalStall: 800}
	if got := r.Normalized(base); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("normalized = %v, want 0.8", got)
	}
	if r.Normalized(Result{}) != 0 {
		t.Error("normalizing against empty baseline should be 0")
	}
}

func TestString(t *testing.T) {
	r := Result{
		Workload: "mix1", Mechanism: "MemPod", Requests: 100,
		TotalStall:   2500 * clock.Nanosecond,
		FastAccesses: 50, SlowAccesses: 50,
		Mig: mech.MigStats{BytesMoved: 4 << 20},
	}
	s := r.String()
	for _, want := range []string{"mix1", "MemPod", "25.00ns", "50%", "4MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestMean(t *testing.T) {
	rs := []Result{
		{Requests: 1, TotalStall: 10 * clock.Nanosecond},
		{Requests: 1, TotalStall: 30 * clock.Nanosecond},
	}
	if got := Mean(rs, Result.AMMAT); got != 20 {
		t.Errorf("mean = %v", got)
	}
	if Mean(nil, Result.AMMAT) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestGeoMeanNormalized(t *testing.T) {
	base := []Result{
		{Workload: "a", Requests: 1, TotalStall: 100},
		{Workload: "b", Requests: 1, TotalStall: 100},
	}
	rs := []Result{
		{Workload: "a", Requests: 1, TotalStall: 50},
		{Workload: "b", Requests: 1, TotalStall: 200},
	}
	g, err := GeoMeanNormalized(rs, base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1.0) > 1e-9 {
		t.Errorf("geomean of 0.5 and 2.0 = %v, want 1.0", g)
	}
	if _, err := GeoMeanNormalized(rs, base[:1]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := GeoMeanNormalized(nil, nil); err == nil {
		t.Error("empty sets accepted")
	}
	if _, err := GeoMeanNormalized([]Result{{Workload: "a"}}, base[:1]); err == nil {
		t.Error("zero normalized value accepted")
	}
}

// Geometric mean is bounded by min and max of the normalized values.
func TestGeoMeanBounds(t *testing.T) {
	prop := func(stalls []uint32) bool {
		if len(stalls) == 0 {
			return true
		}
		var rs, bs []Result
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, s := range stalls {
			st := clock.Duration(s%10000) + 1
			rs = append(rs, Result{Workload: string(rune('a' + i%26)), Requests: 1, TotalStall: st})
			bs = append(bs, Result{Workload: rs[i].Workload, Requests: 1, TotalStall: 5000})
			n := rs[i].Normalized(bs[i])
			lo = math.Min(lo, n)
			hi = math.Max(hi, n)
		}
		g, err := GeoMeanNormalized(rs, bs)
		if err != nil {
			return false
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
