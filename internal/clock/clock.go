// Package clock provides the simulation time base and frequency math used
// throughout the simulator.
//
// Simulated time is measured in integer femtoseconds. A femtosecond base is
// exact for every clock in the modelled system (3.2 GHz cores, 1 GHz and
// 1.2 GHz HBM buses, 800 MHz and 1.2 GHz DDR buses), so timing arithmetic
// never accumulates rounding drift across the billions of events in a run.
package clock

import "fmt"

// Time is a point in simulated time, in femtoseconds from the start of the
// simulation. The int64 range covers about 2.5 hours of simulated time,
// roughly six orders of magnitude more than any experiment in this
// repository needs.
type Time int64

// Duration is a span of simulated time in femtoseconds.
type Duration = Time

// Common durations.
const (
	Femtosecond Duration = 1
	Picosecond  Duration = 1000
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Freq is a clock frequency in hertz.
type Freq int64

// Common frequencies used by the modelled system (Table 2 of the paper and
// the future-scaling study in §6.3.4).
const (
	MHz Freq = 1_000_000
	GHz Freq = 1_000 * MHz
)

// Period returns the duration of one cycle at frequency f, truncated to a
// whole number of femtoseconds. Every clock in the baseline system divides
// 10^15 evenly; the only exception is the 1.2 GHz DDR4-2400 bus of the
// future-scaling study, where truncation loses a third of a femtosecond per
// cycle — eleven orders of magnitude below the latencies being measured.
func (f Freq) Period() Duration {
	if f <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %d", f))
	}
	return Duration(int64(Second) / int64(f))
}

// Cycles converts n cycles at frequency f into a duration.
func (f Freq) Cycles(n int64) Duration {
	return Duration(n) * f.Period()
}

// Nanoseconds reports t as a float64 number of nanoseconds. It is intended
// for reporting; simulation math stays in integer femtoseconds.
func (t Time) Nanoseconds() float64 {
	return float64(t) / float64(Nanosecond)
}

// Microseconds reports t as a float64 number of microseconds.
func (t Time) Microseconds() float64 {
	return float64(t) / float64(Microsecond)
}

// String formats the time with an adaptive unit for diagnostics.
func (t Time) String() string {
	switch {
	case t < Picosecond:
		return fmt.Sprintf("%dfs", int64(t))
	case t < Nanosecond:
		return fmt.Sprintf("%.2fps", float64(t)/float64(Picosecond))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
