package clock

import (
	"testing"
	"testing/quick"
)

func TestPeriodExactness(t *testing.T) {
	cases := []struct {
		f    Freq
		want Duration
	}{
		{1 * GHz, 1_000_000},     // HBM bus
		{800 * MHz, 1_250_000},   // DDR4-1600 bus
		{3200 * MHz, 312_500},    // 3.2 GHz core
		{1200 * MHz, 833_333},    // DDR4-2400 bus (truncated, see below)
		{4 * GHz, 250_000},       // future HBM
		{2 * GHz, 500_000},       //
		{100 * MHz, 10_000_000},  // 10 ns
		{1 * MHz, 1_000_000_000}, // 1 us
	}
	for _, c := range cases {
		if got := c.f.Period(); got != c.want {
			t.Errorf("Period(%d) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestCycles(t *testing.T) {
	if got := (1 * GHz).Cycles(7); got != 7*Picosecond*1000 {
		t.Errorf("7 cycles at 1GHz = %v, want 7ns", got)
	}
	if got := (800 * MHz).Cycles(11); got != 13_750_000 {
		t.Errorf("11 cycles at 800MHz = %d fs, want 13.75ns", got)
	}
	if got := (3200 * MHz).Cycles(0); got != 0 {
		t.Errorf("0 cycles = %v, want 0", got)
	}
}

func TestPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Period(0) did not panic")
		}
	}()
	Freq(0).Period()
}

func TestConversions(t *testing.T) {
	if got := Time(1_500_000).Nanoseconds(); got != 1.5 {
		t.Errorf("Nanoseconds = %v, want 1.5", got)
	}
	if got := (50 * Microsecond).Microseconds(); got != 50 {
		t.Errorf("Microseconds = %v, want 50", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5fs"},
		{2 * Picosecond, "2.00ps"},
		{3 * Nanosecond, "3.00ns"},
		{50 * Microsecond, "50.00us"},
		{7 * Millisecond, "7.00ms"},
		{2 * Second, "2000.00ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestMaxMinProperties(t *testing.T) {
	prop := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mx, mn := Max(x, y), Min(x, y)
		return mx >= x && mx >= y && mn <= x && mn <= y &&
			(mx == x || mx == y) && (mn == x || mn == y) &&
			mx+mn == x+y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesMonotonic(t *testing.T) {
	prop := func(n uint16) bool {
		f := 800 * MHz
		return f.Cycles(int64(n)+1) > f.Cycles(int64(n))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
