package sim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cameo"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newBackend() *mech.Backend {
	return mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
}

func TestRunStatic(t *testing.T) {
	b := newBackend()
	e := New(b, mech.NewStatic("TLM", b))
	w, _ := workload.Homogeneous("gcc")
	res, err := e.Run("gcc", w.MustStream(10000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10000 {
		t.Fatalf("requests %d", res.Requests)
	}
	if res.AMMAT() <= 0 {
		t.Fatal("AMMAT not positive")
	}
	if res.FastAccesses+res.SlowAccesses != 10000 {
		t.Fatalf("service counts %d+%d != 10000", res.FastAccesses, res.SlowAccesses)
	}
	if res.Span <= 0 {
		t.Fatal("span not positive")
	}
}

func TestRunRejectsUnorderedTrace(t *testing.T) {
	b := newBackend()
	e := New(b, mech.NewStatic("TLM", b))
	reqs := []trace.Request{
		{Addr: 0, Time: 100 * clock.Nanosecond},
		{Addr: 64, Time: 50 * clock.Nanosecond},
	}
	if _, err := e.Run("bad", trace.NewSliceStream(reqs)); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestWindowGatesIssue(t *testing.T) {
	// With a window of 1, back-to-back requests serialize even when their
	// trace timestamps coincide.
	mkTrace := func() trace.Stream {
		reqs := make([]trace.Request, 64)
		for i := range reqs {
			reqs[i] = trace.Request{Addr: uint64(i) * 2048 * 8, Time: 0}
		}
		return trace.NewSliceStream(reqs)
	}
	b1 := newBackend()
	e1 := New(b1, mech.NewStatic("TLM", b1))
	e1.Window = 1
	narrow := e1.MustRun("w", mkTrace())

	b2 := newBackend()
	e2 := New(b2, mech.NewStatic("TLM", b2))
	e2.Window = -1 // unlimited
	wide := e2.MustRun("w", mkTrace())

	if narrow.TotalStall <= wide.TotalStall {
		t.Errorf("window=1 stall %v not greater than unlimited %v",
			narrow.TotalStall, wide.TotalStall)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() stats.Result {
		b := newBackend()
		e := New(b, core.MustNew(core.DefaultConfig(), b))
		w, _ := workload.Mix(5)
		return e.MustRun("mix5", w.MustStream(30000, 7))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

// The headline sanity check (Figure 8's shape): on a hot-set workload,
// HBM-only is fastest and MemPod beats no-migration; on a streaming
// workload, CAMEO's swap-per-access event trigger degrades it below the
// no-migration baseline.
func TestMechanismOrderingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	const n = 120000

	runWith := func(w workload.Workload, build func(b *mech.Backend) mech.Mechanism) stats.Result {
		b := newBackend()
		e := New(b, build(b))
		return e.MustRun(w.Name, w.MustStream(n, 42))
	}

	hotset, _ := workload.Homogeneous("cactus")
	tlm := runWith(hotset, func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) })
	mp := runWith(hotset, func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) })

	hbmLayout := addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	hb := mech.NewBackend(memsys.MustNew(hbmLayout, dram.HBM(), dram.DDR4_1600()))
	hbm := New(hb, mech.NewStatic("HBM-only", hb)).MustRun("cactus", hotset.MustStream(n, 42))

	stream, _ := workload.Homogeneous("bwaves")
	tlmS := runWith(stream, func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) })
	camS := runWith(stream, func(b *mech.Backend) mech.Mechanism { return cameo.MustNew(cameo.DefaultConfig(), b) })

	t.Logf("cactus AMMAT ns: HBM %.2f, MemPod %.2f, TLM %.2f; bwaves: TLM %.2f, CAMEO %.2f",
		hbm.AMMAT(), mp.AMMAT(), tlm.AMMAT(), tlmS.AMMAT(), camS.AMMAT())

	if !(hbm.AMMAT() < tlm.AMMAT()) {
		t.Errorf("HBM-only (%.2f) not faster than TLM (%.2f)", hbm.AMMAT(), tlm.AMMAT())
	}
	if !(mp.AMMAT() < tlm.AMMAT()) {
		t.Errorf("MemPod (%.2f) not faster than no-migration TLM (%.2f)", mp.AMMAT(), tlm.AMMAT())
	}
	if !(camS.AMMAT() > tlmS.AMMAT()) {
		t.Errorf("CAMEO on streaming (%.2f) not slower than TLM (%.2f)", camS.AMMAT(), tlmS.AMMAT())
	}
}

func TestBaselineMechanismsRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n = 40000
	w, _ := workload.Mix(1)

	builders := []func(b *mech.Backend) mech.Mechanism{
		func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) },
		func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) },
		func(b *mech.Backend) mech.Mechanism { return thm.MustNew(thm.DefaultConfig(), b) },
		func(b *mech.Backend) mech.Mechanism { return cameo.MustNew(cameo.DefaultConfig(), b) },
		func(b *mech.Backend) mech.Mechanism {
			cfg := hma.DefaultConfig()
			cfg.Interval = 500 * clock.Microsecond
			cfg.SortStall = 35 * clock.Microsecond
			return hma.MustNew(cfg, b)
		},
	}
	for _, build := range builders {
		b := newBackend()
		m := build(b)
		res, err := New(b, m).Run("mix1", w.MustStream(n, 11))
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if res.Requests != n || res.AMMAT() <= 0 {
			t.Errorf("%s: bad result %+v", m.Name(), res)
		}
	}
}
