package sim

import (
	"bytes"
	"testing"

	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// For a static mechanism, widening the outstanding-request window can only
// reduce total stall: requests issue no later, and the memory system is
// work-conserving.
func TestWindowMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	w, _ := workload.Homogeneous("mcf")
	run := func(window int) stats.Result {
		b := newBackend()
		e := New(b, mech.NewStatic("TLM", b))
		e.Window = window
		return e.MustRun("mcf", w.MustStream(40_000, 6))
	}
	prev := run(4)
	for _, window := range []int{16, 64, 256} {
		cur := run(window)
		if cur.TotalStall > prev.TotalStall {
			t.Errorf("window %d stall %v exceeds smaller window's %v",
				window, cur.TotalStall, prev.TotalStall)
		}
		prev = cur
	}
}

// The engine reports identical results whether the stream comes straight
// from the generator or is round-tripped through the binary trace format —
// recorded traces are faithful replays.
func TestGeneratorVsReplayEquivalence(t *testing.T) {
	w, _ := workload.Mix(2)

	b1 := newBackend()
	live := New(b1, mech.NewStatic("TLM", b1)).MustRun("mix2", w.MustStream(20_000, 12))

	var buf bytes.Buffer
	if _, err := trace.Write(&buf, w.MustStream(20_000, 12)); err != nil {
		t.Fatal(err)
	}
	replayStream, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2 := newBackend()
	replay := New(b2, mech.NewStatic("TLM", b2)).MustRun("mix2", replayStream)

	if live != replay {
		t.Fatalf("live %+v != replay %+v", live, replay)
	}
}
