package sim

// Version stamps the simulation semantics of the whole engine stack: the
// issue window and batching rules here, the DRAM timing kernel, the
// address map, the workload generators and every mechanism's behaviour.
// It exists for one purpose — content-addressed result caching
// (internal/resultcache): cached cell results are keyed on Version, so a
// bump orphans every previously stored result at once.
//
// Bump policy: increment Version whenever a change alters any simulated
// result — timing formulas, migration policy behaviour, trace generation,
// metric accounting — even when no config struct changed shape. Changes
// that are proven bit-identical by the differential suites (batching,
// pod-parallelism, zero-copy replay) do NOT require a bump; that proof is
// exactly what makes the cache safe across them. Mechanism- or
// spec-parameter changes do not require a bump either: parameters are
// fingerprinted into each cell key already. When in doubt, bump — a stale
// miss costs one re-simulation, a wrong hit corrupts published figures.
const Version = 1
