package sim

import (
	"testing"

	"repro/internal/cameo"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/thm"
	"repro/internal/workload"
)

// Structural invariants must hold after driving each mechanism with a real
// multi-programmed workload: remap state is always a permutation, so no
// data is ever lost or duplicated by migration.

const invariantTraceLen = 80_000

func driveWorkload(t *testing.T, m mech.Mechanism, b *mech.Backend, seed int64) {
	t.Helper()
	w, err := workload.Mix(6) // streaming + hot-set blend drives heavy migration
	if err != nil {
		t.Fatal(err)
	}
	e := New(b, m)
	if _, err := e.Run(w.Name, w.MustStream(invariantTraceLen, seed)); err != nil {
		t.Fatal(err)
	}
}

func TestMemPodInvariantsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for seed := int64(1); seed <= 3; seed++ {
		b := newBackend()
		m := core.MustNew(core.DefaultConfig(), b)
		driveWorkload(t, m, b, seed)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Stats().PageMigrations == 0 {
			t.Fatalf("seed %d: no migrations exercised", seed)
		}
	}
}

func TestMemPodFullCountersInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	b := newBackend()
	cfg := core.DefaultConfig()
	cfg.UseFullCounters = true
	m := core.MustNew(cfg, b)
	driveWorkload(t, m, b, 1)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MemPod-FC" {
		t.Errorf("ablation name %q", m.Name())
	}
}

func TestHMAInvariantsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	b := newBackend()
	cfg := hma.DefaultConfig()
	cfg.Interval = 200 * clock.Microsecond
	cfg.SortStall = 14 * clock.Microsecond
	m := hma.MustNew(cfg, b)
	driveWorkload(t, m, b, 2)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().PageMigrations == 0 {
		t.Fatal("no migrations exercised")
	}
}

func TestTHMInvariantsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	b := newBackend()
	m := thm.MustNew(thm.DefaultConfig(), b)
	driveWorkload(t, m, b, 3)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().PageMigrations == 0 {
		t.Fatal("no migrations exercised")
	}
}

func TestCAMEOInvariantsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	b := newBackend()
	m := cameo.MustNew(cameo.DefaultConfig(), b)
	driveWorkload(t, m, b, 4)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().PageMigrations == 0 {
		t.Fatal("no migrations exercised")
	}
}

// Migration conservation: total accesses seen by the memory system equal
// demand requests plus injected migration/bookkeeping traffic.
func TestAccessConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	b := newBackend()
	m := core.MustNew(core.DefaultConfig(), b)
	w, _ := workload.Homogeneous("cactus")
	res := New(b, m).MustRun("cactus", w.MustStream(invariantTraceLen, 9))

	total := b.Sys.FastStats().Accesses() + b.Sys.SlowStats().Accesses()
	expected := res.Requests + res.Mig.LineMigrations*2 // each moved line: read + write
	if total != expected {
		t.Fatalf("memory system saw %d accesses, want %d (requests %d + 2x%d moved lines)",
			total, expected, res.Requests, res.Mig.LineMigrations)
	}
}
