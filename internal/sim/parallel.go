// Pod-parallel replay: the engine-side exploitation of the paper's core
// architectural property. MemPod's pods are independent between migration
// intervals — migration traffic never leaves a pod, each pod owns its
// channels, tables and locks, and only the epoch rollover walks all pods
// (§5). The serial engine interleaves every pod's requests on one
// goroutine; this path simulates the pods on separate workers between
// boundaries and joins at a deterministic barrier where the interval work
// runs in fixed pod order, producing bit-identical results.
//
// # Why blocks of exactly one window
//
// The only state coupling requests of *different* pods is the engine's
// outstanding-request window: request i cannot issue before request i-W
// completed (W = Window). Processing requests in blocks of exactly W
// dissolves that coupling into a wavefront: every gate of block b is a
// completion time of block b-1, so a serial prepass over the block can
// compute each request's exact issue time `at` before any of the block is
// simulated. With issue times fixed, interval-boundary crossings
// (at >= NextBoundary) are known exactly too, and requests between two
// crossings partition cleanly by home pod.
//
// # The barrier discipline per block
//
//  1. Prepass (serial): order check, issue times from the window ring,
//     and the shared per-core touch filter — the one per-access state
//     that crosses pods — consulted in global request order.
//  2. Split the block into segments at the boundary crossings; before
//     each segment, run AdvanceBoundary (migrations, MEA epoch rollover,
//     lock sweeps, refresh-independent queue scheduling) serially, in
//     fixed pod order — exactly the code the serial path runs inline.
//  3. Fan each segment out to the workers; worker w simulates the
//     requests of pods with Pod % workers == w, in request order, writing
//     completions into the ring at the request's own slot. Pods share no
//     mutable state (mech.PodSharded's contract), pod-disjoint channel
//     sets make the DRAM model safe (each dram.Channel reconciles its own
//     refresh arithmetic lazily, so idle shards need no clock sync), and
//     per-worker stats.Accum tallies merge in fixed order afterwards.
//  4. Barrier (WaitGroup park, not spin — the forced-shards tests run on
//     a single P under -race), then the next segment or block.
//
// Error paths: a trace-order violation truncates the block at the
// offending request before dispatch, matching the serial path exactly. A
// mechanism contract violation (completion <= issue) aborts after the
// segment's barrier; requests of *other* pods past the offending one may
// already be simulated, so partial Results can differ from serial there —
// the run still fails with the same error.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
)

// unlimitedBlock is the block length when the window is unbounded: with no
// gates there is no wavefront constraint, only batching economics.
const unlimitedBlock = 4 * BatchSize

// segment is one dispatch unit: block request indices [lo, hi), all below
// the current interval boundary.
type segment struct{ lo, hi int }

// podWorker is one worker's channel and result slots. The padding keeps
// workers' hot accumulators on separate cache lines.
type podWorker struct {
	jobs   chan segment
	acc    stats.Accum
	err    error // first contract violation seen by this worker
	errIdx int   // block index of that violation
	// arr/done are the worker's dense postpass columns on the column
	// path: the owned requests' arrivals and completions, gathered so
	// stall accounting runs through stats.Accum.NoteColumn.
	arr  []clock.Time
	done []clock.Time
	_    [64]byte
}

// podParallel holds the pod-parallel path's reusable block buffers and
// per-block dispatch state. The dispatch fields (cur*, ringBase) are
// written by the coordinator before the segment send and read by workers
// after the receive; the channel pair orders them.
type podParallel struct {
	reqs  []trace.Request
	dec   []trace.Decoded
	at    []clock.Time
	touch []bool
	// done is the block's completion column on the column path; workers
	// write only their owned indices (pods partition the block).
	done []clock.Time

	curReqs  []trace.Request
	curDec   []trace.Decoded
	ringBase int
	workers  []podWorker
	wg       sync.WaitGroup
}

// grow sizes the block buffers for blockLen-request blocks.
func (pp *podParallel) grow(blockLen int) {
	if cap(pp.reqs) < blockLen {
		pp.reqs = make([]trace.Request, blockLen)
		pp.dec = make([]trace.Decoded, blockLen)
		pp.at = make([]clock.Time, blockLen)
		pp.touch = make([]bool, blockLen)
		pp.done = make([]clock.Time, blockLen)
	}
	pp.reqs = pp.reqs[:blockLen]
	pp.dec = pp.dec[:blockLen]
	pp.at = pp.at[:blockLen]
	pp.touch = pp.touch[:blockLen]
	pp.done = pp.done[:blockLen]
}

// shardPlan decides whether this run takes the pod-parallel path and with
// how many workers. It requires a pod-sharded mechanism and a predecode
// plane (the shard key is the decoded home pod); the worker count follows
// e.Shards and is always capped at the pod count.
func (e *Engine) shardPlan(bs trace.BatchStream) (mech.PodSharded, int) {
	ps, ok := e.m.(mech.PodSharded)
	if !ok || !bs.HasPlane() {
		return nil, 0
	}
	workers := e.Shards
	switch {
	case workers < 0:
		return nil, 0
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	}
	if p := ps.Pods(); workers > p {
		workers = p
	}
	if workers < 2 {
		return nil, 0
	}
	return ps, workers
}

// ParallelBlocks reports how many request blocks the engine has processed
// on the pod-parallel path, across all runs. Zero after a run means the
// run fell back to a serial path.
func (e *Engine) ParallelBlocks() uint64 { return e.parallelBlocks }

// runPodParallel replays a planed batch stream with one worker per pod
// shard, joining at interval boundaries. See the package comment above
// for the scheme; bit-identity with runBatched is asserted per mechanism
// by TestPodParallelBitIdentical.
func (e *Engine) runPodParallel(bs trace.BatchStream, ps mech.PodSharded, workers int, ring []clock.Time, window int, res *stats.Result) error {
	blockLen := window
	if blockLen <= 0 {
		blockLen = unlimitedBlock
	}
	if e.pp == nil {
		e.pp = &podParallel{}
	}
	pp := e.pp
	pp.grow(blockLen)
	sbs, shared := bs.(trace.SharedBatchStream)
	tf := ps.SharedTouch()

	psc, _ := ps.(mech.PodShardedColumns)
	if e.noColumns {
		psc = nil
	}

	pp.workers = make([]podWorker, workers)
	for w := range pp.workers {
		pp.workers[w].jobs = make(chan segment, 1)
		go func(w int) {
			pw := &pp.workers[w]
			// Column-capable mechanisms get a worker-private plan: workers
			// own disjoint pods, so their plans route to disjoint channel
			// sets and flush without synchronization.
			var plan *mech.ColumnPlan
			if psc != nil {
				plan = mech.NewColumnPlan(e.backend.Sys)
			}
			for sg := range pw.jobs {
				reqs, dec := pp.curReqs, pp.curDec
				at, touch := pp.at, pp.touch
				if plan != nil {
					doneCol := pp.done
					psc.AccessShardedColumn(&mech.ShardedColumn{
						Plan: plan, Reqs: reqs, Dec: dec, At: at,
						Touched: touch, Done: doneCol,
						Lo: sg.lo, Hi: sg.hi, Worker: w, Workers: workers,
					})
					// Postpass over the worker's own indices: contract
					// check, ring writes, and the dense arrival/completion
					// columns for NoteColumn. A contract violation stops
					// the tally at the offending request, like the
					// per-request path (the rest of the segment has been
					// simulated by then; see the error-path note above).
					arr, done := pw.arr[:0], pw.done[:0]
					for i := sg.lo; i < sg.hi; i++ {
						if int(dec[i].Pod)%workers != w {
							continue
						}
						issue := at[i]
						d := doneCol[i]
						if d <= issue {
							if pw.err == nil {
								pw.err = fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
									ps.Name(), d, issue)
								pw.errIdx = i
							}
							break
						}
						if ring != nil {
							slot := pp.ringBase + i
							if slot >= window {
								slot -= window
							}
							ring[slot] = d
						}
						arr = append(arr, reqs[i].Time)
						done = append(done, d)
					}
					pw.acc.NoteColumn(arr, done)
					pw.arr, pw.done = arr, done
					pp.wg.Done()
					continue
				}
				for i := sg.lo; i < sg.hi; i++ {
					if int(dec[i].Pod)%workers != w {
						continue
					}
					issue := at[i]
					done := ps.AccessSharded(&reqs[i], &dec[i], issue, touch[i])
					if done <= issue {
						if pw.err == nil {
							pw.err = fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
								ps.Name(), done, issue)
							pw.errIdx = i
						}
						break
					}
					if ring != nil {
						slot := pp.ringBase + i
						if slot >= window {
							slot -= window
						}
						ring[slot] = done
					}
					pw.acc.Note(reqs[i].Time, done)
				}
				pp.wg.Done()
			}
		}(w)
	}
	defer func() {
		for w := range pp.workers {
			close(pp.workers[w].jobs)
		}
	}()

	// finish merges the workers' tallies, in fixed worker order, into res.
	finish := func() {
		var acc stats.Accum
		for w := range pp.workers {
			acc.Merge(pp.workers[w].acc)
		}
		acc.FlushTo(res)
	}

	var lastArrival clock.Time
	var processed uint64
	ringPos := 0
	for {
		var n int
		var dec []trace.Decoded
		if shared {
			n, dec = sbs.NextBatchShared(pp.reqs[:blockLen])
		} else {
			n = bs.NextBatch(pp.reqs[:blockLen], pp.dec[:blockLen])
			dec = pp.dec[:n]
		}
		if n == 0 {
			break
		}
		reqs := pp.reqs[:n]

		// Serial prepass: order check, window gates, touch bits. A
		// misordered request truncates the block before it, exactly where
		// the serial path would stop.
		var orderErr error
		at := pp.at
		for i := 0; i < n; i++ {
			t := reqs[i].Time
			if t < lastArrival {
				orderErr = fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
					processed+uint64(i), t, lastArrival)
				n = i
				break
			}
			lastArrival = t
			if ring != nil {
				slot := ringPos + i
				if slot >= window {
					slot -= window
				}
				if gate := ring[slot]; gate > t {
					t = gate
				}
			}
			at[i] = t
			pp.touch[i] = tf.Touch(reqs[i].Core, dec[i].Page)
		}

		pp.curReqs, pp.curDec, pp.ringBase = reqs[:n], dec[:n], ringPos
		for lo := 0; lo < n; {
			// The barrier's serial half: every boundary at or before the
			// segment head runs now, in fixed pod order — the same loop
			// the serial access path executes inline.
			if at[lo] >= ps.NextBoundary() {
				ps.AdvanceBoundary(at[lo])
			}
			nb := ps.NextBoundary()
			hi := lo + 1
			for hi < n && at[hi] < nb {
				hi++
			}
			pp.wg.Add(workers)
			for w := range pp.workers {
				pp.workers[w].jobs <- segment{lo, hi}
			}
			pp.wg.Wait()
			if psc != nil {
				e.columnSpans++
			}
			for w := range pp.workers {
				if pp.workers[w].err != nil {
					// Deterministic error selection: the earliest failing
					// request, however the workers interleaved.
					err, idx := pp.workers[w].err, pp.workers[w].errIdx
					for _, pw := range pp.workers[w+1:] {
						if pw.err != nil && pw.errIdx < idx {
							err, idx = pw.err, pw.errIdx
						}
					}
					finish()
					return err
				}
			}
			lo = hi
		}
		e.parallelBlocks++
		processed += uint64(n)
		if ring != nil {
			if ringPos += n; ringPos >= window {
				ringPos -= window
			}
		}
		if orderErr != nil {
			finish()
			return orderErr
		}
	}
	finish()
	return nil
}
