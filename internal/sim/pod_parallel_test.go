package sim

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// podParallelCases are the mechanisms that actually take the pod-parallel
// path (mech.PodSharded). The cache variant exercises the bookkeeping
// cache + BookkeepingRead branch, which the paper-default config leaves
// off.
var podParallelCases = []struct {
	name  string
	build func(b *mech.Backend) mech.Mechanism
}{
	{"MemPod", func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) }},
	{"MemPod-FC", func(b *mech.Backend) mech.Mechanism {
		cfg := core.DefaultConfig()
		cfg.UseFullCounters = true
		return core.MustNew(cfg, b)
	}},
	{"MemPod-cache", func(b *mech.Backend) mech.Mechanism {
		cfg := core.DefaultConfig()
		cfg.CacheBytes = 1 << 16
		return core.MustNew(cfg, b)
	}},
}

// TestPodParallelBitIdentical is the tentpole's differential guarantee:
// for every mechanism, replaying one trace through the serial batched
// path and through the pod-parallel path (workers forced on, whatever
// GOMAXPROCS is) must produce field-identical Results — and leave the
// mechanisms' shared touch filters in identical states. Mechanisms that
// are not pod-sharded (HMA, THM, CAMEO, Static: their swaps cross pods
// mid-interval) must fall back to the serial path, which the
// ParallelBlocks counter asserts. CI runs this under -race, which is the
// other half of the proof: any cross-pod state AccessSharded touches
// concurrently is a detected race, not a silent divergence.
func TestPodParallelBitIdentical(t *testing.T) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	// run replays the snapshot through a fresh backend+mechanism with the
	// given window and shard setting, returning the result, the engine (for
	// its path counters) and the mechanism's final touch-filter state.
	// noColumns forces per-request dispatch inside whichever path runs.
	run := func(t *testing.T, build func(b *mech.Backend) mech.Mechanism, window, shards int, noColumns bool) (stats.Result, *Engine, *mech.TouchFilter) {
		t.Helper()
		b := newBackend()
		m := build(b)
		e := New(b, m)
		e.Window = window
		e.Shards = shards
		e.noColumns = noColumns
		res, err := e.Run(w.Name, snap.DecodedStream(&b.Geom))
		if err != nil {
			t.Fatal(err)
		}
		var tf *mech.TouchFilter
		if ts, ok := m.(mech.TouchSharer); ok {
			tf = ts.SharedTouch()
		}
		return res, e, tf
	}

	// Every mechanism at the default window, shards forced to the pod
	// count: sharded mechanisms must parallelize, the rest must fall back
	// — and all must match the serial result exactly.
	for _, mc := range mechanisms {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			serial, se, serialTouch := run(t, mc.build, 0, 1, false)
			if serial.Requests != n {
				t.Fatalf("serial replayed %d requests, want %d", serial.Requests, n)
			}
			if se.ParallelBlocks() != 0 {
				t.Fatalf("Shards=1 run took the parallel path (%d blocks)", se.ParallelBlocks())
			}
			par, pe, parTouch := run(t, mc.build, 0, 4, false)
			_, sharded := mc.build(newBackend()).(mech.PodSharded)
			if sharded && pe.ParallelBlocks() == 0 {
				t.Errorf("pod-sharded mechanism never took the parallel path")
			}
			if !sharded && pe.ParallelBlocks() != 0 {
				t.Errorf("non-sharded mechanism took the parallel path (%d blocks)", pe.ParallelBlocks())
			}
			diffResults(t, "parallel vs serial", par, serial)
			if serialTouch != nil && parTouch != nil && *serialTouch != *parTouch {
				t.Errorf("touch filter state diverged between serial and parallel runs")
			}
		})
	}

	// The sharded mechanisms across window shapes and worker counts:
	// window 32 makes blocks small (many wavefronts, boundary crossings
	// land mid-block), -1 removes gating entirely (unlimited-block path),
	// and 3 workers assigns pods unevenly (pod 3 shares worker 0). Each
	// cell runs four ways — serial and parallel, columns and per-request —
	// and all four must agree, which is the tentpole's differential proof
	// for the sharded-column worker path.
	for _, mc := range podParallelCases {
		mc := mc
		for _, window := range []int{0, 32, -1} {
			for _, shards := range []int{2, 3, 4} {
				t.Run(fmt.Sprintf("%s/window=%d/shards=%d", mc.name, window, shards), func(t *testing.T) {
					serial, _, serialTouch := run(t, mc.build, window, 1, true)
					par, pe, parTouch := run(t, mc.build, window, shards, false)
					if pe.ParallelBlocks() == 0 {
						t.Fatalf("run never took the parallel path")
					}
					if pe.ColumnSpans() == 0 {
						t.Errorf("parallel run never dispatched sharded columns")
					}
					diffResults(t, "parallel(columns) vs serial(per-request)", par, serial)
					if *serialTouch != *parTouch {
						t.Errorf("touch filter state diverged between serial and parallel runs")
					}
					parNC, pnce, parNCTouch := run(t, mc.build, window, shards, true)
					if pnce.ColumnSpans() != 0 {
						t.Errorf("noColumns parallel run dispatched columns (%d spans)", pnce.ColumnSpans())
					}
					diffResults(t, "parallel(per-request) vs serial(per-request)", parNC, serial)
					if *serialTouch != *parNCTouch {
						t.Errorf("touch filter state diverged between serial and noColumns parallel runs")
					}
				})
			}
		}
	}
}

// TestPodParallelRejectsUnorderedTrace mirrors the serial engine's
// order-violation contract on the parallel path: the run fails, and the
// requests before the violation are still accounted (the block truncates
// exactly at the offending request).
func TestPodParallelRejectsUnorderedTrace(t *testing.T) {
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(1000, 11))
	// Corrupt one timestamp mid-stream so the violation lands inside a
	// block, after several complete blocks.
	reqs[700].Time = reqs[699].Time - 1
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	runWith := func(shards int, noColumns bool) (stats.Result, error) {
		b := newBackend()
		e := New(b, core.MustNew(core.DefaultConfig(), b))
		e.Shards = shards
		e.noColumns = noColumns
		return e.Run(w.Name, snap.DecodedStream(&b.Geom))
	}
	refRes, refErr := runWith(1, true)
	serialRes, serialErr := runWith(1, false)
	parRes, parErr := runWith(4, false)
	if refErr == nil || serialErr == nil || parErr == nil {
		t.Fatalf("unordered trace accepted (reference err %v, serial err %v, parallel err %v)",
			refErr, serialErr, parErr)
	}
	if serialErr.Error() != refErr.Error() {
		t.Errorf("error diverged:\nper-request: %v\ncolumns:     %v", refErr, serialErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("error diverged:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
	diffResults(t, "partial result columns vs per-request", serialRes, refRes)
	diffResults(t, "partial result parallel vs serial", parRes, serialRes)
}

// BenchmarkEnginePodParallel measures the pod-parallel path against the
// serial batched path on one MemPod replay, so the intra-cell speedup is
// a reported number. shards=0 is auto (tracks GOMAXPROCS); the forced
// worker counts show the scaling shape on multicore machines — on a
// single-P run the forced variants measure pure barrier overhead, which
// is itself worth watching.
func BenchmarkEnginePodParallel(b *testing.B) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			if shards > 1 && runtime.GOMAXPROCS(0) == 1 {
				// With one P the forced-shard variants measure nothing but
				// goroutine barrier overhead on a machine that cannot run
				// the workers concurrently; the numbers would only pollute
				// bench baselines collected on parallel hardware.
				b.Skip("GOMAXPROCS=1: forced-shard variant would serialize; skipping")
			}
			bk := newBackend()
			e := New(bk, core.MustNew(core.DefaultConfig(), bk))
			e.Shards = shards
			ss := snap.DecodedStream(&bk.Geom)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.Reset()
				if _, err := e.Run(w.Name, ss); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
		})
	}
}
