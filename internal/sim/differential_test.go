package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cameo"
	"repro/internal/core"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/migrant"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mechanisms is the full set under test, each built fresh over its own
// backend so runs share nothing.
var mechanisms = []struct {
	name  string
	build func(b *mech.Backend) mech.Mechanism
}{
	{"MemPod", func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) }},
	{"MemPod-FC", func(b *mech.Backend) mech.Mechanism {
		cfg := core.DefaultConfig()
		cfg.UseFullCounters = true
		return core.MustNew(cfg, b)
	}},
	{"HMA", func(b *mech.Backend) mech.Mechanism { return hma.MustNew(hma.DefaultConfig(), b) }},
	{"THM", func(b *mech.Backend) mech.Mechanism { return thm.MustNew(thm.DefaultConfig(), b) }},
	{"CAMEO", func(b *mech.Backend) mech.Mechanism { return cameo.MustNew(cameo.DefaultConfig(), b) }},
	{"Migrant", func(b *mech.Backend) mech.Mechanism { return migrant.MustNew(migrant.DefaultConfig(), b) }},
	{"Static", func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) }},
}

// diffResults compares two Results field-by-field via reflection so a
// divergence names the exact field, not just "structs differ".
func diffResults(t *testing.T, label string, got, want stats.Result) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		f := gv.Type().Field(i)
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s = %v, want %v", label, f.Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
}

// TestBatchedEngineBitIdentical drives every mechanism over a mixed
// workload three ways — the per-request serial path (plain SliceStream),
// the batched path without a predecode plane (snapshot cursor), and the
// fully fused batched path with the plane bound (DecodedStream +
// AccessDecoded) — and requires field-identical Results. This is the
// tentpole's differential guarantee: batching, the shared plane, and the
// mechanisms' decoded fast paths are pure restructurings.
func TestBatchedEngineBitIdentical(t *testing.T) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	// The mapped leg replays the same snapshot through the disk-store open
	// (zero-copy columns where the platform supports mmap, the copying
	// reader elsewhere), so the store path is held to the same bit-identity
	// bar as the in-memory restructurings.
	var buf bytes.Buffer
	if err := trace.WriteSnapshot(&buf, w.Name, snap); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(t.TempDir(), "wl.mps1")
	if err := os.WriteFile(mpath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	msnap, _, err := trace.OpenMapped(mpath)
	if err != nil {
		t.Fatal(err)
	}
	defer msnap.Release()

	for _, mc := range mechanisms {
		runWith := func(s trace.Stream, noColumns bool) (stats.Result, *Engine) {
			b := newBackend()
			m := mc.build(b)
			e := New(b, m)
			e.noColumns = noColumns
			res, err := e.Run(w.Name, s)
			if err != nil {
				t.Fatalf("%s: %v", mc.name, err)
			}
			return res, e
		}
		serial, _ := runWith(trace.NewSliceStream(reqs), false)
		batchedNoPlane, _ := runWith(snap.Stream(), false)
		geomBackend := newBackend()
		batchedPlane, planeEng := runWith(snap.DecodedStream(&geomBackend.Geom), false)
		perReqBackend := newBackend()
		batchedPerReq, perReqEng := runWith(snap.DecodedStream(&perReqBackend.Geom), true)
		mappedBackend := newBackend()
		mappedRes, _ := runWith(msnap.DecodedStream(&mappedBackend.Geom), false)

		if serial.Requests != n {
			t.Fatalf("%s: serial replayed %d requests, want %d", mc.name, serial.Requests, n)
		}
		// The planed run must have gone through the channel-column kernel;
		// the noColumns run pins the per-request reference it diffs against.
		if planeEng.ColumnSpans() == 0 {
			t.Errorf("%s: batched(plane) run never took the column path", mc.name)
		}
		if perReqEng.ColumnSpans() != 0 {
			t.Errorf("%s: noColumns run took the column path (%d spans)", mc.name, perReqEng.ColumnSpans())
		}
		diffResults(t, mc.name+" batched(no plane) vs serial", batchedNoPlane, serial)
		diffResults(t, mc.name+" batched(plane, columns) vs serial", batchedPlane, serial)
		diffResults(t, mc.name+" batched(plane, per-request) vs serial", batchedPerReq, serial)
		diffResults(t, mc.name+" mapped replay vs serial", mappedRes, serial)
	}
}

// BenchmarkEngineBatched tracks the fused batched replay cost per
// mechanism. The trace is snapshotted once outside the timer; each
// iteration replays it through a fresh cursor on a persistent
// backend+mechanism pair, so the steady state must be allocation-free
// (the acceptance criterion the tentpole carries).
func BenchmarkEngineBatched(b *testing.B) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	for _, mc := range mechanisms {
		b.Run(mc.name, func(b *testing.B) {
			bk := newBackend()
			m := mc.build(bk)
			e := New(bk, m)
			ss := snap.DecodedStream(&bk.Geom)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.Reset()
				if _, err := e.Run(w.Name, ss); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
