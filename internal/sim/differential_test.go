package sim

import (
	"reflect"
	"testing"

	"repro/internal/cameo"
	"repro/internal/core"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mechanisms is the full set under test, each built fresh over its own
// backend so runs share nothing.
var mechanisms = []struct {
	name  string
	build func(b *mech.Backend) mech.Mechanism
}{
	{"MemPod", func(b *mech.Backend) mech.Mechanism { return core.MustNew(core.DefaultConfig(), b) }},
	{"MemPod-FC", func(b *mech.Backend) mech.Mechanism {
		cfg := core.DefaultConfig()
		cfg.UseFullCounters = true
		return core.MustNew(cfg, b)
	}},
	{"HMA", func(b *mech.Backend) mech.Mechanism { return hma.MustNew(hma.DefaultConfig(), b) }},
	{"THM", func(b *mech.Backend) mech.Mechanism { return thm.MustNew(thm.DefaultConfig(), b) }},
	{"CAMEO", func(b *mech.Backend) mech.Mechanism { return cameo.MustNew(cameo.DefaultConfig(), b) }},
	{"Static", func(b *mech.Backend) mech.Mechanism { return mech.NewStatic("TLM", b) }},
}

// diffResults compares two Results field-by-field via reflection so a
// divergence names the exact field, not just "structs differ".
func diffResults(t *testing.T, label string, got, want stats.Result) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		f := gv.Type().Field(i)
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s = %v, want %v", label, f.Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
}

// TestBatchedEngineBitIdentical drives every mechanism over a mixed
// workload three ways — the per-request serial path (plain SliceStream),
// the batched path without a predecode plane (snapshot cursor), and the
// fully fused batched path with the plane bound (DecodedStream +
// AccessDecoded) — and requires field-identical Results. This is the
// tentpole's differential guarantee: batching, the shared plane, and the
// mechanisms' decoded fast paths are pure restructurings.
func TestBatchedEngineBitIdentical(t *testing.T) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	for _, mc := range mechanisms {
		runWith := func(s trace.Stream) stats.Result {
			b := newBackend()
			m := mc.build(b)
			res, err := New(b, m).Run(w.Name, s)
			if err != nil {
				t.Fatalf("%s: %v", mc.name, err)
			}
			return res
		}
		serial := runWith(trace.NewSliceStream(reqs))
		batchedNoPlane := runWith(snap.Stream())
		geomBackend := newBackend()
		batchedPlane := runWith(snap.DecodedStream(&geomBackend.Geom))

		if serial.Requests != n {
			t.Fatalf("%s: serial replayed %d requests, want %d", mc.name, serial.Requests, n)
		}
		diffResults(t, mc.name+" batched(no plane) vs serial", batchedNoPlane, serial)
		diffResults(t, mc.name+" batched(plane) vs serial", batchedPlane, serial)
	}
}

// BenchmarkEngineBatched tracks the fused batched replay cost per
// mechanism. The trace is snapshotted once outside the timer; each
// iteration replays it through a fresh cursor on a persistent
// backend+mechanism pair, so the steady state must be allocation-free
// (the acceptance criterion the tentpole carries).
func BenchmarkEngineBatched(b *testing.B) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	for _, mc := range mechanisms {
		b.Run(mc.name, func(b *testing.B) {
			bk := newBackend()
			m := mc.build(bk)
			e := New(bk, m)
			ss := snap.DecodedStream(&bk.Geom)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.Reset()
				if _, err := e.Run(w.Name, ss); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
