// Package sim drives a memory trace through a management mechanism and a
// two-level memory system and accumulates the paper's metrics.
//
// The engine plays the role of Ramulator's simple CPU front-end: requests
// issue at their trace timestamps, gated by a bounded outstanding-request
// window that models resource-induced stalls (a core cannot have unbounded
// misses in flight).
package sim

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultWindow is the default maximum number of outstanding requests
// (8 cores × 16 MSHRs).
const DefaultWindow = 128

// BatchSize is how many requests the batched path pulls from a
// trace.BatchStream per NextBatch call: large enough to amortize the
// cursor call and keep the batch's columns hot in L1, small enough that
// two batch buffers (requests + decoded) stay around 10 KB.
const BatchSize = 256

// Engine runs traces against one mechanism.
type Engine struct {
	backend *mech.Backend
	m       mech.Mechanism
	// Window caps outstanding requests; 0 means DefaultWindow, negative
	// means unlimited.
	Window int
	// Shards selects the pod-parallel path for mechanisms that support it
	// (mech.PodSharded) on streams with a predecode plane: 0 is auto
	// (GOMAXPROCS workers, capped at the mechanism's pod count, off when
	// that leaves fewer than two), 1 or negative forces serial, and >= 2
	// forces that worker count (still capped at the pod count). Results
	// are bit-identical for every value; see parallel.go.
	Shards int

	// ring is the outstanding-request window, kept across runs so repeated
	// Run calls on one engine (benchmarks, sweeps) stay allocation-free.
	ring []clock.Time
	// Batch buffers for runBatched, allocated on first use and reused:
	// stack arrays would escape through the BatchStream interface call,
	// costing two heap allocations per Run.
	batchBuf []trace.Request
	decBuf   []trace.Decoded
	// Column buffers for runBatchedColumns (issue times and completions;
	// arrivals come straight from the stream's decoded time column),
	// allocated on first use and reused. spanBuf is the span view handed
	// to the mechanism — a single reused heap object, because a stack
	// span would escape through the ColumnAccessor interface call and
	// cost one allocation per span.
	atBuf   []clock.Time
	doneBuf []clock.Time
	spanBuf *trace.SpanColumns
	// pp holds the pod-parallel path's block buffers, reused across runs.
	pp *podParallel
	// parallelBlocks counts request blocks processed by the pod-parallel
	// path, for tests and diagnostics.
	parallelBlocks uint64
	// columnSpans counts request spans serviced through the mechanism's
	// column path (mech.ColumnAccessor), for tests and diagnostics.
	columnSpans uint64
	// noColumns forces the per-request dispatch even for column-capable
	// mechanisms; the differential tests use it to run the reference path.
	noColumns bool
}

// New returns an engine for the mechanism built over the backend.
func New(b *mech.Backend, m mech.Mechanism) *Engine {
	return &Engine{backend: b, m: m}
}

// Run replays the stream to completion and returns the run's metrics.
// The stream must be time-ordered (workload streams are).
//
// Streams that implement trace.BatchStream (snapshot replay cursors) are
// driven through a batched loop that fuses window gating, order checking
// and stall accounting over BatchSize-request chunks; when the stream also
// carries a predecode plane and the mechanism implements
// mech.DecodedAccessor, requests dispatch through AccessDecoded. When the
// mechanism is additionally pod-sharded (mech.PodSharded) and Shards
// selects more than one worker, the run takes the pod-parallel path
// (parallel.go). All paths are bit-identical to the per-request fallback.
func (e *Engine) Run(workload string, s trace.Stream) (stats.Result, error) {
	window := e.Window
	if window == 0 {
		window = DefaultWindow
	}
	var ring []clock.Time
	if window > 0 {
		if cap(e.ring) >= window {
			ring = e.ring[:window]
			for i := range ring {
				ring[i] = 0
			}
		} else {
			ring = make([]clock.Time, window)
			e.ring = ring
		}
	}

	res := stats.Result{Workload: workload, Mechanism: e.m.Name()}
	var err error
	if bs, ok := s.(trace.BatchStream); ok {
		if ps, workers := e.shardPlan(bs); workers > 1 {
			err = e.runPodParallel(bs, ps, workers, ring, window, &res)
		} else {
			err = e.runBatched(bs, ring, window, &res)
		}
	} else {
		err = e.runSerial(s, ring, window, &res)
	}
	if err != nil {
		return res, err
	}

	fs, ss := e.backend.Sys.FastStats(), e.backend.Sys.SlowStats()
	res.FastAccesses = fs.Accesses()
	res.SlowAccesses = ss.Accesses()
	res.FastActivations = fs.RowClosed + fs.RowConflicts
	res.SlowActivations = ss.RowClosed + ss.RowConflicts
	res.FastRowHitRate = fs.RowHitRate()
	res.SlowRowHitRate = ss.RowHitRate()
	if total := fs.Accesses() + ss.Accesses(); total > 0 {
		res.RowHitRate = float64(fs.RowHits+ss.RowHits) / float64(total)
	}
	res.Mig = e.m.Stats()
	return res, nil
}

// runSerial is the per-request replay loop, used for plain streams.
func (e *Engine) runSerial(s trace.Stream, ring []clock.Time, window int, res *stats.Result) error {
	var r trace.Request
	var lastArrival clock.Time
	// The ring position is a wrapping counter rather than Requests%window:
	// the modulo would be two 64-bit divisions per request.
	ringPos := 0
	for s.Next(&r) {
		if r.Time < lastArrival {
			return fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
				res.Requests, r.Time, lastArrival)
		}
		lastArrival = r.Time

		at := r.Time
		if ring != nil {
			// The request cannot issue until the request `window` back
			// has completed.
			if gate := ring[ringPos]; gate > at {
				at = gate
			}
		}
		done := e.m.Access(&r, at)
		if done <= at {
			return fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
				e.m.Name(), done, at)
		}
		if ring != nil {
			ring[ringPos] = done
			if ringPos++; ringPos == window {
				ringPos = 0
			}
		}

		res.Requests++
		res.TotalStall += done - r.Time
		if done > res.Span {
			res.Span = done
		}
	}
	return nil
}

// runBatched replays a BatchStream in BatchSize chunks. The per-request
// bookkeeping runs over the chunk's dense buffers with the accumulators in
// locals, flushed to res once per chunk (and before any error return, so
// partial results match the serial path exactly).
func (e *Engine) runBatched(bs trace.BatchStream, ring []clock.Time, window int, res *stats.Result) error {
	if e.batchBuf == nil {
		e.batchBuf = make([]trace.Request, BatchSize)
		e.decBuf = make([]trace.Decoded, BatchSize)
	}
	buf, decBuf := e.batchBuf, e.decBuf
	dm, _ := e.m.(mech.DecodedAccessor)
	usePlane := dm != nil && bs.HasPlane()
	if ca, ok := e.m.(mech.ColumnAccessor); ok && usePlane && !e.noColumns {
		if cs, ok := bs.(trace.ColumnStream); ok && cs.HasColumns() {
			return e.runBatchedColumns(cs, ca, ring, window, res)
		}
	}
	// Snapshot cursors lend their plane entries by subslice; other batch
	// streams fill our buffer.
	sbs, sharedPlane := bs.(trace.SharedBatchStream)

	var lastArrival clock.Time
	var requests uint64
	var totalStall, span clock.Duration
	ringPos := 0
	for {
		var n int
		dec := decBuf[:]
		switch {
		case sharedPlane:
			n, dec = sbs.NextBatchShared(buf[:])
		case usePlane:
			n = bs.NextBatch(buf[:], dec)
		default:
			n = bs.NextBatch(buf[:], nil)
		}
		if n == 0 {
			break
		}
		batch := buf[:n]
		if usePlane {
			// Equal lengths let the compiler drop the dec[i] bounds check
			// inside the loop.
			dec = dec[:n]
		}
		for i := range batch {
			r := &batch[i]
			if r.Time < lastArrival {
				res.Requests, res.TotalStall, res.Span = requests, totalStall, span
				return fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
					res.Requests, r.Time, lastArrival)
			}
			lastArrival = r.Time

			at := r.Time
			if ring != nil {
				if gate := ring[ringPos]; gate > at {
					at = gate
				}
			}
			var done clock.Time
			if usePlane {
				done = dm.AccessDecoded(r, &dec[i], at)
			} else {
				done = e.m.Access(r, at)
			}
			if done <= at {
				res.Requests, res.TotalStall, res.Span = requests, totalStall, span
				return fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
					e.m.Name(), done, at)
			}
			if ring != nil {
				ring[ringPos] = done
				if ringPos++; ringPos == window {
					ringPos = 0
				}
			}

			requests++
			totalStall += done - r.Time
			if done > span {
				span = done
			}
		}
		res.Requests, res.TotalStall, res.Span = requests, totalStall, span
	}
	res.Requests, res.TotalStall, res.Span = requests, totalStall, span
	return nil
}

// ColumnSpans reports how many request spans the engine has serviced
// through the column path, across all runs. Zero after a run on a planed
// stream means the run used per-request dispatch.
func (e *Engine) ColumnSpans() uint64 { return e.columnSpans }

// runBatchedColumns replays a ColumnStream through the mechanism's
// column path (mech.ColumnAccessor) in wavefront spans of at most one
// window. The argument is the same as parallel.go's one-window blocks:
// every window gate of a span is a completion from at least `window`
// requests back — an earlier span — so a serial prepass fixes all of the
// span's issue times before any of it is simulated, and the mechanism is
// free to gather the span's demand accesses into per-channel columns.
// Spans come straight off the stream's decoded columns (trace.SpanColumns)
// with no Request materialization; the span's own time column doubles as
// the arrival column for stats. Order checking runs in the prepass
// (truncating the span at a violation but still simulating the requests
// before it), the contract check and ring writes run in a postpass over
// the dense completion column, and stall accounting goes through
// stats.Accum.NoteColumn. Error messages and partial results reproduce
// the per-request path exactly.
func (e *Engine) runBatchedColumns(cs trace.ColumnStream, ca mech.ColumnAccessor, ring []clock.Time, window int, res *stats.Result) error {
	if e.atBuf == nil {
		e.atBuf = make([]clock.Time, BatchSize)
		e.doneBuf = make([]clock.Time, BatchSize)
		e.spanBuf = new(trace.SpanColumns)
	}
	at, doneCol, sub := e.atBuf, e.doneBuf, e.spanBuf
	spanMax := window
	if spanMax <= 0 || spanMax > BatchSize {
		spanMax = BatchSize
	}

	var lastArrival clock.Time
	var acc stats.Accum
	ringPos := 0
	for {
		sc := cs.NextSpan(spanMax)
		span := sc.Len()
		if span == 0 {
			break
		}
		times := sc.Times
		var orderErr error
		for k := 0; k < span; k++ {
			t := times[k]
			if t < lastArrival {
				orderErr = fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
					acc.Requests+uint64(k), t, lastArrival)
				span = k
				break
			}
			lastArrival = t
			if ring != nil {
				slot := ringPos + k
				if slot >= window {
					slot -= window
				}
				if gate := ring[slot]; gate > t {
					t = gate
				}
			}
			at[k] = t
		}
		if span > 0 {
			*sub = sc
			sub.Times = sc.Times[:span]
			sub.Dec = sc.Dec[:span]
			sub.Cores = sc.Cores[:span]
			done := doneCol[:span]
			ca.AccessColumn(sub, at[:span], done)
			e.columnSpans++
			bad := -1
			for k := 0; k < span; k++ {
				if done[k] <= at[k] {
					bad = k
					break
				}
			}
			ok := span
			if bad >= 0 {
				ok = bad
			}
			if ring != nil {
				for k := 0; k < ok; k++ {
					slot := ringPos + k
					if slot >= window {
						slot -= window
					}
					ring[slot] = done[k]
				}
				if ringPos += ok; ringPos >= window {
					ringPos -= window
				}
			}
			acc.NoteColumn(times[:ok], done[:ok])
			if bad >= 0 {
				acc.FlushTo(res)
				return fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
					e.m.Name(), done[bad], at[bad])
			}
		}
		if orderErr != nil {
			acc.FlushTo(res)
			return orderErr
		}
	}
	acc.FlushTo(res)
	return nil
}

// MustRun is Run for known-good streams; it panics on error.
func (e *Engine) MustRun(workload string, s trace.Stream) stats.Result {
	res, err := e.Run(workload, s)
	if err != nil {
		panic(err)
	}
	return res
}
