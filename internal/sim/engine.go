// Package sim drives a memory trace through a management mechanism and a
// two-level memory system and accumulates the paper's metrics.
//
// The engine plays the role of Ramulator's simple CPU front-end: requests
// issue at their trace timestamps, gated by a bounded outstanding-request
// window that models resource-induced stalls (a core cannot have unbounded
// misses in flight).
package sim

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultWindow is the default maximum number of outstanding requests
// (8 cores × 16 MSHRs).
const DefaultWindow = 128

// BatchSize is how many requests the batched path pulls from a
// trace.BatchStream per NextBatch call: large enough to amortize the
// cursor call and keep the batch's columns hot in L1, small enough that
// two batch buffers (requests + decoded) stay around 10 KB.
const BatchSize = 256

// Engine runs traces against one mechanism.
type Engine struct {
	backend *mech.Backend
	m       mech.Mechanism
	// Window caps outstanding requests; 0 means DefaultWindow, negative
	// means unlimited.
	Window int
	// Shards selects the pod-parallel path for mechanisms that support it
	// (mech.PodSharded) on streams with a predecode plane: 0 is auto
	// (GOMAXPROCS workers, capped at the mechanism's pod count, off when
	// that leaves fewer than two), 1 or negative forces serial, and >= 2
	// forces that worker count (still capped at the pod count). Results
	// are bit-identical for every value; see parallel.go.
	Shards int

	// ring is the outstanding-request window, kept across runs so repeated
	// Run calls on one engine (benchmarks, sweeps) stay allocation-free.
	ring []clock.Time
	// Batch buffers for runBatched, allocated on first use and reused:
	// stack arrays would escape through the BatchStream interface call,
	// costing two heap allocations per Run.
	batchBuf []trace.Request
	decBuf   []trace.Decoded
	// pp holds the pod-parallel path's block buffers, reused across runs.
	pp *podParallel
	// parallelBlocks counts request blocks processed by the pod-parallel
	// path, for tests and diagnostics.
	parallelBlocks uint64
}

// New returns an engine for the mechanism built over the backend.
func New(b *mech.Backend, m mech.Mechanism) *Engine {
	return &Engine{backend: b, m: m}
}

// Run replays the stream to completion and returns the run's metrics.
// The stream must be time-ordered (workload streams are).
//
// Streams that implement trace.BatchStream (snapshot replay cursors) are
// driven through a batched loop that fuses window gating, order checking
// and stall accounting over BatchSize-request chunks; when the stream also
// carries a predecode plane and the mechanism implements
// mech.DecodedAccessor, requests dispatch through AccessDecoded. When the
// mechanism is additionally pod-sharded (mech.PodSharded) and Shards
// selects more than one worker, the run takes the pod-parallel path
// (parallel.go). All paths are bit-identical to the per-request fallback.
func (e *Engine) Run(workload string, s trace.Stream) (stats.Result, error) {
	window := e.Window
	if window == 0 {
		window = DefaultWindow
	}
	var ring []clock.Time
	if window > 0 {
		if cap(e.ring) >= window {
			ring = e.ring[:window]
			for i := range ring {
				ring[i] = 0
			}
		} else {
			ring = make([]clock.Time, window)
			e.ring = ring
		}
	}

	res := stats.Result{Workload: workload, Mechanism: e.m.Name()}
	var err error
	if bs, ok := s.(trace.BatchStream); ok {
		if ps, workers := e.shardPlan(bs); workers > 1 {
			err = e.runPodParallel(bs, ps, workers, ring, window, &res)
		} else {
			err = e.runBatched(bs, ring, window, &res)
		}
	} else {
		err = e.runSerial(s, ring, window, &res)
	}
	if err != nil {
		return res, err
	}

	fs, ss := e.backend.Sys.FastStats(), e.backend.Sys.SlowStats()
	res.FastAccesses = fs.Accesses()
	res.SlowAccesses = ss.Accesses()
	res.FastActivations = fs.RowClosed + fs.RowConflicts
	res.SlowActivations = ss.RowClosed + ss.RowConflicts
	res.FastRowHitRate = fs.RowHitRate()
	res.SlowRowHitRate = ss.RowHitRate()
	if total := fs.Accesses() + ss.Accesses(); total > 0 {
		res.RowHitRate = float64(fs.RowHits+ss.RowHits) / float64(total)
	}
	res.Mig = e.m.Stats()
	return res, nil
}

// runSerial is the per-request replay loop, used for plain streams.
func (e *Engine) runSerial(s trace.Stream, ring []clock.Time, window int, res *stats.Result) error {
	var r trace.Request
	var lastArrival clock.Time
	// The ring position is a wrapping counter rather than Requests%window:
	// the modulo would be two 64-bit divisions per request.
	ringPos := 0
	for s.Next(&r) {
		if r.Time < lastArrival {
			return fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
				res.Requests, r.Time, lastArrival)
		}
		lastArrival = r.Time

		at := r.Time
		if ring != nil {
			// The request cannot issue until the request `window` back
			// has completed.
			if gate := ring[ringPos]; gate > at {
				at = gate
			}
		}
		done := e.m.Access(&r, at)
		if done <= at {
			return fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
				e.m.Name(), done, at)
		}
		if ring != nil {
			ring[ringPos] = done
			if ringPos++; ringPos == window {
				ringPos = 0
			}
		}

		res.Requests++
		res.TotalStall += done - r.Time
		if done > res.Span {
			res.Span = done
		}
	}
	return nil
}

// runBatched replays a BatchStream in BatchSize chunks. The per-request
// bookkeeping runs over the chunk's dense buffers with the accumulators in
// locals, flushed to res once per chunk (and before any error return, so
// partial results match the serial path exactly).
func (e *Engine) runBatched(bs trace.BatchStream, ring []clock.Time, window int, res *stats.Result) error {
	if e.batchBuf == nil {
		e.batchBuf = make([]trace.Request, BatchSize)
		e.decBuf = make([]trace.Decoded, BatchSize)
	}
	buf, decBuf := e.batchBuf, e.decBuf
	dm, _ := e.m.(mech.DecodedAccessor)
	usePlane := dm != nil && bs.HasPlane()
	// Snapshot cursors lend their plane entries by subslice; other batch
	// streams fill our buffer.
	sbs, sharedPlane := bs.(trace.SharedBatchStream)

	var lastArrival clock.Time
	var requests uint64
	var totalStall, span clock.Duration
	ringPos := 0
	for {
		var n int
		dec := decBuf[:]
		switch {
		case sharedPlane:
			n, dec = sbs.NextBatchShared(buf[:])
		case usePlane:
			n = bs.NextBatch(buf[:], dec)
		default:
			n = bs.NextBatch(buf[:], nil)
		}
		if n == 0 {
			break
		}
		batch := buf[:n]
		if usePlane {
			// Equal lengths let the compiler drop the dec[i] bounds check
			// inside the loop.
			dec = dec[:n]
		}
		for i := range batch {
			r := &batch[i]
			if r.Time < lastArrival {
				res.Requests, res.TotalStall, res.Span = requests, totalStall, span
				return fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
					res.Requests, r.Time, lastArrival)
			}
			lastArrival = r.Time

			at := r.Time
			if ring != nil {
				if gate := ring[ringPos]; gate > at {
					at = gate
				}
			}
			var done clock.Time
			if usePlane {
				done = dm.AccessDecoded(r, &dec[i], at)
			} else {
				done = e.m.Access(r, at)
			}
			if done <= at {
				res.Requests, res.TotalStall, res.Span = requests, totalStall, span
				return fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
					e.m.Name(), done, at)
			}
			if ring != nil {
				ring[ringPos] = done
				if ringPos++; ringPos == window {
					ringPos = 0
				}
			}

			requests++
			totalStall += done - r.Time
			if done > span {
				span = done
			}
		}
		res.Requests, res.TotalStall, res.Span = requests, totalStall, span
	}
	res.Requests, res.TotalStall, res.Span = requests, totalStall, span
	return nil
}

// MustRun is Run for known-good streams; it panics on error.
func (e *Engine) MustRun(workload string, s trace.Stream) stats.Result {
	res, err := e.Run(workload, s)
	if err != nil {
		panic(err)
	}
	return res
}
