// Package sim drives a memory trace through a management mechanism and a
// two-level memory system and accumulates the paper's metrics.
//
// The engine plays the role of Ramulator's simple CPU front-end: requests
// issue at their trace timestamps, gated by a bounded outstanding-request
// window that models resource-induced stalls (a core cannot have unbounded
// misses in flight).
package sim

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultWindow is the default maximum number of outstanding requests
// (8 cores × 16 MSHRs).
const DefaultWindow = 128

// Engine runs traces against one mechanism.
type Engine struct {
	backend *mech.Backend
	m       mech.Mechanism
	// Window caps outstanding requests; 0 means DefaultWindow, negative
	// means unlimited.
	Window int
}

// New returns an engine for the mechanism built over the backend.
func New(b *mech.Backend, m mech.Mechanism) *Engine {
	return &Engine{backend: b, m: m}
}

// Run replays the stream to completion and returns the run's metrics.
// The stream must be time-ordered (workload streams are).
func (e *Engine) Run(workload string, s trace.Stream) (stats.Result, error) {
	window := e.Window
	if window == 0 {
		window = DefaultWindow
	}
	var ring []clock.Time
	if window > 0 {
		ring = make([]clock.Time, window)
	}

	res := stats.Result{Workload: workload, Mechanism: e.m.Name()}
	var r trace.Request
	var lastArrival clock.Time
	// The ring position is a wrapping counter rather than Requests%window:
	// the modulo would be two 64-bit divisions per request.
	ringPos := 0
	for s.Next(&r) {
		if r.Time < lastArrival {
			return res, fmt.Errorf("sim: trace out of order at request %d (%v < %v)",
				res.Requests, r.Time, lastArrival)
		}
		lastArrival = r.Time

		at := r.Time
		if ring != nil {
			// The request cannot issue until the request `window` back
			// has completed.
			if gate := ring[ringPos]; gate > at {
				at = gate
			}
		}
		done := e.m.Access(&r, at)
		if done <= at {
			return res, fmt.Errorf("sim: mechanism %s returned completion %v <= issue %v",
				e.m.Name(), done, at)
		}
		if ring != nil {
			ring[ringPos] = done
			if ringPos++; ringPos == window {
				ringPos = 0
			}
		}

		res.Requests++
		res.TotalStall += done - r.Time
		if done > res.Span {
			res.Span = done
		}
	}

	fs, ss := e.backend.Sys.FastStats(), e.backend.Sys.SlowStats()
	res.FastAccesses = fs.Accesses()
	res.SlowAccesses = ss.Accesses()
	res.FastActivations = fs.RowClosed + fs.RowConflicts
	res.SlowActivations = ss.RowClosed + ss.RowConflicts
	res.FastRowHitRate = fs.RowHitRate()
	res.SlowRowHitRate = ss.RowHitRate()
	if total := fs.Accesses() + ss.Accesses(); total > 0 {
		res.RowHitRate = float64(fs.RowHits+ss.RowHits) / float64(total)
	}
	res.Mig = e.m.Stats()
	return res, nil
}

// MustRun is Run for known-good streams; it panics on error.
func (e *Engine) MustRun(workload string, s trace.Stream) stats.Result {
	res, err := e.Run(workload, s)
	if err != nil {
		panic(err)
	}
	return res
}
