package sim

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hardwiredHBM and hardwiredDDR4 are the paper pair exactly as the
// pre-refactor constructors compiled them — literal structs, not calls
// into the spec registry — so the differential below proves the registry
// path changes nothing on the paper configuration.
func hardwiredHBM() dram.Spec {
	return dram.Spec{
		Name:     "HBM",
		BusFreq:  1 * clock.GHz,
		BusBits:  128,
		Channels: 8,
		Banks:    16,
		RowBytes: 8192,
		CAS:      7, RCD: 7, RP: 7, RAS: 17,
	}
}

func hardwiredDDR4() dram.Spec {
	return dram.Spec{
		Name:     "DDR4-1600",
		BusFreq:  800 * clock.MHz,
		BusBits:  64,
		Channels: 4,
		Banks:    16,
		RowBytes: 8192,
		CAS:      11, RCD: 11, RP: 11, RAS: 28,
	}
}

// TestSpecPresetBitIdentical runs every mechanism on the HBM+DDR4 paper
// configuration twice — once over the pre-refactor hardwired spec values,
// once over the registry presets — and requires field-identical Results.
// This is the refactor's contract: moving the paper pair into the
// declarative registry is a pure restructuring.
func TestSpecPresetBitIdentical(t *testing.T) {
	const n = 60_000
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	run := func(fast, slow dram.Spec, mc func(b *mech.Backend) mech.Mechanism) stats.Result {
		b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), fast, slow))
		m := mc(b)
		defer mech.Release(m)
		e := New(b, m)
		res, err := e.Run(w.Name, snap.DecodedStream(&b.Geom))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, mc := range mechanisms {
		hardwired := run(hardwiredHBM(), hardwiredDDR4(), mc.build)
		preset := run(dram.MustPreset("HBM"), dram.MustPreset("DDR4-1600"), mc.build)
		diffResults(t, mc.name+" preset vs hardwired", preset, hardwired)
	}
}

// TestMigrantBatchedBitIdenticalAcrossSpecs holds the new mechanism to the
// engine's differential bar on every preset spec: for each preset the
// registry ships, serial replay, the fused batched column path and the
// per-request decoded path must agree field-for-field — including the
// presets with non-default row geometry (LPDDR5, NVM), write asymmetry
// (NVM) and link latency (CXL).
func TestMigrantBatchedBitIdenticalAcrossSpecs(t *testing.T) {
	const n = 40_000
	w, err := workload.Mix(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(w.MustStream(n, 11))
	snap := trace.Record(trace.NewSliceStream(reqs), len(reqs))
	defer snap.Release()

	mi := mechanisms[migrantIndex(t)]
	for _, preset := range dram.PresetNames() {
		// Stacked presets take the fast role against the paper's DDR4;
		// everything else takes the slow role behind the paper's HBM.
		fast, slow := dram.MustPreset("HBM"), dram.MustPreset(preset)
		if strings.HasPrefix(preset, "HBM") {
			fast, slow = dram.MustPreset(preset), dram.MustPreset("DDR4-1600")
		}
		runWith := func(s trace.Stream, noColumns bool) stats.Result {
			b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), fast, slow))
			m := mi.build(b)
			defer mech.Release(m)
			e := New(b, m)
			e.noColumns = noColumns
			res, err := e.Run(w.Name, s)
			if err != nil {
				t.Fatalf("%s: %v", preset, err)
			}
			return res
		}
		serial := runWith(trace.NewSliceStream(reqs), false)
		planeBackend := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), fast, slow))
		columns := runWith(snap.DecodedStream(&planeBackend.Geom), false)
		perReqBackend := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), fast, slow))
		perReq := runWith(snap.DecodedStream(&perReqBackend.Geom), true)

		if serial.Requests != n {
			t.Fatalf("%s: serial replayed %d requests, want %d", preset, serial.Requests, n)
		}
		diffResults(t, "Migrant "+preset+" columns vs serial", columns, serial)
		diffResults(t, "Migrant "+preset+" per-request vs serial", perReq, serial)
	}
}

// migrantIndex locates Migrant in the shared mechanisms table.
func migrantIndex(t *testing.T) int {
	t.Helper()
	for i, mc := range mechanisms {
		if mc.name == "Migrant" {
			return i
		}
	}
	t.Fatal("Migrant missing from mechanisms table")
	return -1
}
