package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeComponents(t *testing.T) {
	b := Compute(Counts{
		FastAccesses:    10,
		SlowAccesses:    5,
		FastActivations: 2,
		SlowActivations: 3,
		DemandLines:     7,
		GlobalMigLines:  4,
	})
	if b.FastAccess != 10*HBMAccessPJ {
		t.Errorf("fast %v", b.FastAccess)
	}
	if b.SlowAccess != 5*DDRAccessPJ {
		t.Errorf("slow %v", b.SlowAccess)
	}
	if b.Activations != 2*HBMActivatePJ+3*DDRActivatePJ {
		t.Errorf("activations %v", b.Activations)
	}
	if b.DemandSwitch != 7*SwitchPJ || b.MigSwitch != 4*SwitchPJ {
		t.Errorf("switch %v/%v", b.DemandSwitch, b.MigSwitch)
	}
	sum := b.FastAccess + b.SlowAccess + b.Activations + b.DemandSwitch + b.MigSwitch
	if b.Total() != sum {
		t.Errorf("total %v != %v", b.Total(), sum)
	}
	if math.Abs(b.TotalMJ()-sum/1e9) > 1e-15 {
		t.Errorf("mJ conversion wrong")
	}
}

func TestZeroCounts(t *testing.T) {
	if Compute(Counts{}).Total() != 0 {
		t.Error("zero counts not zero energy")
	}
}

func TestSlowCostsMoreThanFast(t *testing.T) {
	// Off-chip transfers must dominate stacked ones per event — the
	// premise of the two-level organization.
	if DDRAccessPJ <= HBMAccessPJ {
		t.Error("DDR access not more expensive than HBM")
	}
	if DDRActivatePJ <= HBMActivatePJ {
		t.Error("DDR activation not more expensive than HBM")
	}
}

// Energy is monotone in every count.
func TestMonotonicity(t *testing.T) {
	prop := func(base Counts, extra uint8) bool {
		bump := uint64(extra)
		bigger := base
		bigger.FastAccesses += bump
		bigger.SlowAccesses += bump
		bigger.GlobalMigLines += bump
		return Compute(bigger).Total() >= Compute(base).Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
