// Package energy models data-movement energy for the memory system, in
// support of the paper's §5.3 claim: because MemPod migrates only between
// sibling controllers inside a pod, it never moves data across the global
// interconnect, bounding migration energy in a way centralized and
// segment-based designs (which swap across arbitrary channel pairs) do
// not.
//
// The model is a first-order per-event one: each 64-byte transfer costs
// the access energy of its DRAM technology, each row activation costs its
// activation energy, and each line that crosses the global switch pays an
// interconnect traversal. Constants are representative published values
// (HBM ≈ 4 pJ/bit, DDR4 ≈ 15 pJ/bit, on-chip interconnect ≈ 2 pJ/bit)
// rounded to keep the arithmetic transparent; the comparisons the paper
// makes are ratios, which are insensitive to the absolute calibration.
package energy

// Per-event energies in picojoules.
const (
	// HBMAccessPJ is the energy of one 64 B transfer to/from stacked DRAM
	// (≈ 4 pJ/bit x 512 bits).
	HBMAccessPJ = 2048
	// DDRAccessPJ is the energy of one 64 B transfer to/from off-chip
	// DDR4 (≈ 15 pJ/bit x 512 bits).
	DDRAccessPJ = 7680
	// HBMActivatePJ and DDRActivatePJ are per-row-activation energies.
	HBMActivatePJ = 900
	DDRActivatePJ = 2100
	// SwitchPJ is the energy of moving one 64 B line across the global
	// on-chip switch between the LLC and the memory controllers
	// (≈ 2 pJ/bit). Pod-local migration traffic never pays it.
	SwitchPJ = 1024
)

// Breakdown itemizes the energy of one simulation run in picojoules.
type Breakdown struct {
	FastAccess   float64 // HBM line transfers (demand + migration)
	SlowAccess   float64 // DDR line transfers (demand + migration)
	Activations  float64 // row activations, both levels
	DemandSwitch float64 // demand lines crossing the global switch
	MigSwitch    float64 // migration lines crossing the global switch
}

// Total returns the sum of all components in picojoules.
func (b Breakdown) Total() float64 {
	return b.FastAccess + b.SlowAccess + b.Activations + b.DemandSwitch + b.MigSwitch
}

// TotalMJ returns the total in millijoules for reporting.
func (b Breakdown) TotalMJ() float64 { return b.Total() / 1e9 }

// MigrationSwitchMJ returns the migration interconnect component in
// millijoules — the quantity MemPod's clustering eliminates.
func (b Breakdown) MigrationSwitchMJ() float64 { return b.MigSwitch / 1e9 }

// Compute assembles a breakdown from event counts.
//
//   - fastAccesses/slowAccesses: 64 B transfers per level, including
//     migration traffic;
//   - fastActivations/slowActivations: row activations per level;
//   - demandLines: demand requests (every one crosses the switch between
//     the LLC and the controllers);
//   - globalMigLines: migration line transfers that crossed the switch
//     (each moved line crosses once on its way to the buffer and once
//     back, already folded into the caller's count);
type Counts struct {
	FastAccesses    uint64
	SlowAccesses    uint64
	FastActivations uint64
	SlowActivations uint64
	DemandLines     uint64
	GlobalMigLines  uint64
}

// Compute evaluates the model over the counts.
func Compute(c Counts) Breakdown {
	return Breakdown{
		FastAccess:   float64(c.FastAccesses) * HBMAccessPJ,
		SlowAccess:   float64(c.SlowAccesses) * DDRAccessPJ,
		Activations:  float64(c.FastActivations)*HBMActivatePJ + float64(c.SlowActivations)*DDRActivatePJ,
		DemandSwitch: float64(c.DemandLines) * SwitchPJ,
		MigSwitch:    float64(c.GlobalMigLines) * SwitchPJ,
	}
}
