package mech

import (
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// ColumnPlan gathers a span of routed demand requests into per-channel
// columns and services each column through the channel batch kernel
// (dram.Channel.AccessBatch) in one call. A plan preserves per-channel
// request order, which is the whole correctness argument: channels share
// no state, so reordering requests *across* channels while keeping each
// channel's own sequence intact is bit-identical to the interleaved
// per-request order.
//
// The routing mechanism must Flush before any event that injects channel
// traffic outside the plan — interval boundaries, migration-queue drains,
// triggered swaps, bookkeeping reads — so that traffic observes exactly
// the channel state it would have seen on the per-request path.
//
// A plan is single-goroutine state. The serial engine path shares one
// plan per backend (Backend.Plan); the pod-parallel path gives each
// worker its own (NewColumnPlan), which is safe because workers own
// disjoint pods and therefore route to disjoint channel sets.
type ColumnPlan struct {
	sys  *memsys.System
	cols [][]dram.BatchReq
	used []int32
	done []clock.Time
}

// colCap is each channel column's preallocated capacity: one flat backing
// array sliced per channel replaces the dozens of incremental append
// regrowths a fresh plan would otherwise pay while warming up. A column
// that outgrows its slot just reallocates (and keeps the larger capacity);
// spans are bounded by the engine window, so in practice almost none do.
const colCap = 64

// NewColumnPlan returns an empty plan over sys's channels.
func NewColumnPlan(sys *memsys.System) *ColumnPlan {
	nch := sys.NumChannels()
	flat := make([]dram.BatchReq, nch*colCap)
	cols := make([][]dram.BatchReq, nch)
	for ch := range cols {
		cols[ch] = flat[ch*colCap : ch*colCap : (ch+1)*colCap]
	}
	return &ColumnPlan{
		sys:  sys,
		cols: cols,
		used: make([]int32, 0, nch),
	}
}

// Begin starts a new span: routed completions are folded into done by
// request index (running max, so callers preload done[i] with the
// request's completion floor — zero, or a migration-lock release time).
func (p *ColumnPlan) Begin(done []clock.Time) { p.done = done }

// Route appends one demand access to its channel's pending column.
// idx is the request's index into the done column given to Begin.
func (p *ColumnPlan) Route(ch int, row uint64, write bool, at clock.Time, idx int32) {
	col := p.cols[ch]
	if len(col) == 0 {
		p.used = append(p.used, int32(ch))
	}
	p.cols[ch] = append(col, dram.BatchReq{Row: row, At: at, Idx: idx, Write: write})
}

// smallColumn is the column length below which Flush services requests
// through the per-request channel path instead of the batch kernel: the
// kernel hoists channel state into locals and writes it back once, which
// amortizes over long columns but costs more than it saves under a
// handful of requests (frequent flush points — migration drains,
// triggered swaps — produce exactly such slivers). Both paths are
// bit-identical by construction, so the threshold is purely a speed knob.
const smallColumn = 8

// flushCol services one channel's pending column and resets it; the
// caller maintains the used list.
func (p *ColumnPlan) flushCol(ch int32) {
	col := p.cols[ch]
	done := p.done
	if len(col) < smallColumn {
		for i := range col {
			r := &col[i]
			if fin := p.sys.AccessChannel(int(ch), r.Row, r.Write, r.At); fin > done[r.Idx] {
				done[r.Idx] = fin
			}
		}
	} else {
		p.sys.AccessChannelBatch(int(ch), col, done)
	}
	p.cols[ch] = col[:0]
}

// Flush services every pending column and empties the plan. Channel
// order across columns is irrelevant (channels are independent); within
// a column, requests run in routed order.
func (p *ColumnPlan) Flush() {
	for _, ch := range p.used {
		p.flushCol(ch)
	}
	p.used = p.used[:0]
}

// FlushRange services only the pending columns of channels in [lo, hi),
// leaving every other channel's column accumulating. A mechanism whose
// mid-span event injects traffic onto a known channel subset (a pod's
// migration drain, a paced swap chunk) flushes just that subset: the
// pending demand on those channels is serviced first — exactly the
// per-request interleaving — while unrelated channels keep building
// long columns instead of being shredded into slivers at every event.
// Bit-identical to a full Flush because channels share no state.
func (p *ColumnPlan) FlushRange(lo, hi int) {
	for i := 0; i < len(p.used); {
		ch := p.used[i]
		if int(ch) < lo || int(ch) >= hi {
			i++
			continue
		}
		p.flushCol(ch)
		last := len(p.used) - 1
		p.used[i] = p.used[last]
		p.used = p.used[:last]
	}
}

// FlushChannel services channel ch's pending column only. Most mid-span
// events hit channels with nothing pending (drain traffic clusters on a
// couple of channels while demand spreads over all of them), so the
// empty case returns before touching the used list.
func (p *ColumnPlan) FlushChannel(ch int) {
	if len(p.cols[ch]) == 0 {
		return
	}
	p.flushCol(int32(ch))
	for i, u := range p.used {
		if int(u) == ch {
			last := len(p.used) - 1
			p.used[i] = p.used[last]
			p.used = p.used[:last]
			break
		}
	}
}

// ColumnAccessor is optionally implemented by mechanisms that can
// service a dense span of decoded requests through per-channel columns
// instead of one AccessDecoded call per request. The engine's batched
// path dispatches through it when the stream serves zero-copy spans
// (trace.ColumnStream) — the span's fields are the snapshot's own
// decoded columns, so no Request structs are materialized at all.
type ColumnAccessor interface {
	DecodedAccessor
	// AccessColumn services span request i (decoded as sc.Dec[i]) issued
	// at at[i], writing each completion into done[i]. It must be
	// bit-identical to the equivalent sequence of AccessDecoded calls:
	// same completions, same mechanism and channel state afterwards. at
	// and done are parallel to the span and caller-owned; every done[i]
	// is (re)written.
	AccessColumn(sc *trace.SpanColumns, at, done []clock.Time)
}

// ShardedColumn carries one pod-parallel worker's share of a wavefront
// segment through a column accessor: the segment bounds, the worker's
// pod-stride identity, the precomputed issue times and touch-filter
// answers, and the worker-private plan to route through.
type ShardedColumn struct {
	Plan    *ColumnPlan
	Reqs    []trace.Request
	Dec     []trace.Decoded
	At      []clock.Time
	Touched []bool
	Done    []clock.Time
	Lo, Hi  int
	Worker  int
	Workers int
}

// PodShardedColumns is optionally implemented by pod-sharded mechanisms
// that can service a worker's segment share through per-channel columns.
// AccessShardedColumn must be bit-identical to calling AccessSharded for
// each owned request (indices i in [Lo, Hi) with pod(i) % Workers ==
// Worker) in order, writing each completion into Done[i]. Like
// AccessSharded it may only touch state of the worker's pods — the
// worker-private plan keeps the routed channel traffic inside them.
type PodShardedColumns interface {
	PodSharded
	AccessShardedColumn(sc *ShardedColumn)
}
