package mech

import "repro/internal/clock"

// LockTable tracks in-flight migration locks: page (or line) keys mapped
// to the completion time of the copy that locks them. It replaces the
// map[key]clock.Time the mechanisms used to carry, with semantics proven
// equivalent (TestLockTableMatchesMap) and a representation sized to the
// data: the live lock set at any instant is a handful of entries (the
// swaps currently in flight), so a sorted slice searched in L1 beats a
// hash map scattered over the heap — and it allocates nothing in steady
// state.
//
// The map semantics being preserved, entry by entry:
//
//	end, ok := locks[k]          ->  end := t.Get(k)   (0 means absent;
//	                                 real ends are completion times > 0)
//	delete(locks, k)             ->  t.Drop(k)
//	if e > locks[k] {locks[k]=e} ->  t.Raise(k, e)
//	range + delete if end <= b   ->  t.Sweep(b)
type LockTable struct {
	entries []lockEntry
	// compactAt triggers MaybeCompact's pruning; it doubles with the live
	// size so compaction is amortized O(1) per insert.
	compactAt int
}

type lockEntry struct {
	key uint64
	end clock.Time
}

// find returns the insertion index for key and whether it is present.
func (t *LockTable) find(key uint64) (int, bool) {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.entries[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(t.entries) && t.entries[lo].key == key
}

// Get returns the lock completion time for key, or 0 when the key is not
// locked.
func (t *LockTable) Get(key uint64) clock.Time {
	if len(t.entries) == 0 {
		return 0
	}
	if i, ok := t.find(key); ok {
		return t.entries[i].end
	}
	return 0
}

// Drop removes key's lock if present.
func (t *LockTable) Drop(key uint64) {
	if i, ok := t.find(key); ok {
		t.entries = append(t.entries[:i], t.entries[i+1:]...)
	}
}

// Raise extends key's lock to end if that is later than its current end
// (inserting the key if absent), mirroring the read-modify-write the
// mechanisms perform per swap chunk.
func (t *LockTable) Raise(key uint64, end clock.Time) {
	i, ok := t.find(key)
	if ok {
		if end > t.entries[i].end {
			t.entries[i].end = end
		}
		return
	}
	if end <= 0 {
		return // matches `if end > locks[key]` against the map's zero value
	}
	t.entries = append(t.entries, lockEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = lockEntry{key: key, end: end}
}

// Put sets key's lock to exactly end, overwriting any current value —
// the plain map-assignment idiom (CAMEO re-locks a line at its newest
// swap's completion, even if an older lock reached further). end must be
// positive; a zero end would be indistinguishable from absence.
func (t *LockTable) Put(key uint64, end clock.Time) {
	i, ok := t.find(key)
	if ok {
		t.entries[i].end = end
		return
	}
	t.entries = append(t.entries, lockEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = lockEntry{key: key, end: end}
}

// Sweep removes every lock whose end is at or before boundary — the
// interval-boundary expiry pass.
func (t *LockTable) Sweep(boundary clock.Time) {
	kept := t.entries[:0]
	for _, e := range t.entries {
		if e.end > boundary {
			kept = append(kept, e)
		}
	}
	t.entries = kept
}

// Len returns the number of locks held (for tests).
func (t *LockTable) Len() int { return len(t.entries) }

// MaybeCompact prunes locks that can never stall again, keeping the table
// small for mechanisms with no interval boundary to sweep at (THM, CAMEO,
// whose maps only shed an entry when its page happened to be re-accessed).
//
// floor must be a lower bound on every future lock query time; the
// engine's trace-order check makes the current request's trace timestamp
// exactly that (every future access starts at or after its own, later,
// trace time). A pruned entry has end <= floor <= every future query
// start, so the map would never stall on it again either — its only
// remaining effect would be its own lazy deletion, which is unobservable.
func (t *LockTable) MaybeCompact(floor clock.Time) {
	if t.compactAt == 0 {
		t.compactAt = 64
	}
	if len(t.entries) < t.compactAt {
		return
	}
	t.Sweep(floor)
	t.compactAt = 2 * len(t.entries)
	if t.compactAt < 64 {
		t.compactAt = 64
	}
}
