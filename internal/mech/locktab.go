package mech

import (
	"math/bits"

	"repro/internal/clock"
)

// LockTable tracks in-flight migration locks: page (or line) keys mapped
// to the completion time of the copy that locks them. It replaces the
// map[key]clock.Time the mechanisms used to carry, with semantics proven
// equivalent (TestLockTableMatchesMap) and a representation sized to the
// access pattern: an open-addressing hash table with linear probing whose
// few dozen live entries stay L1-resident, answering the per-request
// probe in one multiply and (almost always) one slot inspection — against
// the handful of dependent-load iterations a sorted-slice binary search
// pays. It allocates nothing in steady state; slot occupancy is marked by
// the end time itself (lock ends are completion times, always positive),
// and deletion backward-shifts the probe chain so there are no
// tombstones to accumulate.
//
// The map semantics being preserved, entry by entry:
//
//	end, ok := locks[k]          ->  end := t.Get(k)   (0 means absent;
//	                                 real ends are completion times > 0)
//	delete(locks, k)             ->  t.Drop(k)
//	if e > locks[k] {locks[k]=e} ->  t.Raise(k, e)
//	range + delete if end <= b   ->  t.Sweep(b)
type LockTable struct {
	keys []uint64
	ends []clock.Time // ends[i] != 0 marks slot i occupied
	n    int          // live entries
	mask uint64       // len(ends)-1; capacity is a power of two
	// shift maps the 64-bit hash product onto the table: 64-log2(cap).
	shift uint8
	// compactAt triggers MaybeCompact's pruning; it doubles with the live
	// size so compaction is amortized O(1) per insert.
	compactAt int
	// Sweep's rebuild buffers, reused across sweeps.
	scratchK []uint64
	scratchE []clock.Time
}

// lockTableMinCap is the smallest table capacity; sized so a mechanism
// with a handful of in-flight swaps never rehashes.
const lockTableMinCap = 16

// slot returns key's preferred slot: Fibonacci multiplicative hashing,
// which spreads the dense low bits page and line keys arrive with.
func (t *LockTable) slot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> t.shift
}

// Get returns the lock completion time for key, or 0 when the key is not
// locked.
func (t *LockTable) Get(key uint64) clock.Time {
	if t.n == 0 {
		return 0
	}
	i := t.slot(key)
	for t.ends[i] != 0 {
		if t.keys[i] == key {
			return t.ends[i]
		}
		i = (i + 1) & t.mask
	}
	return 0
}

// GetActive is the mechanisms' per-access lock probe, fusing the idiom
//
//	if end := locks.Get(k); end != 0 {
//	    if end > at { stall until end } else { locks.Drop(k) }
//	}
//
// into one search: it returns key's end when it is still in the future of
// `at` (the caller stalls), or 0 — removing the entry when it is present
// but expired, exactly like the idiom's lazy drop, which would otherwise
// pay a second search inside Drop.
//
// (A tempting shortcut — skip the search entirely when a cached
// max-of-all-ends has passed — is NOT taken: probe times are not monotone
// per table (ring-gated issue times fluctuate), so an entry the idiom
// would have lazily dropped at a late probe can come back to stall an
// earlier-timed later probe. The lazy drop is observable; it must happen
// at exactly the probes the idiom performs it at.)
func (t *LockTable) GetActive(key uint64, at clock.Time) clock.Time {
	if t.n == 0 {
		return 0
	}
	i := t.slot(key)
	for t.ends[i] != 0 {
		if t.keys[i] == key {
			if end := t.ends[i]; end > at {
				return end
			}
			t.del(i)
			return 0
		}
		i = (i + 1) & t.mask
	}
	return 0
}

// del vacates slot i and backward-shifts the probe chain behind it so
// linear probing never needs tombstones: each following entry that is not
// anchored between the hole and itself moves into the hole, opening a new
// hole at its old slot.
func (t *LockTable) del(i uint64) {
	t.n--
	j := i
	for {
		t.ends[i] = 0
		for {
			j = (j + 1) & t.mask
			if t.ends[j] == 0 {
				return
			}
			k := t.slot(t.keys[j])
			// If k lies cyclically in (i, j], entry j is anchored past
			// the hole and must stay; keep scanning.
			if i <= j {
				if i < k && k <= j {
					continue
				}
			} else if i < k || k <= j {
				continue
			}
			break
		}
		t.keys[i], t.ends[i] = t.keys[j], t.ends[j]
		i = j
	}
}

// Drop removes key's lock if present.
func (t *LockTable) Drop(key uint64) {
	if t.n == 0 {
		return
	}
	i := t.slot(key)
	for t.ends[i] != 0 {
		if t.keys[i] == key {
			t.del(i)
			return
		}
		i = (i + 1) & t.mask
	}
}

// Raise extends key's lock to end if that is later than its current end
// (inserting the key if absent), mirroring the read-modify-write the
// mechanisms perform per swap chunk.
func (t *LockTable) Raise(key uint64, end clock.Time) {
	if t.ends != nil {
		i := t.slot(key)
		for t.ends[i] != 0 {
			if t.keys[i] == key {
				if end > t.ends[i] {
					t.ends[i] = end
				}
				return
			}
			i = (i + 1) & t.mask
		}
	}
	if end <= 0 {
		return // matches `if end > locks[key]` against the map's zero value
	}
	t.insert(key, end)
}

// Put sets key's lock to exactly end, overwriting any current value —
// the plain map-assignment idiom (CAMEO re-locks a line at its newest
// swap's completion, even if an older lock reached further). end must be
// positive; a zero end would be indistinguishable from absence.
func (t *LockTable) Put(key uint64, end clock.Time) {
	if t.ends != nil {
		i := t.slot(key)
		for t.ends[i] != 0 {
			if t.keys[i] == key {
				t.ends[i] = end
				return
			}
			i = (i + 1) & t.mask
		}
	}
	t.insert(key, end)
}

// insert adds a key known to be absent, growing at 3/4 load so probe
// chains stay short.
func (t *LockTable) insert(key uint64, end clock.Time) {
	if len(t.ends) == 0 || (t.n+1)*4 > len(t.ends)*3 {
		t.grow()
	}
	i := t.slot(key)
	for t.ends[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i], t.ends[i] = key, end
	t.n++
}

// grow doubles the capacity (or allocates the initial table) and rehashes
// the live entries.
func (t *LockTable) grow() {
	newCap := lockTableMinCap
	if len(t.ends) > 0 {
		newCap = 2 * len(t.ends)
	}
	oldK, oldE := t.keys, t.ends
	t.keys = make([]uint64, newCap)
	t.ends = make([]clock.Time, newCap)
	t.mask = uint64(newCap - 1)
	t.shift = uint8(64 - bits.Len(uint(newCap-1)))
	for idx, e := range oldE {
		if e != 0 {
			i := t.slot(oldK[idx])
			for t.ends[i] != 0 {
				i = (i + 1) & t.mask
			}
			t.keys[i], t.ends[i] = oldK[idx], e
		}
	}
}

// Sweep removes every lock whose end is at or before boundary — the
// interval-boundary expiry pass. The table is rebuilt from the survivors
// (into reused scratch buffers), which re-tightens every probe chain.
func (t *LockTable) Sweep(boundary clock.Time) {
	if t.n == 0 {
		return
	}
	sk, se := t.scratchK[:0], t.scratchE[:0]
	for i, e := range t.ends {
		if e > boundary {
			sk = append(sk, t.keys[i])
			se = append(se, e)
		}
		t.ends[i] = 0
	}
	t.scratchK, t.scratchE = sk, se
	t.n = len(sk)
	for idx, k := range sk {
		i := t.slot(k)
		for t.ends[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.keys[i], t.ends[i] = k, se[idx]
	}
}

// Len returns the number of locks held (for tests).
func (t *LockTable) Len() int { return t.n }

// MaybeCompact prunes locks that can never stall again, keeping the table
// small for mechanisms with no interval boundary to sweep at (THM, CAMEO,
// whose maps only shed an entry when its page happened to be re-accessed).
//
// floor must be a lower bound on every future lock query time; the
// engine's trace-order check makes the current request's trace timestamp
// exactly that (every future access starts at or after its own, later,
// trace time). A pruned entry has end <= floor <= every future query
// start, so the map would never stall on it again either — its only
// remaining effect would be its own lazy deletion, which is unobservable.
func (t *LockTable) MaybeCompact(floor clock.Time) {
	if t.compactAt == 0 {
		t.compactAt = 64
	}
	if t.n < t.compactAt {
		return
	}
	t.Sweep(floor)
	t.compactAt = 2 * t.n
	if t.compactAt < 64 {
		t.compactAt = 64
	}
}
