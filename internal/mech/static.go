package mech

import (
	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
)

// Static is a mechanism that performs no migration: every request is
// serviced at its home location. With a two-level layout it is the paper's
// "TLM / no-migration" baseline; with a single-level layout it models the
// HBM-only and DDR-only reference points of Figures 8 and 10.
type Static struct {
	name    string
	backend *Backend
}

// NewStatic returns a no-migration mechanism over the backend.
func NewStatic(name string, b *Backend) *Static {
	return &Static{name: name, backend: b}
}

// Name implements Mechanism.
func (s *Static) Name() string { return s.name }

// Access implements Mechanism.
func (s *Static) Access(r *trace.Request, at clock.Time) clock.Time {
	return s.backend.HomeLine(addr.LineOf(addr.Addr(r.Addr)), r.Write, at)
}

// AccessDecoded implements DecodedAccessor: with no migration, the home
// location in the plane is the final location — the access needs no
// address math at all.
func (s *Static) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return s.backend.LineAt(d.Chan, d.Row, r.Write, at)
}

// Stats implements Mechanism. Static never migrates.
func (s *Static) Stats() MigStats { return MigStats{} }

var (
	_ Mechanism       = (*Static)(nil)
	_ DecodedAccessor = (*Static)(nil)
)
