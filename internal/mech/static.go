package mech

import (
	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
)

// Static is a mechanism that performs no migration: every request is
// serviced at its home location. With a two-level layout it is the paper's
// "TLM / no-migration" baseline; with a single-level layout it models the
// HBM-only and DDR-only reference points of Figures 8 and 10.
type Static struct {
	name    string
	backend *Backend
}

// NewStatic returns a no-migration mechanism over the backend.
func NewStatic(name string, b *Backend) *Static {
	return &Static{name: name, backend: b}
}

// Name implements Mechanism.
func (s *Static) Name() string { return s.name }

// Access implements Mechanism.
func (s *Static) Access(r *trace.Request, at clock.Time) clock.Time {
	return s.backend.HomeLine(addr.LineOf(addr.Addr(r.Addr)), r.Write, at)
}

// AccessDecoded implements DecodedAccessor: with no migration, the home
// location in the plane is the final location — the access needs no
// address math at all.
func (s *Static) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return s.backend.LineAt(d.Chan, d.Row, r.Write, at)
}

// AccessColumn implements ColumnAccessor: with no translation state and
// no migration traffic there are no flush points — every request routes
// straight to its precomputed home channel's column.
func (s *Static) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	p := s.backend.Plan()
	p.Begin(done)
	dec := sc.Dec
	for i := range dec {
		done[i] = 0
		p.Route(int(dec[i].Chan), uint64(dec[i].Row), sc.Write(i), at[i], int32(i))
	}
	p.Flush()
}

// Stats implements Mechanism. Static never migrates.
func (s *Static) Stats() MigStats { return MigStats{} }

var (
	_ Mechanism       = (*Static)(nil)
	_ DecodedAccessor = (*Static)(nil)
	_ ColumnAccessor  = (*Static)(nil)
)
