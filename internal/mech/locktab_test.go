package mech

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
)

// TestLockTableMatchesMap drives a LockTable and the map[uint64]clock.Time
// idiom it replaces through identical random operation streams and
// requires identical observable behaviour at every step: same Get answers,
// same post-Sweep contents.
func TestLockTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var lt LockTable
	ref := make(map[uint64]clock.Time)

	checkGet := func(k uint64) {
		t.Helper()
		want := ref[k] // zero when absent, exactly LockTable's convention
		if got := lt.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, want %d", k, got, want)
		}
	}

	const keys = 40
	for step := 0; step < 50000; step++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(6) {
		case 0, 1: // Raise, as executeSwap does per chunk
			end := clock.Time(1 + rng.Intn(1000))
			if end > ref[k] {
				ref[k] = end
			}
			lt.Raise(k, end)
		case 2: // access-path expiry: Get then Drop if expired
			start := clock.Time(rng.Intn(1000))
			checkGet(k)
			if end, ok := ref[k]; ok && end <= start {
				delete(ref, k)
				lt.Drop(k)
			}
		case 3: // boundary sweep
			b := clock.Time(rng.Intn(1000))
			for k, end := range ref {
				if end <= b {
					delete(ref, k)
				}
			}
			lt.Sweep(b)
		case 4:
			checkGet(k)
		case 5: // overwriting assignment, as CAMEO's swap path does
			end := clock.Time(1 + rng.Intn(1000))
			ref[k] = end
			lt.Put(k, end)
		}
		if lt.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, map has %d", step, lt.Len(), len(ref))
		}
	}
	for k := uint64(0); k < keys; k++ {
		checkGet(k)
	}
}

// TestLockTableCompact checks that MaybeCompact prunes only entries at or
// below the floor and leaves future-relevant locks intact.
func TestLockTableCompact(t *testing.T) {
	var lt LockTable
	for k := uint64(0); k < 200; k++ {
		lt.Raise(k, clock.Time(k+1))
	}
	lt.MaybeCompact(100) // len 200 >= initial threshold 64
	if lt.Len() != 100 {
		t.Fatalf("after compact at floor 100: Len = %d, want 100", lt.Len())
	}
	for k := uint64(0); k < 200; k++ {
		want := clock.Time(0)
		if k+1 > 100 {
			want = clock.Time(k + 1)
		}
		if got := lt.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, want %d", k, got, want)
		}
	}
	// Below the (doubled) threshold nothing is pruned.
	lt.MaybeCompact(1000)
	if lt.Len() != 100 {
		t.Fatalf("compact fired below threshold: Len = %d", lt.Len())
	}
}

// TestLockTableRaiseKeepsLaterEnd pins the read-modify-write semantics:
// raising to an earlier end must not shorten a lock.
func TestLockTableRaiseKeepsLaterEnd(t *testing.T) {
	var lt LockTable
	lt.Raise(5, 100)
	lt.Raise(5, 50)
	if got := lt.Get(5); got != 100 {
		t.Fatalf("Get(5) = %d, want 100", got)
	}
	lt.Raise(5, 150)
	if got := lt.Get(5); got != 150 {
		t.Fatalf("Get(5) = %d, want 150", got)
	}
}

// TestLockTableGetActiveMatchesIdiom drives GetActive against the
// Get-then-Drop-if-expired idiom it fuses, running on a reference map.
// Both the stall answer and the table contents must match the idiom
// exactly at every step: the lazy drop is observable (a dropped entry and
// a kept-expired one answer differently to a later, earlier-timed probe),
// so GetActive must perform it at exactly the probes the idiom does.
func TestLockTableGetActiveMatchesIdiom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var lt LockTable
	ref := make(map[uint64]clock.Time)

	const keys = 40
	for step := 0; step < 50000; step++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(5) {
		case 0, 1: // the access-path probe
			at := clock.Time(rng.Intn(1000))
			var want clock.Time
			if end, ok := ref[k]; ok {
				if end > at {
					want = end
				} else {
					delete(ref, k)
				}
			}
			if got := lt.GetActive(k, at); got != want {
				t.Fatalf("step %d: GetActive(%d, %d) = %d, want %d", step, k, at, got, want)
			}
		case 2: // swap-chunk lock raise
			end := clock.Time(1 + rng.Intn(1000))
			if end > ref[k] {
				ref[k] = end
			}
			lt.Raise(k, end)
		case 3: // interval-boundary sweep
			b := clock.Time(rng.Intn(1000))
			for k, end := range ref {
				if end <= b {
					delete(ref, k)
				}
			}
			lt.Sweep(b)
		case 4: // CAMEO's overwriting assignment
			end := clock.Time(1 + rng.Intn(1000))
			ref[k] = end
			lt.Put(k, end)
		}
		if lt.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, map has %d", step, lt.Len(), len(ref))
		}
		for k, end := range ref {
			if lt.Get(k) != end {
				t.Fatalf("step %d: map entry {%d,%d} missing from table", step, k, end)
			}
		}
	}
}

// TestLockTablePropertyBackwardShiftDelete is the delete-heavy adversary
// for the open-addressing layout. The "clustered" universes are built from
// the modular inverse of the Fibonacci multiplier, so every key hashes to
// the same preferred slot whatever the table capacity — probe chains reach
// maximum length and nearly every deletion backward-shifts a chain. The
// reference map checks observable semantics (Get answers, GetActive's lazy
// drop, sizes); the probe-reachability invariant checks the layout itself:
// after any interleaving of inserts and deletions, every live key must
// still be reachable from its preferred slot without crossing an empty
// slot, or a later Get would miss a present key.
func TestLockTablePropertyBackwardShiftDelete(t *testing.T) {
	// fibInv * 0x9E3779B97F4A7C15 == 1 (mod 2^64), by Newton iteration.
	const fib = 0x9E3779B97F4A7C15
	fibInv := uint64(fib)
	for i := 0; i < 5; i++ {
		fibInv *= 2 - fib*fibInv
	}
	if fibInv*fib != 1 {
		t.Fatalf("bad modular inverse")
	}

	universes := map[string]func(rng *rand.Rand, n int) []uint64{
		"clustered": func(rng *rand.Rand, n int) []uint64 {
			// key*fib == i: preferred slot (i >> shift) is 0 for all of
			// them, at every capacity the test reaches.
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(i+1) * fibInv
			}
			return keys
		},
		"dense": func(rng *rand.Rand, n int) []uint64 {
			base := rng.Uint64() >> 20 // page-number-like density
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = base + uint64(i)
			}
			return keys
		},
	}

	for name, gen := range universes {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				keys := gen(rng, 48)
				var lt LockTable
				ref := make(map[uint64]clock.Time)

				checkInvariant := func(step int) {
					t.Helper()
					live := 0
					for i := range lt.ends {
						if lt.ends[i] == 0 {
							continue
						}
						live++
						j := lt.slot(lt.keys[i])
						for j != uint64(i) {
							if lt.ends[j] == 0 {
								t.Fatalf("step %d: key %d at slot %d unreachable (empty slot %d in its probe chain)",
									step, lt.keys[i], i, j)
							}
							j = (j + 1) & lt.mask
						}
					}
					if live != lt.n {
						t.Fatalf("step %d: %d occupied slots but n = %d", step, live, lt.n)
					}
				}

				for step := 0; step < 30000; step++ {
					k := keys[rng.Intn(len(keys))]
					// Delete-heavy mix: half the operations remove entries,
					// directly (Drop) or via GetActive's lazy expiry drop.
					switch rng.Intn(8) {
					case 0, 1:
						delete(ref, k)
						lt.Drop(k)
					case 2, 3:
						// A late probe time makes most hits expire in place.
						at := clock.Time(700 + rng.Intn(300))
						var want clock.Time
						if end, ok := ref[k]; ok {
							if end > at {
								want = end
							} else {
								delete(ref, k)
							}
						}
						if got := lt.GetActive(k, at); got != want {
							t.Fatalf("step %d: GetActive(%d, %d) = %d, want %d", step, k, at, got, want)
						}
					case 4, 5:
						end := clock.Time(1 + rng.Intn(1000))
						if end > ref[k] {
							ref[k] = end
						}
						lt.Raise(k, end)
					case 6:
						end := clock.Time(1 + rng.Intn(1000))
						ref[k] = end
						lt.Put(k, end)
					case 7:
						if got, want := lt.Get(k), ref[k]; got != want {
							t.Fatalf("step %d: Get(%d) = %d, want %d", step, k, got, want)
						}
					}
					if lt.Len() != len(ref) {
						t.Fatalf("step %d: Len = %d, map has %d", step, lt.Len(), len(ref))
					}
					if step%64 == 0 {
						checkInvariant(step)
						for _, k := range keys {
							if got, want := lt.Get(k), ref[k]; got != want {
								t.Fatalf("step %d: full check: Get(%d) = %d, want %d", step, k, got, want)
							}
						}
					}
				}
				checkInvariant(30000)
			})
		}
	}
}
