package mech

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
)

// TestLockTableMatchesMap drives a LockTable and the map[uint64]clock.Time
// idiom it replaces through identical random operation streams and
// requires identical observable behaviour at every step: same Get answers,
// same post-Sweep contents.
func TestLockTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var lt LockTable
	ref := make(map[uint64]clock.Time)

	checkGet := func(k uint64) {
		t.Helper()
		want := ref[k] // zero when absent, exactly LockTable's convention
		if got := lt.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, want %d", k, got, want)
		}
	}

	const keys = 40
	for step := 0; step < 50000; step++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(6) {
		case 0, 1: // Raise, as executeSwap does per chunk
			end := clock.Time(1 + rng.Intn(1000))
			if end > ref[k] {
				ref[k] = end
			}
			lt.Raise(k, end)
		case 2: // access-path expiry: Get then Drop if expired
			start := clock.Time(rng.Intn(1000))
			checkGet(k)
			if end, ok := ref[k]; ok && end <= start {
				delete(ref, k)
				lt.Drop(k)
			}
		case 3: // boundary sweep
			b := clock.Time(rng.Intn(1000))
			for k, end := range ref {
				if end <= b {
					delete(ref, k)
				}
			}
			lt.Sweep(b)
		case 4:
			checkGet(k)
		case 5: // overwriting assignment, as CAMEO's swap path does
			end := clock.Time(1 + rng.Intn(1000))
			ref[k] = end
			lt.Put(k, end)
		}
		if lt.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, map has %d", step, lt.Len(), len(ref))
		}
	}
	for k := uint64(0); k < keys; k++ {
		checkGet(k)
	}
}

// TestLockTableCompact checks that MaybeCompact prunes only entries at or
// below the floor and leaves future-relevant locks intact.
func TestLockTableCompact(t *testing.T) {
	var lt LockTable
	for k := uint64(0); k < 200; k++ {
		lt.Raise(k, clock.Time(k+1))
	}
	lt.MaybeCompact(100) // len 200 >= initial threshold 64
	if lt.Len() != 100 {
		t.Fatalf("after compact at floor 100: Len = %d, want 100", lt.Len())
	}
	for k := uint64(0); k < 200; k++ {
		want := clock.Time(0)
		if k+1 > 100 {
			want = clock.Time(k + 1)
		}
		if got := lt.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, want %d", k, got, want)
		}
	}
	// Below the (doubled) threshold nothing is pruned.
	lt.MaybeCompact(1000)
	if lt.Len() != 100 {
		t.Fatalf("compact fired below threshold: Len = %d", lt.Len())
	}
}

// TestLockTableRaiseKeepsLaterEnd pins the read-modify-write semantics:
// raising to an earlier end must not shorten a lock.
func TestLockTableRaiseKeepsLaterEnd(t *testing.T) {
	var lt LockTable
	lt.Raise(5, 100)
	lt.Raise(5, 50)
	if got := lt.Get(5); got != 100 {
		t.Fatalf("Get(5) = %d, want 100", got)
	}
	lt.Raise(5, 150)
	if got := lt.Get(5); got != 150 {
		t.Fatalf("Get(5) = %d, want 150", got)
	}
}

// TestLockTableGetActiveMatchesIdiom drives GetActive against the
// Get-then-Drop-if-expired idiom it fuses, running on a reference map.
// Both the stall answer and the table contents must match the idiom
// exactly at every step: the lazy drop is observable (a dropped entry and
// a kept-expired one answer differently to a later, earlier-timed probe),
// so GetActive must perform it at exactly the probes the idiom does.
func TestLockTableGetActiveMatchesIdiom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var lt LockTable
	ref := make(map[uint64]clock.Time)

	const keys = 40
	for step := 0; step < 50000; step++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(5) {
		case 0, 1: // the access-path probe
			at := clock.Time(rng.Intn(1000))
			var want clock.Time
			if end, ok := ref[k]; ok {
				if end > at {
					want = end
				} else {
					delete(ref, k)
				}
			}
			if got := lt.GetActive(k, at); got != want {
				t.Fatalf("step %d: GetActive(%d, %d) = %d, want %d", step, k, at, got, want)
			}
		case 2: // swap-chunk lock raise
			end := clock.Time(1 + rng.Intn(1000))
			if end > ref[k] {
				ref[k] = end
			}
			lt.Raise(k, end)
		case 3: // interval-boundary sweep
			b := clock.Time(rng.Intn(1000))
			for k, end := range ref {
				if end <= b {
					delete(ref, k)
				}
			}
			lt.Sweep(b)
		case 4: // CAMEO's overwriting assignment
			end := clock.Time(1 + rng.Intn(1000))
			ref[k] = end
			lt.Put(k, end)
		}
		if lt.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, map has %d", step, lt.Len(), len(ref))
		}
		for k, end := range ref {
			if lt.Get(k) != end {
				t.Fatalf("step %d: map entry {%d,%d} missing from table", step, k, end)
			}
		}
	}
}
