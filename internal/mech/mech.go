// Package mech defines the common machinery of hybrid-memory management
// mechanisms: the Mechanism interface the simulation engine drives, the
// Backend that issues physical requests into the memory system, and the
// set-associative cache model used for bookkeeping state (§6.3.3).
//
// The concrete mechanisms live in their own packages: internal/core
// (MemPod), internal/hma, internal/thm and internal/cameo; this package
// also provides the static (no-migration and single-level) references.
package mech

import (
	"repro/internal/clock"
	"repro/internal/trace"
)

// Mechanism is a memory-management scheme under evaluation. The engine
// calls Access once per trace request, in non-decreasing time order, and
// the mechanism routes the request (after any translation, bookkeeping
// traffic, interval processing or migration stalling it models) and
// returns the completion time.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Access services one demand request arriving at time `at` and
	// returns its completion time (> at).
	Access(r *trace.Request, at clock.Time) clock.Time
	// Stats returns the mechanism's migration counters.
	Stats() MigStats
}

// DecodedAccessor is optionally implemented by mechanisms that can skip
// the flat-address decomposition when the trace comes with a predecode
// plane (trace.Decoded: page, owning pod, home frame, line-in-page). The
// engine's batched path dispatches through it when the stream has a plane
// bound; AccessDecoded must be bit-identical to Access for the same
// request.
type DecodedAccessor interface {
	Mechanism
	// AccessDecoded is Access with the request's address decomposition
	// already computed (d describes r.Addr under the backend's layout).
	AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time
}

// AccessDecoded services r through m's decoded entry point when it has
// one, falling back to plain Access.
func AccessDecoded(m Mechanism, r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	if dm, ok := m.(DecodedAccessor); ok {
		return dm.AccessDecoded(r, d, at)
	}
	return m.Access(r, at)
}

// TouchSharer is implemented by mechanisms whose activity tracking runs
// behind a shared per-core TouchFilter. The pod-parallel engine's serial
// prepass consults the filter through it (the filter is the one piece of
// per-access state that crosses pods), and the differential tests use it
// to assert filter-state equivalence across engine paths.
type TouchSharer interface {
	// SharedTouch returns the mechanism's touch filter. The engine owns
	// all ordering: the filter must only be consulted in global request
	// order, from one goroutine at a time.
	SharedTouch() *TouchFilter
}

// PodSharded is implemented by mechanisms whose per-access mutable state
// is partitioned by home pod, with cross-pod work confined to interval
// boundaries — MemPod's defining property (§5: pods migrate independently;
// only the epoch rollover walks all pods). The engine's pod-parallel path
// drives such mechanisms with one worker per pod shard between
// boundaries, joining at a deterministic barrier to run AdvanceBoundary,
// and is bit-identical to the serial path by construction: AccessSharded
// calls for different pods must not share any mutable state.
//
// Mechanisms that swap across arbitrary channel pairs mid-interval (HMA,
// THM, CAMEO — everything routed through the global switch) cannot
// implement this; the engine falls back to the serial batched path for
// them, mirroring the paper's scalability argument for clustering.
type PodSharded interface {
	DecodedAccessor
	TouchSharer
	// Pods returns the number of independent shards (home pods).
	Pods() int
	// NextBoundary returns the next interval boundary: every AccessSharded
	// call must carry an issue time strictly below it.
	NextBoundary() clock.Time
	// AdvanceBoundary runs every interval boundary at or before t, in
	// fixed pod order, advancing NextBoundary past t. The caller must
	// guarantee no AccessSharded call is in flight.
	AdvanceBoundary(t clock.Time)
	// AccessSharded is AccessDecoded with the cross-pod work hoisted out:
	// the caller has already advanced boundaries (so no interval check)
	// and consulted the shared touch filter (touched carries its answer).
	// It may only read and write state of d's pod, and must equal
	// AccessDecoded's result for the same request and mechanism state.
	AccessSharded(r *trace.Request, d *trace.Decoded, at clock.Time, touched bool) clock.Time
}

// Releaser is optionally implemented by mechanisms whose bookkeeping
// tables recycle through internal/tab pools. Callers that construct many
// mechanisms in sequence (the experiment matrix) call Release after the
// last use of a mechanism so the next cell reuses its tables instead of
// allocating and initializing tens of megabytes; callers that don't are
// merely slower. A released mechanism must not be used again.
type Releaser interface {
	Release()
}

// Release releases m's pooled tables if it has any.
func Release(m Mechanism) {
	if r, ok := m.(Releaser); ok {
		r.Release()
	}
}

// MigStats counts migration and bookkeeping activity.
type MigStats struct {
	Intervals         uint64 // interval boundaries processed
	PageMigrations    uint64 // pages moved (each is a swap participant)
	LineMigrations    uint64 // 64 B lines moved
	BytesMoved        uint64 // total migration traffic
	CacheHits         uint64 // bookkeeping cache hits
	CacheMisses       uint64 // bookkeeping cache misses (each injects a read)
	LockStalls        uint64 // demand requests delayed by an in-flight swap
	DroppedMigrations uint64 // scheduled swaps superseded before starting
	// GlobalMoveLines counts moved lines that crossed the global switch:
	// zero for MemPod (intra-pod datapath), equal to LineMigrations for
	// the mechanisms that swap across arbitrary channel pairs (§5.3).
	GlobalMoveLines uint64
}

// Merge adds o's counters into s. Every field is a sum, so merging
// per-pod shards in any fixed order reproduces the serially accumulated
// totals exactly — the property the pod-parallel engine's per-pod stats
// rely on.
func (m *MigStats) Merge(o MigStats) {
	m.Intervals += o.Intervals
	m.PageMigrations += o.PageMigrations
	m.LineMigrations += o.LineMigrations
	m.BytesMoved += o.BytesMoved
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.LockStalls += o.LockStalls
	m.DroppedMigrations += o.DroppedMigrations
	m.GlobalMoveLines += o.GlobalMoveLines
}

// BytesMovedPerPod returns average migration traffic per pod.
func (m MigStats) BytesMovedPerPod(pods int) uint64 {
	if pods <= 0 {
		return m.BytesMoved
	}
	return m.BytesMoved / uint64(pods)
}
