package mech

// Cache is a set-associative, LRU, tag-only cache model for bookkeeping
// state (remap tables, activity counters). It tracks which 64 B blocks of
// the backing store are resident on chip; a miss costs the caller one
// memory read (Backend.BookkeepingRead) plus the eventual refill, which we
// fold into that single read as the paper does.
//
// Keys are block indices: callers pack multiple table entries per block
// (e.g. sixteen 4-byte remap entries per 64 B block) before lookup.
type Cache struct {
	sets uint64
	ways int
	// tags[set*ways : (set+1)*ways] holds resident keys in LRU order,
	// most recent first. Zero-valued slots are encoded with `valid`.
	tags  []uint64
	valid []bool
}

// BlockBytes is the cache block (and backing-store access) granularity.
const BlockBytes = 64

// NewCache builds a cache of the given total capacity in bytes with the
// given associativity. Capacity is rounded down to a whole number of sets;
// a capacity below one block yields a cache that always misses.
func NewCache(capacityBytes, ways int) *Cache {
	if ways <= 0 {
		ways = 1
	}
	blocks := capacityBytes / BlockBytes
	sets := blocks / ways
	if sets <= 0 {
		return &Cache{sets: 0}
	}
	return &Cache{
		sets:  uint64(sets),
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
	}
}

// Access looks up block `key`, inserting it (with LRU eviction) on miss,
// and reports whether it hit.
func (c *Cache) Access(key uint64) bool {
	if c.sets == 0 {
		return false
	}
	set := int(mix64(key) % c.sets)
	base := set * c.ways
	way := -1
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.tags[base+i] == key {
			way = i
			break
		}
	}
	hit := way >= 0
	if !hit {
		way = c.ways - 1 // evict LRU
	}
	// Move to MRU position.
	for i := way; i > 0; i-- {
		c.tags[base+i] = c.tags[base+i-1]
		c.valid[base+i] = c.valid[base+i-1]
	}
	c.tags[base] = key
	c.valid[base] = true
	return hit
}

// mix64 is a finalizing hash (splitmix64) spreading block indices over
// sets so strided table walks don't collide pathologically.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
