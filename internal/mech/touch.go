package mech

// TouchFilter collapses the line bursts of one page touch into a single
// tracking observation. An out-of-order core's LLC misses arrive as short
// bursts of consecutive lines from one page; counting every line would let
// a single streaming touch saturate small activity counters and look as
// hot as genuinely reused data. The filter keeps one last-page register
// per core (trivial hardware at the pod's front end) and reports a touch
// only when a core moves to a different page.
//
// The filter applies identically to every tracking scheme in the
// comparison (MEA, THM's competing counters, HMA's full counters), so it
// never biases the mechanism comparison.
type TouchFilter struct {
	last [256]uint64 // per-core last page + 1 (0 = none)
}

// Touch reports whether this access begins a new page touch for the core.
func (f *TouchFilter) Touch(core uint8, page uint64) bool {
	if f.last[core] == page+1 {
		return false
	}
	f.last[core] = page + 1
	return true
}
