package mech

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/trace"
)

func testBackend(t *testing.T) *Backend {
	t.Helper()
	return NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
}

func TestStaticRoutesHome(t *testing.T) {
	b := testBackend(t)
	s := NewStatic("TLM", b)
	if s.Name() != "TLM" {
		t.Fatal("name")
	}
	fast := &trace.Request{Addr: 0}
	slow := &trace.Request{Addr: 2 << 30}
	f := s.Access(fast, 0)
	sl := s.Access(slow, 0)
	if f >= sl {
		t.Errorf("fast home access %v not faster than slow %v", f, sl)
	}
	if b.Sys.FastStats().Accesses() != 1 || b.Sys.SlowStats().Accesses() != 1 {
		t.Error("requests routed to wrong levels")
	}
	if s.Stats() != (MigStats{}) {
		t.Error("static mechanism reported migrations")
	}
}

func TestSwapPagesMovesWholePages(t *testing.T) {
	b := testBackend(t)
	fastFrame := addr.Frame(0)
	slowFrame := addr.Frame(b.Layout.FastPagesPerPod())
	end := b.SwapPages(0, fastFrame, slowFrame, 0)
	if end <= 0 {
		t.Fatal("swap completed instantly")
	}
	// 32 reads + 32 writes per page, both pages: 64 accesses per level.
	fs, ss := b.Sys.FastStats(), b.Sys.SlowStats()
	if fs.Reads != 32 || fs.Writes != 32 {
		t.Errorf("fast level %d reads %d writes, want 32/32", fs.Reads, fs.Writes)
	}
	if ss.Reads != 32 || ss.Writes != 32 {
		t.Errorf("slow level %d reads %d writes, want 32/32", ss.Reads, ss.Writes)
	}
	// A swap is bounded below by the slow page transfer: 64 line bursts.
	if min := clock.Duration(64) * dram.DDR4_1600().BurstTime(); end < clock.Time(min) {
		t.Errorf("swap finished unrealistically fast: %v < %v", end, min)
	}
}

func TestSwapLines(t *testing.T) {
	b := testBackend(t)
	la := b.Layout.HomeLocation(0)
	lb := b.Layout.HomeLocation(addr.Line(uint64(b.Layout.FastPages()) * addr.LinesPerPage))
	end := b.SwapLines(la, lb, 0)
	if end <= 0 {
		t.Fatal("line swap completed instantly")
	}
	total := b.Sys.FastStats().Accesses() + b.Sys.SlowStats().Accesses()
	if total != 4 {
		t.Errorf("line swap issued %d accesses, want 4", total)
	}
}

func TestBookkeepingReadTargetsFast(t *testing.T) {
	b := testBackend(t)
	done := b.BookkeepingRead(2, 12345, 0)
	if done <= 0 {
		t.Fatal("no read issued")
	}
	if b.Sys.FastStats().Accesses() != 1 {
		t.Error("bookkeeping read did not go to fast memory")
	}
	// Slow-only system: must fall back to slow memory without panicking.
	slowOnly := NewBackend(memsys.MustNew(
		addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if slowOnly.BookkeepingRead(0, 7, 0) <= 0 {
		t.Error("slow-only bookkeeping read failed")
	}
}

func TestCacheHitsAfterInsert(t *testing.T) {
	c := NewCache(1024, 4)
	if c.Access(42) {
		t.Fatal("cold cache hit")
	}
	if !c.Access(42) {
		t.Fatal("no hit after insert")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Single-set cache: capacity 4 blocks, 4 ways.
	c := NewCache(4*BlockBytes, 4)
	keys := []uint64{1, 2, 3, 4}
	for _, k := range keys {
		c.Access(k)
	}
	c.Access(1)  // 1 becomes MRU; LRU is 2
	c.Access(99) // evicts 2
	if !c.Access(1) || !c.Access(3) || !c.Access(4) || !c.Access(99) {
		t.Fatal("resident keys evicted")
	}
	if c.Access(2) {
		t.Fatal("LRU key 2 still resident")
	}
}

func TestCacheZeroCapacityAlwaysMisses(t *testing.T) {
	c := NewCache(0, 4)
	for i := 0; i < 10; i++ {
		if c.Access(7) {
			t.Fatal("zero-capacity cache hit")
		}
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Any working set that fits within one set's ways must reach 100%
	// hit rate after the first pass.
	prop := func(seed uint64) bool {
		c := NewCache(64*BlockBytes, 64) // one set, 64 ways
		var keys []uint64
		for i := uint64(0); i < 32; i++ {
			keys = append(keys, seed+i*17)
		}
		for _, k := range keys {
			c.Access(k)
		}
		for _, k := range keys {
			if !c.Access(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBiggerCacheNeverWorse(t *testing.T) {
	// Hit counts under a fixed scan must not decrease with capacity.
	run := func(capacity int) int {
		c := NewCache(capacity, 8)
		hits := 0
		for pass := 0; pass < 4; pass++ {
			for k := uint64(0); k < 512; k++ {
				if c.Access(k) {
					hits++
				}
			}
		}
		return hits
	}
	small, large := run(8*1024), run(64*1024)
	if large < small {
		t.Errorf("64KB cache hits %d < 8KB cache hits %d", large, small)
	}
}

func TestMigStatsPerPod(t *testing.T) {
	m := MigStats{BytesMoved: 4096}
	if m.BytesMovedPerPod(4) != 1024 {
		t.Error("per-pod division wrong")
	}
	if m.BytesMovedPerPod(0) != 4096 {
		t.Error("zero pods should return total")
	}
}
