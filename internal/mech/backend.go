package mech

import (
	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/memsys"
)

// Backend issues physical line requests into the memory system on behalf of
// a mechanism. It owns the address layout and exposes the two access paths
// mechanisms need: demand/migration lines at explicit frames, and
// bookkeeping reads against a backing-store partition in fast memory.
//
// Geom is the layout's precomputed form; the backend and the mechanisms
// use it on the per-request path instead of recomputing derived geometry
// through Layout's methods (see addr.Geom).
type Backend struct {
	Sys    *memsys.System
	Layout addr.Layout
	Geom   addr.Geom

	// Per-pod first channel of each level, precomputed so Line resolves a
	// frame to its channel with one table lookup plus a remainder instead
	// of re-deriving pod*channelsPerPod on every request.
	fastBase []int32
	slowBase []int32
	// Channels-per-pod divisors and the fast-frame boundary, hoisted out
	// of Geom for the same reason.
	dFastCPP   addr.Divisor
	dSlowCPP   addr.Divisor
	fastPerPod uint32
	// Per-level pages-per-row divisors: how many consecutive page slots
	// share a DRAM row on each level (spec-dependent via the layout's
	// FastRowBytes/SlowRowBytes).
	dFastRowPg addr.Divisor
	dSlowRowPg addr.Divisor
	// Plain channels-per-pod counts, for pod-scoped column flushes.
	fastCPP int
	slowCPP int

	// plan is the backend's shared column plan for serial column routing
	// (Plan); pod-parallel workers build their own with NewColumnPlan.
	plan *ColumnPlan
}

// NewBackend wraps a memory system.
func NewBackend(sys *memsys.System) *Backend {
	l := sys.Layout()
	b := &Backend{Sys: sys, Layout: l, Geom: l.Geom()}
	b.fastPerPod = b.Geom.FastPerPod()
	fastCPP, slowCPP := 0, 0
	if l.NumPods > 0 {
		fastCPP = l.FastChannels / l.NumPods
		slowCPP = l.SlowChannels / l.NumPods
	}
	b.dFastCPP = addr.NewDivisor(uint64(fastCPP))
	b.dSlowCPP = addr.NewDivisor(uint64(slowCPP))
	b.dFastRowPg = addr.NewDivisor(l.FastPagesPerRow())
	b.dSlowRowPg = addr.NewDivisor(l.SlowPagesPerRow())
	b.fastCPP, b.slowCPP = fastCPP, slowCPP
	b.fastBase = make([]int32, l.NumPods)
	b.slowBase = make([]int32, l.NumPods)
	for pod := 0; pod < l.NumPods; pod++ {
		b.fastBase[pod] = int32(pod * fastCPP)
		b.slowBase[pod] = int32(l.FastChannels + pod*slowCPP)
	}
	return b
}

// Line services line `li` (0..31) of frame f in pod `pod` and returns the
// completion time. It resolves the frame's channel and row directly (the
// channel model keys timing on rows; lines within a page share one row),
// bit-identical to Sys.Access(Geom.FrameLocation(pod, f, li), ...).
func (b *Backend) Line(pod int, f addr.Frame, li int, write bool, at clock.Time) clock.Time {
	if uint32(f) < b.fastPerPod {
		fv := uint64(uint32(f))
		ch := int(b.fastBase[pod]) + int(b.dFastCPP.Mod(fv))
		return b.Sys.AccessChannel(ch, b.dFastRowPg.Div(b.dFastCPP.Div(fv)), write, at)
	}
	sf := uint64(uint32(f) - b.fastPerPod)
	ch := int(b.slowBase[pod]) + int(b.dSlowCPP.Mod(sf))
	return b.Sys.AccessChannel(ch, b.dSlowRowPg.Div(b.dSlowCPP.Div(sf)), write, at)
}

// LineLoc resolves frame f of pod `pod` to its channel and row without
// issuing the access — the routing half of Line, for mechanisms that
// gather requests into per-channel columns before servicing them.
func (b *Backend) LineLoc(pod int, f addr.Frame) (ch int, row uint64) {
	if uint32(f) < b.fastPerPod {
		fv := uint64(uint32(f))
		return int(b.fastBase[pod]) + int(b.dFastCPP.Mod(fv)), b.dFastRowPg.Div(b.dFastCPP.Div(fv))
	}
	sf := uint64(uint32(f) - b.fastPerPod)
	return int(b.slowBase[pod]) + int(b.dSlowCPP.Mod(sf)), b.dSlowRowPg.Div(b.dSlowCPP.Div(sf))
}

// Plan returns the backend's shared column plan, creating it on first
// use. Serial-path mechanisms route through this one; it must never be
// used from more than one goroutine.
func (b *Backend) Plan() *ColumnPlan {
	if b.plan == nil {
		b.plan = NewColumnPlan(b.Sys)
	}
	return b.plan
}

// FlushPodChannels flushes the plan's pending columns on pod's own
// channels — its fast range and its slow range — leaving other pods'
// columns accumulating. This covers every channel a pod-local event
// (migration drain, bookkeeping read) can touch: demand, copy and
// bookkeeping traffic for a pod all route inside its channel ranges.
func (b *Backend) FlushPodChannels(p *ColumnPlan, pod int) {
	lo := int(b.fastBase[pod])
	p.FlushRange(lo, lo+b.fastCPP)
	lo = int(b.slowBase[pod])
	p.FlushRange(lo, lo+b.slowCPP)
}

// LineAt services one line access at an already-resolved channel/row —
// the fast path for the predecode plane's home location (trace.Decoded
// carries FrameLocation's channel and row, which Line would re-derive).
// The coordinates must come from this backend's own layout.
func (b *Backend) LineAt(ch uint16, row uint32, write bool, at clock.Time) clock.Time {
	return b.Sys.AccessChannel(int(ch), uint64(row), write, at)
}

// HomeLine services a line at its home (pre-migration) location.
func (b *Backend) HomeLine(ln addr.Line, write bool, at clock.Time) clock.Time {
	pod, f := b.Geom.HomeFrame(addr.PageOfLine(ln))
	return b.Line(pod, f, int(uint64(ln)%addr.LinesPerPage), write, at)
}

// SwapPages performs the full datapath of one page swap between frames a
// and b of one pod, as the paper models it: 32 reads from each page into
// migration buffers, then 32 write-backs to each page at its new location.
// Requests are issued back-to-back starting at `at` and contend with demand
// traffic on the pod's channels; the returned time is when the last
// write-back completes.
func (b *Backend) SwapPages(pod int, fa, fb addr.Frame, at clock.Time) clock.Time {
	return b.SwapPagesChunk(pod, fa, fb, 0, addr.LinesPerPage, at)
}

// SwapPagesChunk performs the lines [lo, hi) of a page swap: reads of both
// frames' lines, then the cross write-backs. Migration drivers issue swaps
// in chunks paced across their epoch so the copy traffic interleaves with
// demand at the memory controllers instead of monopolizing a channel in
// one burst.
func (b *Backend) SwapPagesChunk(pod int, fa, fb addr.Frame, lo, hi int, at clock.Time) clock.Time {
	chA, rowA := b.LineLoc(pod, fa)
	chB, rowB := b.LineLoc(pod, fb)
	return b.swapChunk(chA, rowA, chB, rowB, hi-lo, at)
}

// swapChunk issues the copy traffic of an n-line swap chunk between two
// resolved page slots through the channel batch kernel: n reads of each
// slot issued at `at`, then n write-backs of each issued when the last
// read completes. All lines of a page share its slot's row, so each
// phase is one dense column per channel — the per-request equivalent
// interleaved A/B line accesses land on the two (independent) channels
// in exactly this per-channel order, and when both slots share a channel
// the interleaved order is preserved explicitly, so the kernel's answer
// is bit-identical either way.
func (b *Backend) swapChunk(chA int, rowA uint64, chB int, rowB uint64, n int, at clock.Time) clock.Time {
	// Short chunks (the paced common case) go through the per-request
	// channel path for the same reason ColumnPlan.Flush does below
	// smallColumn: the kernel's state hoisting costs more than it saves
	// on a handful of requests. Identical results either way.
	colLen := n
	if chA == chB {
		colLen = 2 * n
	}
	if colLen < smallColumn {
		end := at
		for i := 0; i < n; i++ {
			if t := b.Sys.AccessChannel(chA, rowA, false, at); t > end {
				end = t
			}
			if t := b.Sys.AccessChannel(chB, rowB, false, at); t > end {
				end = t
			}
		}
		readsDone := end
		for i := 0; i < n; i++ {
			if t := b.Sys.AccessChannel(chA, rowA, true, readsDone); t > end {
				end = t
			}
			if t := b.Sys.AccessChannel(chB, rowB, true, readsDone); t > end {
				end = t
			}
		}
		return end
	}
	var colA, colB [2 * addr.LinesPerPage]dram.BatchReq
	done := [2]clock.Time{at, at}
	phase := func(write bool, t clock.Time) clock.Time {
		reqA := dram.BatchReq{Row: rowA, At: t, Idx: 0, Write: write}
		reqB := dram.BatchReq{Row: rowB, At: t, Idx: 1, Write: write}
		if chA == chB {
			for i := 0; i < n; i++ {
				colA[2*i] = reqA
				colA[2*i+1] = reqB
			}
			b.Sys.AccessChannelBatch(chA, colA[:2*n], done[:])
		} else {
			for i := 0; i < n; i++ {
				colA[i] = reqA
				colB[i] = reqB
			}
			b.Sys.AccessChannelBatch(chA, colA[:n], done[:])
			b.Sys.AccessChannelBatch(chB, colB[:n], done[:])
		}
		if done[1] > done[0] {
			return done[1]
		}
		return done[0]
	}
	readsDone := phase(false, at)
	done[0], done[1] = readsDone, readsDone
	return phase(true, readsDone)
}

// SwapGlobal swaps the contents of two arbitrary page slots of the flat
// address space (identified by their home pages), for mechanisms without
// pod clustering (HMA, THM). The datapath is the same 32+32 reads and
// writes per page as SwapPages, but the traffic crosses the global
// interconnect between the two slots' channels.
func (b *Backend) SwapGlobal(slotA, slotB addr.Page, at clock.Time) clock.Time {
	return b.SwapGlobalChunk(slotA, slotB, 0, addr.LinesPerPage, at)
}

// SwapGlobalChunk performs the lines [lo, hi) of a global page swap; see
// SwapPagesChunk for why swaps are chunked.
func (b *Backend) SwapGlobalChunk(slotA, slotB addr.Page, lo, hi int, at clock.Time) clock.Time {
	return b.SwapGlobalChunkPlanned(nil, slotA, slotB, lo, hi, at)
}

// SwapGlobalChunkPlanned is SwapGlobalChunk for a mechanism mid-span on
// a column plan: before issuing the copy traffic it flushes only the two
// slots' channels, so the pending demand there is serviced first (the
// per-request interleaving) while every other channel's column keeps
// accumulating. plan may be nil (per-request path).
func (b *Backend) SwapGlobalChunkPlanned(plan *ColumnPlan, slotA, slotB addr.Page, lo, hi int, at clock.Time) clock.Time {
	podA, fA := b.Geom.HomeFrame(slotA)
	podB, fB := b.Geom.HomeFrame(slotB)
	chA, rowA := b.LineLoc(podA, fA)
	chB, rowB := b.LineLoc(podB, fB)
	if plan != nil {
		plan.FlushChannel(chA)
		if chB != chA {
			plan.FlushChannel(chB)
		}
	}
	return b.swapChunk(chA, rowA, chB, rowB, hi-lo, at)
}

// SwapLines performs CAMEO's line-granularity swap between two locations:
// two reads then two writes. Returns the completion of the last write.
func (b *Backend) SwapLines(la, lb addr.Location, at clock.Time) clock.Time {
	r1 := b.Sys.Access(la, false, at)
	r2 := b.Sys.Access(lb, false, at)
	readsDone := clock.Max(r1, r2)
	w1 := b.Sys.Access(la, true, readsDone)
	w2 := b.Sys.Access(lb, true, readsDone)
	return clock.Max(w1, w2)
}

// BookkeepingRead injects the 64 B read that a bookkeeping-cache miss
// costs. The backing store lives in a partition of fast memory (as in the
// paper); the row is derived from the entry key so distinct entries spread
// over banks. For single-level slow-only systems it falls back to slow
// memory.
func (b *Backend) BookkeepingRead(pod int, key uint64, at clock.Time) clock.Time {
	var loc addr.Location
	if b.Layout.FastChannels > 0 {
		cpp := b.Layout.FastChannelsPerPod()
		loc = addr.Location{
			Channel: pod%b.Layout.NumPods*cpp + int(key%uint64(cpp)),
			Fast:    true,
			// Keep bookkeeping rows clear of the hottest data rows by
			// hashing into a high row band.
			Row: 1<<20 + key%4096,
		}
	} else {
		loc = addr.Location{
			Channel: b.Layout.FastChannels + int(key%uint64(b.Layout.SlowChannels)),
			Row:     1<<20 + key%4096,
		}
	}
	return b.Sys.Access(loc, false, at)
}
