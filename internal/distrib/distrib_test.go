package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/resultcache"
)

// sweepConfig is the tiny sweep the distrib tests shard: one workload over
// the Fig6 grid (30 cells), short traces.
func sweepConfig() exp.Config {
	c := exp.QuickConfig().WithWorkloads("cactus")
	c.Requests = 2_000
	return c
}

func sweepJobs() []exp.Job {
	return []exp.Job{{Experiment: "fig6", Params: sweepConfig().Params()}}
}

// smallJobs is an even smaller plan (4 cells) for protocol-level tests
// that complete cells by hand.
func smallJobs() []exp.Job {
	return []exp.Job{{Experiment: "ablation-pods", Params: sweepConfig().Params()}}
}

// serialOnce renders the reference sweep exactly once per test binary.
var serialOnce = sync.OnceValues(func() (string, error) {
	cfg := sweepConfig()
	cfg.Results = resultcache.New()
	t, err := cfg.Experiment("fig6")
	if err != nil {
		return "", err
	}
	return t.String(), nil
})

func serialTable(t *testing.T) string {
	t.Helper()
	s, err := serialOnce()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderMerged renders the sweep from a coordinator's merged results and
// fails the test if any cell had to be recomputed (the merge must cover
// the full plan).
func renderMerged(t *testing.T, co *Coordinator) string {
	t.Helper()
	cfg := sweepConfig()
	cfg.Results = resultcache.New()
	if n := co.MergeInto(cfg.Results); n != co.Plan().Len() {
		t.Fatalf("merged %d cells, plan has %d", n, co.Plan().Len())
	}
	tab, err := cfg.Experiment("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if m := cfg.Results.Stats().Misses; m != 0 {
		t.Fatalf("render recomputed %d cells; merge was incomplete", m)
	}
	return tab.String()
}

// runCells computes a granted batch directly (bypassing Worker) so
// protocol tests can hand-craft Complete calls.
func runCells(t *testing.T, co *Coordinator, grant LeaseResponse, cache *resultcache.Cache) []CellResult {
	t.Helper()
	runs := co.Plan().RunCells(grant.Indices, exp.RunCellsOptions{Results: cache})
	cells := make([]CellResult, len(runs))
	for i, r := range runs {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", grant.Indices[i], r.Err)
		}
		cells[i] = CellResult{Index: grant.Indices[i], Frame: r.Frame}
	}
	return cells
}

// TestDistribParallelWorkersBitIdentical is the core property: several
// concurrent workers, each with its own cache, produce tables
// byte-identical to a serial run.
func TestDistribParallelWorkersBitIdentical(t *testing.T) {
	co, err := New(Config{Jobs: sweepJobs(), LeaseTTL: 5 * time.Second, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{
				Name:      fmt.Sprintf("w%d", i),
				Transport: Loopback{Co: co},
				Batch:     3,
				Results:   resultcache.New(),
			}
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if err := co.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := renderMerged(t, co), serialTable(t); got != want {
		t.Fatalf("distributed table differs from serial:\n--- distributed\n%s\n--- serial\n%s", got, want)
	}
	s := co.Status()
	if s.Done != s.Total || s.Failed != 0 {
		t.Fatalf("status after completion: %+v", s)
	}
	if len(s.Workers) != 3 {
		t.Fatalf("status tracked %d workers, want 3", len(s.Workers))
	}
}

// TestDistribWorkerChurnParallel is the churn property test: workers are
// killed and restarted on random schedules (short deadlines, tiny
// batches, aggressive lease expiry) until the sweep completes; the merged
// tables must still match a serial run byte for byte.
func TestDistribWorkerChurnParallel(t *testing.T) {
	serial := serialTable(t)
	for round := int64(0); round < 3; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			co, err := New(Config{Jobs: sweepJobs(), LeaseTTL: 40 * time.Millisecond, MaxBatch: 4})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var churners sync.WaitGroup
			for c := int64(0); c < 3; c++ {
				c := c
				churners.Add(1)
				go func() {
					defer churners.Done()
					rng := rand.New(rand.NewSource(round*100 + c))
					for gen := 0; ; gen++ {
						select {
						case <-stop:
							return
						default:
						}
						// Each generation is a worker that lives 5–65ms —
						// usually not long enough to finish a batch — then
						// dies mid-protocol and is replaced.
						ttl := time.Duration(5+rng.Intn(60)) * time.Millisecond
						ctx, cancel := context.WithTimeout(context.Background(), ttl)
						w := &Worker{
							Name:       fmt.Sprintf("churn%d.%d", c, gen),
							Transport:  Loopback{Co: co},
							Batch:      1 + rng.Intn(4),
							RetryDelay: 2 * time.Millisecond,
							Results:    resultcache.New(),
						}
						w.Run(ctx)
						cancel()
					}
				}()
			}
			select {
			case <-co.Done():
			case <-time.After(120 * time.Second):
				t.Fatalf("churned sweep never finished: %+v", co.Status())
			}
			close(stop)
			churners.Wait()
			if got := renderMerged(t, co); got != serial {
				t.Fatalf("round %d: churned table differs from serial:\n%s", round, got)
			}
		})
	}
}

// TestLeaseExpiryRequeues drives the lease lifecycle on an injected
// clock: an unrenewed lease's cells re-queue after the TTL, a renewed
// lease's do not, and results from an expired lease are still accepted.
func TestLeaseExpiryRequeues(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	co, err := New(Config{
		Jobs:     smallJobs(),
		LeaseTTL: time.Second,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := co.Plan().Len()
	g1 := co.Lease(LeaseRequest{Worker: "a", Max: total})
	if len(g1.Indices) != total {
		t.Fatalf("granted %d of %d cells", len(g1.Indices), total)
	}
	if g2 := co.Lease(LeaseRequest{Worker: "b", Max: total}); g2.LeaseID != "" || g2.Done {
		t.Fatalf("empty queue granted a lease: %+v", g2)
	}

	// Renewal holds the lease across one TTL...
	advance(700 * time.Millisecond)
	if r := co.Renew(RenewRequest{LeaseID: g1.LeaseID}); !r.OK {
		t.Fatal("live lease refused renewal")
	}
	advance(700 * time.Millisecond)
	if g := co.Lease(LeaseRequest{Worker: "b", Max: total}); g.LeaseID != "" {
		t.Fatal("renewed lease's cells re-granted")
	}

	// ...but an unrenewed TTL expires the lease and re-queues its cells.
	advance(1100 * time.Millisecond)
	g2 := co.Lease(LeaseRequest{Worker: "b", Max: total})
	if len(g2.Indices) != total {
		t.Fatalf("expired cells not re-granted: %+v", g2)
	}
	if r := co.Renew(RenewRequest{LeaseID: g1.LeaseID}); r.OK {
		t.Fatal("expired lease renewed")
	}
	if co.Status().Expired != 1 {
		t.Fatalf("expired count %d, want 1", co.Status().Expired)
	}

	// The dead worker's results arrive anyway: accepted, because the
	// cells are verified by content, not by lease liveness.
	cache := resultcache.New()
	resp := co.Complete(CompleteRequest{LeaseID: g1.LeaseID, Worker: "a", Cells: runCells(t, co, g1, cache)})
	if resp.Accepted != total || resp.Duplicates != 0 || !resp.Done {
		t.Fatalf("expired-lease complete: %+v", resp)
	}
	// The second worker finishes the same cells: all duplicates, still done.
	resp = co.Complete(CompleteRequest{LeaseID: g2.LeaseID, Worker: "b", Cells: runCells(t, co, g2, cache)})
	if resp.Accepted != 0 || resp.Duplicates != total || !resp.Done {
		t.Fatalf("duplicate complete: %+v", resp)
	}
}

// TestCompleteVerifiesFrames pins the acceptance rules: corrupt frames
// and frames keyed for a different cell are rejected and their cells
// re-queued; a worker-reported error permanently fails its cell.
func TestCompleteVerifiesFrames(t *testing.T) {
	co, err := New(Config{Jobs: smallJobs(), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	total := co.Plan().Len()
	g := co.Lease(LeaseRequest{Worker: "a", Max: total})
	cache := resultcache.New()
	good := runCells(t, co, g, cache)

	corrupt := append([]byte(nil), good[0].Frame...)
	corrupt[len(corrupt)/2] ^= 0xff
	resp := co.Complete(CompleteRequest{LeaseID: g.LeaseID, Worker: "a", Cells: []CellResult{
		{Index: good[0].Index, Frame: corrupt},           // flipped bit: checksum fails
		{Index: good[1].Index, Frame: good[0].Frame},     // wrong cell's key
		{Index: good[2].Index, Error: "engine exploded"}, // worker-side failure
		{Index: good[3].Index, Frame: good[3].Frame},     // fine
	}})
	if resp.Accepted != 1 || resp.Rejected != 2 {
		t.Fatalf("verification outcome: %+v", resp)
	}
	s := co.Status()
	if s.Done != 1 || s.Failed != 1 || s.Pending != 2 {
		t.Fatalf("state after bad batch: %+v", s)
	}
	if msgs := co.FailedCells(); len(msgs) != 1 || msgs[good[2].Index] != "engine exploded" {
		t.Fatalf("failure record: %+v", msgs)
	}

	// The re-queued cells lease out again and complete cleanly; a fresh
	// success for the failed cell clears its failure.
	g2 := co.Lease(LeaseRequest{Worker: "b", Max: total})
	if len(g2.Indices) != 2 {
		t.Fatalf("re-granted %d cells, want 2", len(g2.Indices))
	}
	resp = co.Complete(CompleteRequest{LeaseID: g2.LeaseID, Worker: "b", Cells: runCells(t, co, g2, cache)})
	if resp.Accepted != 2 {
		t.Fatalf("retry complete: %+v", resp)
	}
	resp = co.Complete(CompleteRequest{Worker: "c", Cells: []CellResult{{Index: good[2].Index, Frame: good[2].Frame}}})
	if resp.Accepted != 1 || !resp.Done {
		t.Fatalf("failed-cell retry: %+v", resp)
	}
	if s := co.Status(); s.Failed != 0 || s.Done != total {
		t.Fatalf("final state: %+v", s)
	}
}

// TestCheckpointResume kills a coordinator after a partial sweep and
// verifies a new one over the same jobs resumes from the checkpoint
// instead of recomputing, ending in a byte-identical table.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.mpc1")
	co1, err := New(Config{Jobs: sweepJobs(), LeaseTTL: time.Minute, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	cache := resultcache.New()
	g := co1.Lease(LeaseRequest{Worker: "a", Max: 10})
	co1.Complete(CompleteRequest{LeaseID: g.LeaseID, Worker: "a", Cells: runCells(t, co1, g, cache)})
	// Leave a live lease in the table so restore exercises it too.
	co1.Lease(LeaseRequest{Worker: "a", Max: 5})
	if err := co1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	co2, err := New(Config{Jobs: sweepJobs(), LeaseTTL: time.Minute, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	s := co2.Status()
	if s.Done != 10 {
		t.Fatalf("restored %d done cells, want 10", s.Done)
	}
	if s.Leased != 5 || s.Leases != 1 {
		t.Fatalf("restored lease table: %+v", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{Name: "finisher", Transport: Loopback{Co: co2}, Results: resultcache.New()}
	// The restored lease blocks its 5 cells until it expires; expire it
	// promptly so the finisher can take them.
	go func() {
		time.Sleep(50 * time.Millisecond)
		co2.Renew(RenewRequest{LeaseID: "expire-nothing"}) // no-op, keeps API warm
		co2.mu.Lock()
		for _, l := range co2.leases {
			l.deadline = time.Now().Add(-time.Second)
		}
		co2.mu.Unlock()
	}()
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := co2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if co2.Status().Done != co2.Plan().Len() {
		t.Fatalf("resumed sweep incomplete: %+v", co2.Status())
	}
	if got := renderMerged(t, co2); got != serialTable(t) {
		t.Fatalf("resumed table differs from serial:\n%s", got)
	}
}

// TestCheckpointNeverFails pins the restore stance: truncated files,
// garbage, and checkpoints from a different plan are all silently a
// fresh start — New never errors because of a checkpoint.
func TestCheckpointNeverFails(t *testing.T) {
	dir := t.TempDir()
	// A valid checkpoint to mutate.
	path := filepath.Join(dir, "good.mpc1")
	co, err := New(Config{Jobs: smallJobs(), LeaseTTL: time.Minute, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	g := co.Lease(LeaseRequest{Worker: "a", Max: 99})
	co.Complete(CompleteRequest{LeaseID: g.LeaseID, Worker: "a", Cells: runCells(t, co, g, resultcache.New())})
	if err := co.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated": valid[:len(valid)/2],
		"garbage":   []byte("not a checkpoint at all"),
		"flipped":   func() []byte { b := append([]byte(nil), valid...); b[len(b)/3] ^= 1; return b }(),
		"empty":     {},
	}
	for name, b := range cases {
		name, b := name, b
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name+".mpc1")
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			co, err := New(Config{Jobs: smallJobs(), CheckpointPath: p})
			if err != nil {
				t.Fatalf("checkpoint %s failed construction: %v", name, err)
			}
			if got := co.Status().Done; got != 0 {
				t.Fatalf("checkpoint %s restored %d cells, want 0", name, got)
			}
		})
	}

	// A checkpoint for different jobs (a different plan fingerprint) is
	// ignored even though the file itself is pristine.
	t.Run("wrong-plan", func(t *testing.T) {
		co, err := New(Config{Jobs: sweepJobs(), CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		if got := co.Status().Done; got != 0 {
			t.Fatalf("foreign checkpoint restored %d cells, want 0", got)
		}
	})

	// The pristine one restores fully.
	t.Run("valid", func(t *testing.T) {
		co, err := New(Config{Jobs: smallJobs(), CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := co.Status().Done, co.Plan().Len(); got != want {
			t.Fatalf("restored %d cells, want %d", got, want)
		}
	})
}

// TestAdoptCached pins warm-start: a coordinator whose Results cache
// already holds every cell is born done, and a worker sees Done on its
// first lease.
func TestAdoptCached(t *testing.T) {
	cache := resultcache.New()
	warm, err := New(Config{Jobs: smallJobs()})
	if err != nil {
		t.Fatal(err)
	}
	g := warm.Lease(LeaseRequest{Worker: "a", Max: 99})
	warm.Complete(CompleteRequest{LeaseID: g.LeaseID, Worker: "a", Cells: runCells(t, warm, g, cache)})
	warm.MergeInto(cache)

	co, err := New(Config{Jobs: smallJobs(), Results: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := co.Status().Done, co.Plan().Len(); got != want {
		t.Fatalf("adopted %d cells, want %d", got, want)
	}
	if g := co.Lease(LeaseRequest{Worker: "b", Max: 1}); !g.Done {
		t.Fatalf("warm coordinator granted work: %+v", g)
	}
}

// TestHTTPTransport runs a worker against a coordinator over real HTTP
// and checks /statusz serves the coordinator's state as JSON.
func TestHTTPTransport(t *testing.T) {
	co, err := New(Config{Jobs: sweepJobs(), LeaseTTL: 5 * time.Second, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(co))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{Name: "http-worker", Transport: Dial(srv.URL), Batch: 8, Results: resultcache.New()}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := co.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := renderMerged(t, co); got != serialTable(t) {
		t.Fatalf("HTTP-transported table differs from serial:\n%s", got)
	}

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Status
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Total != co.Plan().Len() || s.Done != s.Total {
		t.Fatalf("statusz: %+v", s)
	}
	if _, ok := s.Workers["http-worker"]; !ok {
		t.Fatalf("statusz lost the worker: %+v", s.Workers)
	}
}

// tamperedSpec wraps a transport and corrupts the plan fingerprint.
type tamperedSpec struct{ Transport }

func (tr tamperedSpec) Spec(ctx context.Context) (SpecResponse, error) {
	resp, err := tr.Transport.Spec(ctx)
	resp.PlanFP++
	return resp, err
}

// TestWorkerRefusesPlanMismatch pins the version-skew guard: a worker
// whose locally built plan disagrees with the coordinator's fingerprint
// exits with ErrPlanMismatch instead of computing under wrong keys.
func TestWorkerRefusesPlanMismatch(t *testing.T) {
	co, err := New(Config{Jobs: smallJobs()})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Name: "skewed", Transport: tamperedSpec{Loopback{Co: co}}}
	err = w.Run(context.Background())
	if !errors.Is(err, ErrPlanMismatch) {
		t.Fatalf("skewed worker ran: %v", err)
	}
}

// BenchmarkDistribSweep measures a full 30-cell sweep end to end —
// leases, compute, verification, merge — at several worker counts on the
// loopback transport. Workers get fresh caches each iteration, so the
// benchmark measures real compute plus protocol overhead. The timer
// covers sweep completion (co.Wait) plus the merge; workers still
// sleeping out a retry when the last cell lands are released by context
// cancel outside the timed region, so the numbers reflect time-to-result,
// not the poll interval.
func BenchmarkDistribSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				co, err := New(Config{Jobs: sweepJobs(), LeaseTTL: 10 * time.Second, MaxBatch: 4})
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				for wi := 0; wi < workers; wi++ {
					wi := wi
					wg.Add(1)
					go func() {
						defer wg.Done()
						w := &Worker{
							Name:        fmt.Sprintf("b%d", wi),
							Transport:   Loopback{Co: co},
							Batch:       4,
							Parallelism: 1,
							Results:     resultcache.New(),
						}
						if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
							b.Error(err)
						}
					}()
				}
				if err := co.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				merged := resultcache.New()
				if n := co.MergeInto(merged); n != co.Plan().Len() {
					b.Fatalf("merged %d of %d cells", n, co.Plan().Len())
				}
				b.StopTimer()
				cancel()
				wg.Wait()
				b.StartTimer()
			}
		})
	}
}
