// Package distrib shards a sweep across worker processes: a coordinator
// enumerates the simulation cells of a job set (exp.BuildPlan), hands
// them to workers in leased index batches, and merges the returned MPR1
// frames into a result cache from which the experiment tables render
// byte-identically to a serial run.
//
// The protocol is deliberately small — four request/response exchanges
// over JSON — and every exchange is idempotent, so workers and the
// coordinator can crash and restart at any point:
//
//	Spec     → the job list, plan fingerprint and cell count. A worker
//	           rebuilds the identical plan locally and refuses to serve
//	           a coordinator whose fingerprint (or sim.Version) differs.
//	Lease    → a batch of cell indices with a TTL. A lease that is not
//	           renewed or completed before its deadline expires and its
//	           cells re-queue for other workers.
//	Renew    → extends a lease's deadline mid-batch.
//	Complete → the batch's results, one checksummed MPR1 frame per cell.
//	           Frames are verified (checksum and key) before acceptance;
//	           duplicates from expired leases are counted and dropped.
//
// Determinism argument: cells are content-addressed (resultcache.CellKey)
// and each cell's payload is a pure function of its key, so however cells
// are scattered across workers, retried after crashes, or duplicated by
// expired leases, the merged cache holds exactly the payloads a serial
// run would compute. Rendering the tables from that warmed cache is then
// byte-identical to a serial run by the cache's cached≡fresh property.
package distrib

import (
	"context"

	"repro/internal/exp"
)

// SweepSpec is the serialized sweep definition the coordinator publishes:
// everything a worker needs to rebuild the cell plan bit-identically.
type SweepSpec struct {
	// SimVersion is the coordinator's engine-semantics version. A worker
	// built at a different version must not serve cells: its payloads
	// would carry keys the coordinator rejects.
	SimVersion int `json:"sim_version"`
	// Jobs are the experiments to sweep, in order.
	Jobs []exp.Job `json:"jobs"`
}

// SpecResponse answers a worker's spec fetch.
type SpecResponse struct {
	Spec SweepSpec `json:"spec"`
	// PlanFP is the coordinator's plan fingerprint. Workers compare it
	// against their locally built plan's fingerprint; a mismatch means a
	// version skew (different binaries, different workload tables) and
	// the worker must exit rather than compute cells under wrong keys.
	PlanFP uint64 `json:"plan_fp,string"`
	// Total is the number of cells in the plan.
	Total int `json:"total"`
}

// LeaseRequest asks for a batch of cells.
type LeaseRequest struct {
	// Worker names the requester (for status display and logs only;
	// the protocol does not trust or dedupe on it).
	Worker string `json:"worker"`
	// Max bounds the batch size the worker is willing to take.
	Max int `json:"max"`
}

// LeaseResponse grants a batch, tells the worker to wait, or ends the
// sweep.
type LeaseResponse struct {
	// Done reports that every cell is finished (or permanently failed);
	// the worker should exit.
	Done bool `json:"done,omitempty"`
	// LeaseID identifies the grant for Renew and Complete. Empty with
	// Done=false means no cells are currently available (all leased);
	// retry after RetryMillis.
	LeaseID string `json:"lease_id,omitempty"`
	// Indices are the granted cell indices into the shared plan.
	Indices []int `json:"indices,omitempty"`
	// TTLMillis is how long the lease lives without renewal.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// RetryMillis suggests when to ask again if no lease was granted.
	RetryMillis int64 `json:"retry_ms,omitempty"`
}

// RenewRequest extends a lease.
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

// RenewResponse acknowledges a renewal. OK=false means the lease is
// unknown or already expired; the worker should finish the batch anyway
// and Complete — verified results are accepted from expired leases.
type RenewResponse struct {
	OK bool `json:"ok"`
}

// CellResult is one computed cell: a complete MPR1 frame (key + payload +
// checksum), or the error string that prevented it.
type CellResult struct {
	Index int    `json:"index"`
	Frame []byte `json:"frame,omitempty"`
	Error string `json:"error,omitempty"`
}

// CompleteRequest returns a finished batch.
type CompleteRequest struct {
	LeaseID string       `json:"lease_id"`
	Worker  string       `json:"worker"`
	Cells   []CellResult `json:"cells"`
}

// CompleteResponse reports what the coordinator did with the batch.
type CompleteResponse struct {
	// Accepted counts frames merged as the first result for their cell.
	Accepted int `json:"accepted"`
	// Duplicates counts verified frames for cells another worker already
	// finished (benign: expired-lease races).
	Duplicates int `json:"duplicates"`
	// Rejected counts frames that failed verification (corrupt frame or
	// a key that does not match the cell's plan index); their cells
	// re-queue.
	Rejected int `json:"rejected"`
	// Done reports that the sweep is now finished.
	Done bool `json:"done"`
}

// Transport is the worker's view of a coordinator. Loopback implements it
// with direct calls for tests and same-process workers; Dial implements
// it over HTTP.
type Transport interface {
	Spec(ctx context.Context) (SpecResponse, error)
	Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error)
	Renew(ctx context.Context, req RenewRequest) (RenewResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
}
