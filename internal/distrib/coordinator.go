package distrib

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/resultcache"
	"repro/internal/sim"
)

// Config tunes a Coordinator. Jobs is required; everything else has a
// serviceable default.
type Config struct {
	// Jobs are the experiments to sweep.
	Jobs []exp.Job
	// LeaseTTL is how long a granted lease lives without renewal before
	// its cells re-queue. Default 30s.
	LeaseTTL time.Duration
	// MaxBatch caps the cells granted per lease regardless of what the
	// worker asks for. Default 64.
	MaxBatch int
	// CheckpointPath, when non-empty, is the MPC1 file completed cells
	// are checkpointed to (and restored from, if it already exists and
	// matches this plan).
	CheckpointPath string
	// CheckpointEvery is the checkpoint interval inside Wait. Default
	// 10s. A final checkpoint is always written when Wait returns.
	CheckpointEvery time.Duration
	// Results, when non-nil, is consulted for already-computed cells at
	// construction (its Lookup never blocks) and surfaced in Status.
	Results *resultcache.Cache
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Now overrides the clock for tests. Default time.Now.
	Now func() time.Time
}

type cellState uint8

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellFailed
)

type lease struct {
	id       string
	worker   string
	indices  []int
	deadline time.Time
}

type workerStats struct {
	cells     int
	failures  int
	firstSeen time.Time
	lastSeen  time.Time
}

// Coordinator owns a sweep: the shared plan, the pending-cell queue, the
// lease table and the completed frames. All methods are safe for
// concurrent use (the HTTP handler calls them from request goroutines).
type Coordinator struct {
	cfg    Config
	plan   *exp.Plan
	planFP uint64
	spec   SweepSpec

	mu         sync.Mutex
	states     []cellState
	frames     [][]byte // verified MPR1 frame per done cell
	failErrs   map[int]string
	queue      []int
	leases     map[string]*lease
	seq        uint64
	doneCount  int
	failCount  int
	duplicates int
	rejected   int
	expired    int
	workers    map[string]*workerStats
	dirty      bool // done set changed since last checkpoint

	doneCh   chan struct{}
	doneOnce sync.Once
}

// New builds a coordinator for cfg.Jobs. If cfg.CheckpointPath names a
// readable checkpoint for the same plan, its completed cells are adopted;
// a missing, corrupt, truncated or mismatched checkpoint is silently a
// fresh start (checkpoints remove work, they never fail a sweep). If
// cfg.Results is set, cells it can already answer are adopted too.
func New(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	plan, err := exp.BuildPlan(cfg.Jobs)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	co := &Coordinator{
		cfg:      cfg,
		plan:     plan,
		planFP:   plan.Fingerprint(),
		spec:     SweepSpec{SimVersion: sim.Version, Jobs: cfg.Jobs},
		states:   make([]cellState, plan.Len()),
		frames:   make([][]byte, plan.Len()),
		failErrs: make(map[int]string),
		leases:   make(map[string]*lease),
		workers:  make(map[string]*workerStats),
		doneCh:   make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		if n := co.restoreCheckpoint(cfg.CheckpointPath); n > 0 {
			co.logf("distrib: restored %d/%d cells from %s", n, plan.Len(), cfg.CheckpointPath)
		}
	}
	if cfg.Results != nil {
		if n := co.AdoptCached(cfg.Results); n > 0 {
			co.logf("distrib: adopted %d/%d cells from result cache", n, plan.Len())
		}
	}
	co.mu.Lock()
	for i := range co.states {
		if co.states[i] == cellPending {
			co.queue = append(co.queue, i)
		}
	}
	co.checkDoneLocked()
	co.mu.Unlock()
	return co, nil
}

// Plan returns the shared cell plan.
func (co *Coordinator) Plan() *exp.Plan { return co.plan }

// AdoptCached marks every pending cell the cache can already answer as
// done, without leasing it. Returns how many cells were adopted. Safe to
// call at any time; cells already done or leased are left alone.
func (co *Coordinator) AdoptCached(results *resultcache.Cache) int {
	adopted := 0
	for i := 0; i < co.plan.Len(); i++ {
		co.mu.Lock()
		pending := co.states[i] == cellPending
		co.mu.Unlock()
		if !pending {
			continue
		}
		key := co.plan.Key(i)
		payload, ok := results.Lookup(key)
		if !ok {
			continue
		}
		frame := resultcache.EncodeFile(key, payload)
		co.mu.Lock()
		if co.states[i] == cellPending {
			co.markDoneLocked(i, frame)
			adopted++
		}
		co.mu.Unlock()
	}
	return adopted
}

// SpecResponse answers a worker's spec fetch.
func (co *Coordinator) SpecResponse() SpecResponse {
	return SpecResponse{Spec: co.spec, PlanFP: co.planFP, Total: co.plan.Len()}
}

// Lease grants up to min(req.Max, MaxBatch) pending cells. With nothing
// pending but leases outstanding it returns an empty grant with a retry
// hint; with everything finished it returns Done.
func (co *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	now := co.cfg.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)
	co.touchWorkerLocked(req.Worker, now)
	if co.doneCount+co.failCount == len(co.states) {
		return LeaseResponse{Done: true}
	}
	max := req.Max
	if max <= 0 || max > co.cfg.MaxBatch {
		max = co.cfg.MaxBatch
	}
	// Pop only still-pending cells: the queue can hold stale entries for
	// cells that were re-queued by an expiry and then completed anyway
	// when the expired lease's results arrived (they are verified by
	// content, not lease liveness). Granting one of those would run a
	// finished cell again and double-count its completion.
	var indices []int
	for len(indices) < max && len(co.queue) > 0 {
		i := co.queue[0]
		co.queue = co.queue[1:]
		if co.states[i] != cellPending {
			continue
		}
		co.states[i] = cellLeased
		indices = append(indices, i)
	}
	if len(indices) == 0 {
		return LeaseResponse{RetryMillis: retryHint(co.cfg.LeaseTTL)}
	}
	co.seq++
	l := &lease{
		id:       fmt.Sprintf("l%d", co.seq),
		worker:   req.Worker,
		indices:  indices,
		deadline: now.Add(co.cfg.LeaseTTL),
	}
	co.leases[l.id] = l
	return LeaseResponse{
		LeaseID:   l.id,
		Indices:   indices,
		TTLMillis: co.cfg.LeaseTTL.Milliseconds(),
	}
}

// Renew extends a lease's deadline by one TTL.
func (co *Coordinator) Renew(req RenewRequest) RenewResponse {
	now := co.cfg.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)
	l, ok := co.leases[req.LeaseID]
	if !ok {
		return RenewResponse{OK: false}
	}
	l.deadline = now.Add(co.cfg.LeaseTTL)
	return RenewResponse{OK: true}
}

// Complete merges a finished batch. Every frame is verified — checksum
// via DecodeFile, embedded key against the plan's key for that index —
// before acceptance, so a confused or skewed worker cannot poison the
// result set; unverifiable frames re-queue their cells. Verified frames
// are accepted even when the lease has expired or is unknown (the work is
// correct whoever's lease it rode in on); frames for cells already done
// count as duplicates and are dropped, which makes Complete idempotent —
// the retried and the raced call observe the same final state.
func (co *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	now := co.cfg.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(now)
	ws := co.touchWorkerLocked(req.Worker, now)
	var resp CompleteResponse
	for _, cell := range req.Cells {
		i := cell.Index
		if i < 0 || i >= len(co.states) {
			resp.Rejected++
			co.rejected++
			continue
		}
		if co.states[i] == cellDone {
			resp.Duplicates++
			co.duplicates++
			continue
		}
		if cell.Error != "" {
			if co.states[i] != cellFailed {
				co.states[i] = cellFailed
				co.failCount++
				co.failErrs[i] = cell.Error
				if ws != nil {
					ws.failures++
				}
				co.logf("distrib: cell %d failed on %s: %s", i, req.Worker, cell.Error)
			}
			continue
		}
		key, _, err := resultcache.DecodeFile(cell.Frame)
		if err != nil || key != co.plan.Key(i) {
			resp.Rejected++
			co.rejected++
			co.requeueLocked(i)
			continue
		}
		co.markDoneLocked(i, cell.Frame)
		resp.Accepted++
		if ws != nil {
			ws.cells++
		}
	}
	if l, ok := co.leases[req.LeaseID]; ok {
		// Whatever the lease didn't finish goes back in the queue.
		for _, i := range l.indices {
			co.requeueLocked(i)
		}
		delete(co.leases, req.LeaseID)
	}
	co.checkDoneLocked()
	resp.Done = co.doneCount+co.failCount == len(co.states)
	if resp.Accepted > 0 || resp.Duplicates > 0 || resp.Rejected > 0 {
		co.logf("distrib: %d/%d cells done (%d failed, %d dup) after batch from %s",
			co.doneCount, len(co.states), co.failCount, co.duplicates, req.Worker)
	}
	return resp
}

// markDoneLocked records a verified frame for cell i.
func (co *Coordinator) markDoneLocked(i int, frame []byte) {
	if co.states[i] == cellDone {
		return
	}
	if co.states[i] == cellFailed {
		co.failCount--
		delete(co.failErrs, i)
	}
	co.states[i] = cellDone
	co.frames[i] = frame
	co.doneCount++
	co.dirty = true
}

// requeueLocked returns a leased cell to the pending queue.
func (co *Coordinator) requeueLocked(i int) {
	if co.states[i] != cellLeased {
		return
	}
	co.states[i] = cellPending
	co.queue = append(co.queue, i)
}

// expireLocked re-queues the cells of every lease past its deadline.
func (co *Coordinator) expireLocked(now time.Time) {
	for id, l := range co.leases {
		if now.Before(l.deadline) {
			continue
		}
		for _, i := range l.indices {
			co.requeueLocked(i)
		}
		delete(co.leases, id)
		co.expired++
		co.logf("distrib: lease %s (%s) expired, %d cells re-queued", id, l.worker, len(l.indices))
	}
}

func (co *Coordinator) checkDoneLocked() {
	if co.doneCount+co.failCount == len(co.states) {
		co.doneOnce.Do(func() { close(co.doneCh) })
	}
}

func (co *Coordinator) touchWorkerLocked(name string, now time.Time) *workerStats {
	if name == "" {
		return nil
	}
	ws, ok := co.workers[name]
	if !ok {
		ws = &workerStats{firstSeen: now}
		co.workers[name] = ws
	}
	ws.lastSeen = now
	return ws
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// Done returns a channel closed once every cell is done or failed.
func (co *Coordinator) Done() <-chan struct{} { return co.doneCh }

// Wait blocks until the sweep finishes or ctx is canceled, expiring stale
// leases and checkpointing on the way. It always writes a final
// checkpoint (when one is configured) before returning, so a SIGTERM'd
// coordinator resumes from its last completed set. The error is ctx's
// when canceled, or the checkpoint write error if only that failed.
func (co *Coordinator) Wait(ctx context.Context) error {
	tickEvery := co.cfg.LeaseTTL / 4
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	expire := time.NewTicker(tickEvery)
	defer expire.Stop()
	checkpoint := time.NewTicker(co.cfg.CheckpointEvery)
	defer checkpoint.Stop()
	var result error
	for waiting := true; waiting; {
		select {
		case <-co.doneCh:
			waiting = false
		case <-ctx.Done():
			result = ctx.Err()
			waiting = false
		case <-expire.C:
			co.mu.Lock()
			co.expireLocked(co.cfg.Now())
			co.mu.Unlock()
		case <-checkpoint.C:
			if err := co.Checkpoint(); err != nil {
				co.logf("distrib: checkpoint: %v", err)
			}
		}
	}
	if err := co.Checkpoint(); err != nil {
		co.logf("distrib: final checkpoint: %v", err)
		if result == nil {
			result = err
		}
	}
	return result
}

// MergeInto installs every completed cell's payload into the cache (which
// persists them when it has a store directory). After a finished sweep,
// rendering the experiment tables against this cache reproduces a serial
// run byte for byte.
func (co *Coordinator) MergeInto(cache *resultcache.Cache) int {
	co.mu.Lock()
	frames := make([][]byte, 0, co.doneCount)
	for i, st := range co.states {
		if st == cellDone {
			frames = append(frames, co.frames[i])
		}
	}
	co.mu.Unlock()
	merged := 0
	for _, frame := range frames {
		key, payload, err := resultcache.DecodeFile(frame)
		if err != nil {
			continue // cannot happen: frames were verified at acceptance
		}
		cache.Put(key, payload)
		merged++
	}
	return merged
}

// FailedCells returns the permanently failed cells' indices and errors,
// ascending by index.
func (co *Coordinator) FailedCells() map[int]string {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make(map[int]string, len(co.failErrs))
	for i, msg := range co.failErrs {
		out[i] = msg
	}
	return out
}

// WorkerStatus is one worker's view in Status.
type WorkerStatus struct {
	Cells       int     `json:"cells"`
	Failures    int     `json:"failures,omitempty"`
	CellsPerSec float64 `json:"cells_per_sec"`
	LastSeenMs  int64   `json:"last_seen_ms"` // since the status call
}

// Status is the coordinator's observable state, served on /statusz.
type Status struct {
	Total      int                     `json:"total"`
	Done       int                     `json:"done"`
	Failed     int                     `json:"failed"`
	Pending    int                     `json:"pending"`
	Leased     int                     `json:"leased"`
	Leases     int                     `json:"leases"`
	Duplicates int                     `json:"duplicates"`
	Rejected   int                     `json:"rejected"`
	Expired    int                     `json:"expired"`
	PlanFP     uint64                  `json:"plan_fp,string"`
	Workers    map[string]WorkerStatus `json:"workers,omitempty"`
	Cache      *resultcache.Stats      `json:"cache,omitempty"`
}

// Status snapshots the sweep's progress.
func (co *Coordinator) Status() Status {
	now := co.cfg.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	leased, pending := 0, 0
	for _, st := range co.states {
		switch st {
		case cellLeased:
			leased++
		case cellPending:
			pending++
		}
	}
	s := Status{
		Total:      len(co.states),
		Done:       co.doneCount,
		Failed:     co.failCount,
		Pending:    pending,
		Leased:     leased,
		Leases:     len(co.leases),
		Duplicates: co.duplicates,
		Rejected:   co.rejected,
		Expired:    co.expired,
		PlanFP:     co.planFP,
		Workers:    make(map[string]WorkerStatus, len(co.workers)),
	}
	for name, ws := range co.workers {
		elapsed := ws.lastSeen.Sub(ws.firstSeen).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(ws.cells) / elapsed
		}
		s.Workers[name] = WorkerStatus{
			Cells:       ws.cells,
			Failures:    ws.failures,
			CellsPerSec: rate,
			LastSeenMs:  now.Sub(ws.lastSeen).Milliseconds(),
		}
	}
	if co.cfg.Results != nil {
		st := co.cfg.Results.Stats()
		s.Cache = &st
	}
	return s
}

// ProgressLine renders a one-line human summary of Status for stderr.
func (s Status) ProgressLine() string {
	names := make([]string, 0, len(s.Workers))
	for name := range s.Workers {
		names = append(names, name)
	}
	sort.Strings(names)
	line := fmt.Sprintf("distrib: %d/%d done, %d leased, %d pending, %d failed, %d dup, %d expired",
		s.Done, s.Total, s.Leased, s.Pending, s.Failed, s.Duplicates, s.Expired)
	for _, name := range names {
		w := s.Workers[name]
		line += fmt.Sprintf(" | %s: %d cells %.1f/s", name, w.Cells, w.CellsPerSec)
	}
	return line
}

func retryHint(ttl time.Duration) int64 {
	ms := (ttl / 10).Milliseconds()
	if ms < 50 {
		ms = 50
	}
	return ms
}
