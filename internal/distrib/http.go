package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTP wire format: each protocol exchange is one POST of a JSON request
// body to its path, answered with a JSON response body. /statusz is a GET
// serving the coordinator's Status for humans and the CI harness.
const (
	pathSpec     = "/distrib/spec"
	pathLease    = "/distrib/lease"
	pathRenew    = "/distrib/renew"
	pathComplete = "/distrib/complete"
	pathStatusz  = "/statusz"
)

// maxBodyBytes bounds a request body read. A full lease batch of frames
// is a few hundred KB; 64 MB leaves orders of magnitude of headroom while
// keeping a confused client from exhausting memory.
const maxBodyBytes = 64 << 20

// Handler serves the coordinator protocol plus /statusz.
func Handler(co *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(pathSpec, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.SpecResponse())
	})
	mux.HandleFunc(pathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, co.Lease(req))
	})
	mux.HandleFunc(pathRenew, func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, co.Renew(req))
	})
	mux.HandleFunc(pathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, co.Complete(req))
	})
	mux.HandleFunc(pathStatusz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.Status())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// client is the HTTP Transport.
type client struct {
	base string
	hc   *http.Client
}

// Dial returns a Transport for the coordinator at base (a host:port or
// URL; a missing scheme defaults to http://). Per-call timeouts cover
// lease-sized JSON bodies comfortably; Run's retry loop handles the rest.
func Dial(base string) Transport {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &client{base: base, hc: &http.Client{Timeout: 60 * time.Second}}
}

func (c *client) post(ctx context.Context, path string, req, resp any) error {
	var body io.Reader
	method := http.MethodGet
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
		method = http.MethodPost
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if req != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(hresp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("distrib: %s: HTTP %d: %s", path, hresp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.Unmarshal(b, resp)
}

func (c *client) Spec(ctx context.Context) (SpecResponse, error) {
	var resp SpecResponse
	err := c.post(ctx, pathSpec, nil, &resp)
	return resp, err
}

func (c *client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.post(ctx, pathLease, req, &resp)
	return resp, err
}

func (c *client) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	var resp RenewResponse
	err := c.post(ctx, pathRenew, req, &resp)
	return resp, err
}

func (c *client) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.post(ctx, pathComplete, req, &resp)
	return resp, err
}
