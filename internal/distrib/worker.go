package distrib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/tracecache"
)

// Worker pulls leased cell batches from a coordinator and computes them
// through the same runner pool and caches the serial path uses. Workers
// are deliberately thin: all scheduling policy (batch sizing, retry,
// expiry) lives in the coordinator; a worker only computes what it is
// told and survives coordinator restarts by retrying the transport.
type Worker struct {
	// Name identifies the worker in coordinator status and logs.
	Name string
	// Transport reaches the coordinator (Loopback or Dial).
	Transport Transport
	// Batch is the cell count requested per lease. Default 16.
	Batch int
	// Parallelism bounds concurrent cells per batch (0 = GOMAXPROCS).
	Parallelism int
	// PodShards forces intra-cell pod parallelism (0 = auto-budget).
	PodShards int
	// Results, when non-nil, answers repeat cells without recomputing
	// (give workers a store directory to survive their own restarts).
	Results *resultcache.Cache
	// Traces, when non-nil, shares trace snapshots across batches.
	Traces *tracecache.Cache
	// RetryDelay is the pause after a transport error or an empty grant
	// before asking again. Default 1s.
	RetryDelay time.Duration
	// Patience bounds how long consecutive transport failures are
	// retried before the worker gives up — long enough to ride out a
	// coordinator restart, short enough not to hang forever against a
	// dead one. Default 2 minutes.
	Patience time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// ErrPlanMismatch reports that the worker's locally built plan disagrees
// with the coordinator's — different binaries or engine versions. The
// worker must not compute cells under keys the coordinator would reject.
var ErrPlanMismatch = errors.New("distrib: worker plan does not match coordinator")

// Run serves the coordinator until the sweep is done, ctx is canceled, or
// the transport stays down past Patience. A finished sweep returns nil.
func (w *Worker) Run(ctx context.Context) error {
	batch := w.Batch
	if batch <= 0 {
		batch = 16
	}
	retryDelay := w.RetryDelay
	if retryDelay <= 0 {
		retryDelay = time.Second
	}
	patience := w.Patience
	if patience <= 0 {
		patience = 2 * time.Minute
	}
	traces := w.Traces
	if traces == nil {
		traces = tracecache.New()
	}

	plan, err := w.fetchPlan(ctx, retryDelay, patience)
	if err != nil {
		return err
	}
	w.logf("distrib: worker %s serving %d-cell plan", w.Name, plan.Len())

	var downSince time.Time
	for {
		grant, err := w.Transport.Lease(ctx, LeaseRequest{Worker: w.Name, Max: batch})
		if err != nil {
			if err := w.backoff(ctx, retryDelay, patience, &downSince, err); err != nil {
				return err
			}
			continue
		}
		downSince = time.Time{}
		if grant.Done {
			w.logf("distrib: worker %s: sweep done", w.Name)
			return nil
		}
		if grant.LeaseID == "" {
			wait := time.Duration(grant.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = retryDelay
			}
			if err := sleep(ctx, wait); err != nil {
				return err
			}
			continue
		}

		results := w.computeBatch(ctx, plan, grant, traces)
		req := CompleteRequest{LeaseID: grant.LeaseID, Worker: w.Name, Cells: results}
		for {
			resp, err := w.Transport.Complete(ctx, req)
			if err != nil {
				if err := w.backoff(ctx, retryDelay, patience, &downSince, err); err != nil {
					return err
				}
				continue
			}
			downSince = time.Time{}
			w.logf("distrib: worker %s: batch %s: %d accepted, %d dup, %d rejected",
				w.Name, grant.LeaseID, resp.Accepted, resp.Duplicates, resp.Rejected)
			if resp.Done {
				return nil
			}
			break
		}
	}
}

// fetchPlan gets the spec (retrying through coordinator downtime) and
// rebuilds the plan locally, refusing to serve on any mismatch.
func (w *Worker) fetchPlan(ctx context.Context, retryDelay, patience time.Duration) (*exp.Plan, error) {
	var downSince time.Time
	for {
		spec, err := w.Transport.Spec(ctx)
		if err != nil {
			if err := w.backoff(ctx, retryDelay, patience, &downSince, err); err != nil {
				return nil, err
			}
			continue
		}
		if spec.Spec.SimVersion != sim.Version {
			return nil, fmt.Errorf("%w: coordinator sim version %d, worker %d",
				ErrPlanMismatch, spec.Spec.SimVersion, sim.Version)
		}
		plan, err := exp.BuildPlan(spec.Spec.Jobs)
		if err != nil {
			return nil, fmt.Errorf("distrib: worker cannot build plan: %w", err)
		}
		if fp := plan.Fingerprint(); fp != spec.PlanFP || plan.Len() != spec.Total {
			return nil, fmt.Errorf("%w: fingerprint %016x/%d cells vs coordinator %016x/%d",
				ErrPlanMismatch, fp, plan.Len(), spec.PlanFP, spec.Total)
		}
		return plan, nil
	}
}

// computeBatch runs one lease's cells, renewing the lease at TTL/3 in the
// background for as long as the batch takes.
func (w *Worker) computeBatch(ctx context.Context, plan *exp.Plan, grant LeaseResponse, traces *tracecache.Cache) []CellResult {
	renewCtx, stopRenew := context.WithCancel(ctx)
	var renews sync.WaitGroup
	if ttl := time.Duration(grant.TTLMillis) * time.Millisecond; ttl > 0 {
		renews.Add(1)
		go func() {
			defer renews.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-renewCtx.Done():
					return
				case <-t.C:
					// Failures are fine: an expired lease's results are
					// still accepted at Complete.
					w.Transport.Renew(renewCtx, RenewRequest{LeaseID: grant.LeaseID})
				}
			}
		}()
	}
	runs := plan.RunCells(grant.Indices, exp.RunCellsOptions{
		Results:     w.Results,
		Traces:      traces,
		Parallelism: w.Parallelism,
		PodShards:   w.PodShards,
	})
	stopRenew()
	renews.Wait()
	cells := make([]CellResult, len(runs))
	for i, r := range runs {
		cells[i] = CellResult{Index: grant.Indices[i]}
		if r.Err != nil {
			cells[i].Error = r.Err.Error()
		} else {
			cells[i].Frame = r.Frame
		}
	}
	return cells
}

// backoff sleeps through one transport failure, giving up once failures
// have been continuous past patience.
func (w *Worker) backoff(ctx context.Context, delay, patience time.Duration, downSince *time.Time, cause error) error {
	now := time.Now()
	if downSince.IsZero() {
		*downSince = now
	} else if now.Sub(*downSince) > patience {
		return fmt.Errorf("distrib: worker %s: coordinator unreachable for %v: %w", w.Name, patience, cause)
	}
	w.logf("distrib: worker %s: transport error (retrying): %v", w.Name, cause)
	return sleep(ctx, delay)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
