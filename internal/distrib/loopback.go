package distrib

import "context"

// Loopback is the in-process transport: a worker talks to a coordinator
// in the same process by direct method calls. It is how unit tests drive
// the protocol without sockets, and how a serving coordinator contributes
// its own CPU as a local worker.
type Loopback struct {
	Co *Coordinator
}

func (l Loopback) Spec(ctx context.Context) (SpecResponse, error) {
	if err := ctx.Err(); err != nil {
		return SpecResponse{}, err
	}
	return l.Co.SpecResponse(), nil
}

func (l Loopback) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if err := ctx.Err(); err != nil {
		return LeaseResponse{}, err
	}
	return l.Co.Lease(req), nil
}

func (l Loopback) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	if err := ctx.Err(); err != nil {
		return RenewResponse{}, err
	}
	return l.Co.Renew(req), nil
}

func (l Loopback) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	if err := ctx.Err(); err != nil {
		return CompleteResponse{}, err
	}
	return l.Co.Complete(req), nil
}
