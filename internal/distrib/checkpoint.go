package distrib

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/resultcache"
)

// MPC1 checkpoint layout (everything little-endian, like the MPR1 result
// files it embeds):
//
//	magic    "MPC1" (4 bytes)
//	specLen  uint32, then the SweepSpec JSON (specLen bytes)
//	planFP   uint64 — the plan fingerprint the frames belong to
//	total    uint32 — the plan's cell count
//	done     uint32, then done × (index uvarint, frameLen uvarint, frame)
//	         in ascending index order — each frame a complete MPR1 file
//	leases   uint32, then per lease: idLen uvarint, id, workerLen uvarint,
//	         worker, deadline int64 (unix ms), n uint32, n × index uvarint
//	seq      uint64 — the lease-id sequence high-water mark
//	sum      uint64 FNV-1a over everything before it
//
// Restore requires the magic, checksum, planFP and total to match the
// live plan exactly; anything else — missing file, truncation, garbage, a
// checkpoint from different jobs or a different engine version (planFP
// covers sim.Version) — is silently a fresh start. A checkpoint can only
// remove work, never fail or change a sweep, mirroring the result cache's
// stance. Embedded frames are re-verified cell by cell on restore, so
// even a checksum-colliding corruption of one frame costs exactly that
// cell, not the file.

const checkpointMagic = "MPC1"

// checkpointBytes serializes the coordinator's state under mu.
func (co *Coordinator) checkpointBytes() []byte {
	spec, _ := json.Marshal(co.spec)
	out := make([]byte, 0, 64+len(spec))
	out = append(out, checkpointMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(spec)))
	out = append(out, spec...)
	out = binary.LittleEndian.AppendUint64(out, co.planFP)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(co.states)))
	out = binary.LittleEndian.AppendUint32(out, uint32(co.doneCount))
	for i, st := range co.states {
		if st != cellDone {
			continue
		}
		out = binary.AppendUvarint(out, uint64(i))
		out = binary.AppendUvarint(out, uint64(len(co.frames[i])))
		out = append(out, co.frames[i]...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(co.leases)))
	for _, l := range co.leases {
		out = binary.AppendUvarint(out, uint64(len(l.id)))
		out = append(out, l.id...)
		out = binary.AppendUvarint(out, uint64(len(l.worker)))
		out = append(out, l.worker...)
		out = binary.LittleEndian.AppendUint64(out, uint64(l.deadline.UnixMilli()))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.indices)))
		for _, i := range l.indices {
			out = binary.AppendUvarint(out, uint64(i))
		}
	}
	out = binary.LittleEndian.AppendUint64(out, co.seq)
	h := fnv.New64a()
	h.Write(out)
	return binary.LittleEndian.AppendUint64(out, h.Sum64())
}

// Checkpoint writes the completed-cell set and lease table to the
// configured path, atomically (temp file + rename). A no-op when no path
// is configured or nothing changed since the last write.
func (co *Coordinator) Checkpoint() error {
	path := co.cfg.CheckpointPath
	if path == "" {
		return nil
	}
	co.mu.Lock()
	if !co.dirty {
		co.mu.Unlock()
		return nil
	}
	b := co.checkpointBytes()
	co.dirty = false
	co.mu.Unlock()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".mpc-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// restoreCheckpoint adopts the completed cells and lease table of the
// MPC1 file at path, if it matches the live plan. Returns how many cells
// were restored; every failure mode returns 0 and leaves the coordinator
// untouched.
func (co *Coordinator) restoreCheckpoint(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	if len(b) < len(checkpointMagic)+8 || string(b[:len(checkpointMagic)]) != checkpointMagic {
		return 0
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return 0
	}

	off := len(checkpointMagic)
	need := func(n int) bool { return len(body)-off >= n }
	u32 := func() (uint32, bool) {
		if !need(4) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if !need(8) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, true
	}
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}

	specLen, ok := u32()
	if !ok || !need(int(specLen)) {
		return 0
	}
	off += int(specLen) // the plan fingerprint subsumes the spec
	planFP, ok := u64()
	if !ok || planFP != co.planFP {
		return 0
	}
	total, ok := u32()
	if !ok || int(total) != co.plan.Len() {
		return 0
	}
	done, ok := u32()
	if !ok {
		return 0
	}

	type restored struct {
		index int
		frame []byte
	}
	cells := make([]restored, 0, done)
	for n := uint32(0); n < done; n++ {
		idx, ok1 := uv()
		frameLen, ok2 := uv()
		if !ok1 || !ok2 || !need(int(frameLen)) || int(idx) >= co.plan.Len() {
			return 0
		}
		frame := body[off : off+int(frameLen)]
		off += int(frameLen)
		cells = append(cells, restored{int(idx), frame})
	}

	type restoredLease struct {
		id, worker string
		deadline   time.Time
		indices    []int
	}
	leaseCount, ok := u32()
	if !ok {
		return 0
	}
	leases := make([]restoredLease, 0, leaseCount)
	for n := uint32(0); n < leaseCount; n++ {
		idLen, ok1 := uv()
		if !ok1 || !need(int(idLen)) {
			return 0
		}
		id := string(body[off : off+int(idLen)])
		off += int(idLen)
		workerLen, ok2 := uv()
		if !ok2 || !need(int(workerLen)) {
			return 0
		}
		worker := string(body[off : off+int(workerLen)])
		off += int(workerLen)
		deadlineMs, ok3 := u64()
		ni, ok4 := u32()
		if !ok3 || !ok4 {
			return 0
		}
		indices := make([]int, 0, ni)
		for k := uint32(0); k < ni; k++ {
			idx, ok := uv()
			if !ok || int(idx) >= co.plan.Len() {
				return 0
			}
			indices = append(indices, int(idx))
		}
		leases = append(leases, restoredLease{id, worker, time.UnixMilli(int64(deadlineMs)), indices})
	}
	seq, ok := u64()
	if !ok || off != len(body) {
		return 0
	}

	// The file is structurally sound and belongs to this plan; adopt it.
	// Each frame is still verified individually — a bad frame costs only
	// its own cell.
	co.mu.Lock()
	defer co.mu.Unlock()
	adopted := 0
	for _, c := range cells {
		key, _, err := resultcache.DecodeFile(c.frame)
		if err != nil || key != co.plan.Key(c.index) || co.states[c.index] == cellDone {
			continue
		}
		frame := append([]byte(nil), c.frame...) // detach from the file buffer
		co.markDoneLocked(c.index, frame)
		adopted++
	}
	// Restored leases resume with their original deadlines: a coordinator
	// restarting faster than the TTL keeps in-flight work assigned, and
	// the normal expiry path re-queues anything whose worker died with it.
	for _, rl := range leases {
		indices := make([]int, 0, len(rl.indices))
		for _, i := range rl.indices {
			if co.states[i] == cellPending {
				co.states[i] = cellLeased
				indices = append(indices, i)
			}
		}
		if len(indices) == 0 {
			continue
		}
		co.leases[rl.id] = &lease{id: rl.id, worker: rl.worker, indices: indices, deadline: rl.deadline}
	}
	if seq > co.seq {
		co.seq = seq
	}
	co.dirty = false
	co.checkDoneLocked()
	return adopted
}
