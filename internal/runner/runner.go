// Package runner executes batches of independent simulation cells on a
// bounded worker pool.
//
// The experiment matrices of internal/exp — every (mechanism × workload)
// cell of Figures 8–10, every (epoch × counters) design point of the §6.3.1
// sweeps — are embarrassingly parallel: each cell constructs its own
// memsys.System, mech.Backend and sim.Engine and shares nothing mutable
// with its neighbours. This package provides the one concurrency primitive
// the repository needs to exploit that: Run fans a fixed task list out to
// at most Parallelism goroutines, writes each result into its
// submission-order slot, and aggregates every task error with errors.Join
// instead of aborting on the first failure.
//
// Determinism: a task's result depends only on its own Run closure, and
// results are keyed by submission index, never by completion order.
// Provided each task is self-contained (it must build all mutable state
// itself — see internal/exp.Config.run for the canonical example), the
// output of Run is bit-identical for any Parallelism, including 1, which
// degenerates to strict serial execution in submission order.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Task is one independent unit of work. Run must not share mutable state
// with any other task in the same batch; everything it mutates must be
// constructed inside the closure (or owned exclusively by it).
type Task[T any] struct {
	// Key labels the task in error messages, e.g. "MemPod/mix5".
	Key string
	// Labels, when non-empty, are pprof label key/value pairs (so the
	// length must be even) attached to the goroutine for the duration of
	// Run: a -cpuprofile of a sweep then attributes samples per cell
	// (`go tool pprof -tagfocus`). Empty means no profiler interaction.
	Labels []string
	// Run produces the task's result.
	Run func() (T, error)
}

// Result is the outcome of one task: its value, or the error (wrapped with
// the task Key) that produced a zero value.
type Result[T any] struct {
	Value T
	Err   error
}

// Options tunes a Run call.
type Options struct {
	// Parallelism bounds concurrent tasks. Zero or negative selects
	// runtime.GOMAXPROCS(0). One executes tasks serially, in order.
	Parallelism int
	// OnProgress, when non-nil, is invoked after each task finishes with
	// the number completed so far and the batch total. Invocations are
	// serialized; done is strictly increasing from 1 to total.
	OnProgress func(done, total int)
}

// Run executes every task and returns one Result per task, in submission
// order regardless of scheduling. Failures never abort the batch: every
// task is attempted, failed slots carry their error (and a zero Value),
// and the second return value joins all task errors via errors.Join (nil
// when everything succeeded). A panicking task is recovered into an error
// so one broken cell cannot take down a long sweep.
func Run[T any](tasks []Task[T], opts Options) ([]Result[T], error) {
	results := make([]Result[T], len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes OnProgress and the done counter
		done int
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				v, err := runOne(tasks[i])
				if err != nil && tasks[i].Key != "" {
					err = fmt.Errorf("%s: %w", tasks[i].Key, err)
				}
				results[i] = Result[T]{Value: v, Err: err}
				if opts.OnProgress != nil {
					mu.Lock()
					done++
					opts.OnProgress(done, len(tasks))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()

	errs := make([]error, 0, len(results))
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, results[i].Err)
		}
	}
	return results, errors.Join(errs...)
}

// PerTaskParallelism returns how many goroutines each task of a batch may
// use internally without oversubscribing the machine: GOMAXPROCS divided
// by the worker count Run would use for `tasks` tasks at the given
// Parallelism option (at least 1). Callers running nested-parallel work —
// matrix cells whose engines can shard by pod (sim.Engine.Shards) — plumb
// this through so batch-level × intra-task parallelism stays within the
// machine's budget: a saturated cell pool gets serial cells, a single
// task gets the whole machine, and anything between splits evenly.
func PerTaskParallelism(parallelism, tasks int) int {
	if tasks <= 0 {
		return 1
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if budget := runtime.GOMAXPROCS(0) / workers; budget > 1 {
		return budget
	}
	return 1
}

// runOne invokes a task, converting a panic into an error. Tasks carrying
// Labels run under pprof.Do so profile samples taken during Run carry them.
func runOne[T any](t Task[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if len(t.Labels) > 0 {
		pprof.Do(context.Background(), pprof.Labels(t.Labels...), func(context.Context) {
			v, err = t.Run()
		})
		return v, err
	}
	return t.Run()
}

// Values unwraps a fully successful batch into its values. It is a
// convenience for callers that treat any cell failure as fatal.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}
