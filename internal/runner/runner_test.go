package runner

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// square tasks: task i returns i*i, so result order is checkable.
func squares(n int) []Task[int] {
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("sq%d", i),
			Run: func() (int, error) { return i * i, nil },
		}
	}
	return tasks
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		results, err := Run(squares(37), Options{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, r := range results {
			if r.Err != nil || r.Value != i*i {
				t.Fatalf("par=%d: slot %d = (%d, %v), want %d", par, i, r.Value, r.Err, i*i)
			}
		}
	}
}

func TestRunSerialExecutesInOrder(t *testing.T) {
	var order []int
	tasks := make([]Task[int], 20)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Run: func() (int, error) {
			order = append(order, i) // safe: Parallelism 1 means one worker
			return i, nil
		}}
	}
	if _, err := Run(tasks, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int32
	tasks := make([]Task[struct{}], 50)
	for i := range tasks {
		tasks[i] = Task[struct{}]{Run: func() (struct{}, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			inFlight.Add(-1)
			return struct{}{}, nil
		}}
	}
	if _, err := Run(tasks, Options{Parallelism: par}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, par)
	}
}

func TestRunJoinsAllErrorsAndKeepsSuccesses(t *testing.T) {
	errA := errors.New("boom-a")
	errB := errors.New("boom-b")
	tasks := []Task[string]{
		{Key: "ok1", Run: func() (string, error) { return "one", nil }},
		{Key: "bad-a", Run: func() (string, error) { return "", errA }},
		{Key: "ok2", Run: func() (string, error) { return "two", nil }},
		{Key: "bad-b", Run: func() (string, error) { return "", errB }},
	}
	results, err := Run(tasks, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("no joined error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error lost a cause: %v", err)
	}
	for _, key := range []string{"bad-a", "bad-b"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("joined error missing task key %q: %v", key, err)
		}
	}
	if results[0].Value != "one" || results[2].Value != "two" {
		t.Errorf("successful results lost: %+v", results)
	}
	if results[1].Err == nil || results[3].Err == nil {
		t.Errorf("per-task errors not recorded: %+v", results)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	tasks := []Task[int]{
		{Key: "fine", Run: func() (int, error) { return 7, nil }},
		{Key: "explodes", Run: func() (int, error) { panic("kaboom") }},
	}
	results, err := Run(tasks, Options{Parallelism: 2})
	if err == nil || !strings.Contains(err.Error(), "kaboom") ||
		!strings.Contains(err.Error(), "explodes") {
		t.Fatalf("panic not converted to a keyed error: %v", err)
	}
	if results[0].Value != 7 {
		t.Errorf("healthy task result lost: %+v", results[0])
	}
}

func TestRunProgressIsMonotonic(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	total := -1
	_, err := Run(squares(23), Options{
		Parallelism: 4,
		OnProgress: func(done, tot int) {
			mu.Lock()
			seen = append(seen, done)
			total = tot
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 23 || len(seen) != 23 {
		t.Fatalf("progress called %d times, total %d; want 23", len(seen), total)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not strictly increasing: %v", seen)
		}
	}
}

func TestRunEmptyBatch(t *testing.T) {
	results, err := Run[int](nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

func TestValues(t *testing.T) {
	results, err := Run(squares(4), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	vs := Values(results)
	if len(vs) != 4 || vs[3] != 9 {
		t.Fatalf("Values = %v", vs)
	}
}

// TestTaskLabelsApplied asserts a labeled task runs under its pprof labels
// (and an unlabeled one does not). The goroutine profile at debug=1 prints
// every goroutine's label set, including the running task's own record, so
// the task can observe its labels deterministically — no CPU profile needed.
func TestTaskLabelsApplied(t *testing.T) {
	grab := func() (string, error) {
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			return "", err
		}
		return buf.String(), nil
	}
	tasks := []Task[string]{
		{Key: "labeled", Labels: []string{"mechanism", "MemPod", "workload", "mix3"}, Run: grab},
		{Key: "plain", Run: grab},
	}
	results, err := Run(tasks, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mechanism":"MemPod"`, `"workload":"mix3"`} {
		if !strings.Contains(results[0].Value, want) {
			t.Errorf("labeled task's goroutine profile lacks %s", want)
		}
	}
	if strings.Contains(results[1].Value, `"mechanism":"MemPod"`) {
		t.Error("unlabeled task ran under a previous task's labels")
	}
}

// TestTaskLabelsPropagateErrors asserts the pprof.Do wrapper is transparent
// to results, errors and panics.
func TestTaskLabelsPropagateErrors(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task[int]{
		{Key: "v", Labels: []string{"k", "v"}, Run: func() (int, error) { return 42, nil }},
		{Key: "e", Labels: []string{"k", "v"}, Run: func() (int, error) { return 0, boom }},
		{Key: "p", Labels: []string{"k", "v"}, Run: func() (int, error) { panic("kaboom") }},
	}
	results, err := Run(tasks, Options{Parallelism: 1})
	if err == nil {
		t.Fatal("joined error missing")
	}
	if results[0].Err != nil || results[0].Value != 42 {
		t.Errorf("labeled success: got (%d, %v)", results[0].Value, results[0].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("labeled error lost: %v", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "kaboom") {
		t.Errorf("labeled panic not recovered: %v", results[2].Err)
	}
}

func TestPerTaskParallelism(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name               string
		parallelism, tasks int
		want               int
	}{
		{"no tasks", 4, 0, 1},
		{"single task gets the machine", 0, 1, max(procs, 1)},
		{"saturated pool leaves nothing", procs, procs, 1},
		{"explicit serial pool", 1, 10, max(procs, 1)},
	}
	if procs >= 4 {
		cases = append(cases, struct {
			name               string
			parallelism, tasks int
			want               int
		}{"even split", 2, 10, procs / 2})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PerTaskParallelism(tc.parallelism, tc.tasks); got != tc.want {
				t.Errorf("PerTaskParallelism(%d, %d) = %d, want %d (GOMAXPROCS %d)",
					tc.parallelism, tc.tasks, got, tc.want, procs)
			}
		})
	}
	// The invariant the callers rely on: pool workers × per-task budget
	// never exceeds the machine (when the pool itself fits).
	for par := 1; par <= procs; par++ {
		for tasks := 1; tasks <= 2*procs; tasks++ {
			workers := par
			if workers > tasks {
				workers = tasks
			}
			if got := PerTaskParallelism(par, tasks); got*workers > procs && got > 1 {
				t.Fatalf("PerTaskParallelism(%d, %d) = %d oversubscribes: %d workers × %d > %d procs",
					par, tasks, got, workers, got, procs)
			}
		}
	}
}
