// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the repository's commands, so the simulator's hot path can be inspected
// with `go tool pprof` without ad-hoc instrumentation.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that finishes the CPU profile and, if memPath is non-empty,
// writes a heap profile. Call the stop function exactly once, after the
// workload of interest has run; it reports any profile-writing error.
//
// Either path may be empty, in which case that profile is skipped and the
// stop function is still safe to call.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
