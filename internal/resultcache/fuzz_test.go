package resultcache

import (
	"bytes"
	"testing"
)

// FuzzCellKeyDecode throws arbitrary bytes at the MPR1 frame and key
// decoders and checks the invariants the cache relies on:
//
//   - DecodeFile never panics and never returns both a nil error and a
//     key that fails to re-encode byte-identically (re-framing the parsed
//     key with the parsed payload must reproduce the input).
//   - ParseKey never panics, and any accepted key round-trips exactly
//     through Canonical.
func FuzzCellKeyDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(fileMagic))
	f.Add([]byte("MPR0junk"))
	f.Add([]byte(testKey().Canonical()))
	f.Add(EncodeFile(testKey(), nil))
	f.Add(EncodeFile(testKey(), EncodeResult(testResult())))
	f.Add(EncodeFile(CellKey{Kind: "oracle/v1", Workload: "a b%20c/d\xffe", Seed: -1}, []byte{1, 2, 3}))
	long := EncodeFile(testKey(), make([]byte, 300))
	f.Add(long[:len(long)-5])

	f.Fuzz(func(t *testing.T, b []byte) {
		if key, payload, err := DecodeFile(b); err == nil {
			if reframed := EncodeFile(key, payload); !bytes.Equal(reframed, b) {
				t.Fatalf("accepted file does not re-encode identically:\nin  %x\nout %x", b, reframed)
			}
		}
		if key, err := ParseKey(string(b)); err == nil {
			if canon := key.Canonical(); canon != string(b) {
				t.Fatalf("accepted key does not round-trip:\nin  %q\nout %q", b, canon)
			}
		}
	})
}
