package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
)

func testKey() CellKey {
	return CellKey{
		SimVersion: 1,
		Kind:       KindResult,
		Mech:       "mempod:{Interval:50000000000 Counters:64 CounterBits:2 CacheBytes:0 CacheWays:0 UseFullCounters:false}",
		FastFP:     0x0123456789abcdef,
		SlowFP:     0xfedcba9876543210,
		Layout:     "{FastBytes:1073741824 SlowBytes:8589934592 FastChannels:8 SlowChannels:4 NumPods:4 FastRowBytes:8192 SlowRowBytes:8192}",
		Workload:   "mix5",
		Requests:   150_000,
		Seed:       42,
	}
}

func testResult() stats.Result {
	return stats.Result{
		Workload: "mix5", Mechanism: "MemPod",
		Requests: 150_000, TotalStall: 12345678 * clock.Nanosecond,
		Span: 99 * clock.Microsecond, FastAccesses: 140_000, SlowAccesses: 17_000,
		FastActivations: 4200, SlowActivations: 910,
		FastRowHitRate: 0.91, SlowRowHitRate: 0.42, RowHitRate: 0.87,
		Mig: mech.MigStats{
			Intervals: 33, PageMigrations: 512, LineMigrations: 512 * 32,
			BytesMoved: 512 * 2048, CacheHits: 7, CacheMisses: 3,
			LockStalls: 12, DroppedMigrations: 1, GlobalMoveLines: 0,
		},
	}
}

func TestKeyCanonicalRoundTrip(t *testing.T) {
	keys := []CellKey{
		{},
		testKey(),
		{Kind: "oracle/v1", Mech: "oracle:128x4b", Workload: "name with spaces + %=signs\nnewline", Requests: -3, Seed: -42, Window: -1},
		{SimVersion: 1 << 30, FastFP: ^uint64(0), TraceFP: 1},
	}
	for i, k := range keys {
		canon := k.Canonical()
		if strings.ContainsAny(canon, "\n\r") {
			t.Fatalf("key %d: canonical form contains a newline: %q", i, canon)
		}
		got, err := ParseKey(canon)
		if err != nil {
			t.Fatalf("key %d: ParseKey(%q): %v", i, canon, err)
		}
		if got != k {
			t.Fatalf("key %d round-trip: got %+v want %+v", i, got, k)
		}
	}
}

func TestKeyParseRejects(t *testing.T) {
	good := testKey().Canonical()
	bad := []string{
		"",
		"k0 " + strings.TrimPrefix(good, "k1 "),
		good + " extra=1",
		strings.Replace(good, "sim=", "sum=", 1),
		strings.Replace(good, "fast=", "fast=zz", 1),
	}
	for _, s := range bad {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed key", s)
		}
	}
}

func TestKeyFingerprintSeparates(t *testing.T) {
	base := testKey()
	variants := []func(*CellKey){
		func(k *CellKey) { k.SimVersion++ },
		func(k *CellKey) { k.Kind = "other/v1" },
		func(k *CellKey) { k.Mech += "x" },
		func(k *CellKey) { k.FastFP++ },
		func(k *CellKey) { k.SlowFP++ },
		func(k *CellKey) { k.Layout += "x" },
		func(k *CellKey) { k.Workload = "mix6" },
		func(k *CellKey) { k.Requests++ },
		func(k *CellKey) { k.Seed++ },
		func(k *CellKey) { k.TraceFP++ },
		func(k *CellKey) { k.Window++ },
	}
	seen := map[uint64]string{base.Fingerprint(): base.Canonical()}
	for i, mutate := range variants {
		k := base
		mutate(&k)
		if k == base {
			t.Fatalf("variant %d did not change the key", i)
		}
		fp := k.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d: fingerprint collision between %q and %q", i, prev, k.Canonical())
		}
		seen[fp] = k.Canonical()
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	want := testResult()
	got, err := DecodeResult(EncodeResult(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if zero, err := DecodeResult(EncodeResult(stats.Result{})); err != nil || !reflect.DeepEqual(zero, stats.Result{}) {
		t.Fatalf("zero-value round-trip: %+v, %v", zero, err)
	}
}

// TestResultCodecCoversEveryField is the codec's canary: if stats.Result
// or mech.MigStats grows a field, this count changes and the codec (plus
// the KindResult version) must be updated in the same commit — otherwise
// the new field would silently decode as zero from old cache entries.
func TestResultCodecCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(stats.Result{}).NumField(); n != 13 {
		t.Fatalf("stats.Result has %d fields; extend the KindResult codec and bump its version", n)
	}
	if n := reflect.TypeOf(mech.MigStats{}).NumField(); n != 9 {
		t.Fatalf("mech.MigStats has %d fields; extend the KindResult codec and bump its version", n)
	}
}

func TestResultCodecRejectsMalformed(t *testing.T) {
	good := EncodeResult(testResult())
	if _, err := DecodeResult(good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeResult(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := DecodeResult(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestFileFrameRoundTrip(t *testing.T) {
	key := testKey()
	payload := EncodeResult(testResult())
	framed := EncodeFile(key, payload)
	gotKey, gotPayload, err := DecodeFile(framed)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("key mismatch: %+v", gotKey)
	}
	if !reflect.DeepEqual(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFileFrameRejectsCorruption(t *testing.T) {
	framed := EncodeFile(testKey(), EncodeResult(testResult()))
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"truncated header", func(b []byte) []byte { return b[:3] }},
		{"truncated key", func(b []byte) []byte { return b[:8] }},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing byte", func(b []byte) []byte { return append(b, 0) }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-9] ^= 1; return b }},
		{"flipped key byte", func(b []byte) []byte { b[7] ^= 0x20; return b }},
	} {
		b := tc.mut(append([]byte(nil), framed...))
		if _, _, err := DecodeFile(b); !errors.Is(err, ErrBadFile) {
			t.Errorf("%s: want ErrBadFile, got %v", tc.name, err)
		}
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := New()
	key := testKey()
	runs := 0
	run := func() (stats.Result, error) { runs++; return testResult(), nil }
	for i := 0; i < 3; i++ {
		got, err := c.ResultCell(key, run)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, testResult()) {
			t.Fatalf("call %d: wrong result %+v", i, got)
		}
	}
	if runs != 1 {
		t.Fatalf("compute ran %d times, want 1", runs)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Stale != 0 {
		t.Fatalf("stats %+v, want 1 miss / 2 hits", s)
	}
}

func TestCacheErrorForgetsEntry(t *testing.T) {
	c := New()
	key := testKey()
	boom := errors.New("boom")
	if _, err := c.ResultCell(key, func() (stats.Result, error) { return stats.Result{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	got, err := c.ResultCell(key, func() (stats.Result, error) { return testResult(), nil })
	if err != nil || !reflect.DeepEqual(got, testResult()) {
		t.Fatalf("retry after error: %+v, %v", got, err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := New()
	key := testKey()
	const waiters = 50
	var mu sync.Mutex
	runs := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			got, err := c.ResultCell(key, func() (stats.Result, error) {
				mu.Lock()
				runs++
				mu.Unlock()
				return testResult(), nil
			})
			if err != nil || got.Requests != testResult().Requests {
				t.Errorf("concurrent get: %+v, %v", got, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", runs)
	}
	s := c.Stats()
	if s.Hits+s.Misses != waiters || s.Misses != 1 {
		t.Fatalf("stats %+v, want %d total with 1 miss", s, waiters)
	}
}

func TestCacheDiskPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	key := testKey()

	cold := New()
	cold.SetDir(dir)
	if _, err := cold.ResultCell(key, func() (stats.Result, error) { return testResult(), nil }); err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Persisted != 1 || s.BytesWritten == 0 {
		t.Fatalf("cold stats %+v, want one persisted file", s)
	}

	// A fresh cache instance over the same dir models a new process.
	warm := New()
	warm.SetDir(dir)
	got, err := warm.ResultCell(key, func() (stats.Result, error) {
		t.Fatal("warm cache recomputed")
		return stats.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, testResult()) {
		t.Fatalf("warm result mismatch: %+v", got)
	}
	if s := warm.Stats(); s.Hits != 1 || s.DiskLoads != 1 || s.Misses != 0 {
		t.Fatalf("warm stats %+v, want one disk hit", s)
	}
}

// TestCacheStaleness pins the invalidation rules: a sim-version bump, a
// spec-fingerprint change, or any key difference must miss; the stale
// file is overwritten, not served and not an error.
func TestCacheStaleness(t *testing.T) {
	dir := t.TempDir()
	base := testKey()
	seed := New()
	seed.SetDir(dir)
	if _, err := seed.ResultCell(base, func() (stats.Result, error) { return testResult(), nil }); err != nil {
		t.Fatal(err)
	}

	bumped := base
	bumped.SimVersion++
	fresh := stats.Result{Workload: "mix5", Requests: 1}
	c := New()
	c.SetDir(dir)
	got, err := c.ResultCell(bumped, func() (stats.Result, error) { return fresh, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Fatalf("stale version served cached result: %+v", got)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("stats after version bump %+v, want a miss", s)
	}

	// Hand-rename a valid file onto another key's fingerprint: the
	// embedded key mismatch must reject it (counted Stale).
	victim := base
	victim.Workload = "mix6"
	if err := os.Rename(c.storePath(dir, base), c.storePath(dir, victim)); err != nil {
		t.Fatal(err)
	}
	c2 := New()
	c2.SetDir(dir)
	got, err = c2.ResultCell(victim, func() (stats.Result, error) { return fresh, nil })
	if err != nil || !reflect.DeepEqual(got, fresh) {
		t.Fatalf("wrong-key file served: %+v, %v", got, err)
	}
	if s := c2.Stats(); s.Stale != 1 || s.Misses != 1 {
		t.Fatalf("stats after wrong-key file %+v, want 1 stale + 1 miss", s)
	}
}

// TestCacheCorruptionRegenerates truncates and bit-flips store files; the
// cache must recompute and overwrite with a good file, never error.
func TestCacheCorruptionRegenerates(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"zeroed", func(b []byte) []byte { return make([]byte, len(b)) }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			key := testKey()
			seed := New()
			seed.SetDir(dir)
			if _, err := seed.ResultCell(key, func() (stats.Result, error) { return testResult(), nil }); err != nil {
				t.Fatal(err)
			}
			path := seed.storePath(dir, key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}

			c := New()
			c.SetDir(dir)
			got, err := c.ResultCell(key, func() (stats.Result, error) { return testResult(), nil })
			if err != nil {
				t.Fatalf("corrupt store errored the run: %v", err)
			}
			if !reflect.DeepEqual(got, testResult()) {
				t.Fatalf("corrupt store produced %+v", got)
			}
			if s := c.Stats(); s.Misses != 1 {
				t.Fatalf("stats %+v, want recompute", s)
			}
			// The store must have healed: a third instance hits cleanly.
			c3 := New()
			c3.SetDir(dir)
			if _, err := c3.ResultCell(key, func() (stats.Result, error) {
				t.Error("healed store still recomputes")
				return stats.Result{}, nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCacheProbePinsDiskEntries(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	seed := New()
	seed.SetDir(dir)
	if _, err := seed.ResultCell(key, func() (stats.Result, error) { return testResult(), nil }); err != nil {
		t.Fatal(err)
	}

	c := New()
	c.SetDir(dir)
	other := key
	other.Workload = "absent"
	if c.Probe(other) {
		t.Fatal("Probe hit an absent key")
	}
	if !c.Probe(key) {
		t.Fatal("Probe missed a stored key")
	}
	// Deleting the file after a successful probe must not matter: the
	// probe pinned the entry, so GetOrRun is guaranteed to hit.
	if err := os.Remove(c.storePath(dir, key)); err != nil {
		t.Fatal(err)
	}
	got, err := c.ResultCell(key, func() (stats.Result, error) {
		t.Fatal("pinned probe entry recomputed")
		return stats.Result{}, nil
	})
	if err != nil || !reflect.DeepEqual(got, testResult()) {
		t.Fatalf("pinned entry: %+v, %v", got, err)
	}
	if s := c.Stats(); s.Hits != 1 || s.DiskLoads != 1 {
		t.Fatalf("stats %+v, want probe-pinned hit", s)
	}
}

func TestCacheReadOnlyStoreStillWorks(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c := New()
	c.SetDir(dir)
	got, err := c.ResultCell(testKey(), func() (stats.Result, error) { return testResult(), nil })
	if err != nil || !reflect.DeepEqual(got, testResult()) {
		t.Fatalf("read-only store failed the run: %+v, %v", got, err)
	}
}

func TestStorePathNames(t *testing.T) {
	c := New()
	key := testKey()
	path := c.storePath("store", key)
	want := filepath.Join("store", fmt.Sprintf("%016x.mpr1", key.Fingerprint()))
	if path != want {
		t.Fatalf("storePath = %q, want %q", path, want)
	}
}
