package resultcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// MPR1 store file layout (everything little-endian), mirroring the MPS1
// trace snapshot format's conventions:
//
//	magic   "MPR1" (4 bytes)
//	keyLen  uint16, then the canonical CellKey line (keyLen bytes)
//	payLen  uint32, then the payload (payLen bytes, codec named by the
//	        key's kind field)
//	sum     uint64 FNV-1a over the key and payload bytes
//
// The checksum closes the file: trailing bytes, truncation, or a flipped
// bit anywhere all fail decode. Store readers treat every decode failure
// as a miss (regenerate and overwrite), never as an error — a cache must
// not be able to fail a run that would succeed without it.

const fileMagic = "MPR1"

// Size bounds. Keys are one printed line; payloads are a few hundred
// bytes of metrics. The caps exist so a corrupt length field cannot
// demand a huge allocation.
const (
	maxKeyLen     = 1 << 15
	maxPayloadLen = 1 << 24
)

// ErrBadFile reports a malformed MPR1 file. Store lookups translate it
// into a stale miss; it surfaces only from direct DecodeFile calls.
var ErrBadFile = errors.New("resultcache: malformed result file")

// EncodeFile frames a canonical key and its payload as an MPR1 file.
func EncodeFile(key CellKey, payload []byte) []byte {
	canon := key.Canonical()
	out := make([]byte, 0, len(fileMagic)+2+len(canon)+4+len(payload)+8)
	out = append(out, fileMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(canon)))
	out = append(out, canon...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write([]byte(canon))
	h.Write(payload)
	return binary.LittleEndian.AppendUint64(out, h.Sum64())
}

// DecodeFile parses an MPR1 file into its key and payload. The returned
// payload aliases b. Errors wrap ErrBadFile and name the offset that
// failed, like the trace readers.
func DecodeFile(b []byte) (CellKey, []byte, error) {
	off := 0
	need := func(n int, what string) error {
		if len(b)-off < n {
			return fmt.Errorf("%w: truncated %s at byte offset %d (want %d bytes, have %d)",
				ErrBadFile, what, off, n, len(b)-off)
		}
		return nil
	}
	if err := need(len(fileMagic), "magic"); err != nil {
		return CellKey{}, nil, err
	}
	if string(b[:len(fileMagic)]) != fileMagic {
		return CellKey{}, nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrBadFile, b[:len(fileMagic)], fileMagic)
	}
	off = len(fileMagic)
	if err := need(2, "key length"); err != nil {
		return CellKey{}, nil, err
	}
	keyLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if keyLen > maxKeyLen {
		return CellKey{}, nil, fmt.Errorf("%w: key length %d exceeds %d", ErrBadFile, keyLen, maxKeyLen)
	}
	if err := need(keyLen, "key"); err != nil {
		return CellKey{}, nil, err
	}
	canon := string(b[off : off+keyLen])
	off += keyLen
	if err := need(4, "payload length"); err != nil {
		return CellKey{}, nil, err
	}
	payLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if payLen > maxPayloadLen {
		return CellKey{}, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFile, payLen, maxPayloadLen)
	}
	if err := need(payLen, "payload"); err != nil {
		return CellKey{}, nil, err
	}
	payload := b[off : off+payLen]
	off += payLen
	if err := need(8, "checksum"); err != nil {
		return CellKey{}, nil, err
	}
	sum := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if off != len(b) {
		return CellKey{}, nil, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrBadFile, len(b)-off, off)
	}
	h := fnv.New64a()
	h.Write([]byte(canon))
	h.Write(payload)
	if got := h.Sum64(); got != sum {
		return CellKey{}, nil, fmt.Errorf("%w: checksum %016x, want %016x", ErrBadFile, got, sum)
	}
	key, err := ParseKey(canon)
	if err != nil {
		return CellKey{}, nil, fmt.Errorf("%w: %w", ErrBadFile, err)
	}
	if key.Canonical() != canon {
		return CellKey{}, nil, fmt.Errorf("%w: key round-trip mismatch", ErrBadFile)
	}
	return key, payload, nil
}
