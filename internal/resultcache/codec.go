package resultcache

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/stats"
)

// The KindResult payload: every stats.Result field in declaration order,
// little-endian. Strings are uvarint-length-prefixed; durations are their
// int64 femtosecond counts; rates are IEEE float64 bits. The layout is
// pinned by TestResultCodecCoversEveryField — adding a field to
// stats.Result or mech.MigStats without extending the codec (and bumping
// KindResult) fails that test, not a user's figures.

// EncodeResult serializes a cell result as a KindResult payload.
func EncodeResult(r stats.Result) []byte {
	out := make([]byte, 0, 64+len(r.Workload)+len(r.Mechanism))
	out = appendString(out, r.Workload)
	out = appendString(out, r.Mechanism)
	out = binary.LittleEndian.AppendUint64(out, r.Requests)
	out = binary.LittleEndian.AppendUint64(out, uint64(r.TotalStall))
	out = binary.LittleEndian.AppendUint64(out, uint64(r.Span))
	out = binary.LittleEndian.AppendUint64(out, r.FastAccesses)
	out = binary.LittleEndian.AppendUint64(out, r.SlowAccesses)
	out = binary.LittleEndian.AppendUint64(out, r.FastActivations)
	out = binary.LittleEndian.AppendUint64(out, r.SlowActivations)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.FastRowHitRate))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.SlowRowHitRate))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.RowHitRate))
	// Derived-AMMAT cross-check word plus one reserved zero word (room for
	// a flags field without a reframe; decode insists it is zero).
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.AMMAT()))
	out = binary.LittleEndian.AppendUint64(out, 0)
	for _, v := range migColumns(&r.Mig) {
		out = binary.LittleEndian.AppendUint64(out, *v)
	}
	return out
}

// DecodeResult parses a KindResult payload. Malformed payloads error
// (wrapping ErrBadFile); the cache layer treats that as a stale miss.
func DecodeResult(b []byte) (stats.Result, error) {
	var r stats.Result
	var err error
	if r.Workload, b, err = cutString(b); err != nil {
		return r, fmt.Errorf("%w: workload: %w", ErrBadFile, err)
	}
	if r.Mechanism, b, err = cutString(b); err != nil {
		return r, fmt.Errorf("%w: mechanism: %w", ErrBadFile, err)
	}
	mig := migColumns(&r.Mig)
	words := make([]uint64, 12+len(mig))
	if want := 8 * len(words); len(b) != want {
		return r, fmt.Errorf("%w: result payload has %d metric bytes, want %d", ErrBadFile, len(b), want)
	}
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	r.Requests = words[0]
	r.TotalStall = clock.Duration(words[1])
	r.Span = clock.Time(words[2])
	r.FastAccesses = words[3]
	r.SlowAccesses = words[4]
	r.FastActivations = words[5]
	r.SlowActivations = words[6]
	r.FastRowHitRate = math.Float64frombits(words[7])
	r.SlowRowHitRate = math.Float64frombits(words[8])
	r.RowHitRate = math.Float64frombits(words[9])
	if got, want := math.Float64frombits(words[10]), r.AMMAT(); got != want {
		// Cross-check: the stored headline metric must be derivable from
		// the stored fields, so a torn write that survives the checksum
		// math (it cannot, but defense in depth is one compare) regenerates.
		return r, fmt.Errorf("%w: stored AMMAT %g != derived %g", ErrBadFile, got, want)
	}
	if words[11] != 0 {
		return r, fmt.Errorf("%w: reserved word %016x non-zero", ErrBadFile, words[11])
	}
	for i, v := range mig {
		*v = words[12+i]
	}
	return r, nil
}

// migColumns lists every MigStats counter in declaration order, shared by
// the encoder and decoder so the two can never disagree on field order.
func migColumns(m *mech.MigStats) []*uint64 {
	return []*uint64{
		&m.Intervals, &m.PageMigrations, &m.LineMigrations, &m.BytesMoved,
		&m.CacheHits, &m.CacheMisses, &m.LockStalls, &m.DroppedMigrations,
		&m.GlobalMoveLines,
	}
}

func appendString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

func cutString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("bad string length")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}
