// Package resultcache memoizes simulation cell results across runs and
// processes: a persistent, content-addressed store keyed by the complete
// causal identity of a cell (CellKey — mechanism config, memory-spec
// fingerprints, layout geometry, trace identity, engine version).
//
// The design-space grids recompute thousands of cells whose inputs never
// changed; with every input fingerprinted, the next order-of-magnitude
// win over the batched engine is not running the cell at all. The cache
// follows internal/tracecache's shape — single-flight generation, a
// SetDir disk store with atomic writes — but holds results resident for
// the process lifetime instead of use-counting them: a cell result is a
// few hundred bytes, so even a full evaluation's worth stays trivially
// small, and residency is what lets overlapping figures (Fig6/Fig7 share
// MemPod design points) dedupe against each other in one process.
//
// Correctness stance: a cache must never fail or change a run. Every
// malformed, truncated, stale-versioned or wrong-keyed store file is a
// miss that recomputes and overwrites; the only errors GetOrRun returns
// are the compute function's own.
package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stats"
)

// Stats counts cache activity.
type Stats struct {
	Hits      int // calls served without running the compute function
	Misses    int // calls that computed the cell
	DiskLoads int // store files read and verified successfully
	Stale     int // store files rejected: corrupt, stale version, wrong key
	Persisted int // store files written

	BytesRead    int64 // store bytes read (including rejected files)
	BytesWritten int64 // store bytes written
}

// Cache is a single-flight, content-addressed result cache. The zero
// value is not usable; call New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry // by canonical key
	stats   Stats
	dir     string
}

type entry struct {
	ready   chan struct{} // closed once payload/err are set
	payload []byte
	err     error
}

// New returns an empty in-memory cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// SetDir enables the disk store rooted at dir (which must exist). Each
// result is one MPR1 file named by the key fingerprint; files are written
// atomically (temp file + rename), so concurrent processes sharing a
// store directory see either a complete old file or a complete new one,
// and the worst cross-process race is both computing the same cell once.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
}

// Dir returns the configured store directory ("" when memory-only).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// storePath is the store filename for a key. Distinct keys can collide on
// a fingerprint in principle; the embedded canonical key disambiguates at
// read time (a mismatch is a stale miss, never a wrong hit).
func (c *Cache) storePath(dir string, key CellKey) string {
	return filepath.Join(dir, filepathName(key))
}

func filepathName(key CellKey) string {
	const hex = "0123456789abcdef"
	fp := key.Fingerprint()
	name := make([]byte, 16, 16+5)
	for i := 15; i >= 0; i-- {
		name[i] = hex[fp&0xf]
		fp >>= 4
	}
	return string(append(name, ".mpr1"...))
}

// loadStored tries the store file for key. It returns the payload and
// true only for a complete, checksummed file whose embedded canonical key
// matches exactly — anything else (absent, truncated, corrupt, different
// sim version, fingerprint-colliding neighbor) counts Stale when file
// bytes existed and reports a miss.
func (c *Cache) loadStored(dir string, key CellKey) ([]byte, bool) {
	b, err := os.ReadFile(c.storePath(dir, key))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.stats.BytesRead += int64(len(b))
	c.mu.Unlock()
	stored, payload, err := DecodeFile(b)
	if err != nil || stored != key {
		c.mu.Lock()
		c.stats.Stale++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskLoads++
	c.mu.Unlock()
	return payload, true
}

// persist writes the framed entry atomically next to its final name.
func (c *Cache) persist(dir string, key CellKey, payload []byte) {
	framed := EncodeFile(key, payload)
	path := c.storePath(dir, key)
	tmp, err := os.CreateTemp(dir, ".mpr-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return
	}
	if tmp.Close() != nil {
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		return
	}
	c.mu.Lock()
	c.stats.Persisted++
	c.stats.BytesWritten += int64(len(framed))
	c.mu.Unlock()
}

// Probe reports whether key would hit: resident in memory, in flight, or
// loadable from the store (in which case the entry is pinned resident, so
// a subsequent GetOrRun is guaranteed to hit without touching the disk
// again). Probe itself never counts a Hit or Miss; callers use it to plan
// work — the experiment matrix probes every cell first so trace-snapshot
// use counts cover exactly the cells that will simulate.
func (c *Cache) Probe(key CellKey) bool {
	canon := key.Canonical()
	c.mu.Lock()
	_, ok := c.entries[canon]
	dir := c.dir
	c.mu.Unlock()
	if ok {
		return true
	}
	if dir == "" {
		return false
	}
	payload, ok := c.loadStored(dir, key)
	if !ok {
		return false
	}
	e := &entry{ready: make(chan struct{}), payload: payload}
	close(e.ready)
	c.mu.Lock()
	// Another goroutine may have raced an entry in; keep the first.
	if _, exists := c.entries[canon]; !exists {
		c.entries[canon] = e
	}
	c.mu.Unlock()
	return true
}

// GetOrRun returns key's payload, serving it from memory or the disk
// store, or computing it with run on a miss (then pinning it resident and
// persisting it when a store is configured). Concurrent calls for one key
// are single-flight: the first runs, the rest wait for its outcome. If
// run fails, every waiter receives the error and the entry is forgotten,
// so a later call retries.
func (c *Cache) GetOrRun(key CellKey, run func() ([]byte, error)) ([]byte, error) {
	canon := key.Canonical()
	c.mu.Lock()
	if e, ok := c.entries[canon]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		return e.payload, e.err
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[canon] = e
	dir := c.dir
	c.mu.Unlock()

	payload, fromDisk := []byte(nil), false
	if dir != "" {
		payload, fromDisk = c.loadStored(dir, key)
	}
	var err error
	if !fromDisk {
		payload, err = run()
	}
	c.mu.Lock()
	if fromDisk {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	e.payload, e.err = payload, err
	if err != nil {
		delete(c.entries, canon)
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, err
	}
	if !fromDisk && dir != "" {
		c.persist(dir, key, payload)
	}
	return payload, nil
}

// ResultCell is GetOrRun specialized to KindResult payloads: compute is a
// simulation cell returning stats.Result, and cached payloads decode back
// field-identically. A resident payload that fails to decode (impossible
// for entries this process wrote; conceivable for a hand-edited store
// mid-run) recomputes rather than erroring, preserving the
// cache-never-fails-a-run stance.
func (c *Cache) ResultCell(key CellKey, run func() (stats.Result, error)) (stats.Result, error) {
	payload, err := c.GetOrRun(key, func() ([]byte, error) {
		r, err := run()
		if err != nil {
			return nil, err
		}
		return EncodeResult(r), nil
	})
	if err != nil {
		return stats.Result{}, err
	}
	r, derr := DecodeResult(payload)
	if derr == nil {
		return r, nil
	}
	// Undecodable resident entry: evict and recompute once, bypassing the
	// poisoned bytes, and heal the store with the fresh result.
	c.mu.Lock()
	delete(c.entries, key.Canonical())
	c.stats.Stale++
	dir := c.dir
	c.mu.Unlock()
	r, err = run()
	if err == nil && dir != "" {
		c.persist(dir, key, EncodeResult(r))
	}
	return r, err
}

// Put installs a payload computed elsewhere (a distributed worker, a
// checkpoint restore) as if GetOrRun had computed it here: the entry is
// pinned resident and persisted when a store is configured. First write
// wins — an existing resident entry (including one in flight) is kept, so
// Put can never change a value a caller already observed. Callers are
// responsible for the payload's integrity; transport layers verify the
// MPR1 frame checksum and key before handing payloads to Put.
func (c *Cache) Put(key CellKey, payload []byte) {
	canon := key.Canonical()
	c.mu.Lock()
	if _, ok := c.entries[canon]; ok {
		c.mu.Unlock()
		return
	}
	e := &entry{ready: make(chan struct{}), payload: payload}
	close(e.ready)
	c.entries[canon] = e
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		c.persist(dir, key, payload)
	}
}

// Lookup returns key's payload without computing anything: resident
// entries and loadable store files answer (pinning the entry resident,
// like Probe); absent or in-flight cells report false immediately —
// Lookup never blocks on another goroutine's compute. No Hit or Miss is
// counted; coordinators use it to adopt prior results without perturbing
// the run's own statistics.
func (c *Cache) Lookup(key CellKey) ([]byte, bool) {
	canon := key.Canonical()
	c.mu.Lock()
	e, ok := c.entries[canon]
	dir := c.dir
	c.mu.Unlock()
	if ok {
		select {
		case <-e.ready:
			if e.err == nil {
				return e.payload, true
			}
		default:
		}
		return nil, false
	}
	if dir == "" {
		return nil, false
	}
	payload, ok := c.loadStored(dir, key)
	if !ok {
		return nil, false
	}
	e = &entry{ready: make(chan struct{}), payload: payload}
	close(e.ready)
	c.mu.Lock()
	if prev, exists := c.entries[canon]; exists {
		e = prev
	} else {
		c.entries[canon] = e
	}
	c.mu.Unlock()
	select {
	case <-e.ready:
		if e.err == nil {
			return e.payload, true
		}
	default:
	}
	return nil, false
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Sub returns the counter deltas since a prior snapshot — what happened
// between two Stats calls, e.g. during one figure of a sweep.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		DiskLoads:    s.DiskLoads - prev.DiskLoads,
		Stale:        s.Stale - prev.Stale,
		Persisted:    s.Persisted - prev.Persisted,
		BytesRead:    s.BytesRead - prev.BytesRead,
		BytesWritten: s.BytesWritten - prev.BytesWritten,
	}
}

// String renders the counters in the one-line greppable form the commands
// print: "hits=H misses=M stale=S read=RB written=WB".
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d stale=%d read=%dB written=%dB",
		s.Hits, s.Misses, s.Stale, s.BytesRead, s.BytesWritten)
}
