package resultcache

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"strconv"
	"strings"
)

// Record kinds. The kind names the payload codec and carries its version:
// a codec change (new field, different layout) bumps the kind string,
// which changes every affected key, so old store entries become stale
// misses instead of mis-decodes.
const (
	// KindResult is the stats.Result cell payload (EncodeResult).
	KindResult = "result/v1"
)

// CellKey is the complete causal identity of one simulation cell: every
// input that can change the cell's result appears here, and nothing else.
// Two runs with equal keys are guaranteed to produce field-identical
// results (the engine is deterministic), which is what makes results
// content-addressable.
//
// Execution-shape knobs — worker counts, pod shards, batch sizes, mapped
// vs copied replay — are deliberately absent: the differential suites
// prove them bit-identical, so they must not fragment the key space.
type CellKey struct {
	// SimVersion is the engine-semantics stamp (sim.Version). Callers set
	// it explicitly rather than this package importing the engine, so the
	// codec layer stays dependency-light and fuzzable in isolation.
	SimVersion int
	// Kind names the payload codec (KindResult, or a caller-defined kind
	// such as the oracle study's).
	Kind string
	// Mech is the canonical mechanism identity: a short mechanism tag
	// plus the printed config struct (every design-space parameter).
	Mech string
	// FastFP/SlowFP are the dram.Spec fingerprints of the two memory
	// levels (zero where a level — or the whole timing model — is absent,
	// as in the oracle study).
	FastFP uint64
	SlowFP uint64
	// Layout is the printed addr.Layout geometry the cell ran on.
	Layout string
	// Workload, Requests and Seed pin a generated trace exactly (the
	// generators are deterministic). TraceFP instead pins a replayed
	// recorded trace by content fingerprint when no (workload, requests,
	// seed) recipe is known to the caller; it is zero for generated runs.
	Workload string
	Requests int
	Seed     int64
	TraceFP  uint64
	// Window is the engine's outstanding-request window override
	// (0 = engine default, negative = unlimited — stored verbatim).
	Window int
}

// keyFormat tags the canonical key encoding itself, so the field set can
// evolve without old store files parsing as silently-wrong keys.
const keyFormat = "k1"

// Canonical renders the key as one line of space-separated name=value
// fields in fixed order, with free-form values path-escaped so they can
// never contain a space or newline. Equal keys have equal canonical forms
// and vice versa; the canonical form is what files store and fingerprints
// hash.
func (k CellKey) Canonical() string {
	var b strings.Builder
	b.Grow(128 + len(k.Mech) + len(k.Layout) + len(k.Workload))
	b.WriteString(keyFormat)
	fmt.Fprintf(&b, " sim=%d", k.SimVersion)
	b.WriteString(" kind=" + url.PathEscape(k.Kind))
	b.WriteString(" mech=" + url.PathEscape(k.Mech))
	fmt.Fprintf(&b, " fast=%016x slow=%016x", k.FastFP, k.SlowFP)
	b.WriteString(" layout=" + url.PathEscape(k.Layout))
	b.WriteString(" wl=" + url.PathEscape(k.Workload))
	fmt.Fprintf(&b, " req=%d seed=%d trace=%016x win=%d",
		k.Requests, k.Seed, k.TraceFP, k.Window)
	return b.String()
}

// Fingerprint returns the FNV-1a hash of the canonical form. It names the
// store file; the file's embedded canonical key — not the fingerprint —
// is what authenticates an entry, so a fingerprint collision degrades to
// two keys alternately overwriting one file, never to a wrong hit.
func (k CellKey) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.Canonical()))
	return h.Sum64()
}

// keyFields are the canonical field names in canonical order.
var keyFields = []string{"sim", "kind", "mech", "fast", "slow", "layout", "wl", "req", "seed", "trace", "win"}

// ParseKey decodes a canonical key line back into a CellKey. It is strict:
// the format tag, the field set, and the field order must match exactly,
// so ParseKey(k.Canonical()) == k for every key and anything else errors.
func ParseKey(s string) (CellKey, error) {
	parts := strings.Split(s, " ")
	if len(parts) != len(keyFields)+1 {
		return CellKey{}, fmt.Errorf("resultcache: key has %d fields, want %d", len(parts)-1, len(keyFields))
	}
	if parts[0] != keyFormat {
		return CellKey{}, fmt.Errorf("resultcache: key format %q, want %q", parts[0], keyFormat)
	}
	var k CellKey
	for i, field := range keyFields {
		part := parts[i+1]
		val, ok := strings.CutPrefix(part, field+"=")
		if !ok {
			return CellKey{}, fmt.Errorf("resultcache: key field %d is %q, want %s=", i, part, field)
		}
		var err error
		switch field {
		case "sim":
			k.SimVersion, err = parseInt(val)
		case "kind":
			k.Kind, err = parseEscaped(val)
		case "mech":
			k.Mech, err = parseEscaped(val)
		case "fast":
			k.FastFP, err = parseHex(val)
		case "slow":
			k.SlowFP, err = parseHex(val)
		case "layout":
			k.Layout, err = parseEscaped(val)
		case "wl":
			k.Workload, err = parseEscaped(val)
		case "req":
			k.Requests, err = parseInt(val)
		case "seed":
			k.Seed, err = strconv.ParseInt(val, 10, 64)
		case "trace":
			k.TraceFP, err = parseHex(val)
		case "win":
			k.Window, err = parseInt(val)
		}
		if err != nil {
			return CellKey{}, fmt.Errorf("resultcache: key field %s=%q: %w", field, val, err)
		}
	}
	return k, nil
}

func parseInt(v string) (int, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	return int(n), err
}

func parseHex(v string) (uint64, error) {
	if len(v) != 16 {
		return 0, fmt.Errorf("want 16 hex digits, have %d", len(v))
	}
	return strconv.ParseUint(v, 16, 64)
}

// parseEscaped reverses url.PathEscape and rejects values that would not
// re-escape to the input, keeping Canonical∘ParseKey the identity.
func parseEscaped(v string) (string, error) {
	s, err := url.PathUnescape(v)
	if err != nil {
		return "", err
	}
	if url.PathEscape(s) != v {
		return "", fmt.Errorf("non-canonical escaping %q", v)
	}
	return s, nil
}
