// Package tab provides the dense, reusable table structures behind the
// simulator's allocation-free per-request hot path.
//
// Mechanisms burn a surprising share of a short simulation constructing
// and destructing their bookkeeping state: a remap table over 4.5 M pages
// is 18 MB that must be allocated, zeroed by the runtime, and then
// overwritten with the identity mapping — per simulation cell. The types
// here make that cost amortize away:
//
//   - U32 is an identity-initialized uint32 table (remap/inverted tables)
//     that journals every write, so restoring it to the identity costs
//     O(writes), not O(size).
//   - U16Zero is a zero-initialized uint16 table (activity counters) with
//     the same journaling idea; clearing between intervals walks the
//     touched entries instead of memsetting megabytes.
//   - EpochSet is a dense membership set cleared by bumping an epoch
//     stamp, so per-interval reset costs nothing at all.
//
// All three recycle through size-keyed pools: a returned table is
// journal-reset (or epoch-bumped) and handed to the next simulation cell
// without any zeroing. Pool hits and misses are indistinguishable to the
// user — a fresh table and a recycled one have identical contents — so
// results never depend on pooling, only construction time does. Pools are
// safe for concurrent use by parallel simulation cells.
package tab

import "sync"

// maxPooled bounds how many tables of one size a pool retains; beyond
// that, released tables are dropped for the GC. Matrix runs need at most
// a few per size (one per concurrent cell).
const maxPooled = 16

type pool[T any] struct {
	mu   sync.Mutex
	free map[int][]*T
}

func (p *pool[T]) get(n int) *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		return nil
	}
	l := p.free[n]
	if len(l) == 0 {
		return nil
	}
	t := l[len(l)-1]
	p.free[n] = l[:len(l)-1]
	return t
}

func (p *pool[T]) put(n int, t *T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		p.free = make(map[int][]*T)
	}
	if len(p.free[n]) < maxPooled {
		p.free[n] = append(p.free[n], t)
	}
}

// U32 is a dense uint32 table whose resting state is the identity mapping
// A[i] == i. Every write must go through Set so the table can be restored
// cheaply; reads index A directly.
type U32 struct {
	// A is the table. Read it directly; write only through Set.
	A       []uint32
	touched []uint32
}

var u32Pool pool[U32]

// NewU32 returns an identity table of n entries, recycled from the pool
// when one of this size is available.
func NewU32(n int) *U32 {
	if t := u32Pool.get(n); t != nil {
		return t
	}
	t := &U32{A: make([]uint32, n)}
	for i := range t.A {
		t.A[i] = uint32(i)
	}
	return t
}

// Set writes A[i] = v and journals the write for Release.
func (t *U32) Set(i, v uint32) {
	t.A[i] = v
	t.touched = append(t.touched, i)
}

// Release restores the identity mapping and returns the table to the
// pool. The caller must not use the table afterwards.
func (t *U32) Release() {
	for _, i := range t.touched {
		t.A[i] = i
	}
	t.touched = t.touched[:0]
	u32Pool.put(len(t.A), t)
}

// U16Zero is a dense uint16 table whose resting state is all zeros, with
// a journal of the entries that left zero. It is the counter-array shape:
// saturating counters that an interval boundary clears.
type U16Zero struct {
	// A is the table. Read it directly; write through Touch/Set.
	A       []uint16
	touched []uint32
}

var u16Pool pool[U16Zero]

// NewU16Zero returns an all-zero table of n entries.
func NewU16Zero(n int) *U16Zero {
	if t := u16Pool.get(n); t != nil {
		return t
	}
	return &U16Zero{A: make([]uint16, n)}
}

// Set writes A[i] = v, journaling i on its first departure from zero.
// The caller must pass the current value c == A[i] (every call site has
// just read it).
func (t *U16Zero) Set(i uint32, c, v uint16) {
	if c == 0 && v != 0 {
		t.touched = append(t.touched, i)
	}
	t.A[i] = v
}

// Touched returns the journal: the indices written since the last Clear,
// each exactly once, in first-touch order. The slice aliases internal
// state and is valid until the next Set/Clear.
func (t *U16Zero) Touched() []uint32 { return t.touched }

// Clear zeroes the touched entries — O(touched), not O(len(A)).
func (t *U16Zero) Clear() {
	for _, i := range t.touched {
		t.A[i] = 0
	}
	t.touched = t.touched[:0]
}

// Release clears the table and returns it to the pool.
func (t *U16Zero) Release() {
	t.Clear()
	u16Pool.put(len(t.A), t)
}

// U64Zero is U16Zero's shape at uint64 width: a zero-resting table whose
// journal records each entry's first departure from zero. It carries
// CAMEO's congruence-group permutations — over a hundred megabytes at the
// paper's geometry, of which a run touches only the accessed groups.
type U64Zero struct {
	// A is the table. Read it directly; write through Set.
	A       []uint64
	touched []uint32
}

var u64Pool pool[U64Zero]

// NewU64Zero returns an all-zero table of n entries.
func NewU64Zero(n int) *U64Zero {
	if t := u64Pool.get(n); t != nil {
		return t
	}
	return &U64Zero{A: make([]uint64, n)}
}

// Set writes A[i] = v, journaling i on its first departure from zero.
// The caller must pass the current value c == A[i].
func (t *U64Zero) Set(i uint32, c, v uint64) {
	if c == 0 && v != 0 {
		t.touched = append(t.touched, i)
	}
	t.A[i] = v
}

// Clear zeroes the touched entries — O(touched), not O(len(A)).
func (t *U64Zero) Clear() {
	for _, i := range t.touched {
		t.A[i] = 0
	}
	t.touched = t.touched[:0]
}

// Release clears the table and returns it to the pool.
func (t *U64Zero) Release() {
	t.Clear()
	u64Pool.put(len(t.A), t)
}

// EpochSet is a dense membership set over [0, n) cleared in O(1) by
// bumping an epoch stamp. Recycled sets keep their stale stamps; the
// embedded epoch counter is monotonic per backing array, so stale stamps
// can never read as current.
type EpochSet struct {
	stamp []uint32
	cur   uint32
}

var epochPool pool[EpochSet]

// NewEpochSet returns an empty set over [0, n).
func NewEpochSet(n int) *EpochSet {
	if s := epochPool.get(n); s != nil {
		s.BeginEpoch()
		return s
	}
	return &EpochSet{stamp: make([]uint32, n), cur: 1}
}

// BeginEpoch empties the set. On uint32 wraparound (once per 4 G epochs)
// the stamps are rewound explicitly to keep the invariant cur > stamp[i].
func (s *EpochSet) BeginEpoch() {
	s.cur++
	if s.cur == 0 {
		clear(s.stamp)
		s.cur = 1
	}
}

// Add inserts i into the set.
func (s *EpochSet) Add(i uint32) { s.stamp[i] = s.cur }

// Has reports whether i is in the set.
func (s *EpochSet) Has(i uint32) bool { return s.stamp[i] == s.cur }

// Release empties the set and returns it to the pool.
func (s *EpochSet) Release() {
	s.BeginEpoch()
	epochPool.put(len(s.stamp), s)
}
