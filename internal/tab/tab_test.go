package tab

import (
	"math/rand"
	"testing"
)

// TestU32RecycleIsIdentity checks the package's core contract: a recycled
// table is indistinguishable from a fresh one.
func TestU32RecycleIsIdentity(t *testing.T) {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 5; round++ {
		u := NewU32(n)
		for i := range u.A {
			if u.A[i] != uint32(i) {
				t.Fatalf("round %d: A[%d] = %d on acquisition, want identity", round, i, u.A[i])
			}
		}
		for k := 0; k < 500; k++ {
			u.Set(uint32(rng.Intn(n)), rng.Uint32())
		}
		u.Release()
	}
}

func TestU16ZeroJournal(t *testing.T) {
	const n = 1 << 12
	rng := rand.New(rand.NewSource(2))
	u := NewU16Zero(n)
	ref := make(map[uint32]uint16)
	for k := 0; k < 2000; k++ {
		i := uint32(rng.Intn(n))
		c := u.A[i]
		if c != ref[i] {
			t.Fatalf("A[%d] = %d, want %d", i, c, ref[i])
		}
		u.Set(i, c, c+1)
		ref[i] = c + 1
	}
	// The journal holds exactly the nonzero entries, each once.
	seen := make(map[uint32]bool)
	for _, i := range u.Touched() {
		if seen[i] {
			t.Fatalf("journal lists %d twice", i)
		}
		seen[i] = true
	}
	if len(seen) != len(ref) {
		t.Fatalf("journal has %d entries, want %d", len(seen), len(ref))
	}
	u.Clear()
	for i := range u.A {
		if u.A[i] != 0 {
			t.Fatalf("A[%d] = %d after Clear", i, u.A[i])
		}
	}
	if len(u.Touched()) != 0 {
		t.Fatalf("journal not empty after Clear")
	}
	u.Release()
	u2 := NewU16Zero(n)
	for i := range u2.A {
		if u2.A[i] != 0 {
			t.Fatalf("recycled table A[%d] = %d, want 0", i, u2.A[i])
		}
	}
}

func TestU64ZeroJournalAndRecycle(t *testing.T) {
	const n = 1 << 10
	rng := rand.New(rand.NewSource(3))
	u := NewU64Zero(n)
	ref := make(map[uint32]uint64)
	for k := 0; k < 3000; k++ {
		i := uint32(rng.Intn(n))
		c := u.A[i]
		if c != ref[i] {
			t.Fatalf("A[%d] = %d, want %d", i, c, ref[i])
		}
		v := uint64(rng.Intn(5)) // zero re-writes exercise the journal guard
		u.Set(i, c, v)
		if v == 0 {
			delete(ref, i)
		} else {
			ref[i] = v
		}
	}
	u.Release()
	u2 := NewU64Zero(n)
	for i := range u2.A {
		if u2.A[i] != 0 {
			t.Fatalf("recycled table A[%d] = %d, want 0", i, u2.A[i])
		}
	}
}

func TestEpochSet(t *testing.T) {
	s := NewEpochSet(64)
	s.Add(3)
	s.Add(7)
	if !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	s.BeginEpoch()
	if s.Has(3) || s.Has(7) {
		t.Fatal("BeginEpoch did not empty the set")
	}
	s.Add(4)
	s.Release()
	s2 := NewEpochSet(64)
	for i := uint32(0); i < 64; i++ {
		if s2.Has(i) {
			t.Fatalf("recycled set contains %d", i)
		}
	}
}

// TestEpochSetWraparound forces the uint32 epoch wrap and checks the
// explicit rewind keeps membership correct.
func TestEpochSetWraparound(t *testing.T) {
	s := &EpochSet{stamp: make([]uint32, 8), cur: ^uint32(0) - 1}
	s.Add(1)
	s.BeginEpoch() // cur -> max
	if s.Has(1) {
		t.Fatal("stale member visible")
	}
	s.Add(2)
	s.BeginEpoch() // wraps: stamps cleared, cur = 1
	if s.Has(2) || s.cur != 1 {
		t.Fatalf("wraparound mishandled: cur=%d", s.cur)
	}
	s.Add(3)
	if !s.Has(3) {
		t.Fatal("post-wrap add lost")
	}
}

func TestPoolSizeKeying(t *testing.T) {
	a := NewU32(16)
	a.Set(5, 99)
	a.Release()
	b := NewU32(32)
	if len(b.A) != 32 {
		t.Fatalf("got table of %d entries, want 32", len(b.A))
	}
	c := NewU32(16)
	if len(c.A) != 16 || c.A[5] != 5 {
		t.Fatalf("recycled 16-entry table corrupt: len=%d A[5]=%d", len(c.A), c.A[5])
	}
}
