// Package memsys composes DRAM channels into the two-level memory system of
// the paper: a set of fast (stacked) channels and a set of slow (off-chip)
// channels behind a shared flat address layout.
//
// The system services fully resolved physical locations (addr.Location);
// translation from flat addresses to locations is the job of the migration
// mechanisms, which is exactly the paper's hardware split — pods sit between
// the LLC and the memory controllers and re-encode requests before
// forwarding them.
package memsys

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
)

// System is a collection of DRAM channels with dense IDs per addr.Layout:
// channels [0, FastChannels) use the fast spec, the rest the slow spec.
// Channels are stored by value in one dense slice, so the per-request path
// indexes straight into channel state with no per-channel pointer chase.
// Not safe for general concurrent use; however channels share no state
// with each other, so callers that partition the channel ID space —
// MemPod's pods own disjoint channel sets — may access disjoint channels
// from different goroutines concurrently.
type System struct {
	layout   addr.Layout
	fast     dram.Spec
	slow     dram.Spec
	channels []dram.Channel
}

// LayoutFor returns the layout with its per-level row sizes filled in
// from the channel specs (for the populated levels). Row size is part of
// the physical address map — it decides how many page slots share a DRAM
// row — so carrying it in the layout makes trace predecode planes and
// their persisted sidecars spec-dependent: a plane computed under one
// spec's geometry is never silently reused under another's.
func LayoutFor(l addr.Layout, fast, slow dram.Spec) (addr.Layout, error) {
	set := func(level string, dst *uint64, channels int, spec dram.Spec) error {
		if channels == 0 {
			return nil
		}
		if *dst == 0 {
			*dst = uint64(spec.RowBytes)
		} else if *dst != uint64(spec.RowBytes) {
			return fmt.Errorf("memsys: layout %s row size %d != spec %s row size %d",
				level, *dst, spec.Name, spec.RowBytes)
		}
		return nil
	}
	if err := set("fast", &l.FastRowBytes, l.FastChannels, fast); err != nil {
		return addr.Layout{}, err
	}
	if err := set("slow", &l.SlowRowBytes, l.SlowChannels, slow); err != nil {
		return addr.Layout{}, err
	}
	return l, nil
}

// New builds the memory system for a layout. Single-level layouts (zero
// channels on one side) are allowed for the paper's HBM-only and DDR-only
// reference configurations. The stored layout is canonicalized through
// LayoutFor, so Layout() reflects the specs' row geometry.
func New(layout addr.Layout, fast, slow dram.Spec) (*System, error) {
	layout, err := LayoutFor(layout, fast, slow)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	s := &System{layout: layout, fast: fast, slow: slow}
	n := layout.FastChannels + layout.SlowChannels
	if n == 0 {
		return nil, fmt.Errorf("memsys: layout has no channels")
	}
	s.channels = make([]dram.Channel, n)
	for i := 0; i < layout.FastChannels; i++ {
		s.channels[i] = dram.MakeChannel(fast)
	}
	for i := layout.FastChannels; i < n; i++ {
		s.channels[i] = dram.MakeChannel(slow)
	}
	return s, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(layout addr.Layout, fast, slow dram.Spec) *System {
	s, err := New(layout, fast, slow)
	if err != nil {
		panic(err)
	}
	return s
}

// Layout returns the system's address layout.
func (s *System) Layout() addr.Layout { return s.layout }

// Access services one 64-byte request at the given physical location and
// returns its completion time. The location's row index is presented to the
// channel directly: lines within one 8 KB row share a bank and row buffer,
// while consecutive rows interleave across banks.
func (s *System) Access(loc addr.Location, write bool, at clock.Time) clock.Time {
	return s.channels[loc.Channel].Access(loc.Row, write, at)
}

// AccessChannel services one 64-byte request on an already-resolved
// channel/row pair — the hot-path form of Access for callers (mech.Backend)
// that compute the channel index directly from precomputed pod bases.
func (s *System) AccessChannel(ch int, row uint64, write bool, at clock.Time) clock.Time {
	return s.channels[ch].Access(row, write, at)
}

// AccessChannelBatch services a dense per-channel request column through
// the channel's batch kernel (dram.Channel.AccessBatch), folding each
// completion into done[req.Idx] as a running max. The same channel
// independence that lets disjoint channel sets run concurrently also
// means servicing one channel's column densely — while other channels'
// columns wait — is bit-identical to the interleaved per-request order,
// as long as each channel sees its own requests in order.
func (s *System) AccessChannelBatch(ch int, reqs []dram.BatchReq, done []clock.Time) {
	s.channels[ch].AccessBatch(reqs, done)
}

// LevelStats aggregates the channel counters of one memory level.
type LevelStats struct {
	dram.Stats
	Channels int
}

// FastStats returns aggregated counters over the fast channels.
func (s *System) FastStats() LevelStats { return s.aggregate(0, s.layout.FastChannels) }

// SlowStats returns aggregated counters over the slow channels.
func (s *System) SlowStats() LevelStats {
	return s.aggregate(s.layout.FastChannels, len(s.channels))
}

func (s *System) aggregate(lo, hi int) LevelStats {
	var out LevelStats
	out.Channels = hi - lo
	for i := lo; i < hi; i++ {
		out.Stats.Merge(s.channels[i].Stats())
	}
	return out
}

// ChannelStats returns the counters of one channel, for diagnostics.
func (s *System) ChannelStats(ch int) dram.Stats { return s.channels[ch].Stats() }

// NumChannels returns the number of channels in the system.
func (s *System) NumChannels() int { return len(s.channels) }
