package memsys

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
)

func defaultSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefault(t *testing.T) {
	s := defaultSystem(t)
	if s.NumChannels() != 12 {
		t.Fatalf("channels = %d, want 12", s.NumChannels())
	}
	if s.FastStats().Channels != 8 || s.SlowStats().Channels != 4 {
		t.Fatal("level channel counts wrong")
	}
}

func TestNewRejectsInvalidLayout(t *testing.T) {
	if _, err := New(addr.Layout{}, dram.HBM(), dram.DDR4_1600()); err == nil {
		t.Fatal("accepted zero layout")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(addr.Layout{}, dram.HBM(), dram.DDR4_1600())
}

func TestFastIsFasterThanSlow(t *testing.T) {
	s := defaultSystem(t)
	l := s.Layout()
	fastLoc := l.HomeLocation(0)
	slowLoc := l.HomeLocation(addr.Line(uint64(l.FastPages()) * addr.LinesPerPage))
	if !fastLoc.Fast || slowLoc.Fast {
		t.Fatal("location fast flags wrong")
	}
	f := s.Access(fastLoc, false, 0)
	sl := s.Access(slowLoc, false, 0)
	if f >= sl {
		t.Errorf("fast access %v not faster than slow %v", f, sl)
	}
}

func TestStatsRouteToCorrectLevel(t *testing.T) {
	s := defaultSystem(t)
	l := s.Layout()
	for i := 0; i < 10; i++ {
		s.Access(l.HomeLocation(addr.Line(i*addr.LinesPerPage)), false, 0)
	}
	for i := 0; i < 7; i++ {
		ln := addr.Line(uint64(l.FastPages())*addr.LinesPerPage + uint64(i*addr.LinesPerPage))
		s.Access(l.HomeLocation(ln), true, 0)
	}
	fs, ss := s.FastStats(), s.SlowStats()
	if fs.Reads != 10 || fs.Writes != 0 {
		t.Errorf("fast stats %+v", fs.Stats)
	}
	if ss.Reads != 0 || ss.Writes != 7 {
		t.Errorf("slow stats %+v", ss.Stats)
	}
}

func TestAggregateCountsRefreshes(t *testing.T) {
	// Refresh-enabled system: level stats must carry the per-channel
	// Refreshes counters through aggregation (they were dropped once).
	s := MustNew(addr.DefaultLayout(), dram.HBM().WithRefresh(), dram.DDR4_1600().WithRefresh())
	l := s.Layout()
	at := clock.Time(dram.HBM().WithRefresh().RefreshInterval) + clock.Time(clock.Nanosecond)
	s.Access(l.HomeLocation(0), false, at)
	slowLn := addr.Line(uint64(l.FastPages()) * addr.LinesPerPage)
	s.Access(l.HomeLocation(slowLn), false, at)
	if got := s.FastStats().Refreshes; got == 0 {
		t.Error("fast level refreshes not aggregated")
	}
	if got := s.SlowStats().Refreshes; got == 0 {
		t.Error("slow level refreshes not aggregated")
	}
	// Per-channel truth must equal the two level sums.
	var want uint64
	for ch := 0; ch < s.NumChannels(); ch++ {
		want += s.ChannelStats(ch).Refreshes
	}
	if got := s.FastStats().Refreshes + s.SlowStats().Refreshes; got != want {
		t.Errorf("aggregated refreshes = %d, channel sum = %d", got, want)
	}
}

func TestChannelParallelismAcrossPods(t *testing.T) {
	// Simultaneous accesses to different channels should all complete at
	// the same (fast) time; piling them on one channel must serialize.
	s := defaultSystem(t)
	l := s.Layout()
	var doneSpread []clock.Time
	for pod := 0; pod < l.NumPods; pod++ {
		loc := l.FrameLocation(pod, 0, 0)
		doneSpread = append(doneSpread, s.Access(loc, false, 0))
	}
	for i := 1; i < len(doneSpread); i++ {
		if doneSpread[i] != doneSpread[0] {
			t.Errorf("pod %d completion %v differs from pod 0 %v", i, doneSpread[i], doneSpread[0])
		}
	}

	s2 := defaultSystem(t)
	loc := l.FrameLocation(0, 0, 0)
	first := s2.Access(loc, false, 0)
	var last clock.Time
	for i := 0; i < 4; i++ {
		last = s2.Access(loc, false, 0)
	}
	if last <= first {
		t.Error("same-channel accesses did not serialize")
	}
}

func TestSingleLevelSystem(t *testing.T) {
	hbmOnly := addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	s, err := New(hbmOnly, dram.HBM(), dram.DDR4_1600())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumChannels() != 8 {
		t.Fatalf("channels = %d", s.NumChannels())
	}
	done := s.Access(hbmOnly.HomeLocation(0), false, 0)
	if done <= 0 {
		t.Fatal("access did not complete")
	}
	if s.SlowStats().Accesses() != 0 {
		t.Fatal("slow level should be empty")
	}
}

func TestRowLocalityWithinPage(t *testing.T) {
	// Accessing all 32 lines of one page back-to-back: 1 closed-row access
	// then 31 row hits.
	s := defaultSystem(t)
	l := s.Layout()
	pod, f := l.HomeFrame(0)
	for i := 0; i < addr.LinesPerPage; i++ {
		s.Access(l.FrameLocation(pod, f, i), false, 0)
	}
	fs := s.FastStats()
	if fs.RowHits != 31 || fs.RowClosed != 1 {
		t.Errorf("hits %d closed %d, want 31/1", fs.RowHits, fs.RowClosed)
	}
}
