// Package tracecache shares generated trace snapshots across the
// simulation cells of an experiment matrix.
//
// A matrix runs every workload under every builder, and trace generation
// costs nearly as much as simulating the accesses — so generating each
// (workload, requests, seed) trace once and replaying the packed snapshot
// (trace.Record / Snapshot.Stream) for every cell is close to a free
// factor-of-builders reduction of the front-end cost.
//
// The cache is built for exact lifetimes, not heuristics: every Acquire
// declares the total number of acquisitions the key will ever receive in
// this batch, so the cache can release the snapshot to the recording pool
// the moment the last user is done. Combined with workload-major task
// ordering in internal/exp, peak residency stays O(workers), never
// O(workloads): a bounded pool working in submission order can hold cells
// of at most Parallelism+1 distinct workloads at once.
//
// Generation is single-flight: concurrent Acquires of one key block on the
// first caller's generator instead of generating duplicates.
package tracecache

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/trace"
)

// Key identifies one deterministic generated trace.
type Key struct {
	Workload string
	Requests int
	Seed     int64
}

// Stats counts cache activity. Peak is the residency bound the matrix
// ordering is designed around.
type Stats struct {
	Generated int // snapshots actually recorded (cache misses)
	Hits      int // acquisitions served from a resident snapshot
	Live      int // snapshots currently resident
	Peak      int // maximum snapshots ever resident at once

	// Disk-store activity (zero unless SetDir enabled the store).
	Persisted   int   // snapshots written to the store
	Mapped      int   // snapshots served zero-copy from mapped store files
	MappedBytes int64 // cumulative column bytes mapped instead of copied
}

// Cache is a single-flight, use-counted snapshot cache. The zero value is
// not usable; call New. A Cache may be reused across sequential batches;
// concurrent batches must not share one unless they never share keys
// (the per-key uses contract below is batch-wide).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
	// dir, when non-empty, is the disk store: generated snapshots persist
	// there as MPS1 files, and later misses for the same key reload them —
	// memory-mapped where the platform allows (trace.OpenMapped) — instead
	// of regenerating the trace.
	dir string
}

type entry struct {
	ready    chan struct{} // closed once snap/err are set
	snap     *trace.Snapshot
	err      error
	uses     int // total Acquires this key will receive
	acquired int
	released int
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]*entry)}
}

// SetDir enables the disk-backed snapshot store rooted at dir (which must
// exist). With a store, each key's trace is generated at most once per
// store lifetime rather than once per batch: a miss first tries the
// store's MPS1 file for the key — opened zero-copy via trace.OpenMapped
// where supported — and only generates (then persists) on a store miss.
// Callers sharing one store directory across processes get the same
// amortization; files are written atomically (temp file + rename), so a
// concurrent reader sees either the old complete file or the new one.
func (c *Cache) SetDir(dir string) {
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
}

// storeName is the store filename for a key: the workload name (escaped —
// mix names are clean, but workload names are data here, not paths) plus
// the request count and seed, which together pin the exact sequence.
func storeName(k Key) string {
	return fmt.Sprintf("%s-r%d-s%d.mps1", url.PathEscape(k.Workload), k.Requests, k.Seed)
}

// openStored tries the store file for key, validating that its recorded
// identity matches (a stale or hand-renamed file regenerates instead of
// silently replaying the wrong trace).
func openStored(path string, key Key) (*trace.Snapshot, bool) {
	s, name, err := trace.OpenMapped(path)
	if err != nil {
		return nil, false
	}
	if name != key.Workload || s.Len() != key.Requests {
		s.Release()
		return nil, false
	}
	return s, true
}

// persist writes the snapshot to the store atomically.
func persist(path, name string, s *trace.Snapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := trace.WriteSnapshot(tmp, name, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// load produces the snapshot for a cache miss: from the disk store when
// one is configured (generating and persisting on a store miss), plainly
// from gen otherwise. The bool reports whether the result is file-mapped.
func (c *Cache) load(key Key, gen func() (*trace.Snapshot, error)) (*trace.Snapshot, bool, error) {
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		s, err := gen()
		return s, false, err
	}
	path := filepath.Join(dir, storeName(key))
	if s, ok := openStored(path, key); ok {
		return s, s.Mapped(), nil
	}
	s, err := gen()
	if err != nil {
		return nil, false, err
	}
	if persist(path, key.Workload, s) == nil {
		c.mu.Lock()
		c.stats.Persisted++
		c.mu.Unlock()
		if ms, ok := openStored(path, key); ok && ms.Mapped() {
			// Serve even the generating batch from the mapping; the heap
			// buffers go straight back to the recording pool.
			s.Release()
			return ms, true, nil
		} else if ok {
			ms.Release()
		}
	}
	// Store write or reopen failed (read-only dir, no mmap): the generated
	// heap snapshot is always a correct answer.
	return s, false, nil
}

// Acquire returns the snapshot for key, recording it via gen if no
// generation is resident or in flight. uses is the total number of
// Acquire calls key will receive over the whole batch — every caller must
// pass the same value — and each successful Acquire must be paired with
// exactly one call of the returned release function. When the last use is
// released the snapshot leaves the cache and its buffers return to the
// recording pool, so callers must not touch the snapshot (or any cursor
// over it) after calling release.
//
// If gen fails, every waiter for the in-flight generation receives the
// error and the entry is forgotten; a later Acquire would retry.
func (c *Cache) Acquire(key Key, uses int, gen func() (*trace.Snapshot, error)) (*trace.Snapshot, func(), error) {
	if uses < 1 {
		return nil, nil, fmt.Errorf("tracecache: uses %d < 1 for %v", uses, key)
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		if e.uses != uses {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("tracecache: conflicting uses for %v: %d then %d", key, e.uses, uses)
		}
		e.acquired++
		if e.acquired > e.uses {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("tracecache: %v acquired more than its declared %d uses", key, e.uses)
		}
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, nil, e.err
		}
		return e.snap, c.releaseFunc(key, e), nil
	}

	e = &entry{ready: make(chan struct{}), uses: uses, acquired: 1}
	c.entries[key] = e
	c.stats.Generated++
	if live := len(c.entries); live > c.stats.Peak {
		c.stats.Peak = live
	}
	c.mu.Unlock()

	snap, mapped, err := c.load(key, gen)
	c.mu.Lock()
	e.snap, e.err = snap, err
	if err != nil {
		delete(c.entries, key)
	} else if mapped {
		c.stats.Mapped++
		c.stats.MappedBytes += int64(snap.Size())
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, nil, err
	}
	return snap, c.releaseFunc(key, e), nil
}

// releaseFunc builds the idempotent release closure for one acquisition.
func (c *Cache) releaseFunc(key Key, e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			e.released++
			if e.released == e.uses {
				delete(c.entries, key)
				e.snap.Release()
			}
		})
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Live = len(c.entries)
	return s
}
