// Package tracecache shares generated trace snapshots across the
// simulation cells of an experiment matrix.
//
// A matrix runs every workload under every builder, and trace generation
// costs nearly as much as simulating the accesses — so generating each
// (workload, requests, seed) trace once and replaying the packed snapshot
// (trace.Record / Snapshot.Stream) for every cell is close to a free
// factor-of-builders reduction of the front-end cost.
//
// The cache is built for exact lifetimes, not heuristics: every Acquire
// declares the total number of acquisitions the key will ever receive in
// this batch, so the cache can release the snapshot to the recording pool
// the moment the last user is done. Combined with workload-major task
// ordering in internal/exp, peak residency stays O(workers), never
// O(workloads): a bounded pool working in submission order can hold cells
// of at most Parallelism+1 distinct workloads at once.
//
// Generation is single-flight: concurrent Acquires of one key block on the
// first caller's generator instead of generating duplicates.
package tracecache

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// Key identifies one deterministic generated trace.
type Key struct {
	Workload string
	Requests int
	Seed     int64
}

// Stats counts cache activity. Peak is the residency bound the matrix
// ordering is designed around.
type Stats struct {
	Generated int // snapshots actually recorded (cache misses)
	Hits      int // acquisitions served from a resident snapshot
	Live      int // snapshots currently resident
	Peak      int // maximum snapshots ever resident at once
}

// Cache is a single-flight, use-counted snapshot cache. The zero value is
// not usable; call New. A Cache may be reused across sequential batches;
// concurrent batches must not share one unless they never share keys
// (the per-key uses contract below is batch-wide).
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
}

type entry struct {
	ready    chan struct{} // closed once snap/err are set
	snap     *trace.Snapshot
	err      error
	uses     int // total Acquires this key will receive
	acquired int
	released int
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[Key]*entry)}
}

// Acquire returns the snapshot for key, recording it via gen if no
// generation is resident or in flight. uses is the total number of
// Acquire calls key will receive over the whole batch — every caller must
// pass the same value — and each successful Acquire must be paired with
// exactly one call of the returned release function. When the last use is
// released the snapshot leaves the cache and its buffers return to the
// recording pool, so callers must not touch the snapshot (or any cursor
// over it) after calling release.
//
// If gen fails, every waiter for the in-flight generation receives the
// error and the entry is forgotten; a later Acquire would retry.
func (c *Cache) Acquire(key Key, uses int, gen func() (*trace.Snapshot, error)) (*trace.Snapshot, func(), error) {
	if uses < 1 {
		return nil, nil, fmt.Errorf("tracecache: uses %d < 1 for %v", uses, key)
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		if e.uses != uses {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("tracecache: conflicting uses for %v: %d then %d", key, e.uses, uses)
		}
		e.acquired++
		if e.acquired > e.uses {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("tracecache: %v acquired more than its declared %d uses", key, e.uses)
		}
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, nil, e.err
		}
		return e.snap, c.releaseFunc(key, e), nil
	}

	e = &entry{ready: make(chan struct{}), uses: uses, acquired: 1}
	c.entries[key] = e
	c.stats.Generated++
	if live := len(c.entries); live > c.stats.Peak {
		c.stats.Peak = live
	}
	c.mu.Unlock()

	snap, err := gen()
	c.mu.Lock()
	e.snap, e.err = snap, err
	if err != nil {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, nil, err
	}
	return snap, c.releaseFunc(key, e), nil
}

// releaseFunc builds the idempotent release closure for one acquisition.
func (c *Cache) releaseFunc(key Key, e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			e.released++
			if e.released == e.uses {
				delete(c.entries, key)
				e.snap.Release()
			}
		})
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Live = len(c.entries)
	return s
}
