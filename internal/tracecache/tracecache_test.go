package tracecache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/trace"
)

// genReqs builds a small deterministic trace for cache tests.
func genReqs(n int, seed int64) []trace.Request {
	reqs := make([]trace.Request, n)
	t := clock.Time(seed)
	for i := range reqs {
		t += clock.Time(10 + i%7)
		reqs[i] = trace.Request{Addr: uint64(seed)<<20 | uint64(i), Time: t, Core: uint8(i % 8)}
	}
	return reqs
}

func snapGen(n int, seed int64, calls *atomic.Int32) func() (*trace.Snapshot, error) {
	return func() (*trace.Snapshot, error) {
		if calls != nil {
			calls.Add(1)
		}
		return trace.Record(trace.NewSliceStream(genReqs(n, seed)), n), nil
	}
}

// TestAcquireSingleFlight hammers one key from many goroutines: exactly
// one generation must happen, and every acquirer must see the same
// snapshot contents.
func TestAcquireSingleFlight(t *testing.T) {
	c := New()
	key := Key{Workload: "mix5", Requests: 256, Seed: 42}
	const users = 16
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, release, err := c.Acquire(key, users, snapGen(256, 42, &calls))
			if err != nil {
				t.Error(err)
				return
			}
			defer release()
			if snap.Len() != 256 {
				t.Errorf("snapshot Len = %d", snap.Len())
			}
			// Replay a prefix to check the snapshot is usable concurrently.
			ss := snap.Stream()
			var r trace.Request
			for j := 0; j < 64; j++ {
				if !ss.Next(&r) {
					t.Error("short replay")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Live != 0 {
		t.Errorf("cache still holds %d snapshots after all releases", st.Live)
	}
	if st.Generated != 1 || st.Hits != users-1 {
		t.Errorf("stats %+v, want 1 generated / %d hits", st, users-1)
	}
}

// TestLastReleaseFrees pins the exact-lifetime contract: the entry stays
// resident until the declared number of uses has been released, then
// leaves immediately.
func TestLastReleaseFrees(t *testing.T) {
	c := New()
	key := Key{Workload: "cactus", Requests: 64, Seed: 1}
	_, rel1, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, rel2, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, rel3, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel1() // idempotent: double release must not count twice
	rel2()
	if live := c.Stats().Live; live != 1 {
		t.Fatalf("entry freed early (live=%d) with one use outstanding", live)
	}
	rel3()
	if live := c.Stats().Live; live != 0 {
		t.Fatalf("entry still live (%d) after last release", live)
	}
}

// TestDistinctKeysDistinctSnapshots checks keys don't collide: different
// seeds yield different recorded contents.
func TestDistinctKeysDistinctSnapshots(t *testing.T) {
	c := New()
	s1, rel1, err := c.Acquire(Key{Workload: "w", Requests: 32, Seed: 1}, 1, snapGen(32, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	s2, rel2, err := c.Acquire(Key{Workload: "w", Requests: 32, Seed: 2}, 1, snapGen(32, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 trace.Request
	ss1, ss2 := s1.Stream(), s2.Stream()
	ss1.Next(&r1)
	ss2.Next(&r2)
	if r1.Addr == r2.Addr {
		t.Error("distinct seeds replayed identical first requests")
	}
	if peak := c.Stats().Peak; peak != 2 {
		t.Errorf("peak %d, want 2", peak)
	}
	rel1()
	rel2()
}

// TestGenerationErrorPropagatesAndForgets checks the failure path: the
// error reaches the acquirer, nothing stays resident, and a retry re-runs
// the generator.
func TestGenerationErrorPropagatesAndForgets(t *testing.T) {
	c := New()
	key := Key{Workload: "broken", Requests: 8, Seed: 9}
	boom := errors.New("boom")
	_, _, err := c.Acquire(key, 2, func() (*trace.Snapshot, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if live := c.Stats().Live; live != 0 {
		t.Fatalf("failed entry still resident (%d)", live)
	}
	snap, release, err := c.Acquire(key, 2, snapGen(8, 9, nil))
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if snap.Len() != 8 {
		t.Errorf("retry snapshot Len = %d", snap.Len())
	}
	release()
}

// TestAcquireContractViolations checks the misuse guards: zero uses,
// conflicting uses, and over-acquiring all error instead of corrupting
// the accounting.
func TestAcquireContractViolations(t *testing.T) {
	c := New()
	key := Key{Workload: "w", Requests: 16, Seed: 3}
	if _, _, err := c.Acquire(key, 0, snapGen(16, 3, nil)); err == nil {
		t.Error("uses=0 accepted")
	}
	_, rel, err := c.Acquire(key, 1, snapGen(16, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Acquire(key, 2, snapGen(16, 3, nil)); err == nil {
		t.Error("conflicting uses accepted")
	}
	if _, _, err := c.Acquire(key, 1, snapGen(16, 3, nil)); err == nil {
		t.Error("acquire beyond declared uses accepted")
	}
	rel()
}
