package tracecache

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/trace"
)

// genReqs builds a small deterministic trace for cache tests.
func genReqs(n int, seed int64) []trace.Request {
	reqs := make([]trace.Request, n)
	t := clock.Time(seed)
	for i := range reqs {
		t += clock.Time(10 + i%7)
		reqs[i] = trace.Request{Addr: uint64(seed)<<20 | uint64(i), Time: t, Core: uint8(i % 8)}
	}
	return reqs
}

func snapGen(n int, seed int64, calls *atomic.Int32) func() (*trace.Snapshot, error) {
	return func() (*trace.Snapshot, error) {
		if calls != nil {
			calls.Add(1)
		}
		return trace.Record(trace.NewSliceStream(genReqs(n, seed)), n), nil
	}
}

// TestAcquireSingleFlight hammers one key from many goroutines: exactly
// one generation must happen, and every acquirer must see the same
// snapshot contents.
func TestAcquireSingleFlight(t *testing.T) {
	c := New()
	key := Key{Workload: "mix5", Requests: 256, Seed: 42}
	const users = 16
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, release, err := c.Acquire(key, users, snapGen(256, 42, &calls))
			if err != nil {
				t.Error(err)
				return
			}
			defer release()
			if snap.Len() != 256 {
				t.Errorf("snapshot Len = %d", snap.Len())
			}
			// Replay a prefix to check the snapshot is usable concurrently.
			ss := snap.Stream()
			var r trace.Request
			for j := 0; j < 64; j++ {
				if !ss.Next(&r) {
					t.Error("short replay")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Live != 0 {
		t.Errorf("cache still holds %d snapshots after all releases", st.Live)
	}
	if st.Generated != 1 || st.Hits != users-1 {
		t.Errorf("stats %+v, want 1 generated / %d hits", st, users-1)
	}
}

// TestLastReleaseFrees pins the exact-lifetime contract: the entry stays
// resident until the declared number of uses has been released, then
// leaves immediately.
func TestLastReleaseFrees(t *testing.T) {
	c := New()
	key := Key{Workload: "cactus", Requests: 64, Seed: 1}
	_, rel1, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, rel2, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, rel3, err := c.Acquire(key, 3, snapGen(64, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel1() // idempotent: double release must not count twice
	rel2()
	if live := c.Stats().Live; live != 1 {
		t.Fatalf("entry freed early (live=%d) with one use outstanding", live)
	}
	rel3()
	if live := c.Stats().Live; live != 0 {
		t.Fatalf("entry still live (%d) after last release", live)
	}
}

// TestDistinctKeysDistinctSnapshots checks keys don't collide: different
// seeds yield different recorded contents.
func TestDistinctKeysDistinctSnapshots(t *testing.T) {
	c := New()
	s1, rel1, err := c.Acquire(Key{Workload: "w", Requests: 32, Seed: 1}, 1, snapGen(32, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	s2, rel2, err := c.Acquire(Key{Workload: "w", Requests: 32, Seed: 2}, 1, snapGen(32, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 trace.Request
	ss1, ss2 := s1.Stream(), s2.Stream()
	ss1.Next(&r1)
	ss2.Next(&r2)
	if r1.Addr == r2.Addr {
		t.Error("distinct seeds replayed identical first requests")
	}
	if peak := c.Stats().Peak; peak != 2 {
		t.Errorf("peak %d, want 2", peak)
	}
	rel1()
	rel2()
}

// TestGenerationErrorPropagatesAndForgets checks the failure path: the
// error reaches the acquirer, nothing stays resident, and a retry re-runs
// the generator.
func TestGenerationErrorPropagatesAndForgets(t *testing.T) {
	c := New()
	key := Key{Workload: "broken", Requests: 8, Seed: 9}
	boom := errors.New("boom")
	_, _, err := c.Acquire(key, 2, func() (*trace.Snapshot, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if live := c.Stats().Live; live != 0 {
		t.Fatalf("failed entry still resident (%d)", live)
	}
	snap, release, err := c.Acquire(key, 2, snapGen(8, 9, nil))
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if snap.Len() != 8 {
		t.Errorf("retry snapshot Len = %d", snap.Len())
	}
	release()
}

// TestAcquireContractViolations checks the misuse guards: zero uses,
// conflicting uses, and over-acquiring all error instead of corrupting
// the accounting.
func TestAcquireContractViolations(t *testing.T) {
	c := New()
	key := Key{Workload: "w", Requests: 16, Seed: 3}
	if _, _, err := c.Acquire(key, 0, snapGen(16, 3, nil)); err == nil {
		t.Error("uses=0 accepted")
	}
	_, rel, err := c.Acquire(key, 1, snapGen(16, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Acquire(key, 2, snapGen(16, 3, nil)); err == nil {
		t.Error("conflicting uses accepted")
	}
	if _, _, err := c.Acquire(key, 1, snapGen(16, 3, nil)); err == nil {
		t.Error("acquire beyond declared uses accepted")
	}
	rel()
}

// TestCacheStressConcurrentClaimants hammers the cache with 100 goroutines
// across a handful of keys, all released from a start barrier at once so
// the single-flight path, the waiter path and the last-release eviction
// all race. The assertions are the cache's two contracts: exactly one
// generation per distinct key (Generated == unique keys, however the
// claimants interleaved), and exact lifetimes (Live == 0 once every
// declared use is released, residency never exceeding the distinct-key
// count). CI runs this under -race, which checks the snapshot handoff
// itself: every claimant replays its snapshot, so a buffer released back
// to the recording pool while still in use is a detected race.
func TestCacheStressConcurrentClaimants(t *testing.T) {
	const (
		keys         = 5
		usersPerKey  = 20
		totalUsers   = keys * usersPerKey
		reqsPerTrace = 64
	)
	c := New()
	var calls atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, totalUsers)
	for k := 0; k < keys; k++ {
		key := Key{Workload: "stress", Requests: reqsPerTrace, Seed: int64(k)}
		want := genReqs(reqsPerTrace, int64(k))
		for u := 0; u < usersPerKey; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				snap, release, err := c.Acquire(key, usersPerKey, snapGen(reqsPerTrace, key.Seed, &calls))
				if err != nil {
					errs <- err
					return
				}
				defer release()
				// Replay the whole snapshot so -race sees any use of a
				// buffer another goroutine's release recycled.
				var r trace.Request
				s, n := snap.Stream(), 0
				for s.Next(&r) {
					if r != want[n] {
						errs <- errors.New("snapshot contents diverged under contention")
						return
					}
					n++
				}
				if n != reqsPerTrace {
					errs <- errors.New("short replay under contention")
				}
			}()
		}
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := c.Stats()
	if int(calls.Load()) != keys || s.Generated != keys {
		t.Errorf("generated %d snapshots (stats say %d), want exactly %d (one per key)",
			calls.Load(), s.Generated, keys)
	}
	if s.Hits != totalUsers-keys {
		t.Errorf("hits = %d, want %d", s.Hits, totalUsers-keys)
	}
	if s.Live != 0 {
		t.Errorf("%d snapshots still resident after every use released", s.Live)
	}
	if s.Peak > keys {
		t.Errorf("peak residency %d exceeds the %d distinct keys", s.Peak, keys)
	}

	// The keys are gone, so a fresh batch over one of them regenerates:
	// eviction must not leave tombstones that serve recycled buffers.
	snap, release, err := c.Acquire(Key{Workload: "stress", Requests: reqsPerTrace, Seed: 0}, 1, snapGen(reqsPerTrace, 0, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != reqsPerTrace {
		t.Errorf("regenerated snapshot has %d requests, want %d", snap.Len(), reqsPerTrace)
	}
	release()
	if got := c.Stats(); got.Generated != keys+1 || got.Live != 0 {
		t.Errorf("after regeneration: %+v, want Generated %d, Live 0", got, keys+1)
	}
}

// storedFiles lists the .mps1 files in a store directory.
func storedFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".mps1") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestStorePersistAndReload exercises the disk store end to end: the
// first cache generates and persists; a second cache over the same
// directory serves the key from the store without calling its generator,
// mapped (with mapped-byte accounting) where the platform supports it.
func TestStorePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	key := Key{Workload: "mix5", Requests: 512, Seed: 7}
	want := genReqs(512, 7)

	c1 := New()
	c1.SetDir(dir)
	var calls1 atomic.Int32
	s1, rel1, err := c1.Acquire(key, 1, snapGen(512, 7, &calls1))
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Collect(s1.Stream())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("first acquire: request %d differs", i)
		}
	}
	rel1()
	if st := c1.Stats(); st.Generated != 1 || st.Persisted != 1 {
		t.Fatalf("first cache stats %+v, want Generated=1 Persisted=1", st)
	}
	if files := storedFiles(t, dir); len(files) != 1 {
		t.Fatalf("store holds %v, want one .mps1 file", files)
	}

	c2 := New()
	c2.SetDir(dir)
	var calls2 atomic.Int32
	s2, rel2, err := c2.Acquire(key, 1, snapGen(512, 7, &calls2))
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if calls2.Load() != 0 {
		t.Fatalf("second cache regenerated (%d generator calls), want store load", calls2.Load())
	}
	got = trace.Collect(s2.Stream())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store reload: request %d differs", i)
		}
	}
	st := c2.Stats()
	if trace.MapSupported() {
		if st.Mapped != 1 || st.MappedBytes != int64(s2.Size()) || !s2.Mapped() {
			t.Fatalf("stats %+v (snapshot mapped=%v), want Mapped=1 MappedBytes=%d", st, s2.Mapped(), s2.Size())
		}
	} else if st.Mapped != 0 {
		t.Fatalf("stats %+v, want Mapped=0 without mmap support", st)
	}
	if st.Persisted != 0 {
		t.Fatalf("stats %+v, want Persisted=0 on a store hit", st)
	}
}

// TestStoreCorruptFileRegenerates corrupts the stored snapshot between
// cache lifetimes: the next acquire must fall back to the generator, and
// the store must end up with a fresh valid file.
func TestStoreCorruptFileRegenerates(t *testing.T) {
	dir := t.TempDir()
	key := Key{Workload: "mix5", Requests: 256, Seed: 3}

	c1 := New()
	c1.SetDir(dir)
	s1, rel1, err := c1.Acquire(key, 1, snapGen(256, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	rel1()
	files := storedFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store holds %v", files)
	}
	path := filepath.Join(dir, files[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	c2.SetDir(dir)
	var calls atomic.Int32
	s2, rel2, err := c2.Acquire(key, 1, snapGen(256, 3, &calls))
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if calls.Load() != 1 {
		t.Fatalf("generator called %d times, want 1 (corrupt store file)", calls.Load())
	}
	want := genReqs(256, 3)
	got := trace.Collect(s2.Stream())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs after regeneration", i)
		}
	}
	if st := c2.Stats(); st.Persisted != 1 {
		t.Fatalf("stats %+v, want the regenerated snapshot re-persisted", st)
	}
}

// TestStoreWrongIdentityRegenerates plants a valid snapshot file whose
// recorded workload does not match the key it is named for: the store
// must refuse it rather than replay the wrong trace.
func TestStoreWrongIdentityRegenerates(t *testing.T) {
	dir := t.TempDir()
	keyA := Key{Workload: "aaa", Requests: 128, Seed: 1}
	keyB := Key{Workload: "bbb", Requests: 128, Seed: 1}

	c1 := New()
	c1.SetDir(dir)
	genA := func() (*trace.Snapshot, error) {
		s := trace.Record(trace.NewSliceStream(genReqs(128, 1)), 128)
		return s, nil
	}
	_, relA, err := c1.Acquire(keyA, 1, genA)
	if err != nil {
		t.Fatal(err)
	}
	relA()
	files := storedFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store holds %v", files)
	}
	// Masquerade keyA's file as keyB's.
	if err := os.Rename(filepath.Join(dir, files[0]), filepath.Join(dir, storeName(keyB))); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	c2.SetDir(dir)
	var calls atomic.Int32
	_, relB, err := c2.Acquire(keyB, 1, snapGen(128, 99, &calls))
	if err != nil {
		t.Fatal(err)
	}
	defer relB()
	if calls.Load() != 1 {
		t.Fatalf("generator called %d times, want 1 (identity mismatch)", calls.Load())
	}
}
