package migrant

import (
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
)

func newMigrant(t *testing.T, cfg Config) *Migrant {
	t.Helper()
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	m, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Epoch: 0, HotThreshold: 8, FaultCost: 0, MaxPending: 1, CounterBits: 8},
		{Epoch: clock.Microsecond, HotThreshold: 0, FaultCost: 0, MaxPending: 1, CounterBits: 8},
		{Epoch: clock.Microsecond, HotThreshold: 8, FaultCost: 2 * clock.Microsecond, MaxPending: 1, CounterBits: 8},
		{Epoch: clock.Microsecond, HotThreshold: 8, FaultCost: 0, MaxPending: 0, CounterBits: 8},
		{Epoch: clock.Microsecond, HotThreshold: 8, FaultCost: 0, MaxPending: 1, CounterBits: 0},
		{Epoch: clock.Microsecond, HotThreshold: 8, FaultCost: 0, MaxPending: 1, CounterBits: 17},
		{Epoch: clock.Microsecond, HotThreshold: 300, FaultCost: 0, MaxPending: 1, CounterBits: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRequiresTwoLevels(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(
		addr.Layout{FastBytes: 1 << 30, FastChannels: 8, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if _, err := New(DefaultConfig(), b); err == nil {
		t.Fatal("single-level layout accepted")
	}
}

func slowPage(l addr.Layout, i int) addr.Page { return l.FastPages() + addr.Page(i) }

// TestHotPageFaultsIn exercises the defining behaviour: the promotion
// triggers mid-epoch, the moment the threshold is crossed plus the fault
// cost — no epoch boundary needed.
func TestHotPageFaultsIn(t *testing.T) {
	m := newMigrant(t, DefaultConfig())
	hot := slowPage(m.layout, 77)
	req := trace.Request{Addr: uint64(hot.Base())}
	other := trace.Request{Addr: uint64(slowPage(m.layout, 5000).Base())}
	at := clock.Time(0)
	// Interleave two pages so the touch filter counts every access.
	for i := 0; i < DefaultConfig().HotThreshold; i++ {
		at += clock.Microsecond
		m.Access(&req, at)
		at += clock.Microsecond
		m.Access(&other, at)
	}
	if m.FrameOfPage(hot) != hot {
		t.Fatal("page moved before the fault cost elapsed")
	}
	// Well within the first epoch, but past the fault cost: promoted.
	m.Access(&other, at+3*clock.Microsecond)
	if got := m.FrameOfPage(hot); got >= m.layout.FastPages() {
		t.Fatalf("hot page still in slow slot %d after fault+copy window", got)
	}
	st := m.Stats()
	if st.Intervals != 0 {
		t.Fatalf("promotion waited for an epoch boundary: %+v", st)
	}
	if st.PageMigrations == 0 || st.GlobalMoveLines != st.LineMigrations {
		t.Fatalf("stats %+v", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBelowThresholdStays verifies the threshold gates promotion and the
// epoch boundary clears the harvested counters.
func TestBelowThresholdStays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 50
	m := newMigrant(t, cfg)
	req := trace.Request{Addr: uint64(slowPage(m.layout, 5).Base())}
	other := trace.Request{Addr: uint64(slowPage(m.layout, 7000).Base())}
	at := clock.Time(0)
	for epoch := 0; epoch < 3; epoch++ {
		// 30 touches per epoch: below threshold 50, and the boundary
		// resets the count so epochs never accumulate.
		for i := 0; i < 30; i++ {
			at += clock.Microsecond
			m.Access(&req, at)
			at += 200 * clock.Nanosecond
			m.Access(&other, at)
		}
		at = clock.Time(cfg.Epoch) * clock.Time(epoch+1)
	}
	if st := m.Stats(); st.PageMigrations != 0 {
		t.Fatalf("below-threshold page migrated: %+v", st)
	}
}

// TestVictimHandSkipsHotResidents drives enough hot pages that promoted
// residents become eviction candidates, and verifies the clock hand never
// evicts a page that is itself hot this epoch.
func TestVictimHandSkipsHotResidents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 4
	m := newMigrant(t, cfg)
	at := clock.Time(0)
	// Promote pages 0..9; keep touching them all so they stay hot.
	for round := 0; round < 12; round++ {
		for i := 0; i < 10; i++ {
			at += 300 * clock.Nanosecond
			req := trace.Request{Addr: uint64(slowPage(m.layout, i).Base())}
			m.Access(&req, at)
		}
	}
	at += 50 * clock.Microsecond
	m.Access(&trace.Request{Addr: 0}, at)
	for i := 0; i < 10; i++ {
		p := slowPage(m.layout, i)
		if m.FrameOfPage(p) >= m.layout.FastPages() {
			t.Fatalf("hot page %d not promoted", i)
		}
		// A promoted page that is still hot must not have been demoted
		// again by a later victim scan within this epoch.
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs the same access pattern twice and requires
// identical stats and placement.
func TestDeterminism(t *testing.T) {
	run := func() (mech.MigStats, addr.Page) {
		m := newMigrant(t, DefaultConfig())
		defer m.Release()
		at := clock.Time(0)
		for i := 0; i < 5000; i++ {
			p := slowPage(m.layout, (i*7)%64)
			at += 150 * clock.Nanosecond
			m.Access(&trace.Request{Addr: uint64(p.Base()), Write: i%3 == 0}, at)
		}
		return m.Stats(), m.FrameOfPage(slowPage(m.layout, 7))
	}
	s1, f1 := run()
	s2, f2 := run()
	if !reflect.DeepEqual(s1, s2) || f1 != f2 {
		t.Fatalf("nondeterministic: %+v/%v vs %+v/%v", s1, f1, s2, f2)
	}
	if s1.PageMigrations == 0 {
		t.Fatal("pattern promoted nothing; test is vacuous")
	}
}

// TestMaxPendingDrops verifies the promotion throttle: with MaxPending 1
// a burst of simultaneous faults drops all but one.
func TestMaxPendingDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPending = 1
	cfg.HotThreshold = 2
	m := newMigrant(t, cfg)
	at := clock.Time(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			at += 10 * clock.Nanosecond
			m.Access(&trace.Request{Addr: uint64(slowPage(m.layout, i).Base())}, at)
		}
	}
	st := m.Stats()
	if st.DroppedMigrations == 0 {
		t.Fatalf("no drops under MaxPending=1: %+v", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
