// Package migrant models a MigrantStore-style OS/virtual-memory-assisted
// migration policy (PAPERS.md): instead of hardware epoch sorting, the OS
// promotes a slow-tier page the moment its access count crosses a hot
// threshold — the software analogue of a minor page fault on a
// watch-marked page — paying a fixed fault-handling cost (fault + TLB
// shootdown) before the copy starts. Access counts come from harvested
// A-bits, cleared every scan epoch, and victims in the fast tier are
// chosen by a second-chance clock hand over the fast frames, exactly the
// machinery a kernel has for free.
//
// The policy's assumptions — migration decisions are worth an OS round
// trip, the slow tier is much slower than the fast one — are what make it
// interesting on the NVM-like and CXL-attached specs the registry ships:
// against DDR4 the fault cost dominates, against PCM it amortizes.
package migrant

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/tab"
	"repro/internal/trace"
)

// Config holds the policy's parameters.
type Config struct {
	// Epoch is the A-bit scan period: counters harvested during an epoch
	// are cleared at its end (default 100 µs).
	Epoch clock.Duration
	// HotThreshold is the epoch access count at which a slow-resident
	// page faults into the migration path (default 8). Promotion triggers
	// the moment the count is reached — event-driven, not sorted at
	// boundaries.
	HotThreshold int
	// FaultCost is the OS overhead between the triggering access and the
	// start of the page copy: fault handling, victim selection and the
	// TLB shootdown (default 2 µs).
	FaultCost clock.Duration
	// MaxPending caps concurrently scheduled promotions; faults beyond it
	// are dropped until copies retire (default 64).
	MaxPending int
	// CounterBits bounds each per-page access counter (default 8).
	CounterBits int
}

// DefaultConfig returns the baseline parameters.
func DefaultConfig() Config {
	return Config{
		Epoch:        100 * clock.Microsecond,
		HotThreshold: 8,
		FaultCost:    2 * clock.Microsecond,
		MaxPending:   64,
		CounterBits:  8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Epoch <= 0:
		return fmt.Errorf("migrant: epoch %d", c.Epoch)
	case c.HotThreshold <= 0:
		return fmt.Errorf("migrant: hot threshold %d", c.HotThreshold)
	case c.FaultCost < 0 || c.FaultCost >= c.Epoch:
		return fmt.Errorf("migrant: fault cost %d outside [0, epoch)", c.FaultCost)
	case c.MaxPending <= 0:
		return fmt.Errorf("migrant: max pending %d", c.MaxPending)
	case c.CounterBits <= 0 || c.CounterBits > 16:
		return fmt.Errorf("migrant: counter width %d", c.CounterBits)
	}
	if max := uint64(1)<<c.CounterBits - 1; uint64(c.HotThreshold) > max {
		return fmt.Errorf("migrant: threshold %d exceeds %d-bit counter", c.HotThreshold, c.CounterBits)
	}
	return nil
}

// swapChunks paces each page copy as 8 chunks of 4 line-pairs, the same
// OS copy-loop pacing HMA models (see mech.Backend.SwapGlobalChunk).
const swapChunks = 8

const linesPerChunk = addr.LinesPerPage / swapChunks

// victimProbes bounds the clock hand's scan per fault; a lap that finds
// only hot or busy frames drops the promotion instead of spinning.
const victimProbes = 64

// queuedSwap is chunk `chunk` of the promotion of `page` into fast slot
// `victim`, starting no earlier than `start`. Chunk 0 rewrites the page
// tables and takes the locks.
type queuedSwap struct {
	start  clock.Time
	page   uint32
	victim uint32
	chunk  uint8
}

// Migrant implements mech.Mechanism.
type Migrant struct {
	cfg     Config
	backend *mech.Backend
	layout  addr.Layout
	geom    *addr.Geom

	counters   *tab.U16Zero // per flat page, this epoch (harvested A-bits)
	counterMax uint16
	remap      *tab.U32       // flat page -> physical slot (flat page index)
	inverted   *tab.U32       // fast slot -> resident flat page
	locks      mech.LockTable // page -> in-flight swap completion
	targeted   *tab.EpochSet  // fast slots already chosen as victims this epoch

	touch       mech.TouchFilter
	next        clock.Time // next epoch boundary
	hand        uint32     // clock-hand position over fast slots
	queue       []queuedSwap
	qpos        int
	pending     int // promotions scheduled but not finished copying
	lastSwapEnd clock.Time
	stats       mech.MigStats

	// plan is non-nil only while AccessColumn is mid-span: drained chunks
	// flush the channels they touch through it before issuing.
	plan *mech.ColumnPlan

	// In-flight swap state across its chunks.
	swapSkip bool
	swapOld  uint32 // slow slot being vacated
	swapRes  uint32 // page being evicted from the fast slot
}

// New builds a Migrant over the backend's two-level memory.
func New(cfg Config, b *mech.Backend) (*Migrant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("migrant: layout is not two-level")
	}
	m := &Migrant{
		cfg:      cfg,
		backend:  b,
		layout:   l,
		geom:     &b.Geom,
		counters: tab.NewU16Zero(int(l.TotalPages())),
		remap:    tab.NewU32(int(l.TotalPages())),
		inverted: tab.NewU32(int(l.FastPages())),
		targeted: tab.NewEpochSet(int(l.FastPages())),
		next:     cfg.Epoch,
	}
	if cfg.CounterBits >= 16 {
		m.counterMax = ^uint16(0)
	} else {
		m.counterMax = uint16(1)<<cfg.CounterBits - 1
	}
	m.targeted.BeginEpoch()
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *Migrant {
	m, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements mech.Mechanism.
func (m *Migrant) Name() string { return "Migrant" }

// Stats implements mech.Mechanism.
func (m *Migrant) Stats() mech.MigStats { return m.stats }

// SharedTouch implements mech.TouchSharer. Migrant is not pod-sharded —
// its promotions cross pods through the global switch — so the engine
// only uses this for differential state checks.
func (m *Migrant) SharedTouch() *mech.TouchFilter { return &m.touch }

// Release implements mech.Releaser; the mechanism must not be used after.
func (m *Migrant) Release() {
	m.counters.Release()
	m.remap.Release()
	m.inverted.Release()
	m.targeted.Release()
	m.counters, m.remap, m.inverted, m.targeted = nil, nil, nil, nil
}

// Access implements mech.Mechanism.
func (m *Migrant) Access(r *trace.Request, at clock.Time) clock.Time {
	page := uint32(addr.PageOf(addr.Addr(r.Addr)))
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	return m.access(r, page, li, at, nil)
}

// AccessDecoded implements mech.DecodedAccessor: identity-remapped pages
// (most of the trace) service at the plane's precomputed home location.
func (m *Migrant) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return m.access(r, uint32(d.Page), int(d.Line), at, d)
}

func (m *Migrant) access(r *trace.Request, page uint32, li int, at clock.Time, d *trace.Decoded) clock.Time {
	for at >= m.next {
		m.runEpoch(m.next)
		m.next += m.cfg.Epoch
	}
	if m.qpos < len(m.queue) && m.queue[m.qpos].start <= at {
		m.drain(at)
	}

	if m.touch.Touch(r.Core, uint64(page)) {
		m.observe(page, at)
	}
	var lockEnd clock.Time
	if end := m.locks.GetActive(uint64(page), at); end != 0 {
		lockEnd = end
		m.stats.LockStalls++
	}
	slot := addr.Page(m.remap.A[page])
	if d != nil && uint64(slot) == uint64(page) {
		// Identity remap: the plane already resolved the home location.
		return clock.Max(m.backend.LineAt(d.Chan, d.Row, r.Write, at), lockEnd)
	}
	pod, f := m.geom.HomeFrame(slot)
	return clock.Max(m.backend.Line(pod, f, li, r.Write, at), lockEnd)
}

// AccessColumn implements mech.ColumnAccessor: the access path with
// demand accesses gathered into per-channel columns, flushed fully at
// epoch boundaries and channel-scoped at queue drains (a drained chunk
// touches exactly two channels; see executeSwap) — the only places the
// policy injects immediate channel traffic.
func (m *Migrant) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	dec := sc.Dec
	plan := m.backend.Plan()
	plan.Begin(done)
	m.plan = plan
	for i := range dec {
		d := &dec[i]
		t := at[i]
		if t >= m.next {
			plan.Flush()
			for t >= m.next {
				m.runEpoch(m.next)
				m.next += m.cfg.Epoch
			}
		}
		if m.qpos < len(m.queue) && m.queue[m.qpos].start <= t {
			m.drain(t)
		}
		page := uint32(d.Page)
		if m.touch.Touch(sc.Cores[i], uint64(page)) {
			m.observe(page, t)
		}
		var lockEnd clock.Time
		if end := m.locks.GetActive(uint64(page), t); end != 0 {
			lockEnd = end
			m.stats.LockStalls++
		}
		done[i] = lockEnd
		if slot := addr.Page(m.remap.A[page]); uint64(slot) == uint64(page) {
			plan.Route(int(d.Chan), uint64(d.Row), sc.Write(i), t, int32(i))
		} else {
			pod, f := m.geom.HomeFrame(slot)
			ch, row := m.backend.LineLoc(pod, f)
			plan.Route(ch, row, sc.Write(i), t, int32(i))
		}
	}
	m.plan = nil
	plan.Flush()
}

// observe bumps the page's epoch counter and, when a slow-resident page
// crosses the hot threshold, schedules its promotion — the event-driven
// fault path that replaces HMA's boundary sort.
func (m *Migrant) observe(page uint32, at clock.Time) {
	c := m.counters.A[page]
	if c >= m.counterMax {
		return
	}
	m.counters.Set(page, c, c+1)
	if uint64(c)+1 != uint64(m.cfg.HotThreshold) {
		return // crosses the threshold exactly once per epoch
	}
	if m.remap.A[page] < uint32(m.geom.FastPagesN()) {
		return // already fast-resident
	}
	m.schedule(page, at)
}

// schedule queues the paced copy of one promotion, fault cost first.
func (m *Migrant) schedule(page uint32, at clock.Time) {
	if m.pending >= m.cfg.MaxPending {
		m.stats.DroppedMigrations++
		return
	}
	if m.locks.GetActive(uint64(page), at) != 0 {
		return // mid-swap already (being demoted); let it settle
	}
	victim, ok := m.pickVictim(at)
	if !ok {
		m.stats.DroppedMigrations++
		return
	}
	m.targeted.Add(victim)
	start := at + clock.Time(m.cfg.FaultCost)
	chunkGap := m.cfg.FaultCost / swapChunks
	for ch := 0; ch < swapChunks; ch++ {
		m.queue = append(m.queue, queuedSwap{
			start:  start + clock.Duration(ch)*chunkGap,
			page:   page,
			victim: victim,
			chunk:  uint8(ch),
		})
	}
	m.pending++
}

// pickVictim advances the second-chance clock hand over the fast slots:
// the first frame whose resident is neither hot this epoch, nor mid-swap,
// nor already targeted is evicted. The scan is bounded; a lap of hot
// frames means the fast tier is saturated and the fault is dropped.
func (m *Migrant) pickVictim(at clock.Time) (uint32, bool) {
	fastPages := uint32(m.geom.FastPagesN())
	probes := victimProbes
	if uint32(probes) > fastPages {
		probes = int(fastPages)
	}
	for i := 0; i < probes; i++ {
		slot := m.hand
		m.hand++
		if m.hand >= fastPages {
			m.hand = 0
		}
		if m.targeted.Has(slot) {
			continue
		}
		resident := m.inverted.A[slot]
		if uint64(m.counters.A[resident]) >= uint64(m.cfg.HotThreshold) {
			continue // second chance: hot resident survives the lap
		}
		if m.locks.GetActive(uint64(resident), at) != 0 {
			continue // mid-swap
		}
		return slot, true
	}
	return 0, false
}

// runEpoch is the A-bit scan boundary: finish the copies still queued,
// clear the harvested counters and reset the victim bookkeeping.
func (m *Migrant) runEpoch(boundary clock.Time) {
	m.stats.Intervals++
	for m.qpos < len(m.queue) {
		m.executeSwap(m.queue[m.qpos])
		m.qpos++
	}
	m.queue = m.queue[:0]
	m.qpos = 0
	m.pending = 0
	m.locks.Sweep(boundary)
	m.counters.Clear()
	m.targeted.BeginEpoch()
	if m.lastSwapEnd < boundary {
		m.lastSwapEnd = boundary
	}
}

// drain executes queued swap chunks whose start time has arrived.
func (m *Migrant) drain(now clock.Time) {
	for m.qpos < len(m.queue) && m.queue[m.qpos].start <= now {
		m.executeSwap(m.queue[m.qpos])
		m.qpos++
		if m.queue[m.qpos-1].chunk == swapChunks-1 && m.pending > 0 {
			m.pending--
		}
	}
}

// executeSwap performs one queued chunk of a promotion through the OS
// datapath. Chunk 0 rewrites the page tables and locks both pages.
func (m *Migrant) executeSwap(sw queuedSwap) {
	if sw.chunk == 0 {
		m.swapSkip = true
		cur := m.remap.A[sw.page]
		if cur < uint32(m.geom.FastPagesN()) {
			return // already promoted
		}
		m.swapSkip = false
		m.swapOld = cur
		m.swapRes = m.inverted.A[sw.victim]
		m.remap.Set(sw.page, sw.victim)
		m.remap.Set(m.swapRes, cur)
		m.inverted.Set(sw.victim, sw.page)
		m.stats.PageMigrations++
	}
	if m.swapSkip {
		return
	}
	// The OS copy crosses the global switch between the two slots'
	// channels; on the column path (m.plan non-nil) the chunk flushes
	// just the channels it touches before issuing.
	lo := int(sw.chunk) * linesPerChunk
	end := m.backend.SwapGlobalChunkPlanned(m.plan, addr.Page(m.swapOld), addr.Page(sw.victim),
		lo, lo+linesPerChunk, sw.start)
	m.stats.LineMigrations += 2 * linesPerChunk
	m.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
	m.stats.GlobalMoveLines += 2 * linesPerChunk
	if end > m.lastSwapEnd {
		m.lastSwapEnd = end
	}
	m.locks.Raise(uint64(sw.page), end)
	m.locks.Raise(uint64(m.swapRes), end)
}

// CheckInvariants verifies that the remap table is a permutation of the
// flat page space and that the inverted table matches it. O(memory);
// intended for tests.
func (m *Migrant) CheckInvariants() error {
	seen := make([]bool, len(m.remap.A))
	for page, slot := range m.remap.A {
		if int(slot) >= len(m.remap.A) {
			return fmt.Errorf("migrant: page %d maps to out-of-range slot %d", page, slot)
		}
		if seen[slot] {
			return fmt.Errorf("migrant: slot %d mapped twice", slot)
		}
		seen[slot] = true
	}
	for slot, page := range m.inverted.A {
		if m.remap.A[page] != uint32(slot) {
			return fmt.Errorf("migrant: inverted[%d]=%d but remap[%d]=%d",
				slot, page, page, m.remap.A[page])
		}
	}
	return nil
}

// FrameOfPage reports the current physical slot of a flat page, for tests.
func (m *Migrant) FrameOfPage(p addr.Page) addr.Page { return addr.Page(m.remap.A[uint32(p)]) }

var (
	_ mech.Mechanism       = (*Migrant)(nil)
	_ mech.DecodedAccessor = (*Migrant)(nil)
	_ mech.TouchSharer     = (*Migrant)(nil)
	_ mech.Releaser        = (*Migrant)(nil)
	_ mech.ColumnAccessor  = (*Migrant)(nil)
)
