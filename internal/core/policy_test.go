package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
	"repro/internal/workload"
)

// An aggressive configuration (many counters, tiny epoch) must hit the
// copy-engine bandwidth cap and drop stale migrations rather than
// scheduling impossible copy rates.
func TestAggressiveConfigDropsMigrations(t *testing.T) {
	cfg := Config{Interval: 25 * clock.Microsecond, Counters: 512, CounterBits: 2}
	m := newTestPod(t, cfg)
	w, _ := workload.Homogeneous("cactus")
	s := w.MustStream(120_000, 5)
	var r trace.Request
	for s.Next(&r) {
		m.Access(&r, r.Time)
	}
	st := m.Stats()
	if st.DroppedMigrations == 0 {
		t.Fatalf("aggressive config dropped nothing: %+v", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The design point must not be throttled: at 50 µs/64 counters the copy
// engine keeps up and nothing is dropped.
func TestDesignPointNotThrottled(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	w, _ := workload.Homogeneous("cactus")
	s := w.MustStream(120_000, 5)
	var r trace.Request
	for s.Next(&r) {
		m.Access(&r, r.Time)
	}
	if st := m.Stats(); st.DroppedMigrations > st.PageMigrations/4 {
		t.Fatalf("design point heavily throttled: %+v", st)
	}
}

// Migration never crosses pods: after any run, every page's current frame
// belongs to the same pod as its home frame (structural, via FrameOf).
func TestMigrationStaysIntraPod(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	w, _ := workload.Mix(3)
	s := w.MustStream(60_000, 8)
	var r trace.Request
	touched := map[addr.Page]bool{}
	for s.Next(&r) {
		m.Access(&r, r.Time)
		touched[addr.PageOf(addr.Addr(r.Addr))] = true
	}
	l := m.layout
	for p := range touched {
		homePod, _ := l.HomeFrame(p)
		curPod, f := m.FrameOf(p)
		if curPod != homePod {
			t.Fatalf("page %d moved from pod %d to pod %d", p, homePod, curPod)
		}
		if uint32(f) >= l.PagesPerPod() {
			t.Fatalf("page %d mapped to out-of-range frame %d", p, f)
		}
	}
}

// MemPod-FC (the exact-counter ablation) migrates at most K pages per pod
// per interval, like the MEA design.
func TestFullCountersRespectsK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Counters = 4
	cfg.UseFullCounters = true
	m := newTestPod(t, cfg)
	l := m.layout
	at := clock.Time(0)
	for i := 0; i < 3000; i++ {
		at += 15 * clock.Nanosecond
		m.Access(&trace.Request{Addr: slowPageAddr(l, i%40)}, at)
	}
	// One interval processed: at most K swaps per pod may have happened.
	m.Access(&trace.Request{Addr: slowPageAddr(l, 0)}, 99*clock.Microsecond)
	if st := m.Stats(); st.PageMigrations > 4*uint64(l.NumPods) {
		t.Fatalf("FC ablation migrated %d pages with K=4", st.PageMigrations)
	}
}
