package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newTestPod(t *testing.T, cfg Config) *MemPod {
	t.Helper()
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	m, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Interval: 0, Counters: 64, CounterBits: 2},
		{Interval: clock.Microsecond, Counters: 0, CounterBits: 2},
		{Interval: clock.Microsecond, Counters: 64, CounterBits: 0},
		{Interval: clock.Microsecond, Counters: 64, CounterBits: 2, CacheBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestNewRejectsSingleLevel(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(
		addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if _, err := New(DefaultConfig(), b); err == nil {
		t.Fatal("MemPod accepted single-level layout")
	}
}

// slowPageAddr returns the byte address of the i'th slow page of pod 0.
func slowPageAddr(l addr.Layout, i int) uint64 {
	p := l.FastPages() + addr.Page(i*l.NumPods) // slow pages of pod 0
	return uint64(p.Base())
}

func TestHotSlowPageMigratesToFast(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	l := m.layout
	hot := addr.PageOf(addr.Addr(slowPageAddr(l, 5)))

	// Hammer one slow page during the first interval.
	at := clock.Time(0)
	for i := 0; i < 200; i++ {
		at += 100 * clock.Nanosecond
		m.Access(&trace.Request{Addr: uint64(hot.Base())}, at)
	}
	if _, f := m.FrameOf(hot); l.IsFastFrame(f) {
		t.Fatal("page migrated before any interval boundary")
	}
	// Cross the boundary.
	m.Access(&trace.Request{Addr: uint64(hot.Base())}, 51*clock.Microsecond)
	if _, f := m.FrameOf(hot); !l.IsFastFrame(f) {
		t.Fatal("hot slow page was not migrated to fast memory")
	}
	st := m.Stats()
	if st.Intervals != 1 || st.PageMigrations < 1 {
		t.Fatalf("stats %+v", st)
	}
	// Bytes are accounted per executed copy chunk, so they never exceed
	// the full-swap volume and always match the moved-line count.
	if st.BytesMoved > st.PageMigrations*2*addr.PageBytes || st.BytesMoved == 0 {
		t.Fatalf("bytes moved %d inconsistent with %d swaps", st.BytesMoved, st.PageMigrations)
	}
	if st.BytesMoved != st.LineMigrations*addr.LineBytes {
		t.Fatalf("bytes %d != %d lines x 64", st.BytesMoved, st.LineMigrations)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationEvictsColdResident(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	l := m.layout
	hot := addr.PageOf(addr.Addr(slowPageAddr(l, 9)))
	at := clock.Time(0)
	for i := 0; i < 100; i++ {
		at += 100 * clock.Nanosecond
		m.Access(&trace.Request{Addr: uint64(hot.Base())}, at)
	}
	m.Access(&trace.Request{Addr: uint64(hot.Base())}, 51*clock.Microsecond)

	_, f := m.FrameOf(hot)
	if !l.IsFastFrame(f) {
		t.Fatal("migration did not happen")
	}
	// The evicted fast page now lives in the hot page's old slow frame.
	pod := l.PodOf(hot)
	evicted := m.pods[pod].remap.A
	_, home := l.HomeFrame(hot)
	// Find the page that ended up in the hot page's home frame.
	found := false
	for local, frame := range evicted {
		if frame == uint32(home) && local != int(uint32(home)) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no page occupies the migrated page's old slow frame")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpToKMigrationsPerInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Counters = 8
	m := newTestPod(t, cfg)
	l := m.layout

	// Hammer 20 distinct slow pages of pod 0; only K=8 can be tracked.
	at := clock.Time(0)
	for i := 0; i < 2000; i++ {
		at += 20 * clock.Nanosecond
		pageIdx := i % 20
		m.Access(&trace.Request{Addr: slowPageAddr(l, pageIdx)}, at)
	}
	m.Access(&trace.Request{Addr: slowPageAddr(l, 0)}, 51*clock.Microsecond)
	if st := m.Stats(); st.PageMigrations > 8 {
		t.Fatalf("pod migrated %d pages in one interval, K=8", st.PageMigrations)
	}
}

func TestVictimSkipsHotResidents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Counters = 4
	m := newTestPod(t, cfg)
	l := m.layout

	// Make fast page of pod 0 frame 0 hot, plus one hot slow page.
	fastHot := addr.Page(0) // home frame 0 of pod 0
	if pod, f := m.FrameOf(fastHot); pod != 0 || f != 0 {
		t.Fatalf("unexpected home of page 0: pod %d frame %d", pod, f)
	}
	slowHot := addr.PageOf(addr.Addr(slowPageAddr(l, 3)))
	at := clock.Time(0)
	for i := 0; i < 300; i++ {
		at += 50 * clock.Nanosecond
		m.Access(&trace.Request{Addr: uint64(fastHot.Base())}, at)
		at += 50 * clock.Nanosecond
		m.Access(&trace.Request{Addr: uint64(slowHot.Base())}, at)
	}
	// Swaps are paced across the epoch; keep accessing so the queue
	// drains (never-started swaps are dropped at the next boundary).
	for t := clock.Time(51 * clock.Microsecond); t < 100*clock.Microsecond; t += clock.Microsecond {
		m.Access(&trace.Request{Addr: uint64(fastHot.Base())}, t)
	}

	// The hot fast page must not have been evicted.
	if _, f := m.FrameOf(fastHot); !l.IsFastFrame(f) {
		t.Fatal("hot fast-resident page was evicted by the victim finder")
	}
	if _, f := m.FrameOf(slowHot); !l.IsFastFrame(f) {
		t.Fatal("hot slow page was not migrated")
	}
}

func TestMigratedPageAccessStallsUntilSwapDone(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	l := m.layout
	hot := addr.PageOf(addr.Addr(slowPageAddr(l, 2)))
	at := clock.Time(0)
	for i := 0; i < 100; i++ {
		at += 100 * clock.Nanosecond
		m.Access(&trace.Request{Addr: uint64(hot.Base())}, at)
	}
	// First access right after the boundary: the swap is in flight, so the
	// completion must be at least the swap's completion.
	boundary := clock.Time(50 * clock.Microsecond)
	done := m.Access(&trace.Request{Addr: uint64(hot.Base())}, boundary)
	if done <= boundary+clock.Time(dram.HBM().RowHitLatency()) {
		t.Fatalf("access during swap completed too fast: %v", done)
	}
	if m.Stats().LockStalls == 0 {
		t.Fatal("no lock stall recorded")
	}
}

func TestMultipleIntervalsCatchUp(t *testing.T) {
	// A large time jump must process all intervening boundaries.
	m := newTestPod(t, DefaultConfig())
	m.Access(&trace.Request{Addr: 0}, 0)
	m.Access(&trace.Request{Addr: 0}, 501*clock.Microsecond)
	if got := m.Stats().Intervals; got != 10 {
		t.Fatalf("intervals processed %d, want 10", got)
	}
}

func TestCacheModelCountsMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 16 << 10
	m := newTestPod(t, cfg)
	l := m.layout
	at := clock.Time(0)
	for i := 0; i < 4000; i++ {
		at += 50 * clock.Nanosecond
		m.Access(&trace.Request{Addr: slowPageAddr(l, i%2000)}, at)
	}
	st := m.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("cache model recorded no misses over a 2000-page scan")
	}
	if st.CacheHits+st.CacheMisses < 4000 {
		t.Fatalf("cache accesses %d < requests", st.CacheHits+st.CacheMisses)
	}
	// A cached run must be slower than an uncached one on the same trace.
	m2 := newTestPod(t, DefaultConfig())
	at = 0
	var sumCached, sumFree clock.Duration
	for i := 0; i < 4000; i++ {
		at += 50 * clock.Nanosecond
		sumFree += m2.Access(&trace.Request{Addr: slowPageAddr(l, i%2000)}, at) - at
	}
	m3 := newTestPod(t, cfg)
	at = 0
	for i := 0; i < 4000; i++ {
		at += 50 * clock.Nanosecond
		sumCached += m3.Access(&trace.Request{Addr: slowPageAddr(l, i%2000)}, at) - at
	}
	if sumCached <= sumFree {
		t.Errorf("cache-modelled run (%v) not slower than free-bookkeeping run (%v)",
			sumCached, sumFree)
	}
}

func TestRemapPermutationUnderRealWorkload(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	w, err := workload.Homogeneous("xalanc")
	if err != nil {
		t.Fatal(err)
	}
	s := w.MustStream(60000, 17)
	var r trace.Request
	for s.Next(&r) {
		m.Access(&r, r.Time)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Intervals == 0 || st.PageMigrations == 0 {
		t.Fatalf("workload drove no migration activity: %+v", st)
	}
}

func TestAccessCompletionAfterArrival(t *testing.T) {
	m := newTestPod(t, DefaultConfig())
	w, _ := workload.Homogeneous("mcf")
	s := w.MustStream(20000, 3)
	var r trace.Request
	for s.Next(&r) {
		if done := m.Access(&r, r.Time); done <= r.Time {
			t.Fatalf("completion %v <= arrival %v", done, r.Time)
		}
	}
}
