package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkMemPodAccess measures the steady-state demand path: tracker
// observation, remap lookup, lock check and the DRAM access, with interval
// boundaries and migrations occurring at their natural rate. The
// acceptance bar for the allocation-free hot path is 0 allocs/op here.
func BenchmarkMemPodAccess(b *testing.B) {
	back := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	m := MustNew(DefaultConfig(), back)
	defer m.Release()

	prof, ok := workload.ByName("cactus")
	if !ok {
		b.Fatal("profile cactus not found")
	}
	gen, err := workload.NewGenerator(prof, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the stream so the generator is out of the loop.
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		gen.Next(&reqs[i])
	}

	// Warm up past the first interval boundaries so steady state includes
	// a populated remap table and live migration queues.
	at := clock.Time(0)
	for i := range reqs[:1 << 14] {
		m.Access(&reqs[i], clock.Max(at, reqs[i].Time))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &reqs[i&(1<<16-1)]
		if r.Time > at {
			at = r.Time
		}
		m.Access(r, at)
	}
}
