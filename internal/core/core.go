package core
