// Package core implements MemPod, the paper's clustered migration
// mechanism (§5).
//
// Memory controllers are clustered into pods; each pod independently
// tracks the activity of its pages with an MEA unit (internal/mea),
// maintains a remap table plus an inverted table over its fast frames, and
// at every interval migrates up to K hot pages into fast memory by
// swapping them with not-hot fast residents. Migration traffic stays
// inside the pod and contends with demand traffic on the pod's own
// channels; pods migrate in parallel.
package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mea"
	"repro/internal/mech"
	"repro/internal/tab"
	"repro/internal/trace"
)

// Config holds MemPod's design-space parameters (§6.3.1).
type Config struct {
	// Interval is the migration epoch length. The paper's design point is
	// 50 µs.
	Interval clock.Duration
	// Counters is K, the number of MEA entries per pod (paper: 64).
	Counters int
	// CounterBits is the saturating counter width (paper: 2).
	CounterBits int
	// CacheBytes is the total on-chip remap-table cache capacity, split
	// evenly over the pods. Zero disables cache modelling (bookkeeping is
	// free), matching the paper's cache-disabled experiments.
	CacheBytes int
	// CacheWays is the cache associativity (default 8).
	CacheWays int
	// UseFullCounters replaces the MEA unit with an exact Full Counters
	// tracker (one counter per touched page). This is an ablation, not a
	// buildable design point — it is what MEA's ~12800x storage saving
	// replaces; migrations are still capped at Counters per pod per epoch
	// (the top of the exact ranking).
	UseFullCounters bool
}

// DefaultConfig returns the design point the paper converges on:
// 50 µs intervals, 64 two-bit MEA counters per pod, no cache model.
func DefaultConfig() Config {
	return Config{Interval: 50 * clock.Microsecond, Counters: 64, CounterBits: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("mempod: interval %d", c.Interval)
	case c.Counters <= 0:
		return fmt.Errorf("mempod: %d MEA counters", c.Counters)
	case c.CounterBits <= 0 || c.CounterBits > 64:
		return fmt.Errorf("mempod: counter width %d bits", c.CounterBits)
	case c.CacheBytes < 0:
		return fmt.Errorf("mempod: cache %d bytes", c.CacheBytes)
	}
	return nil
}

// remapEntryBytes is the modelled size of one remap-table entry: a 21-bit
// frame pointer with flags, stored as 4 bytes. Sixteen entries share one
// 64 B backing-store block.
const remapEntryBytes = 4

const entriesPerBlock = mech.BlockBytes / remapEntryBytes

// swapChunks is the number of paced chunks one page swap is issued in:
// 32 line-pairs split into 8 chunks of 4 keeps each copy clump to ~8
// channel accesses, so migration interleaves with demand instead of
// monopolizing a channel per swap.
const swapChunks = 8

const linesPerChunk = addr.LinesPerPage / swapChunks

// schedSwap is one queued unit of migration work: chunk `chunk` of the
// swap promoting `local` into fast memory, starting no earlier than
// `start`. Chunk 0 picks the victim and updates the tables.
type schedSwap struct {
	start clock.Time
	local uint32
	chunk uint8
}

// tracker abstracts the pod's activity-tracking unit: the MEA design or
// the Full Counters ablation.
type tracker interface {
	Observe(p uint64)
	Hot() []mea.Entry
	Reset()
}

// pod is the per-pod state: tracker, remap tables, victim pointer, cache,
// the paced migration queue of the current epoch and in-flight swap locks.
//
// The remap and inverted tables recycle through internal/tab pools, and
// the hot set is kept as an epoch-stamped set over *fast frames* rather
// than a map over hot page IDs: hotFast.Has(v) holds exactly when
// inverted[v] is one of the epoch's hot pages, which is the only question
// victim selection ever asks. The invariant is established when the epoch's
// hot list is read (every hot page already resident in fast memory stamps
// its frame) and maintained at the single place residency changes
// (executeSwap chunk 0 installs a hot page into the victim frame).
type pod struct {
	id       int
	tracker  tracker
	mea      *mea.MEA // tracker's concrete form, nil for Full Counters
	remap    *tab.U32 // home frame (local page ID) -> current frame
	inverted *tab.U32 // fast frame -> resident local page ID
	victim   uint32   // rotating victim-identification pointer
	cache    *mech.Cache

	queue       []schedSwap    // this epoch's migration chunks, paced
	qpos        int            // next queue entry to execute
	hotFast     *tab.EpochSet  // fast frames holding a hot page this epoch
	locks       mech.LockTable // local page -> in-flight swap completion
	cand        []uint32       // reused promotion-candidate buffer
	lastSwapEnd clock.Time     // serializes the pod's migration driver

	// In-flight swap state across its chunks.
	swapSkip     bool   // chunk 0 found nothing to do; skip the rest
	swapVictim   uint32 // fast frame being filled
	swapOld      uint32 // slow frame being vacated
	swapResident uint32 // local page being evicted

	// stats holds this pod's share of the migration counters. Keeping
	// them per pod (summed in Stats) is what lets the engine's
	// pod-parallel path run AccessSharded for different pods concurrently
	// without a shared counter write; the sums are order-independent, so
	// the merged totals are bit-identical to serial accumulation.
	stats mech.MigStats
}

// MemPod is the full mechanism. It implements mech.Mechanism.
type MemPod struct {
	cfg     Config
	backend *mech.Backend
	layout  addr.Layout
	geom    *addr.Geom
	pods    []pod
	touch   mech.TouchFilter
	next    clock.Time // next interval boundary
	// stats holds only the cross-pod counters (Intervals); everything
	// counted on the access path lives in the pods (pod.stats).
	stats mech.MigStats
}

// New builds a MemPod over the backend's two-level memory.
func New(cfg Config, b *mech.Backend) (*MemPod, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("mempod: layout is not two-level")
	}
	if cfg.CacheWays <= 0 {
		cfg.CacheWays = 8
	}
	m := &MemPod{
		cfg:     cfg,
		backend: b,
		layout:  l,
		geom:    &b.Geom,
		pods:    make([]pod, l.NumPods),
		next:    cfg.Interval,
	}
	perPod := int(l.PagesPerPod())
	fast := int(l.FastPagesPerPod())
	for i := range m.pods {
		p := &m.pods[i]
		p.id = i
		if cfg.UseFullCounters {
			p.tracker = mea.NewFullCounters()
		} else {
			p.mea = mea.NewMEA(cfg.Counters, cfg.CounterBits)
			p.tracker = p.mea
		}
		p.remap = tab.NewU32(perPod)
		p.inverted = tab.NewU32(fast)
		p.hotFast = tab.NewEpochSet(fast)
		if cfg.CacheBytes > 0 {
			p.cache = mech.NewCache(cfg.CacheBytes/l.NumPods, cfg.CacheWays)
		}
	}
	return m, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *MemPod {
	m, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements mech.Mechanism.
func (m *MemPod) Name() string {
	if m.cfg.UseFullCounters {
		return "MemPod-FC"
	}
	return "MemPod"
}

// Stats implements mech.Mechanism: the cross-pod counters plus every
// pod's share, merged in pod order (the sums commute, so the result is
// identical however the per-access counters were produced).
func (m *MemPod) Stats() mech.MigStats {
	s := m.stats
	for i := range m.pods {
		s.Merge(m.pods[i].stats)
	}
	return s
}

// Config returns the mechanism's configuration.
func (m *MemPod) Config() Config { return m.cfg }

// Release implements mech.Releaser: the remap, inverted and hot-set
// tables return to their pools for the next simulation cell. The
// mechanism must not be used afterwards.
func (m *MemPod) Release() {
	for i := range m.pods {
		p := &m.pods[i]
		p.remap.Release()
		p.inverted.Release()
		p.hotFast.Release()
		p.remap, p.inverted, p.hotFast = nil, nil, nil
	}
}

// Access implements mech.Mechanism: observe the page in the pod's MEA
// unit, consult the remap table (through the cache model if enabled),
// stall behind any in-flight swap of the page, and forward the line to its
// current frame.
func (m *MemPod) Access(r *trace.Request, at clock.Time) clock.Time {
	page := addr.PageOf(addr.Addr(r.Addr))
	podID, home := m.geom.HomeFrame(page)
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	return m.access(r, uint64(page), podID, uint32(home), li, at, nil)
}

// AccessDecoded implements mech.DecodedAccessor: the home decomposition
// comes from the trace's predecode plane instead of being re-derived, and
// un-migrated pages (the identity remap, i.e. most of the trace) are
// serviced at the plane's precomputed home channel/row.
func (m *MemPod) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return m.access(r, d.Page, int(d.Pod), d.Frame, int(d.Line), at, d)
}

func (m *MemPod) access(r *trace.Request, page uint64, podID int, local uint32, li int, at clock.Time, d *trace.Decoded) clock.Time {
	for at >= m.next {
		m.runInterval(m.next)
		m.next += m.cfg.Interval
	}
	return m.accessPod(&m.pods[podID], r, podID, local, li, at, d, m.touch.Touch(r.Core, page))
}

// Pods implements mech.PodSharded.
func (m *MemPod) Pods() int { return len(m.pods) }

// NextBoundary implements mech.PodSharded.
func (m *MemPod) NextBoundary() clock.Time { return m.next }

// AdvanceBoundary implements mech.PodSharded: the same loop the serial
// access path runs inline, hoisted to the engine's barrier.
func (m *MemPod) AdvanceBoundary(t clock.Time) {
	for t >= m.next {
		m.runInterval(m.next)
		m.next += m.cfg.Interval
	}
}

// SharedTouch implements mech.TouchSharer.
func (m *MemPod) SharedTouch() *mech.TouchFilter { return &m.touch }

// AccessSharded implements mech.PodSharded: the access path with the two
// cross-pod pieces — interval advancement and the touch filter — already
// handled by the caller. Everything it reads or writes below belongs to
// d's pod (tables, locks, cache, queue, per-pod stats) or is immutable
// (geometry, config), and the backend routes the pod's demand,
// bookkeeping and swap traffic onto the pod's own channels, so concurrent
// calls for different pods share nothing mutable.
func (m *MemPod) AccessSharded(r *trace.Request, d *trace.Decoded, at clock.Time, touched bool) clock.Time {
	return m.accessPod(&m.pods[d.Pod], r, int(d.Pod), d.Frame, int(d.Line), at, d, touched)
}

// accessPod is the pod-local tail of the access path, shared by the
// serial and pod-parallel entry points.
func (m *MemPod) accessPod(p *pod, r *trace.Request, podID int, local uint32, li int, at clock.Time, d *trace.Decoded, touched bool) clock.Time {
	// Execute any queued swaps whose paced start time has arrived, so
	// channel traffic stays in time order. The guard is inlined here:
	// most accesses find nothing due, and the call is not free.
	if p.qpos < len(p.queue) && p.queue[p.qpos].start <= at {
		m.drainPod(p, at)
	}

	if touched {
		// Direct dispatch for the common concrete tracker; the interface
		// call is only paid by the Full Counters ablation.
		if p.mea != nil {
			p.mea.Observe(uint64(local))
		} else {
			p.tracker.Observe(uint64(local))
		}
	}

	start := at
	if p.cache != nil {
		block := uint64(local) / entriesPerBlock
		if p.cache.Access(block) {
			p.stats.CacheHits++
		} else {
			p.stats.CacheMisses++
			start = m.backend.BookkeepingRead(podID, block, start)
		}
	}
	var lockEnd clock.Time
	if end := p.locks.GetActive(uint64(local), start); end != 0 {
		// The page's swap is in flight: the request cannot complete
		// before the copy lands. The DRAM access itself still issues
		// now (channel traffic must stay in time order); the lock
		// wait is added to the completion.
		lockEnd = end
		p.stats.LockStalls++
	}

	f := addr.Frame(p.remap.A[local])
	if d != nil && uint32(f) == local {
		// Identity remap: the page still lives in its home frame, whose
		// channel/row the predecode plane already resolved.
		return clock.Max(m.backend.LineAt(d.Chan, d.Row, r.Write, start), lockEnd)
	}
	return clock.Max(m.backend.Line(podID, f, li, r.Write, start), lockEnd)
}

// AccessColumn implements mech.ColumnAccessor: the serial access path
// with demand accesses gathered into per-channel columns. Flush points
// mirror every place the per-request path injects immediate channel
// traffic — interval boundaries (full flush: every pod drains) and due
// swap drains (pod-scoped: a drain only touches its pod's channels, so
// only those columns flush and the other pods' keep accumulating) — so
// the columns' channels see exactly the per-request state. With the
// bookkeeping cache enabled a miss chains a read into the demand's
// issue time, which a column cannot express; that configuration keeps
// the per-request path.
func (m *MemPod) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	dec := sc.Dec
	if m.cfg.CacheBytes > 0 {
		for i := range dec {
			r := sc.Request(i)
			done[i] = m.AccessDecoded(&r, &dec[i], at[i])
		}
		return
	}
	plan := m.backend.Plan()
	plan.Begin(done)
	for i := range dec {
		d := &dec[i]
		t := at[i]
		if t >= m.next {
			plan.Flush()
			for t >= m.next {
				m.runInterval(m.next)
				m.next += m.cfg.Interval
			}
		}
		p := &m.pods[d.Pod]
		if p.qpos < len(p.queue) && p.queue[p.qpos].start <= t {
			m.backend.FlushPodChannels(plan, int(d.Pod))
			m.drainPod(p, t)
		}
		if m.touch.Touch(sc.Cores[i], d.Page) {
			if p.mea != nil {
				p.mea.Observe(uint64(d.Frame))
			} else {
				p.tracker.Observe(uint64(d.Frame))
			}
		}
		var lockEnd clock.Time
		if end := p.locks.GetActive(uint64(d.Frame), t); end != 0 {
			lockEnd = end
			p.stats.LockStalls++
		}
		done[i] = lockEnd
		if f := p.remap.A[d.Frame]; f == d.Frame {
			plan.Route(int(d.Chan), uint64(d.Row), sc.Write(i), t, int32(i))
		} else {
			ch, row := m.backend.LineLoc(int(d.Pod), addr.Frame(f))
			plan.Route(ch, row, sc.Write(i), t, int32(i))
		}
	}
	plan.Flush()
}

// AccessShardedColumn implements mech.PodShardedColumns: AccessSharded
// over a worker's share of a wavefront segment, routed through the
// worker-private plan. Boundaries are already advanced and the touch
// filter already consulted (sc.Touched), so the only flush points left
// are the worker's own pods' swap drains, each pod-scoped like the
// serial path's (a drain touches only the draining pod's channels).
func (m *MemPod) AccessShardedColumn(sc *mech.ShardedColumn) {
	if m.cfg.CacheBytes > 0 {
		for i := sc.Lo; i < sc.Hi; i++ {
			d := &sc.Dec[i]
			if int(d.Pod)%sc.Workers != sc.Worker {
				continue
			}
			sc.Done[i] = m.AccessSharded(&sc.Reqs[i], d, sc.At[i], sc.Touched[i])
		}
		return
	}
	plan := sc.Plan
	plan.Begin(sc.Done)
	for i := sc.Lo; i < sc.Hi; i++ {
		d := &sc.Dec[i]
		if int(d.Pod)%sc.Workers != sc.Worker {
			continue
		}
		t := sc.At[i]
		p := &m.pods[d.Pod]
		if p.qpos < len(p.queue) && p.queue[p.qpos].start <= t {
			m.backend.FlushPodChannels(plan, int(d.Pod))
			m.drainPod(p, t)
		}
		if sc.Touched[i] {
			if p.mea != nil {
				p.mea.Observe(uint64(d.Frame))
			} else {
				p.tracker.Observe(uint64(d.Frame))
			}
		}
		var lockEnd clock.Time
		if end := p.locks.GetActive(uint64(d.Frame), t); end != 0 {
			lockEnd = end
			p.stats.LockStalls++
		}
		sc.Done[i] = lockEnd
		if f := p.remap.A[d.Frame]; f == d.Frame {
			plan.Route(int(d.Chan), uint64(d.Row), sc.Reqs[i].Write, t, int32(i))
		} else {
			ch, row := m.backend.LineLoc(int(d.Pod), addr.Frame(f))
			plan.Route(ch, row, sc.Reqs[i].Write, t, int32(i))
		}
	}
	plan.Flush()
}

// drainPod executes the pod's due swaps: every queue entry whose paced
// start is at or before `now`. Swaps serialize through the pod's single
// migration driver (lastSwapEnd).
func (m *MemPod) drainPod(p *pod, now clock.Time) {
	for p.qpos < len(p.queue) && p.queue[p.qpos].start <= now {
		m.executeSwap(p, p.queue[p.qpos])
		p.qpos++
	}
}

// executeSwap runs one chunk of a queued swap. Chunk 0 chooses the victim
// through the rotating finder, updates the remap and inverted tables, and
// locks both pages; each chunk injects its share of the copy traffic and
// advances the locks to its completion.
func (m *MemPod) executeSwap(p *pod, sw schedSwap) {
	if sw.chunk == 0 {
		p.swapSkip = true
		cur := p.remap.A[sw.local]
		if m.geom.IsFastFrame(addr.Frame(cur)) {
			return // already resident in fast memory
		}
		v, ok := p.findVictim()
		if !ok {
			return
		}
		p.swapSkip = false
		p.swapVictim = uint32(v)
		p.swapOld = cur
		p.swapResident = p.inverted.A[uint32(v)]

		if p.cache != nil {
			// Remap-table updates go through the cache model too.
			for _, lp := range [2]uint32{sw.local, p.swapResident} {
				block := uint64(lp) / entriesPerBlock
				if p.cache.Access(block) {
					p.stats.CacheHits++
				} else {
					p.stats.CacheMisses++
					t := m.backend.BookkeepingRead(p.id, block, sw.start)
					if t > p.lastSwapEnd {
						p.lastSwapEnd = t
					}
				}
			}
		}
		p.remap.Set(sw.local, p.swapVictim)
		p.remap.Set(p.swapResident, cur)
		p.inverted.Set(p.swapVictim, sw.local)
		// The victim frame now holds a page from the epoch's hot set.
		p.hotFast.Add(p.swapVictim)
		p.stats.PageMigrations++
	}
	if p.swapSkip {
		return
	}

	// Chunks issue at their paced schedule; the channels themselves
	// serialize the actual transfers. Issuing at chained completion times
	// would put future-dated requests into the (time-ordered) channel
	// model and corrupt it under congestion.
	lo := int(sw.chunk) * linesPerChunk
	end := m.backend.SwapPagesChunk(p.id, addr.Frame(p.swapOld), addr.Frame(p.swapVictim),
		lo, lo+linesPerChunk, sw.start)
	p.stats.LineMigrations += 2 * linesPerChunk
	p.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
	if end > p.lastSwapEnd {
		p.lastSwapEnd = end
	}
	p.locks.Raise(uint64(sw.local), end)
	p.locks.Raise(uint64(p.swapResident), end)
}

// runInterval performs the boundary work of one epoch: each pod flushes
// any swaps still queued from the previous epoch, reads its MEA hot set,
// schedules up to K promotions paced evenly across the new epoch, and
// resets its tracker. Pods migrate in parallel; swaps within a pod are
// serial through the pod's migration driver.
func (m *MemPod) runInterval(boundary clock.Time) {
	m.stats.Intervals++
	for i := range m.pods {
		p := &m.pods[i]
		// Retire the previous epoch's queue: an in-flight swap (chunk 0
		// already executed) must finish copying, but swaps that never
		// started are stale decisions and are dropped — the migration
		// driver's bandwidth is bounded, and the new epoch's hot set
		// supersedes the old one. (This flush runs against the previous
		// epoch's hotFast set, which is still current here.)
		flushing := p.qpos > 0 && p.queue[p.qpos-1].chunk != swapChunks-1
		for p.qpos < len(p.queue) {
			sw := p.queue[p.qpos]
			if sw.chunk == 0 {
				flushing = false
			}
			if !flushing && sw.chunk == 0 {
				// Peek: never-started swap -> drop all its chunks.
				p.qpos += swapChunks
				p.stats.DroppedMigrations++
				continue
			}
			if sw.start < boundary {
				sw.start = boundary
			}
			m.executeSwap(p, sw)
			p.qpos++
		}
		p.locks.Sweep(boundary)

		hot := p.tracker.Hot()
		if len(hot) > m.cfg.Counters {
			// The Full Counters ablation ranks every page; migration
			// bandwidth stays capped at K per pod per epoch.
			hot = hot[:m.cfg.Counters]
		}
		// Split the hot list by residency in one pass: pages already in
		// fast memory stamp their frame hot (re-establishing the hotFast
		// invariant for the new epoch), the rest are promotion candidates.
		p.hotFast.BeginEpoch()
		cand := p.cand[:0]
		for _, e := range hot {
			local := uint32(e.Page)
			if f := p.remap.A[local]; m.geom.IsFastFrame(addr.Frame(f)) {
				p.hotFast.Add(f)
				continue // already resident in fast memory
			}
			cand = append(cand, local)
		}
		// The pod's copy engine has finite bandwidth: one page swap keeps
		// a DDR channel busy for roughly minSwapTime, and the engine may
		// still be working off the previous epoch. Schedule only as many
		// swaps as fit into the epoch's remaining copy time, paced so the
		// engine is never asked to exceed its rate; the rest of the hot
		// set is dropped (it will be re-identified if still hot). Without
		// this feedback, aggressive configurations (many counters x short
		// epochs, Figure 6's corners) would demand physically impossible
		// copy rates.
		// minSwapTime budgets one swap's channel occupancy (~64 DDR line
		// transfers) plus equal headroom for demand traffic: the copy
		// engine never claims more than about half of the pod's slow
		// channel.
		const minSwapTime = 800 * clock.Nanosecond
		slotBase := boundary
		if p.lastSwapEnd > slotBase {
			slotBase = p.lastSwapEnd
		}
		avail := boundary + m.cfg.Interval - slotBase
		if avail < 0 {
			avail = 0
		}
		maxSwaps := int(avail / minSwapTime)
		if len(cand) > maxSwaps {
			p.stats.DroppedMigrations += uint64(len(cand) - maxSwaps)
			cand = cand[:maxSwaps]
		}
		p.cand = cand

		p.queue = p.queue[:0]
		p.qpos = 0
		if len(cand) > 0 {
			spacing := avail / clock.Duration(len(cand)+1)
			if spacing < minSwapTime {
				spacing = minSwapTime
			}
			chunkSpacing := spacing / swapChunks
			for idx, local := range cand {
				slot := slotBase + clock.Duration(idx)*spacing
				for ch := 0; ch < swapChunks; ch++ {
					p.queue = append(p.queue, schedSwap{
						start: slot + clock.Duration(ch)*chunkSpacing,
						local: local,
						chunk: uint8(ch),
					})
				}
			}
		}
		if p.lastSwapEnd < boundary {
			p.lastSwapEnd = boundary
		}
		p.tracker.Reset()
	}
}

// findVictim returns the next fast frame whose resident page is not in the
// epoch's hot set, advancing the rotating pointer; ok is false if every
// fast frame currently holds a hot page (possible only when K approaches
// the fast capacity of a pod).
func (p *pod) findVictim() (addr.Frame, bool) {
	n := uint32(len(p.inverted.A))
	for scanned := uint32(0); scanned < n; scanned++ {
		v := p.victim
		if p.victim++; p.victim == n {
			p.victim = 0
		}
		if !p.hotFast.Has(v) {
			return addr.Frame(v), true
		}
	}
	return 0, false
}

// FrameOf reports the current frame of a flat-space page, for tests and
// invariant checks.
func (m *MemPod) FrameOf(page addr.Page) (podID int, f addr.Frame) {
	podID, home := m.layout.HomeFrame(page)
	return podID, addr.Frame(m.pods[podID].remap.A[uint32(home)])
}

// CheckInvariants verifies that each pod's remap table is a permutation
// and that the inverted table matches it. It is O(memory) and intended for
// tests.
func (m *MemPod) CheckInvariants() error {
	for i := range m.pods {
		p := &m.pods[i]
		seen := make([]bool, len(p.remap.A))
		for local, f := range p.remap.A {
			if int(f) >= len(p.remap.A) {
				return fmt.Errorf("pod %d: local %d maps to out-of-range frame %d", i, local, f)
			}
			if seen[f] {
				return fmt.Errorf("pod %d: frame %d mapped twice", i, f)
			}
			seen[f] = true
		}
		for f, resident := range p.inverted.A {
			if p.remap.A[resident] != uint32(f) {
				return fmt.Errorf("pod %d: inverted[%d]=%d but remap[%d]=%d",
					i, f, resident, resident, p.remap.A[resident])
			}
		}
	}
	return nil
}

var (
	_ mech.Mechanism         = (*MemPod)(nil)
	_ mech.DecodedAccessor   = (*MemPod)(nil)
	_ mech.Releaser          = (*MemPod)(nil)
	_ mech.ColumnAccessor    = (*MemPod)(nil)
	_ mech.PodShardedColumns = (*MemPod)(nil)
)
