package dram

import (
	"testing"

	"repro/internal/clock"
)

func TestWritesTimedLikeReads(t *testing.T) {
	// The model charges writes the same command/data path as reads.
	r := NewChannel(HBM())
	w := NewChannel(HBM())
	rd := r.Access(0, false, 0)
	wr := w.Access(0, true, 0)
	if rd != wr {
		t.Errorf("read %v vs write %v on identical state", rd, wr)
	}
}

func TestLastFinishTracksLatest(t *testing.T) {
	c := NewChannel(DDR4_1600())
	d1 := c.Access(0, false, 0)
	if c.Stats().LastFinish != d1 {
		t.Error("LastFinish not updated")
	}
	d2 := c.Access(1, false, 0)
	if c.Stats().LastFinish != clock.Max(d1, d2) {
		t.Error("LastFinish not the max completion")
	}
}

func TestBusBusyAccumulates(t *testing.T) {
	c := NewChannel(HBM())
	n := 10
	for i := 0; i < n; i++ {
		c.Access(uint64(i), false, 0)
	}
	want := clock.Duration(n) * HBM().BurstTime()
	if got := c.Stats().BusBusy; got != want {
		t.Errorf("BusBusy %v, want %v", got, want)
	}
}

func TestRASConstraintDelaysConflict(t *testing.T) {
	// A conflict immediately after activation must wait out tRAS before
	// precharging; a conflict long after must not.
	spec := HBM()
	early := NewChannel(spec)
	early.Access(0, false, 0) // activates row 0 at ~t=0
	eDone := early.Access(uint64(spec.Banks), false, 1*clock.Nanosecond)

	late := NewChannel(spec)
	late.Access(0, false, 0)
	base := clock.Time(clock.Microsecond)
	lDone := late.Access(uint64(spec.Banks), false, base) - base

	if eDone-1*clock.Nanosecond <= lDone {
		t.Errorf("early conflict (%v) not delayed vs late conflict (%v)",
			eDone-1*clock.Nanosecond, lDone)
	}
}

func TestFutureSpecsServiceFaster(t *testing.T) {
	run := func(s Spec) clock.Time {
		c := NewChannel(s)
		var done clock.Time
		for i := 0; i < 200; i++ {
			done = c.Access(uint64(i%64), i%3 == 0, clock.Time(i)*10*clock.Nanosecond)
		}
		return done
	}
	if run(HBMOverclocked()) >= run(HBM()) {
		t.Error("overclocked HBM not faster under load")
	}
	if run(DDR4_2400()) >= run(DDR4_1600()) {
		t.Error("DDR4-2400 not faster under load")
	}
}

func TestClosedPagePolicy(t *testing.T) {
	spec := HBM()
	spec.Policy = ClosedPage
	c := NewChannel(spec)
	// Back-to-back same-row accesses: under closed-page every access pays
	// the activation, and no row hits are recorded.
	for i := 0; i < 10; i++ {
		c.Access(0, false, clock.Time(i)*clock.Microsecond)
	}
	s := c.Stats()
	if s.RowHits != 0 {
		t.Errorf("closed-page recorded %d row hits", s.RowHits)
	}
	if s.RowClosed != 10 {
		t.Errorf("closed-page rowClosed %d, want 10", s.RowClosed)
	}
	// And never a conflict: rows are always precharged.
	if s.RowConflicts != 0 {
		t.Errorf("closed-page recorded %d conflicts", s.RowConflicts)
	}
}

func TestOpenBeatsClosedOnLocality(t *testing.T) {
	run := func(p PagePolicy) clock.Time {
		spec := HBM()
		spec.Policy = p
		c := NewChannel(spec)
		var done clock.Time
		at := clock.Time(0)
		for i := 0; i < 100; i++ {
			at += 30 * clock.Nanosecond
			done = c.Access(0, false, at) // perfect row locality
		}
		return done
	}
	if run(OpenPage) >= run(ClosedPage) {
		t.Error("open-page not faster than closed-page under row locality")
	}
}
