package dram

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
)

// batchSpecs are the channel shapes the batch kernel must reproduce
// exactly: both paper specs, refresh enabled, closed-page policy, and a
// non-power-of-two bank count (divisor fallback in the bank decode).
func batchSpecs() []Spec {
	nonPow2 := HBM()
	nonPow2.Name = "HBM-12banks"
	nonPow2.Banks = 12
	closed := DDR4_1600()
	closed.Name = "DDR4-closed"
	closed.Policy = ClosedPage
	return []Spec{
		HBM(),
		DDR4_1600(),
		HBM().WithRefresh(),
		DDR4_1600().WithRefresh(),
		closed,
		nonPow2,
		// Registry presets with behavior the paper pair never exercises:
		// write asymmetry (NVM), a serial link in front of the channel
		// (CXL), both together with refresh, and the small-row mobile part.
		NVMPCM(),
		CXLDDR5(),
		NVMPCM().WithRefresh(),
		CXLDDR5().WithRefresh(),
		LPDDR5_6400(),
		HBM3(),
	}
}

// randomColumn builds a column of n requests with nondecreasing issue
// times (the order AccessBatch is specified for), rows drawn from a small
// range so hits, closed-row activations and conflicts all occur, and
// occasional long gaps so refresh catch-up spans multiple tREFI windows.
func randomColumn(rng *rand.Rand, n int) []BatchReq {
	reqs := make([]BatchReq, n)
	var t clock.Time
	for i := range reqs {
		switch rng.Intn(10) {
		case 0: // long idle gap: several refresh windows pass
			t += clock.Duration(rng.Intn(40_000)) * clock.Nanosecond
		case 1, 2, 3: // short gap
			t += clock.Duration(rng.Intn(50)) * clock.Nanosecond
		}
		reqs[i] = BatchReq{
			Row:   uint64(rng.Intn(64)),
			At:    t,
			Idx:   int32(i),
			Write: rng.Intn(3) == 0,
		}
	}
	return reqs
}

// TestAccessBatchMatchesAccess is the kernel's differential guarantee:
// for every spec shape, a column serviced by AccessBatch leaves the
// channel in the same observable state (counters, completion times,
// LastFinish) as the equivalent sequence of Access calls, including the
// done-as-running-max contract with preloaded completion floors.
func TestAccessBatchMatchesAccess(t *testing.T) {
	for _, spec := range batchSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			ref := NewChannel(spec)
			got := NewChannel(spec)
			// Several columns in a row, with direct Access calls between
			// them, so carried state (bus-free time, refresh horizon, open
			// rows) is exercised across batch boundaries too.
			var t0 clock.Time
			for round := 0; round < 5; round++ {
				reqs := randomColumn(rng, 300)
				for i := range reqs {
					reqs[i].At += t0
				}
				wantDone := make([]clock.Time, len(reqs))
				gotDone := make([]clock.Time, len(reqs))
				for i := range reqs {
					// A nonzero floor on every third slot models the
					// migration-lock release times mechanisms preload.
					if i%3 == 0 {
						floor := reqs[i].At + clock.Duration(rng.Intn(30))*clock.Nanosecond
						wantDone[i] = floor
						gotDone[i] = floor
					}
				}
				for i := range reqs {
					r := &reqs[i]
					if d := ref.Access(r.Row, r.Write, r.At); d > wantDone[r.Idx] {
						wantDone[r.Idx] = d
					}
				}
				got.AccessBatch(reqs, gotDone)
				for i := range wantDone {
					if gotDone[i] != wantDone[i] {
						t.Fatalf("round %d req %d: done %v, want %v", round, i, gotDone[i], wantDone[i])
					}
				}
				if rs, gs := ref.Stats(), got.Stats(); rs != gs {
					t.Fatalf("round %d: stats diverged\nbatch:  %+v\nserial: %+v", round, gs, rs)
				}
				// Interleave a few identical direct accesses before the next
				// column, so LastFinish monotonicity and carried bus state
				// are checked across mixed batch/direct use.
				t0 = wantDone[len(wantDone)-1]
				for i := 0; i < 10; i++ {
					row := uint64(rng.Intn(64))
					at := t0
					t0 = ref.Access(row, i%2 == 0, at)
					if d := got.Access(row, i%2 == 0, at); d != t0 {
						t.Fatalf("round %d: interleaved access diverged (%v != %v)", round, d, t0)
					}
				}
			}
		})
	}
}

// TestAccessBatchEmptyColumn pins the empty-column edge: no state moves,
// and in particular LastFinish is not zeroed.
func TestAccessBatchEmptyColumn(t *testing.T) {
	c := NewChannel(HBM())
	c.Access(5, false, 100)
	before := c.Stats()
	c.AccessBatch(nil, nil)
	if after := c.Stats(); after != before {
		t.Errorf("empty batch changed stats: %+v -> %+v", before, after)
	}
}

func BenchmarkChannelAccessBatch(b *testing.B) {
	for _, spec := range []Spec{HBM(), HBM().WithRefresh()} {
		b.Run(spec.Name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			reqs := randomColumn(rng, 256)
			done := make([]clock.Time, len(reqs))
			c := NewChannel(spec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range done {
					done[j] = 0
				}
				c.AccessBatch(reqs, done)
			}
		})
	}
}
