// Package dram models DRAM channel timing at the fidelity AMMAT depends
// on: per-bank row-buffer state (open-page policy), bank-level parallelism,
// a shared data bus per channel, and the tCAS/tRCD/tRP/tRAS core timing
// parameters from Table 2 of the paper.
//
// The model is analytic rather than command-replay: instead of stepping
// DRAM clock cycles, each request's service time is computed from the
// next-available times of its bank and the channel's data bus. Refresh is
// available as an option (Spec.WithRefresh) and disabled in the baseline
// experiments; tFAW and rank-crossing penalties are not modelled — their
// average effect is small at the paper's request rates and identical
// across the mechanisms being compared, so they cancel out of normalized
// AMMAT.
package dram

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/clock"
)

// PagePolicy selects the controller's row-buffer policy.
type PagePolicy int

// Row-buffer policies.
const (
	OpenPage   PagePolicy = iota // keep rows open between accesses
	ClosedPage                   // auto-precharge after every access
)

// Spec describes one DRAM channel type.
type Spec struct {
	Name string

	// Bus geometry.
	BusFreq  clock.Freq // I/O clock; data moves on both edges (DDR)
	BusBits  int        // data bus width in bits
	Channels int        // channels of this type in the system (informational)

	// Per-channel organization.
	Banks    int // banks per channel (ranks folded in: Table 2 uses 1 rank)
	RowBytes int // row-buffer size

	// Core timing in bus clock cycles.
	CAS int // tCAS: column access strobe latency
	RCD int // tRCD: row-to-column delay
	RP  int // tRP: precharge
	RAS int // tRAS: minimum row-open time

	// Policy selects row-buffer management: open-page (default) leaves
	// the row latched for spatial locality; closed-page auto-precharges
	// after every access, trading hit latency for conflict-free misses.
	Policy PagePolicy

	// Refresh. When RefreshInterval (tREFI) is non-zero, the channel
	// blocks for RefreshTime (tRFC) every tREFI and all rows are closed.
	// The baseline experiments leave refresh disabled (its average effect
	// is identical across mechanisms and cancels out of normalized
	// AMMAT); enable it for absolute-latency studies.
	RefreshInterval clock.Duration // tREFI (0 disables refresh)
	RefreshTime     clock.Duration // tRFC

	// WriteExtra is extra bus cycles added to a write's service latency,
	// for media with asymmetric write cost (phase-change NVM). Zero (all
	// DRAM specs) is bit-identical to the pre-asymmetry model.
	WriteExtra int
	// LinkTime is the one-way traversal latency of a serial link in front
	// of the channel (CXL-attached memory): requests reach the device
	// LinkTime after issue and data returns LinkTime after the device
	// completes. Zero (directly attached) is bit-identical to the
	// pre-link model.
	LinkTime clock.Duration
}

// HBM returns the paper's stacked-memory spec: 1 GHz, 128-bit bus,
// 16 banks, 8 KB rows, 7-7-7-17.
func HBM() Spec {
	return Spec{
		Name:     "HBM",
		BusFreq:  1 * clock.GHz,
		BusBits:  128,
		Channels: 8,
		Banks:    16,
		RowBytes: 8192,
		CAS:      7, RCD: 7, RP: 7, RAS: 17,
	}
}

// DDR4_1600 returns the paper's off-chip memory spec: 800 MHz I/O clock
// (1600 MT/s), 64-bit bus, 16 banks, 8 KB rows, 11-11-11-28.
func DDR4_1600() Spec {
	return Spec{
		Name:     "DDR4-1600",
		BusFreq:  800 * clock.MHz,
		BusBits:  64,
		Channels: 4,
		Banks:    16,
		RowBytes: 8192,
		CAS:      11, RCD: 11, RP: 11, RAS: 28,
	}
}

// HBMOverclocked returns the future-technology stacked memory of §6.3.4:
// the same part run at a 4 GHz I/O clock, widening the fast:slow latency
// differential.
func HBMOverclocked() Spec {
	s := HBM()
	s.Name = "HBM-4GHz"
	s.BusFreq = 4 * clock.GHz
	return s
}

// DDR4_2400 returns the future off-chip memory of §6.3.4: 1200 MHz I/O
// clock (2400 MT/s) with proportionally similar core timing.
func DDR4_2400() Spec {
	return Spec{
		Name:     "DDR4-2400",
		BusFreq:  1200 * clock.MHz,
		BusBits:  64,
		Channels: 4,
		Banks:    16,
		RowBytes: 8192,
		CAS:      16, RCD: 16, RP: 16, RAS: 39,
	}
}

// Named validation errors. Validate wraps these with the offending spec's
// name and values, so callers can match the failure class with errors.Is.
var (
	ErrBusFreq     = errors.New("dram: bus frequency must be positive")
	ErrBusBits     = errors.New("dram: bus width must be a positive multiple of 8 bits")
	ErrBanks       = errors.New("dram: bank count must be positive")
	ErrRowBytes    = errors.New("dram: row size must be a power-of-two multiple of 64 bytes")
	ErrTiming      = errors.New("dram: core timing parameters must be positive")
	ErrTimingOrder = errors.New("dram: tCAS exceeds tRC (tRAS+tRP)")
	ErrRefresh     = errors.New("dram: inconsistent refresh timing")
	ErrWriteExtra  = errors.New("dram: write-extra cycles must be non-negative")
	ErrLinkTime    = errors.New("dram: link latency must be non-negative")
)

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch {
	case s.BusFreq <= 0:
		return fmt.Errorf("dram %s: bus frequency %d: %w", s.Name, s.BusFreq, ErrBusFreq)
	case s.BusBits <= 0 || s.BusBits%8 != 0:
		return fmt.Errorf("dram %s: bus width %d bits: %w", s.Name, s.BusBits, ErrBusBits)
	case s.Banks <= 0:
		return fmt.Errorf("dram %s: %d banks: %w", s.Name, s.Banks, ErrBanks)
	case s.RowBytes < 64 || s.RowBytes&(s.RowBytes-1) != 0:
		return fmt.Errorf("dram %s: row %d bytes: %w", s.Name, s.RowBytes, ErrRowBytes)
	case s.CAS <= 0 || s.RCD <= 0 || s.RP <= 0 || s.RAS <= 0:
		return fmt.Errorf("dram %s: non-positive core timing: %w", s.Name, ErrTiming)
	case s.CAS > s.RAS+s.RP:
		return fmt.Errorf("dram %s: tCAS %d > tRC %d: %w", s.Name, s.CAS, s.RAS+s.RP, ErrTimingOrder)
	case s.RefreshInterval < 0 || s.RefreshTime < 0:
		return fmt.Errorf("dram %s: negative refresh timing: %w", s.Name, ErrRefresh)
	case s.RefreshInterval > 0 && s.RefreshTime <= 0:
		return fmt.Errorf("dram %s: refresh enabled with zero tRFC: %w", s.Name, ErrRefresh)
	case s.RefreshInterval > 0 && s.RefreshTime >= s.RefreshInterval:
		return fmt.Errorf("dram %s: tRFC %v >= tREFI %v: %w", s.Name, s.RefreshTime, s.RefreshInterval, ErrRefresh)
	case s.WriteExtra < 0:
		return fmt.Errorf("dram %s: write extra %d cycles: %w", s.Name, s.WriteExtra, ErrWriteExtra)
	case s.LinkTime < 0:
		return fmt.Errorf("dram %s: link latency %v: %w", s.Name, s.LinkTime, ErrLinkTime)
	}
	return nil
}

// Fingerprint returns a stable 64-bit identity of every modelled parameter
// (FNV-1a over the printed struct). Two specs with equal fingerprints are
// field-identical, so the fingerprint can key caches and file identities
// the same way trace sidecars key on the layout's geometry.
func (s Spec) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", s)
	return h.Sum64()
}

// MarshalJSON emits the spec with its exported fields; together with
// LoadSpec it round-trips exactly (all fields are integers).
func (s Spec) MarshalJSON() ([]byte, error) {
	type plain Spec // avoid recursing into this method
	return json.Marshal(plain(s))
}

// LoadSpec decodes a JSON spec (the serialized form of Spec's exported
// fields, e.g. from MarshalJSON) and validates it. Unknown fields are
// rejected so a typo'd parameter cannot silently fall back to zero.
func LoadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("dram: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WithRefresh returns a copy of the spec with refresh enabled using
// typical DDR4/HBM parameters: tREFI = 7.8 µs, tRFC = 350 ns.
func (s Spec) WithRefresh() Spec {
	s.RefreshInterval = 7800 * clock.Nanosecond
	s.RefreshTime = 350 * clock.Nanosecond
	return s
}

// cycles converts n bus cycles to a duration.
func (s Spec) cycles(n int) clock.Duration { return s.BusFreq.Cycles(int64(n)) }

// BurstTime returns the data-bus occupancy of one 64-byte line transfer.
// With double data rate, bytes per cycle = BusBits/8 * 2.
func (s Spec) BurstTime() clock.Duration {
	bytesPerCycle := s.BusBits / 8 * 2
	cyc := (64 + bytesPerCycle - 1) / bytesPerCycle
	return s.cycles(cyc)
}

// RowHitLatency returns the command-to-data latency of a row-buffer hit.
func (s Spec) RowHitLatency() clock.Duration { return s.cycles(s.CAS) }

// RowClosedLatency returns the latency when the bank has no open row.
func (s Spec) RowClosedLatency() clock.Duration { return s.cycles(s.RCD + s.CAS) }

// RowConflictLatency returns the latency when another row is open.
func (s Spec) RowConflictLatency() clock.Duration { return s.cycles(s.RP + s.RCD + s.CAS) }
