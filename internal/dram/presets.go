package dram

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// This file is the declarative spec registry: every memory technology the
// simulator ships is a named Spec value here, selectable by name from
// exp.Config, cmd/mempodsim (-spec) and cmd/experiments instead of being
// compiled into call sites. The paper pair (HBM + DDR4-1600) and the
// §6.3.4 future pair reuse the original constructors, so their presets are
// field-identical to the pre-registry hardwired values — pinned by
// TestPresetPinnedParameters and TestSpecPresetBitIdentical.

// HBM2 returns a second-generation stacked spec: 1.2 GHz I/O (2.4 Gb/s per
// pin), the same 128-bit pseudo-channel bus and 16 banks, with core timing
// scaled to the faster clock (~11.7/11.7/11.7/28 ns).
func HBM2() Spec {
	return Spec{
		Name:     "HBM2",
		BusFreq:  1200 * clock.MHz,
		BusBits:  128,
		Channels: 8,
		Banks:    16,
		RowBytes: 8192,
		CAS:      14, RCD: 14, RP: 14, RAS: 34,
	}
}

// HBM3 returns a third-generation stacked spec: 3.2 GHz I/O clock,
// 128-bit bus, 32 banks. Core latencies in nanoseconds stay roughly flat
// across generations, so the cycle counts grow with the clock.
func HBM3() Spec {
	return Spec{
		Name:     "HBM3",
		BusFreq:  3200 * clock.MHz,
		BusBits:  128,
		Channels: 8,
		Banks:    32,
		RowBytes: 8192,
		CAS:      37, RCD: 37, RP: 37, RAS: 91,
	}
}

// DDR5_4800 returns a DDR5-4800 off-chip spec: 2.4 GHz I/O clock, 64-bit
// channel, 32 banks (8 bank groups), JEDEC 40-39-39-77 timing.
func DDR5_4800() Spec {
	return Spec{
		Name:     "DDR5-4800",
		BusFreq:  2400 * clock.MHz,
		BusBits:  64,
		Channels: 4,
		Banks:    32,
		RowBytes: 8192,
		CAS:      40, RCD: 39, RP: 39, RAS: 77,
	}
}

// LPDDR5_6400 returns a mobile LPDDR5-6400 spec: 3.2 GHz I/O clock over a
// narrow 32-bit channel, 16 banks, and the standard's small 2 KB rows —
// one migration page per row, so the co-location effect disappears and
// the layout's row geometry genuinely differs from the 8 KB parts.
func LPDDR5_6400() Spec {
	return Spec{
		Name:     "LPDDR5-6400",
		BusFreq:  3200 * clock.MHz,
		BusBits:  32,
		Channels: 4,
		Banks:    16,
		RowBytes: 2048,
		CAS:      36, RCD: 36, RP: 42, RAS: 87,
	}
}

// NVMPCM returns an NVM-like (phase-change) tier: DDR4-class bus, 4 KB
// rows, a slow activation (media read ~120 ns dominates tRCD) and a
// strongly asymmetric write — WriteExtra adds ~500 ns of media programming
// to every write. The MigrantStore-style OS migration policy targets
// exactly this kind of slow tier.
func NVMPCM() Spec {
	return Spec{
		Name:     "NVM-PCM",
		BusFreq:  800 * clock.MHz,
		BusBits:  64,
		Channels: 4,
		Banks:    16,
		RowBytes: 4096,
		CAS:      11, RCD: 96, RP: 11, RAS: 120,
		WriteExtra: 400,
	}
}

// CXLDDR5 returns a CXL-attached DDR5 expansion tier: DDR5-4800 device
// timing behind a serial link with ~100 ns one-way traversal (controller,
// flit packing and retimer latency), so every access pays the round trip
// on top of the device's own service time.
func CXLDDR5() Spec {
	s := DDR5_4800()
	s.Name = "CXL-DDR5"
	s.LinkTime = 100 * clock.Nanosecond
	return s
}

// presets maps canonical preset names to their constructors, and aliases
// lets the common shorthand (DDR4, DDR5, NVM, CXL) resolve to a canonical
// preset. Lookup is case-insensitive.
var presets = map[string]func() Spec{
	"HBM":         HBM,
	"HBM-4GHz":    HBMOverclocked,
	"HBM2":        HBM2,
	"HBM3":        HBM3,
	"DDR4-1600":   DDR4_1600,
	"DDR4-2400":   DDR4_2400,
	"DDR5-4800":   DDR5_4800,
	"LPDDR5-6400": LPDDR5_6400,
	"NVM-PCM":     NVMPCM,
	"CXL-DDR5":    CXLDDR5,
}

var aliases = map[string]string{
	"DDR4":   "DDR4-1600",
	"DDR5":   "DDR5-4800",
	"LPDDR5": "LPDDR5-6400",
	"NVM":    "NVM-PCM",
	"CXL":    "CXL-DDR5",
}

// PresetNames returns the canonical preset names, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Presets returns every registered spec, in PresetNames order.
func Presets() []Spec {
	names := PresetNames()
	out := make([]Spec, len(names))
	for i, n := range names {
		out[i] = presets[n]()
	}
	return out
}

// Preset resolves a preset by canonical name or alias (case-insensitive).
// Unknown names return an error listing the valid options.
func Preset(name string) (Spec, error) {
	key := resolvePresetKey(name)
	if key == "" {
		return Spec{}, fmt.Errorf("dram: unknown spec %q (valid: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return presets[key](), nil
}

// resolvePresetKey maps a user-supplied name to its canonical registry
// key, or "" when unknown.
func resolvePresetKey(name string) string {
	for canonical := range presets {
		if strings.EqualFold(name, canonical) {
			return canonical
		}
	}
	for alias, canonical := range aliases {
		if strings.EqualFold(name, alias) {
			return canonical
		}
	}
	return ""
}

// MustPreset is Preset for known-good names; it panics on error.
func MustPreset(name string) Spec {
	s, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return s
}
