package dram

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/clock"
)

// TestPresetPinnedParameters pins the registry entries that predate the
// registry to the exact hardwired values the original constructors
// compiled: moving them behind Preset() must not change a single field.
func TestPresetPinnedParameters(t *testing.T) {
	pinned := []struct {
		name string
		want Spec
	}{
		{"HBM", Spec{
			Name: "HBM", BusFreq: 1 * clock.GHz, BusBits: 128, Channels: 8,
			Banks: 16, RowBytes: 8192, CAS: 7, RCD: 7, RP: 7, RAS: 17,
		}},
		{"DDR4-1600", Spec{
			Name: "DDR4-1600", BusFreq: 800 * clock.MHz, BusBits: 64, Channels: 4,
			Banks: 16, RowBytes: 8192, CAS: 11, RCD: 11, RP: 11, RAS: 28,
		}},
		{"HBM-4GHz", Spec{
			Name: "HBM-4GHz", BusFreq: 4 * clock.GHz, BusBits: 128, Channels: 8,
			Banks: 16, RowBytes: 8192, CAS: 7, RCD: 7, RP: 7, RAS: 17,
		}},
		{"DDR4-2400", Spec{
			Name: "DDR4-2400", BusFreq: 1200 * clock.MHz, BusBits: 64, Channels: 4,
			Banks: 16, RowBytes: 8192, CAS: 16, RCD: 16, RP: 16, RAS: 39,
		}},
	}
	for _, p := range pinned {
		got, err := Preset(p.name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p.want) {
			t.Errorf("Preset(%q) = %+v, want pre-registry %+v", p.name, got, p.want)
		}
	}
}

// TestPresetRegistry covers lookup semantics: every registered preset
// validates, names are canonical and sorted, aliases and case folding
// resolve, and an unknown name produces an error naming the options.
func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if !sortedStrings(names) {
		t.Errorf("PresetNames not sorted: %v", names)
	}
	for _, name := range names {
		s := MustPreset(name)
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("preset %s carries Name %q", name, s.Name)
		}
	}
	for alias, canonical := range map[string]string{
		"DDR4": "DDR4-1600", "DDR5": "DDR5-4800", "LPDDR5": "LPDDR5-6400",
		"NVM": "NVM-PCM", "CXL": "CXL-DDR5", "hbm2": "HBM2", "ddr4-1600": "DDR4-1600",
	} {
		s, err := Preset(alias)
		if err != nil {
			t.Errorf("Preset(%q): %v", alias, err)
			continue
		}
		if s.Name != canonical {
			t.Errorf("Preset(%q) = %s, want %s", alias, s.Name, canonical)
		}
	}
	_, err := Preset("GDDR7")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-preset error %q does not list %s", err, name)
		}
	}
	if len(Presets()) != len(names) {
		t.Errorf("Presets() returned %d specs for %d names", len(Presets()), len(names))
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// TestValidateNamedErrors checks each failure class is matchable with
// errors.Is against its sentinel.
func TestValidateNamedErrors(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		s := HBM()
		f(&s)
		return s
	}
	cases := []struct {
		spec Spec
		want error
	}{
		{mut(func(s *Spec) { s.BusFreq = 0 }), ErrBusFreq},
		{mut(func(s *Spec) { s.BusBits = 12 }), ErrBusBits},
		{mut(func(s *Spec) { s.Banks = 0 }), ErrBanks},
		{mut(func(s *Spec) { s.RowBytes = 3000 }), ErrRowBytes},
		{mut(func(s *Spec) { s.RowBytes = 32 }), ErrRowBytes},
		{mut(func(s *Spec) { s.CAS = 0 }), ErrTiming},
		{mut(func(s *Spec) { s.CAS = s.RAS + s.RP + 1 }), ErrTimingOrder},
		{mut(func(s *Spec) { s.RefreshInterval = -clock.Nanosecond }), ErrRefresh},
		{mut(func(s *Spec) { s.RefreshInterval = clock.Microsecond }), ErrRefresh},
		{mut(func(s *Spec) {
			s.RefreshInterval = clock.Microsecond
			s.RefreshTime = 2 * clock.Microsecond
		}), ErrRefresh},
		{mut(func(s *Spec) { s.WriteExtra = -1 }), ErrWriteExtra},
		{mut(func(s *Spec) { s.LinkTime = -clock.Nanosecond }), ErrLinkTime},
	}
	for i, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("case %d: error %v not matchable to sentinel %v", i, err, c.want)
		}
	}
}

// randomValidSpec draws a spec from the valid parameter space.
func randomValidSpec(rng *rand.Rand) Spec {
	s := Spec{
		Name:     "fuzzed",
		BusFreq:  clock.Freq(rng.Intn(4000)+100) * clock.MHz,
		BusBits:  8 * (1 << rng.Intn(5)), // 8..128
		Channels: rng.Intn(8) + 1,
		Banks:    rng.Intn(64) + 1,
		RowBytes: 64 << rng.Intn(9), // 64..16384
		CAS:      rng.Intn(40) + 1,
		RCD:      rng.Intn(100) + 1,
		RP:       rng.Intn(40) + 1,
		RAS:      rng.Intn(120) + 1,
	}
	if s.CAS > s.RAS+s.RP {
		s.CAS = s.RAS + s.RP
	}
	if rng.Intn(2) == 0 {
		s.WriteExtra = rng.Intn(500)
	}
	if rng.Intn(2) == 0 {
		s.LinkTime = clock.Duration(rng.Intn(200)) * clock.Nanosecond
	}
	if rng.Intn(3) == 0 {
		s = s.WithRefresh()
	}
	if rng.Intn(4) == 0 {
		s.Policy = ClosedPage
	}
	return s
}

// TestSpecLatencyProperties is the property layer over the valid space:
// every validated spec must produce positive, monotonically ordered
// service latencies (hit <= closed <= conflict), a positive burst time,
// and a fingerprint that changes when any timing field changes.
func TestSpecLatencyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		s := randomValidSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("generator produced invalid spec: %v", err)
		}
		hit, closed, conflict := s.RowHitLatency(), s.RowClosedLatency(), s.RowConflictLatency()
		if hit <= 0 || hit > closed || closed > conflict {
			t.Fatalf("latency order violated for %+v: hit %v closed %v conflict %v",
				s, hit, closed, conflict)
		}
		if s.BurstTime() <= 0 {
			t.Fatalf("non-positive burst time for %+v", s)
		}
		mutated := s
		mutated.CAS++
		if mutated.Fingerprint() == s.Fingerprint() {
			t.Fatalf("fingerprint insensitive to CAS for %+v", s)
		}
	}
}

// TestSpecFingerprintDistinct requires all shipped presets to have
// pairwise distinct fingerprints — the property sidecar identity rests on.
func TestSpecFingerprintDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, s := range Presets() {
		fp := s.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("presets %s and %s share fingerprint %x", prev, s.Name, fp)
		}
		seen[fp] = s.Name
	}
}

// TestSpecJSONRoundTrip marshals every preset and reloads it through
// LoadSpec, requiring exact field equality, and checks LoadSpec rejects
// unknown fields and invalid parameter values.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range Presets() {
		data, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadSpec(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: round trip %+v != %+v", s.Name, got, s)
		}
	}
	if _, err := LoadSpec(strings.NewReader(`{"Name":"x","Typo":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadSpec(strings.NewReader(`{"Name":"x","BusFreq":0}`)); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestWriteAsymmetry pins the NVM write model: on an otherwise idle
// channel a write's completion trails a read's by exactly the programmed
// extra cycles, and a spec with WriteExtra=0 is untouched.
func TestWriteAsymmetry(t *testing.T) {
	spec := NVMPCM()
	read := NewChannel(spec).Access(3, false, 0)
	write := NewChannel(spec).Access(3, true, 0)
	extra := spec.BusFreq.Cycles(int64(spec.WriteExtra))
	if write != read+extra {
		t.Fatalf("write %v, read %v: want write = read + %v", write, read, extra)
	}
	sym := spec
	sym.WriteExtra = 0
	if r, w := NewChannel(sym).Access(3, false, 0), NewChannel(sym).Access(3, true, 0); r != w {
		t.Fatalf("WriteExtra=0 but read %v != write %v", r, w)
	}
}

// TestLinkLatency pins the CXL link model: completion shifts by exactly
// one round trip relative to the identical link-less device, for any
// access pattern (device-side contention is computed in device time).
func TestLinkLatency(t *testing.T) {
	linked := CXLDDR5()
	direct := linked
	direct.LinkTime = 0
	cl, cd := NewChannel(linked), NewChannel(direct)
	rng := rand.New(rand.NewSource(9))
	var at clock.Time
	for i := 0; i < 500; i++ {
		at += clock.Duration(rng.Intn(100)) * clock.Nanosecond
		row := uint64(rng.Intn(16))
		write := rng.Intn(3) == 0
		got := cl.Access(row, write, at)
		// The linked device sees the request LinkTime later and its reply
		// travels LinkTime back.
		want := cd.Access(row, write, at+linked.LinkTime) + linked.LinkTime
		if got != want {
			t.Fatalf("access %d: linked %v, want device(+link) %v", i, got, want)
		}
	}
	// Device-side counters are identical; LastFinish differs by exactly the
	// return hop, because the linked channel reports host-side completion.
	sl, sd := cl.Stats(), cd.Stats()
	if sl.LastFinish != sd.LastFinish+linked.LinkTime {
		t.Fatalf("LastFinish %v, want device %v + link %v", sl.LastFinish, sd.LastFinish, linked.LinkTime)
	}
	sl.LastFinish, sd.LastFinish = 0, 0
	if sl != sd {
		t.Fatalf("device-side stats diverged: %+v vs %+v", sl, sd)
	}
}

// FuzzSpecValidate throws arbitrary parameter tuples at Validate and
// checks the accept/reject contract: accepted specs must have coherent
// latencies and survive a JSON round trip; rejected specs must fail with
// one of the named sentinel errors (never a panic or an anonymous error).
func FuzzSpecValidate(f *testing.F) {
	for _, s := range Presets() {
		f.Add(int64(s.BusFreq), s.BusBits, s.Banks, s.RowBytes,
			s.CAS, s.RCD, s.RP, s.RAS, s.WriteExtra, int64(s.LinkTime))
	}
	f.Add(int64(0), 0, 0, 0, 0, 0, 0, 0, 0, int64(0))
	f.Add(int64(-1), 64, 16, 8192, 11, 11, 11, 28, -1, int64(-5))
	f.Add(int64(clock.GHz), 64, 16, 3000, 100, 1, 1, 1, 0, int64(0))
	sentinels := []error{
		ErrBusFreq, ErrBusBits, ErrBanks, ErrRowBytes,
		ErrTiming, ErrTimingOrder, ErrRefresh, ErrWriteExtra, ErrLinkTime,
	}
	f.Fuzz(func(t *testing.T, busFreq int64, busBits, banks, rowBytes,
		cas, rcd, rp, ras, writeExtra int, linkTime int64) {
		s := Spec{
			Name: "fuzz", BusFreq: clock.Freq(busFreq), BusBits: busBits,
			Channels: 1, Banks: banks, RowBytes: rowBytes,
			CAS: cas, RCD: rcd, RP: rp, RAS: ras,
			WriteExtra: writeExtra, LinkTime: clock.Duration(linkTime),
		}
		err := s.Validate()
		if err == nil {
			if s.RowHitLatency() <= 0 || s.RowConflictLatency() < s.RowClosedLatency() {
				t.Fatalf("accepted spec with incoherent latencies: %+v", s)
			}
			data, merr := s.MarshalJSON()
			if merr != nil {
				t.Fatalf("accepted spec fails to marshal: %v", merr)
			}
			if _, lerr := LoadSpec(bytes.NewReader(data)); lerr != nil {
				t.Fatalf("accepted spec fails to reload: %v", lerr)
			}
			return
		}
		for _, sentinel := range sentinels {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("rejection not matchable to a named error: %v", err)
	})
}
