package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestSpecsValidate(t *testing.T) {
	for _, s := range []Spec{HBM(), DDR4_1600(), HBMOverclocked(), DDR4_2400()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Name: "x", BusFreq: 0, BusBits: 64, Banks: 16, RowBytes: 8192, CAS: 1, RCD: 1, RP: 1, RAS: 1},
		{Name: "x", BusFreq: clock.GHz, BusBits: 63, Banks: 16, RowBytes: 8192, CAS: 1, RCD: 1, RP: 1, RAS: 1},
		{Name: "x", BusFreq: clock.GHz, BusBits: 64, Banks: 0, RowBytes: 8192, CAS: 1, RCD: 1, RP: 1, RAS: 1},
		{Name: "x", BusFreq: clock.GHz, BusBits: 64, Banks: 16, RowBytes: 100, CAS: 1, RCD: 1, RP: 1, RAS: 1},
		{Name: "x", BusFreq: clock.GHz, BusBits: 64, Banks: 16, RowBytes: 8192, CAS: 0, RCD: 1, RP: 1, RAS: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPaperTimingValues(t *testing.T) {
	hbm := HBM()
	// 1 GHz bus: 1 cycle = 1 ns. Row hit = 7 ns, conflict = 21 ns.
	if hbm.RowHitLatency() != 7*clock.Nanosecond {
		t.Errorf("HBM hit latency %v, want 7ns", hbm.RowHitLatency())
	}
	if hbm.RowConflictLatency() != 21*clock.Nanosecond {
		t.Errorf("HBM conflict latency %v, want 21ns", hbm.RowConflictLatency())
	}
	// 128-bit DDR bus: 32 B/cycle, 64 B line = 2 cycles = 2 ns.
	if hbm.BurstTime() != 2*clock.Nanosecond {
		t.Errorf("HBM burst %v, want 2ns", hbm.BurstTime())
	}
	ddr := DDR4_1600()
	// 800 MHz bus: 1 cycle = 1.25 ns. Hit = 13.75 ns.
	if ddr.RowHitLatency() != 13_750_000 {
		t.Errorf("DDR hit latency %v", ddr.RowHitLatency())
	}
	// 64-bit DDR bus: 16 B/cycle, 64 B = 4 cycles = 5 ns.
	if ddr.BurstTime() != 5*clock.Nanosecond {
		t.Errorf("DDR burst %v, want 5ns", ddr.BurstTime())
	}
	// The future HBM is strictly faster and widens the differential.
	if HBMOverclocked().RowHitLatency() >= hbm.RowHitLatency() {
		t.Error("overclocked HBM not faster than HBM")
	}
	if DDR4_2400().RowHitLatency() >= ddr.RowHitLatency() {
		t.Error("DDR4-2400 not faster than DDR4-1600")
	}
}

func TestFirstAccessIsRowClosed(t *testing.T) {
	c := NewChannel(HBM())
	done := c.Access(0, false, 0)
	want := HBM().RowClosedLatency() + HBM().BurstTime()
	if done != want {
		t.Errorf("first access done at %v, want %v", done, want)
	}
	s := c.Stats()
	if s.RowClosed != 1 || s.RowHits != 0 || s.RowConflicts != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	mk := func() *Channel { return NewChannel(HBM()) }

	// Same row twice: second is a hit.
	c := mk()
	c.Access(0, false, 0)
	t0 := clock.Time(1 * clock.Millisecond)
	hitDone := c.Access(0, false, t0) - t0

	// Different row, same bank (row + Banks): conflict.
	c2 := mk()
	c2.Access(0, false, 0)
	confDone := c2.Access(uint64(HBM().Banks), false, t0) - t0

	// Different bank: closed-row access, independent of bank 0.
	c3 := mk()
	c3.Access(0, false, 0)
	closedDone := c3.Access(1, false, t0) - t0

	if !(hitDone < closedDone && closedDone < confDone) {
		t.Errorf("latency order violated: hit %v, closed %v, conflict %v",
			hitDone, closedDone, confDone)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	// Two simultaneous requests to different banks should overlap almost
	// fully; to the same bank (different rows) they serialize.
	diff := NewChannel(HBM())
	d1 := diff.Access(0, false, 0)
	d2 := diff.Access(1, false, 0)
	same := NewChannel(HBM())
	s1 := same.Access(0, false, 0)
	s2 := same.Access(16, false, 0) // same bank, different row
	if d1 != s1 {
		t.Fatal("first accesses should match")
	}
	if d2 >= s2 {
		t.Errorf("different-bank access (%v) not faster than same-bank conflict (%v)", d2, s2)
	}
}

func TestBusSerializesBursts(t *testing.T) {
	c := NewChannel(HBM())
	burst := HBM().BurstTime()
	// Saturate with row hits to one row: completions must be spaced by at
	// least the burst time once the pipe fills.
	var prev clock.Time
	c.Access(0, false, 0)
	prev = c.Access(0, false, 0)
	for i := 0; i < 10; i++ {
		done := c.Access(0, false, 0)
		if done-prev < burst {
			t.Fatalf("bursts overlap: %v after %v", done, prev)
		}
		prev = done
	}
}

func TestCompletionNeverBeforeArrival(t *testing.T) {
	c := NewChannel(DDR4_1600())
	rng := rand.New(rand.NewSource(42))
	at := clock.Time(0)
	for i := 0; i < 5000; i++ {
		at += clock.Time(rng.Intn(20)) * clock.Nanosecond
		done := c.Access(rng.Uint64()%100000, rng.Intn(4) == 0, at)
		if done <= at {
			t.Fatalf("request %d: done %v <= arrival %v", i, done, at)
		}
	}
}

// Property: a channel under a fixed access sequence is deterministic, and
// row-hit counts match a reference recomputation of open rows.
func TestChannelDeterministicAndHitAccounting(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		runStats := func() Stats {
			c := NewChannel(HBM())
			rng := rand.New(rand.NewSource(seed))
			at := clock.Time(0)
			for i := 0; i < int(n)+10; i++ {
				at += clock.Time(rng.Intn(30)) * clock.Nanosecond
				c.Access(rng.Uint64()%256, rng.Intn(2) == 0, at)
			}
			return c.Stats()
		}
		a, b := runStats(), runStats()
		if a != b {
			return false
		}
		// Reference hit count.
		rng := rand.New(rand.NewSource(seed))
		open := map[uint64]int64{}
		var hits uint64
		for i := 0; i < int(n)+10; i++ {
			rng.Intn(30)
			row := rng.Uint64() % 256
			rng.Intn(2)
			bankID := row % 16
			bankRow := int64(row / 16)
			if r, ok := open[bankID]; ok && r == bankRow {
				hits++
			}
			open[bankID] = bankRow
		}
		return a.RowHits == hits && a.Accesses() == uint64(n)+10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = Stats{Reads: 8, Writes: 2, RowHits: 5}
	if s.RowHitRate() != 0.5 {
		t.Errorf("hit rate %v, want 0.5", s.RowHitRate())
	}
}

func TestIdle(t *testing.T) {
	c := NewChannel(HBM())
	if !c.Idle(0) {
		t.Error("fresh channel not idle")
	}
	done := c.Access(0, false, 0)
	if c.Idle(done - 1) {
		t.Error("channel idle before completion")
	}
	if !c.Idle(done) {
		t.Error("channel not idle after completion")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c := NewChannel(HBM())
	c.Access(0, false, clock.Time(100*clock.Microsecond))
	if c.Stats().Refreshes != 0 {
		t.Error("refresh fired while disabled")
	}
}

func TestRefreshBlocksAndClosesRows(t *testing.T) {
	spec := HBM().WithRefresh()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	c := NewChannel(spec)
	c.Access(0, false, 0) // opens row 0

	// Just past the first tREFI: the access must wait out tRFC and pay a
	// row re-activation (the refresh closed the row).
	at := spec.RefreshInterval + clock.Nanosecond
	done := c.Access(0, false, at)
	minDone := spec.RefreshInterval + spec.RefreshTime + spec.RowClosedLatency()
	if done < minDone {
		t.Errorf("post-refresh access done at %v, want >= %v", done, minDone)
	}
	if c.Stats().Refreshes != 1 {
		t.Errorf("refreshes = %d", c.Stats().Refreshes)
	}
	if c.Stats().RowHits != 0 {
		t.Error("row hit across a refresh window")
	}
}

func TestRefreshCatchUp(t *testing.T) {
	spec := DDR4_1600().WithRefresh()
	c := NewChannel(spec)
	// Jump ten windows ahead: all must be accounted.
	c.Access(0, false, spec.RefreshInterval*10+clock.Nanosecond)
	if got := c.Stats().Refreshes; got != 10 {
		t.Errorf("refreshes = %d, want 10", got)
	}
}

func TestRefreshValidation(t *testing.T) {
	s := HBM()
	s.RefreshInterval = clock.Microsecond
	if err := s.Validate(); err == nil {
		t.Error("refresh without tRFC accepted")
	}
	s.RefreshTime = 2 * clock.Microsecond
	if err := s.Validate(); err == nil {
		t.Error("tRFC >= tREFI accepted")
	}
}

// refreshLoopReference replays missed refresh windows one at a time — the
// definitional per-window form the arithmetic catch-up in Access replaces.
// Running it on a channel right before an access leaves Access's own
// catch-up nothing to do, so a channel driven through it and one driven
// through Access alone must stay in lockstep if the arithmetic form is
// exact.
func refreshLoopReference(c *Channel, at clock.Time) {
	for c.nextRefresh > 0 && at >= c.nextRefresh {
		refreshEnd := c.nextRefresh + c.spec.RefreshTime
		for i := range c.banks {
			c.banks[i].openRow = -1
			if c.banks[i].nextCmd < refreshEnd {
				c.banks[i].nextCmd = refreshEnd
			}
		}
		if c.busFreeAt < refreshEnd {
			c.busFreeAt = refreshEnd
		}
		c.stats.Refreshes++
		c.nextRefresh += c.spec.RefreshInterval
	}
}

// TestRefreshCatchUpMatchesWindowLoop drives two identical channels with
// the same access sequence — including idle gaps from sub-window to
// multi-second, each spanning hundreds of thousands of tREFI windows —
// and requires completion times and every counter to match between the
// arithmetic catch-up and the per-window reference at each step.
func TestRefreshCatchUpMatchesWindowLoop(t *testing.T) {
	for _, spec := range []Spec{HBM().WithRefresh(), DDR4_1600().WithRefresh()} {
		fast := NewChannel(spec)
		ref := NewChannel(spec)
		rng := rand.New(rand.NewSource(7))
		gaps := []clock.Duration{
			0,
			clock.Microsecond,                 // sub-window
			spec.RefreshInterval,              // exactly one window
			10 * spec.RefreshInterval,         // a handful
			clock.Duration(3 * clock.Second),  // ~384k windows
			clock.Duration(11 * clock.Second), // multi-second idle stretch
		}
		var at clock.Time
		// The reference loop replays every window individually, so the
		// iteration count is modest: multi-second gaps make it walk
		// hundreds of thousands of windows per access.
		for i := 0; i < 250; i++ {
			at += gaps[rng.Intn(len(gaps))] + clock.Duration(rng.Int63n(int64(200*clock.Nanosecond)))
			row := uint64(rng.Intn(64))
			write := rng.Intn(4) == 0

			refreshLoopReference(ref, at)
			gotRef := ref.Access(row, write, at)
			got := fast.Access(row, write, at)
			if got != gotRef {
				t.Fatalf("%s access %d at %v: done %v, reference %v", spec.Name, i, at, got, gotRef)
			}
			if fast.stats != ref.stats {
				t.Fatalf("%s access %d: stats %+v, reference %+v", spec.Name, i, fast.stats, ref.stats)
			}
			if fast.nextRefresh != ref.nextRefresh || fast.busFreeAt != ref.busFreeAt {
				t.Fatalf("%s access %d: nextRefresh/busFreeAt diverged", spec.Name, i)
			}
		}
		if fast.stats.Refreshes == 0 {
			t.Fatalf("%s: sequence exercised no refresh windows", spec.Name)
		}
	}
}

