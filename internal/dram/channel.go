package dram

import "repro/internal/clock"

// Stats accumulates per-channel service counters.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64
	BusBusy      clock.Duration // cumulative data-bus occupancy
	LastFinish   clock.Time     // completion time of the latest request
	Refreshes    uint64         // refresh windows taken (0 unless enabled)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Accesses returns the total number of serviced requests.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

type bank struct {
	openRow     int64 // row index currently latched, -1 if precharged
	nextCmd     clock.Time
	activatedAt clock.Time
}

// Channel models one DRAM channel: a set of banks sharing a data bus.
// Requests are serviced in arrival order with an open-page policy; queueing
// emerges from per-bank and bus next-available times. Channel is not safe
// for concurrent use; the engine drives each simulation single-threaded.
type Channel struct {
	spec  Spec
	banks []bank
	// Cached durations, precomputed once.
	burst       clock.Duration
	latHit      clock.Duration
	latClosed   clock.Duration
	latConflict clock.Duration
	ras         clock.Duration
	rp          clock.Duration

	busFreeAt   clock.Time
	nextRefresh clock.Time // 0 when refresh is disabled
	stats       Stats
}

// NewChannel returns a channel with all banks precharged at time zero.
func NewChannel(spec Spec) *Channel {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	c := &Channel{
		spec:        spec,
		banks:       make([]bank, spec.Banks),
		burst:       spec.BurstTime(),
		latHit:      spec.RowHitLatency(),
		latClosed:   spec.RowClosedLatency(),
		latConflict: spec.RowConflictLatency(),
		ras:         spec.cycles(spec.RAS),
		rp:          spec.cycles(spec.RP),
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	if spec.RefreshInterval > 0 {
		c.nextRefresh = spec.RefreshInterval
	}
	return c
}

// Spec returns the channel's DRAM spec.
func (c *Channel) Spec() Spec { return c.spec }

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// Access services one 64-byte request to the given global row index at or
// after time `at` and returns its completion time (data fully transferred).
//
// Rows interleave across banks (bank = row mod Banks), giving streams
// bank-level parallelism; the row-within-bank keeps row-buffer locality for
// addresses in the same 8 KB row.
func (c *Channel) Access(row uint64, write bool, at clock.Time) clock.Time {
	// Refresh: every tREFI the channel stalls for tRFC with all rows
	// closed. Catch up on any refresh windows the request time passed.
	if c.nextRefresh > 0 && at >= c.nextRefresh {
		for at >= c.nextRefresh {
			refreshEnd := c.nextRefresh + c.spec.RefreshTime
			for i := range c.banks {
				c.banks[i].openRow = -1
				if c.banks[i].nextCmd < refreshEnd {
					c.banks[i].nextCmd = refreshEnd
				}
			}
			if c.busFreeAt < refreshEnd {
				c.busFreeAt = refreshEnd
			}
			c.stats.Refreshes++
			c.nextRefresh += c.spec.RefreshInterval
		}
	}

	b := &c.banks[row%uint64(len(c.banks))]
	bankRow := int64(row / uint64(len(c.banks)))

	start := clock.Max(at, b.nextCmd)
	var lat clock.Duration
	switch {
	case b.openRow == bankRow:
		c.stats.RowHits++
		lat = c.latHit
		// Consecutive hits pipeline: the bank can take another column
		// command one burst later; the shared bus serializes the data.
		b.nextCmd = start + c.burst
	case b.openRow < 0:
		c.stats.RowClosed++
		lat = c.latClosed
		b.activatedAt = start
		b.nextCmd = start + lat
	default:
		c.stats.RowConflicts++
		// Precharge must respect tRAS from the previous activation.
		start = clock.Max(start, b.activatedAt+c.ras)
		lat = c.latConflict
		b.activatedAt = start + c.rp
		b.nextCmd = start + lat
	}
	if c.spec.Policy == ClosedPage {
		// Auto-precharge: the next access to this bank starts from a
		// closed row (its precharge overlaps the data transfer).
		b.openRow = -1
	} else {
		b.openRow = bankRow
	}

	dataReady := start + lat
	busStart := clock.Max(dataReady, c.busFreeAt)
	done := busStart + c.burst
	c.busFreeAt = done

	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.stats.BusBusy += c.burst
	if done > c.stats.LastFinish {
		c.stats.LastFinish = done
	}
	return done
}

// Idle reports whether the channel has no pending bus occupancy at time t.
func (c *Channel) Idle(t clock.Time) bool { return c.busFreeAt <= t }
