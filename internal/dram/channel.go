package dram

import "repro/internal/clock"

// Stats accumulates per-channel service counters.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64
	BusBusy      clock.Duration // cumulative data-bus occupancy
	LastFinish   clock.Time     // completion time of the latest request
	Refreshes    uint64         // refresh windows taken (0 unless enabled)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Accesses returns the total number of serviced requests.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Merge folds another channel's counters into s: sums everywhere except
// LastFinish, which keeps the later of the two completion times. Merging
// per-channel snapshots in any order yields the same aggregate, which is
// what lets pod-disjoint channel sets be simulated concurrently and
// tallied afterwards.
func (s *Stats) Merge(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowClosed += o.RowClosed
	s.RowConflicts += o.RowConflicts
	s.BusBusy += o.BusBusy
	if o.LastFinish > s.LastFinish {
		s.LastFinish = o.LastFinish
	}
	s.Refreshes += o.Refreshes
}

type bank struct {
	openRow     int64 // row index currently latched, -1 if precharged
	nextCmd     clock.Time
	activatedAt clock.Time
}

// Channel models one DRAM channel: a set of banks sharing a data bus.
// Requests are serviced in arrival order with an open-page policy; queueing
// emerges from per-bank and bus next-available times. A Channel is not
// safe for concurrent use, but carries no cross-channel state — refresh
// catch-up is arithmetic on the channel's own clock (see Access), not a
// global tick — so disjoint channel sets may be driven from different
// goroutines concurrently (the pod-parallel engine path relies on this).
type Channel struct {
	spec  Spec
	banks []bank
	// Bank decomposition of a row index, precomputed: every real spec has a
	// power-of-two bank count, turning the per-access div/mod pair into a
	// shift and a mask (with a hardware-division fallback otherwise).
	bankMask  uint64
	bankShift uint8
	bankPow2  bool
	// Cached durations, precomputed once.
	burst       clock.Duration
	latHit      clock.Duration
	latClosed   clock.Duration
	latConflict clock.Duration
	ras         clock.Duration
	rp          clock.Duration
	writeExtra  clock.Duration // extra write service time (NVM asymmetry)
	link        clock.Duration // one-way link traversal (CXL attach)

	busFreeAt clock.Time
	// nextRefresh is refreshNever when refresh is disabled, so the hot
	// path's enabled-and-due test is one comparison.
	nextRefresh clock.Time
	stats       Stats
}

// refreshNever is the nextRefresh sentinel for refresh-disabled channels:
// no request time ever reaches it.
const refreshNever = clock.Time(1<<63 - 1)

// NewChannel returns a channel with all banks precharged at time zero.
func NewChannel(spec Spec) *Channel {
	c := MakeChannel(spec)
	return &c
}

// MakeChannel is NewChannel by value, for callers that keep channels in a
// dense slice (memsys.System) instead of chasing per-channel pointers.
func MakeChannel(spec Spec) Channel {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	c := Channel{
		spec:        spec,
		banks:       make([]bank, spec.Banks),
		burst:       spec.BurstTime(),
		latHit:      spec.RowHitLatency(),
		latClosed:   spec.RowClosedLatency(),
		latConflict: spec.RowConflictLatency(),
		ras:         spec.cycles(spec.RAS),
		rp:          spec.cycles(spec.RP),
		writeExtra:  spec.cycles(spec.WriteExtra),
		link:        spec.LinkTime,
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	if n := uint64(spec.Banks); n&(n-1) == 0 {
		c.bankPow2 = true
		c.bankMask = n - 1
		for q := n; q > 1; q >>= 1 {
			c.bankShift++
		}
	}
	c.nextRefresh = refreshNever
	if spec.RefreshInterval > 0 {
		c.nextRefresh = spec.RefreshInterval
	}
	return c
}

// Spec returns the channel's DRAM spec.
func (c *Channel) Spec() Spec { return c.spec }

// Stats returns a snapshot of the channel's counters. BusBusy is derived
// here rather than accumulated per access: every access occupies the bus
// for exactly one burst.
func (c *Channel) Stats() Stats {
	s := c.stats
	s.BusBusy = clock.Duration(s.Reads+s.Writes) * c.burst
	return s
}

// Access services one 64-byte request to the given global row index at or
// after time `at` and returns its completion time (data fully transferred).
//
// Rows interleave across banks (bank = row mod Banks), giving streams
// bank-level parallelism; the row-within-bank keeps row-buffer locality for
// addresses in the same 8 KB row.
func (c *Channel) Access(row uint64, write bool, at clock.Time) clock.Time {
	// Link-attached channels (CXL): the request reaches the device one
	// link traversal after issue, and the completion returns one traversal
	// after the device finishes. All device-side state (banks, bus,
	// refresh) runs in device-arrival time.
	at += c.link

	// Refresh: every tREFI the channel stalls for tRFC with all rows
	// closed. Catch up on all refresh windows the request time passed in
	// one arithmetic step: successive windows only raise the same floor
	// (each refreshEnd exceeds the last), so applying the final window's
	// end to the banks and bus is identical to replaying every window — a
	// channel idle for seconds catches up in O(banks), not O(windows).
	if at >= c.nextRefresh {
		k := (at-c.nextRefresh)/c.spec.RefreshInterval + 1
		refreshEnd := c.nextRefresh + clock.Duration(k-1)*c.spec.RefreshInterval + c.spec.RefreshTime
		for i := range c.banks {
			c.banks[i].openRow = -1
			if c.banks[i].nextCmd < refreshEnd {
				c.banks[i].nextCmd = refreshEnd
			}
		}
		if c.busFreeAt < refreshEnd {
			c.busFreeAt = refreshEnd
		}
		c.stats.Refreshes += uint64(k)
		c.nextRefresh += clock.Duration(k) * c.spec.RefreshInterval
	}

	var b *bank
	var bankRow int64
	if c.bankPow2 {
		b = &c.banks[row&c.bankMask]
		bankRow = int64(row >> c.bankShift)
	} else {
		b = &c.banks[row%uint64(len(c.banks))]
		bankRow = int64(row / uint64(len(c.banks)))
	}

	start := clock.Max(at, b.nextCmd)
	var lat clock.Duration
	switch {
	case b.openRow == bankRow:
		c.stats.RowHits++
		lat = c.latHit
		// Consecutive hits pipeline: the bank can take another column
		// command one burst later; the shared bus serializes the data.
		b.nextCmd = start + c.burst
	case b.openRow < 0:
		c.stats.RowClosed++
		lat = c.latClosed
		b.activatedAt = start
		b.nextCmd = start + lat
	default:
		c.stats.RowConflicts++
		// Precharge must respect tRAS from the previous activation.
		start = clock.Max(start, b.activatedAt+c.ras)
		lat = c.latConflict
		b.activatedAt = start + c.rp
		b.nextCmd = start + lat
	}
	if write && c.writeExtra > 0 {
		// Asymmetric media (NVM): programming extends the write's service
		// time and keeps the bank busy until it completes.
		lat += c.writeExtra
		if b.nextCmd < start+lat {
			b.nextCmd = start + lat
		}
	}
	if c.spec.Policy == ClosedPage {
		// Auto-precharge: the next access to this bank starts from a
		// closed row (its precharge overlaps the data transfer).
		b.openRow = -1
	} else {
		b.openRow = bankRow
	}

	dataReady := start + lat
	busStart := clock.Max(dataReady, c.busFreeAt)
	fin := busStart + c.burst
	c.busFreeAt = fin
	done := fin + c.link

	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	// done exceeds the previous access's completion (busStart >= the old
	// busFreeAt, which was that completion), so LastFinish is monotone —
	// no max needed. BusBusy is derived in Stats (burst per access).
	c.stats.LastFinish = done
	return done
}

// BatchReq is one decoded request in a per-channel column: the row and
// issue time of an access plus the caller's scatter index for the
// completion. Columns are built by routing a span of requests to their
// home channels (mech.ColumnPlan) and serviced densely by AccessBatch.
type BatchReq struct {
	Row   uint64
	At    clock.Time
	Idx   int32
	Write bool
}

// AccessBatch services a dense column of requests on this channel, in
// column order, exactly as the equivalent sequence of Access calls would
// — same bank/row transitions, refresh catch-up, bus serialization and
// counters — but with the channel-level state (bus-free time, next
// refresh, stat tallies) held in locals across the whole column and
// written back once. For each request it folds the completion into
// done[Idx] as a running max, so callers can preload done with a
// completion floor (e.g. a migration-lock release time) and read back
// max(floor, channel completion) without a second pass.
func (c *Channel) AccessBatch(reqs []BatchReq, done []clock.Time) {
	banks := c.banks
	busFreeAt := c.busFreeAt
	nextRefresh := c.nextRefresh
	var reads, writes, rowHits, rowClosed, rowConflicts, refreshes uint64
	var lastFinish clock.Time
	burst := c.burst
	closedPage := c.spec.Policy == ClosedPage

	for i := range reqs {
		r := &reqs[i]
		at := r.At + c.link
		if at >= nextRefresh {
			k := (at-nextRefresh)/c.spec.RefreshInterval + 1
			refreshEnd := nextRefresh + clock.Duration(k-1)*c.spec.RefreshInterval + c.spec.RefreshTime
			for j := range banks {
				banks[j].openRow = -1
				if banks[j].nextCmd < refreshEnd {
					banks[j].nextCmd = refreshEnd
				}
			}
			if busFreeAt < refreshEnd {
				busFreeAt = refreshEnd
			}
			refreshes += uint64(k)
			nextRefresh += clock.Duration(k) * c.spec.RefreshInterval
		}

		row := r.Row
		var b *bank
		var bankRow int64
		if c.bankPow2 {
			b = &banks[row&c.bankMask]
			bankRow = int64(row >> c.bankShift)
		} else {
			b = &banks[row%uint64(len(banks))]
			bankRow = int64(row / uint64(len(banks)))
		}

		start := clock.Max(at, b.nextCmd)
		var lat clock.Duration
		switch {
		case b.openRow == bankRow:
			rowHits++
			lat = c.latHit
			b.nextCmd = start + burst
		case b.openRow < 0:
			rowClosed++
			lat = c.latClosed
			b.activatedAt = start
			b.nextCmd = start + lat
		default:
			rowConflicts++
			start = clock.Max(start, b.activatedAt+c.ras)
			lat = c.latConflict
			b.activatedAt = start + c.rp
			b.nextCmd = start + lat
		}
		if r.Write && c.writeExtra > 0 {
			lat += c.writeExtra
			if b.nextCmd < start+lat {
				b.nextCmd = start + lat
			}
		}
		if closedPage {
			b.openRow = -1
		} else {
			b.openRow = bankRow
		}

		dataReady := start + lat
		busStart := clock.Max(dataReady, busFreeAt)
		fin := busStart + burst
		busFreeAt = fin
		ret := fin + c.link

		if r.Write {
			writes++
		} else {
			reads++
		}
		lastFinish = ret
		if ret > done[r.Idx] {
			done[r.Idx] = ret
		}
	}

	c.busFreeAt = busFreeAt
	c.nextRefresh = nextRefresh
	c.stats.Reads += reads
	c.stats.Writes += writes
	c.stats.RowHits += rowHits
	c.stats.RowClosed += rowClosed
	c.stats.RowConflicts += rowConflicts
	c.stats.Refreshes += refreshes
	if len(reqs) > 0 {
		c.stats.LastFinish = lastFinish
	}
}

// Idle reports whether the channel has no pending bus occupancy at time t.
func (c *Channel) Idle(t clock.Time) bool { return c.busFreeAt <= t }
