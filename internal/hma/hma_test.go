package hma

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// testConfig shrinks the interval so tests cross boundaries quickly.
func testConfig() Config {
	c := DefaultConfig()
	c.Interval = 500 * clock.Microsecond
	c.SortStall = 35 * clock.Microsecond // preserve the 7% duty cycle
	return c
}

func newHMA(t *testing.T, cfg Config) *HMA {
	t.Helper()
	b := mech.NewBackend(memsys.MustNew(addr.DefaultLayout(), dram.HBM(), dram.DDR4_1600()))
	h, err := New(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Interval: 0, SortStall: 0, CounterBits: 16, MaxMigrations: 1},
		{Interval: clock.Millisecond, SortStall: 2 * clock.Millisecond, CounterBits: 16, MaxMigrations: 1},
		{Interval: clock.Millisecond, SortStall: 0, CounterBits: 0, MaxMigrations: 1},
		{Interval: clock.Millisecond, SortStall: 0, CounterBits: 16, MaxMigrations: 0},
		{Interval: clock.Millisecond, SortStall: 0, CounterBits: 16, MaxMigrations: 1, CacheBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func slowPage(l addr.Layout, i int) addr.Page { return l.FastPages() + addr.Page(i) }

func TestHotPageMigratesAtBoundary(t *testing.T) {
	h := newHMA(t, testConfig())
	hot := slowPage(h.layout, 77)
	req := trace.Request{Addr: uint64(hot.Base())}
	other := trace.Request{Addr: uint64(slowPage(h.layout, 5000).Base())}
	at := clock.Time(0)
	for i := 0; i < 100; i++ {
		at += clock.Microsecond
		h.Access(&req, at)
		at += clock.Microsecond
		h.Access(&other, at)
	}
	if h.FrameOfPage(hot) != hot {
		t.Fatal("page moved before boundary")
	}
	// Migrations are queued at the boundary and execute once the OS sort
	// completes (boundary + SortStall); drive time past that point.
	h.Access(&req, 540*clock.Microsecond)
	if got := h.FrameOfPage(hot); got >= h.layout.FastPages() {
		t.Fatalf("hot page still in slow slot %d after sort completed", got)
	}
	st := h.Stats()
	if st.Intervals != 1 || st.PageMigrations == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMigrationsWaitForSort(t *testing.T) {
	h := newHMA(t, testConfig())
	req := trace.Request{Addr: uint64(slowPage(h.layout, 3).Base())}
	other := trace.Request{Addr: uint64(slowPage(h.layout, 6000).Base())}
	at := clock.Time(0)
	for i := 0; i < 50; i++ {
		at += clock.Microsecond
		h.Access(&req, at)
		at += clock.Microsecond
		h.Access(&other, at)
	}
	// Just after the boundary the sort is still running: nothing migrated.
	boundary := clock.Time(500 * clock.Microsecond)
	h.Access(&req, boundary+clock.Nanosecond)
	if h.Stats().PageMigrations != 0 {
		t.Fatal("migration executed before the sort completed")
	}
	// After the sort finishes the queue drains.
	h.Access(&req, boundary+36*clock.Microsecond)
	if h.Stats().PageMigrations == 0 {
		t.Fatal("migration did not execute after the sort completed")
	}
}

func TestThresholdGatesMigration(t *testing.T) {
	cfg := testConfig()
	cfg.HotThreshold = 50
	h := newHMA(t, cfg)
	// Only 10 touches: below threshold 50, no migration.
	req := trace.Request{Addr: uint64(slowPage(h.layout, 5).Base())}
	other := trace.Request{Addr: uint64(slowPage(h.layout, 7000).Base())}
	at := clock.Time(0)
	for i := 0; i < 10; i++ {
		at += clock.Microsecond
		h.Access(&req, at)
		at += clock.Microsecond
		h.Access(&other, at)
	}
	h.Access(&req, 501*clock.Microsecond)
	if h.Stats().PageMigrations != 0 {
		t.Fatal("below-threshold page migrated")
	}
}

func TestMaxMigrationsCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMigrations = 3
	h := newHMA(t, cfg)
	at := clock.Time(0)
	for i := 0; i < 2000; i++ {
		at += 200 * clock.Nanosecond
		p := slowPage(h.layout, i%10)
		h.Access(&trace.Request{Addr: uint64(p.Base())}, at)
	}
	h.Access(&trace.Request{Addr: 0}, 501*clock.Microsecond)
	if got := h.Stats().PageMigrations; got > 3 {
		t.Fatalf("migrated %d pages, cap 3", got)
	}
}

func TestCountersResetEachInterval(t *testing.T) {
	h := newHMA(t, testConfig())
	hot := slowPage(h.layout, 8)
	req := trace.Request{Addr: uint64(hot.Base())}
	other := trace.Request{Addr: uint64(slowPage(h.layout, 8000).Base())}
	at := clock.Time(0)
	for i := 0; i < 20; i++ {
		at += clock.Microsecond
		h.Access(&req, at)
		at += clock.Microsecond
		h.Access(&other, at)
	}
	// Let interval 1's queue drain completely (it is paced across the
	// epoch), then cross idle boundaries: they must queue nothing new.
	h.Access(&trace.Request{Addr: 0}, 995*clock.Microsecond)
	first := h.Stats().PageMigrations
	if first == 0 {
		t.Fatal("setup: interval 1 queued no migrations")
	}
	h.Access(&trace.Request{Addr: 0}, 1495*clock.Microsecond)
	h.Access(&trace.Request{Addr: 0}, 1995*clock.Microsecond)
	if got := h.Stats().PageMigrations; got != first {
		t.Fatalf("idle intervals migrated %d more pages", got-first)
	}
}

func TestCacheModelInjectsMisses(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBytes = 16 << 10
	h := newHMA(t, cfg)
	at := clock.Time(0)
	for i := 0; i < 5000; i++ {
		at += 50 * clock.Nanosecond
		h.Access(&trace.Request{Addr: uint64(slowPage(h.layout, i%4000).Base())}, at)
	}
	st := h.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("no cache misses over a 4000-page scan")
	}
}

func TestRejectsSingleLevel(t *testing.T) {
	b := mech.NewBackend(memsys.MustNew(
		addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},
		dram.HBM(), dram.DDR4_1600()))
	if _, err := New(DefaultConfig(), b); err == nil {
		t.Fatal("HMA accepted single-level layout")
	}
}
