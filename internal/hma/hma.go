// Package hma models the Heterogeneous Memory Architectures baseline
// (Meswani et al., HPCA 2015) as the MemPod paper evaluates it (§4, §6).
//
// HMA keeps one full activity counter per page. At coarse intervals the OS
// sorts the counters, stalls execution for the duration of the sort (the
// paper generously models 7 ms instead of the measured ~1.2 s), and
// migrates hot pages into fast memory with full any-to-any flexibility.
// Because the OS rewrites page tables, no remap table is consulted on the
// access path; the counter array, however, is large (16 bits per page,
// 9 MB for the paper's configuration) and is the state cached in the
// Figure 9 experiment.
package hma

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/tab"
	"repro/internal/trace"
)

// Config holds HMA's parameters.
type Config struct {
	// Interval is the migration epoch (paper: 100 ms; see EXPERIMENTS.md
	// for the scaling applied when traces are shorter than one epoch).
	Interval clock.Duration
	// SortStall is the time the OS spends sorting the counters at each
	// boundary (paper: 7 ms baseline, 4.2 ms in the future-scaling study).
	// Migrations cannot begin until the sort finishes, so decisions land
	// stale; the stalled CPUs themselves issue no memory requests during
	// the sort, so the penalty does not appear directly in AMMAT.
	SortStall clock.Duration
	// CounterBits bounds each activity counter (paper: 16).
	CounterBits int
	// HotThreshold is the minimum interval count for a page to be a
	// migration candidate. Thresholding is what makes HMA's migration
	// volume sensitive to how many requests were serviced per interval —
	// the Figure 9 effect.
	HotThreshold uint64
	// MaxMigrations caps pages moved into fast memory per interval.
	MaxMigrations int
	// CacheBytes/CacheWays model the on-chip counter cache (0 = counters
	// accessible for free, as in the cache-disabled experiments).
	CacheBytes int
	CacheWays  int
}

// DefaultConfig returns the paper's baseline HMA parameters.
func DefaultConfig() Config {
	return Config{
		Interval:      100 * clock.Millisecond,
		SortStall:     7 * clock.Millisecond,
		CounterBits:   16,
		HotThreshold:  4,
		MaxMigrations: 8192,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("hma: interval %d", c.Interval)
	case c.SortStall < 0 || c.SortStall >= c.Interval:
		return fmt.Errorf("hma: sort stall %d outside [0, interval)", c.SortStall)
	case c.CounterBits <= 0 || c.CounterBits > 64:
		return fmt.Errorf("hma: counter width %d", c.CounterBits)
	case c.MaxMigrations <= 0:
		return fmt.Errorf("hma: max migrations %d", c.MaxMigrations)
	case c.CacheBytes < 0:
		return fmt.Errorf("hma: cache %d bytes", c.CacheBytes)
	}
	return nil
}

// counterEntryBytes is the modelled counter size (16-bit counters: 32 per
// 64 B backing block).
const counterEntryBytes = 2

const countersPerBlock = mech.BlockBytes / counterEntryBytes

// HMA implements mech.Mechanism.
//
// The counter array journals the pages touched each interval (tab.U16Zero),
// which turns the two O(total pages) boundary scans — candidate gathering
// and the counter clear — into O(touched) walks: a page with count zero can
// be neither a migration candidate (threshold >= 1) nor in need of
// clearing. The remap and inverted tables recycle through tab pools.
type HMA struct {
	cfg     Config
	backend *mech.Backend
	layout  addr.Layout
	geom    *addr.Geom

	counters   *tab.U16Zero // per flat page, this interval
	counterMax uint16
	remap      *tab.U32       // flat page -> physical slot (flat page index)
	inverted   *tab.U32       // fast slot -> resident flat page
	locks      mech.LockTable // page -> in-flight swap completion
	cache      *mech.Cache

	touch       mech.TouchFilter
	next        clock.Time // next boundary
	queue       []queuedSwap
	qpos        int
	lastSwapEnd clock.Time
	stats       mech.MigStats

	// plan is non-nil only while AccessColumn is mid-span: drained chunks
	// flush the channels they touch through it before issuing.
	plan *mech.ColumnPlan

	// Boundary-pass scratch, reused across intervals.
	hot     []pageCount
	warm    []slotCount
	warmSet *tab.EpochSet // fast slots whose resident was counted this interval
	victims []uint32
	hSorter hotSorter
	sSorter slotSorter

	// In-flight swap state across its chunks.
	swapSkip bool
	swapOld  uint32 // slow slot being vacated
	swapRes  uint32 // page being evicted from the fast slot
}

// swapChunks paces each page copy as 8 chunks of 4 line-pairs so the OS
// copy loop interleaves with demand traffic (see mech.SwapGlobalChunk).
const swapChunks = 8

const linesPerChunk = addr.LinesPerPage / swapChunks

// queuedSwap is one scheduled unit of migration work: chunk `chunk` of the
// swap promoting `page` into fast slot `victim`, starting no earlier than
// `start` (after the end of the OS sort). Chunk 0 updates the tables.
type queuedSwap struct {
	start  clock.Time
	page   uint32
	victim uint32
	chunk  uint8
}

// New builds an HMA over the backend's two-level memory.
func New(cfg Config, b *mech.Backend) (*HMA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("hma: layout is not two-level")
	}
	if cfg.CacheWays <= 0 {
		cfg.CacheWays = 8
	}
	total := int(l.TotalPages())
	h := &HMA{
		cfg:      cfg,
		backend:  b,
		layout:   l,
		geom:     &b.Geom,
		counters: tab.NewU16Zero(total),
		remap:    tab.NewU32(total),
		inverted: tab.NewU32(int(l.FastPages())),
		warmSet:  tab.NewEpochSet(int(l.FastPages())),
		next:     cfg.Interval,
	}
	if cfg.CounterBits >= 16 {
		h.counterMax = ^uint16(0)
	} else {
		h.counterMax = uint16(1)<<cfg.CounterBits - 1
	}
	if cfg.CacheBytes > 0 {
		h.cache = mech.NewCache(cfg.CacheBytes, cfg.CacheWays)
	}
	return h, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *HMA {
	h, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements mech.Mechanism.
func (h *HMA) Name() string { return "HMA" }

// Stats implements mech.Mechanism.
func (h *HMA) Stats() mech.MigStats { return h.stats }

// SharedTouch implements mech.TouchSharer. HMA is still not pod-sharded —
// its interval migrations cross pods — so the engine only uses this for
// differential state checks, never concurrently.
func (h *HMA) SharedTouch() *mech.TouchFilter { return &h.touch }

// Release implements mech.Releaser; the mechanism must not be used after.
func (h *HMA) Release() {
	h.counters.Release()
	h.remap.Release()
	h.inverted.Release()
	h.warmSet.Release()
	h.counters, h.remap, h.inverted, h.warmSet = nil, nil, nil, nil
}

// Access implements mech.Mechanism.
func (h *HMA) Access(r *trace.Request, at clock.Time) clock.Time {
	page := uint32(addr.PageOf(addr.Addr(r.Addr)))
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	return h.access(r, page, li, at, nil)
}

// AccessDecoded implements mech.DecodedAccessor. The page and line come
// from the plane; for un-remapped pages (the identity mapping, most of
// the trace) the plane's precomputed home channel/row services the access
// directly, and only migrated pages re-derive HomeFrame(slot) at runtime.
func (h *HMA) AccessDecoded(r *trace.Request, d *trace.Decoded, at clock.Time) clock.Time {
	return h.access(r, uint32(d.Page), int(d.Line), at, d)
}

func (h *HMA) access(r *trace.Request, page uint32, li int, at clock.Time, d *trace.Decoded) clock.Time {
	for at >= h.next {
		h.runInterval(h.next)
		h.next += h.cfg.Interval
	}
	if h.qpos < len(h.queue) && h.queue[h.qpos].start <= at {
		h.drain(at)
	}

	start := at
	if h.touch.Touch(r.Core, uint64(page)) {
		if c := h.counters.A[page]; c < h.counterMax {
			h.counters.Set(page, c, c+1)
		}
	}
	if h.cache != nil {
		block := uint64(page) / countersPerBlock
		if h.cache.Access(block) {
			h.stats.CacheHits++
		} else {
			h.stats.CacheMisses++
			start = h.backend.BookkeepingRead(int(uint64(page)%uint64(h.layout.NumPods)), block, start)
		}
	}
	var lockEnd clock.Time
	if end := h.locks.GetActive(uint64(page), start); end != 0 {
		lockEnd = end
		h.stats.LockStalls++
	}
	slot := addr.Page(h.remap.A[page])
	if d != nil && uint64(slot) == uint64(page) {
		// Identity remap: the plane already resolved the home location.
		return clock.Max(h.backend.LineAt(d.Chan, d.Row, r.Write, start), lockEnd)
	}
	pod, f := h.geom.HomeFrame(slot)
	return clock.Max(h.backend.Line(pod, f, li, r.Write, start), lockEnd)
}

// AccessColumn implements mech.ColumnAccessor: the access path with
// demand accesses gathered into per-channel columns, flushed fully at
// interval boundaries and channel-scoped at queue drains (a drained
// chunk touches exactly two channels; see executeSwap) — the only
// places HMA injects immediate channel traffic. The counter-cache
// configuration chains bookkeeping reads into demand issue times, so it
// keeps the per-request path.
func (h *HMA) AccessColumn(sc *trace.SpanColumns, at, done []clock.Time) {
	dec := sc.Dec
	if h.cache != nil {
		for i := range dec {
			r := sc.Request(i)
			done[i] = h.AccessDecoded(&r, &dec[i], at[i])
		}
		return
	}
	plan := h.backend.Plan()
	plan.Begin(done)
	h.plan = plan
	for i := range dec {
		d := &dec[i]
		t := at[i]
		if t >= h.next {
			plan.Flush()
			for t >= h.next {
				h.runInterval(h.next)
				h.next += h.cfg.Interval
			}
		}
		if h.qpos < len(h.queue) && h.queue[h.qpos].start <= t {
			h.drain(t)
		}
		page := uint32(d.Page)
		if h.touch.Touch(sc.Cores[i], uint64(page)) {
			if c := h.counters.A[page]; c < h.counterMax {
				h.counters.Set(page, c, c+1)
			}
		}
		var lockEnd clock.Time
		if end := h.locks.GetActive(uint64(page), t); end != 0 {
			lockEnd = end
			h.stats.LockStalls++
		}
		done[i] = lockEnd
		if slot := addr.Page(h.remap.A[page]); uint64(slot) == uint64(page) {
			plan.Route(int(d.Chan), uint64(d.Row), sc.Write(i), t, int32(i))
		} else {
			pod, f := h.geom.HomeFrame(slot)
			ch, row := h.backend.LineLoc(pod, f)
			plan.Route(ch, row, sc.Write(i), t, int32(i))
		}
	}
	h.plan = nil
	plan.Flush()
}

// pageCount pairs a page with its interval count for sorting.
type pageCount struct {
	page  uint32
	count uint16
}

// hotSorter orders candidates by count descending, page ascending — a
// strict total order, so the result is algorithm-independent.
type hotSorter struct{ s []pageCount }

func (o *hotSorter) Len() int { return len(o.s) }
func (o *hotSorter) Less(i, j int) bool {
	if o.s[i].count != o.s[j].count {
		return o.s[i].count > o.s[j].count
	}
	return o.s[i].page < o.s[j].page
}
func (o *hotSorter) Swap(i, j int) { o.s[i], o.s[j] = o.s[j], o.s[i] }

// runInterval models HMA's OS-driven epoch: flush any swaps left from the
// previous epoch, pick hot slow-resident pages above the threshold, pair
// them with the coldest fast-resident victims, and queue the swaps to
// execute once the counter sort completes (boundary + SortStall).
func (h *HMA) runInterval(boundary clock.Time) {
	h.stats.Intervals++

	// Retire the previous epoch's queue: finish partially copied swaps,
	// drop the ones that never started (stale OS decisions).
	flushing := h.qpos > 0 && h.queue[h.qpos-1].chunk != swapChunks-1
	for h.qpos < len(h.queue) {
		sw := h.queue[h.qpos]
		if sw.chunk == 0 {
			flushing = false
		}
		if !flushing && sw.chunk == 0 {
			h.qpos += swapChunks
			h.stats.DroppedMigrations++
			continue
		}
		if sw.start < boundary {
			sw.start = boundary
		}
		h.executeSwap(sw)
		h.qpos++
	}
	h.locks.Sweep(boundary)

	// Gather candidates: hot pages currently in slow memory. Only pages in
	// the interval's touch journal can clear the threshold (untouched
	// pages count zero), and the sort below imposes a total order, so
	// walking the journal instead of the whole counter array is exact.
	hot := h.hot[:0]
	fastPages := uint32(h.geom.FastPagesN())
	for _, p := range h.counters.Touched() {
		c := h.counters.A[p]
		if uint64(c) < h.cfg.HotThreshold {
			continue
		}
		if h.remap.A[p] >= fastPages { // resident in slow memory
			hot = append(hot, pageCount{p, c})
		}
	}
	h.hSorter.s = hot
	sort.Sort(&h.hSorter)
	if len(hot) > h.cfg.MaxMigrations {
		hot = hot[:h.cfg.MaxMigrations]
	}
	h.hot = hot

	h.queue = h.queue[:0]
	h.qpos = 0
	if len(hot) > 0 {
		victims := h.coldestFastSlots(len(hot))
		sortDone := boundary + h.cfg.SortStall
		// Pace the OS copy loop over the remainder of the epoch so the
		// copies interleave with demand traffic instead of monopolizing
		// the channels in one burst.
		spacing := (h.cfg.Interval - h.cfg.SortStall) / clock.Duration(len(hot)+1)
		chunkSpacing := spacing / swapChunks
		for i, hc := range hot {
			if i >= len(victims) {
				break
			}
			if uint64(h.counters.A[h.inverted.A[victims[i]]]) >= h.cfg.HotThreshold {
				continue // victim is itself hot; skip
			}
			slot := sortDone + clock.Duration(i)*spacing
			for ch := 0; ch < swapChunks; ch++ {
				h.queue = append(h.queue, queuedSwap{
					start:  slot + clock.Duration(ch)*chunkSpacing,
					page:   hc.page,
					victim: victims[i],
					chunk:  uint8(ch),
				})
			}
		}
	}
	if h.lastSwapEnd < boundary {
		h.lastSwapEnd = boundary
	}
	h.counters.Clear()
}

// drain executes queued swaps whose start time has arrived, keeping
// channel traffic in time order.
func (h *HMA) drain(now clock.Time) {
	for h.qpos < len(h.queue) && h.queue[h.qpos].start <= now {
		h.executeSwap(h.queue[h.qpos])
		h.qpos++
	}
}

// executeSwap performs one queued chunk of a page swap through the OS
// datapath. Chunk 0 updates the page tables and locks both pages.
func (h *HMA) executeSwap(sw queuedSwap) {
	if sw.chunk == 0 {
		h.swapSkip = true
		cur := h.remap.A[sw.page]
		if cur < uint32(h.geom.FastPagesN()) {
			return // already promoted
		}
		h.swapSkip = false
		h.swapOld = cur
		h.swapRes = h.inverted.A[sw.victim]
		h.remap.Set(sw.page, sw.victim)
		h.remap.Set(h.swapRes, cur)
		h.inverted.Set(sw.victim, sw.page)
		h.stats.PageMigrations++
	}
	if h.swapSkip {
		return
	}
	// Chunks issue at their paced schedule (see core.executeSwap). On the
	// column path (h.plan non-nil) the chunk flushes just the two channels
	// it touches before issuing.
	lo := int(sw.chunk) * linesPerChunk
	end := h.backend.SwapGlobalChunkPlanned(h.plan, addr.Page(h.swapOld), addr.Page(sw.victim),
		lo, lo+linesPerChunk, sw.start)
	h.stats.LineMigrations += 2 * linesPerChunk
	h.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
	h.stats.GlobalMoveLines += 2 * linesPerChunk
	if end > h.lastSwapEnd {
		h.lastSwapEnd = end
	}
	h.locks.Raise(uint64(sw.page), end)
	h.locks.Raise(uint64(h.swapRes), end)
}

// slotCount pairs a fast slot with its resident's interval count.
type slotCount struct {
	slot  uint32
	count uint16
}

// slotSorter orders slots by count ascending, slot ascending — again a
// strict total order.
type slotSorter struct{ s []slotCount }

func (o *slotSorter) Len() int { return len(o.s) }
func (o *slotSorter) Less(i, j int) bool {
	if o.s[i].count != o.s[j].count {
		return o.s[i].count < o.s[j].count
	}
	return o.s[i].slot < o.s[j].slot
}
func (o *slotSorter) Swap(i, j int) { o.s[i], o.s[j] = o.s[j], o.s[i] }

// coldestFastSlots returns up to n fast slots ordered by ascending
// resident count, slot ascending on ties (the OS's victim choice under
// full counters).
//
// Equivalent to sorting all fast slots by (count, slot) and taking the
// first n, but without touching the whole fast region: a slot's resident
// counts zero exactly when it is absent from the interval's touch journal,
// and all such slots precede every warm slot in the total order. So the
// prefix is: cold slots in ascending slot order (enumerated by scanning
// slot IDs and skipping the journal-derived warm set), then warm slots
// sorted.
func (h *HMA) coldestFastSlots(n int) []uint32 {
	fastPages := uint32(h.geom.FastPagesN())
	warm := h.warm[:0]
	h.warmSet.BeginEpoch()
	for _, p := range h.counters.Touched() {
		if slot := h.remap.A[p]; slot < fastPages {
			warm = append(warm, slotCount{slot, h.counters.A[p]})
			h.warmSet.Add(slot)
		}
	}
	h.warm = warm

	out := h.victims[:0]
	for slot := uint32(0); slot < fastPages && len(out) < n; slot++ {
		if !h.warmSet.Has(slot) {
			out = append(out, slot)
		}
	}
	if len(out) < n {
		h.sSorter.s = warm
		sort.Sort(&h.sSorter)
		for _, s := range warm {
			if len(out) >= n {
				break
			}
			out = append(out, s.slot)
		}
	}
	h.victims = out
	return out
}

// CheckInvariants verifies that the remap table is a permutation of the
// flat page space and that the inverted table matches it. O(memory);
// intended for tests.
func (h *HMA) CheckInvariants() error {
	seen := make([]bool, len(h.remap.A))
	for page, slot := range h.remap.A {
		if int(slot) >= len(h.remap.A) {
			return fmt.Errorf("hma: page %d maps to out-of-range slot %d", page, slot)
		}
		if seen[slot] {
			return fmt.Errorf("hma: slot %d mapped twice", slot)
		}
		seen[slot] = true
	}
	for slot, page := range h.inverted.A {
		if h.remap.A[page] != uint32(slot) {
			return fmt.Errorf("hma: inverted[%d]=%d but remap[%d]=%d",
				slot, page, page, h.remap.A[page])
		}
	}
	return nil
}

// FrameOfPage reports the current physical slot of a flat page, for tests.
func (h *HMA) FrameOfPage(p addr.Page) addr.Page { return addr.Page(h.remap.A[uint32(p)]) }

var (
	_ mech.Mechanism       = (*HMA)(nil)
	_ mech.DecodedAccessor = (*HMA)(nil)
	_ mech.Releaser        = (*HMA)(nil)
	_ mech.ColumnAccessor  = (*HMA)(nil)
)
