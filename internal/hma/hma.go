// Package hma models the Heterogeneous Memory Architectures baseline
// (Meswani et al., HPCA 2015) as the MemPod paper evaluates it (§4, §6).
//
// HMA keeps one full activity counter per page. At coarse intervals the OS
// sorts the counters, stalls execution for the duration of the sort (the
// paper generously models 7 ms instead of the measured ~1.2 s), and
// migrates hot pages into fast memory with full any-to-any flexibility.
// Because the OS rewrites page tables, no remap table is consulted on the
// access path; the counter array, however, is large (16 bits per page,
// 9 MB for the paper's configuration) and is the state cached in the
// Figure 9 experiment.
package hma

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/mech"
	"repro/internal/trace"
)

// Config holds HMA's parameters.
type Config struct {
	// Interval is the migration epoch (paper: 100 ms; see EXPERIMENTS.md
	// for the scaling applied when traces are shorter than one epoch).
	Interval clock.Duration
	// SortStall is the time the OS spends sorting the counters at each
	// boundary (paper: 7 ms baseline, 4.2 ms in the future-scaling study).
	// Migrations cannot begin until the sort finishes, so decisions land
	// stale; the stalled CPUs themselves issue no memory requests during
	// the sort, so the penalty does not appear directly in AMMAT.
	SortStall clock.Duration
	// CounterBits bounds each activity counter (paper: 16).
	CounterBits int
	// HotThreshold is the minimum interval count for a page to be a
	// migration candidate. Thresholding is what makes HMA's migration
	// volume sensitive to how many requests were serviced per interval —
	// the Figure 9 effect.
	HotThreshold uint64
	// MaxMigrations caps pages moved into fast memory per interval.
	MaxMigrations int
	// CacheBytes/CacheWays model the on-chip counter cache (0 = counters
	// accessible for free, as in the cache-disabled experiments).
	CacheBytes int
	CacheWays  int
}

// DefaultConfig returns the paper's baseline HMA parameters.
func DefaultConfig() Config {
	return Config{
		Interval:      100 * clock.Millisecond,
		SortStall:     7 * clock.Millisecond,
		CounterBits:   16,
		HotThreshold:  4,
		MaxMigrations: 8192,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("hma: interval %d", c.Interval)
	case c.SortStall < 0 || c.SortStall >= c.Interval:
		return fmt.Errorf("hma: sort stall %d outside [0, interval)", c.SortStall)
	case c.CounterBits <= 0 || c.CounterBits > 64:
		return fmt.Errorf("hma: counter width %d", c.CounterBits)
	case c.MaxMigrations <= 0:
		return fmt.Errorf("hma: max migrations %d", c.MaxMigrations)
	case c.CacheBytes < 0:
		return fmt.Errorf("hma: cache %d bytes", c.CacheBytes)
	}
	return nil
}

// counterEntryBytes is the modelled counter size (16-bit counters: 32 per
// 64 B backing block).
const counterEntryBytes = 2

const countersPerBlock = mech.BlockBytes / counterEntryBytes

// HMA implements mech.Mechanism.
type HMA struct {
	cfg     Config
	backend *mech.Backend
	layout  addr.Layout

	counters   []uint16 // per flat page, this interval
	counterMax uint16
	remap      []uint32              // flat page -> physical slot (flat page index)
	inverted   []uint32              // fast slot -> resident flat page
	locks      map[uint32]clock.Time // page -> in-flight swap completion
	cache      *mech.Cache

	touch       mech.TouchFilter
	next        clock.Time // next boundary
	queue       []queuedSwap
	qpos        int
	lastSwapEnd clock.Time
	stats       mech.MigStats

	// In-flight swap state across its chunks.
	swapSkip bool
	swapOld  uint32 // slow slot being vacated
	swapRes  uint32 // page being evicted from the fast slot
}

// swapChunks paces each page copy as 8 chunks of 4 line-pairs so the OS
// copy loop interleaves with demand traffic (see mech.SwapGlobalChunk).
const swapChunks = 8

const linesPerChunk = addr.LinesPerPage / swapChunks

// queuedSwap is one scheduled unit of migration work: chunk `chunk` of the
// swap promoting `page` into fast slot `victim`, starting no earlier than
// `start` (after the end of the OS sort). Chunk 0 updates the tables.
type queuedSwap struct {
	start  clock.Time
	page   uint32
	victim uint32
	chunk  uint8
}

// New builds an HMA over the backend's two-level memory.
func New(cfg Config, b *mech.Backend) (*HMA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := b.Layout
	if !l.TwoLevel() {
		return nil, fmt.Errorf("hma: layout is not two-level")
	}
	if cfg.CacheWays <= 0 {
		cfg.CacheWays = 8
	}
	total := uint64(l.TotalPages())
	h := &HMA{
		cfg:      cfg,
		backend:  b,
		layout:   l,
		counters: make([]uint16, total),
		remap:    make([]uint32, total),
		inverted: make([]uint32, l.FastPages()),
		locks:    make(map[uint32]clock.Time),
		next:     cfg.Interval,
	}
	if cfg.CounterBits >= 16 {
		h.counterMax = ^uint16(0)
	} else {
		h.counterMax = uint16(1)<<cfg.CounterBits - 1
	}
	for i := range h.remap {
		h.remap[i] = uint32(i)
	}
	for i := range h.inverted {
		h.inverted[i] = uint32(i)
	}
	if cfg.CacheBytes > 0 {
		h.cache = mech.NewCache(cfg.CacheBytes, cfg.CacheWays)
	}
	return h, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config, b *mech.Backend) *HMA {
	h, err := New(cfg, b)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements mech.Mechanism.
func (h *HMA) Name() string { return "HMA" }

// Stats implements mech.Mechanism.
func (h *HMA) Stats() mech.MigStats { return h.stats }

// Access implements mech.Mechanism.
func (h *HMA) Access(r *trace.Request, at clock.Time) clock.Time {
	for at >= h.next {
		h.runInterval(h.next)
		h.next += h.cfg.Interval
	}
	h.drain(at)

	start := at
	page := uint32(addr.PageOf(addr.Addr(r.Addr)))
	if h.touch.Touch(r.Core, uint64(page)) {
		if c := h.counters[page]; c < h.counterMax {
			h.counters[page] = c + 1
		}
	}
	if h.cache != nil {
		block := uint64(page) / countersPerBlock
		if h.cache.Access(block) {
			h.stats.CacheHits++
		} else {
			h.stats.CacheMisses++
			start = h.backend.BookkeepingRead(int(uint64(page)%uint64(h.layout.NumPods)), block, start)
		}
	}
	var lockEnd clock.Time
	if end, locked := h.locks[page]; locked {
		if end > start {
			lockEnd = end
			h.stats.LockStalls++
		} else {
			delete(h.locks, page)
		}
	}
	slot := addr.Page(h.remap[page])
	pod, f := h.layout.HomeFrame(slot)
	li := int(uint64(addr.LineOf(addr.Addr(r.Addr))) % addr.LinesPerPage)
	return clock.Max(h.backend.Line(pod, f, li, r.Write, start), lockEnd)
}

// pageCount pairs a page with its interval count for sorting.
type pageCount struct {
	page  uint32
	count uint16
}

// runInterval models HMA's OS-driven epoch: flush any swaps left from the
// previous epoch, pick hot slow-resident pages above the threshold, pair
// them with the coldest fast-resident victims, and queue the swaps to
// execute once the counter sort completes (boundary + SortStall).
func (h *HMA) runInterval(boundary clock.Time) {
	h.stats.Intervals++

	// Retire the previous epoch's queue: finish partially copied swaps,
	// drop the ones that never started (stale OS decisions).
	flushing := h.qpos > 0 && h.queue[h.qpos-1].chunk != swapChunks-1
	for h.qpos < len(h.queue) {
		sw := h.queue[h.qpos]
		if sw.chunk == 0 {
			flushing = false
		}
		if !flushing && sw.chunk == 0 {
			h.qpos += swapChunks
			h.stats.DroppedMigrations++
			continue
		}
		if sw.start < boundary {
			sw.start = boundary
		}
		h.executeSwap(sw)
		h.qpos++
	}
	for page, end := range h.locks {
		if end <= boundary {
			delete(h.locks, page)
		}
	}

	// Gather candidates: hot pages currently in slow memory.
	var hot []pageCount
	fastPages := uint32(h.layout.FastPages())
	for p, c := range h.counters {
		if uint64(c) < h.cfg.HotThreshold {
			continue
		}
		if h.remap[p] >= fastPages { // resident in slow memory
			hot = append(hot, pageCount{uint32(p), c})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		return hot[i].page < hot[j].page
	})
	if len(hot) > h.cfg.MaxMigrations {
		hot = hot[:h.cfg.MaxMigrations]
	}

	h.queue = h.queue[:0]
	h.qpos = 0
	if len(hot) > 0 {
		victims := h.coldestFastSlots(len(hot))
		sortDone := boundary + h.cfg.SortStall
		// Pace the OS copy loop over the remainder of the epoch so the
		// copies interleave with demand traffic instead of monopolizing
		// the channels in one burst.
		spacing := (h.cfg.Interval - h.cfg.SortStall) / clock.Duration(len(hot)+1)
		chunkSpacing := spacing / swapChunks
		for i, hc := range hot {
			if i >= len(victims) {
				break
			}
			if uint64(h.counters[h.inverted[victims[i]]]) >= h.cfg.HotThreshold {
				continue // victim is itself hot; skip
			}
			slot := sortDone + clock.Duration(i)*spacing
			for ch := 0; ch < swapChunks; ch++ {
				h.queue = append(h.queue, queuedSwap{
					start:  slot + clock.Duration(ch)*chunkSpacing,
					page:   hc.page,
					victim: victims[i],
					chunk:  uint8(ch),
				})
			}
		}
	}
	if h.lastSwapEnd < boundary {
		h.lastSwapEnd = boundary
	}
	clear(h.counters)
}

// drain executes queued swaps whose start time has arrived, keeping
// channel traffic in time order.
func (h *HMA) drain(now clock.Time) {
	for h.qpos < len(h.queue) && h.queue[h.qpos].start <= now {
		h.executeSwap(h.queue[h.qpos])
		h.qpos++
	}
}

// executeSwap performs one queued chunk of a page swap through the OS
// datapath. Chunk 0 updates the page tables and locks both pages.
func (h *HMA) executeSwap(sw queuedSwap) {
	if sw.chunk == 0 {
		h.swapSkip = true
		cur := h.remap[sw.page]
		if cur < uint32(h.layout.FastPages()) {
			return // already promoted
		}
		h.swapSkip = false
		h.swapOld = cur
		h.swapRes = h.inverted[sw.victim]
		h.remap[sw.page] = sw.victim
		h.remap[h.swapRes] = cur
		h.inverted[sw.victim] = sw.page
		h.stats.PageMigrations++
	}
	if h.swapSkip {
		return
	}
	// Chunks issue at their paced schedule (see core.executeSwap).
	lo := int(sw.chunk) * linesPerChunk
	end := h.backend.SwapGlobalChunk(addr.Page(h.swapOld), addr.Page(sw.victim),
		lo, lo+linesPerChunk, sw.start)
	h.stats.LineMigrations += 2 * linesPerChunk
	h.stats.BytesMoved += 2 * linesPerChunk * addr.LineBytes
	h.stats.GlobalMoveLines += 2 * linesPerChunk
	if end > h.lastSwapEnd {
		h.lastSwapEnd = end
	}
	if end > h.locks[sw.page] {
		h.locks[sw.page] = end
	}
	if end > h.locks[h.swapRes] {
		h.locks[h.swapRes] = end
	}
}

// coldestFastSlots returns up to n fast slots ordered by ascending
// resident count (the OS's victim choice under full counters).
func (h *HMA) coldestFastSlots(n int) []uint32 {
	type slotCount struct {
		slot  uint32
		count uint16
	}
	slots := make([]slotCount, len(h.inverted))
	for v := range h.inverted {
		slots[v] = slotCount{uint32(v), h.counters[h.inverted[v]]}
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].count != slots[j].count {
			return slots[i].count < slots[j].count
		}
		return slots[i].slot < slots[j].slot
	})
	if len(slots) > n {
		slots = slots[:n]
	}
	out := make([]uint32, len(slots))
	for i, s := range slots {
		out[i] = s.slot
	}
	return out
}

// CheckInvariants verifies that the remap table is a permutation of the
// flat page space and that the inverted table matches it. O(memory);
// intended for tests.
func (h *HMA) CheckInvariants() error {
	seen := make([]bool, len(h.remap))
	for page, slot := range h.remap {
		if int(slot) >= len(h.remap) {
			return fmt.Errorf("hma: page %d maps to out-of-range slot %d", page, slot)
		}
		if seen[slot] {
			return fmt.Errorf("hma: slot %d mapped twice", slot)
		}
		seen[slot] = true
	}
	for slot, page := range h.inverted {
		if h.remap[page] != uint32(slot) {
			return fmt.Errorf("hma: inverted[%d]=%d but remap[%d]=%d",
				slot, page, page, h.remap[page])
		}
	}
	return nil
}

// FrameOfPage reports the current physical slot of a flat page, for tests.
func (h *HMA) FrameOfPage(p addr.Page) addr.Page { return addr.Page(h.remap[uint32(p)]) }

var _ mech.Mechanism = (*HMA)(nil)
