package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LinesPerPage != 32 {
		t.Errorf("LinesPerPage = %d, want 32 (paper: 32 reads per 2KB page)", LinesPerPage)
	}
	if PagesPerRow != 4 {
		t.Errorf("PagesPerRow = %d, want 4 (8KB row / 2KB page)", PagesPerRow)
	}
}

func TestDefaultLayoutMatchesPaper(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := l.FastPages(); got != 524288 {
		t.Errorf("FastPages = %d, want 524288 (1GB/2KB)", got)
	}
	if got := l.SlowPages(); got != 4194304 {
		t.Errorf("SlowPages = %d, want 4194304 (8GB/2KB)", got)
	}
	if got := l.FastPagesPerPod(); got != 131072 {
		t.Errorf("FastPagesPerPod = %d, want 131072", got)
	}
	if got := l.SlowPagesPerPod(); got != 1048576 {
		t.Errorf("SlowPagesPerPod = %d, want 1048576", got)
	}
	// The paper: "21 bits are needed to address each page within a Pod",
	// i.e. pages-per-pod fits in 21 bits.
	if ppp := l.PagesPerPod(); ppp > 1<<21 {
		t.Errorf("PagesPerPod = %d does not fit in 21 bits", ppp)
	}
	if l.Channels() != 12 || l.FastChannelsPerPod() != 2 || l.SlowChannelsPerPod() != 1 {
		t.Errorf("channel organization wrong: %d total, %d fast/pod, %d slow/pod",
			l.Channels(), l.FastChannelsPerPod(), l.SlowChannelsPerPod())
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	bad := []Layout{
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 0},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 7, SlowChannels: 4, NumPods: 4},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 3, NumPods: 4},
		{FastBytes: 1000, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4},
		{FastBytes: 0, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 0, SlowChannels: 4, NumPods: 4},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4, FastRowBytes: 3000},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4, SlowRowBytes: 1024},
		{},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d: Validate accepted invalid layout %+v", i, l)
		}
	}
}

func TestSingleLevelLayouts(t *testing.T) {
	hbmOnly := Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	if err := hbmOnly.Validate(); err != nil {
		t.Errorf("HBM-only layout rejected: %v", err)
	}
	if hbmOnly.TwoLevel() {
		t.Error("HBM-only reported as two-level")
	}
	ddrOnly := Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4}
	if err := ddrOnly.Validate(); err != nil {
		t.Errorf("DDR-only layout rejected: %v", err)
	}
	// Every page of a DDR-only layout must resolve without panicking.
	for p := Page(0); p < 100; p++ {
		pod, f := ddrOnly.HomeFrame(p)
		loc := ddrOnly.FrameLocation(pod, f, 0)
		if loc.Fast {
			t.Fatalf("page %d resolved to fast memory in DDR-only layout", p)
		}
	}
	if !DefaultLayout().TwoLevel() {
		t.Error("default layout not two-level")
	}
}

func TestPageLineArithmetic(t *testing.T) {
	if PageOf(4096) != 2 || PageOf(4095) != 1 {
		t.Error("PageOf wrong")
	}
	if LineOf(128) != 2 {
		t.Error("LineOf wrong")
	}
	if LineOfPage(3, 5) != 3*32+5 {
		t.Error("LineOfPage wrong")
	}
	if PageOfLine(LineOfPage(7, 31)) != 7 {
		t.Error("PageOfLine inverse wrong")
	}
	if Page(5).Base() != 10240 {
		t.Error("Base wrong")
	}
}

// Every page must map to exactly one (pod, frame), frames within a pod must
// be unique, and FrameLocation must keep pods on disjoint channel sets.
func TestHomeFrameBijectionFast(t *testing.T) {
	l := DefaultLayout()
	seen := make(map[[2]uint64]Page)
	// Check a dense prefix of fast pages plus a dense prefix of slow pages.
	var pages []Page
	for p := Page(0); p < 4096; p++ {
		pages = append(pages, p)
	}
	for p := l.FastPages(); p < l.FastPages()+4096; p++ {
		pages = append(pages, p)
	}
	for _, p := range pages {
		pod, f := l.HomeFrame(p)
		if pod != l.PodOf(p) {
			t.Fatalf("page %d: HomeFrame pod %d != PodOf %d", p, pod, l.PodOf(p))
		}
		if l.IsFast(p) != l.IsFastFrame(f) {
			t.Fatalf("page %d: fast/slow mismatch (frame %d)", p, f)
		}
		key := [2]uint64{uint64(pod), uint64(f)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("pages %d and %d share frame (%d,%d)", prev, p, pod, f)
		}
		seen[key] = p
	}
}

func TestFrameLocationChannelOwnership(t *testing.T) {
	l := DefaultLayout()
	// Record which pod uses each channel; ownership must be disjoint.
	owner := make(map[int]int)
	for pod := 0; pod < l.NumPods; pod++ {
		frames := []Frame{0, 1, 2, 3, Frame(l.FastPagesPerPod()), Frame(l.FastPagesPerPod() + 1)}
		for _, f := range frames {
			loc := l.FrameLocation(pod, f, 0)
			if loc.Channel < 0 || loc.Channel >= l.Channels() {
				t.Fatalf("pod %d frame %d: channel %d out of range", pod, f, loc.Channel)
			}
			if loc.Fast != l.IsFastFrame(f) {
				t.Fatalf("pod %d frame %d: Fast mismatch", pod, f)
			}
			if prev, ok := owner[loc.Channel]; ok && prev != pod {
				t.Fatalf("channel %d used by pods %d and %d", loc.Channel, prev, pod)
			}
			owner[loc.Channel] = pod
		}
	}
	if len(owner) != l.Channels() {
		t.Errorf("pods cover %d channels, want %d", len(owner), l.Channels())
	}
}

// Consecutive fast frames on the same channel must share rows in groups of
// PagesPerRow — the co-location property behind the paper's libquantum
// row-buffer-hit observation.
func TestFastFrameRowColocation(t *testing.T) {
	l := DefaultLayout()
	cpp := l.FastChannelsPerPod()
	// Frames f and f+cpp are consecutive slots on the same channel.
	base := l.FrameLocation(0, 0, 0)
	for i := 1; i < PagesPerRow; i++ {
		loc := l.FrameLocation(0, Frame(i*cpp), 0)
		if loc.Channel != base.Channel {
			t.Fatalf("frame stride %d changed channel", cpp)
		}
		if loc.Row != base.Row {
			t.Errorf("frame %d: row %d, want same row %d", i*cpp, loc.Row, base.Row)
		}
	}
	next := l.FrameLocation(0, Frame(PagesPerRow*cpp), 0)
	if next.Row == base.Row {
		t.Error("row did not advance after PagesPerRow frames")
	}
}

// TestRowOverridePacking pins the effect of the per-level row-size
// overrides: the number of consecutive same-channel frames sharing a DRAM
// row is RowBytes/PageBytes for that level's override, not the default.
func TestRowOverridePacking(t *testing.T) {
	l := DefaultLayout()
	l.FastRowBytes = 16384 // 8 pages per row
	l.SlowRowBytes = 2048  // 1 page per row: no co-location at all
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	cpp := l.FastChannelsPerPod()
	base := l.FrameLocation(0, 0, 0)
	for i := 1; i < 8; i++ {
		if loc := l.FrameLocation(0, Frame(i*cpp), 0); loc.Row != base.Row {
			t.Fatalf("fast frame %d: row %d, want %d (16 KB rows hold 8 pages)", i*cpp, loc.Row, base.Row)
		}
	}
	if loc := l.FrameLocation(0, Frame(8*cpp), 0); loc.Row == base.Row {
		t.Error("fast row did not advance after 8 frames")
	}
	// Slow frames: every same-channel step must advance the row.
	scpp := l.SlowChannelsPerPod()
	first := Frame(l.FastPagesPerPod())
	s0 := l.FrameLocation(0, first, 0)
	s1 := l.FrameLocation(0, first+Frame(scpp), 0)
	if s0.Fast || s1.Fast {
		t.Fatal("expected slow frames")
	}
	if s1.Channel != s0.Channel || s1.Row == s0.Row {
		t.Fatalf("slow 2 KB rows must advance per frame: %+v then %+v", s0, s1)
	}
}

// Distinct lines must never collide in (channel, row, col): the layout is
// injective over the whole flat address space.
func TestHomeLocationInjective(t *testing.T) {
	l := DefaultLayout()
	type key struct {
		ch  int
		row uint64
		col uint32
	}
	seen := make(map[key]Line)
	probe := func(ln Line) {
		loc := l.HomeLocation(ln)
		k := key{loc.Channel, loc.Row, loc.Col}
		if prev, dup := seen[k]; dup && prev != ln {
			t.Fatalf("lines %d and %d collide at %+v", prev, ln, loc)
		}
		seen[k] = ln
	}
	for ln := Line(0); ln < 8192; ln++ {
		probe(ln)
	}
	slowStart := Line(uint64(l.FastPages()) * LinesPerPage)
	for ln := slowStart; ln < slowStart+8192; ln++ {
		probe(ln)
	}
}

func TestHomeLocationProperty(t *testing.T) {
	l := DefaultLayout()
	total := uint64(l.TotalPages()) * LinesPerPage
	prop := func(raw uint64) bool {
		ln := Line(raw % total)
		loc := l.HomeLocation(ln)
		p := PageOfLine(ln)
		// Fast flag must agree with the page's region.
		if loc.Fast != l.IsFast(p) {
			return false
		}
		// Column must address within a row.
		if loc.Col >= RowBytes/LineBytes {
			return false
		}
		// Fast channels are [0, FastChannels).
		if loc.Fast != (loc.Channel < l.FastChannels) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// All 32 lines of one page land on the same channel and row (a 2KB page
// never spans rows or channels).
func TestPageLinesStayTogether(t *testing.T) {
	l := DefaultLayout()
	for _, p := range []Page{0, 1, 7, 524288, 524289, 1000000} {
		pod, f := l.HomeFrame(p)
		first := l.FrameLocation(pod, f, 0)
		for i := 1; i < LinesPerPage; i++ {
			loc := l.FrameLocation(pod, f, i)
			if loc.Channel != first.Channel || loc.Row != first.Row {
				t.Fatalf("page %d line %d strayed: %+v vs %+v", p, i, loc, first)
			}
			if loc.Col != first.Col+uint32(i) {
				t.Fatalf("page %d line %d: col %d, want %d", p, i, loc.Col, first.Col+uint32(i))
			}
		}
	}
}

// Property: HomeFrame and FrameLocation agree on pod ownership and
// fast/slow classification for arbitrary pages of the default layout.
func TestHomeFrameLocationAgreementProperty(t *testing.T) {
	l := DefaultLayout()
	total := uint64(l.TotalPages())
	prop := func(raw uint64) bool {
		p := Page(raw % total)
		pod, f := l.HomeFrame(p)
		if pod != l.PodOf(p) {
			return false
		}
		loc := l.FrameLocation(pod, f, 0)
		if loc.Fast != l.IsFast(p) {
			return false
		}
		// Fast channels [0, FastChannels) belong to pods in blocks of
		// FastChannelsPerPod; slow similarly.
		if loc.Fast {
			return loc.Channel/l.FastChannelsPerPod() == pod
		}
		return (loc.Channel-l.FastChannels)/l.SlowChannelsPerPod() == pod
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: distinct random lines never collide in (channel,row,col).
func TestHomeLocationCollisionProperty(t *testing.T) {
	l := DefaultLayout()
	totalLines := uint64(l.TotalPages()) * LinesPerPage
	type key struct {
		ch  int
		row uint64
		col uint32
	}
	prop := func(a, b uint64) bool {
		la, lb := Line(a%totalLines), Line(b%totalLines)
		if la == lb {
			return true
		}
		ka := l.HomeLocation(la)
		kb := l.HomeLocation(lb)
		return key{ka.Channel, ka.Row, ka.Col} != key{kb.Channel, kb.Row, kb.Col}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
