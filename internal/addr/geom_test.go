package addr

import (
	"math/rand"
	"testing"
)

// geomTestLayouts covers the paper's configurations plus deliberately
// non-power-of-two shapes that force the slow division path.
func geomTestLayouts() []Layout {
	return []Layout{
		DefaultLayout(),
		{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4},               // HBM-only
		{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4},               // DDR-only
		{FastBytes: 1 << 28, SlowBytes: 1 << 30, FastChannels: 4, SlowChannels: 2, NumPods: 2},
		{FastBytes: 3 * PageBytes * 3 * 64, SlowBytes: 9 * PageBytes * 3 * 64, FastChannels: 9, SlowChannels: 3, NumPods: 3}, // non-pow2 everything
		{FastBytes: 6 * PageBytes * 256, SlowBytes: 12 * PageBytes * 256, FastChannels: 6, SlowChannels: 6, NumPods: 6},
		// Spec-driven row-size overrides (LPDDR5's 2 KB rows, NVM's 4 KB
		// rows, a 16 KB fast part) — the geometry the preset registry feeds
		// through memsys.LayoutFor.
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4, SlowRowBytes: 4096},
		{FastBytes: 1 << 30, SlowBytes: 8 << 30, FastChannels: 8, SlowChannels: 4, NumPods: 4, FastRowBytes: 16384, SlowRowBytes: 2048},
		{FastBytes: 3 * PageBytes * 3 * 64, SlowBytes: 9 * PageBytes * 3 * 64, FastChannels: 9, SlowChannels: 3, NumPods: 3, FastRowBytes: 2048, SlowRowBytes: 4096},
	}
}

// TestGeomMatchesLayout drives Geom and Layout over the same pages, lines
// and frames and requires bit-identical answers. This is the contract that
// lets mechanisms use Geom on the hot path without changing any simulated
// result.
func TestGeomMatchesLayout(t *testing.T) {
	for _, l := range geomTestLayouts() {
		if err := l.Validate(); err != nil {
			t.Fatalf("layout %+v invalid: %v", l, err)
		}
		g := l.Geom()
		rng := rand.New(rand.NewSource(1))
		total := uint64(l.TotalPages())

		pick := func() Page {
			// Mix uniform pages with boundary-adjacent ones.
			switch rng.Intn(4) {
			case 0:
				if f := uint64(l.FastPages()); f > 0 {
					if p := f - 1 + uint64(rng.Intn(3)); p < total {
						return Page(p)
					}
				}
			case 1:
				return 0
			case 2:
				return Page(total - 1)
			}
			return Page(rng.Int63n(int64(total)))
		}

		for i := 0; i < 20000; i++ {
			p := pick()
			if got, want := g.IsFast(p), l.IsFast(p); got != want {
				t.Fatalf("layout %+v: IsFast(%d) = %v, want %v", l, p, got, want)
			}
			if got, want := g.PodOf(p), l.PodOf(p); got != want {
				t.Fatalf("layout %+v: PodOf(%d) = %d, want %d", l, p, got, want)
			}
			gp, gf := g.HomeFrame(p)
			lp, lf := l.HomeFrame(p)
			if gp != lp || gf != lf {
				t.Fatalf("layout %+v: HomeFrame(%d) = (%d,%d), want (%d,%d)", l, p, gp, gf, lp, lf)
			}
			if got, want := g.IsFastFrame(gf), l.IsFastFrame(lf); got != want {
				t.Fatalf("layout %+v: IsFastFrame(%d) = %v, want %v", l, gf, got, want)
			}
			li := rng.Intn(LinesPerPage)
			if got, want := g.FrameLocation(gp, gf, li), l.FrameLocation(lp, lf, li); got != want {
				t.Fatalf("layout %+v: FrameLocation(%d,%d,%d) = %+v, want %+v", l, gp, gf, li, got, want)
			}
			ln := LineOfPage(p, li)
			if got, want := g.HomeLocation(ln), l.HomeLocation(ln); got != want {
				t.Fatalf("layout %+v: HomeLocation(%d) = %+v, want %+v", l, ln, got, want)
			}
		}

		if g.FastPagesN() != uint64(l.FastPages()) || g.TotalPagesN() != total ||
			g.FastLinesN() != uint64(l.FastLines()) || g.FastPerPod() != l.FastPagesPerPod() ||
			g.PagesPerPodN() != l.PagesPerPod() {
			t.Fatalf("layout %+v: cached counts disagree with Layout", l)
		}
	}
}

// TestDiv checks the divisor fast path against hardware division across
// pow2 and non-pow2 divisors.
func TestDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 24, 32, 100, 128, 1 << 20, 3 << 20} {
		v := newDiv(d)
		for i := 0; i < 2000; i++ {
			x := rng.Uint64() >> uint(rng.Intn(64))
			if v.div(x) != x/d || v.mod(x) != x%d {
				t.Fatalf("div(%d): x=%d got (%d,%d) want (%d,%d)", d, x, v.div(x), v.mod(x), x/d, x%d)
			}
		}
	}
}
