package addr

// This file provides Geom, the precomputed form of Layout used on the
// simulator's per-request hot path.
//
// Layout's methods recompute derived quantities (pages per pod, channels
// per pod) and perform runtime division on every call; that is fine at
// configuration time but shows up as a double-digit fraction of a
// simulation's profile when executed millions of times per run. Geom
// computes every derived count once and replaces each division by a stored
// divisor that takes a shift-and-mask fast path when the divisor is a
// power of two (which every paper configuration is). Geom methods are
// bit-identical to their Layout counterparts — asserted exhaustively by
// TestGeomMatchesLayout, including non-power-of-two layouts.

// div is a precomputed unsigned divisor. For power-of-two divisors the
// quotient and remainder are a shift and a mask; otherwise it falls back
// to hardware division, preserving exact Layout semantics.
type div struct {
	d     uint64
	mask  uint64
	shift uint8
	pow2  bool
}

func newDiv(d uint64) div {
	v := div{d: d}
	if d != 0 && d&(d-1) == 0 {
		v.pow2 = true
		v.mask = d - 1
		for q := d; q > 1; q >>= 1 {
			v.shift++
		}
	}
	return v
}

func (v div) div(x uint64) uint64 {
	if v.pow2 {
		return x >> v.shift
	}
	return x / v.d
}

func (v div) mod(x uint64) uint64 {
	if v.pow2 {
		return x & v.mask
	}
	return x % v.d
}

// Divisor is a precomputed divisor for hot-path division by a
// configuration-time constant, with the same power-of-two fast path div
// uses. The zero value divides by zero (panics), like the plain operator.
type Divisor struct{ d div }

// NewDivisor precomputes division by d.
func NewDivisor(d uint64) Divisor { return Divisor{newDiv(d)} }

// Div returns x / d.
func (v Divisor) Div(x uint64) uint64 { return v.d.div(x) }

// Mod returns x % d.
func (v Divisor) Mod(x uint64) uint64 { return v.d.mod(x) }

// Geom is a Layout with every derived quantity precomputed for the
// per-request hot path. Build one with Layout.Geom after validation;
// the zero value is not meaningful.
type Geom struct {
	Layout

	fastPages  uint64
	totalPages uint64
	fastLines  uint64
	fastPerPod uint32
	slowPerPod uint32

	fastCPP int // fast channels per pod
	slowCPP int

	pods       div // NumPods
	fastCh     div // FastChannels
	slowCh     div // SlowChannels
	dFastCPP   div
	dSlowCPP   div
	dFastPP    div // FastPagesPerPod
	dSlowPP    div // SlowPagesPerPod
	dFastRowPg div // FastPagesPerRow
	dSlowRowPg div // SlowPagesPerRow
}

// Geom precomputes the layout's derived geometry. The layout should be
// valid (see Validate); single-level layouts are supported the same way
// Layout's own methods support them.
func (l Layout) Geom() Geom {
	g := Geom{
		Layout:     l,
		fastPages:  uint64(l.FastPages()),
		totalPages: uint64(l.TotalPages()),
		fastLines:  uint64(l.FastLines()),
		fastPerPod: l.FastPagesPerPod(),
		slowPerPod: l.SlowPagesPerPod(),
		fastCPP:    0,
		slowCPP:    0,
		pods:       newDiv(uint64(l.NumPods)),
		fastCh:     newDiv(uint64(l.FastChannels)),
		slowCh:     newDiv(uint64(l.SlowChannels)),
	}
	if l.NumPods > 0 {
		g.fastCPP = l.FastChannels / l.NumPods
		g.slowCPP = l.SlowChannels / l.NumPods
	}
	g.dFastCPP = newDiv(uint64(g.fastCPP))
	g.dSlowCPP = newDiv(uint64(g.slowCPP))
	g.dFastPP = newDiv(uint64(g.fastPerPod))
	g.dSlowPP = newDiv(uint64(g.slowPerPod))
	g.dFastRowPg = newDiv(l.FastPagesPerRow())
	g.dSlowRowPg = newDiv(l.SlowPagesPerRow())
	return g
}

// FastPagesPerRowN returns FastPagesPerRow without recomputing it.
func (g *Geom) FastPagesPerRowN() uint64 { return g.dFastRowPg.d }

// SlowPagesPerRowN returns SlowPagesPerRow without recomputing it.
func (g *Geom) SlowPagesPerRowN() uint64 { return g.dSlowRowPg.d }

// IsFast mirrors Layout.IsFast.
func (g *Geom) IsFast(p Page) bool { return uint64(p) < g.fastPages }

// IsFastFrame mirrors Layout.IsFastFrame.
func (g *Geom) IsFastFrame(f Frame) bool { return uint32(f) < g.fastPerPod }

// FastPagesN returns the fast page count as a plain uint64.
func (g *Geom) FastPagesN() uint64 { return g.fastPages }

// TotalPagesN returns the flat page count as a plain uint64.
func (g *Geom) TotalPagesN() uint64 { return g.totalPages }

// FastLinesN returns the fast line count as a plain uint64.
func (g *Geom) FastLinesN() uint64 { return g.fastLines }

// FastPerPod returns FastPagesPerPod without recomputing it.
func (g *Geom) FastPerPod() uint32 { return g.fastPerPod }

// PagesPerPodN returns PagesPerPod without recomputing it.
func (g *Geom) PagesPerPodN() uint32 { return g.fastPerPod + g.slowPerPod }

// PodOf mirrors Layout.PodOf.
func (g *Geom) PodOf(p Page) int {
	if g.IsFast(p) {
		return int(g.pods.mod(g.fastCh.mod(uint64(p))))
	}
	return int(g.pods.mod(g.slowCh.mod(uint64(p) - g.fastPages)))
}

// HomeFrame mirrors Layout.HomeFrame.
func (g *Geom) HomeFrame(p Page) (pod int, f Frame) {
	if g.IsFast(p) {
		pod = int(g.pods.mod(g.fastCh.mod(uint64(p))))
		return pod, Frame(g.dFastPP.mod(g.pods.div(uint64(p))))
	}
	s := uint64(p) - g.fastPages
	pod = int(g.pods.mod(g.slowCh.mod(s)))
	f = Frame(uint64(g.fastPerPod) + g.dSlowPP.mod(g.pods.div(s)))
	return pod, f
}

// FrameLocation mirrors Layout.FrameLocation.
func (g *Geom) FrameLocation(pod int, f Frame, li int) Location {
	if g.IsFastFrame(f) {
		ch := pod*g.fastCPP + int(g.dFastCPP.mod(uint64(uint32(f))))
		slot := g.dFastCPP.div(uint64(uint32(f)))
		return Location{
			Channel: ch,
			Fast:    true,
			Row:     g.dFastRowPg.div(slot),
			Col:     uint32(g.dFastRowPg.mod(slot))*LinesPerPage + uint32(li),
		}
	}
	sf := uint64(uint32(f) - g.fastPerPod)
	ch := g.FastChannels + pod*g.slowCPP + int(g.dSlowCPP.mod(sf))
	slot := g.dSlowCPP.div(sf)
	return Location{
		Channel: ch,
		Fast:    false,
		Row:     g.dSlowRowPg.div(slot),
		Col:     uint32(g.dSlowRowPg.mod(slot))*LinesPerPage + uint32(li),
	}
}

// HomeLocation mirrors Layout.HomeLocation.
func (g *Geom) HomeLocation(ln Line) Location {
	p := PageOfLine(ln)
	pod, f := g.HomeFrame(p)
	return g.FrameLocation(pod, f, int(uint64(ln)%LinesPerPage))
}
