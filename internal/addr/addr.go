// Package addr defines the address arithmetic and physical memory layout of
// the simulated two-level memory system.
//
// The flat address space covers FastCapacity bytes of die-stacked fast
// memory (HBM) followed by SlowCapacity bytes of off-chip slow memory
// (DDR4), exactly as in the paper's 1+8 GB configuration. Migration
// mechanisms operate on 2 KB pages; memory controllers operate on 64 B
// lines; DRAM row buffers hold 8 KB (four pages).
//
// Pages are interleaved across channels by page index, and channels are
// grouped into pods: pod p owns fast channels {p, p+NumPods} and slow
// channel {p}. This matches Figure 4 of the paper (eight fast MCs, four
// slow MCs, four pods).
package addr

import "fmt"

// Fixed geometry shared by every experiment in the paper.
const (
	LineBytes = 64   // memory-controller transfer granularity
	PageBytes = 2048 // migration granularity (2 KB DRAM page)
	RowBytes  = 8192 // DRAM row-buffer size

	LinesPerPage = PageBytes / LineBytes // 32
	PagesPerRow  = RowBytes / PageBytes  // 4
)

// Addr is a byte address in the flat physical address space.
type Addr uint64

// Page is a global page index (Addr / PageBytes).
type Page uint64

// Line is a global line index (Addr / LineBytes).
type Line uint64

// PageOf returns the page containing a.
func PageOf(a Addr) Page { return Page(a / PageBytes) }

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a / LineBytes) }

// LineOfPage returns the i'th line of page p.
func LineOfPage(p Page, i int) Line {
	return Line(uint64(p)*LinesPerPage + uint64(i))
}

// PageOfLine returns the page containing line l.
func PageOfLine(l Line) Page { return Page(l / LinesPerPage) }

// Base returns the first byte address of page p.
func (p Page) Base() Addr { return Addr(p) * PageBytes }

// Layout describes the physical organization of a two-level memory: its
// capacities, channel counts and pod clustering. The zero value is not
// meaningful; use DefaultLayout or construct one explicitly and call
// Validate.
type Layout struct {
	FastBytes    uint64 // capacity of fast (stacked) memory
	SlowBytes    uint64 // capacity of slow (off-chip) memory
	FastChannels int    // number of fast-memory controllers
	SlowChannels int    // number of slow-memory controllers
	NumPods      int    // number of pods clustering the controllers

	// FastRowBytes/SlowRowBytes override the per-level DRAM row-buffer
	// size (0 selects the paper's RowBytes). Row size determines how many
	// consecutive page slots share a row (the migration co-location
	// effect), so it is part of the physical address map — and therefore
	// of trace-plane and sidecar identity (see trace geomFingerprint).
	// memsys.New fills these from the channel specs.
	FastRowBytes uint64
	SlowRowBytes uint64
}

// DefaultLayout is the paper's baseline configuration (Table 2, Figure 4):
// 1 GB HBM over 8 channels, 8 GB DDR4 over 4 channels, 4 pods.
func DefaultLayout() Layout {
	return Layout{
		FastBytes:    1 << 30,
		SlowBytes:    8 << 30,
		FastChannels: 8,
		SlowChannels: 4,
		NumPods:      4,
	}
}

// Validate checks the structural constraints the simulator relies on. A
// layout may be single-level (one of the capacities zero, with zero
// channels on that level) to model the paper's HBM-only and DDR-only
// reference configurations; migration mechanisms additionally require both
// levels to be populated.
func (l Layout) Validate() error {
	if l.NumPods <= 0 {
		return fmt.Errorf("addr: pod count %d must be positive", l.NumPods)
	}
	if l.TotalBytes() == 0 {
		return fmt.Errorf("addr: memory has zero capacity")
	}
	check := func(level string, bytes uint64, channels int, rowBytes uint64) error {
		if rowBytes != 0 {
			switch {
			case rowBytes&(rowBytes-1) != 0:
				return fmt.Errorf("addr: %s row size %d not a power of two", level, rowBytes)
			case rowBytes < PageBytes:
				return fmt.Errorf("addr: %s row size %d smaller than a %d-byte page", level, rowBytes, PageBytes)
			}
		}
		if bytes == 0 {
			if channels != 0 {
				return fmt.Errorf("addr: %s memory has %d channels but zero capacity", level, channels)
			}
			return nil
		}
		switch {
		case bytes%PageBytes != 0:
			return fmt.Errorf("addr: %s capacity %d not a page multiple", level, bytes)
		case channels <= 0:
			return fmt.Errorf("addr: %s memory has capacity but no channels", level)
		case channels%l.NumPods != 0:
			return fmt.Errorf("addr: %d %s channels not divisible by %d pods", channels, level, l.NumPods)
		case (bytes/PageBytes)%uint64(channels) != 0:
			return fmt.Errorf("addr: %s pages not divisible by %d channels", level, channels)
		}
		return nil
	}
	if err := check("fast", l.FastBytes, l.FastChannels, l.FastRowBytes); err != nil {
		return err
	}
	return check("slow", l.SlowBytes, l.SlowChannels, l.SlowRowBytes)
}

// FastPagesPerRow returns how many page slots share a fast-memory row
// (FastRowBytes, defaulting to the paper's RowBytes when zero).
func (l Layout) FastPagesPerRow() uint64 {
	if l.FastRowBytes == 0 {
		return PagesPerRow
	}
	return l.FastRowBytes / PageBytes
}

// SlowPagesPerRow returns how many page slots share a slow-memory row.
func (l Layout) SlowPagesPerRow() uint64 {
	if l.SlowRowBytes == 0 {
		return PagesPerRow
	}
	return l.SlowRowBytes / PageBytes
}

// TwoLevel reports whether both memory levels are populated, which every
// migration mechanism requires.
func (l Layout) TwoLevel() bool { return l.FastBytes > 0 && l.SlowBytes > 0 }

// TotalBytes returns the size of the flat address space.
func (l Layout) TotalBytes() uint64 { return l.FastBytes + l.SlowBytes }

// FastPages returns the number of pages in fast memory.
func (l Layout) FastPages() Page { return Page(l.FastBytes / PageBytes) }

// SlowPages returns the number of pages in slow memory.
func (l Layout) SlowPages() Page { return Page(l.SlowBytes / PageBytes) }

// TotalPages returns the number of pages in the flat address space.
func (l Layout) TotalPages() Page { return l.FastPages() + l.SlowPages() }

// FastLines returns the number of lines in fast memory.
func (l Layout) FastLines() Line { return Line(l.FastBytes / LineBytes) }

// IsFast reports whether page p originally resides in fast memory, i.e.
// whether its flat address falls in the fast region.
func (l Layout) IsFast(p Page) bool { return p < l.FastPages() }

// Channels returns the total number of memory channels (fast then slow).
// Channel IDs are dense: [0, FastChannels) are fast, the rest slow.
func (l Layout) Channels() int { return l.FastChannels + l.SlowChannels }

// FastChannelsPerPod returns how many fast channels each pod owns.
func (l Layout) FastChannelsPerPod() int { return l.FastChannels / l.NumPods }

// SlowChannelsPerPod returns how many slow channels each pod owns.
func (l Layout) SlowChannelsPerPod() int { return l.SlowChannels / l.NumPods }

// FastPagesPerPod returns the number of fast frames each pod manages.
func (l Layout) FastPagesPerPod() uint32 {
	return uint32(uint64(l.FastPages()) / uint64(l.NumPods))
}

// SlowPagesPerPod returns the number of slow frames each pod manages.
func (l Layout) SlowPagesPerPod() uint32 {
	return uint32(uint64(l.SlowPages()) / uint64(l.NumPods))
}

// PagesPerPod returns the total frames per pod (fast + slow).
func (l Layout) PagesPerPod() uint32 {
	return l.FastPagesPerPod() + l.SlowPagesPerPod()
}

// PodOf returns the pod that owns page p. Fast pages interleave over fast
// channels and slow pages over slow channels; both interleavings place
// page p in pod (p mod NumPods), so a pod's fast and slow frames share the
// same residue class and intra-pod migration never crosses pods.
func (l Layout) PodOf(p Page) int {
	if l.IsFast(p) {
		return int(uint64(p) % uint64(l.FastChannels) % uint64(l.NumPods))
	}
	return int(uint64(p-l.FastPages()) % uint64(l.SlowChannels) % uint64(l.NumPods))
}

// Frame identifies a physical page slot within a pod. Frames
// [0, FastPagesPerPod) are fast; the rest are slow. A page's "home frame"
// is the frame its flat address maps to before any migration.
type Frame uint32

// HomeFrame returns the pod and intra-pod frame that page p maps to with no
// migration.
func (l Layout) HomeFrame(p Page) (pod int, f Frame) {
	if l.IsFast(p) {
		pod = l.PodOf(p)
		// Fast pages in pod `pod` are those with p % FastChannels in the
		// pod's residue class; consecutive such pages get consecutive frames.
		f = Frame(uint64(p) / uint64(l.NumPods))
		return pod, Frame(uint64(f) % uint64(l.FastPagesPerPod()))
	}
	s := uint64(p - l.FastPages())
	pod = int(s % uint64(l.SlowChannels) % uint64(l.NumPods))
	f = Frame(uint64(l.FastPagesPerPod()) + (s/uint64(l.NumPods))%uint64(l.SlowPagesPerPod()))
	return pod, f
}

// IsFastFrame reports whether frame f within a pod is a fast-memory frame.
func (l Layout) IsFastFrame(f Frame) bool { return uint32(f) < l.FastPagesPerPod() }

// Location is a fully resolved physical placement of a line: the channel it
// is serviced by, the bank-row coordinates within the channel, and whether
// the channel belongs to the fast memory.
type Location struct {
	Channel int    // dense channel ID, [0, Channels())
	Fast    bool   // true if Channel is a fast-memory channel
	Row     uint64 // row index within the channel (bank decoding is per-spec)
	Col     uint32 // line offset within the row
}

// FrameLocation resolves line index `li` (0..LinesPerPage-1) of frame f in
// pod `pod` to its physical location.
//
// Within a pod, fast frames interleave round-robin over the pod's fast
// channels; slow frames over its slow channels. Within a channel,
// consecutive frames fill consecutive page slots, a row's worth of frames
// per row (the level's pages-per-row), so pages migrated together into
// neighbouring frames share DRAM rows — the co-location effect behind the
// paper's libquantum row-buffer observation.
func (l Layout) FrameLocation(pod int, f Frame, li int) Location {
	if l.IsFastFrame(f) {
		cpp := l.FastChannelsPerPod()
		ch := pod*cpp + int(uint32(f)%uint32(cpp))
		slot := uint64(uint32(f) / uint32(cpp)) // page slot within channel
		ppr := l.FastPagesPerRow()
		return Location{
			Channel: ch,
			Fast:    true,
			Row:     slot / ppr,
			Col:     uint32(slot%ppr)*LinesPerPage + uint32(li),
		}
	}
	sf := uint32(f) - l.FastPagesPerPod()
	cpp := l.SlowChannelsPerPod()
	ch := l.FastChannels + pod*cpp + int(sf%uint32(cpp))
	slot := uint64(sf / uint32(cpp))
	ppr := l.SlowPagesPerRow()
	return Location{
		Channel: ch,
		Fast:    false,
		Row:     slot / ppr,
		Col:     uint32(slot%ppr)*LinesPerPage + uint32(li),
	}
}

// HomeLocation resolves a line of the flat address space to its physical
// location with no migration, via its page's home frame.
func (l Layout) HomeLocation(ln Line) Location {
	p := PageOfLine(ln)
	pod, f := l.HomeFrame(p)
	return l.FrameLocation(pod, f, int(uint64(ln)%LinesPerPage))
}
