package workload

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

const customDef = `{
  "name": "mydb",
  "profiles": [
    {
      "name": "oltp",
      "footprint_pages": 131072,
      "hot_pages": 8192, "hot_frac": 0.8, "zipf_s": 1.2,
      "lines_per_touch": 2, "write_frac": 0.3, "gap_mean_ns": 80
    },
    {
      "name": "scan",
      "footprint_pages": 262144,
      "stream_frac": 0.95, "sweep_window": 4, "sweep_advance": 4,
      "lines_per_touch": 8, "write_frac": 0.1, "gap_mean_ns": 60
    }
  ],
  "cores": ["oltp", "oltp", "oltp", "oltp", "scan", "scan", "scan", "scan"]
}`

func TestLoadCustom(t *testing.T) {
	w, err := LoadCustom(strings.NewReader(customDef))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "mydb" {
		t.Fatalf("name %q", w.Name)
	}
	s, err := w.Stream(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(s)
	if len(reqs) != 5000 {
		t.Fatalf("stream %d requests", len(reqs))
	}
	cores := map[uint8]bool{}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Time < reqs[i-1].Time {
			t.Fatal("custom trace out of order")
		}
		cores[reqs[i].Core] = true
	}
	if len(cores) != 8 {
		t.Fatalf("%d cores active", len(cores))
	}
}

func TestLoadCustomSingleCoreReplicates(t *testing.T) {
	def := strings.Replace(customDef,
		`"cores": ["oltp", "oltp", "oltp", "oltp", "scan", "scan", "scan", "scan"]`,
		`"cores": ["oltp"]`, 1)
	w, err := LoadCustom(strings.NewReader(def))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := w.Stream(2000, 1)
	cores := map[uint8]bool{}
	var r trace.Request
	for s.Next(&r) {
		cores[r.Core] = true
	}
	if len(cores) != 8 {
		t.Fatalf("homogeneous replication gave %d cores", len(cores))
	}
}

func TestLoadCustomBuiltinFallback(t *testing.T) {
	def := `{"name":"w","profiles":[],"cores":["mcf"]}`
	if _, err := LoadCustom(strings.NewReader(def)); err != nil {
		t.Fatalf("built-in profile fallback failed: %v", err)
	}
}

func TestLoadCustomRejects(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"name":"w","profiles":[],"cores":["nope"]}`,
		`{"name":"w","profiles":[],"cores":["mcf","mcf"]}`, // 2 cores invalid
		`{"name":"w","profiles":[{"name":"p","footprint_pages":0,"lines_per_touch":1,"write_frac":0,"gap_mean_ns":50}],"cores":["p"]}`,
		`{"name":"w","unknown_field":1,"profiles":[],"cores":["mcf"]}`,
	}
	for i, c := range cases {
		if _, err := LoadCustom(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadCustomDuplicateProfile(t *testing.T) {
	def := `{"name":"w","profiles":[
	  {"name":"p","footprint_pages":1024,"lines_per_touch":1,"write_frac":0,"gap_mean_ns":50},
	  {"name":"p","footprint_pages":2048,"lines_per_touch":1,"write_frac":0,"gap_mean_ns":50}
	],"cores":["p"]}`
	if _, err := LoadCustom(strings.NewReader(def)); err == nil {
		t.Error("duplicate profile accepted")
	}
}
