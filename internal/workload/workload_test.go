package workload

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missing", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(Names()) != 17 {
		t.Errorf("profile count %d, want 17 (Table 3)", len(Names()))
	}
}

func TestProfileValidateRejects(t *testing.T) {
	good, _ := ByName("mcf")
	bad := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintPages = 0 },
		func(p *Profile) { p.HotPages = p.FootprintPages + 1 },
		func(p *Profile) { p.HotFrac = 0.9; p.StreamFrac = 0.9 },
		func(p *Profile) { p.ZipfS = 1.0 },
		func(p *Profile) { p.LinesPerTouch = 0 },
		func(p *Profile) { p.LinesPerTouch = 40 },
		func(p *Profile) { p.WriteFrac = 1.5 },
		func(p *Profile) { p.GapMean = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLibquantumFitsInFastMemory(t *testing.T) {
	// The paper's libquantum observation requires the whole 8-core
	// working set to fit inside 1 GB of fast memory.
	p, _ := ByName("libquantum")
	totalBytes := uint64(p.FootprintPages) * 8 * addr.PageBytes
	if totalBytes >= 1<<30 {
		t.Errorf("libquantum 8-core footprint %d MB does not fit in 1 GB HBM",
			totalBytes>>20)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	run := func() []trace.Request {
		g, err := NewGenerator(p, 3, 99)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Collect(trace.NewLimitStream(g, 2000))
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("generator is not deterministic")
	}
}

func TestGeneratorRespectsCoreInterleaving(t *testing.T) {
	p, _ := ByName("gcc")
	for core := 0; core < 8; core++ {
		g, err := NewGenerator(p, core, 7)
		if err != nil {
			t.Fatal(err)
		}
		reqs := trace.Collect(trace.NewLimitStream(g, 500))
		for _, r := range reqs {
			pg := addr.PageOf(addr.Addr(r.Addr))
			if int(uint64(pg)%8) != core {
				t.Fatalf("core %d touched page %d outside its slot", core, pg)
			}
			if r.Core != uint8(core) {
				t.Fatalf("request core field %d, want %d", r.Core, core)
			}
		}
	}
}

func TestGeneratorTimesMonotonic(t *testing.T) {
	p, _ := ByName("bwaves")
	g, _ := NewGenerator(p, 0, 1)
	var prev clock.Time
	var r trace.Request
	for i := 0; i < 10000; i++ {
		g.Next(&r)
		if r.Time <= prev {
			t.Fatalf("time not strictly increasing at %d", i)
		}
		prev = r.Time
	}
}

func TestGeneratorStaysInFootprint(t *testing.T) {
	p, _ := ByName("xalanc")
	g, _ := NewGenerator(p, 2, 5)
	var r trace.Request
	for i := 0; i < 20000; i++ {
		g.Next(&r)
		pg := addr.PageOf(addr.Addr(r.Addr))
		local := int(uint64(pg) / 8)
		if local >= p.FootprintPages {
			t.Fatalf("access outside footprint: local page %d >= %d", local, p.FootprintPages)
		}
	}
}

func TestGeneratorRejectsBadArgs(t *testing.T) {
	p, _ := ByName("gcc")
	if _, err := NewGenerator(p, -1, 1); err == nil {
		t.Error("negative core accepted")
	}
	if _, err := NewGenerator(p, 8, 1); err == nil {
		t.Error("core 8 accepted")
	}
	p.FootprintPages = 1 << 30
	if _, err := NewGenerator(p, 0, 1); err == nil {
		t.Error("oversized footprint accepted")
	}
	var zero Profile
	if _, err := NewGenerator(zero, 0, 1); err == nil {
		t.Error("zero profile accepted")
	}
}

func TestHotSetSkew(t *testing.T) {
	// A hot-set benchmark must concentrate accesses: the top 10% of pages
	// by count should hold well over half of all accesses.
	p, _ := ByName("cactus")
	g, _ := NewGenerator(p, 0, 11)
	counts := map[addr.Page]int{}
	var r trace.Request
	total := 60000
	for i := 0; i < total; i++ {
		g.Next(&r)
		counts[addr.PageOf(addr.Addr(r.Addr))]++
	}
	// Count accesses on pages with >= 20 touches as "hot traffic".
	hot := 0
	for _, c := range counts {
		if c >= 20 {
			hot += c
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.5 {
		t.Errorf("hot-page traffic fraction %.2f, want >= 0.5", frac)
	}
}

func TestStreamingCoversFreshPages(t *testing.T) {
	// A streaming benchmark must keep touching new pages: distinct pages
	// in the second half should be comparable to the first half.
	p, _ := ByName("bwaves")
	g, _ := NewGenerator(p, 0, 13)
	half := 30000
	seen1, seen2 := map[addr.Page]bool{}, map[addr.Page]bool{}
	var r trace.Request
	for i := 0; i < 2*half; i++ {
		g.Next(&r)
		pg := addr.PageOf(addr.Addr(r.Addr))
		if i < half {
			seen1[pg] = true
		} else {
			seen2[pg] = true
		}
	}
	overlap := 0
	for pg := range seen2 {
		if seen1[pg] {
			overlap++
		}
	}
	if f := float64(overlap) / float64(len(seen2)); f > 0.3 {
		t.Errorf("streaming halves overlap %.2f, want < 0.3", f)
	}
}

func TestHomogeneous(t *testing.T) {
	w, err := Homogeneous("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if !w.Homogeneous || w.Name != "lbm" {
		t.Fatal("workload metadata wrong")
	}
	for _, b := range w.Benchmarks {
		if b != "lbm" {
			t.Fatal("non-homogeneous cores")
		}
	}
	if _, err := Homogeneous("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMixes(t *testing.T) {
	for i := 1; i <= 12; i++ {
		w, err := Mix(i)
		if err != nil {
			t.Fatal(err)
		}
		if w.Homogeneous {
			t.Errorf("mix%d flagged homogeneous", i)
		}
		for _, b := range w.Benchmarks {
			if _, ok := ByName(b); !ok {
				t.Errorf("mix%d references unknown benchmark %q", i, b)
			}
		}
	}
	if _, err := Mix(0); err == nil {
		t.Error("mix 0 accepted")
	}
	if _, err := Mix(13); err == nil {
		t.Error("mix 13 accepted")
	}
}

// TestErrorMessagesNameOffender pins that lookup failures identify what
// was asked for — callers (exp.selectWorkloads, the mempod facade)
// surface these messages directly to users.
func TestErrorMessagesNameOffender(t *testing.T) {
	for _, name := range []string{"nonesuch", "", "Lbm", "mix5"} {
		_, err := Homogeneous(name)
		if err == nil {
			t.Errorf("Homogeneous(%q) accepted", name)
			continue
		}
		if want := fmt.Sprintf("%q", name); !strings.Contains(err.Error(), want) {
			t.Errorf("Homogeneous(%q) error %q does not contain %s", name, err, want)
		}
	}
	for _, i := range []int{-1, 0, 13, 1000} {
		_, err := Mix(i)
		if err == nil {
			t.Errorf("Mix(%d) accepted", i)
			continue
		}
		if want := fmt.Sprintf("%d", i); !strings.Contains(err.Error(), want) {
			t.Errorf("Mix(%d) error %q does not contain the index", i, err)
		}
	}
}

func TestAllWorkloads(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("All() = %d workloads, want 27 (15 homogeneous + 12 mixes)", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	if len(HomogeneousNames()) != 15 {
		t.Errorf("homogeneous count %d, want 15", len(HomogeneousNames()))
	}
	if len(MixTable()) != 12 {
		t.Errorf("mix table size %d, want 12", len(MixTable()))
	}
}

func TestWorkloadStreamMergesAllCores(t *testing.T) {
	w, _ := Mix(5)
	s, err := w.Stream(8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(s)
	if len(reqs) != 8000 {
		t.Fatalf("stream length %d", len(reqs))
	}
	cores := map[uint8]int{}
	var prev clock.Time
	for i, r := range reqs {
		cores[r.Core]++
		if r.Time < prev {
			t.Fatalf("merged trace out of order at %d", i)
		}
		prev = r.Time
	}
	if len(cores) != 8 {
		t.Errorf("only %d cores present", len(cores))
	}
}

func TestWorkloadStreamDeterministic(t *testing.T) {
	w, _ := Homogeneous("xalanc")
	a := trace.Collect(w.MustStream(5000, 42))
	b := trace.Collect(w.MustStream(5000, 42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("workload stream not deterministic")
	}
	c := trace.Collect(w.MustStream(5000, 43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAggregateRequestRate(t *testing.T) {
	// The paper calibrates ~5500 requests per 50 µs window across the
	// 8-core workload. Check the average over all workloads is in a
	// sensible band (intensity varies per benchmark).
	var rates []float64
	for _, w := range All() {
		s := w.MustStream(20000, 1)
		reqs := trace.Collect(s)
		span := reqs[len(reqs)-1].Time - reqs[0].Time
		perWindow := float64(len(reqs)) / (float64(span) / float64(50*clock.Microsecond))
		rates = append(rates, perWindow)
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	avg := sum / float64(len(rates))
	if avg < 2500 || avg > 11000 {
		t.Errorf("average requests per 50us = %.0f, want within [2500, 11000]", avg)
	}
}

func TestFlashEngineChurn(t *testing.T) {
	// Flash slots must re-roll: the set of flash-hot pages in the first
	// third of a long trace should differ from the last third.
	p, _ := ByName("cactus")
	if p.FlashFrac <= 0 {
		t.Skip("profile has no flash engine")
	}
	g, _ := NewGenerator(p, 0, 21)
	counts := func(n int) map[addr.Page]int {
		out := map[addr.Page]int{}
		var r trace.Request
		for i := 0; i < n; i++ {
			g.Next(&r)
			out[addr.PageOf(addr.Addr(r.Addr))]++
		}
		return out
	}
	early := counts(60000)
	counts(60000) // gap
	late := counts(60000)
	top := func(m map[addr.Page]int, k int) map[addr.Page]bool {
		type pc struct {
			p addr.Page
			c int
		}
		var all []pc
		for p, c := range m {
			all = append(all, pc{p, c})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
		if len(all) > k {
			all = all[:k]
		}
		out := map[addr.Page]bool{}
		for _, e := range all {
			out[e.p] = true
		}
		return out
	}
	te, tl := top(early, 30), top(late, 30)
	overlap := 0
	for p := range tl {
		if te[p] {
			overlap++
		}
	}
	// Heads persist but flash churns: overlap must be neither total nor zero.
	if overlap == len(tl) {
		t.Errorf("top-30 fully stable (%d/%d): flash churn not visible", overlap, len(tl))
	}
	if overlap == 0 {
		t.Error("top-30 fully churned: stable head missing")
	}
}

func TestProfileEngineFractionsValid(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		total := p.HotFrac + p.StreamFrac + p.FlashFrac
		if total > 1.0001 {
			t.Errorf("%s: engine fractions sum to %.2f", name, total)
		}
	}
}

func TestFlashValidation(t *testing.T) {
	p, _ := ByName("cactus")
	p.FlashFrac = 0.2
	p.FlashPages = 0
	if err := p.Validate(); err == nil {
		t.Error("flash without slots accepted")
	}
	p.FlashPages = 4
	p.FlashPeriod = 0
	if err := p.Validate(); err == nil {
		t.Error("flash without period accepted")
	}
}
