package workload

import (
	"testing"

	"repro/internal/trace"
)

// BenchmarkGeneratorNext measures raw synthetic-trace production — one
// call per simulated request. The generator's random sequence is pinned by
// the determinism tests, so this path is measured, not restructured.
func BenchmarkGeneratorNext(b *testing.B) {
	p, ok := ByName("cactus")
	if !ok {
		b.Fatal("profile cactus not found")
	}
	g, err := NewGenerator(p, 0, 17)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r trace.Request
	for i := 0; i < b.N; i++ {
		g.Next(&r)
	}
}
