package workload

import (
	"testing"

	"repro/internal/trace"
)

// TestSnapshotReplayMatchesLiveGeneration is the differential test behind
// the snapshot cache's correctness claim: recording a workload's stream
// and replaying the packed snapshot must reproduce live generation
// bit-for-bit — every field of every request — so experiments running on
// replayed snapshots are indistinguishable from ones re-generating their
// traces (the golden figure tests then pin this end to end).
func TestSnapshotReplayMatchesLiveGeneration(t *testing.T) {
	const n, seed = 50_000, 42
	for _, name := range []string{"cactus", "bwaves", "mix5"} {
		w := byTestName(t, name)
		snap := trace.Record(w.MustStream(n, seed), n)
		if snap.Len() != n {
			t.Fatalf("%s: recorded %d requests, want %d", name, snap.Len(), n)
		}
		live := w.MustStream(n, seed) // generation is deterministic per (n, seed)
		replay := snap.Stream()
		var want, got trace.Request
		for i := 0; i < n; i++ {
			if !live.Next(&want) || !replay.Next(&got) {
				t.Fatalf("%s: stream ended early at %d", name, i)
			}
			if want != got {
				t.Fatalf("%s: request %d: replay %+v != live %+v", name, i, got, want)
			}
		}
		if replay.Next(&got) {
			t.Fatalf("%s: replay longer than live generation", name)
		}
		snap.Release()
	}
}

// byTestName resolves a benchmark or mix name for the differential test.
func byTestName(t *testing.T, name string) Workload {
	t.Helper()
	if w, err := Homogeneous(name); err == nil {
		return w
	}
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	t.Fatalf("unknown workload %q", name)
	return Workload{}
}
