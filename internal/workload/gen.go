package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/clock"
	"repro/internal/trace"
)

// coreSlots is the number of address-space slots pages interleave over:
// page allocation gives core c the global pages {c, c+8, c+16, ...} in its
// local order, so every core receives an equal share of the fast region
// (the first FastPages of the flat space), as an OS would arrange for
// non-sharing multi-programmed workloads.
const coreSlots = 8

// Generator produces the synthetic LLC-miss stream of one benchmark
// instance on one core. It implements trace.Stream and never ends; wrap it
// with trace.NewLimitStream or use the Workload helpers.
type Generator struct {
	prof Profile
	core uint8
	rng  *rand.Rand
	zipf *rand.Zipf
	now  clock.Time

	hotSeed     uint64   // scatters hot ranks over the footprint
	hotGen      []uint32 // per-rank generation; bumping re-rolls the page
	driftCursor int      // next rank band to re-roll

	flashSlots  []int // current flash pages (core-local indices)
	flashCursor int   // next slot to re-roll
	sinceFlash  int   // touches since the last re-roll
	touchCount  int   // page touches so far (drives drift and sweep advance)
	front       int   // sweep-window front page
	sinceAdv    int

	curPage   addr.Page
	curLine   int
	linesLeft int
}

// NewGenerator returns a generator for profile p on the given core.
func NewGenerator(p Profile, core int, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if core < 0 || core >= coreSlots {
		return nil, fmt.Errorf("workload: core %d out of [0,%d)", core, coreSlots)
	}
	maxFootprint := int(9 << 30 / addr.PageBytes / coreSlots)
	if p.FootprintPages > maxFootprint {
		return nil, fmt.Errorf("workload %s: footprint %d exceeds per-core max %d",
			p.Name, p.FootprintPages, maxFootprint)
	}
	g := &Generator{
		prof: p,
		core: uint8(core),
		rng:  rand.New(rand.NewSource(seed)),
	}
	if p.HotFrac > 0 {
		g.zipf = rand.NewZipf(g.rng, p.ZipfS, 1, uint64(p.HotPages-1))
		g.hotSeed = uint64(seed)*0x9E3779B97F4A7C15 + uint64(core)
		g.hotGen = make([]uint32, p.HotPages)
	}
	if p.StreamFrac > 0 {
		// Sweeps start at a seeded position so the stream does not begin
		// inside the fast region every core allocates first.
		g.front = g.rng.Intn(p.FootprintPages)
	}
	if p.FlashFrac > 0 {
		g.flashSlots = make([]int, p.FlashPages)
		for i := range g.flashSlots {
			g.flashSlots[i] = g.rng.Intn(p.FootprintPages)
		}
	}
	return g, nil
}

// globalPage maps a core-local page index to the flat address space.
func (g *Generator) globalPage(local int) addr.Page {
	return addr.Page(uint64(local)*coreSlots + uint64(g.core))
}

// pickPage chooses the next page touch according to the engine mixture.
func (g *Generator) pickPage() addr.Page {
	p := &g.prof
	g.touchCount++

	// Hot-set drift: every DriftPeriod touches, the next band of
	// DriftStep ranks is re-rolled to fresh pages (a phase change for
	// that slice of the working set). Surviving ranks keep their pages
	// and their traffic, so newly hot pages must displace still-warm
	// incumbents — the dynamic that separates adaptive tracking from
	// threshold- and epoch-lagged schemes.
	if p.DriftPeriod > 0 && g.hotGen != nil && g.touchCount%p.DriftPeriod == 0 {
		for i := 0; i < p.DriftStep && i < p.HotPages; i++ {
			g.hotGen[(g.driftCursor+i)%p.HotPages]++
		}
		g.driftCursor = (g.driftCursor + p.DriftStep) % p.HotPages
	}

	// Flash slot re-roll.
	if g.flashSlots != nil {
		g.sinceFlash++
		if g.sinceFlash >= p.FlashPeriod {
			g.sinceFlash = 0
			g.flashSlots[g.flashCursor] = g.rng.Intn(p.FootprintPages)
			g.flashCursor = (g.flashCursor + 1) % len(g.flashSlots)
		}
	}

	u := g.rng.Float64()
	switch {
	case u < p.FlashFrac:
		return g.globalPage(g.flashSlots[g.rng.Intn(len(g.flashSlots))])
	case u < p.FlashFrac+p.StreamFrac:
		// Sweep engine: the window advances steadily through the
		// footprint; accesses spread over the active window.
		g.sinceAdv++
		if g.sinceAdv >= p.SweepAdvance {
			g.sinceAdv = 0
			g.front = (g.front + 1) % p.FootprintPages
		}
		off := 0
		if p.SweepWindow > 1 {
			off = g.rng.Intn(p.SweepWindow)
		}
		return g.globalPage((g.front + off) % p.FootprintPages)
	case u < p.FlashFrac+p.StreamFrac+p.HotFrac:
		return g.globalPage(g.hotLocal(int(g.zipf.Uint64())))
	default:
		return g.globalPage(g.rng.Intn(p.FootprintPages))
	}
}

// hotLocal maps a hot rank (at its current generation) to a core-local
// page via a seeded hash. Hashed placement scatters each core's hot data
// independently over its footprint, the way real allocations land: hot
// pages of different cores collide in THM/CAMEO segments with Poisson
// probability, and most of the hot set starts in slow memory (the fast
// region is only a fraction of the footprint), so migration has real work
// to do.
func (g *Generator) hotLocal(rank int) int {
	x := uint64(rank)<<32 | uint64(g.hotGen[rank])
	x = x*0x9E3779B97F4A7C15 ^ g.hotSeed
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int(x % uint64(g.prof.FootprintPages))
}

// Next implements trace.Stream. The stream is infinite.
//
// Requests arrive in bursts: an out-of-order core exposes the misses of
// one page touch almost back-to-back (memory-level parallelism), then goes
// quiet until the next touch. The inter-touch gap preserves the profile's
// mean request rate.
func (g *Generator) Next(r *trace.Request) bool {
	if g.linesLeft == 0 {
		g.curPage = g.pickPage()
		n := g.prof.LinesPerTouch
		// Touch length jitters around the profile value.
		if n > 1 {
			n = 1 + g.rng.Intn(2*n-1)
		}
		g.linesLeft = n
		maxStart := addr.LinesPerPage - g.linesLeft
		g.curLine = 0
		if maxStart > 0 {
			g.curLine = g.rng.Intn(maxStart + 1)
		}
		// The whole touch's budget lands as one inter-burst gap.
		budget := g.prof.GapMean * clock.Duration(n)
		g.now += budget/2 + clock.Duration(g.rng.Int63n(int64(budget)))
	} else {
		// Intra-burst spacing: successive misses issue at core speed.
		g.now += clock.Duration(2+g.rng.Int63n(5)) * clock.Nanosecond
	}

	r.Addr = uint64(g.curPage.Base()) + uint64(g.curLine)*addr.LineBytes
	r.Time = g.now
	r.Write = g.rng.Float64() < g.prof.WriteFrac
	r.Core = g.core
	g.curLine++
	g.linesLeft--
	return true
}
