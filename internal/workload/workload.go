package workload

import (
	"fmt"

	"repro/internal/trace"
)

// Workload is an 8-core multi-programmed trace recipe: either eight copies
// of one benchmark (homogeneous) or one of the twelve mixes of Table 3.
type Workload struct {
	Name        string
	Homogeneous bool
	Benchmarks  [8]string // one benchmark per core
}

// Stream builds the workload's merged, timestamp-ordered trace with
// exactly n requests. The same (n, seed) always yields the same trace.
func (w Workload) Stream(n int, seed int64) (trace.Stream, error) {
	srcs := make([]trace.Stream, 8)
	for core, name := range w.Benchmarks {
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("workload %s: unknown benchmark %q", w.Name, name)
		}
		g, err := NewGenerator(p, core, seed*8+int64(core)+1)
		if err != nil {
			return nil, err
		}
		srcs[core] = g
	}
	return trace.NewLimitStream(trace.NewMergeStream(srcs...), n), nil
}

// MustStream is Stream for known-good workloads; it panics on error.
func (w Workload) MustStream(n int, seed int64) trace.Stream {
	s, err := w.Stream(n, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// homogeneousSet lists the paper's 15 homogeneous workloads. (Table 3
// names 17 benchmarks; the paper runs 15 of them homogeneously. The two
// mix-only benchmarks here are dealii and sphinx.)
var homogeneousSet = []string{
	"astar", "bwaves", "bzip", "cactus", "gcc", "gems", "lbm", "leslie",
	"libquantum", "mcf", "milc", "omnetpp", "soplex", "xalanc", "zeusmp",
}

// Homogeneous returns the workload running 8 copies of one benchmark. As
// in the paper, the copies share no pages: each core's footprint occupies
// a disjoint interleaved slice of the address space.
func Homogeneous(name string) (Workload, error) {
	if _, ok := ByName(name); !ok {
		return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	w := Workload{Name: name, Homogeneous: true}
	for i := range w.Benchmarks {
		w.Benchmarks[i] = name
	}
	return w, nil
}

// mixes encodes Table 3 normalized to exactly eight cores per mix. The
// published table is reproduced from OCR with ambiguous check-mark counts
// in a few columns; columns with more than eight marks are truncated and
// columns with fewer are padded by repeating members, preserving each
// mix's dominant character.
var mixes = [12][8]string{
	{"astar", "gcc", "gems", "lbm", "leslie", "mcf", "milc", "omnetpp"},
	{"gcc", "gcc", "gems", "leslie", "mcf", "omnetpp", "sphinx", "zeusmp"},
	{"gcc", "lbm", "lbm", "leslie", "libquantum", "mcf", "milc", "sphinx"},
	{"bzip", "dealii", "dealii", "gcc", "mcf", "mcf", "milc", "soplex"},
	{"bwaves", "bzip", "bzip", "cactus", "dealii", "dealii", "mcf", "xalanc"},
	{"astar", "bwaves", "bzip", "gcc", "gcc", "lbm", "libquantum", "mcf"},
	{"astar", "bwaves", "bwaves", "bzip", "bzip", "dealii", "soplex", "xalanc"},
	{"astar", "astar", "bwaves", "bzip", "cactus", "dealii", "omnetpp", "xalanc"},
	{"bwaves", "bwaves", "dealii", "gems", "gems", "leslie", "leslie", "sphinx"},
	{"astar", "astar", "gcc", "gcc", "lbm", "libquantum", "libquantum", "mcf"},
	{"bzip", "bzip", "gems", "gems", "leslie", "leslie", "omnetpp", "sphinx"},
	{"bwaves", "bwaves", "cactus", "cactus", "cactus", "dealii", "dealii", "xalanc"},
}

// Mix returns mix workload i in [1, 12], per Table 3.
func Mix(i int) (Workload, error) {
	if i < 1 || i > len(mixes) {
		return Workload{}, fmt.Errorf("workload: mix %d out of [1,%d]", i, len(mixes))
	}
	return Workload{
		Name:       fmt.Sprintf("mix%d", i),
		Benchmarks: mixes[i-1],
	}, nil
}

// All returns the paper's full workload set: 15 homogeneous workloads then
// mixes 1–12, in stable order.
func All() []Workload {
	out := make([]Workload, 0, len(homogeneousSet)+len(mixes))
	for _, name := range homogeneousSet {
		w, err := Homogeneous(name)
		if err != nil {
			panic(err) // homogeneousSet is static and validated by tests
		}
		out = append(out, w)
	}
	for i := 1; i <= len(mixes); i++ {
		w, err := Mix(i)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// HomogeneousNames returns the names of the 15 homogeneous workloads.
func HomogeneousNames() []string {
	out := make([]string, len(homogeneousSet))
	copy(out, homogeneousSet)
	return out
}

// MixTable returns, for each mix, its per-core benchmark composition.
// This regenerates Table 3 of the paper.
func MixTable() map[string][8]string {
	out := make(map[string][8]string, len(mixes))
	for i, m := range mixes {
		out[fmt.Sprintf("mix%d", i+1)] = m
	}
	return out
}
