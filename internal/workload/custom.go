package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/trace"
)

// ProfileJSON is the serialized form of a Profile for custom workloads.
// Sizes are in pages (2 KB), the gap in nanoseconds; all other fields map
// one-to-one onto Profile.
type ProfileJSON struct {
	Name           string  `json:"name"`
	FootprintPages int     `json:"footprint_pages"`
	HotPages       int     `json:"hot_pages,omitempty"`
	HotFrac        float64 `json:"hot_frac,omitempty"`
	ZipfS          float64 `json:"zipf_s,omitempty"`
	DriftPeriod    int     `json:"drift_period,omitempty"`
	DriftStep      int     `json:"drift_step,omitempty"`
	StreamFrac     float64 `json:"stream_frac,omitempty"`
	SweepWindow    int     `json:"sweep_window,omitempty"`
	SweepAdvance   int     `json:"sweep_advance,omitempty"`
	FlashPages     int     `json:"flash_pages,omitempty"`
	FlashFrac      float64 `json:"flash_frac,omitempty"`
	FlashPeriod    int     `json:"flash_period,omitempty"`
	LinesPerTouch  int     `json:"lines_per_touch"`
	WriteFrac      float64 `json:"write_frac"`
	GapMeanNs      int64   `json:"gap_mean_ns"`
}

// toProfile converts the JSON form and validates it.
func (pj ProfileJSON) toProfile() (Profile, error) {
	p := Profile{
		Name:           pj.Name,
		FootprintPages: pj.FootprintPages,
		HotPages:       pj.HotPages,
		HotFrac:        pj.HotFrac,
		ZipfS:          pj.ZipfS,
		DriftPeriod:    pj.DriftPeriod,
		DriftStep:      pj.DriftStep,
		StreamFrac:     pj.StreamFrac,
		SweepWindow:    pj.SweepWindow,
		SweepAdvance:   pj.SweepAdvance,
		FlashPages:     pj.FlashPages,
		FlashFrac:      pj.FlashFrac,
		FlashPeriod:    pj.FlashPeriod,
		LinesPerTouch:  pj.LinesPerTouch,
		WriteFrac:      pj.WriteFrac,
		GapMean:        clock.Duration(pj.GapMeanNs) * clock.Nanosecond,
	}
	return p, p.Validate()
}

// CustomWorkloadJSON describes an 8-core workload built from custom
// profiles: `profiles` defines the benchmarks, `cores` names which profile
// each of the eight cores runs (a single entry is replicated to all
// cores, i.e. a homogeneous workload).
type CustomWorkloadJSON struct {
	Name     string        `json:"name"`
	Profiles []ProfileJSON `json:"profiles"`
	Cores    []string      `json:"cores"`
}

// CustomWorkload is a workload over user-defined profiles. It provides
// the same Stream interface as the built-in Workload.
type CustomWorkload struct {
	Name     string
	profiles [8]Profile
}

// LoadCustom parses a custom workload definition from JSON.
func LoadCustom(r io.Reader) (*CustomWorkload, error) {
	var def CustomWorkloadJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, fmt.Errorf("workload: parsing custom definition: %w", err)
	}
	if def.Name == "" {
		return nil, fmt.Errorf("workload: custom definition has no name")
	}
	byName := make(map[string]Profile, len(def.Profiles))
	for _, pj := range def.Profiles {
		p, err := pj.toProfile()
		if err != nil {
			return nil, err
		}
		if _, dup := byName[p.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate custom profile %q", p.Name)
		}
		byName[p.Name] = p
	}
	switch len(def.Cores) {
	case 1:
		def.Cores = []string{def.Cores[0], def.Cores[0], def.Cores[0], def.Cores[0],
			def.Cores[0], def.Cores[0], def.Cores[0], def.Cores[0]}
	case 8:
	default:
		return nil, fmt.Errorf("workload: custom cores must list 1 or 8 profiles, got %d", len(def.Cores))
	}
	w := &CustomWorkload{Name: def.Name}
	for i, name := range def.Cores {
		p, ok := byName[name]
		if !ok {
			// Fall back to the built-in Table 3 profiles by name.
			p, ok = ByName(name)
		}
		if !ok {
			return nil, fmt.Errorf("workload: core %d references unknown profile %q", i, name)
		}
		w.profiles[i] = p
	}
	return w, nil
}

// Stream builds the custom workload's merged trace, like Workload.Stream.
func (w *CustomWorkload) Stream(n int, seed int64) (trace.Stream, error) {
	srcs := make([]trace.Stream, 8)
	for core, p := range w.profiles {
		g, err := NewGenerator(p, core, seed*8+int64(core)+1)
		if err != nil {
			return nil, err
		}
		srcs[core] = g
	}
	return trace.NewLimitStream(trace.NewMergeStream(srcs...), n), nil
}
