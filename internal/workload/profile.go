// Package workload generates the multi-programmed memory traces the
// evaluation runs on.
//
// The paper traces SPEC CPU2006 with Sniper on a simulated 8-core CPU and
// replays the traces in Ramulator. SPEC binaries, reference inputs and the
// Sniper toolchain cannot ship with this repository, so each benchmark is
// replaced by a deterministic synthetic generator whose parameters encode
// the memory behaviours the paper's analysis depends on:
//
//   - streaming engines (bwaves, libquantum) whose footprints exceed an
//     interval, making Full Counters predict the future at ~0 accuracy
//     while MEA's recency bias still catches boundary pages;
//   - a work-front engine (lbm) doing a constant amount of work per page,
//     where FC's top counts point at finished pages but MEA tracks the
//     pages still being worked on;
//   - stable hot-set engines (cactus) where exact counting beats MEA;
//   - drifting hot-set engines (xalanc, gcc, omnetpp) where phase changes
//     reward MEA's adaptivity;
//   - libquantum's total footprint fits inside the 1 GB fast memory, which
//     the paper uses to demonstrate the row-buffer co-location effect.
//
// All generators are seeded; identical seeds reproduce identical traces.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/clock"
)

// Profile parameterizes one benchmark's synthetic memory behaviour. An
// access stream is a mixture of three engines: a sweeping work-front
// (weight StreamFrac), a zipf-distributed hot set (weight HotFrac) and
// uniform cold accesses (the remainder).
type Profile struct {
	Name string

	// FootprintPages is the number of distinct 2 KB pages one instance
	// (one core) touches.
	FootprintPages int

	// Hot-set engine.
	HotPages    int     // size of the hot set in pages
	HotFrac     float64 // fraction of touches directed at the hot set
	ZipfS       float64 // zipf skew within the hot set (>1)
	DriftPeriod int     // touches between hot-set drift steps; 0 = stationary
	DriftStep   int     // pages the hot set advances per drift step

	// Sweep engine (streaming / work front).
	StreamFrac   float64 // fraction of touches directed at the sweep window
	SweepWindow  int     // pages in the active window
	SweepAdvance int     // touches per one-page advance of the window

	// Flash engine: a small set of short-lived, heavily hammered pages
	// (buffers, stack frames, transient nodes). One flash slot is
	// re-rolled to a fresh page every FlashPeriod touches, so a slot
	// lives FlashPages x FlashPeriod touches — one to two tracking
	// intervals. Flash pages dominate an interval's top access tiers and
	// then die; they are why exact counting predicts the future poorly
	// (§3 of the paper) while recency-biased MEA catches the survivors.
	FlashPages  int     // slots per core (0 disables the engine)
	FlashFrac   float64 // fraction of touches directed at flash slots
	FlashPeriod int     // touches between single-slot re-rolls

	// Access shape.
	LinesPerTouch int     // consecutive 64 B lines emitted per page touch
	WriteFrac     float64 // fraction of requests that are writebacks

	// GapMean is the mean inter-request gap of one core. The paper's
	// aggregate rate is ~5500 requests per 50 µs over 8 cores
	// (≈ 72.7 ns/request/core); profiles vary around that by intensity.
	GapMean clock.Duration
}

// Validate checks that the profile is internally consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.FootprintPages <= 0:
		return fmt.Errorf("workload %s: footprint %d", p.Name, p.FootprintPages)
	case p.HotPages < 0 || p.HotPages > p.FootprintPages:
		return fmt.Errorf("workload %s: hot pages %d out of range", p.Name, p.HotPages)
	case p.HotFrac < 0 || p.StreamFrac < 0 || p.FlashFrac < 0 ||
		p.HotFrac+p.StreamFrac+p.FlashFrac > 1:
		return fmt.Errorf("workload %s: engine fractions invalid", p.Name)
	case p.FlashFrac > 0 && (p.FlashPages <= 0 || p.FlashPeriod <= 0):
		return fmt.Errorf("workload %s: flash parameters invalid", p.Name)
	case p.HotFrac > 0 && p.ZipfS <= 1:
		return fmt.Errorf("workload %s: zipf s must exceed 1", p.Name)
	case p.StreamFrac > 0 && (p.SweepWindow <= 0 || p.SweepAdvance <= 0):
		return fmt.Errorf("workload %s: sweep parameters invalid", p.Name)
	case p.LinesPerTouch <= 0 || p.LinesPerTouch > 32:
		return fmt.Errorf("workload %s: lines per touch %d", p.Name, p.LinesPerTouch)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("workload %s: write fraction %f", p.Name, p.WriteFrac)
	case p.GapMean <= 0:
		return fmt.Errorf("workload %s: gap mean %d", p.Name, p.GapMean)
	}
	return nil
}

const (
	mb    = 512              // pages per MiB of footprint (2 KB pages)
	nsGap = clock.Nanosecond // base unit for GapMean
)

// profiles defines the 17 SPEC CPU2006 benchmarks of Table 3. The numbers
// are qualitative stand-ins tuned to the behaviours described in §3 and
// §6.3 of the paper, not measurements of SPEC.
var profiles = map[string]Profile{
	"astar": {
		Name: "astar", FootprintPages: 320 * mb,
		HotPages: 64 * mb, HotFrac: 0.80, ZipfS: 1.15, DriftPeriod: 4000, DriftStep: 8192,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.25, GapMean: 95 * nsGap,
	},
	"bwaves": {
		// Pure streaming over a structure far larger than an interval.
		Name: "bwaves", FootprintPages: 400 * mb,
		StreamFrac: 0.95, SweepWindow: 4, SweepAdvance: 4,
		HotPages: mb, HotFrac: 0.02, ZipfS: 1.20,
		LinesPerTouch: 8, WriteFrac: 0.30, GapMean: 55 * nsGap,
	},
	"bzip": {
		Name: "bzip", FootprintPages: 240 * mb,
		HotPages: 48 * mb, HotFrac: 0.68, ZipfS: 1.15, DriftPeriod: 3333, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		StreamFrac: 0.15, SweepWindow: 8, SweepAdvance: 16,
		LinesPerTouch: 4, WriteFrac: 0.35, GapMean: 85 * nsGap,
	},
	"cactus": {
		// Stable hot set, no drift: exact counting (FC) predicts best.
		Name: "cactus", FootprintPages: 360 * mb,
		HotPages: 96 * mb, HotFrac: 0.80, ZipfS: 1.15,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 3, WriteFrac: 0.30, GapMean: 75 * nsGap,
	},
	"dealii": {
		Name: "dealii", FootprintPages: 280 * mb,
		HotPages: 48 * mb, HotFrac: 0.78, ZipfS: 1.15, DriftPeriod: 5000, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.25, GapMean: 90 * nsGap,
	},
	"gcc": {
		Name: "gcc", FootprintPages: 200 * mb,
		HotPages: 24 * mb, HotFrac: 0.80, ZipfS: 1.20, DriftPeriod: 2000, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.30, GapMean: 110 * nsGap,
	},
	"gems": {
		Name: "gems", FootprintPages: 400 * mb,
		HotPages: 128 * mb, HotFrac: 0.78, ZipfS: 1.10, DriftPeriod: 5000, DriftStep: 16384,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 4, WriteFrac: 0.30, GapMean: 60 * nsGap,
	},
	"lbm": {
		// Constant work per page over a large set: a slow work front.
		Name: "lbm", FootprintPages: 450 * mb,
		StreamFrac: 0.90, SweepWindow: 32, SweepAdvance: 20,
		HotPages: mb, HotFrac: 0.05, ZipfS: 1.20,
		LinesPerTouch: 6, WriteFrac: 0.45, GapMean: 55 * nsGap,
	},
	"leslie": {
		Name: "leslie", FootprintPages: 320 * mb,
		StreamFrac: 0.50, SweepWindow: 8, SweepAdvance: 12,
		HotPages: 48 * mb, HotFrac: 0.33, ZipfS: 1.15, DriftPeriod: 8333, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 4, WriteFrac: 0.30, GapMean: 70 * nsGap,
	},
	"libquantum": {
		// Streams repeatedly over a footprint that fits in fast memory:
		// 12 MiB/core × 8 cores = 96 MiB ≪ 1 GB HBM.
		Name: "libquantum", FootprintPages: 12 * mb,
		StreamFrac: 0.95, SweepWindow: 2, SweepAdvance: 4,
		HotPages: mb / 2, HotFrac: 0.02, ZipfS: 1.20,
		LinesPerTouch: 8, WriteFrac: 0.25, GapMean: 60 * nsGap,
	},
	"mcf": {
		Name: "mcf", FootprintPages: 440 * mb,
		HotPages: 128 * mb, HotFrac: 0.78, ZipfS: 1.12, DriftPeriod: 6666, DriftStep: 16384,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 1, WriteFrac: 0.20, GapMean: 45 * nsGap,
	},
	"milc": {
		Name: "milc", FootprintPages: 360 * mb,
		HotPages: 64 * mb, HotFrac: 0.58, ZipfS: 1.15, DriftPeriod: 6000, DriftStep: 8192,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		StreamFrac: 0.25, SweepWindow: 16, SweepAdvance: 24,
		LinesPerTouch: 4, WriteFrac: 0.35, GapMean: 65 * nsGap,
	},
	"omnetpp": {
		Name: "omnetpp", FootprintPages: 240 * mb,
		HotPages: 48 * mb, HotFrac: 0.80, ZipfS: 1.15, DriftPeriod: 2333, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 1, WriteFrac: 0.30, GapMean: 80 * nsGap,
	},
	"soplex": {
		Name: "soplex", FootprintPages: 320 * mb,
		HotPages: 96 * mb, HotFrac: 0.78, ZipfS: 1.15, DriftPeriod: 4000, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.25, GapMean: 70 * nsGap,
	},
	"sphinx": {
		Name: "sphinx", FootprintPages: 220 * mb,
		HotPages: 48 * mb, HotFrac: 0.80, ZipfS: 1.15, DriftPeriod: 6666, DriftStep: 12288,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.20, GapMean: 95 * nsGap,
	},
	"xalanc": {
		// Fast-drifting hot set: MEA's adaptivity wins prediction.
		Name: "xalanc", FootprintPages: 280 * mb,
		HotPages: 64 * mb, HotFrac: 0.78, ZipfS: 1.15, DriftPeriod: 2000, DriftStep: 4096,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 2, WriteFrac: 0.30, GapMean: 75 * nsGap,
	},
	"zeusmp": {
		Name: "zeusmp", FootprintPages: 360 * mb,
		StreamFrac: 0.50, SweepWindow: 32, SweepAdvance: 48,
		HotPages: 48 * mb, HotFrac: 0.33, ZipfS: 1.15, DriftPeriod: 6666, DriftStep: 6144,
		FlashPages: 2, FlashFrac: 0.12, FlashPeriod: 150,
		LinesPerTouch: 4, WriteFrac: 0.35, GapMean: 70 * nsGap,
	},
}

// ByName returns the profile for a benchmark from Table 3.
func ByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
