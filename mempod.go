package mempod

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/cameo"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/workload"
)

// Mechanism selects the memory-management scheme for a run.
type Mechanism string

// The mechanisms and reference configurations of the paper's evaluation.
const (
	MechMemPod  Mechanism = "MemPod"   // the paper's contribution (§5)
	MechHMA     Mechanism = "HMA"      // OS-driven interval migration baseline
	MechTHM     Mechanism = "THM"      // segment/competing-counter baseline
	MechCAMEO   Mechanism = "CAMEO"    // line-granularity event-swap baseline
	MechTLM     Mechanism = "TLM"      // two-level memory, no migration
	MechHBMOnly Mechanism = "HBM-only" // 9 GB of stacked memory, no DDR
	MechDDROnly Mechanism = "DDR-only" // 9 GB of off-chip memory, no HBM
)

// Mechanisms lists every supported Mechanism value.
func Mechanisms() []Mechanism {
	return []Mechanism{MechMemPod, MechHMA, MechTHM, MechCAMEO, MechTLM, MechHBMOnly, MechDDROnly}
}

// Duration re-exports the simulator's femtosecond time unit for options.
type Duration = clock.Duration

// Time-unit constants for building Options durations.
const (
	Nanosecond  = clock.Nanosecond
	Microsecond = clock.Microsecond
	Millisecond = clock.Millisecond
)

// MemPodOptions tunes the MemPod mechanism (§6.3.1 design space).
// Zero values select the paper's design point.
type MemPodOptions struct {
	Interval    Duration // epoch length (default 50 µs)
	Counters    int      // MEA entries per pod (default 64)
	CounterBits int      // saturating counter width (default 2)
	CacheBytes  int      // remap-cache capacity; 0 disables the cache model
	// UseFullCounters swaps the MEA unit for exact per-page counters —
	// the tracking ablation, not a buildable design point.
	UseFullCounters bool
}

// HMAOptions tunes the HMA baseline. Zero values select the paper's
// parameters (100 ms interval, 7 ms sort), which require correspondingly
// long traces; see exp.Config for the scaled experiment defaults.
type HMAOptions struct {
	Interval      Duration
	SortStall     Duration
	MaxMigrations int
	CacheBytes    int
}

// Options configures one simulation run.
type Options struct {
	// Mechanism picks the management scheme (default MechMemPod).
	Mechanism Mechanism
	// Requests is the trace length (default 500 000).
	Requests int
	// Seed makes the run reproducible (default 42).
	Seed int64
	// FutureMemories selects the §6.3.4 technology point: 4 GHz HBM and
	// DDR4-2400 instead of the baseline parts.
	FutureMemories bool
	// Window caps outstanding requests (default sim.DefaultWindow;
	// negative = unlimited).
	Window int

	MemPod MemPodOptions
	HMA    HMAOptions
}

// Result is the outcome of a run. AMMAT() reports the paper's headline
// metric in nanoseconds.
type Result = stats.Result

// Workloads returns the names of the paper's 27 workloads: 15 homogeneous
// benchmark names plus mix1..mix12 (Table 3).
func Workloads() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name)
	}
	return out
}

// Run simulates one workload under one mechanism and returns its metrics.
// The workload is a benchmark name ("mcf"), a mix ("mix5"), per Workloads.
func Run(workloadName string, o Options) (Result, error) {
	w, err := lookupWorkload(workloadName)
	if err != nil {
		return Result{}, err
	}
	if o.Requests == 0 {
		o.Requests = 500_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Mechanism == "" {
		o.Mechanism = MechMemPod
	}

	fast, slow := dram.HBM(), dram.DDR4_1600()
	if o.FutureMemories {
		fast, slow = dram.HBMOverclocked(), dram.DDR4_2400()
	}
	layout := addr.DefaultLayout()
	switch o.Mechanism {
	case MechHBMOnly:
		layout = addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	case MechDDROnly:
		layout = addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4}
	}
	sys, err := memsys.New(layout, fast, slow)
	if err != nil {
		return Result{}, err
	}
	backend := mech.NewBackend(sys)

	m, err := buildMechanism(o, backend)
	if err != nil {
		return Result{}, err
	}
	engine := sim.New(backend, m)
	engine.Window = o.Window
	s, err := w.Stream(o.Requests, o.Seed)
	if err != nil {
		return Result{}, err
	}
	return engine.Run(w.Name, s)
}

// RunCustom is Run for a user-defined workload: def is the JSON custom
// workload definition documented in internal/workload (profiles plus an
// 8-core assignment; built-in benchmark names may be referenced).
func RunCustom(def io.Reader, o Options) (Result, error) {
	w, err := workload.LoadCustom(def)
	if err != nil {
		return Result{}, err
	}
	if o.Requests == 0 {
		o.Requests = 500_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Mechanism == "" {
		o.Mechanism = MechMemPod
	}
	fast, slow := dram.HBM(), dram.DDR4_1600()
	if o.FutureMemories {
		fast, slow = dram.HBMOverclocked(), dram.DDR4_2400()
	}
	layout := addr.DefaultLayout()
	switch o.Mechanism {
	case MechHBMOnly:
		layout = addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	case MechDDROnly:
		layout = addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4}
	}
	sys, err := memsys.New(layout, fast, slow)
	if err != nil {
		return Result{}, err
	}
	backend := mech.NewBackend(sys)
	m, err := buildMechanism(o, backend)
	if err != nil {
		return Result{}, err
	}
	engine := sim.New(backend, m)
	engine.Window = o.Window
	s, err := w.Stream(o.Requests, o.Seed)
	if err != nil {
		return Result{}, err
	}
	return engine.Run(w.Name, s)
}

func buildMechanism(o Options, backend *mech.Backend) (mech.Mechanism, error) {
	switch o.Mechanism {
	case MechMemPod:
		cfg := core.DefaultConfig()
		if o.MemPod.Interval > 0 {
			cfg.Interval = o.MemPod.Interval
		}
		if o.MemPod.Counters > 0 {
			cfg.Counters = o.MemPod.Counters
		}
		if o.MemPod.CounterBits > 0 {
			cfg.CounterBits = o.MemPod.CounterBits
		}
		cfg.CacheBytes = o.MemPod.CacheBytes
		cfg.UseFullCounters = o.MemPod.UseFullCounters
		return core.New(cfg, backend)
	case MechHMA:
		cfg := hma.DefaultConfig()
		if o.HMA.Interval > 0 {
			cfg.Interval = o.HMA.Interval
		}
		if o.HMA.SortStall > 0 {
			cfg.SortStall = o.HMA.SortStall
		}
		if o.HMA.MaxMigrations > 0 {
			cfg.MaxMigrations = o.HMA.MaxMigrations
		}
		cfg.CacheBytes = o.HMA.CacheBytes
		return hma.New(cfg, backend)
	case MechTHM:
		return thm.New(thm.DefaultConfig(), backend)
	case MechCAMEO:
		return cameo.New(cameo.DefaultConfig(), backend)
	case MechTLM, MechHBMOnly, MechDDROnly:
		return mech.NewStatic(string(o.Mechanism), backend), nil
	default:
		return nil, fmt.Errorf("mempod: unknown mechanism %q", o.Mechanism)
	}
}

func lookupWorkload(name string) (workload.Workload, error) {
	for _, w := range workload.All() {
		if w.Name == name {
			return w, nil
		}
	}
	return workload.Workload{}, fmt.Errorf("mempod: unknown workload %q (see Workloads())", name)
}
